package main

import "testing"

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		pkg  string
		pct  float64
		ok   bool
	}{
		{"ok  \tcottage/internal/index\t0.41s\tcoverage: 85.2% of statements", "cottage/internal/index", 85.2, true},
		{"ok  \tcottage/internal/search\t1.1s\tcoverage: 100.0% of statements", "cottage/internal/search", 100, true},
		{"ok  \tcottage/internal/par\t0.2s", "", 0, false},
		{"?   \tcottage/tools/covergate\t[no test files]", "", 0, false},
		{"FAIL\tcottage/internal/rpc\t0.3s", "", 0, false},
		{"", "", 0, false},
		{"ok  \tpkg\t0.1s\tcoverage: bogus% of statements", "", 0, false},
	}
	for _, c := range cases {
		pkg, pct, ok := parseLine(c.line)
		if ok != c.ok || pkg != c.pkg || pct != c.pct {
			t.Errorf("parseLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, pkg, pct, ok, c.pkg, c.pct, c.ok)
		}
	}
}
