// Command covergate reads `go test -cover ./...` output on stdin,
// echoes it, and fails unless every required package appears with
// statement coverage at or above the floor. It is the enforcement half
// of `make cover`: the exactness-critical query-evaluation packages
// (internal/search, internal/index) must not silently decay.
//
// Usage: go test -cover ./... | go run ./tools/covergate \
//	-floor 85 -require cottage/internal/search,cottage/internal/index
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// parseLine extracts (package, coverage%) from one `go test -cover`
// result line, e.g.
//
//	ok  	cottage/internal/index	0.41s	coverage: 85.2% of statements
//
// The second return is false for lines without a coverage figure
// (no-test packages, failures, build output).
func parseLine(line string) (pkg string, pct float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "ok" {
		return "", 0, false
	}
	for i, f := range fields {
		if f != "coverage:" || i+1 >= len(fields) {
			continue
		}
		raw := strings.TrimSuffix(fields[i+1], "%")
		pct, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", 0, false
		}
		return fields[1], pct, true
	}
	return "", 0, false
}

func main() {
	floor := flag.Float64("floor", 85, "minimum statement coverage percent for required packages")
	require := flag.String("require", "", "comma-separated import paths that must meet the floor")
	flag.Parse()

	required := make(map[string]bool)
	for _, p := range strings.Split(*require, ",") {
		if p = strings.TrimSpace(p); p != "" {
			required[p] = true
		}
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if pkg, pct, ok := parseLine(line); ok {
			got[pkg] = pct
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "covergate: reading input: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for pkg := range required {
		pct, ok := got[pkg]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "covergate: required package %s missing from coverage output\n", pkg)
			failed = true
		case pct < *floor:
			fmt.Fprintf(os.Stderr, "covergate: %s coverage %.1f%% below floor %.1f%%\n", pkg, pct, *floor)
			failed = true
		default:
			fmt.Printf("covergate: %s %.1f%% >= %.1f%% ok\n", pkg, pct, *floor)
		}
	}
	if failed {
		os.Exit(1)
	}
}
