// Command benchjson converts `go test -bench` output into a stable JSON
// document so benchmark baselines can be checked in and diffed across
// PRs. It reads the benchmark output on stdin and writes JSON to the
// file named by -o (stdout by default):
//
//	go test -run '^$' -bench 'Fig' -benchmem . | go run ./tools/benchjson -o BENCH.json
//
// Only lines that look like benchmark results are parsed; everything
// else (PASS, ok, build noise) is ignored, so the tool can sit at the
// end of a pipe without fragile filtering.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Bytes/Allocs are -1 when the run did not
// use -benchmem, distinguishing "not measured" from a true zero.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the checked-in artifact: environment header plus results in the
// order the run produced them.
type Doc struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFig7QualityPredictor-8  228490  5271 ns/op  0 B/op  0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines compare across
// machines; value/unit pairs other than the three standard ones are
// ignored (custom b.ReportMetric units would land there).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seenNs = true
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	return r, seenNs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
