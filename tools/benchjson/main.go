// Command benchjson converts `go test -bench` output into a stable JSON
// document so benchmark baselines can be checked in and diffed across
// PRs. It reads the benchmark output on stdin and writes JSON to the
// file named by -o (stdout by default):
//
//	go test -run '^$' -bench 'Fig' -benchmem . | go run ./tools/benchjson -o BENCH.json
//
// Only lines that look like benchmark results are parsed; everything
// else (PASS, ok, build noise) is ignored, so the tool can sit at the
// end of a pipe without fragile filtering.
//
// Compare mode diffs two such documents and fails when a shared
// benchmark got slower than the allowed regression:
//
//	go run ./tools/benchjson -compare -max-regress 5% BENCH_PR5.json BENCH_PR10.json
//
// Benchmarks present in only one document are reported but never fail
// the gate (benchmarks come and go across PRs); ns/op regressions past
// the threshold do. Improvements and B/op / allocs/op changes are
// informational.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Bytes/Allocs are -1 when the run did not
// use -benchmem, distinguishing "not measured" from a true zero.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the checked-in artifact: environment header plus results in the
// order the run produced them.
type Doc struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: benchjson -compare [-max-regress 5%] old.json new.json")
	maxRegress := flag.String("max-regress", "5%", "largest tolerated ns/op slowdown in compare mode, e.g. 5% or 0.05")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("compare mode wants exactly two files, got %d args", flag.NArg()))
		}
		limit, err := parseRegress(*maxRegress)
		if err != nil {
			fatal(err)
		}
		if err := compareDocs(flag.Arg(0), flag.Arg(1), limit); err != nil {
			fatal(err)
		}
		return
	}

	doc := Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				// With -count N the same benchmark repeats; keep the
				// fastest run. Minimum-of-N is the standard low-noise
				// estimator for wall-clock benchmarks (interference
				// only ever adds time), and it is what makes a 5%
				// regression gate workable on a shared machine.
				if i := indexOf(doc.Benchmarks, r.Name); i >= 0 {
					if r.NsPerOp < doc.Benchmarks[i].NsPerOp {
						doc.Benchmarks[i] = r
					}
				} else {
					doc.Benchmarks = append(doc.Benchmarks, r)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// indexOf returns the position of the named benchmark in rs, or -1.
func indexOf(rs []Result, name string) int {
	for i := range rs {
		if rs[i].Name == name {
			return i
		}
	}
	return -1
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFig7QualityPredictor-8  228490  5271 ns/op  0 B/op  0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines compare across
// machines; value/unit pairs other than the three standard ones are
// ignored (custom b.ReportMetric units would land there).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seenNs = true
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
		}
	}
	return r, seenNs
}

// parseRegress accepts "5%" or a plain fraction like "0.05".
func parseRegress(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q (want e.g. 5%% or 0.05)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func loadDoc(path string) (Doc, error) {
	var d Doc
	buf, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(buf, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// compareDocs prints a per-benchmark delta table for the benchmarks the
// two documents share and returns an error when any shared benchmark's
// ns/op regressed beyond limit.
func compareDocs(oldPath, newPath string, limit float64) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Name] = r
	}
	var regressions []string
	shared := 0
	for _, nr := range newDoc.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-60s %12s  %10.0f ns/op  (new)\n", nr.Name, "-", nr.NsPerOp)
			continue
		}
		shared++
		delete(oldBy, nr.Name)
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = nr.NsPerOp/or.NsPerOp - 1
		}
		mark := ""
		if delta > limit {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, limit %+.1f%%)",
					nr.Name, or.NsPerOp, nr.NsPerOp, delta*100, limit*100))
		}
		fmt.Printf("%-60s %10.0f -> %10.0f ns/op  %+7.1f%%%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp, delta*100, mark)
	}
	removed := make([]string, 0, len(oldBy))
	for name := range oldBy {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-60s (removed)\n", name)
	}
	if shared == 0 {
		return fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.1f%%:\n  %s",
			len(regressions), limit*100, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("benchjson: %d shared benchmarks within %.1f%% regression budget\n", shared, limit*100)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
