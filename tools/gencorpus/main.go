// Command gencorpus regenerates the fuzz seed corpora under
// internal/{rpc,search,trace,index}/testdata/fuzz. Each corpus mirrors the in-code f.Add
// seeds — valid frames, truncations, and injector-style corruptions —
// but lives on disk so the fuzzer picks it up without running the seed
// round first, and so wire-format changes show up as corpus diffs.
//
// Usage: go run ./tools/gencorpus (from the repo root).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/predict"
	"cottage/internal/rpc"
	"cottage/internal/search"
	"cottage/internal/trace"
)

func encode(vals ...any) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
	}
	return buf.Bytes()
}

func corrupt(b []byte) []byte {
	m := bytes.Clone(b)
	for i := 0; i < len(m); i += 7 {
		m[i] ^= 0x55
	}
	return m
}

func writeCorpus(dir string, entries map[string][]byte) {
	bodies := make(map[string]string, len(entries))
	for name, data := range entries {
		bodies[name] = "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	}
	writeCorpusEntries(dir, bodies)
}

// writeCorpusEntries writes pre-rendered corpus bodies, for fuzz
// targets whose inputs are not a single []byte.
func writeCorpusEntries(dir string, bodies map[string]string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, body := range bodies {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// anytimeEntry lays out one FuzzAnytimeDeadline input. It mirrors
// decodeAnytimeFuzz in internal/search/fuzz_test.go: 8-byte shard seed,
// k byte, two LE budgets (second is an increment over the first), a
// term-count byte, then one term-index byte per term (0 means absent).
func anytimeEntry(seed uint64, k byte, b1, extra uint16, termIdx ...byte) []byte {
	data := make([]byte, 14+len(termIdx))
	binary.LittleEndian.PutUint64(data[0:8], seed)
	data[8] = k
	binary.LittleEndian.PutUint16(data[9:11], b1)
	binary.LittleEndian.PutUint16(data[11:13], extra)
	data[13] = byte(len(termIdx) - 1)
	copy(data[14:], termIdx)
	return data
}

func main() {
	reqValid := encode(
		&rpc.Request{Kind: rpc.KindSearch, ID: 1, Terms: []string{"ga", "gb"}, K: 10, DeadlineUS: 5000},
		&rpc.Request{Kind: rpc.KindPredict, ID: 2, Terms: []string{"tail", "latency"}},
		&rpc.Request{Kind: rpc.KindPing, ID: 3},
	)
	// Structurally valid, semantically absurd: the requests server-side
	// validation exists to reject (out-of-range K, oversized term lists,
	// giant terms, negative deadlines, unknown kinds). Mirrors
	// absurdRequests in internal/rpc/fuzz_test.go.
	reqAbsurd := encode(
		&rpc.Request{Kind: rpc.KindSearch, ID: 10, Terms: []string{"ga"}, K: 0},
		&rpc.Request{Kind: rpc.KindSearch, ID: 11, Terms: []string{"ga"}, K: 2_000_000},
		&rpc.Request{Kind: rpc.KindPredict, ID: 12, Terms: make([]string, rpc.MaxTerms+36)},
		&rpc.Request{Kind: rpc.KindSearch, ID: 13, Terms: []string{strings.Repeat("z", 2048)}, K: 5},
		&rpc.Request{Kind: rpc.KindSearch, ID: 14, Terms: []string{"ga"}, K: 5, DeadlineUS: -1},
		&rpc.Request{Kind: rpc.Kind(99), ID: 15, K: 5},
	)
	writeCorpus("internal/rpc/testdata/fuzz/FuzzDecodeRequest", map[string][]byte{
		"valid":     reqValid,
		"truncated": reqValid[:len(reqValid)/2],
		"header":    reqValid[:7],
		"corrupted": corrupt(reqValid),
		"absurd":    reqAbsurd,
	})
	writeCorpus("internal/rpc/testdata/fuzz/FuzzValidateRequest", map[string][]byte{
		"valid":  reqValid,
		"absurd": reqAbsurd,
	})

	respValid := encode(
		&rpc.Response{ID: 1, Hits: []search.Hit{{Doc: 4, Score: 2.5}, {Doc: 9, Score: 1.1}},
			Stats: search.ExecStats{DocsScored: 40}},
		&rpc.Response{ID: 2, Pred: predict.Prediction{Matched: true, QK: 3, Cycles: 1e7}},
		&rpc.Response{ID: 3, Err: "deadline exceeded"},
	)
	writeCorpus("internal/rpc/testdata/fuzz/FuzzDecodeResponse", map[string][]byte{
		"valid":     respValid,
		"truncated": respValid[:len(respValid)/2],
		"header":    respValid[:9],
		"corrupted": corrupt(respValid),
	})
	// Trace Save/Load seeds: a valid replay file, its truncation and
	// corruption, and structurally-valid gob frames carrying exactly the
	// traces Load's validation exists to reject (out-of-order and
	// negative arrivals, empty and oversized term lists, giant terms).
	saveTrace := func(qs []trace.Query) []byte {
		var buf bytes.Buffer
		if err := trace.Save(&buf, qs); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	traceValid := saveTrace([]trace.Query{
		{ID: 0, Terms: []string{"alpha"}, ArrivalMS: 0},
		{ID: 1, Terms: []string{"beta", "gamma"}, ArrivalMS: 12.5},
		{ID: 2, Terms: []string{"delta"}, ArrivalMS: 40},
	})
	writeCorpus("internal/trace/testdata/fuzz/FuzzTraceRoundTrip", map[string][]byte{
		"valid":     traceValid,
		"truncated": traceValid[:len(traceValid)/2],
		"header":    traceValid[:3],
		"corrupted": corrupt(traceValid),
		"reordered": saveTrace([]trace.Query{
			{ID: 0, Terms: []string{"late"}, ArrivalMS: 50},
			{ID: 1, Terms: []string{"early"}, ArrivalMS: 10},
		}),
		"negative-arrival": saveTrace([]trace.Query{{Terms: []string{"x"}, ArrivalMS: -4}}),
		"no-terms":         saveTrace([]trace.Query{{Terms: nil, ArrivalMS: 1}}),
		"too-many-terms":   saveTrace([]trace.Query{{Terms: make([]string, trace.MaxTermsPerQuery+9), ArrivalMS: 0}}),
		"giant-term":       saveTrace([]trace.Query{{Terms: []string{strings.Repeat("q", trace.MaxTermLen+1)}, ArrivalMS: 0}}),
	})

	writeCorpus("internal/search/testdata/fuzz/FuzzAnytimeDeadline", map[string][]byte{
		// Budget 0: the deadline fires before any range — the empty
		// truncated answer whose bound must still cover the shard.
		"zero-budget": anytimeEntry(1, 9, 0, 0, 5, 10),
		// A budget beyond any shard's posting count: must be bitwise
		// exhaustive with Terminated=false.
		"exhaustive": anytimeEntry(42, 9, 0xffff, 0xffff, 1, 2, 3),
		// Mid-traversal truncations at two nearby budgets exercise the
		// monotone-quality comparison where it can actually differ.
		"truncated": anytimeEntry(7, 4, 40, 25, 3, 3, 0, 17),
		// Absent-only query on the largest seed the decoder folds to.
		"absent": anytimeEntry(1023, 24, 100, 1, 0),
	})

	// Shard decode seeds: a valid packed (wire v5) file, truncations,
	// bit-flip rot at three densities (the at-rest corruption the CRC32C
	// plane exists to refuse), genuine v4 and v3 files for the legacy
	// load paths, and a rotted v4. Mirrors FuzzShardDecode's f.Add seeds
	// in internal/index/fuzz_test.go.
	b := index.NewBuilder(3, index.DefaultBM25(), 10)
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for d := 0; d < 60; d++ {
		terms := make(map[string]int, len(vocab))
		for i, v := range vocab {
			if tf := (d + i) % 4; tf > 0 {
				terms[v] = tf
			}
		}
		b.Add(int64(1000+d), terms, 12)
	}
	shard := b.Finalize()
	var shardBuf bytes.Buffer
	if err := shard.Encode(&shardBuf); err != nil {
		log.Fatal(err)
	}
	shardV5 := shardBuf.Bytes()
	rot := func(n int) []byte {
		m := bytes.Clone(shardV5)
		faults.FlipBits(m, n, uint64(77+n))
		return m
	}
	legacy := func(version int) []byte {
		var buf bytes.Buffer
		if err := shard.EncodeLegacy(&buf, version); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	rottedV4 := legacy(4)
	faults.FlipBits(rottedV4, 16, 93)
	writeCorpus("internal/index/testdata/fuzz/FuzzShardDecode", map[string][]byte{
		"valid":     shardV5,
		"truncated": shardV5[:len(shardV5)/2],
		"header":    shardV5[:11],
		"rot-1":     rot(1),
		"rot-16":    rot(16),
		"rot-256":   rot(256),
		"legacy-v3": legacy(3),
		"legacy-v4": legacy(4),
		"rot-v4":    rottedV4,
	})

	// Packed-postings geometry seeds: the sub-wire fuzz target that
	// attacks checkPackedGeometry + DecodeBlockInto directly with
	// arbitrary payload bytes and overlay descriptors. Mirrors
	// FuzzPackedPostingsDecode's f.Add seeds (valid packing, truncation,
	// over-long payload, width overflow, nonsense counts).
	var multiTerm *index.TermInfo
	for i := range shard.Terms {
		if ti := &shard.Terms[i]; len(ti.Blocks) > 0 {
			if multiTerm == nil || ti.Len() > multiTerm.Len() {
				multiTerm = ti
			}
		}
	}
	if multiTerm == nil {
		log.Fatal("gencorpus: shard has no packed terms")
	}
	valid := bytes.Clone(multiTerm.Packed.Data)
	blocks := packedBlocksBytes(multiTerm.Blocks)
	wide := packedBlocksBytes(multiTerm.Blocks)
	wide[8] = 200 // DocW of block 0 beyond the 32-bit ceiling
	n := int64(multiTerm.Len())
	trunc := len(valid) / 2
	writeCorpusEntries("internal/index/testdata/fuzz/FuzzPackedPostingsDecode", map[string]string{
		"valid":     packedEntry(len(valid), n, valid, blocks),
		"truncated": packedEntry(trunc, n, valid[:trunc], blocks),
		"overlong":  packedEntry(len(valid)+64, n, append(bytes.Clone(valid), make([]byte, 64)...), blocks),
		"wide":      packedEntry(len(valid), n, valid, wide),
		"nonsense":  packedEntry(0, -3, []byte{}, []byte{}),
	})

	fmt.Println("corpus written under internal/{rpc,search,trace,index}/testdata/fuzz")
}

// packedBlocksBytes flattens a Block overlay the way the fuzz target's
// decoder reads it back: 16 bytes per block, little endian — MaxDoc,
// Off, DocW, TFW, QMax, 5 spare.
func packedBlocksBytes(blocks []index.Block) []byte {
	out := make([]byte, 0, 16*len(blocks))
	for _, b := range blocks {
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:], b.MaxDoc)
		binary.LittleEndian.PutUint32(rec[4:], b.Off)
		rec[8] = b.DocW
		rec[9] = b.TFW
		rec[10] = b.QMax
		out = append(out, rec[:]...)
	}
	return out
}

// packedEntry renders one FuzzPackedPostingsDecode corpus entry in the
// go fuzz v1 format for the target's (int, int64, []byte, []byte)
// signature.
func packedEntry(dataLen int, n int64, data, rawBlocks []byte) string {
	return "go test fuzz v1\n" +
		"int(" + strconv.Itoa(dataLen) + ")\n" +
		"int64(" + strconv.FormatInt(n, 10) + ")\n" +
		"[]byte(" + strconv.Quote(string(data)) + ")\n" +
		"[]byte(" + strconv.Quote(string(rawBlocks)) + ")\n"
}
