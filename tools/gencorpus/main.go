// Command gencorpus regenerates the fuzz seed corpora under
// internal/{rpc,search,trace,index}/testdata/fuzz. Each corpus mirrors the in-code f.Add
// seeds — valid frames, truncations, and injector-style corruptions —
// but lives on disk so the fuzzer picks it up without running the seed
// round first, and so wire-format changes show up as corpus diffs.
//
// Usage: go run ./tools/gencorpus (from the repo root).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/predict"
	"cottage/internal/rpc"
	"cottage/internal/search"
	"cottage/internal/trace"
)

func encode(vals ...any) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
	}
	return buf.Bytes()
}

func corrupt(b []byte) []byte {
	m := bytes.Clone(b)
	for i := 0; i < len(m); i += 7 {
		m[i] ^= 0x55
	}
	return m
}

func writeCorpus(dir string, entries map[string][]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range entries {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// anytimeEntry lays out one FuzzAnytimeDeadline input. It mirrors
// decodeAnytimeFuzz in internal/search/fuzz_test.go: 8-byte shard seed,
// k byte, two LE budgets (second is an increment over the first), a
// term-count byte, then one term-index byte per term (0 means absent).
func anytimeEntry(seed uint64, k byte, b1, extra uint16, termIdx ...byte) []byte {
	data := make([]byte, 14+len(termIdx))
	binary.LittleEndian.PutUint64(data[0:8], seed)
	data[8] = k
	binary.LittleEndian.PutUint16(data[9:11], b1)
	binary.LittleEndian.PutUint16(data[11:13], extra)
	data[13] = byte(len(termIdx) - 1)
	copy(data[14:], termIdx)
	return data
}

func main() {
	reqValid := encode(
		&rpc.Request{Kind: rpc.KindSearch, ID: 1, Terms: []string{"ga", "gb"}, K: 10, DeadlineUS: 5000},
		&rpc.Request{Kind: rpc.KindPredict, ID: 2, Terms: []string{"tail", "latency"}},
		&rpc.Request{Kind: rpc.KindPing, ID: 3},
	)
	// Structurally valid, semantically absurd: the requests server-side
	// validation exists to reject (out-of-range K, oversized term lists,
	// giant terms, negative deadlines, unknown kinds). Mirrors
	// absurdRequests in internal/rpc/fuzz_test.go.
	reqAbsurd := encode(
		&rpc.Request{Kind: rpc.KindSearch, ID: 10, Terms: []string{"ga"}, K: 0},
		&rpc.Request{Kind: rpc.KindSearch, ID: 11, Terms: []string{"ga"}, K: 2_000_000},
		&rpc.Request{Kind: rpc.KindPredict, ID: 12, Terms: make([]string, rpc.MaxTerms+36)},
		&rpc.Request{Kind: rpc.KindSearch, ID: 13, Terms: []string{strings.Repeat("z", 2048)}, K: 5},
		&rpc.Request{Kind: rpc.KindSearch, ID: 14, Terms: []string{"ga"}, K: 5, DeadlineUS: -1},
		&rpc.Request{Kind: rpc.Kind(99), ID: 15, K: 5},
	)
	writeCorpus("internal/rpc/testdata/fuzz/FuzzDecodeRequest", map[string][]byte{
		"valid":     reqValid,
		"truncated": reqValid[:len(reqValid)/2],
		"header":    reqValid[:7],
		"corrupted": corrupt(reqValid),
		"absurd":    reqAbsurd,
	})
	writeCorpus("internal/rpc/testdata/fuzz/FuzzValidateRequest", map[string][]byte{
		"valid":  reqValid,
		"absurd": reqAbsurd,
	})

	respValid := encode(
		&rpc.Response{ID: 1, Hits: []search.Hit{{Doc: 4, Score: 2.5}, {Doc: 9, Score: 1.1}},
			Stats: search.ExecStats{DocsScored: 40}},
		&rpc.Response{ID: 2, Pred: predict.Prediction{Matched: true, QK: 3, Cycles: 1e7}},
		&rpc.Response{ID: 3, Err: "deadline exceeded"},
	)
	writeCorpus("internal/rpc/testdata/fuzz/FuzzDecodeResponse", map[string][]byte{
		"valid":     respValid,
		"truncated": respValid[:len(respValid)/2],
		"header":    respValid[:9],
		"corrupted": corrupt(respValid),
	})
	// Trace Save/Load seeds: a valid replay file, its truncation and
	// corruption, and structurally-valid gob frames carrying exactly the
	// traces Load's validation exists to reject (out-of-order and
	// negative arrivals, empty and oversized term lists, giant terms).
	saveTrace := func(qs []trace.Query) []byte {
		var buf bytes.Buffer
		if err := trace.Save(&buf, qs); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	traceValid := saveTrace([]trace.Query{
		{ID: 0, Terms: []string{"alpha"}, ArrivalMS: 0},
		{ID: 1, Terms: []string{"beta", "gamma"}, ArrivalMS: 12.5},
		{ID: 2, Terms: []string{"delta"}, ArrivalMS: 40},
	})
	writeCorpus("internal/trace/testdata/fuzz/FuzzTraceRoundTrip", map[string][]byte{
		"valid":     traceValid,
		"truncated": traceValid[:len(traceValid)/2],
		"header":    traceValid[:3],
		"corrupted": corrupt(traceValid),
		"reordered": saveTrace([]trace.Query{
			{ID: 0, Terms: []string{"late"}, ArrivalMS: 50},
			{ID: 1, Terms: []string{"early"}, ArrivalMS: 10},
		}),
		"negative-arrival": saveTrace([]trace.Query{{Terms: []string{"x"}, ArrivalMS: -4}}),
		"no-terms":         saveTrace([]trace.Query{{Terms: nil, ArrivalMS: 1}}),
		"too-many-terms":   saveTrace([]trace.Query{{Terms: make([]string, trace.MaxTermsPerQuery+9), ArrivalMS: 0}}),
		"giant-term":       saveTrace([]trace.Query{{Terms: []string{strings.Repeat("q", trace.MaxTermLen+1)}, ArrivalMS: 0}}),
	})

	writeCorpus("internal/search/testdata/fuzz/FuzzAnytimeDeadline", map[string][]byte{
		// Budget 0: the deadline fires before any range — the empty
		// truncated answer whose bound must still cover the shard.
		"zero-budget": anytimeEntry(1, 9, 0, 0, 5, 10),
		// A budget beyond any shard's posting count: must be bitwise
		// exhaustive with Terminated=false.
		"exhaustive": anytimeEntry(42, 9, 0xffff, 0xffff, 1, 2, 3),
		// Mid-traversal truncations at two nearby budgets exercise the
		// monotone-quality comparison where it can actually differ.
		"truncated": anytimeEntry(7, 4, 40, 25, 3, 3, 0, 17),
		// Absent-only query on the largest seed the decoder folds to.
		"absent": anytimeEntry(1023, 24, 100, 1, 0),
	})

	// Shard decode seeds (wire v4): a valid checksummed file, its
	// truncation, bit-flip rot at three densities (the at-rest corruption
	// the CRC32C plane exists to refuse), and a pre-checksum v3 file for
	// the synthesize-on-upgrade path. Mirrors FuzzShardDecodeV4's f.Add
	// seeds in internal/index/fuzz_test.go.
	b := index.NewBuilder(3, index.DefaultBM25(), 10)
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for d := 0; d < 60; d++ {
		terms := make(map[string]int, len(vocab))
		for i, v := range vocab {
			if tf := (d + i) % 4; tf > 0 {
				terms[v] = tf
			}
		}
		b.Add(int64(1000+d), terms, 12)
	}
	shard := b.Finalize()
	var shardBuf bytes.Buffer
	if err := shard.Encode(&shardBuf); err != nil {
		log.Fatal(err)
	}
	shardV4 := shardBuf.Bytes()
	rot := func(n int) []byte {
		m := bytes.Clone(shardV4)
		faults.FlipBits(m, n, uint64(77+n))
		return m
	}
	writeCorpus("internal/index/testdata/fuzz/FuzzShardDecodeV4", map[string][]byte{
		"valid":     shardV4,
		"truncated": shardV4[:len(shardV4)/2],
		"header":    shardV4[:11],
		"rot-1":     rot(1),
		"rot-16":    rot(16),
		"rot-256":   rot(256),
	})

	fmt.Println("corpus written under internal/{rpc,search,trace,index}/testdata/fuzz")
}
