# Developer entry points. `make check` is the full pre-merge gate:
# vet + build + race-enabled tests + a fuzz smoke pass over the wire
# codec. Tier-1 CI runs `make test`.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke overload-smoke obs-smoke chaos-smoke autoscale-smoke anatomy-smoke integrity-smoke bench bench-smoke bench-compare corpus check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The harness package replays every experiment; under the race detector
# it needs more than `go test`'s default 10-minute package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Each fuzz target gets a short budget; any panic in the gob decode path
# is a remote crash, so this runs on every check.
fuzz-smoke:
	$(GO) test ./internal/rpc/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rpc/ -run '^$$' -fuzz FuzzDecodeResponse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rpc/ -run '^$$' -fuzz FuzzValidateRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/replica/ -run '^$$' -fuzz FuzzReplicaSelect -fuzztime $(FUZZTIME)
	$(GO) test ./internal/search/ -run '^$$' -fuzz FuzzAnytimeDeadline -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/index/ -run '^$$' -fuzz FuzzShardDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/index/ -run '^$$' -fuzz FuzzPackedPostingsDecode -fuzztime $(FUZZTIME)

# The overload sweep (bounded admission queues at 1x-4x load) on the
# quick-scale setup: shed rates grow with load while the admitted p99
# stays bounded and Cottage's budget inflates via Eq. 2 feedback.
overload-smoke:
	$(GO) test ./internal/harness -run Overload -count=1

# End-to-end observability gate: a live distributed fixture with a debug
# listener — /metrics must parse and expose the latency/predictor
# families, and a traced Cottage query must come back from /debug/traces
# with a complete span tree (phases, legs, grafted ISN serve spans, and
# the Algorithm 1 decision record).
obs-smoke:
	$(GO) test ./internal/rpc -run TestObsSmoke -count=1

# Deterministic chaos gate on the replicated twin: a seeded fault
# schedule (crashes, dropped streams, corrupted replies, slowdowns)
# must cost failovers and latency — never a lost query — and every
# Algorithm 1 budget must dominate its selected shards' boosted
# latencies. Runs under the race detector.
chaos-smoke:
	$(GO) test -race ./internal/harness -run TestChaosSmoke -count=1 -timeout 10m

# Closed-loop capacity gate on the quick-scale twin: under a flash-crowd
# trace the controller must hold the p99 SLO on fewer machine-hours than
# the smallest adequate fixed fleet, and predictive hedging must match
# the fixed-delay tail at a measurably lower hedge rate. Both replays
# are deterministic in virtual time.
autoscale-smoke:
	$(GO) test ./internal/harness -run 'TestAutoscaleSweepCurves|TestHedgingSweepCurves' -count=1 -timeout 10m

# Tail-anatomy gate on the twin: per-phase attribution must reconcile
# with end-to-end latency (>= 95% mean coverage), the experiment output
# must be byte-identical across GOMAXPROCS, and an SLO burn-rate breach
# must page and capture a flight-recorder dump. Zero-alloc attribution
# on the hot path is pinned by the obs/anatomy package tests.
anatomy-smoke:
	$(GO) test ./internal/harness -run TestAnatomy -count=1 -timeout 10m
	$(GO) test ./internal/obs/... -count=1

# End-to-end data-integrity gate: bit-flip rot over real shard bytes is
# always refused at load (1-bit through 256-bit densities), the
# query-time checksum gate serves zero corrupted postings while
# localizing rot to the block, and the replicated twin holds P@10
# through scheduled rot/quarantine/repair cycles with typed bounces
# only (never a silently lost query). Byte-determinism across
# GOMAXPROCS is pinned alongside.
integrity-smoke:
	$(GO) test -race ./internal/harness -run 'TestIntegrity' -count=1 -timeout 10m

# Full perf-regression sweep: every figure benchmark plus the pruning
# and per-query evaluation benches, recorded to $(BENCHOUT) via
# tools/benchjson so the baseline can be checked in and diffed. Each
# benchmark runs $(BENCHCOUNT) times and benchjson keeps the fastest —
# minimum-of-N is what makes a tight regression gate usable on a
# shared, noisy machine.
BENCHOUT ?= BENCH_PR10.json
BENCHBASE ?= BENCH_PR10.json
BENCHCOUNT ?= 3
MAXREGRESS ?= 5%
bench:
	$(GO) test -run '^$$' -bench 'Fig|Table1|Pruning|EvaluateQuery|Ablation|Oracle' \
		-benchmem -count $(BENCHCOUNT) -timeout 60m . | tee /dev/stderr | $(GO) run ./tools/benchjson -o $(BENCHOUT)

# Same-machine perf-regression gate on the query-evaluation hot path:
# re-measure the pruning and per-query benches now (min of
# $(BENCHCOUNT)) and fail if any is more than $(MAXREGRESS) slower
# than the committed $(BENCHBASE) sweep. Fresh-run-vs-baseline is the
# only sound shape for an ns/op gate — diffing two checked-in sweeps
# recorded on different days conflates code changes with machine
# drift (observed at up to +47% on benches the code never touched).
# Cross-PR sweep diffs stay available as an analysis tool:
#   go run ./tools/benchjson -compare BENCH_PR5.json BENCH_PR10.json
# The gate run takes more samples than the recorded sweep so its
# minimum is at least as likely to hit the machine's floor as the
# baseline's was — the bias a noise-tolerant gate wants.
GATECOUNT ?= 5
bench-compare:
	$(GO) test -run '^$$' -bench 'Pruning|EvaluateQuery' -count $(GATECOUNT) -timeout 30m . \
		| $(GO) run ./tools/benchjson -o /tmp/cottage-bench-head.json
	$(GO) run ./tools/benchjson -compare -max-regress $(MAXREGRESS) $(BENCHBASE) /tmp/cottage-bench-head.json

# Quick perf sanity on the two predictor hot paths (the ones with hard
# ns/op acceptance bars); keeps check fast while catching gross
# regressions. Full numbers come from `make bench`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig7QualityPredictor|Fig9BudgetDetermination' \
		-benchmem -benchtime 1x -timeout 10m .

# Regenerate the checked-in fuzz seed corpus after wire-format changes.
corpus:
	$(GO) run ./tools/gencorpus

# Per-package statement coverage with a hard floor on the query
# evaluation core, the capacity planner, and the integrity supervisor:
# the anytime/block-max machinery is exactness-critical, the SIMD
# unpack kernels feed every evaluator, the autoscale loop sizes the
# fleet, and the scrub/quarantine/repair plane is the last line
# against serving rotted postings, so
# internal/{search,index,simdpack,autoscale,integrity} must stay at
# >= $(COVERFLOOR)%.
COVERFLOOR ?= 85
cover:
	$(GO) test -cover ./... | $(GO) run ./tools/covergate -floor $(COVERFLOOR) \
		-require cottage/internal/search,cottage/internal/index,cottage/internal/simdpack,cottage/internal/autoscale,cottage/internal/integrity

check: vet build race fuzz-smoke overload-smoke obs-smoke chaos-smoke autoscale-smoke anatomy-smoke integrity-smoke bench-smoke bench-compare cover

clean:
	$(GO) clean ./...
