package replica

import (
	"sort"

	"cottage/internal/overload"
)

// Candidate is one replica's health signals at selection time. All
// fields are observations, not commands: Rank orders candidates, it
// never mutates breakers or connections (breaker admission — Allow()
// and its half-open probe accounting — stays with the caller, on the
// replica it actually sends to).
type Candidate struct {
	// ID is the replica's node (or client) index; Rank returns IDs.
	ID int
	// Failed marks a replica known to be permanently dead (simulated
	// crash, operator removal). Failed replicas are never selected, no
	// matter what — the selector's one hard guarantee.
	Failed bool
	// Quarantined marks a replica whose shard copy failed an integrity
	// check (checksum mismatch, typed decode failure). Like Failed, it
	// is excluded outright — strictly below breaker-open in preference,
	// because an open breaker can still admit a probe while a replica
	// known to serve corrupt bytes must never be chosen until repair
	// re-admits it.
	Quarantined bool
	// Breaker is the replica's circuit-breaker position. Closed ranks
	// first, half-open next (one probe may be admitted), open last —
	// open replicas stay in the order as a last resort because an open
	// breaker past its cooldown can still admit a probe, and a group
	// whose every breaker is open should degrade by probing, not by
	// giving up. Unknown/invalid states rank with open.
	Breaker overload.State
	// Healthy is the transport's current belief (prober/connection
	// state): false means the last contact broke and the next call must
	// redial. Unhealthy replicas rank after healthy ones within the same
	// breaker class.
	Healthy bool
	// ServiceMS is the replica's rolling (EWMA) service time in
	// milliseconds; 0 means no data yet. Cold replicas rank before
	// measured ones within a class so they receive traffic and earn a
	// measurement.
	ServiceMS float64
	// AccErrPct is the replica's rolling absolute latency-prediction
	// error (percent of actual); 0 means no data. Used as the final
	// quality tiebreak: when two replicas look equally fast, prefer the
	// one whose predictor Algorithm 1 can trust.
	AccErrPct float64
}

// sane clamps a health signal: NaN and negative observations carry no
// information and rank like "no data" so adversarial inputs cannot make
// the comparator inconsistent.
func sane(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	return v
}

// breakerRank maps breaker state to selection preference.
func breakerRank(s overload.State) int {
	switch s {
	case overload.Closed:
		return 0
	case overload.HalfOpen:
		return 1
	default: // Open and anything out of range
		return 2
	}
}

// Rank orders a replica group's candidates best-first and returns their
// IDs. Failed and Quarantined replicas are excluded entirely; an empty
// (or all-failed) group yields an empty slice, never a panic. The
// ranking rule, most significant first:
//
//  1. breaker state: closed < half-open < open,
//  2. transport health: healthy before broken,
//  3. rolling service time, ascending (0 = no data ranks first),
//  4. rolling predictor error, ascending,
//  5. ID, ascending (determinism).
//
// The rule is deliberately total and deterministic: two aggregators
// with the same observations route the same way, which keeps simulated
// sweeps and live traffic comparable.
func Rank(cands []Candidate) []int {
	live := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Failed || c.Quarantined {
			continue
		}
		live = append(live, c)
	}
	sort.SliceStable(live, func(i, j int) bool {
		a, b := live[i], live[j]
		if ra, rb := breakerRank(a.Breaker), breakerRank(b.Breaker); ra != rb {
			return ra < rb
		}
		if a.Healthy != b.Healthy {
			return a.Healthy
		}
		if sa, sb := sane(a.ServiceMS), sane(b.ServiceMS); sa != sb {
			return sa < sb
		}
		if ea, eb := sane(a.AccErrPct), sane(b.AccErrPct); ea != eb {
			return ea < eb
		}
		return a.ID < b.ID
	})
	out := make([]int, len(live))
	for i, c := range live {
		out[i] = c.ID
	}
	return out
}
