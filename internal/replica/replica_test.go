package replica

import (
	"math"
	"reflect"
	"testing"

	"cottage/internal/overload"
)

func TestTopologyLayout(t *testing.T) {
	tp := Topology{Shards: 4, R: 3}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if tp.Nodes() != 12 {
		t.Fatalf("Nodes() = %d", tp.Nodes())
	}
	// Row-major: replica row 0 is nodes 0..3, row 1 is 4..7, row 2 8..11.
	for s := 0; s < tp.Shards; s++ {
		for r := 0; r < tp.R; r++ {
			n := tp.Node(s, r)
			if tp.ShardOf(n) != s || tp.ReplicaOf(n) != r {
				t.Fatalf("node %d: shard %d replica %d, want %d/%d",
					n, tp.ShardOf(n), tp.ReplicaOf(n), s, r)
			}
		}
	}
	if got := tp.Group(2); !reflect.DeepEqual(got, []int{2, 6, 10}) {
		t.Fatalf("Group(2) = %v", got)
	}
	if g := tp.Groups(); len(g) != 4 || !reflect.DeepEqual(g[0], []int{0, 4, 8}) {
		t.Fatalf("Groups() = %v", g)
	}
	if (Topology{Shards: 0, R: 1}).Validate() == nil {
		t.Fatal("zero shards validated")
	}
	if (Topology{Shards: 2, R: 0}).Validate() == nil {
		t.Fatal("R=0 validated")
	}
}

func TestParseGroups(t *testing.T) {
	got, err := ParseGroups("a:1, b:1 ; c:1,d:1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:1", "b:1"}, {"c:1", "d:1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseGroups = %v", got)
	}
	// Flat list without ';': one singleton group per address.
	got, err = ParseGroups("x,y,z")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1][0] != "y" {
		t.Fatalf("flat ParseGroups = %v", got)
	}
	for _, bad := range []string{"", "a,,b", "a;;b", " ; "} {
		if _, err := ParseGroups(bad); err == nil {
			t.Fatalf("ParseGroups(%q) accepted", bad)
		}
	}
}

func TestGroupFlat(t *testing.T) {
	got, err := GroupFlat([]string{"s0", "s1", "s0'", "s1'"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"s0", "s0'"}, {"s1", "s1'"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupFlat = %v", got)
	}
	if _, err := GroupFlat([]string{"a", "b", "c"}, 2); err == nil {
		t.Fatal("uneven GroupFlat accepted")
	}
	if _, err := GroupFlat(nil, 2); err == nil {
		t.Fatal("empty GroupFlat accepted")
	}
}

func TestRankOrdering(t *testing.T) {
	cands := []Candidate{
		{ID: 0, Breaker: overload.Open, Healthy: true},
		{ID: 1, Breaker: overload.Closed, Healthy: true, ServiceMS: 20},
		{ID: 2, Breaker: overload.Closed, Healthy: true, ServiceMS: 5},
		{ID: 3, Breaker: overload.Closed, Healthy: false, ServiceMS: 1},
		{ID: 4, Breaker: overload.HalfOpen, Healthy: true},
		{ID: 5, Failed: true, Breaker: overload.Closed, Healthy: true},
	}
	got := Rank(cands)
	// Closed+healthy by service time (2 then 1), then closed+broken (3),
	// then half-open (4), then open (0); failed (5) excluded.
	want := []int{2, 1, 3, 4, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank = %v, want %v", got, want)
	}
}

func TestRankNeverSelectsFailedOrPanics(t *testing.T) {
	if got := Rank(nil); len(got) != 0 {
		t.Fatalf("Rank(nil) = %v", got)
	}
	if got := Rank([]Candidate{{ID: 7, Failed: true}}); len(got) != 0 {
		t.Fatalf("all-failed group selected %v", got)
	}
	// Hostile observations (NaN, negatives, out-of-range breaker states)
	// must neither panic nor surface a failed replica.
	cands := []Candidate{
		{ID: 1, Breaker: overload.State(99), ServiceMS: math.NaN(), AccErrPct: -3},
		{ID: 2, Failed: true, ServiceMS: -1},
		{ID: 3, Breaker: overload.State(-5), Healthy: true, AccErrPct: math.NaN()},
	}
	for _, id := range Rank(cands) {
		if id == 2 {
			t.Fatal("failed replica selected")
		}
	}
}

func TestRankAccuracyTiebreak(t *testing.T) {
	cands := []Candidate{
		{ID: 0, Breaker: overload.Closed, Healthy: true, ServiceMS: 10, AccErrPct: 30},
		{ID: 1, Breaker: overload.Closed, Healthy: true, ServiceMS: 10, AccErrPct: 10},
	}
	if got := Rank(cands); got[0] != 1 {
		t.Fatalf("accuracy tiebreak picked %v", got)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(2)
	if tr.ServiceMS(0) != 0 {
		t.Fatal("cold tracker not zero")
	}
	tr.Observe(0, 10)
	if got := tr.ServiceMS(0); got != 10 {
		t.Fatalf("first sample EWMA = %v", got)
	}
	tr.Observe(0, 18)
	if got := tr.ServiceMS(0); got != 11 { // 10 + (18-10)/8
		t.Fatalf("EWMA = %v, want 11", got)
	}
	// Ignored inputs: out of range, non-positive, NaN.
	tr.Observe(5, 1)
	tr.Observe(-1, 1)
	tr.Observe(1, -2)
	tr.Observe(1, math.NaN())
	if tr.ServiceMS(1) != 0 || tr.ServiceMS(5) != 0 {
		t.Fatal("ignored observation leaked")
	}
	var nilT *Tracker
	nilT.Observe(0, 1) // nil-safe
	if nilT.ServiceMS(0) != 0 {
		t.Fatal("nil tracker")
	}
}
