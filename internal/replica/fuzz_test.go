package replica

import (
	"math"
	"testing"

	"cottage/internal/overload"
)

// FuzzReplicaSelect drives Rank with arbitrary health, breaker, service
// and accuracy observations and checks the selector's two hard
// guarantees: it never selects a failed replica, and it never panics —
// including on empty and all-failed groups.
func FuzzReplicaSelect(f *testing.F) {
	f.Add(0, uint64(0), int64(0), int64(0))
	f.Add(3, uint64(0b101010), int64(12), int64(99))
	f.Add(8, ^uint64(0), int64(-1), int64(1<<62))
	f.Add(5, uint64(7), int64(math.MaxInt64), int64(math.MinInt64))
	f.Fuzz(func(t *testing.T, n int, flags uint64, svcBits, errBits int64) {
		if n < 0 {
			n = -n
		}
		n %= 32
		cands := make([]Candidate, n)
		failed := make(map[int]bool, n)
		for i := range cands {
			// Two flag bits per candidate: failed, healthy. Breaker state,
			// service time and accuracy are derived so they vary per slot and
			// include NaN/negative/out-of-range values.
			fbit := flags>>(uint(2*i)%64)&1 == 1
			hbit := flags>>(uint(2*i+1)%64)&1 == 1
			svc := math.Float64frombits(uint64(svcBits) + uint64(i)*0x9e3779b97f4a7c15)
			acc := math.Float64frombits(uint64(errBits) ^ uint64(i)*0x2545f4914f6cdd1d)
			cands[i] = Candidate{
				ID:        i,
				Failed:    fbit,
				Healthy:   hbit,
				Breaker:   overload.State(int(svcBits>>uint(i%32)) % 5),
				ServiceMS: svc,
				AccErrPct: acc,
			}
			failed[i] = fbit
		}
		order := Rank(cands)
		seen := make(map[int]bool, len(order))
		for _, id := range order {
			if failed[id] {
				t.Fatalf("failed replica %d selected (order %v)", id, order)
			}
			if seen[id] {
				t.Fatalf("replica %d ranked twice (order %v)", id, order)
			}
			seen[id] = true
		}
		// Every live replica must appear: failover needs the full order.
		for i := range cands {
			if !failed[i] && !seen[i] {
				t.Fatalf("live replica %d missing from order %v", i, order)
			}
		}
	})
}
