// Package replica adds shard replication to the partition-aggregate
// tier: each logical shard is served by R interchangeable replicas, and
// the aggregator routes every per-query leg (prediction, search) to the
// best live replica instead of the one-and-only ISN. Replication is the
// classic unit of both availability and capacity in production search
// (tail-tolerant distributed search keeps hedges and failovers inside a
// replica group; capacity planning provisions whole replica rows), and
// it is what turns Cottage's degraded Algorithm 1 from the first
// response to node loss into the last resort: a failed replica costs a
// failover, not a shard.
//
// The package is deliberately transport-free. It provides
//
//   - Topology: the shard × replica layout and its node numbering,
//     shared by the simulated cluster (internal/cluster) and the CLI
//     address grouping (ParseGroups / GroupFlat);
//   - Candidate/Rank: the replica selector — a pure, deterministic
//     ranking over per-replica health signals (breaker state, prober
//     health, rolling service time, predictor accuracy) that never
//     selects a failed replica and never panics on empty groups
//     (fuzzed by FuzzReplicaSelect);
//   - Tracker: a lock-free rolling EWMA of per-replica service time,
//     the selector's latency signal on the live path.
//
// Both serving substrates consume it: rpc.Aggregator fans out over
// replica groups of real TCP clients, and cluster.Cluster replays the
// same selection rule over simulated nodes in virtual time.
package replica

import (
	"fmt"
	"strings"
)

// Topology is the shard × replica layout. Node (and client) numbering
// is row-major by replica: node = r*Shards + shard, so replica row 0 is
// the familiar unreplicated fleet and each further row is one more copy
// of it. The zero value is invalid; R < 1 is treated as 1 everywhere.
type Topology struct {
	// Shards is the number of logical shards (the paper's 16 ISNs).
	Shards int
	// R is the replication factor: how many interchangeable copies serve
	// each shard.
	R int
}

// Validate checks the layout.
func (t Topology) Validate() error {
	if t.Shards <= 0 {
		return fmt.Errorf("replica: non-positive shard count %d", t.Shards)
	}
	if t.R < 1 {
		return fmt.Errorf("replica: replication factor %d < 1", t.R)
	}
	return nil
}

// Nodes is the total node count (Shards × R).
func (t Topology) Nodes() int {
	r := t.R
	if r < 1 {
		r = 1
	}
	return t.Shards * r
}

// Node returns the node id of shard s's replica r (row-major layout).
func (t Topology) Node(shard, r int) int { return r*t.Shards + shard }

// ShardOf returns which shard a node serves.
func (t Topology) ShardOf(node int) int { return node % t.Shards }

// ReplicaOf returns which replica row a node sits in.
func (t Topology) ReplicaOf(node int) int { return node / t.Shards }

// Group returns shard's replica node ids, replica row 0 first.
func (t Topology) Group(shard int) []int {
	r := t.R
	if r < 1 {
		r = 1
	}
	g := make([]int, r)
	for i := range g {
		g[i] = t.Node(shard, i)
	}
	return g
}

// Groups returns every shard's replica group (index = shard).
func (t Topology) Groups() [][]int {
	out := make([][]int, t.Shards)
	for s := range out {
		out[s] = t.Group(s)
	}
	return out
}

// ParseGroups parses a replica-aware address list: shard groups are
// separated by ';', replicas of one shard by ','. Whitespace around
// addresses is trimmed; empty addresses are rejected.
//
//	"a:1,b:1;c:1,d:1"  →  [[a:1 b:1] [c:1 d:1]]   (2 shards × 2 replicas)
//
// A list with no ';' is one flat group per address (the unreplicated
// layout every earlier CLI accepted).
func ParseGroups(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("replica: empty address list")
	}
	var groups [][]string
	if !strings.Contains(s, ";") {
		for _, a := range strings.Split(s, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("replica: empty address in %q", s)
			}
			groups = append(groups, []string{a})
		}
		return groups, nil
	}
	for gi, g := range strings.Split(s, ";") {
		var members []string
		for _, a := range strings.Split(g, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("replica: empty address in group %d of %q", gi, s)
			}
			members = append(members, a)
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("replica: empty group %d in %q", gi, s)
		}
		groups = append(groups, members)
	}
	return groups, nil
}

// GroupFlat groups a flat address list by the row-major topology: with
// replicas R, the first len/R addresses are replica row 0 (one per
// shard), the next len/R are row 1, and so on — the layout you get by
// starting the whole server fleet once per replica row. The address
// count must divide evenly by R.
func GroupFlat(addrs []string, replicas int) ([][]string, error) {
	if replicas < 1 {
		replicas = 1
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("replica: empty address list")
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("replica: %d addresses do not divide into %d replica rows", len(addrs), replicas)
	}
	shards := len(addrs) / replicas
	t := Topology{Shards: shards, R: replicas}
	groups := make([][]string, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			groups[s] = append(groups[s], addrs[t.Node(s, r)])
		}
	}
	return groups, nil
}
