package replica

import (
	"math"
	"strconv"
	"sync/atomic"

	"cottage/internal/obs"
)

// Tracker keeps one rolling (EWMA) service-time figure per replica —
// the selector's latency signal on the live path, where the aggregator
// measures each search leg's wall time and wants the group routed
// toward the replica that has been answering fastest. Lock-free: one
// atomic load per read, one load+store per observation (a lost update
// shifts the EWMA by at most one sample's weight, which is fine for a
// routing signal).
type Tracker struct {
	bits []atomic.Uint64 // float64 bits of the per-replica EWMA, 0 = no data
}

// trackerAlpha weighs recent legs ~8× the long-run mean — reactive
// enough to steer around a degrading replica within a handful of
// queries, stable enough not to flap on one outlier.
const trackerAlpha = 1.0 / 8

// NewTracker returns a tracker with n replica slots.
func NewTracker(n int) *Tracker {
	if n < 0 {
		n = 0
	}
	return &Tracker{bits: make([]atomic.Uint64, n)}
}

// Observe folds one measured service time (ms) into replica i's EWMA.
// Out-of-range replicas and non-positive samples are ignored.
func (t *Tracker) Observe(i int, ms float64) {
	if t == nil || i < 0 || i >= len(t.bits) || ms <= 0 || math.IsNaN(ms) {
		return
	}
	old := math.Float64frombits(t.bits[i].Load())
	next := ms
	if old > 0 {
		next = old + trackerAlpha*(ms-old)
	}
	t.bits[i].Store(math.Float64bits(next))
}

// ServiceMS returns replica i's rolling service time (0 = no data yet).
func (t *Tracker) ServiceMS(i int) float64 {
	if t == nil || i < 0 || i >= len(t.bits) {
		return 0
	}
	return math.Float64frombits(t.bits[i].Load())
}

// Register exposes each replica's EWMA as a scrape-time gauge.
func (t *Tracker) Register(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	for i := range t.bits {
		i := i
		reg.GaugeFunc("cottage_replica_service_ewma_ms",
			"Rolling (EWMA) search-leg service time per replica, the selector's latency signal.",
			func() float64 { return t.ServiceMS(i) }, obs.L("replica", strconv.Itoa(i)))
	}
}
