// Package power models CPU package power for the simulated search
// cluster, standing in for the Intel RAPL counters the paper reads
// (Section V-C). The model is the standard DVFS decomposition
//
//	P_pkg(t) = P_idle + Σ_busy-cores P_static + P_maxdyn·(f/f_max)^3
//
// with a cubic frequency-dependent dynamic term (dynamic power scales with
// f·V², and voltage scales roughly linearly with frequency in the DVFS
// range). The "core" here is one ISN — a whole multithreaded Solr
// instance in the paper's testbed — so the per-ISN active power is larger
// than a single hardware core's. Constants are calibrated so that a
// 16-ISN cluster replaying the Wikipedia trace lands near the paper's
// measurements: ~14.5 W idle and ~36 W for exhaustive search (Fig. 14).
// Only the *relative* power of the selection policies matters for the
// reproduction; the calibration pins the scale.
package power

import "fmt"

// Model holds the package-power constants. All power values are watts,
// frequencies GHz, energies millijoules (mW·ms) unless noted.
type Model struct {
	// IdleWatts is the package power with every core idle (the paper's
	// platform idles at 14.53 W).
	IdleWatts float64
	// StaticWatts is the per-core cost of being awake and executing,
	// independent of frequency (uncore activity, caches).
	StaticWatts float64
	// MaxDynWatts is the per-core dynamic power at f = MaxFreq.
	MaxDynWatts float64
	// MaxFreq is the frequency at which the dynamic term reaches
	// MaxDynWatts.
	MaxFreq float64
}

// Default returns the calibrated model described in the package comment.
func Default() Model {
	return Model{
		IdleWatts:   14.53,
		StaticWatts: 1.2,
		MaxDynWatts: 16.0,
		MaxFreq:     2.7,
	}
}

// CoreActiveWatts returns the incremental power of one core running at
// frequency f (GHz), on top of the package idle floor.
func (m Model) CoreActiveWatts(f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("power: non-positive frequency %v", f))
	}
	r := f / m.MaxFreq
	return m.StaticWatts + m.MaxDynWatts*r*r*r
}

// BusyEnergyMJ returns the energy (millijoules) consumed by one core
// running for durationMS milliseconds at frequency f, excluding the idle
// floor (which Meter accounts once for the whole package).
func (m Model) BusyEnergyMJ(f, durationMS float64) float64 {
	if durationMS < 0 {
		panic("power: negative duration")
	}
	return m.CoreActiveWatts(f) * durationMS
}

// Meter integrates a cluster's energy over a simulated run. It is not
// safe for concurrent use; the simulator is single-threaded virtual time.
type Meter struct {
	model  Model
	busyMJ float64 // accumulated above-idle energy
	// byFreq attributes busy energy to the frequency it was burned at,
	// so the harness can show how much of a policy's power is boost
	// energy vs default-frequency work.
	byFreq map[float64]float64
	// dynamicIdle switches the idle floor from "IdleWatts for the whole
	// horizon" to explicitly-integrated machine time (AddIdleMachineMS):
	// the accounting a fleet whose machine count changes mid-run needs.
	// model.IdleWatts is then the per-machine-unit idle power.
	dynamicIdle   bool
	idleMachineMS float64
}

// NewMeter creates a meter over model.
func NewMeter(model Model) *Meter {
	return &Meter{model: model, byFreq: make(map[float64]float64)}
}

// AddBusy records one core busy for durationMS at frequency f.
func (mt *Meter) AddBusy(f, durationMS float64) {
	e := mt.model.BusyEnergyMJ(f, durationMS)
	mt.busyMJ += e
	mt.byFreq[f] += e
}

// ByFrequency returns a copy of the busy-energy attribution per
// frequency (GHz -> millijoules).
func (mt *Meter) ByFrequency() map[float64]float64 {
	out := make(map[float64]float64, len(mt.byFreq))
	for f, e := range mt.byFreq {
		out[f] = e
	}
	return out
}

// SetDynamicIdle switches the meter to integrated machine-time idle
// accounting: the idle floor becomes IdleWatts × the machine-unit time
// recorded via AddIdleMachineMS, instead of IdleWatts × horizon. An
// autoscaled fleet uses this so machines that are scaled away stop
// burning idle power.
func (mt *Meter) SetDynamicIdle(on bool) { mt.dynamicIdle = on }

// AddIdleMachineMS records machineUnits machines idling (or serving —
// the floor is paid either way) for durationMS. Only meaningful in
// dynamic-idle mode; a machine unit is whatever granularity the caller
// calibrated IdleWatts for.
func (mt *Meter) AddIdleMachineMS(machineUnits, durationMS float64) {
	if durationMS < 0 {
		panic("power: negative duration")
	}
	mt.idleMachineMS += machineUnits * durationMS
}

// TotalEnergyMJ returns the package energy over a horizon of horizonMS
// milliseconds: the idle floor for the whole horizon (or, in
// dynamic-idle mode, for the integrated machine time) plus accumulated
// busy energy.
func (mt *Meter) TotalEnergyMJ(horizonMS float64) float64 {
	if horizonMS < 0 {
		panic("power: negative horizon")
	}
	if mt.dynamicIdle {
		return mt.model.IdleWatts*mt.idleMachineMS + mt.busyMJ
	}
	return mt.model.IdleWatts*horizonMS + mt.busyMJ
}

// AveragePowerWatts returns mean package power over the horizon —
// the number Fig. 14 plots.
func (mt *Meter) AveragePowerWatts(horizonMS float64) float64 {
	if horizonMS <= 0 {
		panic("power: non-positive horizon")
	}
	return mt.TotalEnergyMJ(horizonMS) / horizonMS
}

// BusyEnergyMJ returns only the above-idle energy recorded so far.
func (mt *Meter) BusyEnergyMJ() float64 { return mt.busyMJ }

// Reset clears accumulated energy.
func (mt *Meter) Reset() {
	mt.busyMJ = 0
	mt.byFreq = make(map[float64]float64)
	mt.idleMachineMS = 0
}

// Model returns the meter's power model.
func (mt *Meter) Model() Model { return mt.model }
