package power

import (
	"math"
	"testing"
)

func TestCoreActiveWattsMonotone(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, f := range []float64{1.2, 1.5, 1.8, 2.1, 2.4, 2.7} {
		w := m.CoreActiveWatts(f)
		if w <= prev {
			t.Fatalf("power not increasing at %v GHz", f)
		}
		prev = w
	}
}

func TestCubicScaling(t *testing.T) {
	m := Model{IdleWatts: 10, StaticWatts: 0, MaxDynWatts: 8, MaxFreq: 2}
	// Pure dynamic: half frequency should cost 1/8 the dynamic power.
	full := m.CoreActiveWatts(2)
	half := m.CoreActiveWatts(1)
	if math.Abs(full/half-8) > 1e-9 {
		t.Errorf("cubic scaling broken: %v vs %v", full, half)
	}
}

func TestMeterAccounting(t *testing.T) {
	m := Model{IdleWatts: 10, StaticWatts: 1, MaxDynWatts: 3, MaxFreq: 2}
	mt := NewMeter(m)
	// One core busy 100 ms at max frequency: 4 W * 100 ms = 400 mJ busy.
	mt.AddBusy(2, 100)
	if got := mt.BusyEnergyMJ(); math.Abs(got-400) > 1e-9 {
		t.Errorf("busy energy = %v, want 400", got)
	}
	// Over a 1000 ms horizon: idle 10 W * 1000 ms + 400 = 10400 mJ.
	if got := mt.TotalEnergyMJ(1000); math.Abs(got-10400) > 1e-9 {
		t.Errorf("total energy = %v", got)
	}
	if got := mt.AveragePowerWatts(1000); math.Abs(got-10.4) > 1e-9 {
		t.Errorf("average power = %v", got)
	}
	mt.Reset()
	if mt.BusyEnergyMJ() != 0 {
		t.Error("reset did not clear")
	}
}

func TestIdleClusterAveragesIdlePower(t *testing.T) {
	mt := NewMeter(Default())
	if got := mt.AveragePowerWatts(500); math.Abs(got-Default().IdleWatts) > 1e-9 {
		t.Errorf("idle average = %v", got)
	}
}

func TestCalibrationNearPaper(t *testing.T) {
	// Sanity-check the calibration targets: 16 ISNs at 1.8 GHz with ~20%
	// utilization (the default trace's exhaustive load) should land near
	// the paper's exhaustive-search 36 W, and idle must match the paper's
	// 14.53 W.
	m := Default()
	if m.IdleWatts != 14.53 {
		t.Errorf("idle = %v", m.IdleWatts)
	}
	pkg := m.IdleWatts + 16*0.20*m.CoreActiveWatts(1.8)
	if pkg < 30 || pkg > 42 {
		t.Errorf("exhaustive-like package power %v W outside 30-42 W", pkg)
	}
}

func TestPanics(t *testing.T) {
	m := Default()
	mt := NewMeter(m)
	cases := []func(){
		func() { m.CoreActiveWatts(0) },
		func() { m.BusyEnergyMJ(1.8, -1) },
		func() { mt.TotalEnergyMJ(-1) },
		func() { mt.AveragePowerWatts(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestByFrequencyAttribution(t *testing.T) {
	mt := NewMeter(Default())
	mt.AddBusy(1.8, 100)
	mt.AddBusy(2.7, 50)
	mt.AddBusy(1.8, 10)
	by := mt.ByFrequency()
	if len(by) != 2 {
		t.Fatalf("got %d frequency buckets", len(by))
	}
	total := 0.0
	for _, e := range by {
		total += e
	}
	if math.Abs(total-mt.BusyEnergyMJ()) > 1e-9 {
		t.Errorf("attribution %v does not sum to busy energy %v", total, mt.BusyEnergyMJ())
	}
	// Mutating the copy must not affect the meter.
	by[1.8] = 0
	if mt.ByFrequency()[1.8] == 0 {
		t.Error("ByFrequency returned internal state")
	}
	mt.Reset()
	if len(mt.ByFrequency()) != 0 {
		t.Error("reset did not clear attribution")
	}
}
