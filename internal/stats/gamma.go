package stats

import (
	"errors"
	"math"
	"sort"
)

// GammaDist is a two-parameter Gamma distribution with the usual
// shape/scale parameterization: mean = Shape*Scale, variance =
// Shape*Scale². The Taily baseline (Aly et al., SIGIR'13) models the
// per-ISN distribution of document scores for a query with a fitted
// Gamma and estimates how many documents exceed the global K-th score;
// Fig. 6 of the Cottage paper shows why that fit can misestimate the
// tail, which is exactly the failure mode the Cottage-withoutML
// ablation reproduces.
type GammaDist struct {
	Shape float64
	Scale float64
}

// ErrDegenerate is returned when a sample has too little spread (or too
// few points) to admit a Gamma fit.
var ErrDegenerate = errors.New("stats: sample is degenerate, cannot fit Gamma")

// FitGamma estimates a Gamma distribution from the positive entries of xs
// by the method of moments (shape = mean²/var, scale = var/mean), which is
// what Taily's index-time statistics support: it stores only Σx and Σx²
// per term. Returns ErrDegenerate when fewer than two positive values
// exist or the variance vanishes.
func FitGamma(xs []float64) (GammaDist, error) {
	pos := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) < 2 {
		return GammaDist{}, ErrDegenerate
	}
	m := Mean(pos)
	v := Variance(pos)
	if v <= 1e-12 || m <= 0 {
		return GammaDist{}, ErrDegenerate
	}
	return GammaDist{Shape: m * m / v, Scale: v / m}, nil
}

// FitGammaMoments builds the distribution directly from a mean and
// variance, for callers that maintain running moments instead of samples.
func FitGammaMoments(mean, variance float64) (GammaDist, error) {
	if variance <= 1e-12 || mean <= 0 {
		return GammaDist{}, ErrDegenerate
	}
	return GammaDist{Shape: mean * mean / variance, Scale: variance / mean}, nil
}

// Mean returns the distribution mean.
func (g GammaDist) Mean() float64 { return g.Shape * g.Scale }

// Variance returns the distribution variance.
func (g GammaDist) Variance() float64 { return g.Shape * g.Scale * g.Scale }

// PDF evaluates the density at x.
func (g GammaDist) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if g.Shape < 1 {
			return math.Inf(1)
		}
		if g.Shape == 1 {
			return 1 / g.Scale
		}
		return 0
	}
	lg, _ := math.Lgamma(g.Shape)
	logp := (g.Shape-1)*math.Log(x) - x/g.Scale - lg - g.Shape*math.Log(g.Scale)
	return math.Exp(logp)
}

// CDF returns P(X <= x), the regularized lower incomplete gamma
// P(shape, x/scale).
func (g GammaDist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaLower(g.Shape, x/g.Scale)
}

// TailProb returns P(X > x). Taily uses this to estimate the count of
// documents scoring above the collection-wide K-th score.
func (g GammaDist) TailProb(x float64) float64 {
	return 1 - g.CDF(x)
}

// RegIncGammaLower computes the regularized lower incomplete gamma
// function P(a, x) using the series expansion for x < a+1 and the
// continued fraction for the complement otherwise (Numerical Recipes
// §6.2 structure, implemented from the standard formulas).
func RegIncGammaLower(a, x float64) float64 {
	if a <= 0 {
		panic("stats: RegIncGammaLower requires a > 0")
	}
	if x < 0 {
		panic("stats: RegIncGammaLower requires x >= 0")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a, x) by its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by Lentz's
// modified continued fraction.
func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KSDistance returns the two-sided Kolmogorov–Smirnov statistic between the
// empirical distribution of xs and the model g: sup_x |F_n(x) - F(x)|. The
// harness uses it to quantify how badly a Gamma fit misses the real score
// histogram (Fig. 6).
func KSDistance(xs []float64, g GammaDist) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	n := float64(len(c))
	maxDiff := 0.0
	for i, x := range c {
		f := g.CDF(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(f - lo); d > maxDiff {
			maxDiff = d
		}
		if d := math.Abs(f - hi); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}
