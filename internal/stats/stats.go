// Package stats provides the descriptive statistics, histogramming and
// score-distribution modelling used throughout the repository: per-term
// score summaries for the predictor features (Tables I and II of the
// paper), latency percentiles for the evaluation figures, and the Gamma
// distribution machinery that the Taily baseline and the
// Cottage-withoutML ablation rely on (Section III-B, Fig. 6).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeometricMean returns the geometric mean of the positive entries of xs.
// Non-positive entries are ignored, matching how score statistics treat
// documents with no matching terms. Returns 0 if no entry is positive.
func GeometricMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// HarmonicMean returns the harmonic mean of the positive entries of xs,
// or 0 if no entry is positive.
func HarmonicMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += 1 / x
			n++
		}
	}
	if n == 0 || s == 0 {
		return 0
	}
	return float64(n) / s
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It sorts a copy; the input is not
// modified. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return PercentileSorted(c, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary bundles the moments and quantiles of one sample. It is the raw
// material for both predictor feature vectors and evaluation tables.
type Summary struct {
	N             int
	Mean          float64
	Variance      float64
	GeometricMean float64
	HarmonicMean  float64
	Min           float64
	Q1            float64 // 25th percentile
	Median        float64
	Q3            float64 // 75th percentile
	P95           float64
	P99           float64
	Max           float64
}

// Summarize computes a Summary of xs in one pass over a sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return Summary{
		N:             len(c),
		Mean:          Mean(c),
		Variance:      Variance(c),
		GeometricMean: GeometricMean(c),
		HarmonicMean:  HarmonicMean(c),
		Min:           c[0],
		Q1:            PercentileSorted(c, 25),
		Median:        PercentileSorted(c, 50),
		Q3:            PercentileSorted(c, 75),
		P95:           PercentileSorted(c, 95),
		P99:           PercentileSorted(c, 99),
		Max:           c[len(c)-1],
	}
}

// Histogram is a fixed-width binning of a sample, as plotted in Fig. 2(a)
// and Fig. 6 of the paper.
type Histogram struct {
	Lo, Hi float64 // range covered; values outside are clamped to edge bins
	Counts []int
}

// NewHistogram bins xs into bins equal-width buckets over [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with empty range")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the share of observations falling into bin i.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(t)
}

// BootstrapCI estimates a confidence interval for the mean of xs by
// percentile bootstrap: resamples samples of len(xs) with replacement,
// each contributing one mean; the interval spans the (1-level)/2 and
// (1+level)/2 percentiles of those means. Deterministic given seed.
// Returns (lo, hi); degenerate inputs return the point mean twice.
func BootstrapCI(xs []float64, resamples int, level float64, seed uint64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	m := Mean(xs)
	if len(xs) == 1 || resamples <= 1 || level <= 0 || level >= 1 {
		return m, m
	}
	// A local SplitMix64 keeps this package free of the xrand dependency
	// (xrand already depends on nothing; stats stays a leaf too).
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	means := make([]float64, resamples)
	for r := range means {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[next()%uint64(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return PercentileSorted(means, alpha*100), PercentileSorted(means, (1-alpha)*100)
}
