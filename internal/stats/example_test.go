package stats_test

import (
	"fmt"

	"cottage/internal/stats"
)

// ExampleFitGamma fits a Gamma distribution to a score sample the way the
// Taily baseline models per-term score distributions.
func ExampleFitGamma() {
	scores := []float64{1, 1, 2, 2, 2, 3, 3, 4, 5, 9}
	g, err := stats.FitGamma(scores)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean %.1f, P(X > 6) = %.3f\n", g.Mean(), g.TailProb(6))
	// Output:
	// mean 3.2, P(X > 6) = 0.112
}

// ExampleSummarize computes the descriptive summary that feeds the
// Table I quality features.
func ExampleSummarize() {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean %.1f median %.1f max %.0f\n", s.Mean, s.Median, s.Max)
	// Output:
	// mean 5.0 median 4.5 max 9
}
