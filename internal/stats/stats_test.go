package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cottage/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice statistics should be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty slice should be 0")
	}
	if GeometricMean(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Error("means of empty slice should be 0")
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("Summarize(nil).N != 0")
	}
}

func TestGeometricHarmonic(t *testing.T) {
	xs := []float64{1, 4, 16}
	if g := GeometricMean(xs); !almostEq(g, 4, 1e-9) {
		t.Errorf("GeometricMean = %v, want 4", g)
	}
	hs := []float64{1, 2, 4}
	if h := HarmonicMean(hs); !almostEq(h, 12.0/7.0, 1e-9) {
		t.Errorf("HarmonicMean = %v, want %v", h, 12.0/7.0)
	}
	// Non-positive entries are ignored.
	if g := GeometricMean([]float64{0, -3, 4, 16}); !almostEq(g, 8, 1e-9) {
		t.Errorf("GeometricMean with zeros = %v, want 8", g)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if p := Percentile(xs, 0); p != 15 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 50 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 35 {
		t.Errorf("P50 = %v", p)
	}
	if p := Percentile(xs, 25); p != 20 {
		t.Errorf("P25 = %v", p)
	}
	// Input must not be modified.
	shuffled := []float64{50, 15, 40, 20, 35}
	_ = Percentile(shuffled, 50)
	if shuffled[0] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	if err := quick.Check(func(a, b uint8) bool {
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("bad summary bounds: %+v", s)
	}
	if !almostEq(s.Mean, 5.5, 1e-9) || !almostEq(s.Median, 5.5, 1e-9) {
		t.Errorf("bad central tendency: %+v", s)
	}
	if s.Q1 >= s.Median || s.Median >= s.Q3 || s.Q3 > s.P95 || s.P95 > s.Max {
		t.Errorf("quantiles out of order: %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -10, 100}, 0, 3, 3)
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -10 clamps to bin 0, 100 clamps to bin 2.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if c := h.BinCenter(1); !almostEq(c, 1.5, 1e-9) {
		t.Errorf("BinCenter(1) = %v", c)
	}
	if f := h.Fraction(0); !almostEq(f, 1.0/3.0, 1e-9) {
		t.Errorf("Fraction(0) = %v", f)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(nil, 0, 1, 0) },
		func() { NewHistogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaLower(1, x); !almostEq(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := RegIncGammaLower(0.5, x); !almostEq(got, want, 1e-10) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
	if RegIncGammaLower(3, 0) != 0 {
		t.Error("P(a,0) must be 0")
	}
}

func TestGammaDistMoments(t *testing.T) {
	g := GammaDist{Shape: 3, Scale: 2}
	if g.Mean() != 6 || g.Variance() != 12 {
		t.Errorf("moments wrong: %v %v", g.Mean(), g.Variance())
	}
}

func TestGammaCDFMonotone(t *testing.T) {
	g := GammaDist{Shape: 2.5, Scale: 1.7}
	prev := -1.0
	for x := 0.0; x < 30; x += 0.25 {
		c := g.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of [0,1] at %v: %v", x, c)
		}
		prev = c
	}
	if !almostEq(g.CDF(1000), 1, 1e-9) {
		t.Error("CDF should approach 1")
	}
	if g.TailProb(0) != 1 {
		t.Error("TailProb(0) should be 1")
	}
}

func TestGammaPDFIntegratesToCDF(t *testing.T) {
	g := GammaDist{Shape: 4, Scale: 0.5}
	// Trapezoid integral of the PDF up to x should match CDF(x).
	integral := 0.0
	dx := 0.001
	prev := g.PDF(0)
	for x := dx; x <= 5; x += dx {
		cur := g.PDF(x)
		integral += (prev + cur) / 2 * dx
		prev = cur
	}
	if !almostEq(integral, g.CDF(5), 1e-3) {
		t.Errorf("integral %v vs CDF %v", integral, g.CDF(5))
	}
}

func TestFitGammaRecoversParameters(t *testing.T) {
	r := xrand.New(99)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Gamma(2.0, 3.0)
	}
	g, err := FitGamma(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Shape-2.0) > 0.1 {
		t.Errorf("fitted shape = %v, want ~2", g.Shape)
	}
	if math.Abs(g.Scale-3.0) > 0.15 {
		t.Errorf("fitted scale = %v, want ~3", g.Scale)
	}
}

func TestFitGammaDegenerate(t *testing.T) {
	for _, xs := range [][]float64{
		nil,
		{5},
		{5, 5, 5, 5},
		{-1, -2, -3},
		{0, 0, 3},
	} {
		if _, err := FitGamma(xs); err == nil {
			t.Errorf("FitGamma(%v) should fail", xs)
		}
	}
	if _, err := FitGammaMoments(0, 1); err == nil {
		t.Error("FitGammaMoments with zero mean should fail")
	}
	if _, err := FitGammaMoments(1, 0); err == nil {
		t.Error("FitGammaMoments with zero variance should fail")
	}
}

func TestFitGammaIgnoresNonPositive(t *testing.T) {
	xs := []float64{0, 0, 0, 1, 2, 3, 4, 5}
	g, err := FitGamma(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g.Mean(), 3, 1e-9) {
		t.Errorf("mean of positive part = %v, want 3", g.Mean())
	}
}

func TestKSDistance(t *testing.T) {
	r := xrand.New(7)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Gamma(3, 1)
	}
	good := GammaDist{Shape: 3, Scale: 1}
	bad := GammaDist{Shape: 0.5, Scale: 6}
	dGood := KSDistance(xs, good)
	dBad := KSDistance(xs, bad)
	if dGood > 0.02 {
		t.Errorf("KS to true distribution = %v, want small", dGood)
	}
	if dBad < 5*dGood {
		t.Errorf("KS should separate good (%v) from bad (%v) fits", dGood, dBad)
	}
	if KSDistance(nil, good) != 0 {
		t.Error("KS of empty sample should be 0")
	}
}

func BenchmarkSummarize(b *testing.B) {
	r := xrand.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Summarize(xs)
	}
}

func BenchmarkGammaCDF(b *testing.B) {
	g := GammaDist{Shape: 2.3, Scale: 1.1}
	for i := 0; i < b.N; i++ {
		_ = g.CDF(float64(i%20) + 0.5)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := xrand.New(31)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()*2
	}
	lo, hi := BootstrapCI(xs, 400, 0.95, 1)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("mean %v outside CI [%v, %v]", m, lo, hi)
	}
	// Width should be around 2*1.96*sigma/sqrt(n) = ~0.35.
	if w := hi - lo; w < 0.2 || w > 0.6 {
		t.Errorf("CI width %v implausible", w)
	}
	// Deterministic given the seed.
	lo2, hi2 := BootstrapCI(xs, 400, 0.95, 1)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic")
	}
	// Degenerate inputs.
	if l, h := BootstrapCI(nil, 100, 0.95, 1); l != 0 || h != 0 {
		t.Error("empty input CI should be zero")
	}
	if l, h := BootstrapCI([]float64{7}, 100, 0.95, 1); l != 7 || h != 7 {
		t.Error("single sample CI should collapse")
	}
	// Wider level => wider interval.
	lo99, hi99 := BootstrapCI(xs, 400, 0.99, 1)
	if hi99-lo99 <= hi-lo {
		t.Error("99% CI should be wider than 95%")
	}
}
