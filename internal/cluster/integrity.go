package cluster

import "math"

// Virtual-time data integrity: the twin's model of at-rest rot,
// quarantine and self-repair, mirroring the live path's integrity plane
// (index wire-v4 block checksums, the rpc quarantine gate, and the
// internal/integrity scrubber/repair supervisor) so harness sweeps can
// measure detection latency, MTTR and quality-under-repair on the
// deterministic virtual clock.
//
// The model: CorruptISN (or a faults.CorruptionSchedule) lands silent
// rot on one node's shard copy at a virtual instant, positioned at a
// fraction of the way through its postings. The rot is detected by
// whichever comes first —
//
//   - a query routed to the node at or after the rot instant: the
//     query-time checksum gate refuses to score the mismatched block,
//     the node answers with an immediate typed rejection
//     (Execution.CorruptReject, the twin's CodeQuarantined), and the
//     shard-level failover retries a sibling; or
//   - the background scrubber: its cursor sweeps the whole copy every
//     ScrubEpochMS, so it reaches the rotted block at a computable
//     instant no more than one epoch after the rot lands.
//
// Either way the node is quarantined — excluded from replica selection
// outright, below breaker-open, exactly like the live selector — and,
// when RepairMS > 0, re-admitted RepairMS later (re-fetching verified
// bytes from a healthy sibling, or re-reading disk when none is left).
// The invariant the live plane enforces with CRC32C holds here by
// construction: a corrupted copy never contributes hits to any query.

// IntegrityStats is the twin's corruption/repair ledger snapshot.
type IntegrityStats struct {
	// Corruptions is how many rot events landed (CorruptISN calls that
	// took effect).
	Corruptions int
	// QueryDetections and ScrubDetections split detections by who found
	// the rot first.
	QueryDetections int
	ScrubDetections int
	// Quarantines counts quarantine transitions; Repairs counts
	// re-admissions.
	Quarantines int
	Repairs     int
	// CorruptRejects counts requests bounced by a quarantined or
	// rot-detecting node (each bounce is one failover the query had to
	// absorb).
	CorruptRejects int
	// MeanDetectionMS averages rot-landing to detection; MeanMTTRMS
	// averages detection to re-admission. Zero when nothing detected or
	// repaired.
	MeanDetectionMS float64
	MeanMTTRMS      float64
}

// integrityTotals is the cluster-level accumulator behind IntegrityStats.
type integrityTotals struct {
	corruptions     int
	queryDetections int
	scrubDetections int
	quarantines     int
	repairs         int
	corruptRejects  int
	detectTotalMS   float64
	mttrTotalMS     float64
}

// CorruptISN lands silent at-rest rot on a node's shard copy at virtual
// time tMS, offsetFrac (clamped to [0, 1)) of the way through its
// postings. A node with rot already pending keeps the earlier event; a
// quarantined node ignores new rot — its bytes are about to be replaced
// wholesale by the repair.
func (c *Cluster) CorruptISN(node int, tMS, offsetFrac float64) {
	n := c.ISNs[node]
	if n.quarantined {
		return
	}
	if offsetFrac < 0 {
		offsetFrac = 0
	}
	if offsetFrac >= 1 {
		offsetFrac = math.Nextafter(1, 0)
	}
	if tMS >= n.corruptAtMS {
		return
	}
	n.corruptAtMS = tMS
	n.corruptFrac = offsetFrac
	c.integ.corruptions++
}

// NodeQuarantined reports whether a node is currently out of service
// for data integrity (advance state with tMS first via any routing
// call; this is a pure read).
func (c *Cluster) NodeQuarantined(node int) bool { return c.ISNs[node].quarantined }

// groupQuarantined reports whether shard's replica group is unservable
// specifically because every live member is quarantined (at least one
// member must be alive — an all-dead group is a failure, not a bounce).
func (c *Cluster) groupQuarantined(shard int) bool {
	alive := false
	for _, n := range c.topo.Group(shard) {
		if c.nodeDead(n) || !c.ISNs[n].active {
			continue
		}
		if !c.ISNs[n].quarantined {
			return false
		}
		alive = true
	}
	return alive
}

// QuarantinedCount returns how many nodes are currently quarantined.
func (c *Cluster) QuarantinedCount() int {
	n := 0
	for _, node := range c.ISNs {
		if node.quarantined {
			n++
		}
	}
	return n
}

// IntegrityStats snapshots the corruption/repair ledger.
func (c *Cluster) IntegrityStats() IntegrityStats {
	st := IntegrityStats{
		Corruptions:     c.integ.corruptions,
		QueryDetections: c.integ.queryDetections,
		ScrubDetections: c.integ.scrubDetections,
		Quarantines:     c.integ.quarantines,
		Repairs:         c.integ.repairs,
		CorruptRejects:  c.integ.corruptRejects,
	}
	if d := c.integ.queryDetections + c.integ.scrubDetections; d > 0 {
		st.MeanDetectionMS = c.integ.detectTotalMS / float64(d)
	}
	if c.integ.repairs > 0 {
		st.MeanMTTRMS = c.integ.mttrTotalMS / float64(c.integ.repairs)
	}
	return st
}

// scrubDetectMS returns when the scrubber's cursor first reaches the
// rotted block at corruptFrac after the rot lands at corruptAtMS. The
// cursor starts at offset 0 at t=0 and sweeps the whole copy every
// ScrubEpochMS, so detection lags the rot by less than one full epoch.
// +Inf when scrubbing is off.
func (c *Cluster) scrubDetectMS(corruptAtMS, frac float64) float64 {
	if c.ScrubEpochMS <= 0 {
		return math.Inf(1)
	}
	e := c.ScrubEpochMS
	t := (math.Floor(corruptAtMS/e) + frac) * e
	if t < corruptAtMS {
		t += e
	}
	return t
}

// quarantineNode transitions a node to quarantined at detectMS and
// schedules its repair. Repair is always schedulable when RepairMS > 0:
// a healthy sibling serves verified shard bytes over the transfer verb,
// and a lone (or fully rotted) group falls back to re-reading and
// re-verifying its own disk copy.
func (c *Cluster) quarantineNode(node int, detectMS float64, byScrub bool) {
	n := c.ISNs[node]
	if n.quarantined {
		return
	}
	n.quarantined = true
	n.quarantinedAtMS = detectMS
	c.integ.quarantines++
	c.integ.detectTotalMS += detectMS - n.corruptAtMS
	if byScrub {
		c.integ.scrubDetections++
	} else {
		c.integ.queryDetections++
	}
	if c.RepairMS > 0 {
		n.repairAtMS = detectMS + c.RepairMS
	} else {
		n.repairAtMS = math.Inf(1)
	}
}

// dealRot distributes the cluster's scheduled rot events (Cluster.Rot,
// already time-sorted) into per-node queues. Reset calls it, so a
// schedule installed before a run replays identically on every run.
func (c *Cluster) dealRot() {
	for _, n := range c.ISNs {
		n.rotQueue = n.rotQueue[:0]
	}
	for _, ev := range c.Rot {
		if ev.Node >= 0 && ev.Node < len(c.ISNs) {
			n := c.ISNs[ev.Node]
			n.rotQueue = append(n.rotQueue, ev)
		}
	}
}

// syncIntegrity advances a node's integrity state machine to tMS,
// replaying its transitions — scheduled rot landing, scrub detection,
// repair completion — in virtual-time order. Called from every routing
// and execution path before the node's state is consulted, so time only
// ever moves the machine forward deterministically.
func (c *Cluster) syncIntegrity(node int, tMS float64) {
	n := c.ISNs[node]
	for {
		if n.quarantined {
			// Scheduled rot landing before the repair completes is moot:
			// the repair replaces the whole copy.
			cut := math.Min(n.repairAtMS, tMS)
			for len(n.rotQueue) > 0 && n.rotQueue[0].TimeMS <= cut {
				n.rotQueue = n.rotQueue[1:]
			}
			if n.repairAtMS > tMS {
				return
			}
			n.quarantined = false
			c.integ.repairs++
			c.integ.mttrTotalMS += n.repairAtMS - n.quarantinedAtMS
			n.corruptAtMS = math.Inf(1)
			n.corruptFrac = 0
			n.repairAtMS = math.Inf(1)
			continue
		}
		det := c.scrubDetectMS(n.corruptAtMS, n.corruptFrac)
		if len(n.rotQueue) > 0 && n.rotQueue[0].TimeMS <= tMS && n.rotQueue[0].TimeMS < det {
			ev := n.rotQueue[0]
			n.rotQueue = n.rotQueue[1:]
			c.CorruptISN(node, ev.TimeMS, ev.OffsetFrac)
			continue
		}
		if det <= tMS {
			c.quarantineNode(node, det, true)
			continue
		}
		return
	}
}

// resetIntegrityState returns a node's integrity fields to pristine.
func (n *ISN) resetIntegrityState() {
	n.corruptAtMS = math.Inf(1)
	n.corruptFrac = 0
	n.quarantined = false
	n.quarantinedAtMS = 0
	n.repairAtMS = math.Inf(1)
}
