package cluster

import (
	"math"
	"testing"

	"cottage/internal/search"
	"cottage/internal/xrand"
)

func testCluster(n int) *Cluster {
	cfg := DefaultConfig()
	cfg.NumISNs = n
	cfg.InferMS = 0 // most tests want exact arithmetic
	return New(cfg)
}

func TestLadder(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Default() != 1.8 || l.Max() != 2.7 {
		t.Errorf("default %v max %v", l.Default(), l.Max())
	}
	if l.ClampUp(1.0) != 1.2 {
		t.Error("ClampUp below ladder")
	}
	if l.ClampUp(1.9) != 2.1 {
		t.Error("ClampUp mid ladder")
	}
	if l.ClampUp(3.5) != 2.7 {
		t.Error("ClampUp above ladder")
	}
	if l.ClampUp(1.8) != 1.8 {
		t.Error("ClampUp exact level")
	}
}

func TestLadderValidate(t *testing.T) {
	bad := []Ladder{
		{},
		{Levels: []float64{2, 1}, DefaultIdx: 0},
		{Levels: []float64{1, 2}, DefaultIdx: 5},
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("ladder %d should be invalid", i)
		}
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{BaseCycles: 100, CyclesPerPosting: 2, CyclesPerDoc: 3, CyclesPerInsert: 5}
	st := search.ExecStats{PostingsTraversed: 10, DocsScored: 4, HeapInserts: 2}
	want := 100.0 + 20 + 12 + 10
	if got := cm.Cycles(st); got != want {
		t.Errorf("Cycles = %v, want %v", got, want)
	}
}

func TestServiceMS(t *testing.T) {
	// 1.8e6 cycles at 1.8 GHz = 1 ms.
	if got := ServiceMS(1.8e6, 1.8); math.Abs(got-1) > 1e-12 {
		t.Errorf("ServiceMS = %v", got)
	}
	// Frequency scaling is inversely proportional (paper Eq. 1).
	s1 := ServiceMS(1e7, 1.2)
	s2 := ServiceMS(1e7, 2.4)
	if math.Abs(s1/s2-2) > 1e-12 {
		t.Errorf("Eq.1 scaling broken: %v / %v", s1, s2)
	}
}

func TestExecuteNoQueue(t *testing.T) {
	c := testCluster(2)
	// 3.6e6 cycles at 1.8 GHz = 2 ms.
	e := c.Execute(0, 10, 3.6e6, 1.8, math.Inf(1))
	if !e.Completed {
		t.Fatal("should complete")
	}
	wantStart := 10 + c.Net.AggToISNMS
	if math.Abs(e.StartMS-wantStart) > 1e-12 {
		t.Errorf("start = %v, want %v", e.StartMS, wantStart)
	}
	if math.Abs(e.FinishMS-(wantStart+2)) > 1e-12 {
		t.Errorf("finish = %v", e.FinishMS)
	}
	if e.QueueMS != 0 {
		t.Errorf("queue = %v", e.QueueMS)
	}
}

func TestExecuteQueueing(t *testing.T) {
	c := testCluster(1)
	e1 := c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1)) // 1 ms
	e2 := c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1)) // queued behind e1
	if e2.StartMS < e1.FinishMS {
		t.Error("second request started before first finished")
	}
	if e2.QueueMS <= 0 {
		t.Error("second request should have queued")
	}
	// A request to the other... (only one ISN here) — arriving later, no queue.
	e3 := c.Execute(0, 100, 1.8e6, 1.8, math.Inf(1))
	if e3.QueueMS != 0 {
		t.Error("late request should not queue")
	}
}

func TestDeadlineTruncation(t *testing.T) {
	c := testCluster(1)
	// 18e6 cycles at 1.8 GHz = 10 ms, but deadline at t=5.
	e := c.Execute(0, 0, 18e6, 1.8, 5)
	if e.Completed {
		t.Fatal("should not complete")
	}
	if e.FinishMS != 5 {
		t.Errorf("finish = %v, want 5 (deadline)", e.FinishMS)
	}
	if e.ServiceMS >= 10 {
		t.Errorf("busy time %v should be truncated", e.ServiceMS)
	}
	// Deadline earlier than start: no busy time at all.
	e2 := c.Execute(0, 0, 1e6, 1.8, 1)
	if e2.Completed || e2.ServiceMS != 0 {
		t.Errorf("pre-start deadline: %+v", e2)
	}
}

func TestBoostFinishesFaster(t *testing.T) {
	a := testCluster(1)
	b := testCluster(1)
	cycles := 2.7e7
	slow := a.Execute(0, 0, cycles, 1.8, math.Inf(1))
	fast := b.Execute(0, 0, cycles, 2.7, math.Inf(1))
	ratio := slow.ServiceMS / fast.ServiceMS
	if math.Abs(ratio-1.5) > 1e-9 {
		t.Errorf("boost speedup = %v, want 1.5", ratio)
	}
}

func TestEquivalentLatency(t *testing.T) {
	c := testCluster(1)
	// Load the ISN with 10 ms of work.
	c.Execute(0, 0, 18e6, 1.8, math.Inf(1))
	// Eq. 2: backlog + own service at f.
	got := c.EquivalentLatencyMS(0, 0, 1.8e6, 1.8)
	want := (10 + c.Net.AggToISNMS) + 1 // backlog (incl. fabric offset) + 1 ms
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("equivalent latency = %v, want %v", got, want)
	}
	// Boosting reduces only the service component.
	boosted := c.EquivalentLatencyMS(0, 0, 1.8e6, 2.7)
	if boosted >= got {
		t.Error("boost should reduce equivalent latency")
	}
}

func TestEnergyAccounting(t *testing.T) {
	c := testCluster(2)
	c.Execute(0, 0, 18e6, 1.8, math.Inf(1)) // 10 ms busy at 1.8
	model := c.Meter.Model()
	wantBusy := model.BusyEnergyMJ(1.8, 10)
	if got := c.Meter.BusyEnergyMJ(); math.Abs(got-wantBusy) > 1e-9 {
		t.Errorf("busy energy = %v, want %v", got, wantBusy)
	}
	// Average power must exceed idle while busy work exists.
	if c.AveragePowerWatts() <= model.IdleWatts {
		t.Error("average power should exceed idle")
	}
}

func TestHigherFrequencyCostsMoreEnergy(t *testing.T) {
	a, b := testCluster(1), testCluster(1)
	cycles := 2.7e7
	a.Execute(0, 0, cycles, 1.8, math.Inf(1))
	b.Execute(0, 0, cycles, 2.7, math.Inf(1))
	// Same work: higher frequency burns more busy energy (cubic power
	// dominates the shorter duration under the default model).
	ea := a.Meter.BusyEnergyMJ()
	eb := b.Meter.BusyEnergyMJ()
	if eb <= ea {
		t.Errorf("boost energy %v should exceed default energy %v", eb, ea)
	}
}

func TestUtilizationAndReset(t *testing.T) {
	c := testCluster(2)
	if c.Utilization() != 0 {
		t.Error("fresh cluster utilization should be 0")
	}
	c.Execute(0, 0, 18e6, 1.8, math.Inf(1))
	u := c.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if c.ISNs[0].QueriesServed != 1 {
		t.Error("QueriesServed not counted")
	}
	c.Reset()
	if c.NowMS() != 0 || c.Utilization() != 0 || c.Meter.BusyEnergyMJ() != 0 {
		t.Error("reset incomplete")
	}
}

func TestClientLatency(t *testing.T) {
	c := testCluster(1)
	got := c.ClientLatencyMS(10, 25)
	want := 15 + 2*c.Net.ClientMS
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("client latency = %v, want %v", got, want)
	}
}

func TestInferenceOverheadCharged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISNs = 1
	c := New(cfg) // InferMS > 0
	c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1))
	if c.ISNs[0].BusyMS <= 1 {
		t.Error("inference time not charged to busy accounting")
	}
}

func TestNewPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero ISNs should panic")
			}
		}()
		New(Config{NumISNs: 0, Ladder: DefaultLadder()})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad ladder should panic")
			}
		}()
		New(Config{NumISNs: 1, Ladder: Ladder{}})
	}()
}

func TestFrequencySweepMatchesFig4(t *testing.T) {
	// Fig. 4: 97 ms at 1.2 GHz dropping to 40 ms at 2.7 GHz — a 2.43x
	// improvement driven purely by 1/f scaling (2.7/1.2 = 2.25 plus the
	// paper's measurement noise). Our model reproduces exactly 1/f.
	cycles := 97.0 * 1.2 * 1e6
	lat12 := ServiceMS(cycles, 1.2)
	lat27 := ServiceMS(cycles, 2.7)
	if math.Abs(lat12-97) > 1e-9 {
		t.Fatalf("1.2 GHz latency = %v", lat12)
	}
	ratio := lat12 / lat27
	if math.Abs(ratio-2.25) > 1e-9 {
		t.Errorf("sweep ratio = %v, want 2.25", ratio)
	}
}

func BenchmarkExecute(b *testing.B) {
	c := testCluster(16)
	for i := 0; i < b.N; i++ {
		c.Execute(i%16, float64(i), 1e7, 1.8, math.Inf(1))
	}
}

func TestSpeedFactors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISNs = 3
	cfg.InferMS = 0
	cfg.SpeedFactors = []float64{1, 2, 0} // 0 defaults to 1
	c := New(cfg)
	if c.ISNs[0].SpeedFactor != 1 || c.ISNs[1].SpeedFactor != 2 || c.ISNs[2].SpeedFactor != 1 {
		t.Fatalf("speed factors wrong: %+v %+v %+v", c.ISNs[0], c.ISNs[1], c.ISNs[2])
	}
	if c.EffectiveCycles(1, 1e6) != 2e6 {
		t.Errorf("EffectiveCycles = %v", c.EffectiveCycles(1, 1e6))
	}
	if c.EffectiveCycles(0, 1e6) != 1e6 {
		t.Errorf("nominal EffectiveCycles = %v", c.EffectiveCycles(0, 1e6))
	}
}

// TestTimelineInvariants drives the cluster with random requests and
// checks the per-ISN timeline stays consistent: service never starts
// before arrival, never overlaps the previous request, and the horizon
// is monotone.
func TestTimelineInvariants(t *testing.T) {
	c := testCluster(4)
	rng := xrand.New(99)
	lastFinish := make([]float64, 4)
	now := 0.0
	prevHorizon := 0.0
	for i := 0; i < 2000; i++ {
		now += float64(rng.Intn(10))
		isn := rng.Intn(4)
		cycles := float64(1+rng.Intn(20)) * 1e6
		f := c.Ladder.Levels[rng.Intn(len(c.Ladder.Levels))]
		deadline := math.Inf(1)
		if rng.Intn(4) == 0 {
			deadline = now + float64(1+rng.Intn(8))
		}
		e := c.Execute(isn, now, cycles, f, deadline)
		if e.StartMS < now+c.Net.AggToISNMS-1e-9 {
			t.Fatalf("request %d started before arrival", i)
		}
		if e.StartMS < lastFinish[isn]-1e-9 {
			t.Fatalf("request %d overlaps previous on ISN %d", i, isn)
		}
		if e.FinishMS < e.StartMS {
			t.Fatalf("request %d finishes before it starts", i)
		}
		if e.Completed && e.FinishMS > deadline+1e-9 {
			t.Fatalf("request %d completed past its deadline", i)
		}
		if !e.Completed && deadline == math.Inf(1) {
			t.Fatalf("request %d dropped with no deadline", i)
		}
		lastFinish[isn] = e.FinishMS
		if c.NowMS() < prevHorizon {
			t.Fatal("horizon moved backwards")
		}
		prevHorizon = c.NowMS()
	}
	if u := c.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization out of range: %v", u)
	}
}

func TestMultiWorkerISN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISNs = 1
	cfg.InferMS = 0
	cfg.WorkersPerISN = 2
	c := New(cfg)
	// Two simultaneous requests run in parallel on the two workers.
	e1 := c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1))
	e2 := c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1))
	if e2.QueueMS != 0 {
		t.Fatalf("second request queued %v ms on a 2-worker ISN", e2.QueueMS)
	}
	if e1.FinishMS != e2.FinishMS {
		t.Fatalf("parallel requests should finish together: %v vs %v", e1.FinishMS, e2.FinishMS)
	}
	// A third request must wait for a worker.
	e3 := c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1))
	if e3.QueueMS <= 0 {
		t.Fatal("third request should queue")
	}
	c.Reset()
	e4 := c.Execute(0, 0, 1.8e6, 1.8, math.Inf(1))
	if e4.QueueMS != 0 {
		t.Fatal("reset should clear all workers")
	}
}
