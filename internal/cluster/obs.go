package cluster

import (
	"strconv"

	"cottage/internal/obs"
)

// Register exposes the simulated cluster on a metrics registry, so the
// twin serves the same scrape surface as the live transport: virtual
// clock, power, utilization, and per-ISN busy/served accounting.
//
// The simulator is single-threaded; gauge reads take no locks. A scrape
// that races an in-progress Run (e.g. cottage-bench with a debug
// listener) sees an approximate mid-run snapshot, which is fine for
// monitoring — the authoritative numbers come from RunResult.
func (c *Cluster) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cottage_cluster_now_ms",
		"Latest virtual time the simulated cluster has seen.",
		func() float64 { return c.NowMS() })
	reg.GaugeFunc("cottage_cluster_power_w",
		"Mean package power over the simulated horizon.",
		func() float64 { return c.AveragePowerWatts() })
	reg.GaugeFunc("cottage_cluster_utilization",
		"Mean busy fraction across ISNs over the horizon.",
		func() float64 { return c.Utilization() })
	reg.GaugeFunc("cottage_cluster_failed_isns",
		"ISNs currently marked dead (injected failures).",
		func() float64 { return float64(c.FailedCount()) })
	for _, n := range c.ISNs {
		node := n
		isn := obs.L("isn", strconv.Itoa(node.ID))
		reg.GaugeFunc("cottage_isn_busy_ms",
			"Cumulative busy time per simulated ISN.",
			func() float64 { return node.BusyMS }, isn)
		reg.GaugeFunc("cottage_isn_queries_served",
			"Queries served per simulated ISN.",
			func() float64 { return float64(node.QueriesServed) }, isn)
	}
}
