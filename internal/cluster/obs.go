package cluster

import (
	"strconv"

	"cottage/internal/obs"
)

// Register exposes the simulated cluster on a metrics registry, so the
// twin serves the same scrape surface as the live transport: virtual
// clock, power, utilization, and per-ISN busy/served accounting.
//
// The simulator is single-threaded; gauge reads take no locks. A scrape
// that races an in-progress Run (e.g. cottage-bench with a debug
// listener) sees an approximate mid-run snapshot, which is fine for
// monitoring — the authoritative numbers come from RunResult.
func (c *Cluster) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cottage_cluster_now_ms",
		"Latest virtual time the simulated cluster has seen.",
		func() float64 { return c.NowMS() })
	reg.GaugeFunc("cottage_cluster_power_w",
		"Mean package power over the simulated horizon.",
		func() float64 { return c.AveragePowerWatts() })
	reg.GaugeFunc("cottage_cluster_utilization",
		"Mean busy fraction across ISNs over the horizon.",
		func() float64 { return c.Utilization() })
	reg.GaugeFunc("cottage_cluster_failed_isns",
		"ISNs currently marked dead (injected failures).",
		func() float64 { return float64(c.FailedCount()) })
	reg.GaugeFunc("cottage_cluster_replicas",
		"Configured replication factor R.",
		func() float64 { return float64(c.Replicas()) })
	reg.GaugeFunc("cottage_cluster_failed_shards",
		"Shards with no live replica left (degraded-mode territory).",
		func() float64 { return float64(c.FailedShardCount()) })
	reg.GaugeFunc("cottage_cluster_active_nodes",
		"Powered-on, work-accepting nodes (autoscaler scale state).",
		func() float64 { return float64(c.TotalActiveNodes()) })
	reg.GaugeFunc("cottage_cluster_machine_ms",
		"Integrated powered-on machine time in node-ms.",
		func() float64 { return c.MachineMS() })
	for s := 0; s < c.Shards(); s++ {
		shard := s
		reg.GaugeFunc("cottage_shard_live_replicas",
			"Live replicas per shard.",
			func() float64 { return float64(len(c.LiveReplicas(shard))) },
			obs.L("shard", strconv.Itoa(shard)))
	}
	for _, n := range c.ISNs {
		node := n
		labels := []obs.Label{
			obs.L("isn", strconv.Itoa(node.ID)),
			obs.L("shard", strconv.Itoa(c.topo.ShardOf(node.ID))),
			obs.L("replica", strconv.Itoa(c.topo.ReplicaOf(node.ID))),
		}
		reg.GaugeFunc("cottage_isn_busy_ms",
			"Cumulative busy time per simulated ISN.",
			func() float64 { return node.BusyMS }, labels...)
		reg.GaugeFunc("cottage_isn_queries_served",
			"Queries served per simulated ISN.",
			func() float64 { return float64(node.QueriesServed) }, labels...)
	}
}
