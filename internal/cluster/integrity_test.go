package cluster

import (
	"math"
	"testing"

	"cottage/internal/faults"
)

// integrityCluster is newReplicated with the scrubber and repair loop
// configured (one full sweep per 100 ms, 40 ms repairs).
func integrityCluster(t *testing.T, shards, r int, scrubEpoch, repair float64) *Cluster {
	t.Helper()
	c := newReplicated(t, shards, r)
	c.ScrubEpochMS = scrubEpoch
	c.RepairMS = repair
	return c
}

func TestQueryDetectsRotAndFailsOver(t *testing.T) {
	c := integrityCluster(t, 2, 2, 0, 0) // no scrub, no repair
	c.CorruptISN(0, 0, 0.5)              // shard 0 replica 0 rots at t=0

	ex := c.ExecuteShard(0, 10, 1e6, 1.8, math.Inf(1))
	if ex.Failed || ex.CorruptReject || !ex.Completed {
		t.Fatalf("query lost to a repairable fault: %+v", ex)
	}
	if ex.ISN != 2 || ex.Failovers != 1 {
		t.Fatalf("served by node %d after %d failovers, want sibling 2 after 1", ex.ISN, ex.Failovers)
	}
	if !c.NodeQuarantined(0) {
		t.Fatal("detected rot did not quarantine the node")
	}
	st := c.IntegrityStats()
	if st.Corruptions != 1 || st.QueryDetections != 1 || st.ScrubDetections != 0 ||
		st.Quarantines != 1 || st.CorruptRejects != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanDetectionMS <= 0 {
		t.Fatalf("detection latency %v, want > 0 (rot at 0, query at 10)", st.MeanDetectionMS)
	}

	// Quarantine is sticky without repair: the node stays excluded.
	if got := c.rankShard(0, 1000); len(got) != 1 || got[0] != 2 {
		t.Fatalf("rankShard = %v, want [2]", got)
	}
}

func TestScrubDetectsUntouchedRot(t *testing.T) {
	c := integrityCluster(t, 1, 2, 100, 0)
	c.CorruptISN(0, 30, 0.5) // cursor reaches frac 0.5 at t=50

	// Before the scrubber's cursor arrives, the rotted copy still ranks.
	if got := c.rankShard(0, 49); len(got) != 2 {
		t.Fatalf("rankShard before detection = %v, want both replicas", got)
	}
	// After: quarantined without any query ever touching it.
	if got := c.rankShard(0, 60); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rankShard after scrub detection = %v, want [1]", got)
	}
	st := c.IntegrityStats()
	if st.ScrubDetections != 1 || st.QueryDetections != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanDetectionMS != 20 {
		t.Fatalf("detection latency %v, want 20 (rot at 30, cursor at 50)", st.MeanDetectionMS)
	}
}

func TestScrubDetectionBoundedByOneEpoch(t *testing.T) {
	c := integrityCluster(t, 1, 1, 100, 0)
	// Rot lands just after the cursor passed its position: worst case,
	// detection waits almost a full epoch for the next pass.
	c.CorruptISN(0, 51, 0.5) // cursor passed 0.5 at t=50; next pass at 150
	c.syncIntegrity(0, 149)
	if c.NodeQuarantined(0) {
		t.Fatal("detected before the cursor could have returned")
	}
	c.syncIntegrity(0, 150)
	if !c.NodeQuarantined(0) {
		t.Fatal("not detected by the next pass")
	}
	if st := c.IntegrityStats(); st.MeanDetectionMS != 99 {
		t.Fatalf("detection latency %v, want 99 (< one epoch)", st.MeanDetectionMS)
	}
}

func TestRepairReadmitsWithMTTR(t *testing.T) {
	c := integrityCluster(t, 1, 2, 100, 40)
	c.CorruptISN(0, 30, 0.5) // scrub detects at 50, repair lands at 90

	if got := c.rankShard(0, 89); len(got) != 1 {
		t.Fatalf("rankShard mid-repair = %v, want quarantined copy excluded", got)
	}
	if got := c.rankShard(0, 90); len(got) != 2 {
		t.Fatalf("rankShard after repair = %v, want both replicas back", got)
	}
	st := c.IntegrityStats()
	if st.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1", st.Repairs)
	}
	if st.MeanMTTRMS != 40 {
		t.Fatalf("MTTR %v, want RepairMS=40", st.MeanMTTRMS)
	}
	// The repaired copy serves again.
	ex := c.ExecuteShard(0, 100, 1e6, 1.8, math.Inf(1))
	if ex.CorruptReject || ex.Failed {
		t.Fatalf("repaired shard cannot serve: %+v", ex)
	}
	if c.QuarantinedCount() != 0 {
		t.Fatal("quarantine count nonzero after repair")
	}
}

func TestWholeGroupQuarantinedBouncesTyped(t *testing.T) {
	c := integrityCluster(t, 1, 2, 0, 0)
	c.CorruptISN(0, 0, 0.2)
	c.CorruptISN(1, 0, 0.8)
	ex := c.ExecuteShard(0, 10, 1e6, 1.8, math.Inf(1))
	if !ex.CorruptReject {
		t.Fatalf("whole-group corruption must surface typed, got %+v", ex)
	}
	if ex.ServiceMS != 0 {
		t.Fatal("a bounced request must do no index work")
	}
	if st := c.IntegrityStats(); st.CorruptRejects != 2 {
		t.Fatalf("corrupt rejects = %d, want 2 (both replicas bounced)", st.CorruptRejects)
	}
	// With the whole group now quarantined, later queries take the
	// empty-rank path — still a typed bounce, never a silent failure:
	// the group is alive and mid-repair, not dead.
	ex = c.ExecuteShard(0, 20, 1e6, 1.8, math.Inf(1))
	if !ex.CorruptReject || ex.Failed {
		t.Fatalf("fully quarantined group must bounce typed, got %+v", ex)
	}
	if st := c.IntegrityStats(); st.CorruptRejects != 3 {
		t.Fatalf("corrupt rejects = %d, want 3", st.CorruptRejects)
	}
}

func TestCorruptISNEdgeCases(t *testing.T) {
	c := integrityCluster(t, 1, 2, 0, 0)
	// Earliest rot wins; later events on the same node are no-ops.
	c.CorruptISN(0, 50, 0.5)
	c.CorruptISN(0, 20, 0.3)
	c.CorruptISN(0, 80, 0.9)
	if c.ISNs[0].corruptAtMS != 20 || c.ISNs[0].corruptFrac != 0.3 {
		t.Fatalf("pending rot = (%v, %v), want earliest (20, 0.3)",
			c.ISNs[0].corruptAtMS, c.ISNs[0].corruptFrac)
	}
	if c.IntegrityStats().Corruptions != 2 {
		t.Fatalf("corruptions = %d, want 2 (the later duplicate is a no-op)",
			c.IntegrityStats().Corruptions)
	}
	// New rot on a quarantined node is ignored: its bytes are about to
	// be replaced wholesale.
	c.quarantineNode(0, 30, false)
	c.CorruptISN(0, 40, 0.1)
	if c.IntegrityStats().Corruptions != 2 {
		t.Fatal("rot on a quarantined node must not count")
	}
}

func TestResetAndClearFaultsClearIntegrity(t *testing.T) {
	c := integrityCluster(t, 1, 2, 100, 40)
	c.CorruptISN(0, 0, 0.5)
	c.syncIntegrity(0, 60)
	if !c.NodeQuarantined(0) {
		t.Fatal("setup: node not quarantined")
	}

	c.ClearFaults()
	if c.NodeQuarantined(0) || !math.IsInf(c.ISNs[0].corruptAtMS, 1) {
		t.Fatal("ClearFaults left integrity fault state")
	}
	if c.IntegrityStats().Quarantines != 1 {
		t.Fatal("ClearFaults must keep the statistics ledger")
	}

	c.CorruptISN(1, 0, 0.5)
	c.Reset()
	if c.NodeQuarantined(1) || !math.IsInf(c.ISNs[1].corruptAtMS, 1) {
		t.Fatal("Reset left integrity fault state")
	}
	if st := c.IntegrityStats(); st != (IntegrityStats{}) {
		t.Fatalf("Reset left ledger %+v", st)
	}
}

func TestScheduledRotReplaysAcrossReset(t *testing.T) {
	c := integrityCluster(t, 1, 2, 100, 20)
	c.Rot = []faults.CorruptionEvent{
		{TimeMS: 30, Node: 0, OffsetFrac: 0.5},  // detect 50, repaired 70
		{TimeMS: 60, Node: 0, OffsetFrac: 0.2},  // lands mid-quarantine: moot
		{TimeMS: 130, Node: 0, OffsetFrac: 0.1}, // second rot after repair
	}
	run := func() IntegrityStats {
		c.Reset()
		c.syncIntegrity(0, 500)
		return c.IntegrityStats()
	}
	st := run()
	// Event 1 lands, is scrub-detected and repaired; event 2 is swallowed
	// by that repair; event 3 lands on the clean copy and goes through the
	// cycle again.
	if st.Corruptions != 2 || st.ScrubDetections != 2 || st.Repairs != 2 {
		t.Fatalf("schedule replay: %+v", st)
	}
	if again := run(); again != st {
		t.Fatalf("schedule not Reset-stable: %+v vs %+v", again, st)
	}
	c.ClearFaults()
	if c.Rot != nil || len(c.ISNs[0].rotQueue) != 0 {
		t.Fatal("ClearFaults left the rot schedule installed")
	}
}

func TestHedgingSkipsQuarantinedSibling(t *testing.T) {
	c := integrityCluster(t, 1, 2, 0, 0)
	c.CorruptISN(1, 0, 0.5) // the would-be hedge target is rotted
	// Force a hedge: primary (node 0) gets a slow leg via backlog.
	c.Execute(0, 0, 50e6, 1.8, math.Inf(1))
	ex, hr := c.ExecuteShardHedged(0, 1, 1e6, 1.8, math.Inf(1), 0)
	if ex.CorruptReject || ex.Failed {
		t.Fatalf("primary leg lost: %+v", ex)
	}
	if hr.Hedged {
		t.Fatal("hedged to a quarantined replica")
	}
}
