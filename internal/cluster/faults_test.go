package cluster

import (
	"math"
	"testing"
)

// TestFailedISN: a dead node does no work, burns no power, and marks the
// execution failed; revival restores service.
func TestFailedISN(t *testing.T) {
	c := New(DefaultConfig())
	c.FailISN(3)
	if !c.IsFailed(3) || c.FailedCount() != 1 {
		t.Fatal("FailISN did not register")
	}
	before := c.Meter.BusyEnergyMJ()
	exec := c.Execute(3, 0, 10e6, c.Ladder.Default(), math.Inf(1))
	if !exec.Failed || exec.Completed {
		t.Fatalf("dead ISN execution: %+v", exec)
	}
	if exec.ServiceMS != 0 || c.ISNs[3].BusyMS != 0 {
		t.Fatal("dead ISN charged busy time")
	}
	if c.Meter.BusyEnergyMJ() != before {
		t.Fatal("dead ISN burned active power")
	}
	c.ReviveISN(3)
	exec = c.Execute(3, 0, 10e6, c.Ladder.Default(), math.Inf(1))
	if exec.Failed || !exec.Completed {
		t.Fatalf("revived ISN execution: %+v", exec)
	}
}

// TestExtraDelay: injected virtual-time slowdown lengthens service and
// is charged as busy (the limping node still burns power).
func TestExtraDelay(t *testing.T) {
	c := New(DefaultConfig())
	base := c.Execute(0, 0, 10e6, c.Ladder.Default(), math.Inf(1))
	c.SetExtraDelayMS(1, 25)
	slow := c.Execute(1, 0, 10e6, c.Ladder.Default(), math.Inf(1))
	if got := slow.ServiceMS - base.ServiceMS; math.Abs(got-25) > 1e-9 {
		t.Fatalf("extra delay added %.3f ms, want 25", got)
	}
}

// TestFaultsSurviveReset: fault state is configuration, not accumulated
// statistics — Reset keeps it (availability sweeps inject once, replay
// many policies), ClearFaults removes it.
func TestFaultsSurviveReset(t *testing.T) {
	c := New(DefaultConfig())
	c.FailISN(2)
	c.SetExtraDelayMS(5, 10)
	c.Reset()
	if !c.IsFailed(2) || c.ISNs[5].ExtraDelayMS != 10 {
		t.Fatal("Reset cleared injected faults")
	}
	c.ClearFaults()
	if c.FailedCount() != 0 || c.ISNs[5].ExtraDelayMS != 0 {
		t.Fatal("ClearFaults left fault state behind")
	}
}

// TestFailTimeoutDefault: the failure-detection timeout defaults on.
func TestFailTimeoutDefault(t *testing.T) {
	c := New(DefaultConfig())
	if c.FailTimeoutMS <= 0 {
		t.Fatal("no default failure-detection timeout")
	}
	cfg := DefaultConfig()
	cfg.FailTimeoutMS = 42
	if got := New(cfg).FailTimeoutMS; got != 42 {
		t.Fatalf("FailTimeoutMS override ignored: %v", got)
	}
}
