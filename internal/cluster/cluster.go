// Package cluster simulates the paper's testbed in virtual time: a set of
// Index Serving Nodes (one core each, with per-core DVFS over the Xeon
// E5-2697's 1.2–2.7 GHz ladder), FIFO request queues, a service-time cost
// model driven by the *real* work the query evaluator measured, network
// delays, and package power accounting (internal/power).
//
// All latency and power results in the experiment harness come from this
// simulator's virtual clock, which keeps every figure deterministic and
// machine-independent while preserving the per-query variance of the real
// retrieval engine. Times are float64 milliseconds.
package cluster

import (
	"fmt"
	"math"

	"cottage/internal/faults"
	"cottage/internal/power"
	"cottage/internal/replica"
	"cottage/internal/search"
)

// Ladder is the set of selectable CPU frequencies in GHz, ascending.
type Ladder struct {
	Levels []float64
	// DefaultIdx indexes the frequency ISNs run at when no policy boosts
	// them — power-conscious deployments keep this below max (the
	// "current frequency" of the paper's Fig. 9).
	DefaultIdx int
}

// DefaultLadder mirrors the paper's platform: 1.2–2.7 GHz, with 1.8 GHz
// as the power-conscious default.
func DefaultLadder() Ladder {
	return Ladder{
		Levels:     []float64{1.2, 1.5, 1.8, 2.1, 2.4, 2.7},
		DefaultIdx: 2,
	}
}

// Default returns the default frequency in GHz.
func (l Ladder) Default() float64 { return l.Levels[l.DefaultIdx] }

// Max returns the highest (boost) frequency in GHz.
func (l Ladder) Max() float64 { return l.Levels[len(l.Levels)-1] }

// ClampUp returns the lowest ladder frequency >= f, or Max if none.
func (l Ladder) ClampUp(f float64) float64 {
	for _, lv := range l.Levels {
		if lv >= f-1e-12 {
			return lv
		}
	}
	return l.Max()
}

// Validate checks ladder invariants.
func (l Ladder) Validate() error {
	if len(l.Levels) == 0 {
		return fmt.Errorf("cluster: empty frequency ladder")
	}
	for i := 1; i < len(l.Levels); i++ {
		if l.Levels[i] <= l.Levels[i-1] {
			return fmt.Errorf("cluster: ladder not ascending at %d", i)
		}
	}
	if l.DefaultIdx < 0 || l.DefaultIdx >= len(l.Levels) {
		return fmt.Errorf("cluster: default index %d out of range", l.DefaultIdx)
	}
	return nil
}

// CostModel converts measured query-evaluation work into CPU cycles. The
// constants are the calibration lever that maps our ~48K-document corpus
// onto the paper's 34M-document testbed: per-unit costs are inflated so
// that per-ISN service times land in the paper's 4–65 ms range (Fig. 10)
// at the default frequency. DESIGN.md documents this substitution.
type CostModel struct {
	BaseCycles       float64 // fixed per-query overhead (parsing, setup)
	CyclesPerPosting float64 // per posting traversed (decode + compare)
	CyclesPerDoc     float64 // per candidate document scored
	CyclesPerInsert  float64 // per top-K heap update
}

// DefaultCostModel returns the calibrated model described above. With the
// default 48K-document corpus and Wikipedia-like trace, the slowest
// shard's service time at 1.8 GHz lands near 11 ms at the median, ~27 ms
// at the 95th percentile and ~63 ms at the maximum — the paper's 4–65 ms
// exhaustive range (Fig. 10a).
// The small fixed overhead keeps per-ISN service times dominated by
// retrieval work, so the per-query variance *across* ISNs (Fig. 2's
// premise, and what Algorithm 1's budget exploits) mirrors the real
// skew of posting-list lengths across topical shards.
func DefaultCostModel() CostModel {
	return CostModel{
		BaseCycles:       2_000_000,
		CyclesPerPosting: 15_000,
		CyclesPerDoc:     12_000,
		CyclesPerInsert:  50_000,
	}
}

// Cycles converts execution statistics into CPU cycles.
func (c CostModel) Cycles(st search.ExecStats) float64 {
	return c.BaseCycles +
		c.CyclesPerPosting*float64(st.PostingsTraversed) +
		c.CyclesPerDoc*float64(st.DocsScored) +
		c.CyclesPerInsert*float64(st.HeapInserts)
}

// ServiceMS converts cycles to milliseconds at frequency f (GHz):
// 1 GHz executes 1e6 cycles per millisecond.
func ServiceMS(cycles, freqGHz float64) float64 {
	if freqGHz <= 0 {
		panic("cluster: non-positive frequency")
	}
	return cycles / (freqGHz * 1e6)
}

// Network models the datacenter fabric between aggregator and ISNs plus
// the client access link. The paper argues coordination overhead is
// negligible against tens-of-ms service times; these constants keep it
// small but present.
type Network struct {
	// AggToISNMS is the one-way aggregator <-> ISN delay.
	AggToISNMS float64
	// ClientMS is the one-way client <-> aggregator delay.
	ClientMS float64
}

// DefaultNetwork uses 50 µs fabric hops and a 200 µs client link.
func DefaultNetwork() Network {
	return Network{AggToISNMS: 0.05, ClientMS: 0.2}
}

// ISN is the simulated state of one index-serving node: when each of its
// workers frees up, and cumulative accounting.
type ISN struct {
	ID int
	// SpeedFactor scales this node's service time (1 = nominal, 2 = a
	// straggler taking twice as long per cycle). Models the server
	// heterogeneity of real fleets (Haque et al., MICRO'17); per-ISN
	// latency predictors absorb it because each ISN's model is trained on
	// its own observed service costs.
	SpeedFactor float64
	// Failed marks the node dead: it answers neither predictions nor
	// searches, and requests routed to it are lost until the aggregator's
	// failure-detection timeout. Fault state is configuration, not
	// accumulated statistics — Reset keeps it so an availability sweep
	// can inject failures once and replay many policies (ClearFaults
	// undoes injection).
	Failed bool
	// ExtraDelayMS is injected per-request latency (a virtual-time
	// straggler: GC pause, noisy neighbour, degraded disk). It is charged
	// as busy time at the serving frequency — the node burns power while
	// it limps.
	ExtraDelayMS float64
	// freeAtMS[w] is when worker w finishes its current backlog. The
	// paper's ISNs are multithreaded Solr instances; WorkersPerISN > 1
	// lets an ISN serve that many queries concurrently (each worker is
	// one core for power accounting).
	freeAtMS []float64
	// active marks the node as accepting new work. The autoscaler
	// deactivates replica rows it scales away; a deactivated node drains
	// its backlog (offAtMS) and then stops costing idle power.
	active bool
	// offAtMS is when a deactivated node actually powers down: the later
	// of the deactivation instant and its queue drain. +Inf while active.
	offAtMS float64
	// corruptAtMS is when silent at-rest rot lands on this node's shard
	// copy (+Inf = clean); corruptFrac positions the rot as a fraction of
	// the copy's postings, which makes the scrubber's detection instant
	// computable. quarantined/quarantinedAtMS/repairAtMS are the
	// quarantine state machine (see integrity.go).
	corruptAtMS     float64
	corruptFrac     float64
	quarantined     bool
	quarantinedAtMS float64
	repairAtMS      float64
	// rotQueue is this node's slice of the cluster's scheduled rot
	// events (Cluster.Rot), consumed as virtual time advances.
	rotQueue []faults.CorruptionEvent
	// defectMS is a rolling estimate of this node's per-request latency
	// defect — observed service time beyond what the cost model predicts
	// (injected straggler delay, chaos slowdowns). It is the twin's
	// counterpart of the live path's replica.Tracker service EWMA: Eq. 2
	// cannot see a silent straggler whose queue happens to be empty, but
	// its history can. Predictive hedging adds it to the predicted leg
	// latency.
	defectMS float64
	// Totals for reporting.
	BusyMS        float64
	QueriesServed int
}

// earliestWorker returns the index of the worker that frees up first.
func (n *ISN) earliestWorker() int {
	best := 0
	for w := 1; w < len(n.freeAtMS); w++ {
		if n.freeAtMS[w] < n.freeAtMS[best] {
			best = w
		}
	}
	return best
}

// Cluster simulates a fleet of ISNs sharing one CPU package. With
// replication (Config.Replicas > 1) the fleet holds Shards × R nodes in
// replica.Topology's row-major layout: node r*Shards+shard is shard's
// r-th copy, so replica row 0 is the familiar unreplicated fleet and
// every node-level method (Execute, FailISN, EquivalentLatencyMS, ...)
// keeps its meaning unchanged. Shard-level methods (ExecuteShard,
// ShardFailed, ...) layer replica selection and virtual-time failover on
// top.
type Cluster struct {
	ISNs    []*ISN
	Ladder  Ladder
	Cost    CostModel
	Net     Network
	Meter   *power.Meter
	InferMS float64 // per-query predictor inference time charged at the ISN
	// Faults, when set, deals per-request chaos (crash/drop/slow) into
	// Execute from a deterministic seeded schedule. Crashed plans also
	// count as dead for shard-level availability — the twin's stand-in
	// for the live path's prober, which discovers crashed replicas within
	// a probe interval — while drop and slow stay per-request surprises
	// that only mid-query failover can absorb.
	Faults *faults.Injector
	// topo is the shard × replica layout (R=1 when unconfigured).
	topo replica.Topology
	// FailTimeoutMS is the aggregator's failure-detection timeout: how
	// long it waits for an ISN that will never answer before giving up,
	// when no tighter per-query budget applies (budgeted queries give up
	// at the budget). Real aggregators detect dead peers with TCP
	// resets/heartbeats in tens of milliseconds.
	FailTimeoutMS float64
	// MaxQueueMS, when positive, bounds each ISN's admission queue in
	// time: a request arriving to find more than this much backlog is
	// shed immediately (no work, no power) instead of queuing without
	// bound — the simulated counterpart of the live transport's
	// overload.Limiter. Zero keeps the queue unbounded.
	MaxQueueMS float64
	// Anytime turns deadline misses into truncated answers: ISNs run the
	// anytime traversal, so a request cut off at its budget still returns
	// a quality-bounded best-so-far (Execution.WorkFrac), and admission
	// control admits over-queue requests that can still start before
	// their deadline instead of shedding them outright.
	Anytime bool
	// ScrubEpochMS is how long the background scrubber takes to sweep one
	// node's whole shard copy (0 = scrubbing off): injected rot the
	// queries never touch is still detected within one epoch. RepairMS is
	// detection-to-readmission time for a quarantined copy (0 = no
	// repair, quarantine is permanent). See integrity.go.
	ScrubEpochMS float64
	RepairMS     float64
	// Rot, when set, is a virtual-time at-rest corruption schedule
	// (faults.CorruptionSchedule): each event lands silent rot on one
	// node as the clock reaches its instant. Like Faults it survives
	// Reset — the schedule is dealt into per-node queues at Reset, so
	// consecutive runs replay it identically.
	Rot []faults.CorruptionEvent
	// integ accumulates the corruption/repair ledger (integrity.go).
	integ integrityTotals
	// dynamic enables machine-time power accounting (Config
	// .DynamicMachines): the idle floor integrates over each node's
	// actual powered-on interval instead of charging the full R× fleet
	// for the whole horizon, so an autoscaler's scale-downs show up as
	// saved watts and machine-hours.
	dynamic bool
	// accruedToMS is how far along the virtual-time axis machine time
	// has been integrated (dynamic mode only).
	accruedToMS float64
	// machineNodeMS is the integrated powered-on node time (node·ms).
	machineNodeMS float64
	nowMS         float64 // latest event time observed, for horizon accounting
}

// Config assembles a Cluster.
type Config struct {
	// NumISNs is the number of logical shards; with Replicas > 1 the
	// cluster holds NumISNs × Replicas nodes.
	NumISNs int
	// Replicas is the replication factor R (default 1). Each shard gets R
	// interchangeable copies; the package idle floor scales ×R because
	// replicated shards are extra hardware, not extra cores on the same
	// box.
	Replicas int
	Ladder   Ladder
	Cost     CostModel
	Net      Network
	Power    power.Model
	InferMS  float64
	// SpeedFactors optionally sets per-shard service-time multipliers
	// (heterogeneous fleet). Missing or non-positive entries default to 1.
	// Replicas of one shard share its factor — they index the same
	// documents on the same hardware class — so per-shard latency
	// predictors stay valid across failover.
	SpeedFactors []float64
	// WorkersPerISN is each ISN's concurrency (default 1). Each busy
	// worker is charged as one active core.
	WorkersPerISN int
	// FailTimeoutMS overrides the failure-detection timeout (default 100).
	FailTimeoutMS float64
	// MaxQueueMS bounds per-ISN queueing delay; arrivals beyond it are
	// shed (0 = unbounded).
	MaxQueueMS float64
	// Anytime enables truncated (best-so-far) answers on deadline misses.
	Anytime bool
	// ScrubEpochMS sets the background scrubber's full-sweep time per
	// node (0 = off); RepairMS sets detection-to-readmission repair time
	// for quarantined copies (0 = no repair). See integrity.go.
	ScrubEpochMS float64
	RepairMS     float64
	// DynamicMachines switches power accounting to integrated machine
	// time so SetActiveReplicas can scale replica rows up and down
	// mid-run: only powered-on nodes pay the idle floor, and MachineMS
	// reports the fleet's machine-time bill. Without it the cluster
	// behaves exactly as before (all R rows on for the whole horizon).
	DynamicMachines bool
}

// DefaultConfig returns a 16-ISN cluster matching the paper's deployment.
func DefaultConfig() Config {
	return Config{
		NumISNs: 16,
		Ladder:  DefaultLadder(),
		Cost:    DefaultCostModel(),
		Net:     DefaultNetwork(),
		Power:   power.Default(),
		InferMS: 0.11, // quality (41 µs) + latency (70 µs) inference, Figs. 7b/8b
	}
}

// New builds a cluster. It panics on invalid configuration.
func New(cfg Config) *Cluster {
	if cfg.NumISNs <= 0 {
		panic("cluster: NumISNs must be positive")
	}
	if err := cfg.Ladder.Validate(); err != nil {
		panic(err)
	}
	r := cfg.Replicas
	if r < 1 {
		r = 1
	}
	pw := cfg.Power
	if !cfg.DynamicMachines {
		pw.IdleWatts *= float64(r) // R replica rows = R× the idle hardware
	}
	c := &Cluster{
		Ladder:        cfg.Ladder,
		Cost:          cfg.Cost,
		Net:           cfg.Net,
		Meter:         power.NewMeter(pw),
		InferMS:       cfg.InferMS,
		FailTimeoutMS: cfg.FailTimeoutMS,
		MaxQueueMS:    cfg.MaxQueueMS,
		Anytime:       cfg.Anytime,
		ScrubEpochMS:  cfg.ScrubEpochMS,
		RepairMS:      cfg.RepairMS,
		dynamic:       cfg.DynamicMachines,
		topo:          replica.Topology{Shards: cfg.NumISNs, R: r},
	}
	if c.dynamic {
		// The idle floor is integrated per replica row (IdleWatts is the
		// per-row package floor; a row is Shards nodes).
		c.Meter.SetDynamicIdle(true)
	}
	if c.FailTimeoutMS <= 0 {
		c.FailTimeoutMS = 100
	}
	workers := cfg.WorkersPerISN
	if workers <= 0 {
		workers = 1
	}
	for i := 0; i < c.topo.Nodes(); i++ {
		shard := c.topo.ShardOf(i)
		speed := 1.0
		if shard < len(cfg.SpeedFactors) && cfg.SpeedFactors[shard] > 0 {
			speed = cfg.SpeedFactors[shard]
		}
		n := &ISN{ID: i, SpeedFactor: speed,
			freeAtMS: make([]float64, workers), active: true, offAtMS: math.Inf(1)}
		n.resetIntegrityState()
		c.ISNs = append(c.ISNs, n)
	}
	return c
}

// Shards returns the logical shard count (nodes / replicas).
func (c *Cluster) Shards() int { return c.topo.Shards }

// Replicas returns the replication factor R.
func (c *Cluster) Replicas() int {
	if c.topo.R < 1 {
		return 1
	}
	return c.topo.R
}

// Topo returns the shard × replica layout.
func (c *Cluster) Topo() replica.Topology { return c.topo }

// FailISN marks an ISN dead (see ISN.Failed).
func (c *Cluster) FailISN(isn int) { c.ISNs[isn].Failed = true }

// ReviveISN brings a failed ISN back.
func (c *Cluster) ReviveISN(isn int) { c.ISNs[isn].Failed = false }

// IsFailed reports whether an ISN is currently dead.
func (c *Cluster) IsFailed(isn int) bool { return c.ISNs[isn].Failed }

// FailedCount returns how many ISNs are currently dead.
func (c *Cluster) FailedCount() int {
	n := 0
	for _, node := range c.ISNs {
		if node.Failed {
			n++
		}
	}
	return n
}

// nodeDead reports whether a node can serve at all: configured dead
// (FailISN) or crashed in the fault injector's standing plan. The latter
// mirrors what the live path's prober would know; probabilistic drops
// and slowdowns are per-request and stay invisible here.
func (c *Cluster) nodeDead(node int) bool {
	if c.ISNs[node].Failed {
		return true
	}
	return c.Faults != nil && c.Faults.Crashed(node)
}

// ShardFailed reports whether a shard has lost every replica — only then
// does the aggregator have to fall back to degraded Algorithm 1.
func (c *Cluster) ShardFailed(shard int) bool {
	for _, n := range c.topo.Group(shard) {
		if !c.nodeDead(n) {
			return false
		}
	}
	return true
}

// FailedShardCount returns how many shards have no live replica left —
// the "missing ISNs" count degraded-mode budget assignment sees.
func (c *Cluster) FailedShardCount() int {
	n := 0
	for s := 0; s < c.topo.Shards; s++ {
		if c.ShardFailed(s) {
			n++
		}
	}
	return n
}

// LiveReplicas returns the shard's live replica node ids, replica row 0
// first (empty when the whole group is down).
func (c *Cluster) LiveReplicas(shard int) []int {
	var live []int
	for _, n := range c.topo.Group(shard) {
		if !c.nodeDead(n) {
			live = append(live, n)
		}
	}
	return live
}

// rankShard orders the shard's replicas best-first by the shared
// selector rule. In the twin every transport signal is perfect, so the
// ranking reduces to: live replicas by current queue delay, ties by id —
// the same join-the-shortest-queue choice a live aggregator converges to
// once its EWMA warms up.
func (c *Cluster) rankShard(shard int, tMS float64) []int {
	group := c.topo.Group(shard)
	cands := make([]replica.Candidate, len(group))
	for i, n := range group {
		c.syncIntegrity(n, tMS)
		cands[i] = replica.Candidate{
			ID: n,
			// A deactivated (scaled-away) replica is as unselectable as a
			// dead one: it is draining toward power-off and takes no new
			// work.
			Failed:      c.nodeDead(n) || !c.ISNs[n].active,
			Quarantined: c.ISNs[n].quarantined,
			Healthy:     true,
			ServiceMS:   c.QueueDelayMS(n, tMS),
		}
	}
	return replica.Rank(cands)
}

// SelectReplica returns the best live replica for a request to shard
// arriving at tMS, or -1 when every replica is down.
func (c *Cluster) SelectReplica(shard int, tMS float64) int {
	order := c.rankShard(shard, tMS)
	if len(order) == 0 {
		return -1
	}
	return order[0]
}

// ShardQueueDelayMS returns the queueing delay the selected replica
// would impose on a request to shard at tMS (+Inf when the shard is
// down).
func (c *Cluster) ShardQueueDelayMS(shard int, tMS float64) float64 {
	n := c.SelectReplica(shard, tMS)
	if n < 0 {
		return math.Inf(1)
	}
	return c.QueueDelayMS(n, tMS)
}

// ShardEquivalentLatencyMS is Eq. 2 at shard granularity: the equivalent
// latency of predictedCycles of work on the shard's best live replica at
// frequency f (+Inf when the shard is down). Replicas of a shard share
// its speed factor, so the cycle cost needs no per-replica adjustment.
func (c *Cluster) ShardEquivalentLatencyMS(shard int, tMS, predictedCycles, f float64) float64 {
	n := c.SelectReplica(shard, tMS)
	if n < 0 {
		return math.Inf(1)
	}
	return c.EquivalentLatencyMS(n, tMS, predictedCycles, f)
}

// defectAlpha smooths the per-node latency-defect EWMA: heavy enough
// that a persistent straggler is flagged within a handful of requests,
// light enough that one chaos slowdown does not brand a healthy node.
const defectAlpha = 0.25

// NodeDefectMS returns the node's rolling latency-defect estimate: the
// observed per-request service time beyond the cost model's prediction.
func (c *Cluster) NodeDefectMS(isn int) float64 { return c.ISNs[isn].defectMS }

// ShardPredictedLegMS is the predictive-hedging signal for one search
// leg: Eq. 2's equivalent latency on the shard's selected replica plus
// that replica's observed latency defect. The defect term is what lets
// the prediction flag a silent straggler — a limping node with an empty
// queue looks fine to Eq. 2 but not to its own service history.
func (c *Cluster) ShardPredictedLegMS(shard int, tMS, predictedCycles, f float64) float64 {
	n := c.SelectReplica(shard, tMS)
	if n < 0 {
		return math.Inf(1)
	}
	return c.EquivalentLatencyMS(n, tMS, predictedCycles, f) + c.ISNs[n].defectMS
}

// SetExtraDelayMS injects a per-request virtual-time slowdown on an ISN.
func (c *Cluster) SetExtraDelayMS(isn int, ms float64) { c.ISNs[isn].ExtraDelayMS = ms }

// ClearFaults removes all injected failures, slowdowns and pending
// (undetected) corruption; quarantined nodes are re-admitted on the
// spot. The accumulated integrity ledger is statistics, not fault
// state, so it survives (Reset clears it).
func (c *Cluster) ClearFaults() {
	for _, node := range c.ISNs {
		node.Failed = false
		node.ExtraDelayMS = 0
		node.resetIntegrityState()
		node.rotQueue = nil
	}
	c.Rot = nil
}

// EffectiveCycles returns the cycle cost of a request on ISN isn,
// including its speed factor. Everything that predicts or schedules work
// for an ISN must go through this so predictions and execution agree.
func (c *Cluster) EffectiveCycles(isn int, cycles float64) float64 {
	return cycles * c.ISNs[isn].SpeedFactor
}

// NowMS returns the latest simulated time the cluster has seen.
func (c *Cluster) NowMS() float64 { return c.nowMS }

// observe advances the cluster's notion of the horizon.
func (c *Cluster) observe(tMS float64) {
	c.accrueTo(tMS)
	if tMS > c.nowMS {
		c.nowMS = tMS
	}
}

// accrueTo integrates powered-on node time along the virtual-time axis
// up to tMS (dynamic-machines mode only). A deactivated node counts
// until its offAtMS — deactivation drains before it powers down. The
// integration advances monotonically: events that land behind the
// accrual point (a finish time already seen) add nothing.
func (c *Cluster) accrueTo(tMS float64) {
	if !c.dynamic || tMS <= c.accruedToMS {
		return
	}
	nodeMS := 0.0
	for _, n := range c.ISNs {
		end := tMS
		if !n.active && n.offAtMS < end {
			end = n.offAtMS
		}
		if end > c.accruedToMS {
			nodeMS += end - c.accruedToMS
		}
	}
	c.machineNodeMS += nodeMS
	// IdleWatts is calibrated per replica row (= Shards nodes).
	c.Meter.AddIdleMachineMS(nodeMS/float64(c.topo.Shards), 1)
	c.accruedToMS = tMS
}

// ActiveReplicas returns how many of a shard's replica rows currently
// accept new work.
func (c *Cluster) ActiveReplicas(shard int) int {
	n := 0
	for _, node := range c.topo.Group(shard) {
		if c.ISNs[node].active {
			n++
		}
	}
	return n
}

// TotalActiveNodes returns the number of powered-on, work-accepting
// nodes across the fleet.
func (c *Cluster) TotalActiveNodes() int {
	n := 0
	for _, node := range c.ISNs {
		if node.active {
			n++
		}
	}
	return n
}

// SetActiveReplicas scales a shard to r active replica rows at virtual
// time tMS, clamped to [1, R]. Scaling down deactivates the highest
// rows first; a deactivated node stops receiving new work immediately
// but drains its queued backlog before powering down (graceful drain —
// its in-flight responses still arrive, and its idle power runs until
// the drain completes). Scaling up reactivates rows instantly; the
// twin's stand-in for a machine whose spin-up latency is below the
// replan cadence. No-op outside dynamic-machines mode.
func (c *Cluster) SetActiveReplicas(shard, r int, tMS float64) {
	if !c.dynamic {
		return
	}
	if r < 1 {
		r = 1
	}
	if r > c.topo.R {
		r = c.topo.R
	}
	c.accrueTo(tMS)
	group := c.topo.Group(shard)
	for row, nodeID := range group {
		n := c.ISNs[nodeID]
		if row < r {
			if !n.active {
				n.active = true
				n.offAtMS = math.Inf(1)
			}
			continue
		}
		if n.active {
			n.active = false
			drainEnd := tMS
			for _, free := range n.freeAtMS {
				if free > drainEnd {
					drainEnd = free
				}
			}
			n.offAtMS = drainEnd
		}
	}
}

// SetAllActiveReplicas applies SetActiveReplicas to every shard.
func (c *Cluster) SetAllActiveReplicas(r int, tMS float64) {
	for s := 0; s < c.topo.Shards; s++ {
		c.SetActiveReplicas(s, r, tMS)
	}
}

// MachineMS returns the fleet's integrated machine time in node·ms —
// the machine-hours bill an autoscaled run is judged by. In static
// mode every node is on for the whole horizon.
func (c *Cluster) MachineMS() float64 {
	if !c.dynamic {
		return c.nowMS * float64(len(c.ISNs))
	}
	// Include the un-accrued tail and pending drains up to the horizon.
	tail := 0.0
	for _, n := range c.ISNs {
		end := c.nowMS
		if !n.active && n.offAtMS < end {
			end = n.offAtMS
		}
		if end > c.accruedToMS {
			tail += end - c.accruedToMS
		}
	}
	return c.machineNodeMS + tail
}

// QueueDelayMS returns how long a request arriving at the ISN at tMS
// waits before service starts (time until the earliest worker frees up).
func (c *Cluster) QueueDelayMS(isn int, tMS float64) float64 {
	n := c.ISNs[isn]
	d := n.freeAtMS[n.earliestWorker()] - tMS
	if d < 0 {
		return 0
	}
	return d
}

// EquivalentLatencyMS implements the paper's Eq. 2: the latency a request
// with predictedCycles of work would see at ISN isn running at frequency
// f, including the backlog already queued there. The backlog term uses
// the queue's cycle content, matching the paper's sum of predicted
// service times.
func (c *Cluster) EquivalentLatencyMS(isn int, tMS, predictedCycles, f float64) float64 {
	backlogMS := c.QueueDelayMS(isn, tMS)
	return backlogMS + ServiceMS(predictedCycles, f)
}

// Execution reports what happened when an ISN processed a request.
type Execution struct {
	ISN       int
	StartMS   float64 // service start (after queueing)
	FinishMS  float64 // service end (possibly truncated by deadline)
	ServiceMS float64 // actual busy time charged
	Freq      float64
	Completed bool // false if the deadline truncated the work
	// WorkFrac is the fraction of the request's full service time the
	// node performed before the deadline cut it off (1 when Completed).
	// Anytime-mode callers replay the truncated traversal against this
	// fraction of the full cycle budget to recover the partial answer.
	WorkFrac float64
	// Failed marks a request sent to a dead ISN: no work was done and no
	// response will ever arrive (the aggregator waits out its
	// failure-detection timeout instead of the response).
	Failed bool
	// Shed marks a request rejected by admission control: the ISN's
	// queue already exceeded MaxQueueMS on arrival, so it answered with
	// an immediate rejection instead of queueing the work. Unlike
	// Failed, the aggregator hears back right away.
	Shed    bool
	QueueMS float64
	// Dropped marks an injected connection drop (or corrupted reply): the
	// node did the work and burned the power, but the response never
	// reached the aggregator, which notices the severed stream after one
	// network round trip and can fail over.
	Dropped bool
	// CorruptReject marks a request bounced by the node's integrity
	// plane: its shard copy is quarantined (or the request itself
	// tripped the query-time checksum gate on fresh rot). Like Shed, the
	// aggregator hears the typed rejection after one hop and fails over;
	// the corrupted copy never contributes hits — the twin's
	// CodeQuarantined.
	CorruptReject bool
	// Shard and Replica locate the execution in the replica topology
	// (Shard == ISN and Replica == 0 on the unreplicated node-level path).
	Shard   int
	Replica int
	// Failovers counts how many sibling replicas ExecuteShard burned
	// through before this attempt (0 = first choice answered).
	Failovers int
}

// Execute schedules a request on ISN isn: it arrives at tMS (aggregator
// clock), costs cycles at frequency f, and must finish by deadlineMS
// (absolute; +Inf for none). If the work cannot finish by the deadline the
// ISN still spends the truncated busy time (it worked until the budget
// expired, as in step 6 of the paper's protocol) but the execution is
// marked incomplete and its results are dropped by the aggregator.
//
// Inference overhead (quality+latency predictors, step 2) is charged as
// busy time at the default frequency before service.
func (c *Cluster) Execute(isn int, tMS, cycles, f, deadlineMS float64) Execution {
	if f <= 0 {
		panic("cluster: non-positive frequency")
	}
	node := c.ISNs[isn]
	shard, rep := c.topo.ShardOf(isn), c.topo.ReplicaOf(isn)
	arrive := tMS + c.Net.AggToISNMS
	if node.Failed {
		// The request is lost; the node does no work and burns no power.
		c.observe(arrive)
		return Execution{ISN: isn, Shard: shard, Replica: rep, StartMS: arrive, FinishMS: arrive, Freq: f, Failed: true}
	}
	// Integrity gate: a quarantined copy refuses the request outright,
	// and undetected rot is caught the moment a query reads the bad
	// block — the checksum verifies before any scoring, so a corrupted
	// posting is never served. Either way the aggregator gets a typed
	// rejection after one hop (no index work, no power) and fails over.
	c.syncIntegrity(isn, arrive)
	if !node.quarantined && node.corruptAtMS <= arrive {
		c.quarantineNode(isn, arrive, false)
	}
	if node.quarantined {
		c.integ.corruptRejects++
		c.observe(arrive)
		return Execution{ISN: isn, Shard: shard, Replica: rep, StartMS: arrive, FinishMS: arrive, Freq: f, CorruptReject: true}
	}
	// Per-request chaos from the seeded schedule: a crashed plan loses
	// the request like a dead node; a drop or corrupt verdict lets the
	// work proceed (the server keeps serving a severed connection) but
	// the reply never lands; a slow verdict stretches service time.
	injDelayMS, dropped := 0.0, false
	if c.Faults != nil {
		switch d := c.Faults.OnRequest(isn); d.Kind {
		case faults.Crash:
			c.observe(arrive)
			return Execution{ISN: isn, Shard: shard, Replica: rep, StartMS: arrive, FinishMS: arrive, Freq: f, Failed: true}
		case faults.Drop, faults.Corrupt:
			dropped = true
			injDelayMS = d.DelayMS
		default:
			injDelayMS = d.DelayMS
		}
	}
	if qd := c.QueueDelayMS(isn, arrive); c.MaxQueueMS > 0 && qd > c.MaxQueueMS {
		// Admission control: the backlog already exceeds the queue bound.
		// In anytime mode a request that can still start before its
		// deadline is admitted anyway — it will answer truncated at the
		// budget, which beats an outright rejection. Otherwise the ISN
		// sheds it immediately — no work, no power, and the aggregator
		// gets the rejection after one network hop.
		if !c.Anytime || arrive+qd >= deadlineMS {
			c.observe(arrive)
			return Execution{ISN: isn, Shard: shard, Replica: rep, StartMS: arrive, FinishMS: arrive, Freq: f, Shed: true}
		}
	}
	worker := node.earliestWorker()
	start := arrive
	if node.freeAtMS[worker] > start {
		start = node.freeAtMS[worker]
	}
	full := ServiceMS(cycles, f) + node.ExtraDelayMS + injDelayMS
	node.defectMS += defectAlpha * ((node.ExtraDelayMS + injDelayMS) - node.defectMS)
	finish := start + full
	busy := full
	completed := true
	workFrac := 1.0
	if finish > deadlineMS {
		// Work until the budget expires, then abandon (or, in anytime
		// mode, answer with whatever the truncated traversal found).
		completed = false
		if deadlineMS > start {
			busy = deadlineMS - start
			finish = deadlineMS
		} else {
			busy = 0
			finish = start
		}
		workFrac = 0
		if full > 0 {
			workFrac = busy / full
		}
	}
	node.freeAtMS[worker] = finish
	node.BusyMS += busy + c.InferMS
	node.QueriesServed++
	c.Meter.AddBusy(f, busy)
	if c.InferMS > 0 {
		c.Meter.AddBusy(c.Ladder.Max(), c.InferMS)
	}
	c.observe(finish)
	return Execution{
		ISN:       isn,
		Shard:     shard,
		Replica:   rep,
		StartMS:   start,
		FinishMS:  finish,
		ServiceMS: busy,
		Freq:      f,
		Completed: completed,
		WorkFrac:  workFrac,
		QueueMS:   start - arrive,
		Dropped:   dropped,
	}
}

// ExecuteShard schedules a request on a shard's best live replica and
// fails over to siblings in virtual time: when an attempt is lost (dead
// node, injected crash or drop — detected as a connection reset one
// network round trip after send) or shed by admission control (rejected
// after one round trip), the next-ranked replica gets the retry with
// whatever deadline remains. Degraded Algorithm 1 is the caller's last
// resort for when the loop exhausts the whole group. The returned
// Execution carries the serving replica and the failover count; for a
// shard with no live replica it reports Failed after one detection
// round trip, like a node-level send to a dead ISN.
func (c *Cluster) ExecuteShard(shard int, tMS, cycles, f, deadlineMS float64) Execution {
	order := c.rankShard(shard, tMS)
	if len(order) == 0 {
		arrive := tMS + c.Net.AggToISNMS
		c.observe(arrive)
		ex := Execution{
			ISN: c.topo.Node(shard, 0), Shard: shard, Replica: 0,
			StartMS: arrive, FinishMS: arrive, Freq: f,
		}
		// An empty group can mean two very different things: every
		// replica dead (silence, then a reset — Failed) or every live
		// replica quarantined mid-repair (a typed CodeQuarantined bounce
		// after one hop — the aggregator knows precisely why the shard's
		// contribution is missing, and that it is temporary).
		if c.groupQuarantined(shard) {
			ex.CorruptReject = true
			c.integ.corruptRejects++
		} else {
			ex.Failed = true
		}
		return ex
	}
	sendMS := tMS
	var last Execution
	for attempt, node := range order {
		e := c.Execute(node, sendMS, cycles, f, deadlineMS)
		e.Failovers = attempt
		if !e.Failed && !e.Shed && !e.Dropped && !e.CorruptReject {
			return e
		}
		last = e
		// Detection: a reset (failed/dropped) or rejection (shed) reaches
		// the aggregator one hop after the attempt's send arrived. A
		// dropped request keeps its node busy, but the client's reset
		// fires at arrival, not service completion.
		arriveMS := e.StartMS - e.QueueMS
		sendMS = arriveMS + c.Net.AggToISNMS
		if sendMS >= deadlineMS {
			break // no budget left to retry a sibling
		}
	}
	return last
}

// HedgeResult reports what the hedging layer did for one shard request.
type HedgeResult struct {
	// Hedged is true when a duplicate copy of the request was sent.
	Hedged bool
	// Won is true when the hedge's response reached the aggregator
	// strictly before the primary's (ties go to the primary).
	Won bool
	// DuplicateMS is the busy time the losing copy burned — pure waste,
	// the cost side of the hedging trade. The twin models no
	// cancellation, so the full duplicate service time is charged; real
	// deployments that cancel the loser would waste less, making this an
	// upper bound that keeps the duplicate-work cost visible.
	DuplicateMS float64
}

// ExecuteShardHedged is ExecuteShard plus hedged requests: if the
// primary attempt's response would reach the aggregator later than
// tMS + hedgeDelayMS, a full duplicate is sent at that instant to the
// shard's next-best active live replica, and the earlier response wins.
// hedgeDelayMS = 0 models predictive hedging (the caller already
// decided this request looks like a straggler, so the duplicate goes
// out immediately); hedgeDelayMS < 0 or +Inf disables hedging. Both
// copies' work and power are charged — see HedgeResult.DuplicateMS.
func (c *Cluster) ExecuteShardHedged(shard int, tMS, cycles, f, deadlineMS, hedgeDelayMS float64) (Execution, HedgeResult) {
	primary := c.ExecuteShard(shard, tMS, cycles, f, deadlineMS)
	var hr HedgeResult
	if hedgeDelayMS < 0 || math.IsInf(hedgeDelayMS, 1) {
		return primary, hr
	}
	if primary.Failed || primary.Shed || primary.Dropped || primary.CorruptReject {
		// ExecuteShard already burned through the group's failover legs;
		// there is no healthier sibling left for a hedge to reach.
		return primary, hr
	}
	hedgeAt := tMS + hedgeDelayMS
	if c.ResponseAtAggregatorMS(primary) <= hedgeAt {
		return primary, hr // primary answered before the hedge timer fired
	}
	// Next-best active live replica, excluding the primary's server.
	hedgeNode := -1
	for _, n := range c.rankShard(shard, hedgeAt) {
		if n != primary.ISN {
			hedgeNode = n
			break
		}
	}
	if hedgeNode < 0 {
		return primary, hr // R=1 or siblings all down: nowhere to hedge
	}
	hr.Hedged = true
	hedge := c.Execute(hedgeNode, hedgeAt, cycles, f, deadlineMS)
	if hedge.Failed || hedge.Shed || hedge.Dropped || hedge.CorruptReject {
		hr.DuplicateMS = hedge.ServiceMS
		return primary, hr
	}
	if c.ResponseAtAggregatorMS(hedge) < c.ResponseAtAggregatorMS(primary) {
		hr.Won = true
		hr.DuplicateMS = primary.ServiceMS
		hedge.Failovers = primary.Failovers
		return hedge, hr
	}
	hr.DuplicateMS = hedge.ServiceMS
	return primary, hr
}

// ResponseAtAggregatorMS is when the aggregator holds the ISN's response.
func (c *Cluster) ResponseAtAggregatorMS(e Execution) float64 {
	return e.FinishMS + c.Net.AggToISNMS
}

// FailoverDelayMS is how much later than the original dispatch the
// winning attempt's request actually left the aggregator — the time the
// query spent detecting dead/shedding siblings (or waiting for a hedge
// timer) before the leg that answered was even sent. Derived from the
// execution's own timestamps: the attempt's send instant is its ISN
// arrival (StartMS − QueueMS) minus one network hop.
func (c *Cluster) FailoverDelayMS(e Execution, dispatchMS float64) float64 {
	sendMS := e.StartMS - e.QueueMS - c.Net.AggToISNMS
	d := sendMS - dispatchMS
	if d < 0 {
		return 0
	}
	return d
}

// ClientLatencyMS converts an aggregator-side completion time for a query
// that arrived (at the aggregator) at tMS into the client-observed
// latency.
func (c *Cluster) ClientLatencyMS(tMS, aggDoneMS float64) float64 {
	return (aggDoneMS - tMS) + 2*c.Net.ClientMS
}

// AveragePowerWatts reports mean package power over the simulated horizon.
func (c *Cluster) AveragePowerWatts() float64 {
	if c.nowMS <= 0 {
		return c.Meter.Model().IdleWatts
	}
	return c.Meter.AveragePowerWatts(c.nowMS)
}

// Utilization returns the mean busy fraction over the horizon; in
// dynamic-machines mode the denominator is the integrated powered-on
// machine time, so a well-scaled fleet shows *higher* utilization than
// the same load on a static fleet.
func (c *Cluster) Utilization() float64 {
	if c.nowMS <= 0 {
		return 0
	}
	total := 0.0
	for _, n := range c.ISNs {
		total += n.BusyMS
	}
	denom := c.nowMS * float64(len(c.ISNs))
	if c.dynamic {
		denom = c.MachineMS()
	}
	if denom <= 0 {
		return 0
	}
	return total / denom
}

// Reset returns the cluster to its initial state, keeping configuration.
func (c *Cluster) Reset() {
	for _, n := range c.ISNs {
		for w := range n.freeAtMS {
			n.freeAtMS[w] = 0
		}
		n.BusyMS = 0
		n.QueriesServed = 0
		n.active = true
		n.offAtMS = math.Inf(1)
		n.defectMS = 0
		n.resetIntegrityState()
	}
	c.dealRot()
	c.Meter.Reset()
	c.integ = integrityTotals{}
	c.nowMS = 0
	c.accruedToMS = 0
	c.machineNodeMS = 0
}
