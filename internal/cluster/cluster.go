// Package cluster simulates the paper's testbed in virtual time: a set of
// Index Serving Nodes (one core each, with per-core DVFS over the Xeon
// E5-2697's 1.2–2.7 GHz ladder), FIFO request queues, a service-time cost
// model driven by the *real* work the query evaluator measured, network
// delays, and package power accounting (internal/power).
//
// All latency and power results in the experiment harness come from this
// simulator's virtual clock, which keeps every figure deterministic and
// machine-independent while preserving the per-query variance of the real
// retrieval engine. Times are float64 milliseconds.
package cluster

import (
	"fmt"

	"cottage/internal/power"
	"cottage/internal/search"
)

// Ladder is the set of selectable CPU frequencies in GHz, ascending.
type Ladder struct {
	Levels []float64
	// DefaultIdx indexes the frequency ISNs run at when no policy boosts
	// them — power-conscious deployments keep this below max (the
	// "current frequency" of the paper's Fig. 9).
	DefaultIdx int
}

// DefaultLadder mirrors the paper's platform: 1.2–2.7 GHz, with 1.8 GHz
// as the power-conscious default.
func DefaultLadder() Ladder {
	return Ladder{
		Levels:     []float64{1.2, 1.5, 1.8, 2.1, 2.4, 2.7},
		DefaultIdx: 2,
	}
}

// Default returns the default frequency in GHz.
func (l Ladder) Default() float64 { return l.Levels[l.DefaultIdx] }

// Max returns the highest (boost) frequency in GHz.
func (l Ladder) Max() float64 { return l.Levels[len(l.Levels)-1] }

// ClampUp returns the lowest ladder frequency >= f, or Max if none.
func (l Ladder) ClampUp(f float64) float64 {
	for _, lv := range l.Levels {
		if lv >= f-1e-12 {
			return lv
		}
	}
	return l.Max()
}

// Validate checks ladder invariants.
func (l Ladder) Validate() error {
	if len(l.Levels) == 0 {
		return fmt.Errorf("cluster: empty frequency ladder")
	}
	for i := 1; i < len(l.Levels); i++ {
		if l.Levels[i] <= l.Levels[i-1] {
			return fmt.Errorf("cluster: ladder not ascending at %d", i)
		}
	}
	if l.DefaultIdx < 0 || l.DefaultIdx >= len(l.Levels) {
		return fmt.Errorf("cluster: default index %d out of range", l.DefaultIdx)
	}
	return nil
}

// CostModel converts measured query-evaluation work into CPU cycles. The
// constants are the calibration lever that maps our ~48K-document corpus
// onto the paper's 34M-document testbed: per-unit costs are inflated so
// that per-ISN service times land in the paper's 4–65 ms range (Fig. 10)
// at the default frequency. DESIGN.md documents this substitution.
type CostModel struct {
	BaseCycles       float64 // fixed per-query overhead (parsing, setup)
	CyclesPerPosting float64 // per posting traversed (decode + compare)
	CyclesPerDoc     float64 // per candidate document scored
	CyclesPerInsert  float64 // per top-K heap update
}

// DefaultCostModel returns the calibrated model described above. With the
// default 48K-document corpus and Wikipedia-like trace, the slowest
// shard's service time at 1.8 GHz lands near 11 ms at the median, ~27 ms
// at the 95th percentile and ~63 ms at the maximum — the paper's 4–65 ms
// exhaustive range (Fig. 10a).
// The small fixed overhead keeps per-ISN service times dominated by
// retrieval work, so the per-query variance *across* ISNs (Fig. 2's
// premise, and what Algorithm 1's budget exploits) mirrors the real
// skew of posting-list lengths across topical shards.
func DefaultCostModel() CostModel {
	return CostModel{
		BaseCycles:       2_000_000,
		CyclesPerPosting: 15_000,
		CyclesPerDoc:     12_000,
		CyclesPerInsert:  50_000,
	}
}

// Cycles converts execution statistics into CPU cycles.
func (c CostModel) Cycles(st search.ExecStats) float64 {
	return c.BaseCycles +
		c.CyclesPerPosting*float64(st.PostingsTraversed) +
		c.CyclesPerDoc*float64(st.DocsScored) +
		c.CyclesPerInsert*float64(st.HeapInserts)
}

// ServiceMS converts cycles to milliseconds at frequency f (GHz):
// 1 GHz executes 1e6 cycles per millisecond.
func ServiceMS(cycles, freqGHz float64) float64 {
	if freqGHz <= 0 {
		panic("cluster: non-positive frequency")
	}
	return cycles / (freqGHz * 1e6)
}

// Network models the datacenter fabric between aggregator and ISNs plus
// the client access link. The paper argues coordination overhead is
// negligible against tens-of-ms service times; these constants keep it
// small but present.
type Network struct {
	// AggToISNMS is the one-way aggregator <-> ISN delay.
	AggToISNMS float64
	// ClientMS is the one-way client <-> aggregator delay.
	ClientMS float64
}

// DefaultNetwork uses 50 µs fabric hops and a 200 µs client link.
func DefaultNetwork() Network {
	return Network{AggToISNMS: 0.05, ClientMS: 0.2}
}

// ISN is the simulated state of one index-serving node: when each of its
// workers frees up, and cumulative accounting.
type ISN struct {
	ID int
	// SpeedFactor scales this node's service time (1 = nominal, 2 = a
	// straggler taking twice as long per cycle). Models the server
	// heterogeneity of real fleets (Haque et al., MICRO'17); per-ISN
	// latency predictors absorb it because each ISN's model is trained on
	// its own observed service costs.
	SpeedFactor float64
	// Failed marks the node dead: it answers neither predictions nor
	// searches, and requests routed to it are lost until the aggregator's
	// failure-detection timeout. Fault state is configuration, not
	// accumulated statistics — Reset keeps it so an availability sweep
	// can inject failures once and replay many policies (ClearFaults
	// undoes injection).
	Failed bool
	// ExtraDelayMS is injected per-request latency (a virtual-time
	// straggler: GC pause, noisy neighbour, degraded disk). It is charged
	// as busy time at the serving frequency — the node burns power while
	// it limps.
	ExtraDelayMS float64
	// freeAtMS[w] is when worker w finishes its current backlog. The
	// paper's ISNs are multithreaded Solr instances; WorkersPerISN > 1
	// lets an ISN serve that many queries concurrently (each worker is
	// one core for power accounting).
	freeAtMS []float64
	// Totals for reporting.
	BusyMS        float64
	QueriesServed int
}

// earliestWorker returns the index of the worker that frees up first.
func (n *ISN) earliestWorker() int {
	best := 0
	for w := 1; w < len(n.freeAtMS); w++ {
		if n.freeAtMS[w] < n.freeAtMS[best] {
			best = w
		}
	}
	return best
}

// Cluster simulates a fleet of ISNs sharing one CPU package.
type Cluster struct {
	ISNs    []*ISN
	Ladder  Ladder
	Cost    CostModel
	Net     Network
	Meter   *power.Meter
	InferMS float64 // per-query predictor inference time charged at the ISN
	// FailTimeoutMS is the aggregator's failure-detection timeout: how
	// long it waits for an ISN that will never answer before giving up,
	// when no tighter per-query budget applies (budgeted queries give up
	// at the budget). Real aggregators detect dead peers with TCP
	// resets/heartbeats in tens of milliseconds.
	FailTimeoutMS float64
	// MaxQueueMS, when positive, bounds each ISN's admission queue in
	// time: a request arriving to find more than this much backlog is
	// shed immediately (no work, no power) instead of queuing without
	// bound — the simulated counterpart of the live transport's
	// overload.Limiter. Zero keeps the queue unbounded.
	MaxQueueMS float64
	nowMS      float64 // latest event time observed, for horizon accounting
}

// Config assembles a Cluster.
type Config struct {
	NumISNs int
	Ladder  Ladder
	Cost    CostModel
	Net     Network
	Power   power.Model
	InferMS float64
	// SpeedFactors optionally sets per-ISN service-time multipliers
	// (heterogeneous fleet). Missing or non-positive entries default to 1.
	SpeedFactors []float64
	// WorkersPerISN is each ISN's concurrency (default 1). Each busy
	// worker is charged as one active core.
	WorkersPerISN int
	// FailTimeoutMS overrides the failure-detection timeout (default 100).
	FailTimeoutMS float64
	// MaxQueueMS bounds per-ISN queueing delay; arrivals beyond it are
	// shed (0 = unbounded).
	MaxQueueMS float64
}

// DefaultConfig returns a 16-ISN cluster matching the paper's deployment.
func DefaultConfig() Config {
	return Config{
		NumISNs: 16,
		Ladder:  DefaultLadder(),
		Cost:    DefaultCostModel(),
		Net:     DefaultNetwork(),
		Power:   power.Default(),
		InferMS: 0.11, // quality (41 µs) + latency (70 µs) inference, Figs. 7b/8b
	}
}

// New builds a cluster. It panics on invalid configuration.
func New(cfg Config) *Cluster {
	if cfg.NumISNs <= 0 {
		panic("cluster: NumISNs must be positive")
	}
	if err := cfg.Ladder.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{
		Ladder:        cfg.Ladder,
		Cost:          cfg.Cost,
		Net:           cfg.Net,
		Meter:         power.NewMeter(cfg.Power),
		InferMS:       cfg.InferMS,
		FailTimeoutMS: cfg.FailTimeoutMS,
		MaxQueueMS:    cfg.MaxQueueMS,
	}
	if c.FailTimeoutMS <= 0 {
		c.FailTimeoutMS = 100
	}
	workers := cfg.WorkersPerISN
	if workers <= 0 {
		workers = 1
	}
	for i := 0; i < cfg.NumISNs; i++ {
		speed := 1.0
		if i < len(cfg.SpeedFactors) && cfg.SpeedFactors[i] > 0 {
			speed = cfg.SpeedFactors[i]
		}
		c.ISNs = append(c.ISNs, &ISN{ID: i, SpeedFactor: speed, freeAtMS: make([]float64, workers)})
	}
	return c
}

// FailISN marks an ISN dead (see ISN.Failed).
func (c *Cluster) FailISN(isn int) { c.ISNs[isn].Failed = true }

// ReviveISN brings a failed ISN back.
func (c *Cluster) ReviveISN(isn int) { c.ISNs[isn].Failed = false }

// IsFailed reports whether an ISN is currently dead.
func (c *Cluster) IsFailed(isn int) bool { return c.ISNs[isn].Failed }

// FailedCount returns how many ISNs are currently dead.
func (c *Cluster) FailedCount() int {
	n := 0
	for _, node := range c.ISNs {
		if node.Failed {
			n++
		}
	}
	return n
}

// SetExtraDelayMS injects a per-request virtual-time slowdown on an ISN.
func (c *Cluster) SetExtraDelayMS(isn int, ms float64) { c.ISNs[isn].ExtraDelayMS = ms }

// ClearFaults removes all injected failures and slowdowns.
func (c *Cluster) ClearFaults() {
	for _, node := range c.ISNs {
		node.Failed = false
		node.ExtraDelayMS = 0
	}
}

// EffectiveCycles returns the cycle cost of a request on ISN isn,
// including its speed factor. Everything that predicts or schedules work
// for an ISN must go through this so predictions and execution agree.
func (c *Cluster) EffectiveCycles(isn int, cycles float64) float64 {
	return cycles * c.ISNs[isn].SpeedFactor
}

// NowMS returns the latest simulated time the cluster has seen.
func (c *Cluster) NowMS() float64 { return c.nowMS }

// observe advances the cluster's notion of the horizon.
func (c *Cluster) observe(tMS float64) {
	if tMS > c.nowMS {
		c.nowMS = tMS
	}
}

// QueueDelayMS returns how long a request arriving at the ISN at tMS
// waits before service starts (time until the earliest worker frees up).
func (c *Cluster) QueueDelayMS(isn int, tMS float64) float64 {
	n := c.ISNs[isn]
	d := n.freeAtMS[n.earliestWorker()] - tMS
	if d < 0 {
		return 0
	}
	return d
}

// EquivalentLatencyMS implements the paper's Eq. 2: the latency a request
// with predictedCycles of work would see at ISN isn running at frequency
// f, including the backlog already queued there. The backlog term uses
// the queue's cycle content, matching the paper's sum of predicted
// service times.
func (c *Cluster) EquivalentLatencyMS(isn int, tMS, predictedCycles, f float64) float64 {
	backlogMS := c.QueueDelayMS(isn, tMS)
	return backlogMS + ServiceMS(predictedCycles, f)
}

// Execution reports what happened when an ISN processed a request.
type Execution struct {
	ISN       int
	StartMS   float64 // service start (after queueing)
	FinishMS  float64 // service end (possibly truncated by deadline)
	ServiceMS float64 // actual busy time charged
	Freq      float64
	Completed bool // false if the deadline truncated the work
	// Failed marks a request sent to a dead ISN: no work was done and no
	// response will ever arrive (the aggregator waits out its
	// failure-detection timeout instead of the response).
	Failed bool
	// Shed marks a request rejected by admission control: the ISN's
	// queue already exceeded MaxQueueMS on arrival, so it answered with
	// an immediate rejection instead of queueing the work. Unlike
	// Failed, the aggregator hears back right away.
	Shed    bool
	QueueMS float64
}

// Execute schedules a request on ISN isn: it arrives at tMS (aggregator
// clock), costs cycles at frequency f, and must finish by deadlineMS
// (absolute; +Inf for none). If the work cannot finish by the deadline the
// ISN still spends the truncated busy time (it worked until the budget
// expired, as in step 6 of the paper's protocol) but the execution is
// marked incomplete and its results are dropped by the aggregator.
//
// Inference overhead (quality+latency predictors, step 2) is charged as
// busy time at the default frequency before service.
func (c *Cluster) Execute(isn int, tMS, cycles, f, deadlineMS float64) Execution {
	if f <= 0 {
		panic("cluster: non-positive frequency")
	}
	node := c.ISNs[isn]
	arrive := tMS + c.Net.AggToISNMS
	if node.Failed {
		// The request is lost; the node does no work and burns no power.
		c.observe(arrive)
		return Execution{ISN: isn, StartMS: arrive, FinishMS: arrive, Freq: f, Failed: true}
	}
	if c.MaxQueueMS > 0 && c.QueueDelayMS(isn, arrive) > c.MaxQueueMS {
		// Admission control: the backlog already exceeds the queue bound,
		// so the ISN sheds the request immediately — no work, no power,
		// and the aggregator gets the rejection after one network hop.
		c.observe(arrive)
		return Execution{ISN: isn, StartMS: arrive, FinishMS: arrive, Freq: f, Shed: true}
	}
	worker := node.earliestWorker()
	start := arrive
	if node.freeAtMS[worker] > start {
		start = node.freeAtMS[worker]
	}
	full := ServiceMS(cycles, f) + node.ExtraDelayMS
	finish := start + full
	busy := full
	completed := true
	if finish > deadlineMS {
		// Work until the budget expires, then abandon.
		completed = false
		if deadlineMS > start {
			busy = deadlineMS - start
			finish = deadlineMS
		} else {
			busy = 0
			finish = start
		}
	}
	node.freeAtMS[worker] = finish
	node.BusyMS += busy + c.InferMS
	node.QueriesServed++
	c.Meter.AddBusy(f, busy)
	if c.InferMS > 0 {
		c.Meter.AddBusy(c.Ladder.Max(), c.InferMS)
	}
	c.observe(finish)
	return Execution{
		ISN:       isn,
		StartMS:   start,
		FinishMS:  finish,
		ServiceMS: busy,
		Freq:      f,
		Completed: completed,
		QueueMS:   start - arrive,
	}
}

// ResponseAtAggregatorMS is when the aggregator holds the ISN's response.
func (c *Cluster) ResponseAtAggregatorMS(e Execution) float64 {
	return e.FinishMS + c.Net.AggToISNMS
}

// ClientLatencyMS converts an aggregator-side completion time for a query
// that arrived (at the aggregator) at tMS into the client-observed
// latency.
func (c *Cluster) ClientLatencyMS(tMS, aggDoneMS float64) float64 {
	return (aggDoneMS - tMS) + 2*c.Net.ClientMS
}

// AveragePowerWatts reports mean package power over the simulated horizon.
func (c *Cluster) AveragePowerWatts() float64 {
	if c.nowMS <= 0 {
		return c.Meter.Model().IdleWatts
	}
	return c.Meter.AveragePowerWatts(c.nowMS)
}

// Utilization returns the mean busy fraction across ISNs over the horizon.
func (c *Cluster) Utilization() float64 {
	if c.nowMS <= 0 {
		return 0
	}
	total := 0.0
	for _, n := range c.ISNs {
		total += n.BusyMS
	}
	return total / (c.nowMS * float64(len(c.ISNs)))
}

// Reset returns the cluster to its initial state, keeping configuration.
func (c *Cluster) Reset() {
	for _, n := range c.ISNs {
		for w := range n.freeAtMS {
			n.freeAtMS[w] = 0
		}
		n.BusyMS = 0
		n.QueriesServed = 0
	}
	c.Meter.Reset()
	c.nowMS = 0
}
