package cluster

import (
	"math"
	"testing"

	"cottage/internal/faults"
	"cottage/internal/power"
)

func newReplicated(t *testing.T, shards, r int) *Cluster {
	t.Helper()
	cfg := Config{
		NumISNs:      shards,
		Replicas:     r,
		Ladder:       DefaultLadder(),
		Cost:         DefaultCostModel(),
		Net:          DefaultNetwork(),
		Power:        power.Default(),
		SpeedFactors: []float64{1, 2}, // shard 1 is a straggler class
	}
	return New(cfg)
}

func TestReplicatedLayout(t *testing.T) {
	c := newReplicated(t, 4, 3)
	if c.Shards() != 4 || c.Replicas() != 3 || len(c.ISNs) != 12 {
		t.Fatalf("layout: %d shards × %d replicas, %d nodes", c.Shards(), c.Replicas(), len(c.ISNs))
	}
	// Replicas of a shard share its speed factor.
	for _, n := range c.Topo().Group(1) {
		if c.ISNs[n].SpeedFactor != 2 {
			t.Fatalf("node %d speed %v, want shard 1's factor 2", n, c.ISNs[n].SpeedFactor)
		}
	}
	// R replica rows are R× the idle hardware.
	if got, want := c.Meter.Model().IdleWatts, 3*power.Default().IdleWatts; got != want {
		t.Fatalf("idle watts %v, want %v", got, want)
	}
	// R=1 stays byte-compatible with the unreplicated fleet.
	c1 := newReplicated(t, 4, 1)
	if len(c1.ISNs) != 4 || c1.Meter.Model().IdleWatts != power.Default().IdleWatts {
		t.Fatal("R=1 changed the unreplicated layout")
	}
}

func TestShardAvailability(t *testing.T) {
	c := newReplicated(t, 2, 2)
	c.FailISN(0) // shard 0 replica 0
	if c.ShardFailed(0) || c.FailedShardCount() != 0 {
		t.Fatal("shard with a live sibling reported failed")
	}
	if got := c.LiveReplicas(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("LiveReplicas(0) = %v, want [2]", got)
	}
	c.FailISN(2) // shard 0 replica 1 — whole group down
	if !c.ShardFailed(0) || c.FailedShardCount() != 1 {
		t.Fatal("fully-failed shard not reported")
	}
	if c.SelectReplica(0, 0) != -1 {
		t.Fatal("selected a replica of a dead shard")
	}
	if !math.IsInf(c.ShardEquivalentLatencyMS(0, 0, 1e6, 1.8), 1) {
		t.Fatal("dead shard's equivalent latency not +Inf")
	}
	ex := c.ExecuteShard(0, 0, 1e6, 1.8, math.Inf(1))
	if !ex.Failed || ex.Shard != 0 {
		t.Fatalf("ExecuteShard on dead shard: %+v", ex)
	}
}

func TestExecuteShardRoutesAroundDeadReplica(t *testing.T) {
	c := newReplicated(t, 2, 2)
	c.FailISN(0) // shard 0 replica 0 dead; sibling is node 2
	ex := c.ExecuteShard(0, 0, 1e6, 1.8, math.Inf(1))
	if ex.Failed || !ex.Completed {
		t.Fatalf("execution lost: %+v", ex)
	}
	// The selector knew the replica was dead (prober knowledge): the leg
	// lands on the sibling without burning a failover round trip.
	if ex.ISN != 2 || ex.Replica != 1 || ex.Failovers != 0 {
		t.Fatalf("routed to node %d replica %d with %d failovers", ex.ISN, ex.Replica, ex.Failovers)
	}
}

func TestExecuteShardBalancesQueues(t *testing.T) {
	c := newReplicated(t, 1, 2)
	first := c.ExecuteShard(0, 0, 50e6, 1.8, math.Inf(1))
	second := c.ExecuteShard(0, 0, 50e6, 1.8, math.Inf(1))
	if first.ISN == second.ISN {
		t.Fatalf("both requests queued on node %d with an idle sibling", first.ISN)
	}
	if second.QueueMS != 0 {
		t.Fatalf("second request queued %v ms behind an idle sibling", second.QueueMS)
	}
}

func TestExecuteShardFailsOverOnInjectedDrop(t *testing.T) {
	c := newReplicated(t, 1, 2)
	inj := faults.NewInjector(7)
	inj.SetPlan(0, faults.Plan{DropProb: 1}) // replica 0 severs every stream
	c.Faults = inj
	ex := c.ExecuteShard(0, 0, 1e6, 1.8, math.Inf(1))
	if ex.Failed || ex.Dropped || !ex.Completed {
		t.Fatalf("failover did not recover the leg: %+v", ex)
	}
	if ex.ISN != 1 || ex.Failovers != 1 {
		t.Fatalf("served by node %d after %d failovers, want sibling after 1", ex.ISN, ex.Failovers)
	}
	// The dropped attempt still charged replica 0 (server keeps serving a
	// severed connection) — power and queue accounting must show it.
	if c.ISNs[0].BusyMS == 0 {
		t.Fatal("dropped attempt burned no busy time")
	}
}

func TestInjectedCrashCountsAsDead(t *testing.T) {
	c := newReplicated(t, 1, 2)
	inj := faults.NewInjector(7)
	inj.Crash(0)
	c.Faults = inj
	// Prober-equivalent knowledge: the crashed plan removes the replica
	// from selection, and with both copies gone the shard is failed.
	if got := c.SelectReplica(0, 0); got != 1 {
		t.Fatalf("SelectReplica = %d, want live sibling 1", got)
	}
	inj.Crash(1)
	if !c.ShardFailed(0) {
		t.Fatal("shard with every replica crashed not failed")
	}
	inj.Revive(1)
	if c.ShardFailed(0) {
		t.Fatal("revived replica still counted dead")
	}
}
