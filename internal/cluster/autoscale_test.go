package cluster

import (
	"math"
	"testing"

	"cottage/internal/power"
)

func newDynamic(t *testing.T, shards, r int) *Cluster {
	t.Helper()
	return New(Config{
		NumISNs:         shards,
		Replicas:        r,
		Ladder:          DefaultLadder(),
		Cost:            DefaultCostModel(),
		Net:             DefaultNetwork(),
		Power:           power.Default(),
		DynamicMachines: true,
	})
}

// TestDynamicMachineTime: the machine-time integral follows scale
// events exactly — full fleet while everything is on, fewer node·ms
// after a scale-down, restored after a scale-up.
func TestDynamicMachineTime(t *testing.T) {
	c := newDynamic(t, 2, 3) // 6 nodes
	c.observe(100)
	if got := c.MachineMS(); math.Abs(got-600) > 1e-9 {
		t.Fatalf("machine time with full fleet: %v, want 600", got)
	}
	// Scale both shards to 1 replica at t=100: 4 idle nodes power off
	// immediately (no backlog to drain).
	c.SetAllActiveReplicas(1, 100)
	if got := c.TotalActiveNodes(); got != 2 {
		t.Fatalf("active nodes after scale-down: %d, want 2", got)
	}
	c.observe(200)
	if got := c.MachineMS(); math.Abs(got-800) > 1e-9 {
		t.Fatalf("machine time after scale-down: %v, want 600+2·100=800", got)
	}
	// Scale back up at t=200; all 6 accrue again.
	c.SetAllActiveReplicas(3, 200)
	c.observe(300)
	if got := c.MachineMS(); math.Abs(got-1400) > 1e-9 {
		t.Fatalf("machine time after scale-up: %v, want 800+6·100=1400", got)
	}
}

// TestScaleDownDrains: a deactivated replica finishes its queued work
// before powering off, and its drain time is billed.
func TestScaleDownDrains(t *testing.T) {
	c := newDynamic(t, 1, 2)
	// Load replica row 1 (node 1) with work finishing well past t=0.
	ex := c.Execute(1, 0, 90e6, 1.8, math.Inf(1)) // 50 ms at 1.8 GHz
	if ex.FinishMS <= 10 {
		t.Fatalf("setup: finish %v too early", ex.FinishMS)
	}
	c.SetActiveReplicas(0, 1, 10) // deactivate node 1 at t=10, mid-service
	if c.ActiveReplicas(0) != 1 {
		t.Fatalf("active replicas %d, want 1", c.ActiveReplicas(0))
	}
	// New work must avoid the draining node even though its sibling's
	// queue is longer... here node 0 is idle, so just check selection.
	if got := c.SelectReplica(0, 10); got != 0 {
		t.Fatalf("selected draining node %d", got)
	}
	c.observe(ex.FinishMS + 100)
	// Node 0 on for the whole horizon; node 1 on until its drain end.
	want := (ex.FinishMS + 100) + ex.FinishMS
	if got := c.MachineMS(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("machine time %v, want %v (drain billed to %v)", got, want, ex.FinishMS)
	}
	// Reactivation restores the node and cancels any pending power-off.
	c.SetActiveReplicas(0, 2, ex.FinishMS+100)
	if c.ActiveReplicas(0) != 2 || c.SelectReplica(0, ex.FinishMS+100) != 0 {
		t.Fatal("reactivation did not restore the replica")
	}
}

// TestDynamicIdlePower: in dynamic mode the idle floor follows machine
// time, so scaling down mid-run costs less energy than staying up.
func TestDynamicIdlePower(t *testing.T) {
	c := newDynamic(t, 2, 2)
	c.SetAllActiveReplicas(1, 0) // half the fleet off from the start
	c.observe(1000)
	got := c.Meter.TotalEnergyMJ(1000)
	// 2 of 4 nodes on for 1000 ms = 1 replica-row unit × 1000 ms.
	want := power.Default().IdleWatts * 1000
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("dynamic idle energy %v, want %v", got, want)
	}
	// Static mode bills the full R× fleet for the same horizon.
	s := newReplicated(t, 2, 2)
	s.observe(1000)
	if sgot := s.Meter.TotalEnergyMJ(1000); sgot <= got*1.9 {
		t.Fatalf("static fleet energy %v not ~2x dynamic %v", sgot, got)
	}
}

// TestStaticModeIgnoresScaling: without DynamicMachines the autoscaler
// hooks are inert — committed figures cannot shift.
func TestStaticModeIgnoresScaling(t *testing.T) {
	c := newReplicated(t, 2, 2)
	c.SetAllActiveReplicas(1, 0)
	if c.TotalActiveNodes() != 4 {
		t.Fatal("static cluster deactivated nodes")
	}
	c.observe(500)
	if got := c.MachineMS(); got != 500*4 {
		t.Fatalf("static machine time %v, want horizon×nodes", got)
	}
}

// TestHedgeFiresOnlyPastDelay: a fast primary never hedges; a slow one
// hedges to the sibling and the earlier response wins.
func TestHedgeFiresOnlyPastDelay(t *testing.T) {
	c := newReplicated(t, 1, 2)
	// Fast request: ~0.56 ms service, hedge delay 10 ms → no hedge.
	ex, hr := c.ExecuteShardHedged(0, 0, 1e6, 1.8, math.Inf(1), 10)
	if hr.Hedged || ex.ISN != 0 {
		t.Fatalf("fast primary hedged: %+v %+v", ex, hr)
	}
	c.Reset()
	// Load node 0 with 100 ms of backlog; selection routes the primary to
	// idle node 1, whose 50 ms of service still blows the 10 ms hedge
	// timer. The hedge lands on node 0 behind the backlog and loses.
	c.Execute(0, 0, 180e6, 1.8, math.Inf(1)) // 100 ms on node 0
	ex, hr = c.ExecuteShardHedged(0, 0, 90e6, 1.8, math.Inf(1), 10)
	if !hr.Hedged {
		t.Fatalf("slow primary did not hedge: %+v", ex)
	}
	if hr.Won || ex.ISN != 1 {
		t.Fatalf("hedge outcome: %+v serving %d", hr, ex.ISN)
	}
	if hr.DuplicateMS <= 0 {
		t.Fatal("losing hedge burned no recorded duplicate work")
	}
}

// TestHedgeWins: when the primary limps (injected straggler delay) and
// the sibling is clean, the hedge's response arrives first, the hedge
// execution is returned, and the primary's wasted work is billed.
func TestHedgeWins(t *testing.T) {
	c := newReplicated(t, 1, 2)
	c.SetExtraDelayMS(0, 300) // node 0 limps: GC pause / noisy neighbour
	// Both idle at t=0, tie goes to node 0 → slow primary (~305 ms).
	ex, hr := c.ExecuteShardHedged(0, 0, 9e6, 1.8, math.Inf(1), 20)
	if !hr.Hedged || !hr.Won || ex.ISN != 1 {
		t.Fatalf("expected winning hedge on node 1, got %+v serving %d", hr, ex.ISN)
	}
	if hr.DuplicateMS < 300 {
		t.Fatalf("duplicate work %v should include the primary's 300 ms limp", hr.DuplicateMS)
	}
	if resp := c.ResponseAtAggregatorMS(ex); resp > 30 {
		t.Fatalf("winning hedge response at %v, want ~25 ms", resp)
	}
}

// TestHedgeUnreplicatedNoop: with R=1 there is no sibling to hedge to.
func TestHedgeUnreplicatedNoop(t *testing.T) {
	c := newReplicated(t, 2, 1)
	c.Execute(0, 0, 180e6, 1.8, math.Inf(1))
	ex, hr := c.ExecuteShardHedged(0, 0, 90e6, 1.8, math.Inf(1), 1)
	if hr.Hedged {
		t.Fatalf("R=1 cluster hedged: %+v %+v", ex, hr)
	}
}

// TestHedgeDisabled: negative or infinite delay disables hedging even
// for arbitrarily slow primaries.
func TestHedgeDisabled(t *testing.T) {
	c := newReplicated(t, 1, 2)
	c.Execute(0, 0, 900e6, 1.8, math.Inf(1))
	c.Execute(1, 0, 900e6, 1.8, math.Inf(1))
	for _, d := range []float64{-1, math.Inf(1)} {
		if _, hr := c.ExecuteShardHedged(0, 1, 90e6, 1.8, math.Inf(1), d); hr.Hedged {
			t.Fatalf("delay %v hedged", d)
		}
	}
}

// TestResetRestoresScaleState: Reset reactivates everything and zeroes
// machine-time accounting.
func TestResetRestoresScaleState(t *testing.T) {
	c := newDynamic(t, 2, 2)
	c.SetAllActiveReplicas(1, 0)
	c.observe(100)
	c.Reset()
	if c.TotalActiveNodes() != 4 || c.MachineMS() != 0 {
		t.Fatalf("Reset left scale state: %d active, %v machine-ms",
			c.TotalActiveNodes(), c.MachineMS())
	}
}

// TestDefectEWMAFlagsSilentStraggler: the per-node defect estimate
// converges on an injected straggler's delay and feeds the predictive
// leg signal — even when the straggler's queue is empty — while clean
// siblings stay at zero.
func TestDefectEWMAFlagsSilentStraggler(t *testing.T) {
	c := newDynamic(t, 1, 2)
	c.SetExtraDelayMS(0, 80)

	if got := c.NodeDefectMS(0); got != 0 {
		t.Fatalf("defect before any request: %v", got)
	}
	// Serve a few requests on each node, spaced out so queues are empty
	// at every prediction instant.
	tMS := 0.0
	for i := 0; i < 8; i++ {
		c.Execute(0, tMS, 9e6, 1.8, math.Inf(1))
		c.Execute(1, tMS, 9e6, 1.8, math.Inf(1))
		tMS += 500
	}
	if got := c.NodeDefectMS(0); got < 70 {
		t.Fatalf("straggler defect EWMA %v has not converged toward 80", got)
	}
	if got := c.NodeDefectMS(1); got != 0 {
		t.Fatalf("clean node accrued defect %v", got)
	}

	// Both queues are empty at tMS, so Eq. 2 alone sees only service
	// time; the defect term is the whole difference.
	eq2 := c.ShardEquivalentLatencyMS(0, tMS, 9e6, 1.8)
	pred := c.ShardPredictedLegMS(0, tMS, 9e6, 1.8)
	sel := c.SelectReplica(0, tMS)
	if want := eq2 + c.NodeDefectMS(sel); math.Abs(pred-want) > 1e-9 {
		t.Fatalf("predicted leg %v, want Eq.2 %v + defect %v", pred, eq2, c.NodeDefectMS(sel))
	}

	// Reset clears the history with the rest of the run state.
	c.Reset()
	if got := c.NodeDefectMS(0); got != 0 {
		t.Fatalf("defect survived Reset: %v", got)
	}
}
