package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1001} {
		out := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&out[i], 1) })
		for i, v := range out {
			if v != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, v)
			}
		}
	}
}

func TestForMaxSingleWorkerIsOrdered(t *testing.T) {
	var order []int
	ForMax(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline path out of order: %v", order)
		}
	}
}

func TestForDeterministicAcrossWorkerCounts(t *testing.T) {
	compute := func(workers int) []float64 {
		out := make([]float64, 257)
		ForMax(len(out), workers, func(i int) {
			v := 1.0
			for k := 0; k < i%17+1; k++ {
				v = v*1.000001 + float64(i)
			}
			out[i] = v
		})
		return out
	}
	want := compute(1)
	for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0) * 4} {
		got := compute(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d differs", w, i)
			}
		}
	}
}
