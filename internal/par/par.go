// Package par provides the bounded worker pool shared by the hot fan-out
// paths (per-ISN prediction, harvest replay, shard builds, per-query
// shard evaluation). Every helper hands out index-addressed work so the
// caller's writes land in disjoint slots: results are bit-identical no
// matter how many workers run or how the scheduler interleaves them,
// which is what keeps the replay pipeline seeded-deterministic across
// GOMAXPROCS (see DESIGN.md §12).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), spread over at most
// min(n, GOMAXPROCS) goroutines. fn must write only to index-addressed
// state (slot i of a pre-sized slice) and must not depend on the order in
// which other indices run; under those rules the result is deterministic
// and race-free. With one usable CPU (or n <= 1) the loop runs inline,
// so single-core deployments pay no goroutine overhead.
func For(n int, fn func(i int)) {
	ForMax(n, runtime.GOMAXPROCS(0), fn)
}

// ForMax is For with an explicit worker cap (at least 1). Nested
// fan-outs use it to keep the total goroutine count bounded: an outer
// For over queries caps its inner shard fan-out at 1 worker.
func ForMax(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing by atomic ticket: each worker claims the next unclaimed
	// index. Claim order is nondeterministic; result order is not, because
	// every index writes only its own slot.
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
