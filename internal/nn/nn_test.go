package nn

import (
	"bytes"
	"math"
	"testing"

	"cottage/internal/xrand"
)

// spiralData makes a simple 2D, linearly-inseparable classification set.
func spiralData(n int, seed uint64) ([][]float64, []int) {
	rng := xrand.New(seed)
	xs := make([][]float64, 0, 2*n)
	ys := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		// Class 0: points inside radius 1; class 1: ring at radius ~2.
		a := rng.Float64() * 2 * math.Pi
		r0 := rng.Float64() * 0.9
		xs = append(xs, []float64{r0 * math.Cos(a), r0 * math.Sin(a)})
		ys = append(ys, 0)
		b := rng.Float64() * 2 * math.Pi
		r1 := 1.6 + rng.Float64()*0.8
		xs = append(xs, []float64{r1 * math.Cos(b), r1 * math.Sin(b)})
		ys = append(ys, 1)
	}
	return xs, ys
}

func TestNewShapes(t *testing.T) {
	n := New(Config{InputDim: 4, Hidden: []int{8, 6}, NumClasses: 3, Seed: 1})
	if len(n.Layers) != 3 {
		t.Fatalf("got %d layers", len(n.Layers))
	}
	if n.Layers[0].In != 4 || n.Layers[0].Out != 8 ||
		n.Layers[1].In != 8 || n.Layers[1].Out != 6 ||
		n.Layers[2].In != 6 || n.Layers[2].Out != 3 {
		t.Fatal("layer shapes wrong")
	}
	want := 4*8 + 8 + 8*6 + 6 + 6*3 + 3
	if n.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", n.NumParams(), want)
	}
}

func TestNewPanics(t *testing.T) {
	for _, cfg := range []Config{
		{InputDim: 0, NumClasses: 2},
		{InputDim: 3, NumClasses: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestForwardIsDistribution(t *testing.T) {
	n := New(Config{InputDim: 5, Hidden: []int{16}, NumClasses: 4, Seed: 2})
	rng := xrand.New(3)
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		probs := n.Forward(x)
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("invalid probability %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(Config{InputDim: 3, Hidden: []int{8}, NumClasses: 2, Seed: 7})
	b := New(Config{InputDim: 3, Hidden: []int{8}, NumClasses: 2, Seed: 7})
	for li := range a.Layers {
		for i := range a.Layers[li].W {
			if a.Layers[li].W[i] != b.Layers[li].W[i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
	c := New(Config{InputDim: 3, Hidden: []int{8}, NumClasses: 2, Seed: 8})
	if a.Layers[0].W[0] == c.Layers[0].W[0] {
		t.Fatal("different seeds produced identical first weight")
	}
}

func TestTrainLearnsSeparableData(t *testing.T) {
	xs, ys := spiralData(400, 10)
	n := New(Config{InputDim: 2, Hidden: []int{32, 32}, NumClasses: 2, Seed: 1})
	losses, err := n.Train(xs, ys, DefaultTrainConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 400 {
		t.Fatalf("got %d loss entries", len(losses))
	}
	// Loss should drop substantially.
	early := (losses[0] + losses[1] + losses[2]) / 3
	late := (losses[397] + losses[398] + losses[399]) / 3
	if late >= early/2 {
		t.Errorf("loss did not decrease enough: %v -> %v", early, late)
	}
	if acc := n.Accuracy(xs, ys); acc < 0.95 {
		t.Errorf("training accuracy = %v, want >= 0.95", acc)
	}
	// Held-out data from the same distribution.
	tx, ty := spiralData(200, 99)
	if acc := n.Accuracy(tx, ty); acc < 0.93 {
		t.Errorf("test accuracy = %v, want >= 0.93", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	n := New(Config{InputDim: 2, Hidden: []int{4}, NumClasses: 2, Seed: 1})
	if _, err := n.Train(nil, nil, DefaultTrainConfig(10)); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{0, 1}, DefaultTrainConfig(10)); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := n.Train([][]float64{{1}}, []int{0}, DefaultTrainConfig(10)); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{5}, DefaultTrainConfig(10)); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestNormalizationHelpsScaledFeatures(t *testing.T) {
	// Feature 1 carries the signal but at a tiny scale next to feature 0.
	rng := xrand.New(21)
	n := 600
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		label := i % 2
		noise := rng.NormFloat64() * 1e5
		signal := float64(label)*2 - 1 + rng.NormFloat64()*0.2
		xs[i] = []float64{noise, signal * 1e-3}
		ys[i] = label
	}
	cfg := Config{InputDim: 2, Hidden: []int{16}, NumClasses: 2, Seed: 3}
	withNorm := New(cfg)
	tc := DefaultTrainConfig(300)
	if _, err := withNorm.Train(xs, ys, tc); err != nil {
		t.Fatal(err)
	}
	if acc := withNorm.Accuracy(xs, ys); acc < 0.9 {
		t.Errorf("normalized accuracy = %v, want >= 0.9", acc)
	}
}

func TestAccuracyWithin(t *testing.T) {
	xs, ys := spiralData(200, 33)
	n := New(Config{InputDim: 2, Hidden: []int{16}, NumClasses: 2, Seed: 5})
	if _, err := n.Train(xs, ys, DefaultTrainConfig(200)); err != nil {
		t.Fatal(err)
	}
	exact := n.Accuracy(xs, ys)
	within0 := n.AccuracyWithin(xs, ys, 0)
	within1 := n.AccuracyWithin(xs, ys, 1)
	if exact != within0 {
		t.Errorf("AccuracyWithin(0)=%v should equal Accuracy=%v", within0, exact)
	}
	if within1 != 1 {
		t.Errorf("two-class within-1 accuracy should be 1, got %v", within1)
	}
}

func TestPredictorMatchesForward(t *testing.T) {
	xs, ys := spiralData(100, 44)
	n := New(Config{InputDim: 2, Hidden: []int{8}, NumClasses: 2, Seed: 9})
	if _, err := n.Train(xs, ys, DefaultTrainConfig(50)); err != nil {
		t.Fatal(err)
	}
	p := n.NewPredictor()
	for i := 0; i < 20; i++ {
		want := n.Forward(xs[i])
		got := p.Probs(xs[i])
		for c := range want {
			if math.Abs(want[c]-got[c]) > 1e-12 {
				t.Fatalf("predictor diverges from Forward at sample %d", i)
			}
		}
		if p.Classify(xs[i]) != n.Classify(xs[i]) {
			t.Fatal("Classify mismatch")
		}
	}
}

func TestExpectedValue(t *testing.T) {
	n := New(Config{InputDim: 1, Hidden: []int{4}, NumClasses: 3, Seed: 1})
	p := n.NewPredictor()
	e := p.Expected([]float64{0.5})
	if e < 0 || e > 2 {
		t.Errorf("Expected = %v outside class range", e)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	xs, ys := spiralData(100, 55)
	n := New(Config{InputDim: 2, Hidden: []int{8, 8}, NumClasses: 2, Seed: 6})
	if _, err := n.Train(xs, ys, DefaultTrainConfig(100)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a := n.Forward(xs[i])
		b := got.Forward(xs[i])
		for c := range a {
			if a[c] != b[c] {
				t.Fatal("round trip changed outputs")
			}
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestNormalizer(t *testing.T) {
	xs := [][]float64{{1, 100}, {3, 300}, {5, 500}}
	nm := FitNormalizer(xs)
	if nm.Mean[0] != 3 || nm.Mean[1] != 300 {
		t.Fatalf("means wrong: %v", nm.Mean)
	}
	out := make([]float64, 2)
	nm.Apply([]float64{3, 300}, out)
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("centering wrong: %v", out)
	}
	// Constant column gets std 1.
	cm := FitNormalizer([][]float64{{7}, {7}, {7}})
	if cm.Std[0] != 1 {
		t.Errorf("constant column std = %v, want 1", cm.Std[0])
	}
}

func TestTrainingDeterministic(t *testing.T) {
	xs, ys := spiralData(100, 66)
	run := func() float64 {
		n := New(Config{InputDim: 2, Hidden: []int{8}, NumClasses: 2, Seed: 4})
		if _, err := n.Train(xs, ys, DefaultTrainConfig(80)); err != nil {
			t.Fatal(err)
		}
		return n.Layers[0].W[0]
	}
	if run() != run() {
		t.Fatal("training is not deterministic")
	}
}

func BenchmarkInferenceFast(b *testing.B) {
	n := New(FastConfig(16, 24, 1))
	p := n.NewPredictor()
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Classify(x)
	}
}

// BenchmarkInferencePaper measures inference latency for the paper's
// 5x128 architecture — the quantity Figs. 7b/8b report (41-80 us on the
// paper's hardware).
func BenchmarkInferencePaper(b *testing.B) {
	n := New(PaperConfig(16, 24, 1))
	p := n.NewPredictor()
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Classify(x)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	xs, ys := spiralData(200, 77)
	n := New(Config{InputDim: 2, Hidden: []int{64, 64}, NumClasses: 2, Seed: 1})
	tc := DefaultTrainConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Train(xs, ys, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGradientCheck validates backprop against numerical differentiation:
// for a small network and a handful of parameters, the analytic gradient
// must match (f(w+h) - f(w-h)) / 2h.
func TestGradientCheck(t *testing.T) {
	n := New(Config{InputDim: 3, Hidden: []int{5, 4}, NumClasses: 3, Seed: 13})
	x := []float64{0.7, -1.2, 2.3}
	y := 1

	sc := n.newScratch()
	g := newGradients(n)
	g.zero()
	n.backprop(x, y, sc, g)

	loss := func() float64 {
		n.Rebuild() // the perturbation loop below edits Layers directly
		probs := n.Forward(x)
		return -math.Log(probs[y])
	}
	const h = 1e-6
	checks := 0
	for li := range n.Layers {
		l := &n.Layers[li]
		// Check a spread of weight and bias entries per layer.
		for _, wi := range []int{0, len(l.W) / 2, len(l.W) - 1} {
			orig := l.W[wi]
			l.W[wi] = orig + h
			up := loss()
			l.W[wi] = orig - h
			down := loss()
			l.W[wi] = orig
			numeric := (up - down) / (2 * h)
			analytic := g.w[li][wi]
			if diff := math.Abs(numeric - analytic); diff > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("layer %d W[%d]: analytic %v vs numeric %v", li, wi, analytic, numeric)
			}
			checks++
		}
		bi := len(l.B) - 1
		orig := l.B[bi]
		l.B[bi] = orig + h
		up := loss()
		l.B[bi] = orig - h
		down := loss()
		l.B[bi] = orig
		numeric := (up - down) / (2 * h)
		if diff := math.Abs(numeric - g.b[li][bi]); diff > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("layer %d B[%d]: analytic %v vs numeric %v", li, bi, g.b[li][bi], numeric)
		}
		checks++
	}
	if checks < 8 {
		t.Fatalf("only %d gradient entries checked", checks)
	}
}
