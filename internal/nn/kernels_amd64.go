//go:build amd64

package nn

// The SSE2 micro-kernels in kernels_amd64.s process eight output columns
// of the transposed weight layout at a time; the wrappers here tile the
// output dimension and finish the remainder with the scalar strided loop.
// Both paths accumulate bias-first in ascending input order, so they are
// bit-identical to each other and to the portable fallbacks in
// kernels_generic.go.

//go:noescape
func colsDense8(z, wt, bias, x *float64, k, stride int)

//go:noescape
func colsNZ8(z, wt, bias *float64, idx *int32, xv *float64, nnz, stride int)

//go:noescape
func gradCols8(gw, act, delta *float64, batch, actStride, deltaStride int)

//go:noescape
func colsDense4(z, wt, bias, x *float64, k, stride int)

//go:noescape
func gradCols4(gw, act, delta *float64, batch, actStride, deltaStride int)

// gradWT accumulates the mini-batch weight gradient gw[o*in+i] +=
// Σ_r delta[r*out+o] * act[r*in+i], eight input columns at a time. Each
// element's sum runs over ascending batch row r starting from gw's
// current value — the same chain as the per-sample reference backward.
func gradWT(gw, act, delta []float64, batch, in, out int) {
	for o := 0; o < out; o++ {
		gwRow := gw[o*in : (o+1)*in]
		i := 0
		if batch > 0 {
			for ; i+8 <= in; i += 8 {
				gradCols8(&gwRow[i], &act[i], &delta[o], batch, in*8, out*8)
			}
			if i+4 <= in {
				gradCols4(&gwRow[i], &act[i], &delta[o], batch, in*8, out*8)
				i += 4
			}
		}
		for ; i < in; i++ {
			s := gwRow[i]
			for r := 0; r < batch; r++ {
				s += delta[r*out+o] * act[r*in+i]
			}
			gwRow[i] = s
		}
	}
}

//go:noescape
func adamStep2(params, grad, m, v *float64, n int, consts *float64)

// adamBulk runs the packed two-lane Adam update over the even prefix of
// the parameter vector and returns how many elements it covered; update()
// finishes the odd tail with the scalar code. Lane-wise SQRTPD/DIVPD
// round exactly like their scalar forms, so both paths agree bitwise.
func adamBulk(params, grad, m, v []float64, lr, inv float64, tc TrainConfig) int {
	n2 := len(params) &^ 1
	if n2 == 0 {
		return 0
	}
	consts := [7]float64{inv, tc.Beta1, 1 - tc.Beta1, tc.Beta2, 1 - tc.Beta2, lr, tc.Epsilon}
	adamStep2(&params[0], &grad[0], &m[0], &v[0], n2, &consts[0])
	return n2
}

// matvecWT computes z = W·x + bias from the transposed weight layout wt
// (wt[i*out+o]) with a dense input vector.
func matvecWT(z, wt, bias, x []float64, out, k int) {
	o := 0
	if k > 0 {
		for ; o+8 <= out; o += 8 {
			colsDense8(&z[o], &wt[o], &bias[o], &x[0], k, out*8)
		}
		if o+4 <= out {
			colsDense4(&z[o], &wt[o], &bias[o], &x[0], k, out*8)
			o += 4
		}
	}
	for ; o < out; o++ {
		s := bias[o]
		for i := 0; i < k; i++ {
			s += x[i] * wt[i*out+o]
		}
		z[o] = s
	}
}

// matvecWTNZ is matvecWT for an input given as a compacted ascending
// (index, value) list of its nonzero entries. ReLU zeroes roughly half of
// each hidden activation vector; the skipped terms are exact ±0, which
// cannot change a sum that started from the bias, so the result matches
// the dense kernel bit for bit.
func matvecWTNZ(z, wt, bias []float64, idx []int32, xv []float64, out, k int) {
	if len(idx) == 0 {
		copy(z[:out], bias[:out])
		return
	}
	o := 0
	for ; o+8 <= out; o += 8 {
		colsNZ8(&z[o], &wt[o], &bias[o], &idx[0], &xv[0], len(idx), out*8)
	}
	for ; o < out; o++ {
		s := bias[o]
		for j, i := range idx {
			s += xv[j] * wt[int(i)*out+o]
		}
		z[o] = s
	}
}
