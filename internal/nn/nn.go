// Package nn implements the feed-forward neural networks Cottage uses for
// its quality and latency predictors: dense layers with ReLU activations,
// a softmax output, sparse categorical cross-entropy loss, and the Adam
// optimizer — the exact architecture/loss/optimizer combination named in
// Section III-B of the paper (5 hidden layers of 128 ReLU neurons, Adam,
// sparse categorical cross-entropy). It replaces the paper's
// TensorFlow/Keras dependency with a self-contained, deterministic
// implementation.
//
// All forward and backward paths — single-sample, batched, and the
// zero-skipping inference kernel — accumulate each output in the same
// canonical order (bias first, then products in ascending input index;
// see kernels_amd64.s and kernels_generic.go), so they agree bit for bit
// and training remains deterministic regardless of which path a caller
// takes.
package nn

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cottage/internal/xrand"
)

// Config describes a network's shape.
type Config struct {
	InputDim   int
	Hidden     []int // neuron count per hidden layer
	NumClasses int
	Seed       uint64 // weight initialization seed
}

// PaperConfig returns the architecture from the paper: five hidden layers
// of 128 neurons. Callers choose input/output dimensions per predictor.
func PaperConfig(inputDim, numClasses int, seed uint64) Config {
	return Config{
		InputDim:   inputDim,
		Hidden:     []int{128, 128, 128, 128, 128},
		NumClasses: numClasses,
		Seed:       seed,
	}
}

// FastConfig returns a reduced architecture (two hidden layers of 64) that
// trains an order of magnitude faster with little accuracy loss on our
// synthetic workloads. The experiment harness uses it by default; the
// paper-sized network is exercised by dedicated benchmarks.
func FastConfig(inputDim, numClasses int, seed uint64) Config {
	return Config{
		InputDim:   inputDim,
		Hidden:     []int{64, 64},
		NumClasses: numClasses,
		Seed:       seed,
	}
}

// layer is one dense layer: out = W·in + b, with W stored row-major
// (W[o*in+i]).
type layer struct {
	In, Out int
	W       []float64
	B       []float64
}

// Network is a feed-forward classifier. It is safe for concurrent
// inference after training completes; Train must not run concurrently
// with anything else. Code that mutates Layers directly (fine-tuning,
// perturbation tests) must call Rebuild afterwards so the inference
// kernels see the new weights.
type Network struct {
	Cfg    Config
	Layers []layer
	Norm   *Normalizer // optional input standardization, set by Train

	// wt holds per-layer transposed weight copies (wt[li][i*Out+o]) the
	// column-lane inference kernels read (see kernels_amd64.s). Rebuilt
	// whenever the weights settle: New, Train, Decode, Rebuild.
	wt [][]float64
	// pool recycles forward scratch across Forward/Classify calls so the
	// convenience entry points are pool-backed rather than allocating.
	pool sync.Pool
}

// New builds a network with He-initialized weights (appropriate for ReLU).
func New(cfg Config) *Network {
	if cfg.InputDim <= 0 || cfg.NumClasses <= 1 {
		panic("nn: InputDim must be positive and NumClasses > 1")
	}
	rng := xrand.New(cfg.Seed).SplitName("init")
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.NumClasses)
	n := &Network{Cfg: cfg}
	for l := 0; l+1 < len(dims); l++ {
		in, out := dims[l], dims[l+1]
		ly := layer{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
		scale := math.Sqrt(2.0 / float64(in))
		for i := range ly.W {
			ly.W[i] = rng.NormFloat64() * scale
		}
		n.Layers = append(n.Layers, ly)
	}
	n.Rebuild()
	return n
}

// Rebuild refreshes the transposed weight copies the inference kernels
// read. New, Train and Decode call it automatically; it only needs to be
// called by code that mutates Layers by hand.
func (n *Network) Rebuild() {
	if n.wt == nil {
		n.wt = make([][]float64, len(n.Layers))
	}
	for li := range n.Layers {
		l := &n.Layers[li]
		wt := n.wt[li]
		if len(wt) != l.In*l.Out {
			wt = make([]float64, l.In*l.Out)
			n.wt[li] = wt
		}
		for o := 0; o < l.Out; o++ {
			row := l.W[o*l.In : (o+1)*l.In]
			for i, w := range row {
				wt[i*l.Out+o] = w
			}
		}
	}
}

// NumParams returns the trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// scratch holds per-forward activations so inference does not allocate.
type scratch struct {
	acts [][]float64 // activations per layer, acts[0] is the (normalized) input
	zs   [][]float64 // pre-activations per layer
	// idx/xv hold the compacted nonzero entries of the activation vector
	// feeding the next layer (see matvecWTNZ); rebuilt every layer.
	idx []int32
	xv  []float64
}

func (n *Network) newScratch() *scratch {
	s := &scratch{}
	s.acts = append(s.acts, make([]float64, n.Cfg.InputDim))
	maxOut := 0
	for _, l := range n.Layers {
		s.zs = append(s.zs, make([]float64, l.Out))
		s.acts = append(s.acts, make([]float64, l.Out))
		maxOut = max(maxOut, l.Out)
	}
	s.idx = make([]int32, maxOut)
	s.xv = make([]float64, maxOut)
	return s
}

func (n *Network) getScratch() *scratch {
	if sc, _ := n.pool.Get().(*scratch); sc != nil {
		return sc
	}
	return n.newScratch()
}

// forwardZ runs the network up to the output layer's pre-activations and
// returns them (aliasing sc's last zs slice). Layer 0 uses the dense
// matvecWT kernel — its standardized input has no zeros to skip — and the
// activation pass compacts each layer's ReLU survivors (roughly half the
// vector) into an (index, value) list so the layers above gather only
// those columns via matvecWTNZ. Both kernels keep the canonical summation
// order, so the choice never changes a bit.
func (n *Network) forwardZ(x []float64, sc *scratch) []float64 {
	in := sc.acts[0]
	if n.Norm != nil {
		n.Norm.Apply(x, in)
	} else {
		copy(in, x)
	}
	last := len(n.Layers) - 1
	idx, xv := sc.idx, sc.xv
	nnz := 0
	var z []float64
	for li := range n.Layers {
		l := &n.Layers[li]
		z = sc.zs[li]
		if li == 0 {
			matvecWT(z, n.wt[0], l.B, in, l.Out, l.In)
		} else {
			matvecWTNZ(z, n.wt[li], l.B, idx[:nnz], xv, l.Out, l.In)
		}
		if li == last {
			break
		}
		// ReLU into the dense activation row (backprop reads it) while
		// compacting the positive entries for the next layer's gather.
		out := sc.acts[li+1]
		nnz = 0
		for i, v := range z {
			if v > 0 {
				out[i] = v
				idx[nnz] = int32(i)
				xv[nnz] = v
				nnz++
			} else {
				out[i] = 0
			}
		}
	}
	return z
}

// forward runs the network, filling sc, and returns the softmax output
// (aliasing sc's last activation slice).
func (n *Network) forward(x []float64, sc *scratch) []float64 {
	z := n.forwardZ(x, sc)
	out := sc.acts[len(n.Layers)]
	softmax(z, out)
	return out
}

// Forward returns class probabilities for x in a fresh slice. Scratch
// comes from the network's pool, so the only steady-state allocation is
// the result; fully allocation-free callers use a Predictor.
func (n *Network) Forward(x []float64) []float64 {
	sc := n.getScratch()
	probs := n.forward(x, sc)
	out := make([]float64, len(probs))
	copy(out, probs)
	n.pool.Put(sc)
	return out
}

// Classify returns the argmax class for x. It skips the softmax — exp is
// strictly increasing, so the logits' argmax is the probabilities' argmax
// — and is allocation-free at steady state.
func (n *Network) Classify(x []float64) int {
	sc := n.getScratch()
	c := argmax(n.forwardZ(x, sc))
	n.pool.Put(sc)
	return c
}

// Predictor wraps a trained network with reusable scratch space for
// allocation-free single-threaded inference. Each goroutine needs its own
// Predictor.
type Predictor struct {
	net *Network
	sc  *scratch
}

// NewPredictor creates inference scratch bound to net.
func (n *Network) NewPredictor() *Predictor {
	return &Predictor{net: n, sc: n.newScratch()}
}

// Probs returns the class distribution for x. The returned slice is reused
// by the next call.
func (p *Predictor) Probs(x []float64) []float64 {
	return p.net.forward(x, p.sc)
}

// Classify returns the argmax class for x, skipping the softmax (see
// Network.Classify).
func (p *Predictor) Classify(x []float64) int {
	return argmax(p.net.forwardZ(x, p.sc))
}

// Expected returns the probability-weighted mean of class indices — useful
// when classes encode ordered bins (latency bins), where the expectation is
// a smoother estimate than the argmax.
func (p *Predictor) Expected(x []float64) float64 {
	probs := p.Probs(x)
	e := 0.0
	for c, pr := range probs {
		e += float64(c) * pr
	}
	return e
}

// batchScratch holds flat row-major activations for a mini-batch forward
// pass: acts[li] is rows×dim with row r at acts[li][r*dim:].
type batchScratch struct {
	rows int
	acts [][]float64
	zs   [][]float64
}

func (n *Network) newBatchScratch(rows int) *batchScratch {
	bs := &batchScratch{rows: rows}
	bs.acts = append(bs.acts, make([]float64, rows*n.Cfg.InputDim))
	for _, l := range n.Layers {
		bs.zs = append(bs.zs, make([]float64, rows*l.Out))
		bs.acts = append(bs.acts, make([]float64, rows*l.Out))
	}
	return bs
}

// forwardBatch runs the first m rows loaded into bs.acts[0] through the
// network, one packed matvecWT per row per layer (the transposed weight
// panel stays hot in L1d across rows), leaving pre-activations in bs.zs
// and class probabilities in the final bs.acts entry. Each row's outputs
// are bit-identical to a single-sample forward of the same input. Callers
// must have a current Rebuild (Train refreshes wt every step).
func (n *Network) forwardBatch(bs *batchScratch, m int) {
	last := len(n.Layers) - 1
	for li := range n.Layers {
		l := &n.Layers[li]
		z := bs.zs[li]
		wt, a := n.wt[li], bs.acts[li]
		for r := 0; r < m; r++ {
			matvecWT(z[r*l.Out:(r+1)*l.Out], wt, l.B, a[r*l.In:(r+1)*l.In], l.Out, l.In)
		}
		out := bs.acts[li+1]
		if li == last {
			for r := 0; r < m; r++ {
				softmax(z[r*l.Out:(r+1)*l.Out], out[r*l.Out:(r+1)*l.Out])
			}
		} else {
			for i, v := range z[:m*l.Out] {
				if v > 0 {
					out[i] = v
				} else {
					out[i] = 0
				}
			}
		}
	}
}

// loadBatchRow standardizes (or copies) x into the given input row.
func (n *Network) loadBatchRow(dst, x []float64) {
	if n.Norm != nil {
		n.Norm.Apply(x, dst)
	} else {
		copy(dst, x)
	}
}

// ForwardBatch returns class probabilities for every sample in xs using
// one batched pass per layer. Results match per-sample Forward calls bit
// for bit; the returned rows are views into a single fresh allocation.
func (n *Network) ForwardBatch(xs [][]float64) [][]float64 {
	if len(xs) == 0 {
		return nil
	}
	d, c := n.Cfg.InputDim, n.Cfg.NumClasses
	bs := n.newBatchScratch(len(xs))
	for r, x := range xs {
		n.loadBatchRow(bs.acts[0][r*d:(r+1)*d], x)
	}
	n.forwardBatch(bs, len(xs))
	flat := make([]float64, len(xs)*c)
	copy(flat, bs.acts[len(n.Layers)])
	out := make([][]float64, len(xs))
	for r := range out {
		out[r] = flat[r*c : (r+1)*c : (r+1)*c]
	}
	return out
}

// evalChunk bounds batch-scratch size for whole-dataset evaluation.
const evalChunk = 256

// evalBatches streams the dataset through forwardBatch in bounded chunks,
// invoking fn once per sample (in order) with its probability row.
func (n *Network) evalBatches(xs [][]float64, fn func(i int, probs []float64)) {
	rows := evalChunk
	if len(xs) < rows {
		rows = len(xs)
	}
	if rows == 0 {
		return
	}
	bs := n.newBatchScratch(rows)
	d, c := n.Cfg.InputDim, n.Cfg.NumClasses
	probs := bs.acts[len(n.Layers)]
	for base := 0; base < len(xs); base += rows {
		m := min(rows, len(xs)-base)
		for r := 0; r < m; r++ {
			n.loadBatchRow(bs.acts[0][r*d:(r+1)*d], xs[base+r])
		}
		n.forwardBatch(bs, m)
		for r := 0; r < m; r++ {
			fn(base+r, probs[r*c:(r+1)*c])
		}
	}
}

func softmax(z, out []float64) {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range z {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// TrainConfig controls optimization. Zero-valued fields are filled with
// the defaults from DefaultTrainConfig.
type TrainConfig struct {
	LearningRate float64
	Beta1        float64
	Beta2        float64
	Epsilon      float64
	BatchSize    int
	// Steps is the number of gradient steps ("training iterations" in the
	// paper's Figs. 7a/8a — quality converges around 600, latency around
	// 60).
	Steps int
	Seed  uint64
	// Normalize standardizes inputs to zero mean / unit variance using
	// training-set statistics. Strongly recommended: the Table I/II
	// features span six orders of magnitude.
	Normalize bool
}

// DefaultTrainConfig mirrors Adam's canonical hyperparameters.
func DefaultTrainConfig(steps int) TrainConfig {
	return TrainConfig{
		LearningRate: 1e-3,
		Beta1:        0.9,
		Beta2:        0.999,
		Epsilon:      1e-8,
		BatchSize:    32,
		Steps:        steps,
		Seed:         1,
		Normalize:    true,
	}
}

// ErrBadTrainingData is returned when inputs and labels disagree or are
// empty or malformed.
var ErrBadTrainingData = errors.New("nn: invalid training data")

// Train fits the network with Adam on sparse categorical cross-entropy and
// returns the per-step mini-batch loss curve. Labels must lie in
// [0, NumClasses).
//
// The whole mini-batch goes through one GEMM per layer and one fused
// backward pass; every gradient element is accumulated in the same order
// as the per-sample reference (backprop), so the optimization trajectory
// is bit-identical to the unbatched implementation while allocating
// nothing per step.
func (n *Network) Train(xs [][]float64, ys []int, tc TrainConfig) ([]float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d inputs, %d labels", ErrBadTrainingData, len(xs), len(ys))
	}
	for i, x := range xs {
		if len(x) != n.Cfg.InputDim {
			return nil, fmt.Errorf("%w: sample %d has dim %d, want %d", ErrBadTrainingData, i, len(x), n.Cfg.InputDim)
		}
		if ys[i] < 0 || ys[i] >= n.Cfg.NumClasses {
			return nil, fmt.Errorf("%w: label %d out of [0,%d)", ErrBadTrainingData, ys[i], n.Cfg.NumClasses)
		}
	}
	if tc.LearningRate == 0 {
		tc.LearningRate = 1e-3
	}
	if tc.Beta1 == 0 {
		tc.Beta1 = 0.9
	}
	if tc.Beta2 == 0 {
		tc.Beta2 = 0.999
	}
	if tc.Epsilon == 0 {
		tc.Epsilon = 1e-8
	}
	if tc.BatchSize <= 0 {
		tc.BatchSize = 32
	}
	if tc.Steps <= 0 {
		tc.Steps = 100
	}
	if tc.Normalize {
		n.Norm = FitNormalizer(xs)
	}

	d, c := n.Cfg.InputDim, n.Cfg.NumClasses
	numLayers := len(n.Layers)
	batch := tc.BatchSize

	// Standardize the dataset once up front; each batch gather is then a
	// straight copy instead of BatchSize normalizer passes per step.
	normX := make([]float64, len(xs)*d)
	for i, x := range xs {
		n.loadBatchRow(normX[i*d:(i+1)*d], x)
	}

	opt := newAdam(n, tc)
	rng := xrand.New(tc.Seed).SplitName("batches")
	grads := newGradients(n)
	bs := n.newBatchScratch(batch)
	maxDim := c
	for _, l := range n.Layers {
		maxDim = max(maxDim, l.In, l.Out)
	}
	cur := make([]float64, batch*maxDim) // delta for the layer being processed
	nxt := make([]float64, batch*maxDim) // delta being built for the layer below
	zeroBias := make([]float64, maxDim)  // +0 start for the propagation kernel
	idx := make([]int, batch)            // this step's sample indices
	losses := make([]float64, 0, tc.Steps)

	for step := 0; step < tc.Steps; step++ {
		// The forward kernels read the transposed copies; refresh them
		// with the weights the optimizer just stepped.
		n.Rebuild()
		grads.zero()
		for b := range idx {
			idx[b] = rng.Intn(len(xs))
		}
		for r, i := range idx {
			copy(bs.acts[0][r*d:(r+1)*d], normX[i*d:(i+1)*d])
		}
		n.forwardBatch(bs, batch)

		// Output delta for softmax+CE: p - onehot, and the batch loss.
		probs := bs.acts[numLayers]
		batchLoss := 0.0
		dl := cur[:batch*c]
		copy(dl, probs[:batch*c])
		for r, i := range idx {
			y := ys[i]
			batchLoss += -math.Log(math.Max(probs[r*c+y], 1e-12))
			dl[r*c+y] -= 1
		}
		losses = append(losses, batchLoss/float64(batch))

		for li := numLayers - 1; li >= 0; li-- {
			l := &n.Layers[li]
			gw, gb := grads.w[li], grads.b[li]
			act := bs.acts[li]
			in, out := l.In, l.Out
			delta := cur[:batch*out]
			// Bias gradients: each output's deltas summed over ascending
			// batch row — row-major passes keep the reads contiguous while
			// every gb element still accumulates in reference order.
			gb = gb[:out]
			for r := 0; r < batch; r++ {
				dr := delta[r*out : (r+1)*out]
				for o := range gb {
					gb[o] += dr[o]
				}
			}
			// Weight gradients, whole batch per eight-column panel. The
			// ReLU-masked zero deltas contribute exact ±0 terms, which
			// cannot change sums that started from the +0 gradient, so
			// the dense kernel matches the zero-skipping reference.
			gradWT(gw, act, delta, batch, in, out)
			if li > 0 {
				// Propagate dL/da = Wᵀ·delta per row — matvecWT over W
				// itself (w[o*in+i] is the transposed layout of Wᵀ) from
				// a +0 bias — then apply the ReLU' mask.
				nd := nxt[:batch*in]
				for r := 0; r < batch; r++ {
					matvecWT(nd[r*in:(r+1)*in], l.W, zeroBias, delta[r*out:(r+1)*out], in, out)
				}
				for i2, zv := range bs.zs[li-1][:batch*in] {
					if zv <= 0 {
						nd[i2] = 0
					}
				}
			}
			cur, nxt = nxt, cur
		}
		opt.step(n, grads, batch)
	}
	n.Rebuild()
	return losses, nil
}

// backprop runs one forward/backward pass, accumulating into g, and
// returns the sample's cross-entropy loss. It is the reference
// implementation the gradient-check test exercises; Train's batched path
// accumulates exactly the same sums in the same order.
func (n *Network) backprop(x []float64, y int, sc *scratch, g *gradients) float64 {
	probs := n.forward(x, sc)
	loss := -math.Log(math.Max(probs[y], 1e-12))

	L := len(n.Layers)
	// delta starts as dL/dz for the softmax+CE output layer: p - onehot.
	delta := make([]float64, len(probs))
	copy(delta, probs)
	delta[y] -= 1

	for li := L - 1; li >= 0; li-- {
		l := &n.Layers[li]
		act := sc.acts[li] // input to this layer
		gw := g.w[li]
		gb := g.b[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gb[o] += d
			row := gw[o*l.In : (o+1)*l.In]
			for i, a := range act {
				row[i] += d * a
			}
		}
		if li == 0 {
			break
		}
		// Propagate: dL/da_{li-1} = W^T delta, masked by ReLU'.
		prevZ := sc.zs[li-1]
		next := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := l.W[o*l.In : (o+1)*l.In]
			for i, w := range row {
				next[i] += w * d
			}
		}
		for i := range next {
			if prevZ[i] <= 0 {
				next[i] = 0
			}
		}
		delta = next
	}
	return loss
}

// Loss returns the mean cross-entropy of the dataset.
func (n *Network) Loss(xs [][]float64, ys []int) float64 {
	total := 0.0
	n.evalBatches(xs, func(i int, probs []float64) {
		total += -math.Log(math.Max(probs[ys[i]], 1e-12))
	})
	return total / float64(len(xs))
}

// Accuracy returns the exact-class accuracy over the dataset.
func (n *Network) Accuracy(xs [][]float64, ys []int) float64 {
	correct := 0
	n.evalBatches(xs, func(i int, probs []float64) {
		if argmax(probs) == ys[i] {
			correct++
		}
	})
	return float64(correct) / float64(len(xs))
}

// AccuracyWithin returns the fraction of samples whose predicted class is
// within tol bins of the true class — the paper's notion of an "accurate"
// latency prediction over binned service times.
func (n *Network) AccuracyWithin(xs [][]float64, ys []int, tol int) float64 {
	correct := 0
	n.evalBatches(xs, func(i int, probs []float64) {
		d := argmax(probs) - ys[i]
		if d < 0 {
			d = -d
		}
		if d <= tol {
			correct++
		}
	})
	return float64(correct) / float64(len(xs))
}

// gradients mirrors the network's parameter shapes.
type gradients struct {
	w [][]float64
	b [][]float64
}

func newGradients(n *Network) *gradients {
	g := &gradients{}
	for _, l := range n.Layers {
		g.w = append(g.w, make([]float64, len(l.W)))
		g.b = append(g.b, make([]float64, len(l.B)))
	}
	return g
}

func (g *gradients) zero() {
	for _, w := range g.w {
		clear(w)
	}
	for _, b := range g.b {
		clear(b)
	}
}

// adam holds first/second moment estimates per parameter.
type adam struct {
	tc     TrainConfig
	mw, vw [][]float64
	mb, vb [][]float64
	t      int
}

func newAdam(n *Network, tc TrainConfig) *adam {
	a := &adam{tc: tc}
	for _, l := range n.Layers {
		a.mw = append(a.mw, make([]float64, len(l.W)))
		a.vw = append(a.vw, make([]float64, len(l.W)))
		a.mb = append(a.mb, make([]float64, len(l.B)))
		a.vb = append(a.vb, make([]float64, len(l.B)))
	}
	return a
}

func (a *adam) step(n *Network, g *gradients, batchSize int) {
	a.t++
	lr := a.tc.LearningRate *
		math.Sqrt(1-math.Pow(a.tc.Beta2, float64(a.t))) /
		(1 - math.Pow(a.tc.Beta1, float64(a.t)))
	inv := 1 / float64(batchSize)
	for li := range n.Layers {
		update(n.Layers[li].W, g.w[li], a.mw[li], a.vw[li], lr, inv, a.tc)
		update(n.Layers[li].B, g.b[li], a.mb[li], a.vb[li], lr, inv, a.tc)
	}
}

func update(params, grad, m, v []float64, lr, inv float64, tc TrainConfig) {
	for i := adamBulk(params, grad, m, v, lr, inv, tc); i < len(params); i++ {
		gr := grad[i] * inv
		m[i] = tc.Beta1*m[i] + (1-tc.Beta1)*gr
		v[i] = tc.Beta2*v[i] + (1-tc.Beta2)*gr*gr
		params[i] -= lr * m[i] / (math.Sqrt(v[i]) + tc.Epsilon)
	}
}
