// Package nn implements the feed-forward neural networks Cottage uses for
// its quality and latency predictors: dense layers with ReLU activations,
// a softmax output, sparse categorical cross-entropy loss, and the Adam
// optimizer — the exact architecture/loss/optimizer combination named in
// Section III-B of the paper (5 hidden layers of 128 ReLU neurons, Adam,
// sparse categorical cross-entropy). It replaces the paper's
// TensorFlow/Keras dependency with a self-contained, deterministic
// implementation.
package nn

import (
	"errors"
	"fmt"
	"math"

	"cottage/internal/xrand"
)

// Config describes a network's shape.
type Config struct {
	InputDim   int
	Hidden     []int // neuron count per hidden layer
	NumClasses int
	Seed       uint64 // weight initialization seed
}

// PaperConfig returns the architecture from the paper: five hidden layers
// of 128 neurons. Callers choose input/output dimensions per predictor.
func PaperConfig(inputDim, numClasses int, seed uint64) Config {
	return Config{
		InputDim:   inputDim,
		Hidden:     []int{128, 128, 128, 128, 128},
		NumClasses: numClasses,
		Seed:       seed,
	}
}

// FastConfig returns a reduced architecture (two hidden layers of 64) that
// trains an order of magnitude faster with little accuracy loss on our
// synthetic workloads. The experiment harness uses it by default; the
// paper-sized network is exercised by dedicated benchmarks.
func FastConfig(inputDim, numClasses int, seed uint64) Config {
	return Config{
		InputDim:   inputDim,
		Hidden:     []int{64, 64},
		NumClasses: numClasses,
		Seed:       seed,
	}
}

// layer is one dense layer: out = W·in + b, with W stored row-major
// (W[o*in+i]).
type layer struct {
	In, Out int
	W       []float64
	B       []float64
}

// Network is a feed-forward classifier. It is safe for concurrent
// inference after training completes (Forward into caller-provided
// scratch), but Train must not run concurrently with anything else.
type Network struct {
	Cfg    Config
	Layers []layer
	Norm   *Normalizer // optional input standardization, set by Train
}

// New builds a network with He-initialized weights (appropriate for ReLU).
func New(cfg Config) *Network {
	if cfg.InputDim <= 0 || cfg.NumClasses <= 1 {
		panic("nn: InputDim must be positive and NumClasses > 1")
	}
	rng := xrand.New(cfg.Seed).SplitName("init")
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.NumClasses)
	n := &Network{Cfg: cfg}
	for l := 0; l+1 < len(dims); l++ {
		in, out := dims[l], dims[l+1]
		ly := layer{In: in, Out: out, W: make([]float64, in*out), B: make([]float64, out)}
		scale := math.Sqrt(2.0 / float64(in))
		for i := range ly.W {
			ly.W[i] = rng.NormFloat64() * scale
		}
		n.Layers = append(n.Layers, ly)
	}
	return n
}

// NumParams returns the trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// scratch holds per-forward activations so inference does not allocate.
type scratch struct {
	acts [][]float64 // activations per layer, acts[0] is the (normalized) input
	zs   [][]float64 // pre-activations per layer
}

func (n *Network) newScratch() *scratch {
	s := &scratch{}
	s.acts = append(s.acts, make([]float64, n.Cfg.InputDim))
	for _, l := range n.Layers {
		s.zs = append(s.zs, make([]float64, l.Out))
		s.acts = append(s.acts, make([]float64, l.Out))
	}
	return s
}

// forward runs the network, filling sc, and returns the softmax output
// (aliasing sc's last activation slice).
func (n *Network) forward(x []float64, sc *scratch) []float64 {
	in := sc.acts[0]
	if n.Norm != nil {
		n.Norm.Apply(x, in)
	} else {
		copy(in, x)
	}
	for li, l := range n.Layers {
		z := sc.zs[li]
		for o := 0; o < l.Out; o++ {
			sum := l.B[o]
			row := l.W[o*l.In : (o+1)*l.In]
			for i, w := range row {
				sum += w * in[i]
			}
			z[o] = sum
		}
		out := sc.acts[li+1]
		if li == len(n.Layers)-1 {
			softmax(z, out)
		} else {
			for i, v := range z {
				if v > 0 {
					out[i] = v
				} else {
					out[i] = 0
				}
			}
		}
		in = out
	}
	return in
}

// Forward returns class probabilities for x. It allocates scratch per
// call; hot paths should use a Predictor.
func (n *Network) Forward(x []float64) []float64 {
	sc := n.newScratch()
	probs := n.forward(x, sc)
	out := make([]float64, len(probs))
	copy(out, probs)
	return out
}

// Classify returns the argmax class for x.
func (n *Network) Classify(x []float64) int {
	return argmax(n.Forward(x))
}

// Predictor wraps a trained network with reusable scratch space for
// allocation-free single-threaded inference. Each goroutine needs its own
// Predictor.
type Predictor struct {
	net *Network
	sc  *scratch
}

// NewPredictor creates inference scratch bound to net.
func (n *Network) NewPredictor() *Predictor {
	return &Predictor{net: n, sc: n.newScratch()}
}

// Probs returns the class distribution for x. The returned slice is reused
// by the next call.
func (p *Predictor) Probs(x []float64) []float64 {
	return p.net.forward(x, p.sc)
}

// Classify returns the argmax class for x.
func (p *Predictor) Classify(x []float64) int {
	return argmax(p.Probs(x))
}

// Expected returns the probability-weighted mean of class indices — useful
// when classes encode ordered bins (latency bins), where the expectation is
// a smoother estimate than the argmax.
func (p *Predictor) Expected(x []float64) float64 {
	probs := p.Probs(x)
	e := 0.0
	for c, pr := range probs {
		e += float64(c) * pr
	}
	return e
}

func softmax(z, out []float64) {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range z {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// TrainConfig controls optimization. Zero-valued fields are filled with
// the defaults from DefaultTrainConfig.
type TrainConfig struct {
	LearningRate float64
	Beta1        float64
	Beta2        float64
	Epsilon      float64
	BatchSize    int
	// Steps is the number of gradient steps ("training iterations" in the
	// paper's Figs. 7a/8a — quality converges around 600, latency around
	// 60).
	Steps int
	Seed  uint64
	// Normalize standardizes inputs to zero mean / unit variance using
	// training-set statistics. Strongly recommended: the Table I/II
	// features span six orders of magnitude.
	Normalize bool
}

// DefaultTrainConfig mirrors Adam's canonical hyperparameters.
func DefaultTrainConfig(steps int) TrainConfig {
	return TrainConfig{
		LearningRate: 1e-3,
		Beta1:        0.9,
		Beta2:        0.999,
		Epsilon:      1e-8,
		BatchSize:    32,
		Steps:        steps,
		Seed:         1,
		Normalize:    true,
	}
}

// ErrBadTrainingData is returned when inputs and labels disagree or are
// empty or malformed.
var ErrBadTrainingData = errors.New("nn: invalid training data")

// Train fits the network with Adam on sparse categorical cross-entropy and
// returns the per-step mini-batch loss curve. Labels must lie in
// [0, NumClasses).
func (n *Network) Train(xs [][]float64, ys []int, tc TrainConfig) ([]float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d inputs, %d labels", ErrBadTrainingData, len(xs), len(ys))
	}
	for i, x := range xs {
		if len(x) != n.Cfg.InputDim {
			return nil, fmt.Errorf("%w: sample %d has dim %d, want %d", ErrBadTrainingData, i, len(x), n.Cfg.InputDim)
		}
		if ys[i] < 0 || ys[i] >= n.Cfg.NumClasses {
			return nil, fmt.Errorf("%w: label %d out of [0,%d)", ErrBadTrainingData, ys[i], n.Cfg.NumClasses)
		}
	}
	if tc.LearningRate == 0 {
		tc.LearningRate = 1e-3
	}
	if tc.Beta1 == 0 {
		tc.Beta1 = 0.9
	}
	if tc.Beta2 == 0 {
		tc.Beta2 = 0.999
	}
	if tc.Epsilon == 0 {
		tc.Epsilon = 1e-8
	}
	if tc.BatchSize <= 0 {
		tc.BatchSize = 32
	}
	if tc.Steps <= 0 {
		tc.Steps = 100
	}
	if tc.Normalize {
		n.Norm = FitNormalizer(xs)
	}

	opt := newAdam(n, tc)
	rng := xrand.New(tc.Seed).SplitName("batches")
	sc := n.newScratch()
	grads := newGradients(n)
	losses := make([]float64, 0, tc.Steps)

	for step := 0; step < tc.Steps; step++ {
		grads.zero()
		batchLoss := 0.0
		for b := 0; b < tc.BatchSize; b++ {
			i := rng.Intn(len(xs))
			batchLoss += n.backprop(xs[i], ys[i], sc, grads)
		}
		batchLoss /= float64(tc.BatchSize)
		losses = append(losses, batchLoss)
		opt.step(n, grads, tc.BatchSize)
	}
	return losses, nil
}

// backprop runs one forward/backward pass, accumulating into g, and
// returns the sample's cross-entropy loss.
func (n *Network) backprop(x []float64, y int, sc *scratch, g *gradients) float64 {
	probs := n.forward(x, sc)
	loss := -math.Log(math.Max(probs[y], 1e-12))

	L := len(n.Layers)
	// delta starts as dL/dz for the softmax+CE output layer: p - onehot.
	delta := make([]float64, len(probs))
	copy(delta, probs)
	delta[y] -= 1

	for li := L - 1; li >= 0; li-- {
		l := &n.Layers[li]
		act := sc.acts[li] // input to this layer
		gw := g.w[li]
		gb := g.b[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gb[o] += d
			row := gw[o*l.In : (o+1)*l.In]
			for i, a := range act {
				row[i] += d * a
			}
		}
		if li == 0 {
			break
		}
		// Propagate: dL/da_{li-1} = W^T delta, masked by ReLU'.
		prevZ := sc.zs[li-1]
		next := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := l.W[o*l.In : (o+1)*l.In]
			for i, w := range row {
				next[i] += w * d
			}
		}
		for i := range next {
			if prevZ[i] <= 0 {
				next[i] = 0
			}
		}
		delta = next
	}
	return loss
}

// Loss returns the mean cross-entropy of the dataset.
func (n *Network) Loss(xs [][]float64, ys []int) float64 {
	sc := n.newScratch()
	total := 0.0
	for i, x := range xs {
		probs := n.forward(x, sc)
		total += -math.Log(math.Max(probs[ys[i]], 1e-12))
	}
	return total / float64(len(xs))
}

// Accuracy returns the exact-class accuracy over the dataset.
func (n *Network) Accuracy(xs [][]float64, ys []int) float64 {
	sc := n.newScratch()
	correct := 0
	for i, x := range xs {
		if argmax(n.forward(x, sc)) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// AccuracyWithin returns the fraction of samples whose predicted class is
// within tol bins of the true class — the paper's notion of an "accurate"
// latency prediction over binned service times.
func (n *Network) AccuracyWithin(xs [][]float64, ys []int, tol int) float64 {
	sc := n.newScratch()
	correct := 0
	for i, x := range xs {
		got := argmax(n.forward(x, sc))
		d := got - ys[i]
		if d < 0 {
			d = -d
		}
		if d <= tol {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// gradients mirrors the network's parameter shapes.
type gradients struct {
	w [][]float64
	b [][]float64
}

func newGradients(n *Network) *gradients {
	g := &gradients{}
	for _, l := range n.Layers {
		g.w = append(g.w, make([]float64, len(l.W)))
		g.b = append(g.b, make([]float64, len(l.B)))
	}
	return g
}

func (g *gradients) zero() {
	for _, w := range g.w {
		for i := range w {
			w[i] = 0
		}
	}
	for _, b := range g.b {
		for i := range b {
			b[i] = 0
		}
	}
}

// adam holds first/second moment estimates per parameter.
type adam struct {
	tc     TrainConfig
	mw, vw [][]float64
	mb, vb [][]float64
	t      int
}

func newAdam(n *Network, tc TrainConfig) *adam {
	a := &adam{tc: tc}
	for _, l := range n.Layers {
		a.mw = append(a.mw, make([]float64, len(l.W)))
		a.vw = append(a.vw, make([]float64, len(l.W)))
		a.mb = append(a.mb, make([]float64, len(l.B)))
		a.vb = append(a.vb, make([]float64, len(l.B)))
	}
	return a
}

func (a *adam) step(n *Network, g *gradients, batchSize int) {
	a.t++
	lr := a.tc.LearningRate *
		math.Sqrt(1-math.Pow(a.tc.Beta2, float64(a.t))) /
		(1 - math.Pow(a.tc.Beta1, float64(a.t)))
	inv := 1 / float64(batchSize)
	for li := range n.Layers {
		update(n.Layers[li].W, g.w[li], a.mw[li], a.vw[li], lr, inv, a.tc)
		update(n.Layers[li].B, g.b[li], a.mb[li], a.vb[li], lr, inv, a.tc)
	}
}

func update(params, grad, m, v []float64, lr, inv float64, tc TrainConfig) {
	for i := range params {
		gr := grad[i] * inv
		m[i] = tc.Beta1*m[i] + (1-tc.Beta1)*gr
		v[i] = tc.Beta2*v[i] + (1-tc.Beta2)*gr*gr
		params[i] -= lr * m[i] / (math.Sqrt(v[i]) + tc.Epsilon)
	}
}
