package nn

import (
	"math"
	"testing"

	"cottage/internal/race"
	"cottage/internal/xrand"
)

// refMatvec is the naive reference: z[o] = bias[o] + Σ_i w[o*k+i]*x[i] in
// canonical order. Every kernel must match it bit for bit.
func refMatvec(z, w, bias, x []float64, out, k int) {
	for o := 0; o < out; o++ {
		s := bias[o]
		for i := 0; i < k; i++ {
			s += w[o*k+i] * x[i]
		}
		z[o] = s
	}
}

func randSlice(rng *xrand.RNG, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// transpose builds the wt layout (wt[i*out+o]) from a row-major W (out×k).
func transpose(w []float64, out, k int) []float64 {
	wt := make([]float64, out*k)
	for o := 0; o < out; o++ {
		for i := 0; i < k; i++ {
			wt[i*out+o] = w[o*k+i]
		}
	}
	return wt
}

// Shapes chosen to exercise every tile path: the 8-lane kernel, the
// 4-lane tail, the scalar tail, out < 4 (fully scalar), and k = 0.
var kernelShapes = [][2]int{
	{1, 1}, {2, 3}, {3, 5}, {4, 16}, {5, 2}, {6, 7}, {7, 15},
	{8, 8}, {9, 6}, {11, 4}, {12, 13}, {15, 15}, {16, 24},
	{20, 3}, {24, 64}, {128, 128}, {129, 130}, {3, 0},
}

func TestMatvecWTMatchesReference(t *testing.T) {
	rng := xrand.New(11)
	for _, shape := range kernelShapes {
		out, k := shape[0], shape[1]
		w := randSlice(rng, out*k)
		bias := randSlice(rng, out)
		x := randSlice(rng, k)
		want := make([]float64, out)
		refMatvec(want, w, bias, x, out, k)
		got := make([]float64, out)
		matvecWT(got, transpose(w, out, k), bias, x, out, k)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("matvecWT out=%d k=%d: z[%d] = %v, want %v", out, k, o, got[o], want[o])
			}
		}
	}
}

func TestMatvecWTNZMatchesReference(t *testing.T) {
	rng := xrand.New(12)
	for _, shape := range kernelShapes {
		out, k := shape[0], shape[1]
		w := randSlice(rng, out*k)
		bias := randSlice(rng, out)
		// Sparse input with exact zeros, like a ReLU activation vector,
		// compacted the way forwardZ compacts it.
		x := randSlice(rng, k)
		var idx []int32
		var xv []float64
		for i := range x {
			if i%2 == 0 {
				x[i] = 0
			} else {
				idx = append(idx, int32(i))
				xv = append(xv, x[i])
			}
		}
		want := make([]float64, out)
		refMatvec(want, w, bias, x, out, k)
		got := make([]float64, out)
		matvecWTNZ(got, transpose(w, out, k), bias, idx, xv, out, k)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("matvecWTNZ out=%d k=%d: z[%d] = %v, want %v", out, k, o, got[o], want[o])
			}
		}
	}
}

func TestMatvecWTNZAllZero(t *testing.T) {
	// An all-zero input (empty compacted list) must yield exactly the bias.
	rng := xrand.New(14)
	out, k := 13, 9
	wt := randSlice(rng, out*k)
	bias := randSlice(rng, out)
	got := randSlice(rng, out) // pre-filled with garbage the copy must overwrite
	matvecWTNZ(got, wt, bias, nil, nil, out, k)
	for o := range bias {
		if got[o] != bias[o] {
			t.Fatalf("z[%d] = %v, want bias %v", o, got[o], bias[o])
		}
	}
}

func TestGradWTMatchesReference(t *testing.T) {
	rng := xrand.New(13)
	for _, shape := range [][3]int{
		{1, 1, 1}, {2, 3, 4}, {1, 4, 6}, {3, 5, 2}, {5, 16, 24},
		{4, 6, 13}, {32, 15, 64}, {7, 128, 128}, {6, 130, 9}, {2, 7, 0},
	} {
		batch, in, out := shape[0], shape[1], shape[2]
		act := randSlice(rng, batch*in)
		delta := randSlice(rng, batch*out)
		// Zero some deltas so the generic fallback's zero-skip path and the
		// packed kernel (which keeps the exact-±0 terms) are both exercised.
		for i := range delta {
			if i%3 == 0 {
				delta[i] = 0
			}
		}
		init := randSlice(rng, out*in)
		// Reference: each element accumulates over ascending batch row r
		// starting from gw's current value — the per-sample backward chain.
		want := make([]float64, out*in)
		copy(want, init)
		for o := 0; o < out; o++ {
			for i := 0; i < in; i++ {
				s := want[o*in+i]
				for r := 0; r < batch; r++ {
					s += delta[r*out+o] * act[r*in+i]
				}
				want[o*in+i] = s
			}
		}
		got := make([]float64, out*in)
		copy(got, init)
		gradWT(got, act, delta, batch, in, out)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gradWT batch=%d in=%d out=%d: gw[%d] = %v, want %v", batch, in, out, i, got[i], want[i])
			}
		}
	}
}

func TestAdamBulkMatchesScalar(t *testing.T) {
	rng := xrand.New(15)
	tc := DefaultTrainConfig(1)
	for _, n := range []int{0, 1, 2, 3, 7, 16, 33} {
		params := randSlice(rng, n)
		grad := randSlice(rng, n)
		m := randSlice(rng, n)
		v := randSlice(rng, n)
		for i := range v {
			v[i] *= v[i] // second moments are non-negative
		}
		lr, inv := 0.0009765625, 1.0/32
		// Scalar reference: the exact body of update()'s loop.
		wp := append([]float64(nil), params...)
		wm := append([]float64(nil), m...)
		wv := append([]float64(nil), v...)
		for i := range wp {
			gr := grad[i] * inv
			wm[i] = tc.Beta1*wm[i] + (1-tc.Beta1)*gr
			wv[i] = tc.Beta2*wv[i] + (1-tc.Beta2)*gr*gr
			wp[i] -= lr * wm[i] / (math.Sqrt(wv[i]) + tc.Epsilon)
		}
		update(params, grad, m, v, lr, inv, tc)
		for i := 0; i < n; i++ {
			if params[i] != wp[i] || m[i] != wm[i] || v[i] != wv[i] {
				t.Fatalf("n=%d elem %d: packed (p=%v m=%v v=%v), scalar (p=%v m=%v v=%v)",
					n, i, params[i], m[i], v[i], wp[i], wm[i], wv[i])
			}
		}
	}
}

func TestForwardBatchMatchesForward(t *testing.T) {
	xs, ys := spiralData(40, 88)
	n := New(Config{InputDim: 2, Hidden: []int{16, 16}, NumClasses: 2, Seed: 3})
	if _, err := n.Train(xs, ys, DefaultTrainConfig(30)); err != nil {
		t.Fatal(err)
	}
	batch := n.ForwardBatch(xs)
	if len(batch) != len(xs) {
		t.Fatalf("ForwardBatch returned %d rows, want %d", len(batch), len(xs))
	}
	for i, x := range xs {
		want := n.Forward(x)
		for c := range want {
			if batch[i][c] != want[c] {
				t.Fatalf("sample %d class %d: batch %v, forward %v", i, c, batch[i][c], want[c])
			}
		}
	}
}

func TestTrainMatchesPerSampleReference(t *testing.T) {
	// One batched Train step must produce exactly the gradients of the
	// per-sample reference backprop over the same sampled batch.
	xs, ys := spiralData(60, 99)
	tc := DefaultTrainConfig(1)

	ref := New(Config{InputDim: 2, Hidden: []int{8, 8}, NumClasses: 2, Seed: 21})
	ref.Norm = FitNormalizer(xs)
	rng := xrand.New(tc.Seed).SplitName("batches")
	sc := ref.newScratch()
	g := newGradients(ref)
	g.zero()
	for b := 0; b < tc.BatchSize; b++ {
		i := rng.Intn(len(xs))
		ref.backprop(xs[i], ys[i], sc, g)
	}
	opt := newAdam(ref, tc)
	opt.step(ref, g, tc.BatchSize)

	got := New(Config{InputDim: 2, Hidden: []int{8, 8}, NumClasses: 2, Seed: 21})
	if _, err := got.Train(xs, ys, tc); err != nil {
		t.Fatal(err)
	}

	for li := range ref.Layers {
		for i, w := range ref.Layers[li].W {
			if got.Layers[li].W[i] != w {
				t.Fatalf("layer %d W[%d]: batched %v, reference %v", li, i, got.Layers[li].W[i], w)
			}
		}
		for i, b := range ref.Layers[li].B {
			if got.Layers[li].B[i] != b {
				t.Fatalf("layer %d B[%d]: batched %v, reference %v", li, i, got.Layers[li].B[i], b)
			}
		}
	}
}

func TestPredictorProbsZeroAlloc(t *testing.T) {
	n := New(FastConfig(15, 24, 1))
	p := n.NewPredictor()
	x := make([]float64, 15)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = p.Probs(x) }); allocs != 0 {
		t.Errorf("Predictor.Probs allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = p.Classify(x) }); allocs != 0 {
		t.Errorf("Predictor.Classify allocates %v per run, want 0", allocs)
	}
}

func TestNetworkClassifyZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("race runtime randomly drops sync.Pool items; pooled paths allocate")
	}
	n := New(FastConfig(15, 24, 1))
	x := make([]float64, 15)
	_ = n.Classify(x) // warm the scratch pool
	if allocs := testing.AllocsPerRun(100, func() { _ = n.Classify(x) }); allocs != 0 {
		t.Errorf("Network.Classify allocates %v per run, want 0", allocs)
	}
}
