// SSE2 inference kernels. Each function accumulates eight output lanes
// of z = W·x + bias in XMM registers, reading the transposed weight
// layout wt (wt[i*out+o]) so one 16-byte load covers two adjacent
// outputs. Every lane is an independent IEEE-754 double accumulator that
// adds bias first and then products in ascending input order — the exact
// sequence of the scalar reference — so the vector and scalar paths are
// bit-identical. SSE2 is part of the amd64 baseline, so there is no CPU
// feature dispatch (and deliberately no FMA, which would round
// differently).

#include "textflag.h"

// func colsDense8(z, wt, bias, x *float64, k, stride int)
// z[0..8) = bias[0..8) + Σ_{i<k} x[i] * wt[i*stride/8 .. +8)
// stride is in bytes; wt points at the first of the eight columns.
TEXT ·colsDense8(SB), NOSPLIT, $0-48
	MOVQ z+0(FP), DI
	MOVQ wt+8(FP), SI
	MOVQ bias+16(FP), BX
	MOVQ x+24(FP), R9
	MOVQ k+32(FP), CX
	MOVQ stride+40(FP), DX
	MOVUPS 0(BX), X0
	MOVUPS 16(BX), X1
	MOVUPS 32(BX), X2
	MOVUPS 48(BX), X3
	XORQ AX, AX
dense8loop:
	CMPQ AX, CX
	JGE  dense8done
	MOVQ (R9)(AX*8), X4
	UNPCKLPD X4, X4
	MOVUPS 0(SI), X5
	MULPD X4, X5
	ADDPD X5, X0
	MOVUPS 16(SI), X6
	MULPD X4, X6
	ADDPD X6, X1
	MOVUPS 32(SI), X7
	MULPD X4, X7
	ADDPD X7, X2
	MOVUPS 48(SI), X8
	MULPD X4, X8
	ADDPD X8, X3
	ADDQ DX, SI
	INCQ AX
	JMP  dense8loop
dense8done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	RET

// func colsNZ8(z, wt, bias *float64, idx *int32, xv *float64, nnz, stride int)
// z[0..8) = bias[0..8) + Σ_{j<nnz} xv[j] * wt[idx[j]*stride/8 .. +8)
// The compacted (idx, xv) list holds the nonzero inputs in ascending
// index order (see forwardZ), so the per-lane sum order is canonical.
TEXT ·colsNZ8(SB), NOSPLIT, $0-56
	MOVQ z+0(FP), DI
	MOVQ wt+8(FP), SI
	MOVQ bias+16(FP), BX
	MOVQ idx+24(FP), R8
	MOVQ xv+32(FP), R9
	MOVQ nnz+40(FP), CX
	MOVQ stride+48(FP), DX
	MOVUPS 0(BX), X0
	MOVUPS 16(BX), X1
	MOVUPS 32(BX), X2
	MOVUPS 48(BX), X3
	XORQ AX, AX
nz8loop:
	CMPQ AX, CX
	JGE  nz8done
	MOVLQSX (R8)(AX*4), R10
	IMULQ DX, R10
	MOVQ (R9)(AX*8), X4
	UNPCKLPD X4, X4
	MOVUPS 0(SI)(R10*1), X5
	MULPD X4, X5
	ADDPD X5, X0
	MOVUPS 16(SI)(R10*1), X6
	MULPD X4, X6
	ADDPD X6, X1
	MOVUPS 32(SI)(R10*1), X7
	MULPD X4, X7
	ADDPD X7, X2
	MOVUPS 48(SI)(R10*1), X8
	MULPD X4, X8
	ADDPD X8, X3
	INCQ AX
	JMP  nz8loop
nz8done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	RET

// func gradCols8(gw, act, delta *float64, batch, actStride, deltaStride int)
// gw[0..8) += Σ_{r<batch} delta[r*deltaStride/8] * act[r*actStride/8 .. +8)
// The accumulators start from gw's current contents, so the per-element
// chain is exactly the sequential ascending-r accumulation of the
// reference backward pass. Strides are in bytes; act points at the first
// of the eight input columns, delta at the output's column in row 0.
TEXT ·gradCols8(SB), NOSPLIT, $0-48
	MOVQ gw+0(FP), DI
	MOVQ act+8(FP), SI
	MOVQ delta+16(FP), BX
	MOVQ batch+24(FP), CX
	MOVQ actStride+32(FP), DX
	MOVQ deltaStride+40(FP), R8
	MOVUPS 0(DI), X0
	MOVUPS 16(DI), X1
	MOVUPS 32(DI), X2
	MOVUPS 48(DI), X3
	XORQ AX, AX
grad8loop:
	CMPQ AX, CX
	JGE  grad8done
	MOVQ (BX), X4
	UNPCKLPD X4, X4
	MOVUPS 0(SI), X5
	MULPD X4, X5
	ADDPD X5, X0
	MOVUPS 16(SI), X6
	MULPD X4, X6
	ADDPD X6, X1
	MOVUPS 32(SI), X7
	MULPD X4, X7
	ADDPD X7, X2
	MOVUPS 48(SI), X8
	MULPD X4, X8
	ADDPD X8, X3
	ADDQ DX, SI
	ADDQ R8, BX
	INCQ AX
	JMP  grad8loop
grad8done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	RET

// func colsDense4(z, wt, bias, x *float64, k, stride int)
// Four-lane tail variant of colsDense8 for output blocks of 4..7.
TEXT ·colsDense4(SB), NOSPLIT, $0-48
	MOVQ z+0(FP), DI
	MOVQ wt+8(FP), SI
	MOVQ bias+16(FP), BX
	MOVQ x+24(FP), R9
	MOVQ k+32(FP), CX
	MOVQ stride+40(FP), DX
	MOVUPS 0(BX), X0
	MOVUPS 16(BX), X1
	XORQ AX, AX
dense4loop:
	CMPQ AX, CX
	JGE  dense4done
	MOVQ (R9)(AX*8), X4
	UNPCKLPD X4, X4
	MOVUPS 0(SI), X5
	MULPD X4, X5
	ADDPD X5, X0
	MOVUPS 16(SI), X6
	MULPD X4, X6
	ADDPD X6, X1
	ADDQ DX, SI
	INCQ AX
	JMP  dense4loop
dense4done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	RET

// func gradCols4(gw, act, delta *float64, batch, actStride, deltaStride int)
// Four-lane tail variant of gradCols8 for input blocks of 4..7.
TEXT ·gradCols4(SB), NOSPLIT, $0-48
	MOVQ gw+0(FP), DI
	MOVQ act+8(FP), SI
	MOVQ delta+16(FP), BX
	MOVQ batch+24(FP), CX
	MOVQ actStride+32(FP), DX
	MOVQ deltaStride+40(FP), R8
	MOVUPS 0(DI), X0
	MOVUPS 16(DI), X1
	XORQ AX, AX
grad4loop:
	CMPQ AX, CX
	JGE  grad4done
	MOVQ (BX), X4
	UNPCKLPD X4, X4
	MOVUPS 0(SI), X5
	MULPD X4, X5
	ADDPD X5, X0
	MOVUPS 16(SI), X6
	MULPD X4, X6
	ADDPD X6, X1
	ADDQ DX, SI
	ADDQ R8, BX
	INCQ AX
	JMP  grad4loop
grad4done:
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	RET

// func adamStep2(params, grad, m, v *float64, n int, consts *float64)
// Two-lane Adam update over the first n (even) parameters. consts is
// [inv, β1, 1-β1, β2, 1-β2, lr, ε]. Each lane performs exactly the
// scalar sequence of update()'s body — (β1·m)+((1-β1)·gr),
// (β2·v)+(((1-β2)·gr)·gr), p-(lr·m)/(sqrt(v)+ε) — so the packed and
// scalar paths round identically.
TEXT ·adamStep2(SB), NOSPLIT, $0-48
	MOVQ params+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), BX
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ consts+40(FP), R8
	MOVQ 0(R8), X9
	UNPCKLPD X9, X9    // inv
	MOVQ 8(R8), X10
	UNPCKLPD X10, X10  // β1
	MOVQ 16(R8), X11
	UNPCKLPD X11, X11  // 1-β1
	MOVQ 24(R8), X12
	UNPCKLPD X12, X12  // β2
	MOVQ 32(R8), X13
	UNPCKLPD X13, X13  // 1-β2
	MOVQ 40(R8), X14
	UNPCKLPD X14, X14  // lr
	MOVQ 48(R8), X15
	UNPCKLPD X15, X15  // ε
	XORQ AX, AX
adam2loop:
	LEAQ 2(AX), R10
	CMPQ R10, CX
	JGT  adam2done
	MOVUPS (SI)(AX*8), X0
	MULPD X9, X0           // gr = grad·inv
	MOVUPS (BX)(AX*8), X1
	MULPD X10, X1          // β1·m
	MOVAPS X0, X2
	MULPD X11, X2          // (1-β1)·gr
	ADDPD X2, X1           // m'
	MOVUPS X1, (BX)(AX*8)
	MOVUPS (R9)(AX*8), X3
	MULPD X12, X3          // β2·v
	MOVAPS X0, X4
	MULPD X13, X4          // (1-β2)·gr
	MULPD X0, X4           // ((1-β2)·gr)·gr
	ADDPD X4, X3           // v'
	MOVUPS X3, (R9)(AX*8)
	SQRTPD X3, X5
	ADDPD X15, X5          // sqrt(v')+ε
	MOVAPS X1, X6
	MULPD X14, X6          // lr·m'
	DIVPD X5, X6           // (lr·m')/(sqrt(v')+ε)
	MOVUPS (DI)(AX*8), X7
	SUBPD X6, X7
	MOVUPS X7, (DI)(AX*8)
	ADDQ $2, AX
	JMP  adam2loop
adam2done:
	RET
