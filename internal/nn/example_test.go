package nn_test

import (
	"fmt"

	"cottage/internal/nn"
)

// Example trains a tiny classifier on a linearly separable problem and
// classifies a held-out point. Training is deterministic given the seeds,
// so the example output is stable.
func Example() {
	// Class 0: x < 0; class 1: x > 0.
	var xs [][]float64
	var ys []int
	for i := -20; i < 20; i++ {
		x := float64(i) + 0.5
		xs = append(xs, []float64{x})
		if x > 0 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	net := nn.New(nn.Config{InputDim: 1, Hidden: []int{8}, NumClasses: 2, Seed: 1})
	if _, err := net.Train(xs, ys, nn.DefaultTrainConfig(200)); err != nil {
		panic(err)
	}
	fmt.Println("class of -3.3:", net.Classify([]float64{-3.3}))
	fmt.Println("class of +7.1:", net.Classify([]float64{7.1}))
	// Output:
	// class of -3.3: 0
	// class of +7.1: 1
}
