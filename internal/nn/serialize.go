package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// netWire is the gob wire form of a Network; all fields of Network are
// exported, but an explicit wire struct keeps the format stable if the
// in-memory representation grows non-serializable members later.
type netWire struct {
	Cfg    Config
	Layers []layer
	Norm   *Normalizer
}

// Encode serializes the network with encoding/gob.
func (n *Network) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(netWire{Cfg: n.Cfg, Layers: n.Layers, Norm: n.Norm})
}

// Decode deserializes a network written by Encode.
func Decode(r io.Reader) (*Network, error) {
	var w netWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	n := &Network{Cfg: w.Cfg, Layers: w.Layers, Norm: w.Norm}
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("nn: decoded network has no layers")
	}
	n.Rebuild()
	return n, nil
}
