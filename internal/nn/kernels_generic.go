//go:build !amd64

package nn

// Portable fallbacks for the SSE2 kernels in kernels_amd64.s: plain
// scalar loops over the transposed weight layout, accumulating bias-first
// in ascending input order so results match the vector path bit for bit.

// matvecWT computes z = W·x + bias from the transposed weight layout wt
// (wt[i*out+o]) with a dense input vector.
func matvecWT(z, wt, bias, x []float64, out, k int) {
	z = z[:out]
	copy(z, bias[:out])
	for i := 0; i < k; i++ {
		xv := x[i]
		row := wt[i*out : i*out+out]
		for o := range z {
			z[o] += row[o] * xv
		}
	}
}

// matvecWTNZ is matvecWT for an input given as a compacted ascending
// (index, value) list of its nonzero entries. The skipped terms are exact
// ±0, which cannot change a sum that started from the bias, so the result
// matches the dense kernel bit for bit.
func matvecWTNZ(z, wt, bias []float64, idx []int32, xv []float64, out, k int) {
	z = z[:out]
	copy(z, bias[:out])
	for j, i := range idx {
		v := xv[j]
		row := wt[int(i)*out : int(i)*out+out]
		for o := range z {
			z[o] += row[o] * v
		}
	}
}

// gradWT accumulates the mini-batch weight gradient gw[o*in+i] +=
// Σ_r delta[r*out+o] * act[r*in+i] over ascending batch row r, matching
// the per-sample reference backward chain element for element.
func gradWT(gw, act, delta []float64, batch, in, out int) {
	for r := 0; r < batch; r++ {
		actRow := act[r*in : (r+1)*in]
		for o := 0; o < out; o++ {
			d := delta[r*out+o]
			if d == 0 {
				continue
			}
			row := gw[o*in : (o+1)*in]
			for i, a := range actRow {
				row[i] += d * a
			}
		}
	}
}

// adamBulk is a no-op on platforms without the packed kernels; update()
// runs the scalar loop over the whole parameter vector.
func adamBulk(params, grad, m, v []float64, lr, inv float64, tc TrainConfig) int {
	return 0
}
