package nn

import "math"

// Normalizer standardizes feature vectors to zero mean and unit variance
// using statistics captured from a training set. The Table I/II features
// mix raw scores (~10) with posting-list lengths (~10^5); without
// standardization the network effectively ignores the small features.
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer computes per-dimension statistics from xs. Dimensions with
// (near-)zero variance get Std 1 so they pass through centered.
func FitNormalizer(xs [][]float64) *Normalizer {
	if len(xs) == 0 {
		panic("nn: FitNormalizer on empty data")
	}
	dim := len(xs[0])
	nm := &Normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, x := range xs {
		for i, v := range x {
			nm.Mean[i] += v
		}
	}
	inv := 1 / float64(len(xs))
	for i := range nm.Mean {
		nm.Mean[i] *= inv
	}
	for _, x := range xs {
		for i, v := range x {
			d := v - nm.Mean[i]
			nm.Std[i] += d * d
		}
	}
	for i := range nm.Std {
		nm.Std[i] = math.Sqrt(nm.Std[i] * inv)
		if nm.Std[i] < 1e-9 {
			nm.Std[i] = 1
		}
	}
	return nm
}

// Apply writes the standardized form of x into out. The slices must have
// the normalizer's dimension; out may alias x.
func (nm *Normalizer) Apply(x, out []float64) {
	for i, v := range x {
		out[i] = (v - nm.Mean[i]) / nm.Std[i]
	}
}
