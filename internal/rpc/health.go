package rpc

import (
	"sync"
	"sync/atomic"
	"time"

	"cottage/internal/overload"
)

// Prober is the aggregator's background health checker: on every tick
// it pings each unhealthy ISN — one whose client connection is broken
// or whose circuit breaker is not closed — and a successful ping closes
// the breaker on the spot. This is what turns the breaker from a
// one-way fuse into a recovery loop: a crashed ISN that comes back is
// revived within one probe interval, without waiting for live query
// traffic to spend a half-open probe on it.
//
// Healthy ISNs are never probed, so the prober adds no steady-state
// load; probes use the client's normal retry/timeout policy.
type Prober struct {
	agg      *Aggregator
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	probes   atomic.Uint64
	revived  atomic.Uint64
}

// StartProber launches a background health prober ticking at interval.
// It returns the prober for stats; stop it with StopProber (or
// Prober.Stop). Starting a second prober stops the first.
func (a *Aggregator) StartProber(interval time.Duration) *Prober {
	a.StopProber()
	p := &Prober{
		agg:      a,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	a.prober = p
	go p.run()
	return p
}

// StopProber halts the background prober, if any, and waits for its
// goroutine to exit.
func (a *Aggregator) StopProber() {
	if a.prober != nil {
		a.prober.Stop()
		a.prober = nil
	}
}

func (p *Prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sweep()
		}
	}
}

// sweep probes every currently-unhealthy ISN concurrently and waits for
// the results, so a sweep never overlaps the next tick's.
func (p *Prober) sweep() {
	var wg sync.WaitGroup
	for i, c := range p.agg.Clients {
		unhealthy := c.Broken()
		if b := p.agg.breaker(i); b != nil && b.State() != overload.Closed {
			unhealthy = true
		}
		if !unhealthy {
			continue
		}
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			p.probes.Add(1)
			if err := c.Ping(); err == nil {
				if b := p.agg.breaker(i); b != nil {
					b.OnSuccess()
				}
				p.revived.Add(1)
			}
		}(i, c)
	}
	wg.Wait()
}

// Stop halts the prober and waits for its goroutine to exit. Safe to
// call once.
func (p *Prober) Stop() {
	close(p.stop)
	<-p.done
}

// Stats reports how many probes the prober has sent and how many
// revived an ISN.
func (p *Prober) Stats() (probes, revived uint64) {
	return p.probes.Load(), p.revived.Load()
}
