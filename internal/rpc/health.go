package rpc

import (
	"sync"
	"time"

	"cottage/internal/obs"
	"cottage/internal/overload"
)

// Prober is the aggregator's background health checker: on every tick
// it pings each unhealthy ISN — one whose client connection is broken
// or whose circuit breaker is not closed — and a successful ping closes
// the breaker on the spot. This is what turns the breaker from a
// one-way fuse into a recovery loop: a crashed ISN that comes back is
// revived within one probe interval, without waiting for live query
// traffic to spend a half-open probe on it.
//
// Healthy ISNs are never probed, so the prober adds no steady-state
// load; probes use the client's normal retry/timeout policy. Each probe
// emits an outcome metric, and each revival records how long the ISN
// was down — from the breaker opening (or the prober first seeing it
// unhealthy) to the successful probe — instead of flipping state
// silently.
type Prober struct {
	agg      *Aggregator
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	probesOK   obs.Counter
	probesFail obs.Counter
	revived    obs.Counter
	revivalMS  *obs.Histogram // nil without an observer
	// unhealthySince[i] is when the prober first saw ISN i unhealthy
	// (zero = currently healthy). Only touched from sweep goroutines at
	// disjoint indices, with the sweep barrier between generations.
	unhealthySince []time.Time
}

// StartProber launches a background health prober ticking at interval.
// It returns the prober for stats; stop it with StopProber (or
// Prober.Stop). Starting a second prober stops the first.
func (a *Aggregator) StartProber(interval time.Duration) *Prober {
	a.StopProber()
	p := &Prober{
		agg:            a,
		interval:       interval,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		unhealthySince: make([]time.Time, len(a.Clients)),
	}
	if a.Obs != nil {
		reg := a.Obs.Reg
		reg.Register("cottage_prober_probes_total",
			"Health probes sent, by outcome.", &p.probesOK, obs.L("outcome", "ok"))
		reg.Register("cottage_prober_probes_total",
			"Health probes sent, by outcome.", &p.probesFail, obs.L("outcome", "fail"))
		reg.Register("cottage_prober_revivals_total",
			"ISNs revived by a successful probe.", &p.revived)
		p.revivalMS = reg.Histogram("cottage_prober_revival_ms",
			"Outage duration per revival: breaker-open (or first unhealthy sighting) to successful probe.",
			obs.LatencyBucketsMS())
	}
	a.prober = p
	go p.run()
	return p
}

// StopProber halts the background prober, if any, and waits for its
// goroutine to exit.
func (a *Aggregator) StopProber() {
	if a.prober != nil {
		a.prober.Stop()
		a.prober = nil
	}
}

func (p *Prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sweep()
		}
	}
}

// sweep probes every currently-unhealthy ISN concurrently and waits for
// the results, so a sweep never overlaps the next tick's. "Unhealthy"
// covers two independent axes: transport (broken connection, breaker
// not closed) and data (coordinator-side quarantine). A quarantined but
// reachable replica is probed too — its ping carries the remote
// data-plane status, and the first ping reporting the copy healthy
// again re-admits the replica into selection (closing the repair loop
// and stamping its MTTR).
func (p *Prober) sweep() {
	var wg sync.WaitGroup
	now := time.Now()
	for i, c := range p.agg.Clients {
		transportDown := c.Broken()
		if b := p.agg.breaker(i); b != nil && b.State() != overload.Closed {
			transportDown = true
		}
		quarantined := p.agg.clientQuarantined(i)
		if !transportDown && !quarantined {
			p.unhealthySince[i] = time.Time{}
			continue
		}
		if transportDown && p.unhealthySince[i].IsZero() {
			p.unhealthySince[i] = now
		}
		wg.Add(1)
		go func(i int, c *Client, transportDown bool) {
			defer wg.Done()
			remoteQuarantined, err := c.PingStatus()
			if err != nil {
				p.probesFail.Inc()
				return
			}
			p.probesOK.Inc()
			if !remoteQuarantined {
				// Repair completed (or the quarantine was never real on the
				// server); return the replica to rotation. No-op when the
				// ledger never quarantined this client.
				p.agg.readmitClient(i)
			}
			if !transportDown {
				// Pure data-plane probe: no breaker to close, no outage to
				// account — quarantine bookkeeping (MTTR) lives in the ledger.
				return
			}
			if b := p.agg.breaker(i); b != nil {
				b.OnSuccess()
			}
			p.revived.Inc()
			// Revival latency: the outage started when the breaker opened
			// (traffic actually stopped); if the breaker never opened — or
			// there is none — fall back to the prober's first unhealthy
			// sighting.
			down := p.unhealthySince[i]
			if b := p.agg.breaker(i); b != nil {
				if t := b.LastOpened(); !t.IsZero() && (down.IsZero() || t.Before(down)) {
					down = t
				}
			}
			if p.revivalMS != nil && !down.IsZero() {
				p.revivalMS.Observe(float64(time.Since(down).Microseconds()) / 1000)
			}
			p.unhealthySince[i] = time.Time{}
		}(i, c, transportDown)
	}
	wg.Wait()
}

// Stop halts the prober and waits for its goroutine to exit. Safe to
// call once.
func (p *Prober) Stop() {
	close(p.stop)
	<-p.done
}

// Stats reports how many probes the prober has sent and how many
// revived an ISN.
func (p *Prober) Stats() (probes, revived uint64) {
	return p.probesOK.Value() + p.probesFail.Value(), p.revived.Value()
}
