package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layer: every byte either side of the gob codec travels inside a
// length-prefixed, CRC32C-checksummed frame:
//
//	[4-byte little-endian payload length][4-byte CRC32C][payload]
//
// gob cannot tell a flipped bit from a valid stream — in the best case
// it errors with arbitrary garbage, in the worst it decodes a plausible
// wrong value. With frames underneath, corruption on the wire (the
// faults.Corrupt injector, a bad NIC, a misbehaving middlebox) is
// *detected* deterministically, attributed (ErrCorruptFrame, distinct
// from connection loss), and recovered typed: the server answers
// CodeCorrupt, the client retries breaker-neutrally on a fresh
// connection. Castagnoli matches the shard-level checksums (integrity
// plane, index wire v4) and is hardware-accelerated on amd64/arm64.

// frameTable is the CRC32C polynomial table shared by both directions.
var frameTable = crc32.MakeTable(crc32.Castagnoli)

// maxFramePayload bounds a single frame. gob messages here are small
// (requests, responses) except shard transfers, which can reach tens of
// MB — the cap rejects absurd lengths from corrupted headers before any
// allocation happens.
const maxFramePayload = 256 << 20

// ErrCorruptFrame marks a frame whose payload failed its CRC: the bytes
// arrived, framed and sized correctly, but were mangled in transit.
// Transient and breaker-neutral — the peer is alive and framing is
// intact; a retry on a fresh connection is expected to succeed.
var ErrCorruptFrame = errors.New("rpc: corrupt frame payload")

// ErrBadFrame marks a structurally invalid frame (impossible length) or
// a payload that passed its CRC yet failed to decode — the stream is
// garbage or desynced, not merely bit-flipped, and the connection
// cannot be trusted further.
var ErrBadFrame = errors.New("rpc: bad frame")

// IsCorruptFrame reports whether err stems from a payload CRC mismatch.
func IsCorruptFrame(err error) bool { return errors.Is(err, ErrCorruptFrame) }

// IsBadFrame reports whether err stems from structurally invalid
// framing or an undecodable (but checksum-clean) payload.
func IsBadFrame(err error) bool { return errors.Is(err, ErrBadFrame) }

// frameWriter wraps each Write into one checksummed frame. gob emits
// every message (type descriptors and values alike) as a single Write,
// so frames and gob messages line up one-to-one without the writer
// needing to know anything about gob.
type frameWriter struct {
	w   io.Writer
	buf []byte // header+payload assembled for a single conn.Write
}

func newFrameWriter(w io.Writer) *frameWriter { return &frameWriter{w: w} }

func (fw *frameWriter) Write(p []byte) (int, error) {
	if len(p) > maxFramePayload {
		return 0, fmt.Errorf("%w: payload %d exceeds cap", ErrBadFrame, len(p))
	}
	need := 8 + len(p)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	fw.buf = fw.buf[:need]
	binary.LittleEndian.PutUint32(fw.buf[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(fw.buf[4:8], crc32.Checksum(p, frameTable))
	copy(fw.buf[8:], p)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// frameReader unwraps checksummed frames back into a byte stream. A
// CRC mismatch surfaces as ErrCorruptFrame, an impossible length as
// ErrBadFrame; both are sticky — once the stream has lied there is no
// resynchronizing it, the connection must be dropped.
type frameReader struct {
	r    io.Reader
	buf  []byte // current frame's payload
	off  int    // read offset into buf
	err  error  // sticky error
	head [8]byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// Err returns the sticky frame-layer error, nil if the stream has been
// clean so far. Callers use it to tell a detected corruption apart from
// gob-level or transport errors after a decode fails.
func (fr *frameReader) Err() error { return fr.err }

func (fr *frameReader) Read(p []byte) (int, error) {
	if fr.err != nil {
		return 0, fr.err
	}
	for fr.off == len(fr.buf) {
		if err := fr.fill(); err != nil {
			fr.err = err
			return 0, err
		}
	}
	n := copy(p, fr.buf[fr.off:])
	fr.off += n
	return n, nil
}

// fill reads and verifies the next frame into fr.buf.
func (fr *frameReader) fill() error {
	if _, err := io.ReadFull(fr.r, fr.head[:]); err != nil {
		return err // clean EOF between frames is a normal close
	}
	length := binary.LittleEndian.Uint32(fr.head[0:4])
	want := binary.LittleEndian.Uint32(fr.head[4:8])
	if length > maxFramePayload {
		return fmt.Errorf("%w: impossible payload length %d", ErrBadFrame, length)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	fr.buf = fr.buf[:length]
	fr.off = 0
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // header promised a payload
		}
		return err
	}
	if got := crc32.Checksum(fr.buf, frameTable); got != want {
		return fmt.Errorf("%w: crc %08x, want %08x over %d bytes", ErrCorruptFrame, got, want, length)
	}
	return nil
}
