package rpc

import (
	"time"

	"cottage/internal/integrity"
)

// Coordinator-side quarantine: the aggregator keeps its own integrity
// ledger over the replicas it routes to. A replica that answers
// CodeQuarantined (ErrShardCorrupt) is marked here and drops out of
// selection entirely — replica.Rank excludes quarantined candidates
// outright, strictly below breaker-open, because an open breaker can
// still admit a probe while a replica known to serve corrupt bytes
// must never be chosen. Re-admission is driven by the prober: a ping
// whose status bit reports the remote copy healthy again (repair
// completed server-side) readmits the replica and records its MTTR.
//
// The ledger is deliberately separate from the server-side one: the
// coordinator's view is "what did this replica tell me", lag included,
// not ground truth about bytes on a remote disk.

// quarantineLedger lazily builds the aggregator's ledger so struct-
// literal construction (tests, tools) stays valid.
func (a *Aggregator) quarantineLedger() *integrity.Ledger {
	a.qOnce.Do(func() { a.quarantine = integrity.NewLedger(0) })
	return a.quarantine
}

// IntegrityLedger exposes the coordinator-side quarantine ledger for
// stats, metrics mirroring, and the /debug/integrity endpoint.
func (a *Aggregator) IntegrityLedger() *integrity.Ledger { return a.quarantineLedger() }

// shardOf maps a client index back to its logical shard (the client's
// replica-group row key; identity on unreplicated fleets).
func (a *Aggregator) shardOf(ci int) int {
	if a.Groups == nil {
		return ci
	}
	for s, g := range a.Groups {
		for _, m := range g {
			if m == ci {
				return s
			}
		}
	}
	return ci
}

// clientQuarantined reports whether the coordinator currently considers
// client ci's shard copy out of service.
func (a *Aggregator) clientQuarantined(ci int) bool {
	return a.quarantineLedger().IsQuarantined(a.shardOf(ci), ci)
}

// noteCorrupt records a replica's typed corruption answer and
// quarantines it in the coordinator's ledger. Idempotent; later calls
// while already quarantined only extend the mismatch log.
func (a *Aggregator) noteCorrupt(shard, ci int, err error) {
	now := time.Now().UnixMilli()
	l := a.quarantineLedger()
	l.RecordMismatch(shard, ci, now, "rpc", err.Error())
	l.Quarantine(shard, ci, now, err.Error())
}

// readmitClient returns a quarantined replica to rotation after the
// prober observed its repair complete. No-op when not quarantined.
func (a *Aggregator) readmitClient(ci int) {
	a.quarantineLedger().Readmit(a.shardOf(ci), ci, time.Now().UnixMilli())
}
