package rpc

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/predict"
	"cottage/internal/search"
)

// startFaultyServer is startServer with the transport wrapped by the
// fault injector: server-side response writes pass through the
// injector's per-ISN plan.
func startFaultyServer(tb testing.TB, sh *index.Shard, pred *predict.ISNPredictor, in *faults.Injector, isn int) (addr string, stop func()) {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := &Server{Shard: sh, Pred: pred, Strategy: search.StrategyMaxScore, Faults: in, FaultISN: isn}
	go srv.Serve(faults.WrapListener(l, in, isn))
	return l.Addr().String(), func() { l.Close() }
}

// TestRetryUnderFaults drives the client's retry/backoff machinery
// through injected transport faults, table-driven over fault plans and
// policies.
func TestRetryUnderFaults(t *testing.T) {
	sh := buildShard(t, 41)
	want := search.MaxScore(sh, []string{"ga", "gb"}, 5)
	fast := RetryPolicy{Max: 6, Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}

	cases := []struct {
		name    string
		plan    faults.Plan
		policy  RetryPolicy
		healMS  int // clear the plan after this long (0 = never)
		calls   int
		wantErr bool
		// retry-count predicate, described by retriesDesc
		retriesOK   func(uint64) bool
		retriesDesc string
	}{
		{
			name: "clean", policy: fast, calls: 20,
			retriesOK: func(r uint64) bool { return r == 0 }, retriesDesc: "0",
		},
		{
			name: "drop-all-no-retry", plan: faults.Plan{DropProb: 1},
			policy: RetryPolicy{Max: 0}, calls: 1, wantErr: true,
			retriesOK: func(r uint64) bool { return r == 0 }, retriesDesc: "0",
		},
		{
			name: "drop-all-retries-exhausted", plan: faults.Plan{DropProb: 1},
			policy: RetryPolicy{Max: 3, Backoff: time.Millisecond}, calls: 1, wantErr: true,
			retriesOK: func(r uint64) bool { return r == 3 }, retriesDesc: "exactly Max=3",
		},
		{
			name: "drop-all-heals", plan: faults.Plan{DropProb: 1},
			policy: fast, healMS: 5, calls: 1,
			retriesOK: func(r uint64) bool { return r >= 1 }, retriesDesc: ">=1",
		},
		{
			name: "corrupt-all-heals", plan: faults.Plan{CorruptProb: 1},
			policy: fast, healMS: 5, calls: 1,
			retriesOK: func(r uint64) bool { return r >= 1 }, retriesDesc: ">=1",
		},
		{
			name: "slow-within-timeout", plan: faults.Plan{SlowMS: 5},
			policy: fast, calls: 3,
			retriesOK: func(r uint64) bool { return r == 0 }, retriesDesc: "0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := faults.NewInjector(7)
			in.SetPlan(0, tc.plan)
			addr, stop := startFaultyServer(t, sh, nil, in, 0)
			defer stop()
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.SetTimeout(2 * time.Second)
			c.SetRetryPolicy(tc.policy)
			if tc.healMS > 0 {
				timer := time.AfterFunc(time.Duration(tc.healMS)*time.Millisecond,
					func() { in.SetPlan(0, faults.Plan{}) })
				defer timer.Stop()
			}

			var lastErr error
			var lastRes search.Result
			for i := 0; i < tc.calls; i++ {
				lastRes, lastErr = c.Search([]string{"ga", "gb"}, 5, 0)
				if lastErr != nil {
					break
				}
			}
			if tc.wantErr {
				if lastErr == nil {
					t.Fatal("expected failure, got success")
				}
				if !IsTransient(lastErr) {
					t.Fatalf("fault should surface as transient, got %v", lastErr)
				}
			} else {
				if lastErr != nil {
					t.Fatalf("unexpected error: %v", lastErr)
				}
				// Whatever the transport did, the payload must be intact.
				if len(lastRes.Hits) != len(want.Hits) {
					t.Fatalf("got %d hits, want %d", len(lastRes.Hits), len(want.Hits))
				}
				for i := range lastRes.Hits {
					if lastRes.Hits[i].Doc != want.Hits[i].Doc {
						t.Fatalf("hit %d corrupted end-to-end", i)
					}
				}
			}
			if r := c.Retries(); !tc.retriesOK(r) {
				t.Fatalf("retries = %d, want %s", r, tc.retriesDesc)
			}
		})
	}
}

// TestCrashedISNIsDegradedNotFatal: a crashed ISN defeats every retry
// (each reconnect is cut off), so the client errors out — but the
// aggregator turns that into a degraded result, and revival restores
// full service. This is the permanently-dead-node contract.
func TestCrashedISNIsDegradedNotFatal(t *testing.T) {
	shA, shB := buildShard(t, 42), buildShard(t, 43)
	in := faults.NewInjector(9)
	addrA, stopA := startFaultyServer(t, shA, nil, in, 0)
	defer stopA()
	addrB, stopB := startFaultyServer(t, shB, nil, in, 1)
	defer stopB()

	clients := make([]*Client, 2)
	for i, addr := range []string{addrA, addrB} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetTimeout(2 * time.Second)
		c.SetRetryPolicy(RetryPolicy{Max: 2, Backoff: time.Millisecond})
		clients[i] = c
	}
	in.Crash(1)

	// Direct call: retries cannot resurrect a dead process.
	if _, err := clients[1].Search([]string{"ga"}, 5, 0); err == nil {
		t.Fatal("search against crashed ISN succeeded")
	}
	if clients[1].Retries() == 0 {
		t.Fatal("client gave up without retrying")
	}

	// Aggregated call: the query survives, degraded.
	agg := NewAggregator(clients, 10)
	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatalf("one dead ISN failed the whole query: %v", err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", res.Failed)
	}
	if len(res.Hits) == 0 {
		t.Fatal("surviving ISN contributed nothing")
	}

	// Revival restores both the node and the previously-broken client.
	in.Revive(1)
	full, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Failed) != 0 || len(full.Selected) != 2 {
		t.Fatalf("post-revival query still degraded: %+v", full.Failed)
	}
}

// TestHedgeWinsOverStuckPrimary: the primary connection is wedged (a
// listener that accepts and goes silent), so the hedge — a fresh dial to
// the real server — must deliver the result.
func TestHedgeWinsOverStuckPrimary(t *testing.T) {
	sh := buildShard(t, 44)
	addr, stop := startServer(t, sh, nil)
	defer stop()

	hang, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hang.Close()
	var hmu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			c, err := hang.Accept()
			if err != nil {
				return
			}
			hmu.Lock()
			held = append(held, c)
			hmu.Unlock()
		}
	}()
	defer func() {
		hmu.Lock()
		for _, c := range held {
			c.Close()
		}
		hmu.Unlock()
	}()

	// Dial the healthy server (so Addr() is right), then wedge the live
	// connection by pointing it at the silent listener — the shape of a
	// half-dead middlebox or a stalled accept queue.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(2 * time.Second)
	stuck, err := net.Dial("tcp", hang.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.conn.Close()
	c.conn = stuck
	c.enc = gob.NewEncoder(stuck)
	c.dec = gob.NewDecoder(stuck)

	agg := NewAggregator([]*Client{c}, 5)
	agg.HedgeAfter = 20 * time.Millisecond
	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatalf("hedge did not rescue the stuck primary: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("hedged query returned nothing")
	}
	st := agg.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want 1 hedge, 1 win", st)
	}
}

// TestHedgeCancelledWhenPrimaryWins: a uniformly slow (but live) ISN
// means the primary, with its head start, answers first; the hedge must
// be issued, lose, and be cancelled.
func TestHedgeCancelledWhenPrimaryWins(t *testing.T) {
	sh := buildShard(t, 45)
	in := faults.NewInjector(11)
	in.SetPlan(0, faults.Plan{SlowMS: 40})
	addr, stop := startFaultyServer(t, sh, nil, in, 0)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(5 * time.Second)

	agg := NewAggregator([]*Client{c}, 5)
	agg.HedgeAfter = 30 * time.Millisecond
	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits from slow ISN")
	}
	st := agg.Stats()
	if st.Hedges != 1 {
		t.Fatalf("hedge not issued: %+v", st)
	}
	if st.HedgeWins != 0 || st.HedgesCancelled != 1 {
		t.Fatalf("primary had a 30ms head start and equal slowdown, want cancelled hedge: %+v", st)
	}
}

// TestCottageFaultTolerance exercises the full protocol against injected
// faults on a trained deployment: prediction timeouts flow into the
// degraded-mode budget, and killing an ISN mid-flight degrades rather
// than fails the query.
func TestCottageFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains predictors")
	}
	shards, fleet, qs := distributedFixture(t)
	in := faults.NewInjector(13)
	clients := make([]*Client, len(shards))
	stops := make([]func(), len(shards))
	for i, sh := range shards {
		addr, stop := startFaultyServer(t, sh, fleet.Predictors[i], in, i)
		stops[i] = stop
		defer stop()
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetTimeout(2 * time.Second)
		c.SetRetryPolicy(RetryPolicy{Max: 2, Backoff: time.Millisecond})
		clients[i] = c
	}
	agg := NewAggregator(clients, 10)

	terms := func() []string {
		for _, q := range qs {
			r, err := agg.SearchExhaustive(q.Terms)
			if err == nil && len(r.Hits) > 0 {
				return q.Terms
			}
		}
		t.Fatal("no query matches the fixture corpus")
		return nil
	}()

	// Healthy baseline.
	base, err := agg.SearchCottage(terms)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Failed) != 0 {
		t.Fatalf("healthy run reported failures: %v", base.Failed)
	}

	// Prediction timeouts on ISN 1: the budget is determined degraded
	// (conservative policy), the query survives.
	agg.Degraded = 1 // core.DegradedConservative
	in.SetPlan(1, faults.Plan{PredictDropProb: 1})
	deg, err := agg.SearchCottage(terms)
	if err != nil {
		t.Fatalf("prediction timeout failed the query: %v", err)
	}
	found := false
	for _, isn := range deg.Failed {
		if isn == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ISN 1's prediction timeout not recorded: Failed=%v", deg.Failed)
	}
	if in.Counts()[faults.PredictTimeout] == 0 {
		t.Fatal("injector never fired a prediction timeout")
	}
	in.SetPlan(1, faults.Plan{})

	// Kill ISN 0 mid-flight (process gone, port closed): degraded result,
	// not an error.
	stops[0]()
	clients[0].Close()
	part, err := agg.SearchCottage(terms)
	if err != nil {
		t.Fatalf("one dead ISN failed SearchCottage: %v", err)
	}
	foundDead := false
	for _, isn := range part.Failed {
		if isn == 0 {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("dead ISN 0 not in Failed: %v", part.Failed)
	}
	if len(part.Selected)+len(part.Cut) == 0 {
		t.Fatal("no surviving ISN was considered")
	}
}

// TestOfflineISNDegradesThenRecovers covers ISNs that are already dead
// when the aggregator starts: rpc.Offline defers the dial to the
// reconnect/retry path, so the fleet degrades around the hole and heals
// once a server appears at the address.
func TestOfflineISNDegradesThenRecovers(t *testing.T) {
	sh0 := buildShard(t, 1)
	sh1 := buildShard(t, 2)
	addr0, stop0 := startServer(t, sh0, nil)
	defer stop0()

	// Reserve an address with nothing listening behind it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := l.Addr().String()
	l.Close()

	c0, err := Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1 := Offline(addr1)
	defer c1.Close()
	for _, c := range []*Client{c0, c1} {
		c.SetTimeout(2 * time.Second)
		c.SetRetryPolicy(RetryPolicy{Max: 2, Backoff: time.Millisecond})
	}

	agg := NewAggregator([]*Client{c0, c1}, 10)
	res, err := agg.SearchExhaustive([]string{"ga", "gb"})
	if err != nil {
		t.Fatalf("offline ISN must degrade the query, not fail it: %v", err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", res.Failed)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits from the healthy ISN")
	}
	if c1.Retries() == 0 {
		t.Fatal("offline client never attempted a redial")
	}

	// A server comes up on the reserved address; the next query heals
	// with no client surgery.
	l2, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr1, err)
	}
	defer l2.Close()
	srv := &Server{Shard: sh1, Strategy: search.StrategyMaxScore}
	go srv.Serve(l2)
	res, err = agg.SearchExhaustive([]string{"ga", "gb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("after restart Failed = %v, want none", res.Failed)
	}
}
