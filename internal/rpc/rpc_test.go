package rpc

import (
	"net"
	"testing"
	"time"

	"cottage/internal/cluster"
	"cottage/internal/index"
	"cottage/internal/predict"
	"cottage/internal/search"
	"cottage/internal/textgen"
	"cottage/internal/trace"
	"cottage/internal/xrand"
)

// startServer launches a Server for one shard on a random port.
func startServer(tb testing.TB, sh *index.Shard, pred *predict.ISNPredictor) (addr string, stop func()) {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := &Server{Shard: sh, Pred: pred, Strategy: search.StrategyMaxScore}
	go srv.Serve(l)
	return l.Addr().String(), func() { l.Close() }
}

func buildShard(tb testing.TB, seed uint64) *index.Shard {
	tb.Helper()
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	rng := xrand.New(seed)
	vocab := []string{"ga", "gb", "gc", "gd", "ge", "gf", "gg", "gh"}
	zipf := xrand.NewZipf(rng, 1.0, len(vocab))
	for d := 0; d < 500; d++ {
		terms := map[string]int{}
		n := 15 + rng.Intn(40)
		for i := 0; i < n; i++ {
			terms[vocab[zipf.Draw()]]++
		}
		b.Add(int64(d), terms, n)
	}
	return b.Finalize()
}

func TestPingAndSearch(t *testing.T) {
	sh := buildShard(t, 1)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	r, err := c.Search([]string{"ga", "gb"}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := search.MaxScore(sh, []string{"ga", "gb"}, 10)
	if len(r.Hits) != len(want.Hits) {
		t.Fatalf("remote %d hits, local %d", len(r.Hits), len(want.Hits))
	}
	for i := range r.Hits {
		if r.Hits[i].Doc != want.Hits[i].Doc || r.Hits[i].Score != want.Hits[i].Score {
			t.Fatalf("hit %d differs over the wire", i)
		}
	}
	if r.Stats.DocsScored != want.Stats.DocsScored {
		t.Error("stats lost over the wire")
	}
}

func TestPredictWithoutModel(t *testing.T) {
	sh := buildShard(t, 2)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Predict([]string{"ga"}); err == nil {
		t.Fatal("predict should fail with no model loaded")
	}
	// The connection must survive the application-level error.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestConcurrentClients(t *testing.T) {
	sh := buildShard(t, 3)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 25; i++ {
				if _, err := c.Search([]string{"ga"}, 5, 0); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// distributedFixture builds a small trained multi-ISN deployment.
func distributedFixture(tb testing.TB) ([]*index.Shard, *predict.Fleet, []trace.Query) {
	tb.Helper()
	ccfg := textgen.DefaultConfig()
	ccfg.NumDocs = 2400
	ccfg.VocabSize = 3000
	ccfg.NumTopics = 12
	ccfg.TopicTermCount = 100
	corpus := textgen.Generate(ccfg)
	alloc := corpus.AllocateTopical(4, 2, 0.15, 3)
	shards := make([]*index.Shard, len(alloc))
	for si, ids := range alloc {
		b := index.NewBuilder(si, index.DefaultBM25(), 10)
		for _, id := range ids {
			d := &corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
		}
		shards[si] = b.Finalize()
	}
	qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 5, NumQueries: 260, QPS: 50})
	ds := predict.Harvest(shards, qs[:200], 10, search.StrategyMaxScore, cluster.DefaultCostModel())
	cfg := predict.DefaultConfig(10)
	cfg.QualitySteps = 150
	cfg.LatencySteps = 80
	fleet, err := predict.Train(ds, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return shards, fleet, qs[200:]
}

func TestAggregatorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains predictors")
	}
	shards, fleet, qs := distributedFixture(t)
	clients := make([]*Client, len(shards))
	for i, sh := range shards {
		addr, stop := startServer(t, sh, fleet.Predictors[i])
		defer stop()
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	agg := NewAggregator(clients, 10)

	overlapSum, n := 0.0, 0
	for _, q := range qs[:40] {
		exh, err := agg.SearchExhaustive(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		cot, err := agg.SearchCottage(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if len(exh.Hits) == 0 {
			continue
		}
		want := search.DocSet(exh.Hits)
		overlapSum += float64(search.Overlap(cot.Hits, want)) / float64(len(exh.Hits))
		n++
		if len(cot.Selected)+len(cot.Cut) > len(shards) {
			t.Fatalf("selected+cut exceeds cluster: %v %v", cot.Selected, cot.Cut)
		}
		if cot.Elapsed <= 0 {
			t.Fatal("no elapsed time measured")
		}
	}
	if n == 0 {
		t.Fatal("no query produced results")
	}
	if avg := overlapSum / float64(n); avg < 0.6 {
		t.Errorf("wire-protocol Cottage quality %.3f too low", avg)
	}
}

func TestClientSearchDeadlinePasses(t *testing.T) {
	sh := buildShard(t, 4)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A generous deadline must not interfere.
	if _, err := c.Search([]string{"ga"}, 5, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPhraseOverWire(t *testing.T) {
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	b.EnablePositions()
	b.AddTokens(0, []string{"red", "fast", "car"})
	b.AddTokens(1, []string{"fast", "red", "car"})
	sh := b.Finalize()
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Phrase([]string{"red", "fast"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 1 || r.Hits[0].Doc != 0 {
		t.Fatalf("phrase over wire wrong: %+v", r.Hits)
	}
	// Non-positional shard: server reports the error, connection survives.
	plain := buildShard(t, 9)
	addr2, stop2 := startServer(t, plain, nil)
	defer stop2()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Phrase([]string{"ga", "gb"}, 5); err == nil {
		t.Fatal("expected positional error over the wire")
	}
	if err := c2.Ping(); err != nil {
		t.Fatal("connection broken after phrase error")
	}
}

// TestDegradedResultsOnISNFailure injects a mid-run ISN failure: the
// aggregator must return degraded (partial) results from the surviving
// nodes instead of failing the query.
func TestDegradedResultsOnISNFailure(t *testing.T) {
	shA := buildShard(t, 21)
	shB := buildShard(t, 22)
	addrA, stopA := startServer(t, shA, nil)
	defer stopA()
	addrB, stopB := startServer(t, shB, nil)
	ca, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	ca.SetTimeout(2 * time.Second)
	cb.SetTimeout(2 * time.Second)
	agg := NewAggregator([]*Client{ca, cb}, 10)

	// Healthy fan-out first.
	full, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Failed) != 0 || len(full.Selected) != 2 {
		t.Fatalf("healthy run reported failures: %+v", full)
	}

	// Kill ISN B and query again: degraded, not failed.
	stopB()
	cb.Close()
	part, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	if len(part.Failed) != 1 || part.Failed[0] != 1 {
		t.Fatalf("expected ISN 1 failure, got %+v", part.Failed)
	}
	if len(part.Hits) == 0 {
		t.Fatal("surviving ISN produced no results")
	}

	// Kill ISN A too: now the query fails.
	stopA()
	ca.Close()
	if _, err := agg.SearchExhaustive([]string{"ga"}); err == nil {
		t.Fatal("all-ISN failure should error")
	}
}
