// Package rpc implements a small gob-over-TCP transport so the
// partition-aggregate protocol can run across real processes, mirroring
// the Solr deployment of Section IV: each ISN process serves search and
// prediction requests for one shard, and an aggregator fans queries out,
// runs Algorithm 1 on the returned predictions, broadcasts the budget
// (as a per-request deadline) and merges the responses that make it back
// in time.
//
// The simulated cluster (internal/cluster) remains the measurement
// substrate for the paper's experiments — wall-clock latencies on a
// shared laptop are not reproducible — but this package demonstrates the
// same seven-step protocol end to end on real sockets
// (examples/distributed, cmd/cottage-server, cmd/cottage-client).
package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cottage/internal/index"
	"cottage/internal/predict"
	"cottage/internal/search"
)

// Kind discriminates request types.
type Kind int

const (
	// KindSearch asks the ISN to evaluate the query and return its local
	// top-K (protocol steps 5–6).
	KindSearch Kind = iota
	// KindPredict asks only for the quality/latency predictions
	// (protocol steps 2–3).
	KindPredict
	// KindPing checks liveness.
	KindPing
	// KindPhrase asks the ISN for an exact-phrase evaluation (requires a
	// positional shard).
	KindPhrase
)

// Request is the wire request.
type Request struct {
	Kind  Kind
	ID    uint64
	Terms []string
	K     int
	// DeadlineUS is the search budget in microseconds (0 = none). The
	// server abandons result delivery past the deadline, mimicking
	// budget-bounded ISN processing.
	DeadlineUS int64
}

// Response is the wire response.
type Response struct {
	ID    uint64
	Hits  []search.Hit
	Stats search.ExecStats
	Pred  predict.Prediction
	Err   string
}

// Server serves one shard (one ISN) over a listener.
type Server struct {
	Shard    *index.Shard
	Pred     *predict.ISNPredictor // optional; KindPredict fails without it
	Strategy search.Strategy
	mu       sync.Mutex // serializes predictor scratch use
}

// Serve accepts connections until the listener is closed. Each connection
// gets its own goroutine and a gob codec.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupted; drop it
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *Request) *Response {
	resp := &Response{ID: req.ID}
	switch req.Kind {
	case KindPing:
	case KindSearch:
		start := time.Now()
		r := search.Eval(s.Strategy, s.Shard, req.Terms, req.K)
		if req.DeadlineUS > 0 && time.Since(start).Microseconds() > req.DeadlineUS {
			resp.Err = "deadline exceeded"
			return resp
		}
		resp.Hits = r.Hits
		resp.Stats = r.Stats
	case KindPredict:
		if s.Pred == nil {
			resp.Err = "no predictor loaded"
			return resp
		}
		s.mu.Lock()
		resp.Pred = s.Pred.Predict(s.Shard, req.Terms)
		s.mu.Unlock()
	case KindPhrase:
		r, err := search.Phrase(s.Shard, req.Terms, req.K)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Hits = r.Hits
		resp.Stats = r.Stats
	default:
		resp.Err = fmt.Sprintf("unknown request kind %d", req.Kind)
	}
	return resp
}

// Client is a synchronous connection to one ISN server. It is safe for
// concurrent use; calls are serialized on the connection.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	next    uint64
	timeout time.Duration
}

// Dial connects to an ISN server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Timeout bounds each round trip; zero means no bound. Set it once,
// before concurrent use.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// call performs one synchronous round trip.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("rpc: deadline: %w", err)
		}
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("rpc: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("rpc: server closed connection")
		}
		return nil, fmt.Errorf("rpc: receive: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("rpc: response ID %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("rpc: server error: %s", resp.Err)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Kind: KindPing})
	return err
}

// Search evaluates a query on the remote shard.
func (c *Client) Search(terms []string, k int, deadline time.Duration) (search.Result, error) {
	resp, err := c.call(&Request{
		Kind: KindSearch, Terms: terms, K: k, DeadlineUS: deadline.Microseconds()})
	if err != nil {
		return search.Result{}, err
	}
	return search.Result{Hits: resp.Hits, Stats: resp.Stats}, nil
}

// Phrase evaluates an exact-phrase query on the remote (positional)
// shard.
func (c *Client) Phrase(terms []string, k int) (search.Result, error) {
	resp, err := c.call(&Request{Kind: KindPhrase, Terms: terms, K: k})
	if err != nil {
		return search.Result{}, err
	}
	return search.Result{Hits: resp.Hits, Stats: resp.Stats}, nil
}

// Predict fetches the remote ISN's quality/latency predictions.
func (c *Client) Predict(terms []string) (predict.Prediction, error) {
	resp, err := c.call(&Request{Kind: KindPredict, Terms: terms})
	if err != nil {
		return predict.Prediction{}, err
	}
	return resp.Pred, nil
}
