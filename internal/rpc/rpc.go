// Package rpc implements a small gob-over-TCP transport so the
// partition-aggregate protocol can run across real processes, mirroring
// the Solr deployment of Section IV: each ISN process serves search and
// prediction requests for one shard, and an aggregator fans queries out,
// runs Algorithm 1 on the returned predictions, broadcasts the budget
// (as a per-request deadline) and merges the responses that make it back
// in time.
//
// The simulated cluster (internal/cluster) remains the measurement
// substrate for the paper's experiments — wall-clock latencies on a
// shared laptop are not reproducible — but this package demonstrates the
// same seven-step protocol end to end on real sockets
// (examples/distributed, cmd/cottage-server, cmd/cottage-client).
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/integrity"
	"cottage/internal/obs"
	"cottage/internal/overload"
	"cottage/internal/predict"
	"cottage/internal/search"
)

// Kind discriminates request types.
type Kind int

const (
	// KindSearch asks the ISN to evaluate the query and return its local
	// top-K (protocol steps 5–6).
	KindSearch Kind = iota
	// KindPredict asks only for the quality/latency predictions
	// (protocol steps 2–3).
	KindPredict
	// KindPing checks liveness.
	KindPing
	// KindPhrase asks the ISN for an exact-phrase evaluation (requires a
	// positional shard).
	KindPhrase
	// KindFetchShard asks the ISN for its full serialized shard — the
	// repair transfer verb. The response carries the checksummed wire v4
	// bytes; the fetching side re-reads and re-verifies them end to end
	// (index.ReadShard validates eagerly), so a transfer corrupted in
	// flight can never be re-admitted.
	KindFetchShard
)

// String implements fmt.Stringer (span names, metrics labels).
func (k Kind) String() string {
	switch k {
	case KindSearch:
		return "search"
	case KindPredict:
		return "predict"
	case KindPing:
		return "ping"
	case KindPhrase:
		return "phrase"
	case KindFetchShard:
		return "fetchshard"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Request is the wire request.
type Request struct {
	Kind  Kind
	ID    uint64
	Terms []string
	K     int
	// DeadlineUS is the search budget in microseconds (0 = none). The
	// server abandons result delivery past the deadline, mimicking
	// budget-bounded ISN processing.
	DeadlineUS int64
	// Anytime asks the server to evaluate KindSearch with the anytime
	// traversal: instead of abandoning a search that overruns DeadlineUS,
	// the ISN stops at the deadline and returns its exact best-so-far
	// top-K with the Terminated/ScoreBound certificate on the response.
	Anytime bool
	// Trace and Span propagate the aggregator's trace across the wire:
	// Trace is the query's trace ID, Span the client-side span that
	// parents whatever the server records. Zero means untraced — the
	// server skips span recording entirely, so tracing costs nothing on
	// the wire or the server unless the caller asks for it.
	Trace uint64
	Span  uint64
}

// Code classifies a Response beyond its payload, so clients can tell a
// shed request (transient — back off and retry) from a rejected one
// (permanent — fix the request) without parsing error strings.
type Code int

const (
	// CodeOK is the zero value: the request was served.
	CodeOK Code = iota
	// CodeOverloaded: admission control shed the request. The ISN is
	// healthy, just saturated; the client retries with backoff and must
	// not count this against the circuit breaker.
	CodeOverloaded
	// CodeBadRequest: the request decoded but failed validation.
	// Retrying the same bytes can never succeed.
	CodeBadRequest
	// CodeCorrupt: the request's frame arrived with a failed payload CRC
	// — the bytes were mangled in transit, not by the sender. Transient
	// and breaker-neutral: the client resends on a fresh connection.
	// (The server closes the stream after answering; a desynced gob
	// session cannot be trusted further.)
	CodeCorrupt
	// CodeQuarantined: this replica's shard copy failed an integrity
	// check and is out of service until repaired. Not transient for this
	// replica — the client fails the leg over to a sibling — and
	// breaker-neutral: the node is healthy, its data is not.
	CodeQuarantined
)

// Response is the wire response.
type Response struct {
	ID    uint64
	Hits  []search.Hit
	Stats search.ExecStats
	Pred  predict.Prediction
	Err   string
	Code  Code
	// Terminated and ScoreBound echo an anytime search's certificate:
	// the hits are exact but possibly incomplete, and no unreturned
	// document on this shard scores above ScoreBound.
	Terminated bool
	ScoreBound float64
	// QueueDepth and AvgServiceUS ride on KindPredict responses: the
	// ISN's current admission-queue occupancy and its EWMA service time.
	// The aggregator turns them into the Eq. 2 equivalent-latency
	// correction (core.QueueBacklogMS) before running Algorithm 1.
	QueueDepth   int
	AvgServiceUS int64
	// Spans carries the server-side spans recorded for this request
	// (admission wait, service time) back to the aggregator, which grafts
	// them into the query's trace so ISN-side timing lands in the same
	// tree as the fan-out that caused it.
	Spans []obs.Span
	// ShardBytes carries the serialized (wire v4, checksummed) shard on
	// KindFetchShard responses.
	ShardBytes []byte
	// Quarantined rides on KindPing responses: true while this replica's
	// shard copy is out of service (integrity quarantine or no shard
	// loaded). Ping itself still succeeds — the transport is healthy —
	// so the aggregator's prober can tell "node dead" from "data bad"
	// and re-admit the replica the moment repair completes.
	Quarantined bool
}

// wrapDecodeErr types a decode failure so callers can classify without
// string matching: transport conditions (closed/timed-out connections,
// clean or truncated EOFs) pass through untouched, frame-layer errors
// keep their ErrCorruptFrame/ErrBadFrame identity, and everything else
// — gob garbage that framed and checksummed cleanly, so it was *sent*
// malformed rather than mangled in transit — becomes ErrBadFrame.
// Retry/breaker logic can then stop treating a garbled payload as node
// death: the peer is reachable, its bytes are not trustworthy.
func wrapDecodeErr(what string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return err
	}
	if IsCorruptFrame(err) || IsBadFrame(err) {
		return err
	}
	return fmt.Errorf("%w: %s: %v", ErrBadFrame, what, err)
}

// DecodeRequest reads one Request from a gob stream. A corrupted or
// truncated frame yields an error, never a panic: gob's decoder can
// panic on adversarial type descriptors, and a server must not be
// killable by one bad frame, so the recover here is a load-bearing part
// of the wire contract (fuzzed in fuzz_test.go). Non-transport failures
// come back typed (ErrCorruptFrame for checksum mismatches under the
// frame layer, ErrBadFrame for undecodable payloads).
func DecodeRequest(dec *gob.Decoder) (req Request, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrapDecodeErr("decode request", fmt.Errorf("%v", r))
		}
	}()
	err = wrapDecodeErr("decode request", dec.Decode(&req))
	return req, err
}

// DecodeResponse reads one Response from a gob stream with the same
// panic-to-error and typed-error guarantees as DecodeRequest (the
// client side of the contract: a corrupting ISN must not take the
// aggregator down).
func DecodeResponse(dec *gob.Decoder) (resp Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = wrapDecodeErr("decode response", fmt.Errorf("%v", r))
		}
	}()
	err = wrapDecodeErr("decode response", dec.Decode(&resp))
	return resp, err
}

// Server serves one shard (one ISN) over a listener.
type Server struct {
	Shard    *index.Shard
	Pred     *predict.ISNPredictor // optional; KindPredict fails without it
	Strategy search.Strategy
	// Integrity, when set, supervises the shard: search/phrase requests
	// pass the lazy checksum gate (a mismatched block is never scored),
	// a detected corruption quarantines this replica (search answers
	// CodeQuarantined until repair re-admits it), and repair swaps in a
	// freshly verified shard. The manager's shard takes precedence over
	// the bare Shard field. Set before Serve.
	Integrity *integrity.Manager
	// Faults, when set, injects prediction-level failures (timeouts,
	// slowdowns) keyed by FaultISN — the application-layer complement of
	// faults.WrapListener, which mangles the transport underneath. Both
	// hang off the same injector so one seed replays a whole scenario.
	Faults   *faults.Injector
	FaultISN int
	// Limit, when set, is the admission gate for search work: KindSearch
	// and KindPhrase must acquire a slot (or queue) before any index
	// evaluation; shed requests get a CodeOverloaded response. KindPing
	// and KindPredict bypass it — the control plane must stay responsive
	// under overload, and queue-depth feedback rides on KindPredict.
	Limit *overload.Limiter
	// Obs, when set, receives the server's metrics (served/shed counters,
	// service-time histogram, queue depth) and enables server-side span
	// recording for traced requests. Set before Serve.
	Obs *obs.Observer
	mu  sync.Mutex // serializes predictor scratch use

	connMu     sync.Mutex
	conns      map[net.Conn]struct{}
	listeners  map[net.Listener]struct{}
	handlers   sync.WaitGroup
	inShutdown atomic.Bool

	served       obs.Counter  // search/phrase requests fully served
	shed         obs.Counter  // requests rejected with CodeOverloaded
	avgServiceUS atomic.Int64 // EWMA of search service time (µs)

	obsOnce     sync.Once
	serviceHist *obs.Histogram // nil when Obs is unset
}

// Served reports how many search/phrase requests this server completed.
func (s *Server) Served() uint64 { return s.served.Value() }

// Shed reports how many requests admission control rejected.
func (s *Server) Shed() uint64 { return s.shed.Value() }

// initObs registers the server's metrics with its observer's registry
// (idempotent; a no-op without an observer). The served/shed counters
// predate the registry and are adopted in place, so the accessor methods
// above and the registry read the same atomics.
func (s *Server) initObs() {
	s.obsOnce.Do(func() {
		if s.Obs == nil {
			return
		}
		reg := s.Obs.Reg
		reg.Register("cottage_server_served_total",
			"Search/phrase requests fully served.", &s.served)
		reg.Register("cottage_server_shed_total",
			"Requests rejected by admission control (CodeOverloaded).", &s.shed)
		s.serviceHist = reg.Histogram("cottage_server_service_ms",
			"Search/phrase service time (admission grant to response ready).",
			obs.LatencyBucketsMS())
		reg.GaugeFunc("cottage_server_queue_depth",
			"Admission-queue occupancy.", func() float64 { return float64(s.pendingDepth()) })
		reg.GaugeFunc("cottage_server_avg_service_us",
			"EWMA search service time reported to KindPredict (Eq. 2 feedback).",
			func() float64 { return float64(s.avgServiceUS.Load()) })
		if s.Limit != nil {
			s.Limit.Register(reg)
		}
	})
}

func (s *Server) trackListener(l net.Listener, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		if s.listeners == nil {
			s.listeners = make(map[net.Listener]struct{})
		}
		s.listeners[l] = struct{}{}
	} else {
		delete(s.listeners, l)
	}
}

func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// Accept-loop backoff bounds for temporary errors (e.g. EMFILE under
// connection floods): start small, double, cap — same shape as
// net/http.Server.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 250 * time.Millisecond
)

// Serve accepts connections until the listener is closed. Each connection
// gets its own goroutine and a gob codec. Temporary Accept errors are
// retried with capped exponential backoff instead of killing the server;
// after Shutdown (or closing the listener) Serve returns nil rather than
// surfacing the listener teardown as an error.
func (s *Server) Serve(l net.Listener) error {
	s.initObs()
	s.trackListener(l, true)
	defer s.trackListener(l, false)
	backoff := acceptBackoffMin
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.inShutdown.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				time.Sleep(backoff)
				if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				continue
			}
			return fmt.Errorf("rpc: accept: %w", err)
		}
		backoff = acceptBackoffMin
		if s.inShutdown.Load() {
			conn.Close()
			continue
		}
		s.handlers.Add(1)
		s.trackConn(conn, true)
		go s.handle(conn)
	}
}

// Shutdown gracefully stops the server: stop accepting, shed the
// admission queue, let in-flight requests finish, then close. Handlers
// idle in a blocking read are unblocked by expiring their read deadline
// — writes are unaffected, so responses already being served still
// drain. If ctx expires first, remaining connections are force-closed
// and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.connMu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.connMu.Unlock()
	if s.Limit != nil {
		s.Limit.Close()
	}
	now := time.Now()
	for _, c := range open {
		c.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.trackConn(conn, false)
		s.handlers.Done()
	}()
	fr := newFrameReader(conn)
	dec := gob.NewDecoder(fr)
	enc := gob.NewEncoder(newFrameWriter(conn))
	for {
		req, err := DecodeRequest(dec)
		if err != nil {
			if IsCorruptFrame(err) || IsCorruptFrame(fr.Err()) {
				// The request's bytes were mangled in transit — detected,
				// not guessed. Answer typed so the client retries breaker-
				// neutrally, then drop the connection: the gob session
				// behind a lying frame cannot be resynchronized.
				_ = enc.Encode(&Response{Code: CodeCorrupt, Err: "corrupt request frame"})
			}
			return // closed, garbled, or draining; drop it
		}
		resp := s.serve(&req)
		if resp == nil {
			return // injected prediction timeout: go silent like a hung process
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if s.inShutdown.Load() {
			return
		}
	}
}

// shard returns the serving shard: the integrity manager's (nil while
// quarantined) when supervision is on, the static field otherwise.
func (s *Server) shard() *index.Shard {
	if s.Integrity != nil {
		return s.Integrity.Shard()
	}
	return s.Shard
}

// serve runs one request through validation and admission control, then
// dispatches it.
func (s *Server) serve(req *Request) *Response {
	if err := ValidateRequest(req); err != nil {
		return &Response{ID: req.ID, Code: CodeBadRequest, Err: err.Error()}
	}
	heavy := req.Kind == KindSearch || req.Kind == KindPhrase
	arrived := time.Now()
	var queueWait time.Duration
	if heavy && s.Limit != nil {
		// The request's own budget bounds its queue wait: a query that
		// queued past its deadline is shed, not served late (Eq. 2 —
		// queue wait is latency).
		if err := s.Limit.Acquire(time.Duration(req.DeadlineUS) * time.Microsecond); err != nil {
			s.shed.Inc()
			if req.Anytime && req.Kind == KindSearch && req.DeadlineUS > 0 {
				if rem := time.Duration(req.DeadlineUS)*time.Microsecond - time.Since(arrived); rem > 0 {
					if sh := s.shard(); sh != nil {
						if bad := s.gate(req); bad != nil {
							return bad
						}
						// Shed with budget remaining: degrade to a truncated
						// anytime answer instead of an outright rejection.
						// The traversal stops at the remaining budget, so the
						// work stays bounded — early termination is itself
						// the load shedding the limiter wants.
						return s.anytimeSearch(sh, req, time.Now().Add(rem))
					}
					return quarantinedResp(req.ID)
				}
			}
			return &Response{ID: req.ID, Code: CodeOverloaded, Err: err.Error()}
		}
		queueWait = time.Since(arrived)
		defer s.Limit.Release()
	}
	start := time.Now()
	resp := s.dispatch(req)
	service := time.Since(start)
	if heavy {
		s.observeService(service)
		if h := s.serviceHist; h != nil {
			h.Observe(float64(service.Microseconds()) / 1000)
		}
		if resp != nil && resp.Err == "" {
			s.served.Inc()
		}
	}
	if req.Trace != 0 && s.Obs != nil && resp != nil {
		// Traced request: record the ISN-side span under the client's span
		// and ship it back on the response, so queue wait and service time
		// land in the aggregator's tree.
		sp := obs.Span{
			Trace:   req.Trace,
			ID:      obs.NewID(),
			Parent:  req.Span,
			Name:    "serve." + req.Kind.String(),
			ISN:     -1, // the aggregator knows which leg this was
			StartUS: arrived.UnixMicro(),
			DurUS:   time.Since(arrived).Microseconds(),
			Attrs: map[string]string{
				"queue_wait_us": fmt.Sprintf("%d", queueWait.Microseconds()),
				"service_us":    fmt.Sprintf("%d", service.Microseconds()),
			},
		}
		resp.Spans = append(resp.Spans, sp)
		// Also record the span locally (re-rooted: the parent lives on the
		// aggregator) so the server's own /debug/traces and flight recorder
		// see its slowest requests without a client-side dump.
		local := sp
		local.Parent = 0
		s.Obs.AddTrace(&obs.Trace{ID: req.Trace, StartUnixUS: sp.StartUS, Spans: []obs.Span{local}})
	}
	return resp
}

// observeService folds one search's service time into the EWMA
// (alpha = 1/4) that KindPredict reports for Eq. 2.
func (s *Server) observeService(d time.Duration) {
	us := d.Microseconds()
	for {
		old := s.avgServiceUS.Load()
		next := us
		if old != 0 {
			next = old + (us-old)/4
		}
		if s.avgServiceUS.CompareAndSwap(old, next) {
			return
		}
	}
}

// pendingDepth is the admission-queue occupancy KindPredict reports.
func (s *Server) pendingDepth() int {
	if s.Limit == nil {
		return 0
	}
	return s.Limit.Pending()
}

// quarantinedResp is the typed answer for every data-plane request
// while this replica's shard copy is out of service.
func quarantinedResp(id uint64) *Response {
	return &Response{ID: id, Code: CodeQuarantined, Err: "shard replica quarantined"}
}

// gate runs the query-time integrity check for a data-plane request:
// every block of every query term is lazily verified before evaluation,
// so a mismatched block is never scored. A detected corruption
// quarantines the replica and answers CodeQuarantined — the
// aggregator's failover serves the query from a sibling.
func (s *Server) gate(req *Request) *Response {
	if s.Integrity == nil {
		return nil
	}
	if err := s.Integrity.VerifyQuery(req.Terms, time.Now().UnixMilli()); err != nil {
		return &Response{ID: req.ID, Code: CodeQuarantined, Err: err.Error()}
	}
	return nil
}

func (s *Server) dispatch(req *Request) *Response {
	resp := &Response{ID: req.ID}
	switch req.Kind {
	case KindPing:
		// Ping is transport health only — it succeeds even while the
		// shard copy is quarantined — but it reports the data-plane state
		// so the prober can drive coordinator-side readmission.
		resp.Quarantined = s.shard() == nil
	case KindSearch:
		sh := s.shard()
		if sh == nil {
			return quarantinedResp(req.ID)
		}
		if bad := s.gate(req); bad != nil {
			return bad
		}
		start := time.Now()
		if req.Anytime && req.DeadlineUS > 0 {
			return s.anytimeSearch(sh, req, start.Add(time.Duration(req.DeadlineUS)*time.Microsecond))
		}
		r := search.Eval(s.Strategy, sh, req.Terms, req.K)
		if req.DeadlineUS > 0 && time.Since(start).Microseconds() > req.DeadlineUS {
			resp.Err = "deadline exceeded"
			return resp
		}
		resp.Hits = r.Hits
		resp.Stats = r.Stats
	case KindPredict:
		if s.Faults != nil {
			d := s.Faults.OnPredict(s.FaultISN)
			if d.DelayMS > 0 {
				time.Sleep(time.Duration(d.DelayMS * float64(time.Millisecond)))
			}
			if d.Kind == faults.PredictTimeout || d.Kind == faults.Drop || d.Kind == faults.Crash {
				return nil
			}
		}
		if s.Pred == nil {
			resp.Err = "no predictor loaded"
			return resp
		}
		sh := s.shard()
		if sh == nil {
			return quarantinedResp(req.ID)
		}
		s.mu.Lock()
		resp.Pred = s.Pred.Predict(sh, req.Terms)
		s.mu.Unlock()
		resp.QueueDepth = s.pendingDepth()
		resp.AvgServiceUS = s.avgServiceUS.Load()
	case KindPhrase:
		sh := s.shard()
		if sh == nil {
			return quarantinedResp(req.ID)
		}
		if bad := s.gate(req); bad != nil {
			return bad
		}
		r, err := search.Phrase(sh, req.Terms, req.K)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Hits = r.Hits
		resp.Stats = r.Stats
	case KindFetchShard:
		// Repair transfer: hand out this replica's shard bytes, but only
		// from a healthy copy — a quarantined replica must never be a
		// repair source.
		sh := s.shard()
		if sh == nil {
			return quarantinedResp(req.ID)
		}
		var buf bytes.Buffer
		if err := sh.Encode(&buf); err != nil {
			resp.Err = fmt.Sprintf("encode shard: %v", err)
			return resp
		}
		resp.ShardBytes = buf.Bytes()
	default:
		resp.Err = fmt.Sprintf("unknown request kind %d", req.Kind)
	}
	return resp
}

// anytimeSearch evaluates a search with the deadline-aware anytime
// traversal: the wall clock is the injected budget, and the response
// carries the termination flag and the score-bound quality certificate.
func (s *Server) anytimeSearch(sh *index.Shard, req *Request, deadline time.Time) *Response {
	r := search.Anytime(sh, req.Terms, req.K, func(search.ExecStats) bool {
		return !time.Now().Before(deadline)
	})
	return &Response{
		ID: req.ID, Hits: r.Hits, Stats: r.Stats,
		Terminated: r.Terminated, ScoreBound: r.ScoreBound,
	}
}

// RetryPolicy bounds the client's transport-level retries. Retries
// reconnect (a broken gob stream cannot be resumed) and back off
// exponentially from Backoff, doubling per attempt, capped at
// MaxBackoff. Application-level errors from the server (bad request,
// missing predictor) are never retried — only transport faults are.
type RetryPolicy struct {
	// Max is the number of additional attempts after the first (0
	// disables retrying).
	Max int
	// Backoff is the first retry's delay. Zero means DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero means DefaultMaxBackoff.
	MaxBackoff time.Duration
}

// Defaults for RetryPolicy's zero fields.
const (
	DefaultBackoff    = 2 * time.Millisecond
	DefaultMaxBackoff = 250 * time.Millisecond
)

// Client is a synchronous connection to one ISN server. It is safe for
// concurrent use; calls are serialized on the connection.
type Client struct {
	mu      sync.Mutex
	addr    string // redial target; empty for adopted connections
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	fr      *frameReader // decode-side frame layer, for typed error inspection
	broken  bool         // the stream desynced; reconnect before reuse
	next    uint64
	timeout time.Duration
	retry   RetryPolicy
	retries atomic.Uint64
}

// Dial connects to an ISN server. The address is remembered so broken
// connections can be re-established by the retry loop.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	c.addr = addr
	return c, nil
}

// NewClient wraps an established connection. Without a dialed address
// the client cannot reconnect, so transport faults are terminal even
// under a retry policy.
func NewClient(conn net.Conn) *Client {
	fr := newFrameReader(conn)
	return &Client{conn: conn, enc: gob.NewEncoder(newFrameWriter(conn)), dec: gob.NewDecoder(fr), fr: fr}
}

// Offline returns a client for an address that could not be dialed yet.
// Every call goes through the normal reconnect/retry path first, so an
// ISN that is down at startup degrades exactly like one that dies later
// instead of being fatal to the whole aggregator.
func Offline(addr string) *Client {
	return &Client{addr: addr, broken: true}
}

// Close closes the underlying connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// Addr returns the dialed address ("" for adopted connections).
func (c *Client) Addr() string { return c.addr }

// Timeout bounds each round trip; zero means no bound. Set it once,
// before concurrent use.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetRetryPolicy configures transport-level retries. Set it once,
// before concurrent use.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// Retries reports how many transport retries this client has performed,
// a cheap ledger for tests and operational stats.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// errTransient wraps transport-level faults: the request may have never
// reached the server, or the reply was lost or mangled. These — and only
// these — are safe and useful to retry on a fresh connection.
type errTransient struct{ err error }

func (e errTransient) Error() string { return e.err.Error() }
func (e errTransient) Unwrap() error { return e.err }

// IsTransient reports whether err was a transport fault (connection
// drop, timeout, corrupted frame) rather than a server-side application
// error.
func IsTransient(err error) bool {
	var t errTransient
	return errors.As(err, &t)
}

// ErrOverloaded is the client-visible form of a shed request. It is
// transient (IsTransient returns true — the retry loop backs off and
// tries again) but distinguishable, because callers must NOT treat a
// shedding ISN as a dead one: it answers its control plane, its breaker
// stays closed, and the right response is backoff, not failover.
var ErrOverloaded = overload.ErrOverloaded

// IsOverloaded reports whether err is a server-shed rejection.
func IsOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// ErrShardCorrupt is the client-visible form of a CodeQuarantined
// response: the replica's shard copy failed an integrity check and is
// out of service until repaired. Not transient — retrying the same
// replica returns the same answer until its repair completes — and
// breaker-neutral: the node answered, its data is what failed. The
// aggregator fails the leg over to a sibling and ranks the replica out
// of selection (replica.Candidate.Quarantined) until it heals.
var ErrShardCorrupt = errors.New("rpc: shard replica quarantined")

// IsShardCorrupt reports whether err is a quarantined-replica
// rejection.
func IsShardCorrupt(err error) bool { return errors.Is(err, ErrShardCorrupt) }

// Broken reports whether the client's connection is currently marked
// broken (it will redial on the next call). The health prober uses this
// to pick probe targets.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// reconnect re-establishes the connection after a transport fault. The
// gob session restarts from scratch (fresh type table, fresh codec).
func (c *Client) reconnect() error {
	if c.addr == "" {
		return fmt.Errorf("rpc: connection broken and no address to redial")
	}
	if c.conn != nil {
		c.conn.Close()
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("rpc: redial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.fr = newFrameReader(conn)
	c.enc = gob.NewEncoder(newFrameWriter(conn))
	c.dec = gob.NewDecoder(c.fr)
	c.broken = false
	return nil
}

// call performs one round trip, retrying transport faults per the
// client's RetryPolicy with capped exponential backoff.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	backoff := c.retry.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	cap := c.retry.MaxBackoff
	if cap <= 0 {
		cap = DefaultMaxBackoff
	}
	var err error
	for attempt := 0; ; attempt++ {
		if c.broken {
			if rerr := c.reconnect(); rerr != nil {
				err = errTransient{rerr}
				// Redial failures burn an attempt and back off like any
				// other transport fault (the server may be restarting).
				if attempt >= c.retry.Max {
					return nil, err
				}
				c.retries.Add(1)
				time.Sleep(backoff)
				if backoff *= 2; backoff > cap {
					backoff = cap
				}
				continue
			}
		}
		var resp *Response
		resp, err = c.callOnce(req)
		if err == nil {
			return resp, nil
		}
		if !IsTransient(err) || attempt >= c.retry.Max {
			return nil, err
		}
		c.retries.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > cap {
			backoff = cap
		}
	}
}

// callOnce performs exactly one synchronous round trip on the current
// connection. Transport faults mark the connection broken (the next
// attempt reconnects) and come back wrapped as transient.
func (c *Client) callOnce(req *Request) (*Response, error) {
	c.next++
	req.ID = c.next
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			c.broken = true
			return nil, errTransient{fmt.Errorf("rpc: deadline: %w", err)}
		}
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = true
		return nil, errTransient{fmt.Errorf("rpc: send: %w", err)}
	}
	resp, err := DecodeResponse(c.dec)
	if err != nil {
		c.broken = true
		if frErr := c.fr.Err(); frErr != nil && (IsCorruptFrame(frErr) || IsBadFrame(frErr)) {
			// The frame layer, not the transport, rejected the bytes:
			// detected corruption (or garbage) on the response path.
			// Transient — resend on a fresh connection — but typed, so
			// breaker logic can stay neutral about a mangled wire.
			return nil, errTransient{fmt.Errorf("rpc: receive: %w", frErr)}
		}
		if errors.Is(err, io.EOF) {
			return nil, errTransient{fmt.Errorf("rpc: server closed connection")}
		}
		return nil, errTransient{fmt.Errorf("rpc: receive: %w", err)}
	}
	if resp.ID != req.ID {
		// A stale reply (e.g. to a request a previous timeout abandoned):
		// the stream is out of step, resync by reconnecting.
		c.broken = true
		return nil, errTransient{fmt.Errorf("rpc: response ID %d for request %d", resp.ID, req.ID)}
	}
	if resp.Code == CodeOverloaded {
		// Shed by admission control: the transport and the stream are
		// fine (do NOT mark broken), the server is just saturated.
		// Transient, so the retry loop backs off and tries again.
		return nil, errTransient{fmt.Errorf("rpc: %s: %w", c.addr, ErrOverloaded)}
	}
	if resp.Code == CodeCorrupt {
		// The server detected our request frame was mangled in transit
		// and will drop the connection: reconnect and resend. Transient
		// and typed (breaker-neutral — nobody is dead, a wire lied).
		c.broken = true
		return nil, errTransient{fmt.Errorf("rpc: %s: %w", c.addr, ErrCorruptFrame)}
	}
	if resp.Code == CodeQuarantined {
		// The replica's shard copy is out of service. The connection is
		// fine (do NOT mark broken) and retrying here is pointless until
		// repair completes — surface typed so the caller fails over.
		return nil, fmt.Errorf("rpc: %s: %w: %s", c.addr, ErrShardCorrupt, resp.Err)
	}
	if resp.Err != "" {
		// Application-level error: the transport is fine, don't retry.
		return nil, fmt.Errorf("rpc: server error: %s", resp.Err)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.PingStatus()
	return err
}

// PingStatus is Ping plus the replica's data-plane state: quarantined
// is true while the remote shard copy is out of service (integrity
// quarantine, repair in flight, or no shard loaded). The transport
// verdict and the data verdict are deliberately separate — a node can
// be perfectly reachable and still not trustworthy to serve.
func (c *Client) PingStatus() (quarantined bool, err error) {
	resp, err := c.call(&Request{Kind: KindPing})
	if err != nil {
		return false, err
	}
	return resp.Quarantined, nil
}

// Search evaluates a query on the remote shard.
func (c *Client) Search(terms []string, k int, deadline time.Duration) (search.Result, error) {
	r, _, err := c.SearchSpan(obs.SpanContext{}, terms, k, deadline)
	return r, err
}

// SearchSpan is Search with trace propagation: sc's IDs ride on the
// request, and the server's spans (if it recorded any) come back for
// grafting into the caller's trace. A zero sc disables both.
func (c *Client) SearchSpan(sc obs.SpanContext, terms []string, k int, deadline time.Duration) (search.Result, []obs.Span, error) {
	return c.searchCall(sc, terms, k, deadline, false)
}

// SearchAnytime is SearchSpan with the anytime flag: the server runs the
// deadline-aware traversal, so a budget overrun comes back as an exact
// truncated top-K (Result.Terminated, Result.ScoreBound) instead of a
// "deadline exceeded" error.
func (c *Client) SearchAnytime(sc obs.SpanContext, terms []string, k int, deadline time.Duration) (search.Result, []obs.Span, error) {
	return c.searchCall(sc, terms, k, deadline, true)
}

func (c *Client) searchCall(sc obs.SpanContext, terms []string, k int, deadline time.Duration, anytime bool) (search.Result, []obs.Span, error) {
	resp, err := c.call(&Request{
		Kind: KindSearch, Terms: terms, K: k, DeadlineUS: deadline.Microseconds(),
		Anytime: anytime, Trace: sc.Trace, Span: sc.Parent})
	if err != nil {
		return search.Result{}, nil, err
	}
	return search.Result{Hits: resp.Hits, Stats: resp.Stats,
		Terminated: resp.Terminated, ScoreBound: resp.ScoreBound}, resp.Spans, nil
}

// Phrase evaluates an exact-phrase query on the remote (positional)
// shard.
func (c *Client) Phrase(terms []string, k int) (search.Result, error) {
	resp, err := c.call(&Request{Kind: KindPhrase, Terms: terms, K: k})
	if err != nil {
		return search.Result{}, err
	}
	return search.Result{Hits: resp.Hits, Stats: resp.Stats}, nil
}

// Predict fetches the remote ISN's quality/latency predictions.
func (c *Client) Predict(terms []string) (predict.Prediction, error) {
	pred, _, err := c.PredictLoad(terms)
	return pred, err
}

// QueueInfo is the load feedback a KindPredict response carries: the
// ISN's admission-queue occupancy and its EWMA service time. Together
// they give the Eq. 2 queue-backlog term (depth × service time).
type QueueInfo struct {
	Depth        int
	AvgServiceUS int64
}

// PredictLoad fetches predictions together with the ISN's current load
// feedback for the Eq. 2 equivalent-latency correction.
func (c *Client) PredictLoad(terms []string) (predict.Prediction, QueueInfo, error) {
	pred, load, _, err := c.PredictLoadSpan(obs.SpanContext{}, terms)
	return pred, load, err
}

// FetchShard pulls the remote ISN's full shard image for replica
// repair. The bytes travel wire-v4 (per-block CRCs and digest intact)
// inside checksummed frames, and ReadShard re-verifies end-to-end on
// decode — a shard corrupted at the source, in transit, or by a buggy
// peer cannot be re-admitted. A quarantined source refuses to serve
// (CodeQuarantined → ErrShardCorrupt), so repair never copies from a
// replica that is itself lying.
func (c *Client) FetchShard() (*index.Shard, error) {
	resp, err := c.call(&Request{Kind: KindFetchShard})
	if err != nil {
		return nil, err
	}
	if len(resp.ShardBytes) == 0 {
		return nil, fmt.Errorf("rpc: %s: fetchshard: empty shard payload", c.addr)
	}
	s, err := index.ReadShard(bytes.NewReader(resp.ShardBytes))
	if err != nil {
		return nil, fmt.Errorf("rpc: %s: fetchshard: %w", c.addr, err)
	}
	return s, nil
}

// PredictLoadSpan is PredictLoad with trace propagation (see
// SearchSpan).
func (c *Client) PredictLoadSpan(sc obs.SpanContext, terms []string) (predict.Prediction, QueueInfo, []obs.Span, error) {
	resp, err := c.call(&Request{Kind: KindPredict, Terms: terms, Trace: sc.Trace, Span: sc.Parent})
	if err != nil {
		return predict.Prediction{}, QueueInfo{}, nil, err
	}
	return resp.Pred, QueueInfo{Depth: resp.QueueDepth, AvgServiceUS: resp.AvgServiceUS}, resp.Spans, nil
}
