package rpc

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/overload"
	"cottage/internal/predict"
)

// replicatedFleet starts R fault-injected servers per shard (row-major:
// clients[r*shards+s] is shard s's replica r, each replica pair serving
// the same index) and returns the dialed clients plus per-client stop
// functions. The injector ISN is the client index, so plans target one
// replica, not one shard.
func replicatedFleet(t *testing.T, shards []*index.Shard, preds []*predict.ISNPredictor, r int, in *faults.Injector) (clients []*Client, stops []func()) {
	t.Helper()
	n := len(shards) * r
	clients = make([]*Client, n)
	stops = make([]func(), n)
	for row := 0; row < r; row++ {
		for s := range shards {
			ci := row*len(shards) + s
			var p *predict.ISNPredictor
			if preds != nil {
				p = preds[s]
			}
			addr, stop := startFaultyServer(t, shards[s], p, in, ci)
			stops[ci] = stop
			t.Cleanup(stop)
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			c.SetTimeout(2 * time.Second)
			c.SetRetryPolicy(RetryPolicy{Max: 1, Backoff: time.Millisecond})
			clients[ci] = c
		}
	}
	return clients, stops
}

// rowGroups builds the row-major client grouping: groups[s] lists shard
// s's client indices across the replica rows.
func rowGroups(shards, r int) [][]int {
	groups := make([][]int, shards)
	for s := 0; s < shards; s++ {
		for row := 0; row < r; row++ {
			groups[s] = append(groups[s], row*shards+s)
		}
	}
	return groups
}

// TestReplicaGroupFailover: with 2 shards × 2 replicas, a replica that
// severs every stream costs a mid-query failover — not a degraded
// shard. Only when the whole group is gone does the shard land in
// Result.Failed.
func TestReplicaGroupFailover(t *testing.T) {
	shards := []*index.Shard{buildShard(t, 61), buildShard(t, 62)}
	in := faults.NewInjector(17)
	clients, _ := replicatedFleet(t, shards, nil, 2, in)
	agg := NewAggregator(clients, 10)
	if err := agg.EnableReplicaGroups(rowGroups(2, 2)); err != nil {
		t.Fatal(err)
	}

	// Healthy baseline: two logical shards, no failures.
	base, err := agg.SearchExhaustive([]string{"ga", "gb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Failed) != 0 || len(base.Selected) != 2 {
		t.Fatalf("healthy run degraded: %+v", base)
	}
	if agg.Stats().FailoversSearch != 0 {
		t.Fatalf("healthy run burned failovers: %+v", agg.Stats())
	}

	// Shard 0's unused replica (client 2, ranked first as the only
	// no-data candidate) starts dropping every stream: the leg must fail
	// over to its sibling and the query must stay whole.
	in.SetPlan(2, faults.Plan{DropProb: 1})
	res, err := agg.SearchExhaustive([]string{"ga", "gb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failover did not absorb a single-replica fault: Failed=%v", res.Failed)
	}
	if len(res.Hits) == 0 {
		t.Fatal("failover run returned nothing")
	}
	if st := agg.Stats(); st.FailoversSearch == 0 {
		t.Fatalf("single-replica fault served without a failover: %+v", st)
	}

	// Kill shard 0's other replica too (client 0): group-wide loss is the
	// only thing that degrades the shard.
	in.SetPlan(0, faults.Plan{DropProb: 1})
	part, err := agg.SearchExhaustive([]string{"ga", "gb"})
	if err != nil {
		t.Fatalf("one dead shard failed the query: %v", err)
	}
	if len(part.Failed) != 1 || part.Failed[0] != 0 {
		t.Fatalf("Failed = %v, want [0]", part.Failed)
	}
	if len(part.Hits) == 0 {
		t.Fatal("surviving shard contributed nothing")
	}
}

// TestProbeKeepsBreakerIdentity pins the prober/breaker interplay for
// replica groups: breakers are per address, so a probe success on one
// replica must close that replica's breaker and no other — the sibling
// sharing its shard stays open until its own probe succeeds.
func TestProbeKeepsBreakerIdentity(t *testing.T) {
	sh := buildShard(t, 63)
	addr0, stop0 := startServer(t, sh, nil)
	addr1, stop1 := startServer(t, sh, nil)
	defer stop1()
	c0, err := Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	for _, c := range []*Client{c0, c1} {
		c.SetTimeout(time.Second)
		c.SetRetryPolicy(RetryPolicy{Max: 0})
	}

	agg := NewAggregator([]*Client{c0, c1}, 10)
	if err := agg.EnableReplicaGroups([][]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	// Hour-long cooldown: only an explicit probe success may close a
	// breaker during the test.
	agg.EnableBreakers(1, time.Hour)
	agg.Breakers[0].OnFailure()
	agg.Breakers[1].OnFailure()
	if agg.Breakers[0].State() != overload.Open || agg.Breakers[1].State() != overload.Open {
		t.Fatal("breakers not tripped")
	}

	// Replica 0's process is gone; replica 1 is fine. The prober must
	// revive exactly the replica whose probe succeeds.
	stop0()
	c0.Close()
	agg.StartProber(2 * time.Millisecond)
	defer agg.StopProber()
	deadline := time.Now().Add(2 * time.Second)
	for agg.Breakers[1].State() != overload.Closed {
		if time.Now().After(deadline) {
			t.Fatal("probe never closed the live replica's breaker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := agg.Breakers[0].State(); got != overload.Open {
		t.Fatalf("sibling's probe success moved replica 0's breaker to %v, want Open", got)
	}

	// And the selector routes accordingly: the leg lands on replica 1
	// without an error and without spending a failover (the open breaker
	// is ranked, but the closed one is tried first).
	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 || len(res.Hits) == 0 {
		t.Fatalf("closed-breaker replica did not carry the shard: %+v", res)
	}
}

// TestHedgeFailoverCompose races hedging and failover on one leg. The
// shard's first-ranked replica has a wedged connection: the hedge (a
// fresh dial to the same address) must rescue the attempt, the wedged
// primary's late failure must be discarded — not turned into a second
// failover — and every loser is cancelled exactly once. Run under
// -race, this is the exactly-once cancellation contract.
func TestHedgeFailoverCompose(t *testing.T) {
	sh := buildShard(t, 64)
	addr0, stop0 := startServer(t, sh, nil)
	defer stop0()
	addr1, stop1 := startServer(t, sh, nil)
	defer stop1()
	c0, err := Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Wedge replica 0's live connection on a silent listener (Addr()
	// still points at the healthy server, so the hedge's fresh dial
	// works). Short timeout: the wedged primary fails while the test is
	// still watching the counters.
	hang, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hang.Close()
	var hmu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			c, err := hang.Accept()
			if err != nil {
				return
			}
			hmu.Lock()
			held = append(held, c)
			hmu.Unlock()
		}
	}()
	defer func() {
		hmu.Lock()
		for _, c := range held {
			c.Close()
		}
		hmu.Unlock()
	}()
	stuck, err := net.Dial("tcp", hang.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c0.SetTimeout(300 * time.Millisecond)
	c0.SetRetryPolicy(RetryPolicy{Max: 0})
	c0.conn.Close()
	c0.conn = stuck
	c0.enc = gob.NewEncoder(stuck)
	c0.dec = gob.NewDecoder(stuck)
	c1.SetTimeout(time.Second)

	agg := NewAggregator([]*Client{c0, c1}, 10)
	if err := agg.EnableReplicaGroups([][]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	agg.HedgeAfter = 20 * time.Millisecond

	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatalf("hedge did not rescue the wedged replica: %v", err)
	}
	if len(res.Hits) == 0 || len(res.Failed) != 0 {
		t.Fatalf("hedged leg degraded: %+v", res)
	}
	st := agg.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("want exactly one winning hedge, got %+v", st)
	}
	if st.FailoversSearch != 0 {
		t.Fatalf("hedge win must not also burn a failover: %+v", st)
	}

	// Let the wedged primary's in-flight call time out and fail: its late
	// loss belongs to an already-answered leg and must not move any
	// counter (no double-count, no retroactive failover).
	time.Sleep(400 * time.Millisecond)
	late := agg.Stats()
	if late.FailoversSearch != 0 || late.HedgeWins != st.HedgeWins || late.Hedges != st.Hedges {
		t.Fatalf("late primary failure moved counters: before=%+v after=%+v", st, late)
	}

	// Now replica 0 is cleanly broken (timed-out conn): the selector
	// ranks the healthy sibling first and the next query serves from
	// replica 1 — with no stale hedge outcome from the first query
	// leaking into this one's counters.
	res2, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Failed) != 0 || len(res2.Hits) == 0 {
		t.Fatalf("failover run degraded: %+v", res2)
	}
	st2 := agg.Stats()
	if st2.HedgeWins != 1 {
		t.Fatalf("second query re-counted a hedge win: %+v", st2)
	}
}
