package rpc

import (
	"fmt"
	"strconv"
	"time"

	"cottage/internal/obs"
	"cottage/internal/overload"
	"cottage/internal/predict"
	"cottage/internal/replica"
	"cottage/internal/search"
)

// EnableReplicaGroups switches the aggregator from a flat ISN list to
// replica groups: groups[s] lists the client indices serving shard s,
// and every per-query leg (prediction, search) is routed to the group's
// best live replica with mid-query failover to siblings. Client indices
// must be in range and appear in at most one group; every client keeps
// its own breaker, prober slot and accuracy history (identity is per
// address, never per group). Call before the first query and before
// StartProber.
func (a *Aggregator) EnableReplicaGroups(groups [][]int) error {
	seen := make([]bool, len(a.Clients))
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("rpc: replica group %d is empty", gi)
		}
		for _, ci := range g {
			if ci < 0 || ci >= len(a.Clients) {
				return fmt.Errorf("rpc: replica group %d references client %d of %d", gi, ci, len(a.Clients))
			}
			if seen[ci] {
				return fmt.Errorf("rpc: client %d appears in more than one replica group", ci)
			}
			seen[ci] = true
		}
	}
	a.Groups = groups
	a.tracker = replica.NewTracker(len(a.Clients))
	return nil
}

// Shards returns how many logical shards the aggregator fans out to:
// one per replica group, or one per client on unreplicated fleets.
func (a *Aggregator) Shards() int {
	if a.Groups == nil {
		return len(a.Clients)
	}
	return len(a.Groups)
}

// group returns shard s's client indices (a singleton on unreplicated
// fleets, where client index == shard index).
func (a *Aggregator) group(s int) []int {
	if a.Groups == nil {
		return []int{s}
	}
	return a.Groups[s]
}

// replicaRow returns client ci's position within shard's group — the
// replica row recorded in traces and decision records.
func (a *Aggregator) replicaRow(shard, ci int) int {
	for i, m := range a.group(shard) {
		if m == ci {
			return i
		}
	}
	return 0
}

// rankShard orders a shard's replicas best-first by the shared selector
// rule (replica.Rank): breaker state, then transport health, then
// rolling service time, then rolling predictor error. Ranking reads
// Breaker.State(), which never mutates; the half-open probe slot
// (Allow) is only spent on the replica a leg actually sends to.
func (a *Aggregator) rankShard(shard int) []int {
	members := a.group(shard)
	cands := make([]replica.Candidate, len(members))
	for i, ci := range members {
		st := overload.Closed
		if b := a.breaker(ci); b != nil {
			st = b.State()
		}
		var acc float64
		if a.Obs != nil {
			acc = a.Obs.Acc.EWMAAbsErrPct(ci)
		}
		cands[i] = replica.Candidate{
			ID:          ci,
			Quarantined: a.clientQuarantined(ci),
			Breaker:     st,
			Healthy:     !a.Clients[ci].Broken(),
			ServiceMS:   a.tracker.ServiceMS(ci),
			AccErrPct:   acc,
		}
	}
	return replica.Rank(cands)
}

// predictLeg is the outcome of one shard's prediction leg.
type predictLeg struct {
	client    int // serving client index, -1 when the whole group failed
	row       int // replica row within the group
	failovers int // sibling retries burned before the answer
	pred      predict.Prediction
	load      QueueInfo
	err       error
}

// predictShard runs one shard's prediction leg over its ranked replicas
// with mid-query failover: a replica that errors (or whose breaker
// refuses the send) forfeits the leg to the next-ranked sibling. Only
// when the whole group fails does the shard become a missing prediction
// for degraded-mode Algorithm 1.
func (a *Aggregator) predictShard(shard int, tb *obs.TraceBuilder, parent *obs.ActiveSpan, terms []string) predictLeg {
	out := predictLeg{client: -1}
	var lastErr error
	sent := 0
	for _, ci := range a.rankShard(shard) {
		if b := a.breaker(ci); b != nil && !b.Allow() {
			lastErr = fmt.Errorf("replica %d: circuit open", ci)
			continue
		}
		if sent > 0 {
			a.failoversPredict.Inc()
		}
		leg := tb.StartSpan("predict.isn", parent.ID(), nowUS())
		leg.SetISN(shard)
		row := a.replicaRow(shard, ci)
		leg.SetAttr("replica", strconv.Itoa(row))
		if sent > 0 {
			leg.SetAttr("failover", strconv.Itoa(sent))
		}
		p, load, spans, err := a.Clients[ci].PredictLoadSpan(leg.Context(), terms)
		a.observeBreaker(ci, err)
		sent++
		if err != nil {
			if IsShardCorrupt(err) {
				a.noteCorrupt(shard, ci, err)
			}
			leg.SetAttr("error", err.Error())
			leg.End(nowUS())
			lastErr = fmt.Errorf("replica %d: %w", ci, err)
			continue
		}
		for si := range spans {
			spans[si].ISN = shard
		}
		tb.AddSpans(spans)
		leg.End(nowUS())
		out.client, out.row, out.failovers = ci, row, sent-1
		out.pred, out.load = p, load
		return out
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no replicas configured")
	}
	out.err = fmt.Errorf("shard %d predict: %w", shard, lastErr)
	return out
}

// searchLeg is the outcome of one shard's search leg.
type searchLeg struct {
	client    int
	row       int
	failovers int
	hits      []search.Hit
	ms        float64
	err       error
	// terminated/bound echo an anytime leg's certificate: exact but
	// possibly incomplete hits, nothing unseen scoring above bound.
	terminated bool
	bound      float64
}

// searchShard runs one shard's search leg over its ranked replicas with
// mid-query failover, composing with hedging (each attempt may itself
// hedge via searchHedged; hedge is the per-leg timer from hedgeFor).
// Retries inherit the remaining budget, not a fresh one: a failover
// late in the budget gets only what is left, and when nothing is left
// the leg is abandoned — degraded Algorithm 1 already priced the shard
// in, so the query survives.
func (a *Aggregator) searchShard(shard int, tb *obs.TraceBuilder, parent *obs.ActiveSpan, terms []string, deadline, hedge time.Duration) searchLeg {
	out := searchLeg{client: -1}
	var absDeadline time.Time
	if deadline > 0 {
		absDeadline = time.Now().Add(deadline)
	}
	var lastErr error
	sent := 0
	for _, ci := range a.rankShard(shard) {
		remaining := deadline
		if deadline > 0 {
			remaining = time.Until(absDeadline)
			if remaining <= 0 {
				lastErr = fmt.Errorf("budget exhausted before replica %d", ci)
				break
			}
		}
		if b := a.breaker(ci); b != nil && !b.Allow() {
			lastErr = fmt.Errorf("replica %d: circuit open", ci)
			continue
		}
		if sent > 0 {
			a.failoversSearch.Inc()
		}
		leg := tb.StartSpan("search.isn", parent.ID(), nowUS())
		leg.SetISN(shard)
		row := a.replicaRow(shard, ci)
		leg.SetAttr("replica", strconv.Itoa(row))
		if sent > 0 {
			leg.SetAttr("failover", strconv.Itoa(sent))
		}
		legStart := time.Now()
		r, spans, hi, err := a.searchHedged(ci, leg.Context(), terms, remaining, hedge)
		a.observeBreaker(ci, err)
		sent++
		if err != nil {
			if IsShardCorrupt(err) {
				a.noteCorrupt(shard, ci, err)
			}
			leg.SetAttr("error", err.Error())
			leg.End(nowUS())
			lastErr = fmt.Errorf("replica %d: %w", ci, err)
			continue
		}
		for si := range spans {
			spans[si].ISN = shard
		}
		tb.AddSpans(spans)
		if hi.hedged {
			leg.SetAttr("hedged", "true")
			// Only a winning hedge's timer wait sat on the critical path —
			// phase attribution charges it to hedge-wait, not search.
			if hi.won && hi.waitUS > 0 {
				leg.SetAttr("hedge_wait_us", strconv.FormatInt(hi.waitUS, 10))
			}
		}
		if r.Terminated {
			leg.SetAttr("truncated", "true")
			leg.SetAttr("score_bound", strconv.FormatFloat(r.ScoreBound, 'g', -1, 64))
		}
		leg.End(nowUS())
		ms := float64(time.Since(legStart).Microseconds()) / 1000
		a.tracker.Observe(ci, ms)
		out.client, out.row, out.failovers = ci, row, sent-1
		out.hits, out.ms = r.Hits, ms
		out.terminated, out.bound = r.Terminated, r.ScoreBound
		return out
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no replicas configured")
	}
	out.err = fmt.Errorf("shard %d: %w", shard, lastErr)
	return out
}
