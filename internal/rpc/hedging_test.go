package rpc

import (
	"testing"
	"time"

	"cottage/internal/faults"
	"cottage/internal/obs"
)

// TestHedgeFor pins the per-leg hedge timer rule: fixed-delay mode
// echoes HedgeAfter (or never), predictive mode hedges flagged legs
// immediately and everything else never.
func TestHedgeFor(t *testing.T) {
	cases := []struct {
		name        string
		predictive  bool
		after       time.Duration
		thresholdMS float64
		lcurMS      float64
		havePred    bool
		want        time.Duration
	}{
		{name: "timer/off", want: -1},
		{name: "timer/set", after: 20 * time.Millisecond, want: 20 * time.Millisecond},
		{name: "predictive/flagged", predictive: true, thresholdMS: 10, lcurMS: 50, havePred: true, want: 0},
		{name: "predictive/below-threshold", predictive: true, thresholdMS: 10, lcurMS: 5, havePred: true, want: -1},
		{name: "predictive/no-prediction", predictive: true, thresholdMS: 10, lcurMS: 50, havePred: false, want: -1},
		{name: "predictive/zero-threshold", predictive: true, lcurMS: 50, havePred: true, want: -1},
		// Predictive mode owns the decision: a leftover HedgeAfter must
		// not leak timer hedges onto unflagged legs.
		{name: "predictive/ignores-timer", predictive: true, after: 20 * time.Millisecond, thresholdMS: 10, lcurMS: 5, havePred: true, want: -1},
	}
	for _, tc := range cases {
		a := &Aggregator{HedgePredictive: tc.predictive, HedgeAfter: tc.after, HedgeThresholdMS: tc.thresholdMS}
		if got := a.hedgeFor(tc.lcurMS, tc.havePred); got != tc.want {
			t.Errorf("%s: hedgeFor(%v, %v) = %v, want %v", tc.name, tc.lcurMS, tc.havePred, got, tc.want)
		}
	}
}

// TestPredictiveHedgeDispatch drives a search leg against a uniformly
// slow ISN under predictive hedging: a leg whose queue-corrected
// prediction crosses the threshold gets its duplicate at dispatch (one
// hedge, no waiting out a timer), while an unflagged leg rides out the
// same slow reply without ever hedging.
func TestPredictiveHedgeDispatch(t *testing.T) {
	sh := buildShard(t, 46)
	in := faults.NewInjector(12)
	in.SetPlan(0, faults.Plan{SlowMS: 30})
	addr, stop := startFaultyServer(t, sh, nil, in, 0)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(5 * time.Second)

	agg := NewAggregator([]*Client{c}, 5)
	agg.HedgePredictive = true
	agg.HedgeThresholdMS = 10

	// Unflagged: predicted 5ms < 10ms threshold. The reply takes ~30ms,
	// but a fixed 20ms timer that would have fired here must not exist.
	r, _, _, err := agg.searchHedged(0, obs.SpanContext{}, []string{"ga"}, 0, agg.hedgeFor(5, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) == 0 {
		t.Fatal("unflagged leg returned nothing")
	}
	if st := agg.Stats(); st.Hedges != 0 {
		t.Fatalf("unflagged leg hedged: %+v", st)
	}

	// Flagged: predicted 50ms > threshold — the duplicate goes out
	// immediately rather than after any delay.
	r, _, _, err = agg.searchHedged(0, obs.SpanContext{}, []string{"ga"}, 0, agg.hedgeFor(50, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) == 0 {
		t.Fatal("flagged leg returned nothing")
	}
	if st := agg.Stats(); st.Hedges != 1 {
		t.Fatalf("flagged leg did not hedge exactly once: %+v", st)
	}
}

// TestPredictiveModeSuppressesExhaustiveTimer: SearchExhaustive has no
// prediction step, so under predictive hedging it must never hedge —
// even with a HedgeAfter short enough that timer mode would fire.
func TestPredictiveModeSuppressesExhaustiveTimer(t *testing.T) {
	sh := buildShard(t, 47)
	in := faults.NewInjector(17)
	in.SetPlan(0, faults.Plan{SlowMS: 30})
	addr, stop := startFaultyServer(t, sh, nil, in, 0)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(5 * time.Second)

	agg := NewAggregator([]*Client{c}, 5)
	agg.HedgePredictive = true
	agg.HedgeThresholdMS = 10
	agg.HedgeAfter = 5 * time.Millisecond

	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits from slow ISN")
	}
	if st := agg.Stats(); st.Hedges != 0 {
		t.Fatalf("predictive mode fired a timer hedge on the exhaustive path: %+v", st)
	}
}
