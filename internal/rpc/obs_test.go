package rpc

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"cottage/internal/index"
	"cottage/internal/obs"
	"cottage/internal/predict"
	"cottage/internal/search"
)

// startObsServer is startServer with an observer attached, so the
// server records serve spans for traced requests.
func startObsServer(tb testing.TB, sh *index.Shard, pred *predict.ISNPredictor, o *obs.Observer) (addr string, stop func()) {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := &Server{Shard: sh, Pred: pred, Strategy: search.StrategyMaxScore, Obs: o}
	go srv.Serve(l)
	return l.Addr().String(), func() { l.Close() }
}

// TestSpanPropagation proves the trace context survives the wire: the
// injected trace/span IDs ride the gob encode/decode round trip and the
// server's span comes back parented under the client-side span.
func TestSpanPropagation(t *testing.T) {
	sh := buildShard(t, 11)
	addr, stop := startObsServer(t, sh, nil, obs.NewObserver(1, 4))
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sc := obs.SpanContext{Trace: obs.NewID(), Parent: obs.NewID()}
	_, spans, err := c.SearchSpan(sc, []string{"ga"}, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d server spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Trace != sc.Trace {
		t.Errorf("trace ID %#x did not survive the round trip (sent %#x)", sp.Trace, sc.Trace)
	}
	if sp.Parent != sc.Parent {
		t.Errorf("server span parent %#x, want client span %#x", sp.Parent, sc.Parent)
	}
	if sp.Name != "serve.search" {
		t.Errorf("server span name %q, want serve.search", sp.Name)
	}
	if sp.ID == 0 || sp.ID == sc.Parent {
		t.Errorf("server span needs its own fresh ID, got %#x", sp.ID)
	}
	if _, ok := sp.Attrs["service_us"]; !ok {
		t.Errorf("server span missing service_us attr: %v", sp.Attrs)
	}

	// Untraced requests must stay span-free end to end.
	_, spans, err = c.SearchSpan(obs.SpanContext{}, []string{"ga"}, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("untraced request returned %d spans", len(spans))
	}
}

// promLine matches one Prometheus sample line: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \S+$`)

func parsePrometheus(tb testing.TB, text string) map[string]bool {
	tb.Helper()
	families := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			tb.Fatalf("unparseable metrics line %q", line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			tb.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		families[name] = true
	}
	return families
}

// TestObsSmoke is the CI obs-smoke gate: distributed fixture, debug
// listener, traced queries. Asserts /metrics parses and exposes the
// latency/predictor families, and that a traced Cottage query yields a
// complete span tree (predict/budget/search/merge under one root, legs
// under their phases, ISN-side serve spans grafted in, and the
// Algorithm 1 decision record on the budget span) via /debug/traces.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains predictors")
	}
	shards, fleet, qs := distributedFixture(t)
	clients := make([]*Client, len(shards))
	for i, sh := range shards {
		addr, stop := startObsServer(t, sh, fleet.Predictors[i], obs.NewObserver(1, 4))
		defer stop()
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	agg := NewAggregator(clients, 10)
	agg.Obs = obs.NewObserver(len(clients), 32)
	dbg, err := obs.StartDebug("127.0.0.1:0", agg.Obs)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	var res Result
	found := false
	for _, q := range qs[:20] {
		r, err := agg.SearchCottage(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if r.TraceID != 0 && len(r.Selected) > 0 && len(r.Hits) > 0 {
			res, found = r, true
			break
		}
	}
	if !found {
		t.Fatal("no query produced a traced result with selected ISNs")
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if hz := get("/healthz"); !strings.Contains(hz, "ok") {
		t.Fatalf("/healthz = %q", hz)
	}

	families := parsePrometheus(t, get("/metrics"))
	for _, want := range []string{
		"cottage_agg_query_ms_bucket",
		"cottage_agg_query_ms_count",
		"cottage_agg_budget_ms_bucket",
		"cottage_predictor_latency_abs_err_pct",
		"cottage_predictor_quality_hit_rate",
	} {
		if !families[want] {
			t.Errorf("/metrics missing family %s (have %v)", want, families)
		}
	}

	var traces []*obs.Trace
	if err := json.Unmarshal([]byte(get("/debug/traces")), &traces); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	var tr *obs.Trace
	for _, c := range traces {
		if c.ID == res.TraceID {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Fatalf("trace %#x not in /debug/traces", res.TraceID)
	}

	root := tr.Root()
	if root == nil || root.Name != "query" {
		t.Fatalf("trace has no query root: %+v", root)
	}
	byID := make(map[uint64]*obs.Span, len(tr.Spans))
	for i := range tr.Spans {
		byID[tr.Spans[i].ID] = &tr.Spans[i]
	}
	phase := make(map[string]*obs.Span)
	for _, name := range []string{"predict", "budget", "search", "merge"} {
		sp := tr.Find(name)
		if sp == nil {
			t.Fatalf("trace missing %s phase; spans: %s", name, spanNames(tr))
		}
		if sp.Parent != root.ID {
			t.Errorf("%s span parent %#x, want root %#x", name, sp.Parent, root.ID)
		}
		phase[name] = sp
	}
	d := phase["budget"].Decision
	if d == nil {
		t.Fatal("budget span has no decision record")
	}
	if d.BudgetMS != res.BudgetMS {
		t.Errorf("decision budget %.3f != result budget %.3f", d.BudgetMS, res.BudgetMS)
	}
	if d.BudgetISN < 0 {
		t.Errorf("decision has no budget-setting ISN: %+v", d)
	}
	if len(d.Selected) != len(res.Selected) {
		t.Errorf("decision selected %v != result selected %v", d.Selected, res.Selected)
	}
	if len(d.Reports) == 0 {
		t.Error("decision record carries no per-ISN reports")
	}

	legs := map[string]int{}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Parent != 0 {
			if _, ok := byID[sp.Parent]; !ok {
				t.Errorf("span %s has dangling parent %#x", sp.Name, sp.Parent)
			}
		}
		switch sp.Name {
		case "predict.isn":
			legs[sp.Name]++
			if sp.Parent != phase["predict"].ID {
				t.Errorf("predict.isn leg not under predict phase")
			}
		case "search.isn":
			legs[sp.Name]++
			if sp.Parent != phase["search"].ID {
				t.Errorf("search.isn leg not under search phase")
			}
		case "serve.predict", "serve.search":
			legs[sp.Name]++
			parent := byID[sp.Parent]
			if parent == nil || (parent.Name != "predict.isn" && parent.Name != "search.isn") {
				t.Errorf("%s span not grafted under a client leg", sp.Name)
			}
			if sp.ISN < 0 {
				t.Errorf("grafted %s span has no ISN", sp.Name)
			}
		}
	}
	if legs["predict.isn"] != len(clients) {
		t.Errorf("got %d predict legs, want %d", legs["predict.isn"], len(clients))
	}
	if legs["search.isn"] != len(res.Selected) {
		t.Errorf("got %d search legs, want %d", legs["search.isn"], len(res.Selected))
	}
	if legs["serve.predict"] == 0 || legs["serve.search"] == 0 {
		t.Errorf("no ISN-side serve spans grafted: %v", legs)
	}

	// The accuracy tracker saw the query: at least one selected ISN must
	// hold a latency sample.
	samples := uint64(0)
	for _, s := range agg.Obs.Acc.Snapshot() {
		samples += s.LatSamples
	}
	if samples == 0 {
		t.Error("predictor-accuracy tracker recorded no samples")
	}
}

func spanNames(tr *obs.Trace) string {
	names := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		names[i] = fmt.Sprintf("%s<-%d", s.Name, s.Parent)
	}
	return strings.Join(names, ", ")
}
