package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cottage/internal/index"
	"cottage/internal/integrity"
	"cottage/internal/overload"
	"cottage/internal/search"
)

// --- frame layer ---

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	msgs := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0xAB}, 4096),
		[]byte("omega"),
	}
	for _, m := range msgs {
		if n, err := fw.Write(m); err != nil || n != len(m) {
			t.Fatalf("write %d bytes: n=%d err=%v", len(m), n, err)
		}
	}
	fr := newFrameReader(&buf)
	var got bytes.Buffer
	if _, err := io.Copy(&got, fr); err != io.EOF && err != nil {
		t.Fatalf("read back: %v", err)
	}
	want := bytes.Join(msgs, nil)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("round trip lost bytes: got %d, want %d", got.Len(), len(want))
	}
	if fr.Err() != nil && fr.Err() != io.EOF {
		t.Fatalf("clean stream left sticky error %v", fr.Err())
	}
}

func TestFrameReaderDetectsCorruptPayload(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if _, err := fw.Write([]byte("the payload under test")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] ^= 0x01 // first payload byte

	fr := newFrameReader(bytes.NewReader(raw))
	_, err := fr.Read(make([]byte, 64))
	if !IsCorruptFrame(err) {
		t.Fatalf("flipped payload bit: got %v, want ErrCorruptFrame", err)
	}
	// Sticky: the stream cannot be resynchronized after a lie.
	if _, err2 := fr.Read(make([]byte, 64)); !IsCorruptFrame(err2) {
		t.Fatalf("second read after corruption: got %v, want sticky ErrCorruptFrame", err2)
	}
	if fr.Err() == nil || !IsCorruptFrame(fr.Err()) {
		t.Fatalf("Err() = %v, want sticky ErrCorruptFrame", fr.Err())
	}
}

func TestFrameReaderRejectsImpossibleLength(t *testing.T) {
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], maxFramePayload+1)
	fr := newFrameReader(bytes.NewReader(head[:]))
	_, err := fr.Read(make([]byte, 8))
	if !IsBadFrame(err) {
		t.Fatalf("absurd length: got %v, want ErrBadFrame", err)
	}
}

func TestFrameReaderTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	if _, err := fw.Write([]byte("will be cut short")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:12] // header + 4 of 17 payload bytes
	fr := newFrameReader(bytes.NewReader(raw))
	if _, err := fr.Read(make([]byte, 64)); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestWrapDecodeErrClassification(t *testing.T) {
	if wrapDecodeErr("x", nil) != nil {
		t.Fatal("nil must stay nil")
	}
	if err := wrapDecodeErr("x", io.EOF); err != io.EOF {
		t.Fatalf("EOF must pass through, got %v", err)
	}
	if err := wrapDecodeErr("x", ErrCorruptFrame); !IsCorruptFrame(err) {
		t.Fatalf("frame identity lost: %v", err)
	}
	if err := wrapDecodeErr("x", io.ErrShortBuffer); !IsBadFrame(err) {
		t.Fatalf("gob garbage must become ErrBadFrame, got %v", err)
	}
}

// TestServerAnswersCodeCorruptOnMangledRequest speaks the wire protocol
// by hand: a request whose payload CRC is wrong must be answered with a
// typed CodeCorrupt response (then the connection closes) — never
// silently dropped, never misdecoded.
func TestServerAnswersCodeCorruptOnMangledRequest(t *testing.T) {
	sh := buildShard(t, 71)
	addr, stop := startServer(t, sh, nil)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Encode a valid framed request, then flip a bit in the final
	// frame's payload (the Request value; earlier frames are gob type
	// descriptors and must stay intact for the decoder to reach it).
	var buf bytes.Buffer
	enc := gob.NewEncoder(newFrameWriter(&buf))
	if err := enc.Encode(&Request{ID: 1, Kind: KindSearch, Terms: []string{"ga"}, K: 5}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x40
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	dec := gob.NewDecoder(newFrameReader(conn))
	resp, err := DecodeResponse(dec)
	if err != nil {
		t.Fatalf("expected a typed response before close, got %v", err)
	}
	if resp.Code != CodeCorrupt {
		t.Fatalf("code = %v, want CodeCorrupt", resp.Code)
	}
}

// flipProxy forwards client<->server bytes, flipping one payload byte
// of the first server->client burst exactly once — a deterministic
// stand-in for faults.Corrupt aimed at the response path.
func flipProxy(t *testing.T, backend string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var flipped atomic.Bool
	go func() {
		for {
			cc, err := ln.Accept()
			if err != nil {
				return
			}
			sc, err := net.Dial("tcp", backend)
			if err != nil {
				cc.Close()
				continue
			}
			go func() { io.Copy(sc, cc); sc.Close() }()
			go func() {
				defer cc.Close()
				defer sc.Close()
				if flipped.CompareAndSwap(false, true) {
					buf := make([]byte, 64<<10)
					n, err := sc.Read(buf)
					if err != nil {
						return
					}
					// Flip a payload byte when the burst carries one; fall
					// back to the last byte available (still detected, as a
					// header lie instead).
					if n > 8 {
						buf[8] ^= 0x20
					} else {
						buf[n-1] ^= 0x20
					}
					if _, err := cc.Write(buf[:n]); err != nil {
						return
					}
				}
				io.Copy(cc, sc)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestClientDetectsResponseCorruptionTyped drives a corrupted response
// through the client: without retries the error is typed (a detected
// frame-layer lie, transient), and with retries the very next attempt
// on a fresh connection succeeds with intact results.
func TestClientDetectsResponseCorruptionTyped(t *testing.T) {
	sh := buildShard(t, 72)
	want := search.MaxScore(sh, []string{"ga", "gb"}, 5)
	backend, stopSrv := startServer(t, sh, nil)
	defer stopSrv()
	addr, stopProxy := flipProxy(t, backend)
	defer stopProxy()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(2 * time.Second)
	c.SetRetryPolicy(RetryPolicy{Max: 0})

	_, err = c.Search([]string{"ga", "gb"}, 5, 0)
	if err == nil {
		t.Fatal("corrupted response must not decode cleanly")
	}
	if !IsTransient(err) {
		t.Fatalf("detected corruption must be transient, got %v", err)
	}
	if !IsCorruptFrame(err) && !IsBadFrame(err) {
		t.Fatalf("detected corruption must keep frame identity, got %v", err)
	}

	c.SetRetryPolicy(RetryPolicy{Max: 3, Backoff: time.Millisecond})
	r, err := c.Search([]string{"ga", "gb"}, 5, 0)
	if err != nil {
		t.Fatalf("fresh connection after corruption: %v", err)
	}
	if len(r.Hits) != len(want.Hits) {
		t.Fatalf("got %d hits, want %d", len(r.Hits), len(want.Hits))
	}
	for i := range r.Hits {
		if r.Hits[i] != want.Hits[i] {
			t.Fatalf("hit %d differs after recovery", i)
		}
	}
}

// --- quarantine, failover, repair ---

// findTerm returns the shard's TermInfo for text, for in-place rot.
func findTerm(tb testing.TB, sh *index.Shard, text string) *index.TermInfo {
	tb.Helper()
	for i := range sh.Terms {
		if sh.Terms[i].Text == text {
			return &sh.Terms[i]
		}
	}
	tb.Fatalf("term %q not in shard", text)
	return nil
}

// startIntegrityServer launches a Server supervised by an integrity
// manager for the given shard.
func startIntegrityServer(tb testing.TB, mgr *integrity.Manager) (addr string, stop func()) {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := &Server{Strategy: search.StrategyMaxScore, Integrity: mgr}
	go srv.Serve(l)
	return l.Addr().String(), func() { l.Close() }
}

// TestQuarantineFailoverAndRepair is the integrity plane end to end
// over real sockets: replica 0's shard rots in memory, the first query
// touching the bad block quarantines it server-side, the aggregator
// fails over to replica 1 and quarantines it coordinator-side (breaker
// untouched), FetchShard repairs replica 0 from the healthy sibling,
// and the prober re-admits it into selection.
func TestQuarantineFailoverAndRepair(t *testing.T) {
	sh0 := buildShard(t, 73)
	sh1 := buildShard(t, 73) // same seed: true replicas
	want := search.MaxScore(sh1, []string{"ga", "gb"}, 5)

	mgr := integrity.NewManager(integrity.Config{ShardID: 0, Replica: 0, ScrubBytesPerSec: 1 << 20}, sh0)
	addr0, stop0 := startIntegrityServer(t, mgr)
	defer stop0()
	addr1, stop1 := startServer(t, sh1, nil)
	defer stop1()

	c0, err := Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	agg := NewAggregator([]*Client{c0, c1}, 5)
	if err := agg.EnableReplicaGroups([][]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	agg.EnableBreakers(3, time.Second)

	// Rot replica 0's copy before any traffic: flip a term frequency in
	// a queried term's postings and clear the verification memo (the
	// load-time pass already verified these blocks). With no service
	// measurements yet, ranking falls back to ID order, so the first
	// query leg goes to the corrupt replica — the hardest case.
	ti := findTerm(t, sh0, "ga")
	ti.BlockData(0)[0] ^= 1
	sh0.ResetVerification()

	// The query still succeeds — served by replica 1 — and never
	// includes a score computed from the flipped posting.
	res, err := agg.SearchExhaustive([]string{"ga", "gb"})
	if err != nil {
		t.Fatalf("query during corruption must fail over, got %v", err)
	}
	if len(res.Hits) != len(want.Hits) {
		t.Fatalf("failover: got %d hits, want %d", len(res.Hits), len(want.Hits))
	}
	for i := range res.Hits {
		if res.Hits[i] != want.Hits[i] {
			t.Fatalf("failover hit %d differs — corrupt posting leaked into scoring", i)
		}
	}

	// Server side quarantined itself; coordinator marked it too.
	if st := mgr.State(); st == integrity.Healthy {
		t.Fatal("server-side manager still Healthy after detection")
	}
	if !agg.clientQuarantined(0) {
		t.Fatal("coordinator did not quarantine replica 0")
	}
	if got := agg.rankShard(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rankShard = %v, want [1] while replica 0 is quarantined", got)
	}
	// Data fault, not node death: the breaker must not have moved.
	if st := agg.Breakers[0].State(); st != overload.Closed {
		t.Fatalf("breaker state = %v, want Closed (corruption is breaker-neutral)", st)
	}
	// Quarantined replica refuses to serve and says so on ping.
	if _, err := c0.Search([]string{"ga"}, 5, 0); !IsShardCorrupt(err) {
		t.Fatalf("direct search on quarantined replica: got %v, want ErrShardCorrupt", err)
	}
	q, err := c0.PingStatus()
	if err != nil || !q {
		t.Fatalf("PingStatus = (%v, %v), want (true, nil)", q, err)
	}

	// Repair from the healthy sibling over the wire. The fetched bytes
	// re-verify end-to-end before the swap.
	if err := mgr.Repair(time.Now().UnixMilli(), func() (*index.Shard, error) {
		return c1.FetchShard()
	}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if st := mgr.State(); st != integrity.Healthy {
		t.Fatalf("state after repair = %v, want Healthy", st)
	}
	if q, err := c0.PingStatus(); err != nil || q {
		t.Fatalf("PingStatus after repair = (%v, %v), want (false, nil)", q, err)
	}
	if _, err := c0.Search([]string{"ga"}, 5, 0); err != nil {
		t.Fatalf("repaired replica must serve again: %v", err)
	}

	// The prober notices the repaired copy and re-admits it.
	agg.StartProber(2 * time.Millisecond)
	defer agg.StopProber()
	deadline := time.Now().Add(2 * time.Second)
	for agg.clientQuarantined(0) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if agg.clientQuarantined(0) {
		t.Fatal("prober never re-admitted the repaired replica")
	}
	if got := agg.rankShard(0); len(got) != 2 {
		t.Fatalf("rankShard after readmit = %v, want both replicas", got)
	}
	snap := agg.IntegrityLedger().Snapshot()
	if snap.Repairs == 0 {
		t.Fatal("coordinator ledger recorded no repair")
	}
}
