package rpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cottage/internal/cluster"
	"cottage/internal/core"
	"cottage/internal/overload"
	"cottage/internal/search"
)

// Aggregator coordinates a set of remote ISNs over the wire: it fans
// queries out, gathers predictions, runs Algorithm 1, and merges the
// responses that arrive within the budget — the network counterpart of
// the simulated engine.
type Aggregator struct {
	Clients []*Client
	K       int
	// Ladder converts predicted cycles into the current/boosted
	// latencies Algorithm 1 compares. Remote DVFS is advisory here (the
	// demo processes share one machine), but the budget math is the real
	// thing.
	Ladder cluster.Ladder
	// DropZeroProb / K2ZeroProb mirror core.Cottage's calibrated cutoffs.
	DropZeroProb float64
	K2ZeroProb   float64
	// Degraded picks the budget policy when some ISNs fail to deliver a
	// prediction: exclude them from the optimization (default) or fall
	// back to the conservative max-boosted-latency budget so stragglers
	// that recover mid-query can still land their hits.
	Degraded core.DegradedMode
	// HedgeAfter, when positive, issues a second copy of a search request
	// on a fresh connection if the first has not answered within this
	// window; the first reply wins and the loser is cancelled. Zero
	// disables hedging.
	HedgeAfter time.Duration
	// Breakers, when set (EnableBreakers), holds one circuit breaker per
	// client. An ISN with an open breaker is skipped outright — counted
	// as a missing prediction and handled by degraded-mode Algorithm 1 —
	// instead of burning retry and hedge budget on a node that keeps
	// failing. Overload rejections never trip a breaker: a shedding ISN
	// is busy, not dead.
	Breakers []*overload.Breaker

	hedges          atomic.Uint64
	hedgeWins       atomic.Uint64
	hedgesCancelled atomic.Uint64
	prober          *Prober
}

// EnableBreakers attaches a circuit breaker to every client: open after
// threshold consecutive transport failures, half-open probe after
// cooldown. Call before concurrent use.
func (a *Aggregator) EnableBreakers(threshold int, cooldown time.Duration) {
	a.Breakers = make([]*overload.Breaker, len(a.Clients))
	for i := range a.Breakers {
		a.Breakers[i] = overload.NewBreaker(threshold, cooldown, nil)
	}
}

// breaker returns ISN i's breaker, or nil when breakers are disabled.
func (a *Aggregator) breaker(i int) *overload.Breaker {
	if i >= len(a.Breakers) {
		return nil
	}
	return a.Breakers[i]
}

// observeBreaker feeds one call's outcome into ISN i's breaker.
func (a *Aggregator) observeBreaker(i int, err error) {
	b := a.breaker(i)
	if b == nil {
		return
	}
	switch {
	case err == nil:
		b.OnSuccess()
	case IsOverloaded(err):
		// Shed by admission control: the ISN answered, so the transport
		// is healthy. Neither a success (the work didn't run) nor a
		// failure (the node isn't sick) — the breaker doesn't move.
	case IsTransient(err):
		b.OnFailure()
	default:
		// Application-level error: the server is up and talking.
		b.OnSuccess()
	}
}

// NewAggregator wires an aggregator over dialed clients.
func NewAggregator(clients []*Client, k int) *Aggregator {
	return &Aggregator{
		Clients:      clients,
		K:            k,
		Ladder:       cluster.DefaultLadder(),
		DropZeroProb: 0.8,
		K2ZeroProb:   0.95,
	}
}

// Stats is the aggregator's operational ledger.
type Stats struct {
	// Hedges counts second requests issued; HedgeWins how many answered
	// before the primary; HedgesCancelled how many were torn down because
	// the primary answered first.
	Hedges, HedgeWins, HedgesCancelled uint64
	// Retries sums transport-level retries across all clients.
	Retries uint64
}

// Stats snapshots the hedge/retry counters.
func (a *Aggregator) Stats() Stats {
	s := Stats{
		Hedges:          a.hedges.Load(),
		HedgeWins:       a.hedgeWins.Load(),
		HedgesCancelled: a.hedgesCancelled.Load(),
	}
	for _, c := range a.Clients {
		s.Retries += c.Retries()
	}
	return s
}

// Result is a distributed query's outcome.
type Result struct {
	Hits     []search.Hit
	BudgetMS float64
	Selected []int // ISN indices searched
	Cut      []int
	Elapsed  time.Duration
	// Failed lists ISNs that errored or timed out; their contributions
	// are missing from Hits (degraded but non-empty results, the
	// behaviour a production aggregator prefers over failing the query).
	Failed []int
}

// searchHedged runs one ISN's search leg, optionally hedging it with a
// duplicate request on a fresh connection after HedgeAfter. The fresh
// connection matters: a request queued behind a stuck stream on the
// shared client would inherit exactly the delay the hedge is trying to
// escape.
func (a *Aggregator) searchHedged(isn int, terms []string, deadline time.Duration) (search.Result, error) {
	primary := a.Clients[isn]
	if a.HedgeAfter <= 0 || primary.Addr() == "" {
		return primary.Search(terms, a.K, deadline)
	}
	type outcome struct {
		r     search.Result
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2) // buffered: abandoned legs must not leak
	go func() {
		r, err := primary.Search(terms, a.K, deadline)
		ch <- outcome{r, err, false}
	}()

	timer := time.NewTimer(a.HedgeAfter)
	defer timer.Stop()
	var hedge *Client
	inflight := 1
	hedgeDone := false

	var first outcome
	select {
	case first = <-ch:
		inflight--
	case <-timer.C:
		if hc, err := Dial(primary.Addr()); err == nil {
			hedge = hc
			hc.SetTimeout(primary.timeout)
			a.hedges.Add(1)
			inflight++
			go func() {
				r, err := hc.Search(terms, a.K, deadline)
				ch <- outcome{r, err, true}
			}()
		}
		first = <-ch
		inflight--
	}
	hedgeDone = hedgeDone || first.hedge

	if first.err != nil && inflight > 0 {
		// The fast leg failed; the slow one may still deliver.
		second := <-ch
		inflight--
		hedgeDone = hedgeDone || second.hedge
		if second.err == nil {
			first = second
		}
	}
	if hedge != nil {
		if !hedgeDone {
			// Primary won while the hedge is still in flight: closing the
			// hedge's private connection cancels it server-side. (When the
			// hedge wins, the primary's late reply is consumed and
			// discarded by its own still-blocked call.)
			a.hedgesCancelled.Add(1)
		}
		hedge.Close()
	}
	if first.err == nil && first.hedge {
		a.hedgeWins.Add(1)
	}
	return first.r, first.err
}

// SearchExhaustive queries every ISN with no budget and merges. Failed
// ISNs degrade the result (reported in Result.Failed) rather than failing
// the query; an error is returned only when every ISN fails.
func (a *Aggregator) SearchExhaustive(terms []string) (Result, error) {
	start := time.Now()
	lists := make([][]search.Hit, len(a.Clients))
	errs := make([]error, len(a.Clients))
	var wg sync.WaitGroup
	for i := range a.Clients {
		if b := a.breaker(i); b != nil && !b.Allow() {
			errs[i] = fmt.Errorf("isn %d: circuit open", i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := a.searchHedged(i, terms, 0)
			a.observeBreaker(i, err)
			if err != nil {
				errs[i] = fmt.Errorf("isn %d: %w", i, err)
				return
			}
			lists[i] = r.Hits
		}(i)
	}
	wg.Wait()
	res := Result{Elapsed: time.Since(start)}
	failures := 0
	for i, err := range errs {
		if err != nil {
			failures++
			res.Failed = append(res.Failed, i)
			continue
		}
		res.Selected = append(res.Selected, i)
	}
	if failures == len(a.Clients) {
		return Result{}, fmt.Errorf("rpc: all %d ISNs failed: %w", failures, errors.Join(errs...))
	}
	res.Hits = search.Merge(a.K, lists...)
	res.Elapsed = time.Since(start)
	return res, nil
}

// SearchCottage runs the full coordinated protocol: predict everywhere,
// determine the budget, search the selected ISNs with the budget as a
// deadline, and merge what returns. ISNs that fail either leg degrade
// the result (Result.Failed) instead of failing the query; prediction
// failures additionally feed Algorithm 1's degraded mode (a.Degraded).
func (a *Aggregator) SearchCottage(terms []string) (Result, error) {
	start := time.Now()
	// Steps 2-3: gather predictions in parallel. A failed prediction
	// (crash, timeout) is not the same as a clean "no match": the former
	// leaves the aggregator blind about a live shard and must flow into
	// the degraded-mode budget, the latter is an answered question.
	preds := make([]core.ISNReport, 0, len(a.Clients))
	predErrs := make([]error, len(a.Clients))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, c := range a.Clients {
		if b := a.breaker(i); b != nil && !b.Allow() {
			// Open breaker: skip the ISN entirely. It flows into the
			// degraded-mode budget as a missing prediction instead of
			// costing a timeout plus retries plus a hedge every query.
			predErrs[i] = fmt.Errorf("isn %d predict: circuit open", i)
			continue
		}
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			p, load, err := c.PredictLoad(terms)
			a.observeBreaker(i, err)
			if err != nil {
				predErrs[i] = fmt.Errorf("isn %d predict: %w", i, err)
				return
			}
			if !p.Matched {
				return
			}
			fdef, fmax := a.Ladder.Default(), a.Ladder.Max()
			r := core.ISNReport{
				ISN:        i,
				QK:         p.QK,
				QK2:        p.QK2,
				HasK:       p.PZeroK < a.DropZeroProb,
				HasK2:      p.PZeroK2 < a.K2ZeroProb,
				ExpQK:      p.ExpQK,
				LCurrent:   cluster.ServiceMS(p.Cycles, fdef),
				LBoosted:   cluster.ServiceMS(p.Cycles, fmax),
				PredCycles: p.Cycles,
			}
			// Eq. 2: correct the bare service-time predictions for the
			// work already queued at the ISN, measured live rather than
			// simulated. Queue-heavy ISNs now look as slow to Algorithm 1
			// as they actually are, so stage-1 cuts and the budget react
			// to real load.
			r.AddQueueBacklog(core.QueueBacklogMS(load.Depth, float64(load.AvgServiceUS)/1000))
			mu.Lock()
			preds = append(preds, r)
			mu.Unlock()
		}(i, c)
	}
	wg.Wait()

	res := Result{}
	missing := 0
	for i, err := range predErrs {
		if err != nil {
			missing++
			res.Failed = append(res.Failed, i)
		}
	}
	if missing == len(a.Clients) {
		return Result{}, fmt.Errorf("rpc: all %d ISNs failed prediction: %w",
			missing, errors.Join(predErrs...))
	}

	// Step 4: time budget determination, degraded if predictions are
	// missing.
	budget := core.DetermineBudgetDegraded(preds, missing, a.Ladder, core.BudgetOptions{}, a.Degraded)
	res.BudgetMS = budget.BudgetMS
	res.Cut = budget.Cut
	if len(budget.Selected) == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Steps 5-7: budget-bounded search on the selected ISNs.
	deadline := time.Duration(budget.BudgetMS * float64(time.Millisecond))
	lists := make([][]search.Hit, len(budget.Selected))
	for li, asg := range budget.Selected {
		res.Selected = append(res.Selected, asg.ISN)
		wg.Add(1)
		go func(li int, isn int) {
			defer wg.Done()
			r, err := a.searchHedged(isn, terms, deadline)
			a.observeBreaker(isn, err)
			if err != nil {
				// Straggler or failure: its hits are lost but the query
				// survives; record the gap so callers can see it.
				mu.Lock()
				res.Failed = append(res.Failed, isn)
				mu.Unlock()
				return
			}
			lists[li] = r.Hits
		}(li, asg.ISN)
	}
	wg.Wait()
	sort.Ints(res.Failed)
	res.Hits = search.Merge(a.K, lists...)
	res.Elapsed = time.Since(start)
	return res, nil
}
