package rpc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cottage/internal/cluster"
	"cottage/internal/core"
	"cottage/internal/integrity"
	"cottage/internal/obs"
	"cottage/internal/obs/anatomy"
	"cottage/internal/obs/slo"
	"cottage/internal/overload"
	"cottage/internal/replica"
	"cottage/internal/search"
)

// Aggregator coordinates a set of remote ISNs over the wire: it fans
// queries out, gathers predictions, runs Algorithm 1, and merges the
// responses that arrive within the budget — the network counterpart of
// the simulated engine.
type Aggregator struct {
	Clients []*Client
	K       int
	// Ladder converts predicted cycles into the current/boosted
	// latencies Algorithm 1 compares. Remote DVFS is advisory here (the
	// demo processes share one machine), but the budget math is the real
	// thing.
	Ladder cluster.Ladder
	// DropZeroProb / K2ZeroProb mirror core.Cottage's calibrated cutoffs.
	DropZeroProb float64
	K2ZeroProb   float64
	// Degraded picks the budget policy when some ISNs fail to deliver a
	// prediction: exclude them from the optimization (default) or fall
	// back to the conservative max-boosted-latency budget so stragglers
	// that recover mid-query can still land their hits.
	Degraded core.DegradedMode
	// HedgeAfter, when positive, issues a second copy of a search request
	// on a fresh connection if the first has not answered within this
	// window; the first reply wins and the loser is cancelled. Zero
	// disables hedging.
	HedgeAfter time.Duration
	// HedgePredictive switches hedging from fixed-delay timers to
	// predictor-driven: a search leg whose predicted queue-inclusive
	// latency (the Eq. 2-corrected LCurrent from the prediction round)
	// exceeds HedgeThresholdMS is hedged immediately at dispatch, and
	// unflagged legs are never hedged — no duplicate for requests the
	// predictor already expects to be fast. HedgeAfter is ignored in
	// this mode; legs without a prediction never hedge.
	HedgePredictive  bool
	HedgeThresholdMS float64
	// Anytime makes every budgeted search leg use the anytime traversal:
	// ISNs that would overrun the budget answer with an exact truncated
	// top-K and a score-bound certificate instead of erroring, and
	// Result.Truncated lists the shards that did. Set before use.
	Anytime bool
	// Breakers, when set (EnableBreakers), holds one circuit breaker per
	// client — per address, never per replica group, so a probe success
	// on one replica cannot half-close a sibling's breaker. An ISN with
	// an open breaker is skipped outright — counted as a missing
	// prediction and handled by degraded-mode Algorithm 1 — instead of
	// burning retry and hedge budget on a node that keeps failing. With
	// replica groups, "skipped" means the leg fails over to a sibling
	// first; only a whole group of open breakers degrades the shard.
	// Overload rejections never trip a breaker: a shedding ISN is busy,
	// not dead.
	Breakers []*overload.Breaker
	// Groups, when set (EnableReplicaGroups), maps each logical shard to
	// the client indices of its replicas. nil means the unreplicated
	// layout: client i is shard i's only copy.
	Groups [][]int
	// Obs, when set, records one trace per query (predict → budget →
	// search → merge, with the Algorithm 1 decision record and the
	// ISN-side spans grafted in), latency/budget histograms, and rolling
	// predictor accuracy. Set before concurrent use.
	Obs *obs.Observer
	// Anatomy, when set alongside Obs, receives every completed query's
	// per-phase latency attribution (registered on the observer's
	// registry at first use). Set before concurrent use.
	Anatomy *anatomy.Collector
	// SLO, when set, is fed every query's end-to-end latency and quality
	// signal (degraded = any failed or truncated shard) for burn-rate
	// alerting. Set before concurrent use.
	SLO *slo.QuerySLO

	hedges           obs.Counter
	hedgeWins        obs.Counter
	hedgesCancelled  obs.Counter
	failoversPredict obs.Counter
	failoversSearch  obs.Counter
	tracker          *replica.Tracker // per-client EWMA leg time (nil until EnableReplicaGroups)
	prober           *Prober
	qOnce            sync.Once
	quarantine       *integrity.Ledger // coordinator-side quarantine (lazy; see quarantine.go)

	obsOnce    sync.Once
	latCottage *obs.Histogram
	latExhaust *obs.Histogram
	budgetHist *obs.Histogram
}

// initObs registers the aggregator's metrics (idempotent, no-op without
// an observer). Hedge counters are adopted in place so Stats() and the
// registry read the same atomics.
func (a *Aggregator) initObs() {
	a.obsOnce.Do(func() {
		if a.Obs == nil {
			return
		}
		reg := a.Obs.Reg
		reg.Register("cottage_agg_hedges_total",
			"Hedged duplicate search requests issued.", &a.hedges)
		reg.Register("cottage_agg_hedge_wins_total",
			"Hedged requests that answered before the primary.", &a.hedgeWins)
		reg.Register("cottage_agg_hedges_cancelled_total",
			"Hedged requests torn down because the primary answered first.", &a.hedgesCancelled)
		reg.Register("cottage_agg_failovers_total",
			"Mid-query failovers to a sibling replica, by leg.",
			&a.failoversPredict, obs.L("leg", "predict"))
		reg.Register("cottage_agg_failovers_total",
			"Mid-query failovers to a sibling replica, by leg.",
			&a.failoversSearch, obs.L("leg", "search"))
		a.tracker.Register(reg)
		reg.GaugeFunc("cottage_agg_client_retries",
			"Transport-level retries summed across all ISN clients.",
			func() float64 {
				var sum uint64
				for _, c := range a.Clients {
					sum += c.Retries()
				}
				return float64(sum)
			})
		a.latCottage = reg.Histogram("cottage_agg_query_ms",
			"End-to-end query latency at the aggregator.",
			obs.LatencyBucketsMS(), obs.L("mode", "cottage"))
		a.latExhaust = reg.Histogram("cottage_agg_query_ms",
			"End-to-end query latency at the aggregator.",
			obs.LatencyBucketsMS(), obs.L("mode", "exhaustive"))
		a.budgetHist = reg.Histogram("cottage_agg_budget_ms",
			"Algorithm 1 time budget T per query (finite budgets only).",
			obs.LatencyBucketsMS())
		for i, b := range a.Breakers {
			if b != nil {
				b.Register(reg, obs.L("isn", strconv.Itoa(i)))
			}
		}
		if a.Anatomy != nil {
			a.Anatomy.Register(reg)
		}
	})
}

// EnableBreakers attaches a circuit breaker to every client: open after
// threshold consecutive transport failures, half-open probe after
// cooldown. Call before concurrent use.
func (a *Aggregator) EnableBreakers(threshold int, cooldown time.Duration) {
	a.Breakers = make([]*overload.Breaker, len(a.Clients))
	for i := range a.Breakers {
		a.Breakers[i] = overload.NewBreaker(threshold, cooldown, nil)
	}
}

// breaker returns ISN i's breaker, or nil when breakers are disabled.
func (a *Aggregator) breaker(i int) *overload.Breaker {
	if i >= len(a.Breakers) {
		return nil
	}
	return a.Breakers[i]
}

// observeBreaker feeds one call's outcome into ISN i's breaker.
func (a *Aggregator) observeBreaker(i int, err error) {
	b := a.breaker(i)
	if b == nil {
		return
	}
	switch {
	case err == nil:
		b.OnSuccess()
	case IsOverloaded(err):
		// Shed by admission control: the ISN answered, so the transport
		// is healthy. Neither a success (the work didn't run) nor a
		// failure (the node isn't sick) — the breaker doesn't move.
	case IsShardCorrupt(err):
		// The replica answered: transport healthy, data bad. Quarantine
		// (the coordinator ledger), not the breaker, takes it out of
		// rotation — opening the breaker too would double-penalize and
		// misattribute a data fault as node death.
	case IsCorruptFrame(err):
		// Bytes were mangled in transit and *detected*: the peer is
		// alive and a fresh connection is expected to be clean. A lying
		// wire is not a dead node, so the breaker stays put.
	case IsTransient(err):
		b.OnFailure()
	default:
		// Application-level error: the server is up and talking.
		b.OnSuccess()
	}
}

// NewAggregator wires an aggregator over dialed clients.
func NewAggregator(clients []*Client, k int) *Aggregator {
	return &Aggregator{
		Clients:      clients,
		K:            k,
		Ladder:       cluster.DefaultLadder(),
		DropZeroProb: 0.8,
		K2ZeroProb:   0.95,
	}
}

// Stats is the aggregator's operational ledger.
type Stats struct {
	// Hedges counts second requests issued; HedgeWins how many answered
	// before the primary; HedgesCancelled how many were torn down because
	// the primary answered first.
	Hedges, HedgeWins, HedgesCancelled uint64
	// FailoversPredict / FailoversSearch count mid-query retries on a
	// sibling replica, per leg kind.
	FailoversPredict, FailoversSearch uint64
	// Retries sums transport-level retries across all clients.
	Retries uint64
}

// Stats snapshots the hedge/retry counters.
func (a *Aggregator) Stats() Stats {
	s := Stats{
		Hedges:           a.hedges.Value(),
		HedgeWins:        a.hedgeWins.Value(),
		HedgesCancelled:  a.hedgesCancelled.Value(),
		FailoversPredict: a.failoversPredict.Value(),
		FailoversSearch:  a.failoversSearch.Value(),
	}
	for _, c := range a.Clients {
		s.Retries += c.Retries()
	}
	return s
}

// Result is a distributed query's outcome.
type Result struct {
	Hits     []search.Hit
	BudgetMS float64
	Selected []int // ISN indices searched
	Cut      []int
	Elapsed  time.Duration
	// Failed lists ISNs that errored or timed out; their contributions
	// are missing from Hits (degraded but non-empty results, the
	// behaviour a production aggregator prefers over failing the query).
	Failed []int
	// Truncated lists ISNs that answered with a deadline-terminated
	// anytime result: their hits are exact but possibly incomplete.
	Truncated []int
	// TraceID identifies the query's recorded trace (0 when the
	// aggregator has no observer); look it up in /debug/traces.
	TraceID uint64
}

// nowUS is the span clock for the live path.
func nowUS() int64 { return time.Now().UnixMicro() }

// hedgeFor returns the hedge timer for one shard's search leg: the
// fixed HedgeAfter delay in timer mode; in predictive mode, immediate
// (0) for legs whose predicted queue-inclusive latency crosses the
// threshold and disabled (-1) for everything else.
func (a *Aggregator) hedgeFor(predLCurrentMS float64, havePred bool) time.Duration {
	if a.HedgePredictive {
		if havePred && a.HedgeThresholdMS > 0 && predLCurrentMS > a.HedgeThresholdMS {
			return 0
		}
		return -1
	}
	if a.HedgeAfter > 0 {
		return a.HedgeAfter
	}
	return -1
}

// hedgeInfo reports what the hedging layer did for one search leg — the
// phase-attribution input: a won hedge's timer wait sat on the query's
// critical path.
type hedgeInfo struct {
	hedged bool  // a duplicate request was issued
	won    bool  // the duplicate's answer was used
	waitUS int64 // timer wait before the duplicate went out
}

// searchHedged runs one ISN's search leg, optionally hedging it with a
// duplicate request on a fresh connection after hedgeAfter (0 =
// duplicate immediately — predictive mode's flagged straggler; < 0 =
// never hedge). The fresh connection matters: a request queued behind
// a stuck stream on the shared client would inherit exactly the delay
// the hedge is trying to escape. Server-side spans from whichever leg
// won come back for grafting.
func (a *Aggregator) searchHedged(isn int, sc obs.SpanContext, terms []string, deadline, hedgeAfter time.Duration) (search.Result, []obs.Span, hedgeInfo, error) {
	var hi hedgeInfo
	primary := a.Clients[isn]
	if hedgeAfter < 0 || primary.Addr() == "" {
		r, spans, err := a.clientSearch(primary, sc, terms, deadline)
		return r, spans, hi, err
	}
	type outcome struct {
		r     search.Result
		spans []obs.Span
		err   error
		hedge bool
	}
	ch := make(chan outcome, 2) // buffered: abandoned legs must not leak
	go func() {
		r, spans, err := a.clientSearch(primary, sc, terms, deadline)
		ch <- outcome{r, spans, err, false}
	}()

	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	var hedge *Client
	inflight := 1
	hedgeDone := false

	var first outcome
	select {
	case first = <-ch:
		inflight--
	case <-timer.C:
		if hc, err := Dial(primary.Addr()); err == nil {
			hedge = hc
			hc.SetTimeout(primary.timeout)
			a.hedges.Inc()
			hi.hedged = true
			hi.waitUS = hedgeAfter.Microseconds()
			inflight++
			go func() {
				r, spans, err := a.clientSearch(hc, sc, terms, deadline)
				ch <- outcome{r, spans, err, true}
			}()
		}
		first = <-ch
		inflight--
	}
	hedgeDone = hedgeDone || first.hedge

	if first.err != nil && inflight > 0 {
		// The fast leg failed; the slow one may still deliver.
		second := <-ch
		inflight--
		hedgeDone = hedgeDone || second.hedge
		if second.err == nil {
			first = second
		}
	}
	if hedge != nil {
		if !hedgeDone {
			// Primary won while the hedge is still in flight: closing the
			// hedge's private connection cancels it server-side. (When the
			// hedge wins, the primary's late reply is consumed and
			// discarded by its own still-blocked call.)
			a.hedgesCancelled.Inc()
		}
		hedge.Close()
	}
	if first.err == nil && first.hedge {
		a.hedgeWins.Inc()
		hi.won = true
	}
	return first.r, first.spans, hi, first.err
}

// clientSearch issues one search round trip on c, anytime-flagged when
// the aggregator is in anytime mode.
func (a *Aggregator) clientSearch(c *Client, sc obs.SpanContext, terms []string, deadline time.Duration) (search.Result, []obs.Span, error) {
	if a.Anytime {
		return c.SearchAnytime(sc, terms, a.K, deadline)
	}
	return c.SearchSpan(sc, terms, a.K, deadline)
}

// finishTrace seals and records a query's trace, stamping its ID into
// the result and feeding the phase-attribution collector. No-op without
// an observer (nil builder).
func (a *Aggregator) finishTrace(tb *obs.TraceBuilder, root *obs.ActiveSpan, res *Result) {
	if tb == nil {
		return
	}
	root.End(nowUS())
	tr := tb.Finish()
	a.Obs.AddTrace(tr)
	res.TraceID = tr.ID
	if a.Anatomy != nil {
		if attr, ok := anatomy.FromTrace(tr); ok {
			a.Anatomy.Observe(attr)
		}
	}
}

// observeSLO feeds one completed query into the burn-rate monitor:
// latency from the measured elapsed time, quality degraded when any
// shard's hits are missing (failed) or truncated. Call it after
// finishTrace, so a page triggered by this query finds its trace
// already in the flight recorder.
func (a *Aggregator) observeSLO(res *Result) {
	if a.SLO == nil {
		return
	}
	degraded := len(res.Failed) > 0 || len(res.Truncated) > 0
	a.SLO.ObserveQuery(float64(res.Elapsed.Microseconds())/1000, degraded)
}

// SearchExhaustive queries every ISN with no budget and merges. Failed
// ISNs degrade the result (reported in Result.Failed) rather than failing
// the query; an error is returned only when every ISN fails.
func (a *Aggregator) SearchExhaustive(terms []string) (Result, error) {
	a.initObs()
	start := time.Now()
	var tb *obs.TraceBuilder
	if a.Obs != nil {
		tb = obs.NewTraceBuilder(start.UnixMicro())
	}
	root := tb.StartSpan("query", 0, start.UnixMicro())
	root.SetAttr("mode", "exhaustive")
	root.SetAttr("terms", strings.Join(terms, " "))

	searchSpan := tb.StartSpan("search", root.ID(), nowUS())
	shards := a.Shards()
	lists := make([][]search.Hit, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			leg := a.searchShard(s, tb, searchSpan, terms, 0, a.hedgeFor(0, false))
			if leg.err != nil {
				errs[s] = leg.err
				return
			}
			lists[s] = leg.hits
		}(s)
	}
	wg.Wait()
	searchSpan.End(nowUS())
	res := Result{}
	failures := 0
	for s, err := range errs {
		if err != nil {
			failures++
			res.Failed = append(res.Failed, s)
			continue
		}
		res.Selected = append(res.Selected, s)
	}
	if failures == shards {
		return Result{}, fmt.Errorf("rpc: all %d shards failed: %w", failures, errors.Join(errs...))
	}
	mergeSpan := tb.StartSpan("merge", root.ID(), nowUS())
	res.Hits = search.Merge(a.K, lists...)
	mergeSpan.End(nowUS())
	res.Elapsed = time.Since(start)
	if h := a.latExhaust; h != nil {
		h.Observe(float64(res.Elapsed.Microseconds()) / 1000)
	}
	a.finishTrace(tb, root, &res)
	a.observeSLO(&res)
	return res, nil
}

// SearchCottage runs the full coordinated protocol: predict everywhere,
// determine the budget, search the selected ISNs with the budget as a
// deadline, and merge what returns. ISNs that fail either leg degrade
// the result (Result.Failed) instead of failing the query; prediction
// failures additionally feed Algorithm 1's degraded mode (a.Degraded).
//
// With an observer attached, every query records a trace — root span
// with predict/budget/search/merge children, per-ISN legs, the grafted
// ISN-side serve spans, and the Algorithm 1 decision record on the
// budget span — and feeds the predictor-accuracy tracker with each
// selected ISN's predicted vs. measured latency and top-K contribution.
func (a *Aggregator) SearchCottage(terms []string) (Result, error) {
	a.initObs()
	start := time.Now()
	var tb *obs.TraceBuilder
	if a.Obs != nil {
		tb = obs.NewTraceBuilder(start.UnixMicro())
	}
	root := tb.StartSpan("query", 0, start.UnixMicro())
	root.SetAttr("mode", "cottage")
	root.SetAttr("terms", strings.Join(terms, " "))

	// Steps 2-3: gather predictions in parallel. A failed prediction
	// (crash, timeout) is not the same as a clean "no match": the former
	// leaves the aggregator blind about a live shard and must flow into
	// the degraded-mode budget, the latter is an answered question.
	predictSpan := tb.StartSpan("predict", root.ID(), nowUS())
	shards := a.Shards()
	preds := make([]core.ISNReport, 0, shards)
	predErrs := make([]error, shards)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// The whole replica group answers one leg: the best live
			// replica first, siblings on failover. Only a group-wide
			// failure (every breaker open, every replica erroring) leaves
			// the shard a missing prediction for degraded-mode Algorithm 1.
			pl := a.predictShard(s, tb, predictSpan, terms)
			if pl.err != nil {
				predErrs[s] = pl.err
				return
			}
			if !pl.pred.Matched {
				return
			}
			p := pl.pred
			fdef, fmax := a.Ladder.Default(), a.Ladder.Max()
			r := core.ISNReport{
				ISN:        s,
				QK:         p.QK,
				QK2:        p.QK2,
				HasK:       p.PZeroK < a.DropZeroProb,
				HasK2:      p.PZeroK2 < a.K2ZeroProb,
				ExpQK:      p.ExpQK,
				LCurrent:   cluster.ServiceMS(p.Cycles, fdef),
				LBoosted:   cluster.ServiceMS(p.Cycles, fmax),
				PredCycles: p.Cycles,
				RawCycles:  p.Cycles,
				Replica:    pl.row,
			}
			// Eq. 2: correct the bare service-time predictions for the
			// work already queued at the ISN, measured live rather than
			// simulated. Queue-heavy ISNs now look as slow to Algorithm 1
			// as they actually are, so stage-1 cuts and the budget react
			// to real load. The backlog is the serving replica's own —
			// predictions from whichever replica answered feed the budget
			// unchanged, since replicas agree on Q^K/Q^{K/2}.
			r.AddQueueBacklog(core.QueueBacklogMS(pl.load.Depth, float64(pl.load.AvgServiceUS)/1000))
			mu.Lock()
			preds = append(preds, r)
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	predictSpan.End(nowUS())

	res := Result{}
	var missing []int
	for s, err := range predErrs {
		if err != nil {
			missing = append(missing, s)
			res.Failed = append(res.Failed, s)
		}
	}
	if len(missing) == shards {
		root.SetAttr("error", "all predictions failed")
		a.finishTrace(tb, root, &res)
		return Result{}, fmt.Errorf("rpc: all %d shards failed prediction: %w",
			len(missing), errors.Join(predErrs...))
	}

	// Step 4: time budget determination, degraded if predictions are
	// missing.
	budgetSpan := tb.StartSpan("budget", root.ID(), nowUS())
	budget := core.DetermineBudgetDegraded(preds, len(missing), a.Ladder, core.BudgetOptions{}, a.Degraded)
	var rec *obs.DecisionRecord
	if a.Obs != nil {
		rec = core.NewDecisionRecord(budget, preds, missing, a.Degraded, a.Ladder)
		budgetSpan.SetDecision(rec)
	}
	budgetSpan.End(nowUS())
	res.BudgetMS = budget.BudgetMS
	res.Cut = budget.Cut
	if len(budget.Selected) == 0 {
		res.Elapsed = time.Since(start)
		a.finishTrace(tb, root, &res)
		a.observeSLO(&res)
		return res, nil
	}

	// Steps 5-7: budget-bounded search on the selected shards, each leg
	// failing over within its replica group before giving up. Predictive
	// hedging reads each shard's queue-corrected latency prediction: a
	// leg already expected to straggle gets its duplicate at dispatch,
	// the rest are never hedged.
	lcurByShard := make(map[int]float64, len(preds))
	for _, r := range preds {
		lcurByShard[r.ISN] = r.LCurrent
	}
	searchSpan := tb.StartSpan("search", root.ID(), nowUS())
	deadline := time.Duration(budget.BudgetMS * float64(time.Millisecond))
	lists := make([][]search.Hit, len(budget.Selected))
	legs := make([]searchLeg, len(budget.Selected))
	for li, asg := range budget.Selected {
		res.Selected = append(res.Selected, asg.ISN)
		lcur, havePred := lcurByShard[asg.ISN]
		hedge := a.hedgeFor(lcur, havePred)
		wg.Add(1)
		go func(li int, shard int) {
			defer wg.Done()
			leg := a.searchShard(shard, tb, searchSpan, terms, deadline, hedge)
			legs[li] = leg
			if leg.err != nil {
				// Straggler or group-wide failure: its hits are lost but
				// the query survives; record the gap so callers can see it.
				mu.Lock()
				res.Failed = append(res.Failed, shard)
				mu.Unlock()
				return
			}
			lists[li] = leg.hits
		}(li, asg.ISN)
	}
	wg.Wait()
	searchSpan.End(nowUS())
	sort.Ints(res.Failed)

	// Anytime legs that hit the budget: exact-but-partial answers. They
	// are recorded on the result, and — when tracing — folded back into
	// the decision record after the fact (the search legs, not Algorithm
	// 1, discover truncation).
	for li, asg := range budget.Selected {
		leg := legs[li]
		if leg.err != nil || !leg.terminated {
			continue
		}
		res.Truncated = append(res.Truncated, asg.ISN)
		if rec == nil {
			continue
		}
		rec.Truncated = append(rec.Truncated, asg.ISN)
		for ri := range rec.Reports {
			if rec.Reports[ri].ISN == asg.ISN {
				rec.Reports[ri].Truncated = true
				rec.Reports[ri].ScoreBound = leg.bound
			}
		}
	}
	sort.Ints(res.Truncated)

	mergeSpan := tb.StartSpan("merge", root.ID(), nowUS())
	res.Hits = search.Merge(a.K, lists...)
	mergeSpan.End(nowUS())
	res.Elapsed = time.Since(start)

	if a.Obs != nil {
		// Predictor accuracy (Fig. 5–7, live): each surviving leg scores
		// its ISN's latency prediction (equivalent latency vs. measured
		// leg wall time, both queue-inclusive) and its quality call
		// (predicted top-K contribution vs. whether the ISN actually
		// placed a hit in the merged top K).
		top := search.DocSet(res.Hits)
		byShard := make(map[int]core.ISNReport, len(preds))
		for _, r := range preds {
			byShard[r.ISN] = r
		}
		for li, asg := range budget.Selected {
			leg := legs[li]
			if leg.err != nil || leg.client < 0 {
				continue
			}
			r, haveReport := byShard[asg.ISN]
			if !haveReport {
				continue
			}
			// Accuracy is keyed by the client that served the leg (the
			// selector's per-replica quality signal); on unreplicated
			// fleets client index == shard index, as before.
			a.Obs.Acc.ObserveLatency(leg.client, r.LCurrent, leg.ms)
			contributed := search.Overlap(lists[li], top) > 0
			a.Obs.Acc.ObserveQuality(leg.client, r.HasK, contributed)
		}
		a.latCottage.Observe(float64(res.Elapsed.Microseconds()) / 1000)
		if !math.IsInf(budget.BudgetMS, 1) {
			a.budgetHist.Observe(budget.BudgetMS)
		}
	}
	a.finishTrace(tb, root, &res)
	a.observeSLO(&res)
	return res, nil
}
