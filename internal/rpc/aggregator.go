package rpc

import (
	"fmt"
	"sync"
	"time"

	"cottage/internal/cluster"
	"cottage/internal/core"
	"cottage/internal/search"
)

// Aggregator coordinates a set of remote ISNs over the wire: it fans
// queries out, gathers predictions, runs Algorithm 1, and merges the
// responses that arrive within the budget — the network counterpart of
// the simulated engine.
type Aggregator struct {
	Clients []*Client
	K       int
	// Ladder converts predicted cycles into the current/boosted
	// latencies Algorithm 1 compares. Remote DVFS is advisory here (the
	// demo processes share one machine), but the budget math is the real
	// thing.
	Ladder cluster.Ladder
	// DropZeroProb / K2ZeroProb mirror core.Cottage's calibrated cutoffs.
	DropZeroProb float64
	K2ZeroProb   float64
}

// NewAggregator wires an aggregator over dialed clients.
func NewAggregator(clients []*Client, k int) *Aggregator {
	return &Aggregator{
		Clients:      clients,
		K:            k,
		Ladder:       cluster.DefaultLadder(),
		DropZeroProb: 0.8,
		K2ZeroProb:   0.95,
	}
}

// Result is a distributed query's outcome.
type Result struct {
	Hits     []search.Hit
	BudgetMS float64
	Selected []int // ISN indices searched
	Cut      []int
	Elapsed  time.Duration
	// Failed lists ISNs that errored or timed out; their contributions
	// are missing from Hits (degraded but non-empty results, the
	// behaviour a production aggregator prefers over failing the query).
	Failed []int
}

// SearchExhaustive queries every ISN with no budget and merges. Failed
// ISNs degrade the result (reported in Result.Failed) rather than failing
// the query; an error is returned only when every ISN fails.
func (a *Aggregator) SearchExhaustive(terms []string) (Result, error) {
	start := time.Now()
	lists := make([][]search.Hit, len(a.Clients))
	errs := make([]error, len(a.Clients))
	var wg sync.WaitGroup
	for i, c := range a.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			r, err := c.Search(terms, a.K, 0)
			if err != nil {
				errs[i] = err
				return
			}
			lists[i] = r.Hits
		}(i, c)
	}
	wg.Wait()
	res := Result{Elapsed: time.Since(start)}
	failures := 0
	for i, err := range errs {
		if err != nil {
			failures++
			res.Failed = append(res.Failed, i)
			continue
		}
		res.Selected = append(res.Selected, i)
	}
	if failures == len(a.Clients) {
		return Result{}, fmt.Errorf("rpc: all %d ISNs failed; first error: %w", failures, firstErr(errs))
	}
	res.Hits = search.Merge(a.K, lists...)
	res.Elapsed = time.Since(start)
	return res, nil
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SearchCottage runs the full coordinated protocol: predict everywhere,
// determine the budget, search the selected ISNs with the budget as a
// deadline, and merge what returns.
func (a *Aggregator) SearchCottage(terms []string) (Result, error) {
	start := time.Now()
	// Steps 2-3: gather predictions in parallel.
	preds := make([]core.ISNReport, 0, len(a.Clients))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, c := range a.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			p, err := c.Predict(terms)
			if err != nil || !p.Matched {
				return
			}
			fdef, fmax := a.Ladder.Default(), a.Ladder.Max()
			r := core.ISNReport{
				ISN:        i,
				QK:         p.QK,
				QK2:        p.QK2,
				HasK:       p.PZeroK < a.DropZeroProb,
				HasK2:      p.PZeroK2 < a.K2ZeroProb,
				ExpQK:      p.ExpQK,
				LCurrent:   cluster.ServiceMS(p.Cycles, fdef),
				LBoosted:   cluster.ServiceMS(p.Cycles, fmax),
				PredCycles: p.Cycles,
			}
			mu.Lock()
			preds = append(preds, r)
			mu.Unlock()
		}(i, c)
	}
	wg.Wait()

	// Step 4: time budget determination.
	budget := core.DetermineBudget(preds, a.Ladder, core.BudgetOptions{})
	res := Result{BudgetMS: budget.BudgetMS, Cut: budget.Cut}
	if len(budget.Selected) == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Steps 5-7: budget-bounded search on the selected ISNs.
	deadline := time.Duration(budget.BudgetMS * float64(time.Millisecond))
	lists := make([][]search.Hit, len(budget.Selected))
	for li, asg := range budget.Selected {
		res.Selected = append(res.Selected, asg.ISN)
		wg.Add(1)
		go func(li int, isn int) {
			defer wg.Done()
			r, err := a.Clients[isn].Search(terms, a.K, deadline)
			if err != nil {
				return // straggler or failure: dropped at merge
			}
			lists[li] = r.Hits
		}(li, asg.ISN)
	}
	wg.Wait()
	res.Hits = search.Merge(a.K, lists...)
	res.Elapsed = time.Since(start)
	return res, nil
}
