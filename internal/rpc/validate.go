package rpc

import (
	"errors"
	"fmt"
)

// Validation bounds for decodable-but-absurd requests. A request can
// pass the gob decoder and still be garbage — a fuzzer-mangled K of two
// billion, a thousand terms, a megabyte "term" — and each of those
// would trigger allocation-heavy index work before failing naturally.
// ValidateRequest rejects them up front, before admission control and
// before any evaluation.
const (
	// MaxK bounds results-per-query; no shard here has 10k docs worth
	// of meaningful top-K.
	MaxK = 10_000
	// MaxTerms bounds query length.
	MaxTerms = 64
	// MaxTermLen bounds a single term's bytes.
	MaxTermLen = 1024
)

// ErrBadRequest is the typed cause wrapped by every validation failure,
// so callers can errors.Is against it without string matching.
var ErrBadRequest = errors.New("rpc: bad request")

// ValidateRequest checks a decoded Request against the sanity bounds.
// K bounds apply only to kinds that return results (search, phrase):
// KindPredict and KindPing legitimately carry K == 0.
func ValidateRequest(req *Request) error {
	switch req.Kind {
	case KindSearch, KindPhrase:
		if req.K <= 0 {
			return fmt.Errorf("%w: K=%d, must be positive", ErrBadRequest, req.K)
		}
		if req.K > MaxK {
			return fmt.Errorf("%w: K=%d exceeds limit %d", ErrBadRequest, req.K, MaxK)
		}
	case KindPredict, KindPing, KindFetchShard:
	default:
		return fmt.Errorf("%w: unknown request kind %d", ErrBadRequest, req.Kind)
	}
	if len(req.Terms) > MaxTerms {
		return fmt.Errorf("%w: %d terms exceeds limit %d", ErrBadRequest, len(req.Terms), MaxTerms)
	}
	for i, t := range req.Terms {
		if len(t) > MaxTermLen {
			return fmt.Errorf("%w: term %d is %d bytes, limit %d", ErrBadRequest, i, len(t), MaxTermLen)
		}
	}
	if req.DeadlineUS < 0 {
		return fmt.Errorf("%w: negative deadline %d", ErrBadRequest, req.DeadlineUS)
	}
	return nil
}
