package rpc

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cottage/internal/faults"
	"cottage/internal/overload"
	"cottage/internal/search"
)

func TestValidateRequest(t *testing.T) {
	longTerm := strings.Repeat("x", MaxTermLen+1)
	manyTerms := make([]string, MaxTerms+1)
	for i := range manyTerms {
		manyTerms[i] = "t"
	}
	cases := []struct {
		name string
		req  Request
		ok   bool
	}{
		{"search ok", Request{Kind: KindSearch, Terms: []string{"ga"}, K: 10}, true},
		{"phrase ok", Request{Kind: KindPhrase, Terms: []string{"a", "b"}, K: 5}, true},
		{"ping with zero K", Request{Kind: KindPing}, true},
		{"predict with zero K", Request{Kind: KindPredict, Terms: []string{"ga"}}, true},
		{"search zero K", Request{Kind: KindSearch, Terms: []string{"ga"}}, false},
		{"search negative K", Request{Kind: KindSearch, Terms: []string{"ga"}, K: -3}, false},
		{"phrase zero K", Request{Kind: KindPhrase, Terms: []string{"ga"}}, false},
		{"absurd K", Request{Kind: KindSearch, Terms: []string{"ga"}, K: MaxK + 1}, false},
		{"max K ok", Request{Kind: KindSearch, Terms: []string{"ga"}, K: MaxK}, true},
		{"too many terms", Request{Kind: KindPredict, Terms: manyTerms}, false},
		{"giant term", Request{Kind: KindSearch, Terms: []string{longTerm}, K: 5}, false},
		{"negative deadline", Request{Kind: KindSearch, Terms: []string{"ga"}, K: 5, DeadlineUS: -1}, false},
		{"unknown kind", Request{Kind: Kind(99), K: 5}, false},
	}
	for _, c := range cases {
		err := ValidateRequest(&c.req)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok {
			if err == nil {
				t.Errorf("%s: expected rejection", c.name)
			} else if !errors.Is(err, ErrBadRequest) {
				t.Errorf("%s: error %v not wrapped in ErrBadRequest", c.name, err)
			}
		}
	}
}

// TestBadRequestOverWire: a validation failure is an application error —
// not retried, and the connection survives for the next request.
func TestBadRequestOverWire(t *testing.T) {
	sh := buildShard(t, 31)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Search([]string{"ga"}, 0, 0) // K=0: rejected server-side
	if err == nil {
		t.Fatal("absurd request should be rejected")
	}
	if IsTransient(err) {
		t.Fatalf("validation failure must not be transient (got %v)", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection broken after bad request: %v", err)
	}
	if _, err := c.Search([]string{"ga"}, 5, 0); err != nil {
		t.Fatalf("valid search after bad request: %v", err)
	}
}

// TestServerShedsWhenSaturated: with every slot held and no queue, a
// search comes back ErrOverloaded without marking the connection broken
// or counting as served.
func TestServerShedsWhenSaturated(t *testing.T) {
	sh := buildShard(t, 32)
	lim := overload.NewLimiter(1, 0, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore, Limit: lim}
	go srv.Serve(l)
	defer l.Close()

	if err := lim.Acquire(0); err != nil { // hold the only slot
		t.Fatal(err)
	}
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Search([]string{"ga"}, 5, 0)
	if !IsOverloaded(err) {
		t.Fatalf("saturated server returned %v, want ErrOverloaded", err)
	}
	if !IsTransient(err) {
		t.Fatal("overload must be transient (retryable), not an app error")
	}
	if c.Broken() {
		t.Fatal("overload response must not break the connection")
	}
	if got := srv.Shed(); got != 1 {
		t.Fatalf("server shed counter = %d, want 1", got)
	}
	if got := srv.Served(); got != 0 {
		t.Fatalf("server served counter = %d, want 0", got)
	}

	lim.Release()
	if _, err := c.Search([]string{"ga"}, 5, 0); err != nil {
		t.Fatalf("search after release: %v", err)
	}
	if got := srv.Served(); got != 1 {
		t.Fatalf("served counter = %d, want 1", got)
	}
}

// TestOverloadedRetriesAndSucceeds: the client's retry loop absorbs a
// transient overload — shed first, admitted on a later attempt.
func TestOverloadedRetriesAndSucceeds(t *testing.T) {
	sh := buildShard(t, 33)
	lim := overload.NewLimiter(1, 0, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore, Limit: lim}
	go srv.Serve(l)
	defer l.Close()

	if err := lim.Acquire(0); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		lim.Release()
	}()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{Max: 8, Backoff: 5 * time.Millisecond})
	if _, err := c.Search([]string{"ga"}, 5, 0); err != nil {
		t.Fatalf("retries should outlast the overload: %v", err)
	}
	if c.Retries() == 0 {
		t.Fatal("expected at least one retry")
	}
}

// TestQueuedRequestServedInOrder: with queue capacity, a request issued
// against a saturated server waits (instead of being shed) and is served
// once the slot frees — no retry needed.
func TestQueuedRequestServedInOrder(t *testing.T) {
	sh := buildShard(t, 34)
	lim := overload.NewLimiter(1, 4, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore, Limit: lim}
	go srv.Serve(l)
	defer l.Close()

	if err := lim.Acquire(0); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		lim.Release()
	}()
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Search([]string{"ga"}, 5, 0); err != nil {
		t.Fatalf("queued search failed: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("request should have waited in the admission queue")
	}
	if c.Retries() != 0 {
		t.Fatal("queued admission must not burn retries")
	}
}

// TestShutdownDrains: Shutdown waits for the in-flight request (a
// fault-injected slow prediction) to finish, Serve returns nil, and the
// in-flight caller still gets its response.
func TestShutdownDrains(t *testing.T) {
	sh := buildShard(t, 35)
	inj := faults.NewInjector(7)
	inj.SetPlan(0, faults.Plan{SlowMS: 250})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore, Faults: inj, FaultISN: 0}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	predictDone := make(chan error, 1)
	go func() {
		_, err := c.Predict([]string{"ga"}) // ~250ms in-flight, then app error (no model)
		predictDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the predict reach the server

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("Shutdown returned in %v, should have drained the in-flight request", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve after Shutdown = %v, want nil", err)
	}
	err = <-predictDone
	if err == nil || IsTransient(err) {
		t.Fatalf("in-flight predict should drain to its (application) response, got %v", err)
	}
	// New connections are refused after shutdown.
	if c2, err := Dial(l.Addr().String()); err == nil {
		c2.Close()
		t.Fatal("dial after Shutdown should fail")
	}
}

// TestShutdownForceClosesOnExpiredContext: a request slower than the
// drain window is cut off and Shutdown reports the context error.
func TestShutdownForceClosesOnExpiredContext(t *testing.T) {
	sh := buildShard(t, 36)
	inj := faults.NewInjector(8)
	inj.SetPlan(0, faults.Plan{SlowMS: 2000})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore, Faults: inj, FaultISN: 0}
	go srv.Serve(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Predict([]string{"ga"}) //nolint:errcheck // response is cut off by design
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

// tempErr satisfies net.Error with Temporary() == true.
type tempErr struct{}

func (tempErr) Error() string   { return "temporary accept failure" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// flakyListener fails its first N Accepts with a temporary error.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
}

func (f *flakyListener) Accept() (net.Conn, error) {
	f.mu.Lock()
	if f.fails > 0 {
		f.fails--
		f.mu.Unlock()
		return nil, tempErr{}
	}
	f.mu.Unlock()
	return f.Listener.Accept()
}

// TestServeRetriesTemporaryAcceptErrors: transient Accept failures are
// backed off and retried; the server keeps serving, and Shutdown still
// ends Serve with nil.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	sh := buildShard(t, 37)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &flakyListener{Listener: inner, fails: 3}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	c, err := Dial(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server should survive temporary accept errors: %v", err)
	}
	l.mu.Lock()
	remaining := l.fails
	l.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("%d temporary errors not consumed", remaining)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve = %v, want nil after Shutdown", err)
	}
}

// TestOverloadStress drives a saturated server from concurrent clients
// (run under -race via `make race`): every request is either served or
// shed — none lost, none double-served — and the handler goroutines all
// exit afterwards (no pile-up).
func TestOverloadStress(t *testing.T) {
	sh := buildShard(t, 38)
	lim := overload.NewLimiter(2, 2, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: sh, Strategy: search.StrategyMaxScore, Limit: lim}
	go srv.Serve(l)

	baseline := runtime.NumGoroutine()
	const clients = 8
	const perClient = 30
	var ok, overloaded atomic64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				_, err := c.Search([]string{"ga", "gb"}, 5, 0)
				switch {
				case err == nil:
					ok.add(1)
				case IsOverloaded(err):
					overloaded.add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := ok.load() + overloaded.load()
	if total != clients*perClient {
		t.Fatalf("%d responses for %d requests (lost or duplicated)", total, clients*perClient)
	}
	if srv.Served() != ok.load() {
		t.Fatalf("server served %d, clients saw %d successes", srv.Served(), ok.load())
	}
	if srv.Shed() != overloaded.load() {
		t.Fatalf("server shed %d, clients saw %d overloads", srv.Shed(), overloaded.load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after stress: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+4 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine pile-up: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := lim.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("limiter not drained after stress: %+v", st)
	}
}

// TestExhaustiveSkipsOpenBreaker: an ISN with an open breaker is skipped
// outright — reported failed, no time burned dialing it — and the other
// ISNs still answer.
func TestExhaustiveSkipsOpenBreaker(t *testing.T) {
	sh := buildShard(t, 39)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	ca, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb := Offline("127.0.0.1:1") // never reachable
	agg := NewAggregator([]*Client{ca, cb}, 10)
	agg.EnableBreakers(1, time.Minute)
	agg.Breakers[1].OnFailure() // force ISN 1's breaker open

	start := time.Now()
	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", res.Failed)
	}
	if len(res.Hits) == 0 {
		t.Fatal("healthy ISN should still deliver hits")
	}
	// Skipping must be immediate — no dial timeout burned on ISN 1.
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("open breaker should short-circuit, not dial")
	}
}

// TestBreakerOpensAndProberRevives is the full recovery loop: transport
// failures open the breaker, the dead ISN restarts, and the background
// prober revives it within a probe interval — after which queries stop
// reporting it failed.
func TestBreakerOpensAndProberRevives(t *testing.T) {
	shA := buildShard(t, 40)
	shB := buildShard(t, 41)
	addrA, stopA := startServer(t, shA, nil)
	defer stopA()
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvB := &Server{Shard: shB, Strategy: search.StrategyMaxScore}
	go srvB.Serve(lB)
	addrB := lB.Addr().String()

	ca, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()
	for _, c := range []*Client{ca, cb} {
		c.SetTimeout(time.Second)
	}
	agg := NewAggregator([]*Client{ca, cb}, 10)
	agg.EnableBreakers(2, 50*time.Millisecond)

	// Kill B; two failed fan-outs trip its breaker.
	lB.Close()
	cb.Close()
	for i := 0; i < 2; i++ {
		if _, err := agg.SearchExhaustive([]string{"ga"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := agg.Breakers[1].State(); st != overload.Open {
		t.Fatalf("breaker state = %v, want open after consecutive failures", st)
	}

	// Restart B on the same address and let the prober bring it back.
	lB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addrB, err)
	}
	defer lB2.Close()
	go (&Server{Shard: shB, Strategy: search.StrategyMaxScore}).Serve(lB2)

	prober := agg.StartProber(25 * time.Millisecond)
	defer agg.StopProber()
	deadline := time.Now().Add(3 * time.Second)
	for agg.Breakers[1].State() != overload.Closed {
		if time.Now().After(deadline) {
			t.Fatal("prober did not revive the restarted ISN")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, revived := prober.Stats(); revived == 0 {
		t.Fatal("prober stats should count the revival")
	}
	res, err := agg.SearchExhaustive([]string{"ga"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("revived fleet still reports failures: %v", res.Failed)
	}
}

// TestPredictCarriesQueueDepth: KindPredict responses report the
// admission queue's occupancy, which the aggregator folds into Eq. 2.
func TestPredictCarriesQueueDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("trains predictors")
	}
	shards, fleet, qs := distributedFixture(t)
	lim := overload.NewLimiter(4, 8, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Shard: shards[0], Pred: fleet.Predictors[0],
		Strategy: search.StrategyMaxScore, Limit: lim}
	go srv.Serve(l)
	defer l.Close()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	terms := qs[0].Terms

	// Idle: no backlog reported.
	_, load, err := c.PredictLoad(terms)
	if err != nil {
		t.Fatal(err)
	}
	if load.Depth != 0 {
		t.Fatalf("idle queue depth = %d, want 0", load.Depth)
	}

	// A served search seeds the service-time EWMA.
	if _, err := c.Search(terms, 10, 0); err != nil {
		t.Fatal(err)
	}

	// Hold two slots: depth 2 must be visible to the next predict.
	for i := 0; i < 2; i++ {
		if err := lim.Acquire(0); err != nil {
			t.Fatal(err)
		}
	}
	_, load, err = c.PredictLoad(terms)
	if err != nil {
		t.Fatal(err)
	}
	if load.Depth != 2 {
		t.Fatalf("queue depth = %d, want 2", load.Depth)
	}
	if load.AvgServiceUS <= 0 {
		t.Fatalf("avg service = %d, want positive after a served search", load.AvgServiceUS)
	}
	lim.Release()
	lim.Release()
}

// atomic64 is a tiny counter for the stress test (keeps the imports
// honest without pulling in sync/atomic wrappers everywhere).
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
