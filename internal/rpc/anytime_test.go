package rpc

import (
	"testing"
	"time"

	"cottage/internal/obs"
	"cottage/internal/search"
)

// TestSearchAnytimeOverWire: an anytime search with a generous deadline
// must come back complete and bitwise-identical to a local evaluation;
// the termination certificate must survive the wire either way.
func TestSearchAnytimeOverWire(t *testing.T) {
	sh := buildShard(t, 9)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	terms := []string{"ga", "gb"}
	r, _, err := c.SearchAnytime(obs.SpanContext{}, terms, 10, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Terminated {
		t.Error("5s deadline on a 500-doc shard should not truncate")
	}
	want := search.Anytime(sh, terms, 10, nil)
	if len(r.Hits) != len(want.Hits) {
		t.Fatalf("remote %d hits, local %d", len(r.Hits), len(want.Hits))
	}
	for i := range r.Hits {
		if r.Hits[i].Doc != want.Hits[i].Doc || r.Hits[i].Score != want.Hits[i].Score {
			t.Fatalf("hit %d differs over the wire", i)
		}
	}
	if r.ScoreBound != want.ScoreBound {
		t.Errorf("ScoreBound %v lost over the wire (local %v)", r.ScoreBound, want.ScoreBound)
	}

	// A truncated answer (whenever the 1us deadline fires mid-shard) must
	// still carry exact hits and a bound covering the full evaluation.
	r, _, err = c.SearchAnytime(obs.SpanContext{}, terms, 10, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Terminated {
		if r.ScoreBound < want.ScoreBound {
			t.Errorf("truncated bound %v below exact k-th %v", r.ScoreBound, want.ScoreBound)
		}
		for _, h := range r.Hits {
			found := false
			for _, w := range want.Hits {
				if w.Doc == h.Doc && w.Score == h.Score {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("truncated hit %v not among the exact top-K", h)
			}
		}
	}
}

// TestSearchAnytimeWithoutDeadlineFallsBack: Anytime requests without a
// deadline take the ordinary strategy path — no certificate fields set.
func TestSearchAnytimeWithoutDeadlineFallsBack(t *testing.T) {
	sh := buildShard(t, 9)
	addr, stop := startServer(t, sh, nil)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, _, err := c.SearchAnytime(obs.SpanContext{}, []string{"ga"}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Terminated || r.ScoreBound != 0 {
		t.Errorf("deadline-free anytime call set certificate fields: %v %v", r.Terminated, r.ScoreBound)
	}
	if len(r.Hits) == 0 {
		t.Error("no hits")
	}
}
