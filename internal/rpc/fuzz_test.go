package rpc

import (
	"bytes"
	"encoding/gob"
	"testing"

	"cottage/internal/predict"
	"cottage/internal/search"
)

// The fuzz targets pin the wire contract of DecodeRequest/DecodeResponse:
// arbitrary bytes — truncated frames, bit-flipped type descriptors,
// adversarial length prefixes — must come back as an error, never a
// panic. A panic here is a remote crash of a server (request path) or of
// the aggregator (response path). The seed corpus under
// testdata/fuzz/Fuzz* holds valid frames, truncations, and mutations so
// the fuzzer starts from structurally interesting inputs.

func encodeFrames(tb interface{ Fatal(...any) }, vals ...any) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzDecodeRequest(f *testing.F) {
	valid := encodeFrames(f,
		&Request{Kind: KindSearch, ID: 1, Terms: []string{"ga", "gb"}, K: 10, DeadlineUS: 5000},
		&Request{Kind: KindPredict, ID: 2, Terms: []string{"tail", "latency"}},
		&Request{Kind: KindPing, ID: 3})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	f.Add([]byte{})
	mangled := bytes.Clone(valid)
	for i := 0; i < len(mangled); i += 7 {
		mangled[i] ^= 0x55 // the injector's corruption pattern
	}
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		// Drain the stream like Server.handle does: repeated decodes off
		// one codec, stopping at the first error. Any panic fails the run.
		for i := 0; i < 8; i++ {
			if _, err := DecodeRequest(dec); err != nil {
				return
			}
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	valid := encodeFrames(f,
		&Response{ID: 1, Hits: []search.Hit{{Doc: 4, Score: 2.5}, {Doc: 9, Score: 1.1}},
			Stats: search.ExecStats{DocsScored: 40}},
		&Response{ID: 2, Pred: predict.Prediction{Matched: true, QK: 3, Cycles: 1e7}},
		&Response{ID: 3, Err: "deadline exceeded"})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte{})
	mangled := bytes.Clone(valid)
	for i := 0; i < len(mangled); i += 7 {
		mangled[i] ^= 0x55
	}
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			if _, err := DecodeResponse(dec); err != nil {
				return
			}
		}
	})
}
