package rpc

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"cottage/internal/predict"
	"cottage/internal/search"
)

// The fuzz targets pin the wire contract of DecodeRequest/DecodeResponse:
// arbitrary bytes — truncated frames, bit-flipped type descriptors,
// adversarial length prefixes — must come back as an error, never a
// panic. A panic here is a remote crash of a server (request path) or of
// the aggregator (response path). The seed corpus under
// testdata/fuzz/Fuzz* holds valid frames, truncations, and mutations so
// the fuzzer starts from structurally interesting inputs.

func encodeFrames(tb interface{ Fatal(...any) }, vals ...any) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzDecodeRequest(f *testing.F) {
	valid := encodeFrames(f,
		&Request{Kind: KindSearch, ID: 1, Terms: []string{"ga", "gb"}, K: 10, DeadlineUS: 5000},
		&Request{Kind: KindPredict, ID: 2, Terms: []string{"tail", "latency"}},
		&Request{Kind: KindPing, ID: 3})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	f.Add([]byte{})
	mangled := bytes.Clone(valid)
	for i := 0; i < len(mangled); i += 7 {
		mangled[i] ^= 0x55 // the injector's corruption pattern
	}
	f.Add(mangled)
	// Structurally valid but semantically absurd requests — the frames
	// ValidateRequest exists to reject. Decoding them must stay boring;
	// the interesting mutations start from real out-of-range payloads.
	f.Add(encodeFrames(f, absurdRequests()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		// Drain the stream like Server.handle does: repeated decodes off
		// one codec, stopping at the first error. Any panic fails the run.
		for i := 0; i < 8; i++ {
			if _, err := DecodeRequest(dec); err != nil {
				return
			}
		}
	})
}

// absurdRequests are decodable requests that must fail validation:
// out-of-range K, oversized term lists, giant terms, negative deadlines.
// Shared between the fuzz seeds here and tools/gencorpus.
func absurdRequests() []any {
	return []any{
		&Request{Kind: KindSearch, ID: 10, Terms: []string{"ga"}, K: 0},
		&Request{Kind: KindSearch, ID: 11, Terms: []string{"ga"}, K: 2_000_000},
		&Request{Kind: KindPredict, ID: 12, Terms: make([]string, MaxTerms+36)},
		&Request{Kind: KindSearch, ID: 13, Terms: []string{strings.Repeat("z", 2048)}, K: 5},
		&Request{Kind: KindSearch, ID: 14, Terms: []string{"ga"}, K: 5, DeadlineUS: -1},
		&Request{Kind: Kind(99), ID: 15, K: 5},
	}
}

// FuzzValidateRequest pins the server's pre-admission path: any frame
// that decodes must flow through ValidateRequest without panicking, and
// a request validation lets through must actually be in range — the
// invariants the dispatch layer relies on so absurd inputs never reach
// index evaluation.
func FuzzValidateRequest(f *testing.F) {
	f.Add(encodeFrames(f, &Request{Kind: KindSearch, ID: 1, Terms: []string{"ga"}, K: 10}))
	f.Add(encodeFrames(f, absurdRequests()...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			req, err := DecodeRequest(dec)
			if err != nil {
				return
			}
			if ValidateRequest(&req) != nil {
				continue
			}
			if req.Kind == KindSearch || req.Kind == KindPhrase {
				if req.K <= 0 || req.K > MaxK {
					t.Fatalf("validation admitted K=%d", req.K)
				}
			}
			if len(req.Terms) > MaxTerms {
				t.Fatalf("validation admitted %d terms", len(req.Terms))
			}
			for _, term := range req.Terms {
				if len(term) > MaxTermLen {
					t.Fatalf("validation admitted a %d-byte term", len(term))
				}
			}
			if req.DeadlineUS < 0 {
				t.Fatalf("validation admitted deadline %d", req.DeadlineUS)
			}
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	valid := encodeFrames(f,
		&Response{ID: 1, Hits: []search.Hit{{Doc: 4, Score: 2.5}, {Doc: 9, Score: 1.1}},
			Stats: search.ExecStats{DocsScored: 40}},
		&Response{ID: 2, Pred: predict.Prediction{Matched: true, QK: 3, Cycles: 1e7}},
		&Response{ID: 3, Err: "deadline exceeded"})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte{})
	mangled := bytes.Clone(valid)
	for i := 0; i < len(mangled); i += 7 {
		mangled[i] ^= 0x55
	}
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			if _, err := DecodeResponse(dec); err != nil {
				return
			}
		}
	})
}
