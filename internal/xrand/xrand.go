// Package xrand provides a deterministic, splittable pseudo-random number
// generator plus the handful of non-uniform distributions the rest of the
// repository needs (Zipf, Gamma, log-normal, Poisson, exponential).
//
// Every experiment in this repository must be reproducible from a seed, and
// independent subsystems (corpus generation, trace generation, network
// jitter, ...) must not perturb each other's random streams. math/rand's
// global source satisfies neither requirement, so we use a SplitMix64 core:
// it is tiny, passes BigCrush, and splits cleanly — Split derives an
// independent child stream from a parent without consuming more than one
// value of the parent's sequence.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New so related seeds don't produce
// correlated streams.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with different
// seeds — even adjacent integers — produce unrelated streams because the
// output function mixes the counter through two rounds of multiplication
// and xor-shift.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// golden gamma: the SplitMix64 counter increment.
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new generator whose stream is statistically independent of
// the parent's. The parent advances by exactly one step, so inserting or
// removing Split calls does not shift unrelated streams.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// SplitName derives a child generator keyed by a string label, so subsystems
// can be given stable streams by name regardless of the order in which they
// are created.
func (r *RNG) SplitName(name string) *RNG {
	h := r.state + golden // do not advance the parent
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	child := &RNG{state: h}
	child.Uint64() // decorrelate from the raw hash
	return child
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes s in place using the Fisher-Yates algorithm.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// product method for small means and a normal approximation above 30 (the
// approximation error there is far below anything our workloads notice).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia–Tsang
// squeeze method (with the standard shape<1 boost).
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("xrand: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Zipf draws integers from [0, n) with P(k) proportional to 1/(k+1)^s.
// It precomputes the CDF once, so draws are O(log n).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
