package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
}

func TestSplitNameStable(t *testing.T) {
	a := New(9).SplitName("corpus")
	b := New(9).SplitName("corpus")
	c := New(9).SplitName("trace")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitName not stable for equal names")
	}
	a2 := New(9).SplitName("corpus")
	if a2.Uint64() == c.Uint64() {
		t.Fatal("SplitName gave identical streams for distinct names")
	}
}

func TestSplitNameDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	a.SplitName("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitName advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(11)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	Shuffle(r, s)
	for _, v := range s {
		sum += v
	}
	if sum != 36 || len(s) != 8 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(12)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(14)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2.0}, {1.0, 1.0}, {2.5, 0.5}, {9.0, 3.0},
	} {
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative %v", tc.shape, tc.scale, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean)/wantMean > 0.05 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Gamma(%v,%v) var = %v, want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(15)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(16)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(17)
	z := NewZipf(r, 1.0, 100)
	const n = 200000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		k := z.Draw()
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf draw %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 should be about twice as frequent as rank 1 for s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("Zipf rank0/rank1 ratio = %v, want ~2", ratio)
	}
	if counts[0] <= counts[10] || counts[10] <= counts[99] {
		t.Error("Zipf counts are not decreasing with rank")
	}
}

func TestZipfN(t *testing.T) {
	z := NewZipf(New(1), 1.2, 42)
	if z.N() != 42 {
		t.Fatalf("N = %d, want 42", z.N())
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(18)
	const n = 100001
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.LogNormal(2, 0.5)
	}
	// Median of LogNormal(mu, sigma) is exp(mu).
	count := 0
	want := math.Exp(2)
	for _, v := range vs {
		if v < want {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(New(1), 1.1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
