// Package textgen synthesizes a document corpus that stands in for the
// paper's 34-million-document Wikipedia dump. The experiments do not need
// Wikipedia's text; they need its statistical fingerprints:
//
//   - a Zipfian vocabulary, so posting-list lengths span four orders of
//     magnitude and per-query work is highly variable (Fig. 2a);
//   - topical locality, so that when documents are distributed across
//     shards some ISNs contribute many of a query's top-K documents and
//     others contribute none (Fig. 2b) — the skew Algorithm 1 exploits;
//   - realistic document-length spread, which feeds BM25 normalization.
//
// The generator is fully deterministic given a seed, so every experiment
// in the repository is reproducible bit-for-bit.
package textgen

import (
	"fmt"
	"math"
	"strings"

	"cottage/internal/xrand"
)

// Config controls corpus synthesis. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Seed      uint64
	NumDocs   int
	VocabSize int
	NumTopics int

	// ZipfExponent shapes the background term-frequency distribution.
	// 1.0 reproduces classic Zipf behaviour for natural language.
	ZipfExponent float64

	// TopicZipfExponent shapes each topic's internal term distribution.
	TopicZipfExponent float64

	// TopicTermCount is how many vocabulary terms each topic draws its
	// topical words from.
	TopicTermCount int

	// TopicMixture is the probability that a token comes from the
	// document's topic rather than the background distribution. Higher
	// values mean stronger shard skew after topic-aware allocation.
	TopicMixture float64

	// MeanDocLen and DocLenSigma parameterize the log-normal document
	// length distribution (in tokens).
	MeanDocLen  float64
	DocLenSigma float64

	// Burstiness is the probability that a topical token repeats a topic
	// term already used in the same document (Church–Gale term
	// burstiness). Bursty term frequencies make per-term score
	// distributions multi-modal — a tf=1 crowd plus a heavy high-tf
	// mode — which is what real text looks like and why a fitted Gamma
	// misestimates the tail (the paper's Fig. 6, and the root cause of
	// Taily's quality loss).
	Burstiness float64
}

// DefaultConfig returns the corpus used by the experiment harness: large
// enough to exhibit the paper's variance phenomena, small enough to index
// in a few seconds.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumDocs:           48000,
		VocabSize:         24000,
		NumTopics:         64,
		ZipfExponent:      1.05,
		TopicZipfExponent: 0.9,
		TopicTermCount:    400,
		TopicMixture:      0.55,
		MeanDocLen:        220,
		DocLenSigma:       0.55,
		Burstiness:        0.45,
	}
}

// Document is one synthesized document: a bag of term identifiers with
// counts. Term IDs index into Corpus.Vocab.
type Document struct {
	ID     int
	Topic  int
	Length int // total tokens
	// Terms maps term ID -> frequency. A map keeps generation simple;
	// the indexer converts to packed postings.
	Terms map[int]int
}

// Corpus is a complete synthesized collection.
type Corpus struct {
	Config Config
	Vocab  []string
	Docs   []Document
	// TopicTerms[topic] lists the term IDs belonging to that topic,
	// most-probable first. Trace generators use it to form topical
	// queries.
	TopicTerms [][]int
}

// Generate synthesizes a corpus from cfg. It panics on nonsensical
// configuration (non-positive sizes), since that is always a programming
// error in this repository.
func Generate(cfg Config) *Corpus {
	if cfg.NumDocs <= 0 || cfg.VocabSize <= 0 || cfg.NumTopics <= 0 {
		panic("textgen: NumDocs, VocabSize and NumTopics must be positive")
	}
	if cfg.TopicTermCount <= 0 || cfg.TopicTermCount > cfg.VocabSize {
		panic("textgen: TopicTermCount must be in (0, VocabSize]")
	}
	root := xrand.New(cfg.Seed)
	vocabRng := root.SplitName("vocab")
	topicRng := root.SplitName("topics")
	docRng := root.SplitName("docs")

	c := &Corpus{Config: cfg}
	c.Vocab = makeVocab(vocabRng, cfg.VocabSize)
	c.TopicTerms = makeTopics(topicRng, cfg)

	background := xrand.NewZipf(docRng, cfg.ZipfExponent, cfg.VocabSize)
	topicSamplers := make([]*xrand.Zipf, cfg.NumTopics)
	for i := range topicSamplers {
		topicSamplers[i] = xrand.NewZipf(docRng, cfg.TopicZipfExponent, cfg.TopicTermCount)
	}
	topicPicker := xrand.NewZipf(docRng, 0.7, cfg.NumTopics)

	c.Docs = make([]Document, cfg.NumDocs)
	for i := range c.Docs {
		topic := topicPicker.Draw()
		length := int(docRng.LogNormal(logOfMean(cfg.MeanDocLen, cfg.DocLenSigma), cfg.DocLenSigma))
		if length < 8 {
			length = 8
		}
		terms := make(map[int]int)
		var usedTopical []int
		for tok := 0; tok < length; tok++ {
			var term int
			if docRng.Float64() < cfg.TopicMixture {
				if len(usedTopical) > 0 && docRng.Float64() < cfg.Burstiness {
					// Burst: repeat a topical term this document already
					// used, concentrating its frequency.
					term = usedTopical[docRng.Intn(len(usedTopical))]
				} else {
					term = c.TopicTerms[topic][topicSamplers[topic].Draw()]
					usedTopical = append(usedTopical, term)
				}
			} else {
				term = background.Draw()
			}
			terms[term]++
		}
		c.Docs[i] = Document{ID: i, Topic: topic, Length: length, Terms: terms}
	}
	return c
}

// logOfMean converts a desired arithmetic mean of a log-normal into the
// underlying normal's mu: E[X] = exp(mu + sigma^2/2).
func logOfMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// makeVocab produces deterministic pseudo-words. Low-rank (frequent) terms
// are short, high-rank terms longer, loosely matching natural language.
func makeVocab(rng *xrand.RNG, n int) []string {
	const (
		consonants = "bcdfghjklmnprstvwz"
		vowels     = "aeiou"
	)
	seen := make(map[string]bool, n)
	vocab := make([]string, 0, n)
	for len(vocab) < n {
		syllables := 1 + len(vocab)/(n/4+1) + rng.Intn(2)
		var b strings.Builder
		for s := 0; s < syllables+1; s++ {
			b.WriteByte(consonants[rng.Intn(len(consonants))])
			b.WriteByte(vowels[rng.Intn(len(vowels))])
		}
		w := b.String()
		if seen[w] {
			w = fmt.Sprintf("%s%d", w, len(vocab))
		}
		seen[w] = true
		vocab = append(vocab, w)
	}
	return vocab
}

// makeTopics assigns each topic a set of characteristic terms. Topics
// deliberately avoid the global top of the vocabulary (those behave like
// stopwords) and may overlap slightly, as real topics do.
func makeTopics(rng *xrand.RNG, cfg Config) [][]int {
	topics := make([][]int, cfg.NumTopics)
	// Candidate terms: skip the most frequent 2% (stopword-like).
	start := cfg.VocabSize / 50
	candidates := make([]int, cfg.VocabSize-start)
	for i := range candidates {
		candidates[i] = start + i
	}
	for t := range topics {
		xrand.Shuffle(rng, candidates)
		terms := make([]int, cfg.TopicTermCount)
		copy(terms, candidates)
		topics[t] = terms
	}
	return topics
}

// AllocateRoundRobin splits documents across numShards shards in
// round-robin order. This is the paper's "random" (source-ordered)
// allocation: every shard sees every topic, so per-query quality skew is
// mild.
func (c *Corpus) AllocateRoundRobin(numShards int) [][]int {
	if numShards <= 0 {
		panic("textgen: non-positive shard count")
	}
	shards := make([][]int, numShards)
	for i := range c.Docs {
		s := i % numShards
		shards[s] = append(shards[s], i)
	}
	return shards
}

// AllocateTopical distributes documents with topic affinity: each topic
// has a small set of "home" shards that receive most of its documents,
// plus a spill fraction spread uniformly. This mirrors the topical shard
// allocation used in selective-search research (Kulkarni & Callan,
// CIKM'10) and produces Fig. 2b's skew: for a topical query, a handful of
// ISNs hold almost all relevant documents.
//
// spill is the fraction of a topic's documents placed uniformly at random
// (0 = perfectly topical, 1 = uniform). homeShards is how many shards
// host each topic's core.
func (c *Corpus) AllocateTopical(numShards, homeShards int, spill float64, seed uint64) [][]int {
	if numShards <= 0 || homeShards <= 0 || homeShards > numShards {
		panic("textgen: invalid shard counts")
	}
	if spill < 0 || spill > 1 {
		panic("textgen: spill must be in [0,1]")
	}
	rng := xrand.New(seed).SplitName("allocate")
	// Choose home shards per topic.
	homes := make([][]int, c.Config.NumTopics)
	for t := range homes {
		perm := rng.Perm(numShards)
		homes[t] = perm[:homeShards]
	}
	shards := make([][]int, numShards)
	for i, d := range c.Docs {
		var s int
		if rng.Float64() < spill {
			s = rng.Intn(numShards)
		} else {
			h := homes[d.Topic]
			s = h[rng.Intn(len(h))]
		}
		shards[s] = append(shards[s], i)
	}
	return shards
}

// TotalTokens returns the number of tokens across the whole corpus.
func (c *Corpus) TotalTokens() int {
	t := 0
	for i := range c.Docs {
		t += c.Docs[i].Length
	}
	return t
}
