package textgen

import (
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumDocs = 2000
	cfg.VocabSize = 3000
	cfg.NumTopics = 16
	cfg.TopicTermCount = 120
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("doc counts differ")
	}
	for i := range a.Docs {
		da, db := a.Docs[i], b.Docs[i]
		if da.Topic != db.Topic || da.Length != db.Length || len(da.Terms) != len(db.Terms) {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
	for i := range a.Vocab {
		if a.Vocab[i] != b.Vocab[i] {
			t.Fatalf("vocab term %d differs", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 999
	a := Generate(smallConfig())
	b := Generate(cfg2)
	same := 0
	for i := range a.Docs {
		if a.Docs[i].Length == b.Docs[i].Length {
			same++
		}
	}
	if same == len(a.Docs) {
		t.Fatal("different seeds produced identical document lengths")
	}
}

func TestDocumentInvariants(t *testing.T) {
	c := Generate(smallConfig())
	for i, d := range c.Docs {
		if d.ID != i {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
		if d.Topic < 0 || d.Topic >= c.Config.NumTopics {
			t.Fatalf("doc %d topic out of range: %d", i, d.Topic)
		}
		if d.Length < 8 {
			t.Fatalf("doc %d shorter than minimum: %d", i, d.Length)
		}
		sum := 0
		for term, tf := range d.Terms {
			if term < 0 || term >= c.Config.VocabSize {
				t.Fatalf("doc %d has out-of-vocab term %d", i, term)
			}
			if tf <= 0 {
				t.Fatalf("doc %d term %d has non-positive tf", i, term)
			}
			sum += tf
		}
		if sum != d.Length {
			t.Fatalf("doc %d term frequencies sum to %d, length %d", i, sum, d.Length)
		}
	}
}

func TestVocabUnique(t *testing.T) {
	c := Generate(smallConfig())
	seen := make(map[string]bool)
	for _, w := range c.Vocab {
		if w == "" {
			t.Fatal("empty vocabulary word")
		}
		if seen[w] {
			t.Fatalf("duplicate vocabulary word %q", w)
		}
		seen[w] = true
	}
}

func TestZipfianVocabUsage(t *testing.T) {
	c := Generate(smallConfig())
	freq := make([]int, c.Config.VocabSize)
	for _, d := range c.Docs {
		for term, tf := range d.Terms {
			freq[term] += tf
		}
	}
	// Head terms should vastly outnumber tail terms.
	head, tail := 0, 0
	for i := 0; i < 20; i++ {
		head += freq[i]
	}
	for i := c.Config.VocabSize - 500; i < c.Config.VocabSize; i++ {
		tail += freq[i]
	}
	if head <= tail {
		t.Errorf("head terms (%d) should be more frequent than tail terms (%d)", head, tail)
	}
}

func TestTopicTermsWellFormed(t *testing.T) {
	c := Generate(smallConfig())
	if len(c.TopicTerms) != c.Config.NumTopics {
		t.Fatalf("TopicTerms has %d entries", len(c.TopicTerms))
	}
	for ti, terms := range c.TopicTerms {
		if len(terms) != c.Config.TopicTermCount {
			t.Fatalf("topic %d has %d terms", ti, len(terms))
		}
		seen := make(map[int]bool)
		for _, term := range terms {
			if term < 0 || term >= c.Config.VocabSize {
				t.Fatalf("topic %d references invalid term %d", ti, term)
			}
			if seen[term] {
				t.Fatalf("topic %d repeats term %d", ti, term)
			}
			seen[term] = true
		}
	}
}

func TestAllocateRoundRobin(t *testing.T) {
	c := Generate(smallConfig())
	shards := c.AllocateRoundRobin(7)
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	seen := make(map[int]bool)
	for _, s := range shards {
		total += len(s)
		for _, id := range s {
			if seen[id] {
				t.Fatalf("doc %d allocated twice", id)
			}
			seen[id] = true
		}
	}
	if total != len(c.Docs) {
		t.Fatalf("allocated %d of %d docs", total, len(c.Docs))
	}
	// Round-robin shard sizes differ by at most one.
	minLen, maxLen := len(shards[0]), len(shards[0])
	for _, s := range shards {
		if len(s) < minLen {
			minLen = len(s)
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen-minLen > 1 {
		t.Errorf("round-robin imbalance: %d..%d", minLen, maxLen)
	}
}

func TestAllocateTopicalSkew(t *testing.T) {
	c := Generate(smallConfig())
	const numShards = 8
	shards := c.AllocateTopical(numShards, 2, 0.1, 42)

	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != len(c.Docs) {
		t.Fatalf("allocated %d of %d docs", total, len(c.Docs))
	}

	// Measure topical concentration: for each topic, the two largest
	// shard shares should hold most of its documents.
	byTopicShard := make([][]int, c.Config.NumTopics)
	for ti := range byTopicShard {
		byTopicShard[ti] = make([]int, numShards)
	}
	for si, s := range shards {
		for _, id := range s {
			byTopicShard[c.Docs[id].Topic][si]++
		}
	}
	concentrated := 0
	for ti := range byTopicShard {
		counts := byTopicShard[ti]
		topicTotal := 0
		best1, best2 := 0, 0
		for _, n := range counts {
			topicTotal += n
			if n > best1 {
				best1, best2 = n, best1
			} else if n > best2 {
				best2 = n
			}
		}
		if topicTotal == 0 {
			continue
		}
		if float64(best1+best2)/float64(topicTotal) > 0.7 {
			concentrated++
		}
	}
	if concentrated < c.Config.NumTopics/2 {
		t.Errorf("only %d/%d topics concentrated on home shards", concentrated, c.Config.NumTopics)
	}
}

func TestAllocatePanics(t *testing.T) {
	c := Generate(smallConfig())
	cases := []func(){
		func() { c.AllocateRoundRobin(0) },
		func() { c.AllocateTopical(0, 1, 0, 1) },
		func() { c.AllocateTopical(4, 5, 0, 1) },
		func() { c.AllocateTopical(4, 2, 1.5, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	bad := smallConfig()
	bad.NumDocs = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero NumDocs")
			}
		}()
		Generate(bad)
	}()
	bad2 := smallConfig()
	bad2.TopicTermCount = bad2.VocabSize + 1
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for oversized TopicTermCount")
			}
		}()
		Generate(bad2)
	}()
}

func TestTotalTokens(t *testing.T) {
	c := Generate(smallConfig())
	want := 0
	for _, d := range c.Docs {
		want += d.Length
	}
	if got := c.TotalTokens(); got != want {
		t.Fatalf("TotalTokens = %d, want %d", got, want)
	}
	avg := float64(want) / float64(len(c.Docs))
	if avg < 100 || avg > 400 {
		t.Errorf("average doc length %v outside sane range", avg)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(cfg)
	}
}
