// Package overload implements the admission-control and
// failure-containment primitives behind the live transport's overload
// protection (internal/rpc): a bounded admission queue with a
// concurrency limiter (fixed cap or AIMD-adaptive), deadline-aware
// queue shedding, and a per-ISN circuit breaker with half-open probing.
//
// Cottage's own latency model makes queuing first-class — Eq. 2's
// "equivalent latency" corrects every prediction for the requests
// already queued at the ISN — so a live ISN needs a real queue with a
// bounded depth and measurable occupancy, not an unbounded goroutine
// pile. The Limiter provides that queue; its occupancy is what
// KindPredict responses report back to the aggregator for the Eq. 2
// correction (core.QueueBacklogMS). The Breaker is the aggregator-side
// complement: stop sending to an ISN that keeps failing at the
// transport level, probe it while it is down, and bring it back the
// moment it recovers.
//
// Every state machine takes an injectable Clock so tests can drive the
// transitions deterministically; all types are safe for concurrent use.
package overload

import (
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is the typed rejection for requests shed by admission
// control: the queue was full, the queue wait exceeded the request's
// deadline, or the limiter shut down. It is a load signal, not a
// failure signal — callers back off and retry instead of declaring the
// server dead.
var ErrOverloaded = errors.New("overload: request shed")

// Clock abstracts time for the state machines. Production code passes
// nil (the system clock); tests pass a ManualClock and advance it by
// hand, making every transition deterministic.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System is the wall clock.
var System Clock = systemClock{}

// ManualClock is a hand-advanced Clock for deterministic tests.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at t.
func NewManualClock(t time.Time) *ManualClock {
	return &ManualClock{t: t}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
