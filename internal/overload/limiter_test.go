package overload

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// acquireAsync starts an Acquire in a goroutine and returns a channel
// carrying its result. A short handshake loop in callers (waiting for
// Pending to rise) makes enqueue order deterministic.
func acquireAsync(l *Limiter, maxWait time.Duration) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- l.Acquire(maxWait) }()
	return ch
}

func waitPending(t *testing.T, l *Limiter, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for l.Pending() != want {
		if time.Now().After(deadline) {
			t.Fatalf("Pending() = %d, want %d", l.Pending(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(2, 4, nil)
	if err := l.Acquire(0); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := l.Acquire(0); err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got := l.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	l.Release()
	l.Release()
	if got := l.Pending(); got != 0 {
		t.Fatalf("Pending() after release = %d, want 0", got)
	}
}

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := NewLimiter(1, 1, nil)
	if err := l.Acquire(0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	queued := acquireAsync(l, 0)
	waitPending(t, l, 2)
	// Slot busy, queue full: immediate shed.
	if err := l.Acquire(0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire with full queue = %v, want ErrOverloaded", err)
	}
	l.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued Acquire: %v", err)
	}
	l.Release()
	st := l.Stats()
	if st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 2 admitted, 1 shed", st)
	}
}

func TestLimiterDeadlineShedAtGrant(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	l := NewLimiter(1, 4, clk)
	if err := l.Acquire(0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Two waiters: one with a 10ms budget, one without a deadline.
	tight := acquireAsync(l, 10*time.Millisecond)
	waitPending(t, l, 2)
	loose := acquireAsync(l, 0)
	waitPending(t, l, 3)

	// By the time a slot frees, the tight waiter's budget is gone: it
	// must be shed and the slot must go to the loose waiter.
	clk.Advance(50 * time.Millisecond)
	l.Release()
	if err := <-tight; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired waiter = %v, want ErrOverloaded", err)
	}
	if err := <-loose; err != nil {
		t.Fatalf("no-deadline waiter: %v", err)
	}
	l.Release()
}

func TestLimiterDeadlineStillFreshIsServed(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	l := NewLimiter(1, 4, clk)
	if err := l.Acquire(0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	w := acquireAsync(l, 100*time.Millisecond)
	waitPending(t, l, 2)
	clk.Advance(50 * time.Millisecond) // within budget
	l.Release()
	if err := <-w; err != nil {
		t.Fatalf("fresh waiter = %v, want admission", err)
	}
	l.Release()
}

func TestLimiterCloseShedsQueueKeepsInflight(t *testing.T) {
	l := NewLimiter(1, 4, nil)
	if err := l.Acquire(0); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	queued := acquireAsync(l, 0)
	waitPending(t, l, 2)
	l.Close()
	if err := <-queued; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued waiter after Close = %v, want ErrOverloaded", err)
	}
	if err := l.Acquire(0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire after Close = %v, want ErrOverloaded", err)
	}
	// The in-flight request still completes normally.
	l.Release()
	if got := l.Stats().Inflight; got != 0 {
		t.Fatalf("Inflight after Release = %d, want 0", got)
	}
}

func TestLimiterAIMD(t *testing.T) {
	l := NewLimiter(4, 0, nil)
	l.EnableAIMD(1, 8)

	// Multiplicative decrease: with no queue, an overflow Acquire sheds
	// and halves the cap.
	for i := 0; i < 4; i++ {
		if err := l.Acquire(0); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	if err := l.Acquire(0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow Acquire = %v, want ErrOverloaded", err)
	}
	if got := l.Stats().Limit; got != 2 {
		t.Fatalf("limit after decrease = %d, want 2", got)
	}
	// Additive increase: each full window of successful completions adds
	// one slot. Draining the 4 in-flight requests at limit 2 yields one
	// full window (limit 2→3) with 2 successes carried toward the next.
	for i := 0; i < 4; i++ {
		l.Release()
	}
	if got := l.Stats().Limit; got != 3 {
		t.Fatalf("limit after drain = %d, want 3", got)
	}
	// One more completion finishes the window of 3: limit 3→4.
	if err := l.Acquire(0); err != nil {
		t.Fatalf("AI Acquire: %v", err)
	}
	l.Release()
	if got := l.Stats().Limit; got != 4 {
		t.Fatalf("limit after additive increase = %d, want 4", got)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(4, 8, nil)
	const goroutines = 16
	const perG = 50
	var admitted, shed int64
	var mu sync.Mutex
	var inflight, maxInflight int

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := l.Acquire(time.Second)
				if errors.Is(err, ErrOverloaded) {
					mu.Lock()
					shed++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				mu.Lock()
				admitted++
				inflight++
				if inflight > maxInflight {
					maxInflight = inflight
				}
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				inflight--
				mu.Unlock()
				l.Release()
			}
		}()
	}
	wg.Wait()

	if admitted+shed != goroutines*perG {
		t.Fatalf("admitted %d + shed %d != %d issued", admitted, shed, goroutines*perG)
	}
	if maxInflight > 4 {
		t.Fatalf("observed %d concurrent admissions, cap is 4", maxInflight)
	}
	st := l.Stats()
	if st.Admitted != uint64(admitted) || st.Shed != uint64(shed) {
		t.Fatalf("limiter stats %+v disagree with client counts (%d admitted, %d shed)",
			st, admitted, shed)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("limiter not drained: %+v", st)
	}
}
