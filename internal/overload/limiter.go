package overload

import (
	"sync"
	"time"

	"cottage/internal/obs"
)

// waiter is a queued admission request. ready receives exactly one
// value: nil when a slot is granted, ErrOverloaded when the waiter is
// shed (deadline exceeded at grant time, or the limiter closed).
type waiter struct {
	ready    chan error
	enqueued time.Time
	maxWait  time.Duration // 0 = no deadline
}

// Limiter is a bounded admission queue in front of a concurrency cap.
// At most `limit` requests run concurrently; up to `queueCap` more wait
// in FIFO order. Anything beyond that — and any queued request whose
// wait has already exceeded its deadline by the time a slot frees — is
// shed with ErrOverloaded.
//
// With EnableAIMD the cap adapts TCP-style: each full window of
// successful completions adds one slot (additive increase); every shed
// halves the cap (multiplicative decrease). The queue keeps latency
// bounded either way; AIMD only tunes how much concurrency the server
// believes it can sustain.
type Limiter struct {
	mu       sync.Mutex
	clock    Clock
	limit    int
	queueCap int
	inflight int
	queue    []*waiter
	closed   bool

	// AIMD state. aimd=false keeps the cap fixed.
	aimd      bool
	minLimit  int
	maxLimit  int
	successes int

	// Counters. Atomic so a metrics scrape never takes mu; still only
	// incremented under mu, so they stay consistent with the occupancy
	// fields they describe.
	admitted obs.Counter
	shed     obs.Counter
	// waitHist, when Register attached one, records every admitted
	// request's queue wait (0 for fast-path admissions) — the live
	// counterpart of the anatomy report's admission-queue phase.
	waitHist *obs.Histogram
}

// LimiterStats is a snapshot of a Limiter's counters and occupancy.
type LimiterStats struct {
	Limit    int    // current concurrency cap
	Inflight int    // requests holding a slot
	Queued   int    // requests waiting for a slot
	Admitted uint64 // total requests granted a slot
	Shed     uint64 // total requests rejected with ErrOverloaded
}

// NewLimiter builds a limiter admitting maxInflight concurrent requests
// with a queue of queueDepth behind it. clock may be nil for the system
// clock.
func NewLimiter(maxInflight, queueDepth int, clock Clock) *Limiter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if clock == nil {
		clock = System
	}
	return &Limiter{clock: clock, limit: maxInflight, queueCap: queueDepth}
}

// EnableAIMD turns on adaptive sizing of the concurrency cap, clamped
// to [min, max]. The current cap is clamped into range immediately.
func (l *Limiter) EnableAIMD(min, max int) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.aimd = true
	l.minLimit, l.maxLimit = min, max
	if l.limit < min {
		l.limit = min
	}
	if l.limit > max {
		l.limit = max
	}
}

// Acquire blocks until a slot is granted or the request is shed.
// maxWait bounds how long the request may sit queued before it is no
// longer worth serving (deadline-aware shedding); 0 means no deadline.
// Returns nil on admission — the caller must Release() — or
// ErrOverloaded when shed.
func (l *Limiter) Acquire(maxWait time.Duration) error {
	l.mu.Lock()
	if l.closed {
		l.shed.Inc()
		l.mu.Unlock()
		return ErrOverloaded
	}
	if l.inflight < l.limit && len(l.queue) == 0 {
		l.inflight++
		l.admitted.Inc()
		if h := l.waitHist; h != nil {
			h.Observe(0)
		}
		l.mu.Unlock()
		return nil
	}
	if len(l.queue) >= l.queueCap {
		l.shed.Inc()
		l.decreaseLocked()
		l.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{ready: make(chan error, 1), enqueued: l.clock.Now(), maxWait: maxWait}
	l.queue = append(l.queue, w)
	l.mu.Unlock()
	return <-w.ready
}

// Release frees a slot acquired with Acquire and hands it to the next
// viable waiter.
func (l *Limiter) Release() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
	l.increaseLocked()
	l.grantLocked()
}

// grantLocked pops queued waiters while slots are free, shedding any
// whose queue wait already exceeds its deadline — by the time a slot
// opened, serving them would blow their budget anyway (Eq. 2's point:
// queue wait is latency). Called with mu held.
func (l *Limiter) grantLocked() {
	now := l.clock.Now()
	for len(l.queue) > 0 && l.inflight < l.limit {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.maxWait > 0 && now.Sub(w.enqueued) > w.maxWait {
			l.shed.Inc()
			l.decreaseLocked()
			w.ready <- ErrOverloaded
			continue
		}
		l.inflight++
		l.admitted.Inc()
		if h := l.waitHist; h != nil {
			h.Observe(float64(now.Sub(w.enqueued).Microseconds()) / 1000)
		}
		w.ready <- nil
	}
}

// increaseLocked is AIMD additive increase: one full cap's worth of
// completions earns one extra slot.
func (l *Limiter) increaseLocked() {
	if !l.aimd {
		return
	}
	l.successes++
	if l.successes >= l.limit && l.limit < l.maxLimit {
		l.limit++
		l.successes = 0
	}
}

// decreaseLocked is AIMD multiplicative decrease on a shed.
func (l *Limiter) decreaseLocked() {
	if !l.aimd {
		return
	}
	l.limit /= 2
	if l.limit < l.minLimit {
		l.limit = l.minLimit
	}
	l.successes = 0
}

// Close sheds every queued waiter with ErrOverloaded and makes all
// future Acquire calls fail immediately. In-flight requests are
// unaffected; their Release calls still work. Used by Server.Shutdown
// so drain only waits on work actually running, never on the queue.
func (l *Limiter) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, w := range l.queue {
		l.shed.Inc()
		w.ready <- ErrOverloaded
	}
	l.queue = nil
}

// Pending reports current occupancy — in-flight plus queued. This is
// the queue-depth figure KindPredict responses report to the aggregator
// for the Eq. 2 equivalent-latency correction.
func (l *Limiter) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight + len(l.queue)
}

// Stats snapshots the limiter's counters.
func (l *Limiter) Stats() LimiterStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{
		Limit:    l.limit,
		Inflight: l.inflight,
		Queued:   len(l.queue),
		Admitted: l.admitted.Value(),
		Shed:     l.shed.Value(),
	}
}

// Register exposes the limiter on a metrics registry: the admitted/shed
// counters are adopted in place (Stats and the registry read the same
// atomics) and the occupancy figures become scrape-time gauges. The
// gauges take mu once per scrape; updates never touch the registry.
func (l *Limiter) Register(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Register("cottage_limiter_admitted_total",
		"Requests granted an admission slot.", &l.admitted, labels...)
	reg.Register("cottage_limiter_shed_total",
		"Requests rejected with ErrOverloaded.", &l.shed, labels...)
	l.waitHist = reg.Histogram("cottage_admission_wait_ms",
		"Admission-queue wait per admitted request (0 = fast path).",
		obs.LatencyBucketsMS(), labels...)
	reg.GaugeFunc("cottage_limiter_inflight",
		"Requests currently holding a slot.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.inflight)
		}, labels...)
	reg.GaugeFunc("cottage_limiter_queued",
		"Requests waiting for a slot.", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(len(l.queue))
		}, labels...)
	reg.GaugeFunc("cottage_limiter_limit",
		"Current concurrency cap (adaptive under AIMD).", func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.limit)
		}, labels...)
}
