package overload

import (
	"strings"
	"testing"
	"time"

	"cottage/internal/obs"
)

func TestBreakerTransitionsAndLastOpened(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(2, 100*time.Millisecond, clk)
	if b.Transitions() != 0 {
		t.Fatalf("fresh breaker transitions = %d, want 0", b.Transitions())
	}
	if !b.LastOpened().IsZero() {
		t.Fatal("fresh breaker has a LastOpened timestamp")
	}
	b.OnFailure()
	b.OnFailure() // closed → open
	if b.Transitions() != 1 {
		t.Fatalf("transitions after open = %d, want 1", b.Transitions())
	}
	opened := b.LastOpened()
	if !opened.Equal(clk.Now()) {
		t.Fatalf("LastOpened = %v, want %v", opened, clk.Now())
	}
	clk.Advance(150 * time.Millisecond)
	if !b.Allow() { // open → half-open
		t.Fatal("cooldown elapsed, probe must be allowed")
	}
	if b.Transitions() != 2 {
		t.Fatalf("transitions after half-open = %d, want 2", b.Transitions())
	}
	b.OnSuccess() // half-open → closed
	if b.Transitions() != 3 {
		t.Fatalf("transitions after close = %d, want 3", b.Transitions())
	}
	// LastOpened survives closure: the prober reads it after reviving.
	if !b.LastOpened().Equal(opened) {
		t.Fatal("LastOpened changed on close")
	}
	b.OnSuccess() // closed → closed: not a transition
	if b.Transitions() != 3 {
		t.Fatalf("closed→closed counted as transition: %d", b.Transitions())
	}
}

func TestLimiterRegisterExposesCounters(t *testing.T) {
	l := NewLimiter(2, 0, nil)
	reg := obs.NewRegistry()
	l.Register(reg, obs.L("isn", "0"))
	if err := l.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(0); err == nil { // queue depth 0: shed
		t.Fatal("third acquire should shed")
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`cottage_limiter_admitted_total{isn="0"} 2`,
		`cottage_limiter_shed_total{isn="0"} 1`,
		`cottage_limiter_inflight{isn="0"} 2`,
		`cottage_limiter_queued{isn="0"} 0`,
		`cottage_limiter_limit{isn="0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	// The accessor and the registry read the same atomics.
	if st := l.Stats(); st.Admitted != 2 || st.Shed != 1 {
		t.Fatalf("Stats() = %+v, want Admitted 2 Shed 1", st)
	}
}

func TestBreakerRegisterExposesState(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(1, time.Second, clk)
	reg := obs.NewRegistry()
	b.Register(reg, obs.L("isn", "3"))
	b.OnFailure()
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`cottage_breaker_transitions_total{isn="3"} 1`,
		`cottage_breaker_state{isn="3"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}
