package overload

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(3, 100*time.Millisecond, clk)
	if b.State() != Closed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}
	b.OnFailure()
	b.OnFailure()
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow traffic")
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must block traffic before cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(3, time.Second, NewManualClock(time.Unix(0, 0)))
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (count reset by success)", b.State())
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(1, 100*time.Millisecond, clk)
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown not elapsed; must still block")
	}
	clk.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed; must admit one probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be refused")
	}
	b.OnSuccess()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow traffic")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(1, 100*time.Millisecond, clk)
	b.OnFailure()
	clk.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe must be admitted after cooldown")
	}
	b.OnFailure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	if b.Allow() {
		t.Fatal("must block during the fresh cooldown")
	}
	clk.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("must admit another probe after the second cooldown")
	}
	b.OnSuccess()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerConcurrentProbeRace(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := NewBreaker(1, time.Millisecond, clk)
	b.OnFailure()
	clk.Advance(time.Millisecond)

	// Many goroutines race Allow(); exactly one may win the probe slot.
	var wg sync.WaitGroup
	var mu sync.Mutex
	allowed := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				mu.Lock()
				allowed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if allowed != 1 {
		t.Fatalf("%d probes admitted in half-open, want exactly 1", allowed)
	}
}
