package overload

import (
	"sync"
	"time"

	"cottage/internal/obs"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed: traffic flows; failures are counted.
	Closed State = iota
	// Open: traffic is blocked until the cooldown elapses.
	Open
	// HalfOpen: cooldown elapsed; exactly one probe is in flight.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-ISN circuit breaker. It opens after `threshold`
// consecutive transport failures, blocks traffic for `cooldown`, then
// admits a single probe (half-open). A successful probe closes the
// breaker; a failed one reopens it for another cooldown.
//
// Overload rejections must NOT be fed to OnFailure — a shedding ISN is
// healthy, just busy. Only transport-level failures (dial errors,
// timeouts, broken connections) count.
type Breaker struct {
	mu          sync.Mutex
	clock       Clock
	threshold   int
	cooldown    time.Duration
	state       State
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	// transitions counts state changes (closed→open, open→half-open,
	// half-open→closed, half-open→open, …) — the ledger a registry
	// adopts via Register.
	transitions obs.Counter
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and retries after cooldown. clock may be nil for the system
// clock.
func NewBreaker(threshold int, cooldown time.Duration, clock Clock) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if clock == nil {
		clock = System
	}
	return &Breaker{clock: clock, threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent now. In the open state it
// transitions to half-open once the cooldown has elapsed and admits
// exactly one probe; concurrent callers are refused until that probe
// reports back via OnSuccess or OnFailure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			b.transitions.Inc()
			return true
		}
		return false
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// OnSuccess records a successful call: the breaker closes and the
// failure count resets.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		b.transitions.Inc()
	}
	b.state = Closed
	b.consecutive = 0
	b.probing = false
}

// OnFailure records a transport failure. In the closed state it opens
// the breaker once the consecutive-failure threshold is reached; in
// half-open it reopens immediately for another cooldown.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.state = Open
		b.openedAt = b.clock.Now()
		b.probing = false
		b.transitions.Inc()
	case Closed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = Open
			b.openedAt = b.clock.Now()
			b.transitions.Inc()
		}
	case Open:
		// Already open; refresh nothing — cooldown runs from openedAt.
	}
}

// State returns the breaker's current position without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Transitions reports how many state changes the breaker has made.
func (b *Breaker) Transitions() uint64 { return b.transitions.Value() }

// LastOpened returns when the breaker last entered the open state (zero
// if it never opened). The health prober uses it as the start of the
// outage when computing revival latency.
func (b *Breaker) LastOpened() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openedAt
}

// Register exposes the breaker on a metrics registry: the transition
// counter is adopted in place and the state becomes a scrape-time gauge
// (0 closed, 1 open, 2 half-open).
func (b *Breaker) Register(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Register("cottage_breaker_transitions_total",
		"Circuit-breaker state transitions.", &b.transitions, labels...)
	reg.GaugeFunc("cottage_breaker_state",
		"Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 { return float64(b.State()) }, labels...)
}
