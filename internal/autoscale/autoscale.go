// Package autoscale plans per-shard replica counts for the simulated
// search fleet and closes the loop against live queue and latency
// signals.
//
// The capacity planner is a classic M/M/1-per-replica sizing rule: a
// shard receiving λ queries/s, spread over R interchangeable replicas
// by join-the-shortest-queue selection, runs each replica at
// utilization ρ = (λ/R)·S (S the mean service time). The M/M/1
// response-time distribution is exponential with mean S/(1−ρ), so the
// 99th percentile is ≈ S·ln(100)/(1−ρ). PlanReplicas picks the
// smallest R whose predicted p99 meets the SLO with utilization
// headroom — the fewest machines that hold the tail.
//
// The model is deliberately crude (real service times are heavier than
// exponential, and the fleet is not work-conserving across replicas),
// which is exactly why the Controller exists: it re-plans on a cadence
// from *measured* arrival rates and service-time EWMAs, boosts on live
// queue depth the model missed, and applies hysteresis plus a
// scale-down cooldown so a noisy signal cannot flap machines on and
// off. Everything is pure float arithmetic on the caller's virtual
// clock — no wall time, no goroutines — so twin replays stay
// deterministic.
package autoscale

import (
	"fmt"
	"math"
)

// PlannerConfig parameterizes the queueing-model capacity plan.
type PlannerConfig struct {
	// SLOp99MS is the per-shard p99 response-time target in
	// milliseconds. Zero disables the latency term (plan on utilization
	// alone).
	SLOp99MS float64
	// UtilizationCap is the maximum per-replica utilization ρ the plan
	// tolerates (default 0.85). Above it the queueing delay explodes and
	// the p99 formula is meaningless anyway.
	UtilizationCap float64
	// MaxReplicas caps R at the hardware that exists (default 1).
	MaxReplicas int
}

func (p PlannerConfig) withDefaults() PlannerConfig {
	if p.UtilizationCap <= 0 || p.UtilizationCap >= 1 {
		p.UtilizationCap = 0.85
	}
	if p.MaxReplicas < 1 {
		p.MaxReplicas = 1
	}
	return p
}

// P99MS is the M/M/1 99th-percentile response time for mean service
// time serviceMS at utilization rho: the response-time distribution is
// exponential with mean S/(1−ρ), so the p-quantile is −ln(1−p) times
// that mean.
func P99MS(serviceMS, rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	return serviceMS * math.Log(100) / (1 - rho)
}

// PlanReplicas returns the smallest replica count R ≤ MaxReplicas that
// keeps per-replica utilization under the cap and predicted p99 within
// the SLO, or MaxReplicas when even the full fleet cannot (the
// controller then runs saturated and the SLO-miss shows up in the
// measured tail, where it belongs). With no load or no service data it
// returns 1 — capacity for a signal that isn't there yet is waste.
func PlanReplicas(cfg PlannerConfig, arrivalQPS, serviceMS float64) int {
	cfg = cfg.withDefaults()
	if arrivalQPS <= 0 || serviceMS <= 0 {
		return 1
	}
	for r := 1; r <= cfg.MaxReplicas; r++ {
		rho := arrivalQPS * serviceMS / 1000 / float64(r)
		if rho >= cfg.UtilizationCap {
			continue
		}
		if cfg.SLOp99MS <= 0 || P99MS(serviceMS, rho) <= cfg.SLOp99MS {
			return r
		}
	}
	return cfg.MaxReplicas
}

// Config parameterizes the closed-loop Controller.
type Config struct {
	Planner PlannerConfig
	// ReplanIntervalMS is the control cadence (default 2000 ms of
	// virtual time). Replan calls before the cadence elapses are no-ops.
	ReplanIntervalMS float64
	// ScaleDownCooldownMS is the minimum time since a shard's last scale
	// event before it may scale down (default 3× the replan interval).
	// Scale-ups are never delayed — under-capacity costs latency now,
	// over-capacity only costs watts.
	ScaleDownCooldownMS float64
	// HysteresisFrac widens the gap between the scale-up and scale-down
	// thresholds (default 0.15): a shard only scales down if the plan
	// recomputed against an SLO tightened by this fraction *still* wants
	// fewer replicas. Without it a target hovering at a plan boundary
	// flaps machines every cooldown.
	HysteresisFrac float64
	// BoostQueueMS is the live queue-depth emergency trigger: a shard
	// whose selected replica already has more than this much backlog at
	// replan time gets one extra replica immediately, whatever the model
	// says (default 0 = disabled). This is the Eq. 2 signal closing the
	// loop on everything the M/M/1 model cannot see.
	BoostQueueMS float64
	// ServiceAlpha is the service-time EWMA weight (default 0.2).
	ServiceAlpha float64
	// RateAlpha blends the newest windowed arrival-rate measurement into
	// the running estimate (default 0.5).
	RateAlpha float64
}

func (c Config) withDefaults() Config {
	c.Planner = c.Planner.withDefaults()
	if c.ReplanIntervalMS <= 0 {
		c.ReplanIntervalMS = 2000
	}
	if c.ScaleDownCooldownMS <= 0 {
		c.ScaleDownCooldownMS = 3 * c.ReplanIntervalMS
	}
	if c.HysteresisFrac <= 0 {
		c.HysteresisFrac = 0.15
	}
	if c.ServiceAlpha <= 0 || c.ServiceAlpha > 1 {
		c.ServiceAlpha = 0.2
	}
	if c.RateAlpha <= 0 || c.RateAlpha > 1 {
		c.RateAlpha = 0.5
	}
	return c
}

// Change is one scale event the controller decided on.
type Change struct {
	TMS      float64
	Shard    int
	From, To int
}

// String renders a change for plan logs and golden comparisons.
func (ch Change) String() string {
	return fmt.Sprintf("t=%.0fms shard=%d %d->%d", ch.TMS, ch.Shard, ch.From, ch.To)
}

// Controller is the closed-loop autoscaler: it accumulates arrival and
// service observations between replans and, on each cadence tick,
// re-runs the capacity plan per shard with hysteresis, cooldown, and
// the queue-depth boost. Not safe for concurrent use; the twin's
// replay loop is single-threaded virtual time.
type Controller struct {
	cfg          Config
	current      []int
	svcEWMA      []float64
	arrivals     int
	rateQPS      float64
	haveRate     bool
	lastReplanMS float64
	lastChangeMS []float64
	log          []Change
}

// New builds a controller for shards shards, each starting at initialR
// active replicas (clamped to [1, MaxReplicas]). The caller is
// responsible for starting the fleet in the same state.
func New(cfg Config, shards, initialR int) *Controller {
	if shards <= 0 {
		panic("autoscale: non-positive shard count")
	}
	cfg = cfg.withDefaults()
	if initialR < 1 {
		initialR = 1
	}
	if initialR > cfg.Planner.MaxReplicas {
		initialR = cfg.Planner.MaxReplicas
	}
	c := &Controller{
		cfg:          cfg,
		current:      make([]int, shards),
		svcEWMA:      make([]float64, shards),
		lastChangeMS: make([]float64, shards),
	}
	for s := range c.current {
		c.current[s] = initialR
	}
	return c
}

// RecordArrival counts one query arrival (a query fans out to every
// shard, so the fleet arrival rate is each shard's arrival rate).
func (c *Controller) RecordArrival() { c.arrivals++ }

// RecordService folds one completed execution's service time into the
// shard's EWMA. Non-positive observations carry no signal and are
// dropped.
func (c *Controller) RecordService(shard int, serviceMS float64) {
	if serviceMS <= 0 {
		return
	}
	if c.svcEWMA[shard] == 0 {
		c.svcEWMA[shard] = serviceMS
		return
	}
	a := c.cfg.ServiceAlpha
	c.svcEWMA[shard] = a*serviceMS + (1-a)*c.svcEWMA[shard]
}

// Replicas returns the controller's current plan for a shard.
func (c *Controller) Replicas(shard int) int { return c.current[shard] }

// RateQPS returns the current arrival-rate estimate.
func (c *Controller) RateQPS() float64 { return c.rateQPS }

// Log returns every scale event decided so far, in order — the plan
// trail determinism tests compare byte for byte.
func (c *Controller) Log() []Change { return c.log }

// Due reports whether the replan cadence has elapsed at tMS — a cheap
// pre-check so hot loops only gather queue-depth signals when a Replan
// will actually run.
func (c *Controller) Due(tMS float64) bool {
	return tMS >= c.lastReplanMS+c.cfg.ReplanIntervalMS
}

// Replan runs one control step at virtual time tMS, given each shard's
// live queue depth (Eq. 2's backlog term, in ms; nil means no queue
// signal). It returns the scale changes decided this step (nil when
// the cadence has not elapsed or nothing changed). The caller applies
// the changes to the fleet.
func (c *Controller) Replan(tMS float64, queueMS []float64) []Change {
	if tMS < c.lastReplanMS+c.cfg.ReplanIntervalMS {
		return nil
	}
	elapsed := tMS - c.lastReplanMS
	inst := float64(c.arrivals) / elapsed * 1000
	if !c.haveRate {
		c.rateQPS = inst
		c.haveRate = true
	} else {
		c.rateQPS = c.cfg.RateAlpha*inst + (1-c.cfg.RateAlpha)*c.rateQPS
	}
	c.arrivals = 0
	c.lastReplanMS = tMS

	var changes []Change
	for s := range c.current {
		svc := c.svcEWMA[s]
		if svc <= 0 {
			continue // no service signal yet: hold
		}
		target := PlanReplicas(c.cfg.Planner, c.rateQPS, svc)
		if c.cfg.BoostQueueMS > 0 && s < len(queueMS) &&
			queueMS[s] > c.cfg.BoostQueueMS && target <= c.current[s] {
			// The model thinks we're fine but the queue says otherwise:
			// add a machine now, ask questions at the next cadence.
			target = c.current[s] + 1
			if target > c.cfg.Planner.MaxReplicas {
				target = c.cfg.Planner.MaxReplicas
			}
		}
		switch {
		case target > c.current[s]:
			changes = append(changes, Change{TMS: tMS, Shard: s, From: c.current[s], To: target})
			c.current[s] = target
			c.lastChangeMS[s] = tMS
		case target < c.current[s]:
			tight := c.cfg.Planner
			tight.SLOp99MS *= 1 - c.cfg.HysteresisFrac
			if PlanReplicas(tight, c.rateQPS, svc) >= c.current[s] {
				break // inside the hysteresis band: hold
			}
			if tMS-c.lastChangeMS[s] < c.cfg.ScaleDownCooldownMS {
				break // too soon since the last scale event
			}
			// One step at a time: scale-downs are cheap to undo but
			// expensive to overshoot.
			to := c.current[s] - 1
			changes = append(changes, Change{TMS: tMS, Shard: s, From: c.current[s], To: to})
			c.current[s] = to
			c.lastChangeMS[s] = tMS
		}
	}
	c.log = append(c.log, changes...)
	return changes
}

// Reset returns the controller to its initial state (initialR as at
// New, no observations, empty log), for run independence in sweeps.
func (c *Controller) Reset(initialR int) {
	if initialR < 1 {
		initialR = 1
	}
	if initialR > c.cfg.Planner.MaxReplicas {
		initialR = c.cfg.Planner.MaxReplicas
	}
	for s := range c.current {
		c.current[s] = initialR
		c.svcEWMA[s] = 0
		c.lastChangeMS[s] = 0
	}
	c.arrivals = 0
	c.rateQPS = 0
	c.haveRate = false
	c.lastReplanMS = 0
	c.log = nil
}
