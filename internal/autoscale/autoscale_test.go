package autoscale

import (
	"fmt"
	"math"
	"testing"
)

func TestP99MS(t *testing.T) {
	// At ρ=0 the p99 is just the service time's exponential p99.
	if got, want := P99MS(10, 0), 10*math.Log(100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("P99MS(10,0)=%v want %v", got, want)
	}
	// Saturation blows up.
	if !math.IsInf(P99MS(10, 1), 1) || !math.IsInf(P99MS(10, 1.5), 1) {
		t.Fatal("saturated queue should predict infinite p99")
	}
	// Higher utilization, longer tail.
	if P99MS(10, 0.8) <= P99MS(10, 0.4) {
		t.Fatal("p99 not increasing in utilization")
	}
}

func TestPlanReplicasPins(t *testing.T) {
	cfg := PlannerConfig{SLOp99MS: 200, MaxReplicas: 8}
	// 10 ms service at 20 QPS: ρ(R=1)=0.2, p99≈10·4.6/0.8≈58 ms → R=1.
	if got := PlanReplicas(cfg, 20, 10); got != 1 {
		t.Fatalf("light load planned R=%d, want 1", got)
	}
	// 10 ms at 120 QPS: ρ(R=1)=1.2 saturated; R=2 → ρ=0.6,
	// p99≈10·4.6/0.4≈115 ≤ 200 → R=2.
	if got := PlanReplicas(cfg, 120, 10); got != 2 {
		t.Fatalf("medium load planned R=%d, want 2", got)
	}
	// Even the full fleet cannot meet an absurd SLO: plan the max.
	tight := PlannerConfig{SLOp99MS: 1, MaxReplicas: 4}
	if got := PlanReplicas(tight, 500, 10); got != 4 {
		t.Fatalf("impossible SLO planned R=%d, want MaxReplicas", got)
	}
	// No signal → 1.
	if PlanReplicas(cfg, 0, 10) != 1 || PlanReplicas(cfg, 10, 0) != 1 {
		t.Fatal("no-signal plan should be 1")
	}
	// SLO disabled: utilization cap alone decides.
	util := PlannerConfig{MaxReplicas: 8}
	if got := PlanReplicas(util, 120, 10); got != 2 {
		t.Fatalf("utilization-only plan R=%d, want 2 (ρ=0.6)", got)
	}
}

// TestPlanReplicasMonotone: the plan never shrinks as load or service
// time grows — the invariant the harness sweep gate relies on.
func TestPlanReplicasMonotone(t *testing.T) {
	cfg := PlannerConfig{SLOp99MS: 150, MaxReplicas: 6}
	prev := 0
	for _, qps := range []float64{5, 20, 50, 100, 200, 400, 800} {
		r := PlanReplicas(cfg, qps, 12)
		if r < prev {
			t.Fatalf("plan shrank to %d at %v QPS (was %d)", r, qps, prev)
		}
		prev = r
	}
	prev = 0
	for _, svc := range []float64{1, 4, 8, 16, 32, 64} {
		r := PlanReplicas(cfg, 60, svc)
		if r < prev {
			t.Fatalf("plan shrank to %d at %v ms service (was %d)", r, svc, prev)
		}
		prev = r
	}
}

func controllerCfg() Config {
	return Config{
		Planner:          PlannerConfig{SLOp99MS: 200, MaxReplicas: 4},
		ReplanIntervalMS: 1000,
		BoostQueueMS:     50,
	}
}

// feed records n arrivals and one service observation per shard.
func feed(c *Controller, shards, n int, svcMS float64) {
	for i := 0; i < n; i++ {
		c.RecordArrival()
	}
	for s := 0; s < shards; s++ {
		c.RecordService(s, svcMS)
	}
}

func TestControllerScalesUpOnLoad(t *testing.T) {
	c := New(controllerCfg(), 2, 1)
	// 150 arrivals over 1000 ms = 150 QPS at 10 ms service: needs R=2.
	feed(c, 2, 150, 10)
	ch := c.Replan(1000, nil)
	if len(ch) != 2 {
		t.Fatalf("changes %v, want both shards scaled", ch)
	}
	for s := 0; s < 2; s++ {
		if c.Replicas(s) != 2 {
			t.Fatalf("shard %d at R=%d, want 2", s, c.Replicas(s))
		}
	}
	if math.Abs(c.RateQPS()-150) > 1e-9 {
		t.Fatalf("rate estimate %v, want 150", c.RateQPS())
	}
}

func TestControllerCadence(t *testing.T) {
	c := New(controllerCfg(), 1, 1)
	feed(c, 1, 300, 10)
	if ch := c.Replan(500, nil); ch != nil {
		t.Fatalf("replanned before the cadence: %v", ch)
	}
	if ch := c.Replan(1000, nil); len(ch) != 1 {
		t.Fatalf("cadence tick did not replan: %v", ch)
	}
}

func TestControllerScaleDownCooldownAndHysteresis(t *testing.T) {
	cfg := controllerCfg() // cooldown defaults to 3× cadence = 3000 ms
	c := New(cfg, 1, 1)
	feed(c, 1, 300, 10) // 300 QPS → R=4 (ρ at R=3 would be 1.0)
	c.Replan(1000, nil)
	if c.Replicas(0) != 4 {
		t.Fatalf("R=%d after burst, want 4", c.Replicas(0))
	}
	// Load vanishes. The very next ticks are inside the cooldown: hold.
	feed(c, 1, 10, 10)
	c.Replan(2000, nil)
	feed(c, 1, 10, 10)
	c.Replan(3000, nil)
	if c.Replicas(0) != 4 {
		t.Fatalf("scaled down inside cooldown to R=%d", c.Replicas(0))
	}
	// Past the cooldown: one step at a time, not a cliff dive.
	feed(c, 1, 10, 10)
	c.Replan(4000, nil)
	if c.Replicas(0) != 3 {
		t.Fatalf("R=%d after cooldown, want one-step 3", c.Replicas(0))
	}
	// The next step has its own cooldown.
	feed(c, 1, 10, 10)
	c.Replan(5000, nil)
	if c.Replicas(0) != 3 {
		t.Fatalf("second step ignored the cooldown: R=%d", c.Replicas(0))
	}
}

func TestControllerQueueBoost(t *testing.T) {
	c := New(controllerCfg(), 1, 1)
	// Light modeled load but a deep live queue: boost one step anyway.
	feed(c, 1, 10, 10)
	ch := c.Replan(1000, []float64{120})
	if len(ch) != 1 || c.Replicas(0) != 2 {
		t.Fatalf("queue boost did not fire: %v, R=%d", ch, c.Replicas(0))
	}
	// Shallow queue: no boost.
	feed(c, 1, 10, 10)
	if ch := c.Replan(2000, []float64{10}); ch != nil {
		t.Fatalf("boost fired on a shallow queue: %v", ch)
	}
}

// TestControllerDeterministic: the same observation sequence produces
// an identical plan log, run to run.
func TestControllerDeterministic(t *testing.T) {
	run := func() string {
		c := New(controllerCfg(), 3, 1)
		for tick := 1; tick <= 20; tick++ {
			n := 30 + 20*((tick*7)%5) // deterministic pseudo-load
			feed(c, 3, n, float64(5+(tick%4)*10))
			c.Replan(float64(tick)*1000, []float64{0, float64(tick * 10), 0})
		}
		return fmt.Sprint(c.Log())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("plan log differs across identical runs:\n%s\nvs\n%s", a, b)
	}
	if a == "[]" {
		t.Fatal("determinism fixture never scaled — not exercising anything")
	}
}

func TestControllerHoldsWithoutServiceSignal(t *testing.T) {
	c := New(controllerCfg(), 1, 2)
	for i := 0; i < 500; i++ {
		c.RecordArrival()
	}
	if ch := c.Replan(1000, nil); ch != nil {
		t.Fatalf("replanned a shard with no service data: %v", ch)
	}
	if c.Replicas(0) != 2 {
		t.Fatal("initial R not held")
	}
}

func TestControllerReset(t *testing.T) {
	c := New(controllerCfg(), 2, 1)
	feed(c, 2, 300, 10)
	c.Replan(1000, nil)
	c.Reset(1)
	if c.Replicas(0) != 1 || c.Replicas(1) != 1 || c.Log() != nil || c.RateQPS() != 0 {
		t.Fatal("Reset left state behind")
	}
	// A reset controller replays to the same plan.
	feed(c, 2, 300, 10)
	first := fmt.Sprint(c.Replan(1000, nil))
	c.Reset(1)
	feed(c, 2, 300, 10)
	if again := fmt.Sprint(c.Replan(1000, nil)); again != first {
		t.Fatalf("post-reset replay diverged: %s vs %s", again, first)
	}
}

func TestControllerDefaultsAndClamps(t *testing.T) {
	cfg := Config{Planner: PlannerConfig{MaxReplicas: 3}}.withDefaults()
	if cfg.ReplanIntervalMS != 2000 || cfg.ScaleDownCooldownMS != 6000 {
		t.Fatalf("cadence defaults: %+v", cfg)
	}
	if cfg.HysteresisFrac != 0.15 || cfg.ServiceAlpha != 0.2 || cfg.RateAlpha != 0.5 {
		t.Fatalf("smoothing defaults: %+v", cfg)
	}
	if New(Config{}, 1, 9).Replicas(0) != 1 {
		t.Fatal("initialR not clamped to MaxReplicas")
	}
	if New(Config{Planner: PlannerConfig{MaxReplicas: 4}}, 1, 0).Replicas(0) != 1 {
		t.Fatal("initialR not clamped to 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted zero shards")
		}
	}()
	New(Config{}, 0, 1)
}

func TestServiceEWMA(t *testing.T) {
	c := New(controllerCfg(), 1, 1)
	c.RecordService(0, -5) // no signal
	c.RecordService(0, 10) // seeds the EWMA
	c.RecordService(0, 20)
	if got := c.svcEWMA[0]; math.Abs(got-12) > 1e-9 { // 0.2·20 + 0.8·10
		t.Fatalf("EWMA %v, want 12", got)
	}
}

func TestChangeString(t *testing.T) {
	got := Change{TMS: 3000, Shard: 2, From: 1, To: 3}.String()
	if got != "t=3000ms shard=2 1->3" {
		t.Fatalf("Change.String() = %q", got)
	}
}

// TestControllerRateBlending: the windowed rate blends with RateAlpha
// rather than whiplashing to the newest window.
func TestControllerRateBlending(t *testing.T) {
	c := New(controllerCfg(), 1, 1)
	feed(c, 1, 100, 10)
	c.Replan(1000, nil) // rate = 100
	feed(c, 1, 300, 10)
	c.Replan(2000, nil) // rate = 0.5·300 + 0.5·100 = 200
	if math.Abs(c.RateQPS()-200) > 1e-9 {
		t.Fatalf("blended rate %v, want 200", c.RateQPS())
	}
}
