package engine

import (
	"math"
	"testing"
)

// TestFailedISNDegradesRun: failing nodes mid-fleet must degrade quality
// and stretch latency (the aggregator waits out its failure-detection
// timeout), never error or zero out the run.
func TestFailedISNDegradesRun(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}

	healthy := Summarize(e.Run(p, evs))

	e.Cluster.FailISN(1)
	e.Cluster.FailISN(4)
	defer e.Cluster.ClearFaults()
	degraded := e.Run(p, evs)
	sm := Summarize(degraded)

	if sm.MeanPAtK >= healthy.MeanPAtK {
		t.Errorf("losing 2/8 shards should cost quality: %.3f vs %.3f", sm.MeanPAtK, healthy.MeanPAtK)
	}
	if sm.MeanPAtK <= 0 {
		t.Error("degraded run produced no quality at all")
	}
	if sm.FailedFrac != 1 {
		t.Errorf("every query hit a dead ISN, FailedFrac = %.3f", sm.FailedFrac)
	}
	for _, o := range degraded.Outcomes {
		if o.FailedISNs != 2 {
			t.Fatalf("query %d: FailedISNs = %d, want 2", o.QueryID, o.FailedISNs)
		}
		if o.ActiveISNs != len(e.Shards)-2 {
			t.Fatalf("query %d: ActiveISNs = %d", o.QueryID, o.ActiveISNs)
		}
		// With no budget, the aggregator waits out the failure timeout.
		if o.LatencyMS < e.Cluster.FailTimeoutMS {
			t.Fatalf("query %d: latency %.2f below failure-detection timeout", o.QueryID, o.LatencyMS)
		}
	}
	if sm.MeanLatency <= healthy.MeanLatency {
		t.Errorf("waiting on dead ISNs should cost latency: %.2f vs %.2f",
			sm.MeanLatency, healthy.MeanLatency)
	}
}

// TestBudgetBoundsFailureWait: with a finite budget the dead-ISN wait is
// capped by the budget, not the (longer) failure-detection timeout.
func TestBudgetBoundsFailureWait(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs[:30])
	e.Cluster.FailISN(0)
	defer e.Cluster.ClearFaults()

	budget := 20.0
	if budget >= e.Cluster.FailTimeoutMS {
		t.Fatalf("test premise broken: budget %.0f >= fail timeout %.0f", budget, e.Cluster.FailTimeoutMS)
	}
	res := e.Run(&fixedPolicy{name: "budgeted", select_: all, budgetMS: budget}, evs)
	slack := budget + 4*e.Cluster.Net.AggToISNMS + 2*e.Cluster.Net.ClientMS + 1
	for _, o := range res.Outcomes {
		if o.LatencyMS > slack {
			t.Fatalf("query %d: latency %.2f exceeds budget-bounded wait %.2f", o.QueryID, o.LatencyMS, slack)
		}
	}
}
