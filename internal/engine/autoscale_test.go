package engine

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"cottage/internal/autoscale"
	"cottage/internal/stats"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

// scaledEngine builds a replicated, dynamic-machines engine (and the
// corpus to draw traces from) — the autoscaler's home turf.
func scaledEngine(tb testing.TB, r int) (*Engine, *textgen.Corpus) {
	tb.Helper()
	ccfg := textgen.DefaultConfig()
	ccfg.NumDocs = 3000
	ccfg.VocabSize = 4000
	ccfg.NumTopics = 16
	ccfg.TopicTermCount = 120
	corpus := textgen.Generate(ccfg)
	cfg := DefaultConfig()
	cfg.NumShards = 8
	cfg.Cluster.Replicas = r
	cfg.Cluster.DynamicMachines = true
	shards := BuildShards(corpus, cfg, 2, 0.15, 5)
	return New(shards, cfg), corpus
}

// flashTrace is hot enough that its bursts saturate a single replica
// row on the fixture's tiny shards.
func flashTrace(corpus *textgen.Corpus) []trace.Query {
	return trace.Generate(corpus, trace.Config{
		Kind: trace.Wikipedia, Seed: 9, NumQueries: 800, QPS: 140,
		Arrivals: trace.ArrivalConfig{
			Profile: trace.Flash, FlashEveryMS: 2_000, FlashDurationMS: 600, FlashFactor: 5,
		},
	})
}

func testScaler(maxR int) *autoscale.Controller {
	return autoscale.New(autoscale.Config{
		Planner:          autoscale.PlannerConfig{SLOp99MS: 40, MaxReplicas: maxR},
		ReplanIntervalMS: 500,
		BoostQueueMS:     20,
	}, 8, 1)
}

// TestScaledRunDeterministicAcrossGOMAXPROCS: the closed-loop
// autoscaling replay — plan trail, machine time, every outcome — is
// bit-identical at any worker count and across repeated runs.
func TestScaledRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	e, corpus := scaledEngine(t, 3)
	qs := flashTrace(corpus)
	e.Scaler = testScaler(3)
	e.HedgeDelayMS = 30
	run := func(procs int) RunResult {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		evs := e.EvaluateAll(qs)
		return e.Run(&fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}, evs)
	}
	r1, r8 := run(1), run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Error("scaled run differs across GOMAXPROCS")
	}
	if len(r1.ScaleLog) == 0 {
		t.Fatal("flash trace never triggered a scale event — fixture too tame")
	}
	rAgain := run(1)
	if !reflect.DeepEqual(r1.ScaleLog, rAgain.ScaleLog) {
		t.Errorf("plan trail differs across runs:\n%v\nvs\n%v", r1.ScaleLog, rAgain.ScaleLog)
	}
}

// TestScaledRunSavesMachineTime: under the same flash trace, the
// closed-loop controller bills fewer machine-hours than the static
// fully-replicated fleet while the replica machinery stays live.
func TestScaledRunSavesMachineTime(t *testing.T) {
	e, corpus := scaledEngine(t, 3)
	evs := e.EvaluateAll(flashTrace(corpus))
	p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}

	static := e.Run(p, evs) // no scaler: all 3 rows on for the horizon
	e.Scaler = testScaler(3)
	scaled := e.Run(p, evs)

	if scaled.MachineMS >= static.MachineMS {
		t.Fatalf("autoscaled machine time %.0f not below static %.0f",
			scaled.MachineMS, static.MachineMS)
	}
	if math.Abs(static.MachineMS-static.DurationMS*24) > 1e-6*static.MachineMS {
		t.Fatalf("static machine time %.0f, want horizon×24 nodes = %.0f",
			static.MachineMS, static.DurationMS*24)
	}
	if len(scaled.ScaleLog) == 0 {
		t.Fatal("scaled run has no plan trail")
	}
	// Quality is untouched: participation is policy-side, and every
	// query still reaches every shard.
	for i := range scaled.Outcomes {
		if scaled.Outcomes[i].PAtK != 1 {
			t.Fatalf("autoscaling broke quality at query %d", i)
		}
	}
}

// TestHedgingTamesInjectedStraggler: with one limping replica in each
// group's row 0, fixed-delay hedging cuts the tail versus no hedging
// and bills the duplicate work it burned.
func TestHedgingTamesInjectedStraggler(t *testing.T) {
	e, corpus := scaledEngine(t, 2)
	// A light stationary trace: the tail belongs to the straggler, not
	// to queueing — exactly the regime hedging is for.
	qs := trace.Generate(corpus, trace.Config{
		Kind: trace.Wikipedia, Seed: 4, NumQueries: 300, QPS: 25})
	// Row 0 of shard 0 limps badly; its sibling (row 1) is clean.
	e.Cluster.SetExtraDelayMS(0, 80)
	evs := e.EvaluateAll(qs)
	p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}

	plain := e.Run(p, evs)
	e.HedgeDelayMS = 25
	hedged := e.Run(p, evs)

	tail := func(r RunResult) float64 {
		lats := make([]float64, len(r.Outcomes))
		for i, o := range r.Outcomes {
			lats[i] = o.LatencyMS
		}
		return stats.Percentile(lats, 99)
	}
	if tp, th := tail(plain), tail(hedged); th >= tp {
		t.Fatalf("hedged p99 %.2f not below plain %.2f", th, tp)
	}
	sh := Summarize(hedged)
	if sh.HedgeLegRate <= 0 || sh.DuplicateWorkFrac <= 0 {
		t.Fatalf("hedged run recorded no hedging cost: %+v", sh)
	}
	sp := Summarize(plain)
	if sp.HedgeLegRate != 0 || sp.DuplicateWorkFrac != 0 {
		t.Fatal("unhedged run recorded hedges")
	}
}
