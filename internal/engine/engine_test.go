package engine

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"cottage/internal/qcache"
	"cottage/internal/search"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

// smallEngine builds a fast engine fixture (no NN training).
func smallEngine(tb testing.TB) (*Engine, []trace.Query) {
	tb.Helper()
	ccfg := textgen.DefaultConfig()
	ccfg.NumDocs = 3000
	ccfg.VocabSize = 4000
	ccfg.NumTopics = 16
	ccfg.TopicTermCount = 120
	corpus := textgen.Generate(ccfg)
	cfg := DefaultConfig()
	cfg.NumShards = 8
	shards := BuildShards(corpus, cfg, 2, 0.15, 5)
	e := New(shards, cfg)
	qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 3, NumQueries: 120, QPS: 10})
	return e, qs
}

// fixedPolicy is a test policy with a constant decision shape.
type fixedPolicy struct {
	name     string
	select_  func(i int) bool
	budgetMS float64
	freq     float64
	observed []float64
}

func (f *fixedPolicy) Name() string { return f.name }
func (f *fixedPolicy) Decide(e *Engine, _ trace.Query, _ float64) Decision {
	d := Decision{
		Participate: make([]bool, len(e.Shards)),
		Freq:        make([]float64, len(e.Shards)),
		BudgetMS:    f.budgetMS,
	}
	for i := range d.Participate {
		d.Participate[i] = f.select_(i)
		d.Freq[i] = f.freq
	}
	return d
}
func (f *fixedPolicy) Observe(l float64) { f.observed = append(f.observed, l) }

func all(int) bool { return true }

func TestEvaluateGroundTruth(t *testing.T) {
	e, qs := smallEngine(t)
	for _, q := range qs[:20] {
		ev := e.Evaluate(q)
		if len(ev.TopK) > e.K {
			t.Fatalf("ground truth larger than K")
		}
		// TopK must equal the merge of shard results by construction; and
		// every shard's hits are sorted.
		for si := range ev.PerShard {
			if ev.Cycles[si] <= 0 {
				t.Fatalf("non-positive cycles for shard %d", si)
			}
		}
		for i := 1; i < len(ev.TopK); i++ {
			if ev.TopK[i].Score > ev.TopK[i-1].Score {
				t.Fatal("ground truth not sorted")
			}
		}
	}
}

func TestExhaustiveLikeRunPerfectQuality(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}
	res := e.Run(p, evs)
	if len(res.Outcomes) != len(qs) {
		t.Fatalf("got %d outcomes", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.PAtK != 1 {
			t.Fatalf("query %d: P@K = %v under full participation", o.QueryID, o.PAtK)
		}
		if o.ActiveISNs != len(e.Shards) {
			t.Fatalf("active ISNs %d", o.ActiveISNs)
		}
		if o.LatencyMS <= 0 {
			t.Fatalf("non-positive latency")
		}
		if o.DroppedISNs != 0 {
			t.Fatalf("unbudgeted run dropped responses")
		}
	}
	if res.AvgPowerW <= e.Cluster.Meter.Model().IdleWatts {
		t.Error("power should exceed idle")
	}
	if len(p.observed) != len(qs) {
		t.Error("Observe not called per query")
	}
}

func TestSubsetParticipationReducesQualityAndWork(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	full := e.Run(&fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}, evs)
	half := e.Run(&fixedPolicy{name: "half", select_: func(i int) bool { return i%2 == 0 }, budgetMS: math.Inf(1)}, evs)
	sf, sh := Summarize(full), Summarize(half)
	if sh.MeanPAtK >= sf.MeanPAtK {
		t.Errorf("half participation should lose quality: %v vs %v", sh.MeanPAtK, sf.MeanPAtK)
	}
	if sh.MeanCRES >= sf.MeanCRES {
		t.Errorf("half participation should search fewer docs")
	}
	if sh.MeanISNs != 4 {
		t.Errorf("half participation MeanISNs = %v", sh.MeanISNs)
	}
	if sh.AvgPowerW >= sf.AvgPowerW {
		t.Errorf("half participation should use less power: %v vs %v", sh.AvgPowerW, sf.AvgPowerW)
	}
}

func TestTightBudgetCutsLatencyAndQuality(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	free := e.Run(&fixedPolicy{name: "free", select_: all, budgetMS: math.Inf(1)}, evs)
	sf := Summarize(free)
	// A budget at ~60% of the unbudgeted mean must truncate stragglers.
	budget := sf.MeanLatency * 0.6
	tight := e.Run(&fixedPolicy{name: "tight", select_: all, budgetMS: budget}, evs)
	st := Summarize(tight)
	if st.MeanLatency >= sf.MeanLatency {
		t.Errorf("budgeted latency %v should be below unbudgeted %v", st.MeanLatency, sf.MeanLatency)
	}
	if st.P95Latency > budget+2 {
		t.Errorf("budgeted p95 %v should be near the %vms budget", st.P95Latency, budget)
	}
	if st.MeanPAtK >= sf.MeanPAtK {
		t.Errorf("cutting stragglers must cost quality: %v vs %v", st.MeanPAtK, sf.MeanPAtK)
	}
	if st.DroppedFrac == 0 {
		t.Error("tight budget should drop some responses")
	}
}

func TestBoostReducesLatency(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	def := e.Run(&fixedPolicy{name: "def", select_: all, budgetMS: math.Inf(1)}, evs)
	boost := e.Run(&fixedPolicy{name: "boost", select_: all, budgetMS: math.Inf(1), freq: e.Cluster.Ladder.Max()}, evs)
	sd, sb := Summarize(def), Summarize(boost)
	want := e.Cluster.Ladder.Max() / e.Cluster.Ladder.Default()
	ratio := sd.MeanLatency / sb.MeanLatency
	// Service dominates latency at this load, so the speedup should be
	// most of the frequency ratio.
	if ratio < want*0.7 || ratio > want*1.3 {
		t.Errorf("boost speedup %v, want near %v", ratio, want)
	}
	if sb.AvgPowerW <= sd.AvgPowerW {
		t.Error("boosting everything should cost power")
	}
}

func TestRunsAreIndependent(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}
	a := Summarize(e.Run(p, evs))
	b := Summarize(e.Run(p, evs))
	if a.MeanLatency != b.MeanLatency || a.AvgPowerW != b.AvgPowerW {
		t.Error("consecutive runs differ: cluster state leaked")
	}
}

func TestPolicySizeMismatchPanics(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs[:1])
	bad := &fixedPolicy{name: "bad", select_: all, budgetMS: math.Inf(1)}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mis-sized Participate")
		}
	}()
	// Wrap Decide to return a short vector.
	e.Run(policyFunc{name: "bad", decide: func(e *Engine, q trace.Query, now float64) Decision {
		d := bad.Decide(e, q, now)
		d.Participate = d.Participate[:2]
		return d
	}}, evs)
}

type policyFunc struct {
	name   string
	decide func(*Engine, trace.Query, float64) Decision
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Decide(e *Engine, q trace.Query, now float64) Decision {
	return p.decide(e, q, now)
}
func (policyFunc) Observe(float64) {}

func TestNoParticipantsYieldsZeroQuality(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs[:5])
	res := e.Run(&fixedPolicy{name: "none", select_: func(int) bool { return false }, budgetMS: math.Inf(1)}, evs)
	for _, o := range res.Outcomes {
		if o.PAtK != 0 {
			t.Errorf("no participants should give zero quality, got %v", o.PAtK)
		}
		if o.ActiveISNs != 0 || o.DocsSearched != 0 {
			t.Error("no participants should do no work")
		}
	}
}

func TestQueueingUnderLoad(t *testing.T) {
	e, _ := smallEngine(t)
	// A burst of simultaneous queries must queue on the single-worker
	// ISNs: later queries see higher latency.
	burst := make([]trace.Query, 8)
	for i := range burst {
		burst[i] = trace.Query{ID: i, Terms: []string{e.Shards[0].Terms[0].Text}, ArrivalMS: 0}
	}
	evs := e.EvaluateAll(burst)
	res := e.Run(&fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}, evs)
	if res.Outcomes[7].LatencyMS <= res.Outcomes[0].LatencyMS {
		t.Errorf("burst tail %v should exceed head %v",
			res.Outcomes[7].LatencyMS, res.Outcomes[0].LatencyMS)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(RunResult{Policy: "x"})
	if s.Policy != "x" || s.Queries != 0 {
		t.Error("empty summary wrong")
	}
}

func TestBuildShardsRoundRobin(t *testing.T) {
	ccfg := textgen.DefaultConfig()
	ccfg.NumDocs = 600
	ccfg.VocabSize = 1500
	ccfg.NumTopics = 8
	ccfg.TopicTermCount = 80
	corpus := textgen.Generate(ccfg)
	cfg := DefaultConfig()
	cfg.NumShards = 4
	shards := BuildShardsRoundRobin(corpus, cfg)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.NumDocs
	}
	if total != 600 {
		t.Fatalf("allocated %d docs", total)
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(nil, DefaultConfig())
}

func TestStrategiesProduceSameGroundTruth(t *testing.T) {
	e, qs := smallEngine(t)
	e2cfg := DefaultConfig()
	e2cfg.NumShards = 8
	e2cfg.Strategy = search.StrategyExhaustive
	e2 := New(e.Shards, e2cfg)
	for _, q := range qs[:10] {
		a := e.Evaluate(q)
		b := e2.Evaluate(q)
		if len(a.TopK) != len(b.TopK) {
			t.Fatalf("ground truth sizes differ")
		}
		for i := range a.TopK {
			if math.Abs(a.TopK[i].Score-b.TopK[i].Score) > 1e-9 {
				t.Fatalf("ground truth scores differ at %d", i)
			}
		}
	}
}

func BenchmarkEvaluateQuery(b *testing.B) {
	e, qs := smallEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Evaluate(qs[i%len(qs)])
	}
}

func BenchmarkRunQuery(b *testing.B) {
	e, qs := smallEngine(b)
	evs := e.EvaluateAll(qs)
	p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(evs) == 0 {
			e.Cluster.Reset()
		}
		_ = e.runOne(p, evs[i%len(evs)])
	}
}

func TestCacheShortCircuitsRepeats(t *testing.T) {
	e, qs := smallEngine(t)
	// A trace with every query repeated: second occurrence must hit.
	doubled := make([]trace.Query, 0, 40)
	now := 0.0
	for i := 0; i < 20; i++ {
		now += 40
		doubled = append(doubled, trace.Query{ID: 2 * i, Terms: qs[i].Terms, ArrivalMS: now})
		now += 40
		doubled = append(doubled, trace.Query{ID: 2*i + 1, Terms: qs[i].Terms, ArrivalMS: now})
	}
	evs := e.EvaluateAll(doubled)
	e.Cache = qcache.NewLRU(256)
	defer func() { e.Cache = nil }()
	res := e.Run(&fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}, evs)
	if res.CacheHitRate < 0.45 || res.CacheHitRate > 0.55 {
		t.Fatalf("hit rate = %v, want ~0.5", res.CacheHitRate)
	}
	for i := 1; i < len(res.Outcomes); i += 2 {
		hit, miss := res.Outcomes[i], res.Outcomes[i-1]
		if hit.ActiveISNs != 0 || hit.DocsSearched != 0 {
			t.Fatalf("cache hit %d did ISN work", i)
		}
		if hit.LatencyMS >= miss.LatencyMS {
			t.Fatalf("cache hit %d slower than miss", i)
		}
		if hit.PAtK != miss.PAtK {
			t.Fatalf("cached quality %v != original %v", hit.PAtK, miss.PAtK)
		}
	}
	// Power with the cache must be below power without it.
	e.Cache = nil
	uncached := e.Run(&fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}, evs)
	if res.AvgPowerW >= uncached.AvgPowerW {
		t.Errorf("cache should save power: %v vs %v", res.AvgPowerW, uncached.AvgPowerW)
	}
}

func TestReplayDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// EvaluateAll fans out per query and per shard through par; Run's
	// outcome accounting is sequential over an index-addressed input. The
	// whole replay must be bit-identical at any worker count.
	e, qs := smallEngine(t)
	run := func(procs int) ([]*Evaluated, RunResult) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		evs := e.EvaluateAll(qs)
		p := &fixedPolicy{name: "all", select_: all, budgetMS: math.Inf(1)}
		return evs, e.Run(p, evs)
	}
	evs1, r1 := run(1)
	evs8, r8 := run(8)
	if !reflect.DeepEqual(evs1, evs8) {
		t.Error("EvaluateAll differs across GOMAXPROCS")
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Error("Run differs across GOMAXPROCS")
	}
}
