package engine

import (
	"math"
	"reflect"
	"runtime"
	"testing"
)

// tightBudget returns a budget at ~60% of the unbudgeted mean latency —
// enough pressure that stragglers reliably miss it.
func tightBudget(e *Engine, evs []*Evaluated) float64 {
	free := e.Run(&fixedPolicy{name: "free", select_: all, budgetMS: math.Inf(1)}, evs)
	return Summarize(free).MeanLatency * 0.6
}

// TestAnytimeConvertsDropsToTruncations: with the same tight budget,
// turning Anytime on must convert every dropped straggler into a
// truncated answer, never lose quality on any query, and leave the
// latency distribution untouched (truncation happens at the deadline
// either way — anytime changes what is answered, not when).
func TestAnytimeConvertsDropsToTruncations(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	budget := tightBudget(e, evs)
	p := &fixedPolicy{name: "tight", select_: all, budgetMS: budget}
	drop := e.Run(p, evs)
	e.Anytime = true
	defer func() { e.Anytime = false }()
	any := e.Run(p, evs)

	sd, sa := Summarize(drop), Summarize(any)
	if sd.DroppedFrac == 0 {
		t.Fatal("budget not tight enough to drop anything; test is vacuous")
	}
	if sa.TruncatedFrac != sd.DroppedFrac {
		t.Errorf("truncated frac %v != dropped frac %v: some stragglers not converted",
			sa.TruncatedFrac, sd.DroppedFrac)
	}
	if sa.DroppedFrac != 0 {
		t.Errorf("anytime run still dropped %v of queries", sa.DroppedFrac)
	}
	if sa.MeanPAtK <= sd.MeanPAtK {
		t.Errorf("anytime quality %v should beat drop protocol %v", sa.MeanPAtK, sd.MeanPAtK)
	}
	if sa.P95Latency != sd.P95Latency || sa.MeanLatency != sd.MeanLatency {
		t.Errorf("anytime changed latency: p95 %v vs %v, mean %v vs %v",
			sa.P95Latency, sd.P95Latency, sa.MeanLatency, sd.MeanLatency)
	}
	for i := range drop.Outcomes {
		od, oa := drop.Outcomes[i], any.Outcomes[i]
		if oa.TruncatedISNs != od.DroppedISNs {
			t.Fatalf("query %d: %d truncated ISNs for %d drops", od.QueryID, oa.TruncatedISNs, od.DroppedISNs)
		}
		if oa.PAtK < od.PAtK {
			t.Fatalf("query %d: anytime P@K %v below drop protocol %v", od.QueryID, oa.PAtK, od.PAtK)
		}
		if oa.LatencyMS != od.LatencyMS {
			t.Fatalf("query %d: anytime latency %v != %v", od.QueryID, oa.LatencyMS, od.LatencyMS)
		}
	}
}

// TestAnytimeOffIsUnchanged: the flag defaults to off and an off-run
// never reports truncations — the legacy drop accounting is preserved
// bit-for-bit.
func TestAnytimeOffIsUnchanged(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	res := e.Run(&fixedPolicy{name: "tight", select_: all, budgetMS: tightBudget(e, evs)}, evs)
	for _, o := range res.Outcomes {
		if o.TruncatedISNs != 0 {
			t.Fatalf("query %d: truncations with Anytime off", o.QueryID)
		}
	}
	if Summarize(res).TruncatedFrac != 0 {
		t.Error("TruncatedFrac nonzero with Anytime off")
	}
}

// TestAnytimeReplayDeterministicAcrossGOMAXPROCS: the anytime replay is
// pure virtual time — the cycle-budget deadline derives from the cost
// model, never the wall clock — so the whole truncated run must be
// bit-identical at any worker count (and race-free under -race).
func TestAnytimeReplayDeterministicAcrossGOMAXPROCS(t *testing.T) {
	e, qs := smallEngine(t)
	evs := e.EvaluateAll(qs)
	budget := tightBudget(e, evs)
	e.Anytime = true
	defer func() { e.Anytime = false }()
	run := func(procs int) RunResult {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		return e.Run(&fixedPolicy{name: "tight", select_: all, budgetMS: budget}, evs)
	}
	r1 := run(1)
	r8 := run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Error("anytime Run differs across GOMAXPROCS")
	}
	if Summarize(r1).TruncatedFrac == 0 {
		t.Error("determinism run truncated nothing; test is vacuous")
	}
}
