// Package engine assembles the full distributed search system: index
// shards on a simulated ISN cluster behind an aggregator, driven by a
// pluggable ISN-selection/time-budget policy. It implements the paper's
// seven-step coordination protocol (Fig. 5) generically:
//
//  1. broadcast the query,
//  2. per-ISN quality/latency prediction (policies that use it),
//  3. predictions return to the aggregator,
//  4. the policy decides participants, frequencies and the time budget,
//  5. the decision is broadcast,
//  6. participating ISNs execute within the budget,
//  7. responses are merged; stragglers are dropped.
//
// Per-query retrieval work is real (the shards and query evaluator are
// real); time and power are simulated (internal/cluster). The engine
// separates the policy-independent evaluation of a query (what documents
// match, how much work it costs — Evaluate) from the policy-dependent
// replay (Run), so the experiment harness evaluates each trace once and
// replays it under every policy.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"strconv"

	"cottage/internal/autoscale"
	"cottage/internal/cluster"
	"cottage/internal/index"
	"cottage/internal/obs"
	"cottage/internal/obs/anatomy"
	"cottage/internal/obs/slo"
	"cottage/internal/par"
	"cottage/internal/predict"
	"cottage/internal/qcache"
	"cottage/internal/search"
	"cottage/internal/stats"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

// Engine is one deployment: shards + cluster + predictors.
type Engine struct {
	Shards  []*index.Shard
	Cluster *cluster.Cluster
	// Fleet holds the trained per-ISN predictors; nil until TrainFleet
	// (baselines that do not predict still work).
	Fleet *predict.Fleet
	// Gamma is the Taily-style estimator over the same shards.
	Gamma *predict.GammaEstimator
	// K is the client-side result count (P@K evaluation).
	K int
	// Strategy is the per-ISN evaluation algorithm.
	Strategy search.Strategy
	// Anytime converts budget-miss drops into truncated answers: when a
	// shard's execution is cut off at the deadline, the engine replays
	// the anytime traversal under the fraction of the cycle budget the
	// node actually spent (Execution.WorkFrac) and merges the truncated,
	// quality-bounded hits instead of discarding the shard. Run copies
	// the flag to the cluster so admission control matches.
	Anytime bool
	// Cache, when set, answers repeated queries at the aggregator without
	// touching any ISN (qcache.LRU). Cached answers cost only the client
	// round trip plus a lookup; misses follow the configured policy and
	// populate the cache.
	Cache *qcache.LRU
	// Obs, when set, makes the simulated twin record the same
	// observability surface as the live transport: one virtual-time trace
	// per query (predict/budget/search/merge spans, per-ISN execution
	// legs, the Algorithm 1 decision record), latency/budget histograms,
	// and rolling predictor accuracy — so harness sweeps validate the
	// instrumentation itself.
	Obs *obs.Observer
	// Scaler, when set, closes the autoscaling loop during Run: every
	// arrival feeds its rate estimator, completed legs feed per-shard
	// service EWMAs, and on each cadence tick the controller's plan is
	// applied to the cluster's active replica rows. The cluster should
	// be built with DynamicMachines so scale-downs show up in power and
	// machine time.
	Scaler *autoscale.Controller
	// ScaleStartR is the active replica count per shard at the start of
	// a scaled run (default 1 — the controller earns its capacity).
	ScaleStartR int
	// HedgeDelayMS > 0 enables fixed-delay hedged requests: any leg
	// whose response would take longer than this gets a duplicate sent
	// to a sibling replica after the delay (the classic tail-taming
	// baseline). Ignored when HedgePredictive is set.
	HedgeDelayMS float64
	// HedgePredictive hedges only legs the predictor flags: when a
	// shard's predicted leg latency (margined cycle prediction plus
	// live queue backlog, Eq. 2, plus the serving replica's observed
	// latency defect) exceeds HedgeThresholdMS, the duplicate is sent
	// immediately at dispatch — no timer, no waiting for the straggler
	// to prove itself. Requires a policy that fills
	// Decision.PredCycles; legs without a prediction never hedge.
	HedgePredictive  bool
	HedgeThresholdMS float64
	// Anatomy, when set alongside Obs, receives a per-phase latency
	// attribution for every executed query (cache hits are skipped —
	// they have no phases to attribute). Registered on the observer's
	// registry at Run start.
	Anatomy *anatomy.Collector
	// SLO, when set, is fed every query's latency and quality signal
	// (degraded = any failed/truncated/dropped/shed shard) plus the
	// fleet's average power, driving burn-rate alerting on the twin's
	// virtual clock.
	SLO *slo.QuerySLO

	// runObs caches the current Run's metric handles (resolved once per
	// Run so the per-query hot path never touches the registry).
	runObs *engineRunObs
}

// engineRunObs holds one Run's pre-resolved metric handles.
type engineRunObs struct {
	latency *obs.Histogram
	budget  *obs.Histogram
}

// Config assembles an Engine.
type Config struct {
	NumShards int
	K         int
	Strategy  search.Strategy
	Cluster   cluster.Config
	BM25      index.BM25Params
}

// DefaultConfig mirrors the paper's deployment: 16 ISNs, P@10, and a
// dynamically-pruned (MaxScore) production engine.
func DefaultConfig() Config {
	cc := cluster.DefaultConfig()
	return Config{
		NumShards: 16,
		K:         10,
		Strategy:  search.StrategyMaxScore,
		Cluster:   cc,
		BM25:      index.DefaultBM25(),
	}
}

// BuildShards indexes a synthetic corpus into cfg.NumShards shards using
// a topical allocation (the layout selective-search systems are designed
// for; see textgen.AllocateTopical).
func BuildShards(corpus *textgen.Corpus, cfg Config, homeShards int, spill float64, seed uint64) []*index.Shard {
	alloc := corpus.AllocateTopical(cfg.NumShards, homeShards, spill, seed)
	return buildFromAllocation(corpus, alloc, cfg)
}

// BuildShardsRoundRobin indexes with source-order allocation, for
// contrast experiments.
func BuildShardsRoundRobin(corpus *textgen.Corpus, cfg Config) []*index.Shard {
	return buildFromAllocation(corpus, corpus.AllocateRoundRobin(cfg.NumShards), cfg)
}

func buildFromAllocation(corpus *textgen.Corpus, alloc [][]int, cfg Config) []*index.Shard {
	shards := make([]*index.Shard, len(alloc))
	for si, docIDs := range alloc {
		b := index.NewBuilder(si, cfg.BM25, cfg.K)
		for _, id := range docIDs {
			d := &corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
		}
		shards[si] = b.Finalize()
	}
	return shards
}

// New assembles an engine over pre-built shards.
func New(shards []*index.Shard, cfg Config) *Engine {
	if len(shards) == 0 {
		panic("engine: no shards")
	}
	cfg.Cluster.NumISNs = len(shards)
	return &Engine{
		Shards:   shards,
		Cluster:  cluster.New(cfg.Cluster),
		Gamma:    &predict.GammaEstimator{Shards: shards},
		K:        cfg.K,
		Strategy: cfg.Strategy,
	}
}

// TrainFleet harvests ground truth from training queries and fits the
// per-ISN predictors.
func (e *Engine) TrainFleet(trainQueries []trace.Query, pcfg predict.Config) (*predict.Dataset, error) {
	ds := predict.Harvest(e.Shards, trainQueries, e.K, e.Strategy, e.Cluster.Cost)
	// Scale harvested service costs by each ISN's speed factor so the
	// per-ISN latency models learn the node they actually run on
	// (heterogeneous fleets).
	for isn := range ds.PerISN {
		sf := e.Cluster.ISNs[isn].SpeedFactor
		if sf == 1 {
			continue
		}
		for qi := range ds.PerISN[isn] {
			ds.PerISN[isn][qi].Cycles *= sf
		}
	}
	fleet, err := predict.Train(ds, pcfg)
	if err != nil {
		return nil, fmt.Errorf("engine: training fleet: %w", err)
	}
	e.Fleet = fleet
	return ds, nil
}

// Evaluated is the policy-independent part of one query: every shard's
// full top-K response and work, plus the merged ground truth.
type Evaluated struct {
	Query    trace.Query
	PerShard []search.Result
	// Cycles[i] is shard i's measured service cost at the reference
	// strategy.
	Cycles []float64
	// TopK is the global ground-truth top-K (what exhaustive search
	// returns); TopKSet indexes it.
	TopK    []search.Hit
	TopKSet map[int64]bool
}

// evaluate is Evaluate with an explicit cap on the per-shard fan-out.
// Shards are immutable during evaluation, EffectiveCycles is a pure read,
// and every write lands in slot si, so any worker count produces the same
// Evaluated bit for bit.
func (e *Engine) evaluate(q trace.Query, shardWorkers int) *Evaluated {
	ev := &Evaluated{
		Query:    q,
		PerShard: make([]search.Result, len(e.Shards)),
		Cycles:   make([]float64, len(e.Shards)),
	}
	lists := make([][]search.Hit, len(e.Shards))
	par.ForMax(len(e.Shards), shardWorkers, func(si int) {
		ev.PerShard[si] = search.Eval(e.Strategy, e.Shards[si], q.Terms, e.K)
		ev.Cycles[si] = e.Cluster.EffectiveCycles(si, e.Cluster.Cost.Cycles(ev.PerShard[si].Stats))
		lists[si] = ev.PerShard[si].Hits
	})
	ev.TopK = search.Merge(e.K, lists...)
	ev.TopKSet = search.DocSet(ev.TopK)
	return ev
}

// Evaluate runs the query on every shard — fanned out across CPUs, like
// the real aggregator's scatter phase — and merges ground truth.
func (e *Engine) Evaluate(q trace.Query) *Evaluated {
	return e.evaluate(q, runtime.GOMAXPROCS(0))
}

// EvaluateAll evaluates a whole trace (the expensive, policy-independent
// pass — do it once and replay it under many policies). Queries are
// evaluated in parallel across CPUs; shards are immutable and the result
// slice is index-addressed, so the output is deterministic. The per-query
// shard fan-out stays serial here — the query-level fan-out already
// saturates the CPUs, and nesting would only add scheduling churn.
func (e *Engine) EvaluateAll(qs []trace.Query) []*Evaluated {
	out := make([]*Evaluated, len(qs))
	par.For(len(qs), func(i int) {
		out[i] = e.evaluate(qs[i], 1)
	})
	return out
}

// Decision is a policy's verdict for one query.
type Decision struct {
	// Participate[i] marks ISN i as selected; unselected ISNs do no work.
	Participate []bool
	// Freq[i] is the DVFS frequency for ISN i (ignored when not
	// participating). Zero means the ladder default.
	Freq []float64
	// BudgetMS is the relative deadline from dispatch; +Inf means the
	// aggregator waits for every participant.
	BudgetMS float64
	// CoordMS is coordination overhead before dispatch (prediction round
	// trips, optimizer time) added to the query's critical path.
	CoordMS float64
	// UsedPredictors charges every ISN the predictor inference cost
	// (energy + queue occupancy), whether or not it participates — the
	// prediction step runs on all ISNs (step 2 of the protocol).
	UsedPredictors bool
	// Record, when the policy provides it (Cottage does, with an
	// observer attached), is the Algorithm 1 audit trail for this query;
	// the engine attaches it to the trace's budget span.
	Record *obs.DecisionRecord
	// PredCycles, when the policy predicts per-shard work (Cottage
	// does), carries the margined cycle predictions indexed by shard
	// (zero for shards without a prediction). The engine's predictive
	// hedging combines them with live queue state to flag straggler
	// legs at dispatch; nil for baselines that do not predict.
	PredCycles []float64
}

// Policy decides, per query, which ISNs run, at what frequency, and under
// what time budget. Implementations must only use information available
// to a real aggregator: the query terms, index statistics, predictions,
// and cluster queue state — never the Evaluated ground truth.
type Policy interface {
	Name() string
	Decide(e *Engine, q trace.Query, nowMS float64) Decision
	// Observe feeds back the client latency of a completed query, for
	// adaptive policies (epoch-based aggregation). Others ignore it.
	Observe(latencyMS float64)
}

// Outcome is one query's result under a policy.
type Outcome struct {
	QueryID    int
	ArrivalMS  float64
	LatencyMS  float64
	PAtK       float64
	ActiveISNs int
	// DocsSearched is C_RES: documents scored across participating ISNs.
	DocsSearched int
	// DroppedISNs counts participants whose responses missed the budget.
	DroppedISNs int
	// TruncatedISNs counts participants that missed the budget but still
	// contributed a truncated anytime answer (engine.Anytime): their hits
	// are exact, just possibly incomplete, with a recorded score bound.
	TruncatedISNs int
	// FailedISNs counts participants that were dead when dispatched to
	// (injected failures): no work done, no response, contribution lost.
	FailedISNs int
	// ShedISNs counts participants whose admission control rejected the
	// request (queue over MaxQueueMS): the aggregator got an immediate
	// rejection, so — unlike a failure — no timeout is burned, but the
	// shard's contribution is lost.
	ShedISNs int
	// CorruptISNs counts participants whose whole replica group bounced
	// the request on integrity grounds (quarantined copies, fresh rot
	// tripping the query-time checksum gate): typed rejections, so the
	// aggregator hears back after one hop — like Shed — but the shard's
	// contribution is lost. Single bounces that a sibling absorbed show
	// up in Failovers, not here.
	CorruptISNs int
	// Failovers counts mid-query replica failovers across all legs: how
	// many times a leg's first-choice replica lost the request (crash,
	// drop, shed, integrity bounce) and a sibling absorbed the retry.
	Failovers int
	// HedgedISNs counts legs that sent a duplicate to a sibling replica;
	// HedgeWonISNs counts those where the duplicate's response arrived
	// first. DuplicateMS is the busy time the losing copies burned —
	// the waste side of the hedging trade.
	HedgedISNs   int
	HedgeWonISNs int
	DuplicateMS  float64
	BudgetMS     float64
}

// RunResult aggregates a full trace replay under one policy.
type RunResult struct {
	Policy      string
	Outcomes    []Outcome
	AvgPowerW   float64
	Utilization float64
	DurationMS  float64
	// CacheHitRate is the aggregator cache's hit rate for this run
	// (zero when no cache is configured).
	CacheHitRate float64
	// MachineMS is the fleet's integrated machine time in node·ms —
	// horizon × nodes on a static fleet, the actual powered-on integral
	// under autoscaling.
	MachineMS float64
	// TotalBusyMS is the summed busy time across all nodes (includes
	// hedging duplicates), the denominator for duplicate-work fractions.
	TotalBusyMS float64
	// ScaleLog is the autoscaler's decision trail for this run (nil
	// without a Scaler) — what the determinism tests compare.
	ScaleLog []autoscale.Change
}

// Run replays evaluated queries under policy p. The cluster (and cache,
// if any) is reset first, so results of consecutive runs are independent.
func (e *Engine) Run(p Policy, evs []*Evaluated) RunResult {
	e.Cluster.Reset()
	e.Cluster.Anytime = e.Anytime
	if e.Cache != nil {
		e.Cache.Reset()
	}
	if e.Scaler != nil {
		r0 := e.ScaleStartR
		if r0 < 1 {
			r0 = 1
		}
		e.Scaler.Reset(r0)
		e.Cluster.SetAllActiveReplicas(r0, 0)
	}
	e.runObs = nil
	if e.Obs != nil {
		reg := e.Obs.Reg
		e.runObs = &engineRunObs{
			latency: reg.Histogram("cottage_agg_query_ms",
				"End-to-end query latency at the aggregator (virtual time).",
				obs.LatencyBucketsMS(), obs.L("mode", p.Name())),
			budget: reg.Histogram("cottage_agg_budget_ms",
				"Algorithm 1 time budget T per query (finite budgets only).",
				obs.LatencyBucketsMS()),
		}
		e.Cluster.Register(reg) // idempotent: create-or-get
		if e.Anatomy != nil {
			e.Anatomy.Register(reg)
		}
	}
	res := RunResult{Policy: p.Name(), Outcomes: make([]Outcome, 0, len(evs))}
	for _, ev := range evs {
		res.Outcomes = append(res.Outcomes, e.runOne(p, ev))
	}
	res.DurationMS = e.Cluster.NowMS()
	res.AvgPowerW = e.Cluster.AveragePowerWatts()
	res.Utilization = e.Cluster.Utilization()
	res.MachineMS = e.Cluster.MachineMS()
	for _, n := range e.Cluster.ISNs {
		res.TotalBusyMS += n.BusyMS
	}
	if e.Cache != nil {
		res.CacheHitRate = e.Cache.HitRate()
	}
	if e.Scaler != nil {
		res.ScaleLog = append([]autoscale.Change(nil), e.Scaler.Log()...)
	}
	return res
}

// cacheLookupMS is the aggregator-side cost of a cache probe.
const cacheLookupMS = 0.02

func (e *Engine) runOne(p Policy, ev *Evaluated) Outcome {
	arrive := ev.Query.ArrivalMS + e.Cluster.Net.ClientMS // at aggregator
	if e.Cache != nil {
		key := qcache.Key(ev.Query.Terms)
		if hits, ok := e.Cache.Get(key); ok {
			out := Outcome{
				QueryID:   ev.Query.ID,
				ArrivalMS: ev.Query.ArrivalMS,
				LatencyMS: 2*e.Cluster.Net.ClientMS + cacheLookupMS,
				BudgetMS:  0,
			}
			if len(ev.TopK) > 0 {
				out.PAtK = float64(search.Overlap(hits, ev.TopKSet)) / float64(len(ev.TopK))
			} else {
				out.PAtK = 1
			}
			e.recordCacheHit(p, ev, out)
			if e.SLO != nil {
				e.SLO.ObserveQuery(out.LatencyMS, false)
			}
			p.Observe(out.LatencyMS)
			return out
		}
	}
	if e.Scaler != nil {
		e.Scaler.RecordArrival()
		if e.Scaler.Due(arrive) {
			qd := make([]float64, len(e.Shards))
			for si := range e.Shards {
				qd[si] = e.Cluster.ShardQueueDelayMS(si, arrive)
			}
			for _, ch := range e.Scaler.Replan(arrive, qd) {
				e.Cluster.SetActiveReplicas(ch.Shard, ch.To, arrive)
			}
		}
	}
	d := p.Decide(e, ev.Query, arrive)
	if len(d.Participate) != len(e.Shards) {
		panic(fmt.Sprintf("engine: policy %s sized Participate %d for %d shards",
			p.Name(), len(d.Participate), len(e.Shards)))
	}
	if d.UsedPredictors {
		e.chargeInference()
	}
	dispatch := arrive + d.CoordMS
	deadline := math.Inf(1)
	if !math.IsInf(d.BudgetMS, 1) {
		deadline = dispatch + d.BudgetMS
	}

	out := Outcome{
		QueryID:   ev.Query.ID,
		ArrivalMS: ev.Query.ArrivalMS,
		BudgetMS:  d.BudgetMS,
	}
	var lists [][]search.Hit
	var execs []cluster.Execution // recorded for the trace (observer only)
	var hedgeWaits []float64      // parallel to execs: hedge-timer wait on won legs
	var truncBounds map[int]float64
	aggDone := dispatch
	anyDropped := false
	anyFailed := false
	for si := range e.Shards {
		if !d.Participate[si] {
			continue
		}
		f := e.Cluster.Ladder.Default()
		if d.Freq != nil && d.Freq[si] > 0 {
			f = d.Freq[si]
		}
		// Hedging: predictive mode duplicates flagged legs at dispatch
		// (predicted leg latency — Eq. 2 plus the replica's observed
		// defect — over the threshold), fixed-delay mode duplicates any
		// leg still unanswered after the timer. +Inf disables hedging
		// for this leg.
		hedgeDelay := math.Inf(1)
		if e.HedgePredictive {
			if d.PredCycles != nil && e.HedgeThresholdMS > 0 && d.PredCycles[si] > 0 {
				if pl := e.Cluster.ShardPredictedLegMS(si, dispatch, d.PredCycles[si], f); pl > e.HedgeThresholdMS {
					hedgeDelay = 0
				}
			}
		} else if e.HedgeDelayMS > 0 {
			hedgeDelay = e.HedgeDelayMS
		}
		exec, hr := e.Cluster.ExecuteShardHedged(si, dispatch, ev.Cycles[si], f, deadline, hedgeDelay)
		if hr.Hedged {
			out.HedgedISNs++
			if hr.Won {
				out.HedgeWonISNs++
			}
			out.DuplicateMS += hr.DuplicateMS
		}
		if e.Obs != nil {
			execs = append(execs, exec)
			// A won hedge's leg was sent at dispatch+hedgeDelay; that wait
			// is hedge time, not failover time, so recordQuery needs it to
			// split the two apart.
			hw := 0.0
			if hr.Hedged && hr.Won {
				hw = hedgeDelay
			}
			hedgeWaits = append(hedgeWaits, hw)
		}
		out.Failovers += exec.Failovers
		if exec.Failed || exec.Dropped {
			// The whole replica group is lost (dead shard, or every
			// failover attempt crashed/dropped): nothing was searched.
			anyFailed = true
			out.FailedISNs++
			continue
		}
		if exec.Shed {
			// Overloaded node: an immediate rejection, not silence — the
			// aggregator hears back after one hop and moves on without
			// this shard's hits.
			out.ShedISNs++
			if resp := e.Cluster.ResponseAtAggregatorMS(exec); resp > aggDone {
				aggDone = resp
			}
			continue
		}
		if exec.CorruptReject {
			// Every replica bounced on integrity grounds: typed rejection
			// after one hop, contribution lost, and — by construction —
			// not one corrupted posting in the merge.
			out.CorruptISNs++
			if resp := e.Cluster.ResponseAtAggregatorMS(exec); resp > aggDone {
				aggDone = resp
			}
			continue
		}
		out.ActiveISNs++
		if e.Scaler != nil && exec.Completed {
			e.Scaler.RecordService(exec.Shard, exec.ServiceMS)
		}
		switch {
		case exec.Completed:
			out.DocsSearched += ev.PerShard[si].Stats.DocsScored
			lists = append(lists, ev.PerShard[si].Hits)
			if resp := e.Cluster.ResponseAtAggregatorMS(exec); resp > aggDone {
				aggDone = resp
			}
		case e.Anytime && exec.WorkFrac > 0:
			// Budget miss, anytime mode: the node spent WorkFrac of the
			// full service before the deadline. Replay the anytime
			// traversal against that fraction of the query's measured
			// cycle cost (virtual time — deterministic, no wall clock)
			// and merge the truncated, quality-bounded answer.
			budget := exec.WorkFrac * e.Cluster.Cost.Cycles(ev.PerShard[si].Stats)
			r := search.Anytime(e.Shards[si], ev.Query.Terms, e.K, func(st search.ExecStats) bool {
				return e.Cluster.Cost.Cycles(st) > budget
			})
			out.TruncatedISNs++
			out.DocsSearched += r.Stats.DocsScored
			if len(r.Hits) > 0 {
				lists = append(lists, r.Hits)
			}
			if truncBounds == nil {
				truncBounds = make(map[int]float64)
			}
			truncBounds[si] = r.ScoreBound
			if resp := e.Cluster.ResponseAtAggregatorMS(exec); resp > aggDone {
				aggDone = resp
			}
		default:
			out.DocsSearched += ev.PerShard[si].Stats.DocsScored
			anyDropped = true
			out.DroppedISNs++
		}
	}
	if anyDropped {
		// The aggregator waited for the full budget before giving up on
		// the stragglers.
		if t := deadline + e.Cluster.Net.AggToISNMS; t > aggDone {
			aggDone = t
		}
	}
	if anyFailed {
		// A dead participant never answers: the aggregator gives up at
		// the budget, or — with no budget — at its failure-detection
		// timeout.
		giveup := deadline
		if math.IsInf(giveup, 1) {
			giveup = dispatch + e.Cluster.FailTimeoutMS
		}
		if t := giveup + e.Cluster.Net.AggToISNMS; t > aggDone {
			aggDone = t
		}
	}
	merged := search.Merge(e.K, lists...)
	denom := len(ev.TopK)
	if denom > 0 {
		out.PAtK = float64(search.Overlap(merged, ev.TopKSet)) / float64(denom)
	} else {
		out.PAtK = 1 // nothing to find; trivially perfect
	}
	out.LatencyMS = aggDone + e.Cluster.Net.ClientMS - ev.Query.ArrivalMS
	if e.Cache != nil {
		e.Cache.Put(qcache.Key(ev.Query.Terms), merged)
	}
	if d.Record != nil && truncBounds != nil {
		for si := range e.Shards {
			if _, ok := truncBounds[si]; ok {
				d.Record.Truncated = append(d.Record.Truncated, si)
			}
		}
	}
	e.recordQuery(p, ev, d, arrive, dispatch, aggDone, execs, hedgeWaits, truncBounds, out)
	if e.SLO != nil {
		degraded := out.FailedISNs > 0 || out.TruncatedISNs > 0 ||
			out.DroppedISNs > 0 || out.ShedISNs > 0 || out.CorruptISNs > 0
		e.SLO.ObserveQuery(out.LatencyMS, degraded)
		e.SLO.ObservePower(e.Cluster.AveragePowerWatts())
	}
	p.Observe(out.LatencyMS)
	return out
}

// vtUS converts a virtual-time millisecond stamp into the microsecond
// units spans carry (the simulated twin's traces live on the virtual
// clock, not the wall clock).
func vtUS(ms float64) int64 { return int64(ms * 1000) }

// recordCacheHit traces an aggregator cache hit: a single query root,
// no fan-out.
func (e *Engine) recordCacheHit(p Policy, ev *Evaluated, out Outcome) {
	if e.Obs == nil {
		return
	}
	e.runObs.latency.Observe(out.LatencyMS)
	tb := obs.NewTraceBuilder(vtUS(ev.Query.ArrivalMS))
	root := tb.StartSpan("query", 0, vtUS(ev.Query.ArrivalMS))
	root.SetAttr("mode", p.Name())
	root.SetAttr("cache", "hit")
	root.SetAttr("query_id", strconv.Itoa(ev.Query.ID))
	root.End(vtUS(ev.Query.ArrivalMS + out.LatencyMS))
	e.Obs.AddTrace(tb.Finish())
}

// recordQuery emits the simulated twin's observability for one replayed
// query: the same span tree the live aggregator records (query root,
// predict/budget/search/merge phases, per-ISN execution legs), the
// latency/budget histograms, and — when the policy produced an
// Algorithm 1 decision record — predictor-accuracy samples comparing
// predicted equivalent latency and top-K contribution against what the
// simulator actually did.
func (e *Engine) recordQuery(p Policy, ev *Evaluated, d Decision,
	arrive, dispatch, aggDone float64, execs []cluster.Execution,
	hedgeWaits []float64, truncBounds map[int]float64, out Outcome) {

	if e.Obs == nil {
		return
	}
	e.runObs.latency.Observe(out.LatencyMS)
	if !math.IsInf(d.BudgetMS, 1) && d.BudgetMS > 0 {
		e.runObs.budget.Observe(d.BudgetMS)
	}

	tb := obs.NewTraceBuilder(vtUS(ev.Query.ArrivalMS))
	root := tb.StartSpan("query", 0, vtUS(ev.Query.ArrivalMS))
	root.SetAttr("mode", p.Name())
	root.SetAttr("query_id", strconv.Itoa(ev.Query.ID))

	if d.UsedPredictors {
		ps := tb.StartSpan("predict", root.ID(), vtUS(arrive))
		ps.End(vtUS(dispatch))
	}
	bs := tb.StartSpan("budget", root.ID(), vtUS(dispatch))
	bs.SetDecision(d.Record)
	bs.End(vtUS(dispatch))

	ss := tb.StartSpan("search", root.ID(), vtUS(dispatch))
	for i, exec := range execs {
		leg := tb.StartSpan("search.isn", ss.ID(), vtUS(dispatch))
		leg.SetISN(exec.Shard)
		leg.SetAttr("replica", strconv.Itoa(exec.Replica))
		if exec.Failovers > 0 {
			leg.SetAttr("failovers", strconv.Itoa(exec.Failovers))
		}
		leg.SetAttr("freq_ghz", strconv.FormatFloat(exec.Freq, 'g', -1, 64))
		// Phase attribution attrs: how much of this leg's span was a hedge
		// timer vs failover detection vs real work. The leg span starts at
		// dispatch, so the winning attempt's later send shows up here.
		hw := 0.0
		if i < len(hedgeWaits) {
			hw = hedgeWaits[i]
		}
		if hw > 0 {
			leg.SetAttr("hedged", "true")
			leg.SetAttr("hedge_wait_ms", strconv.FormatFloat(hw, 'g', -1, 64))
		}
		if fo := e.Cluster.FailoverDelayMS(exec, dispatch) - hw; fo > 0 {
			leg.SetAttr("failover_ms", strconv.FormatFloat(fo, 'g', -1, 64))
		}
		switch {
		case exec.Failed:
			leg.SetAttr("failed", "true")
		case exec.Shed:
			leg.SetAttr("shed", "true")
		case exec.Dropped:
			leg.SetAttr("conn_dropped", "true")
		default:
			leg.SetAttr("queue_ms", strconv.FormatFloat(exec.QueueMS, 'g', -1, 64))
			leg.SetAttr("service_ms", strconv.FormatFloat(exec.ServiceMS, 'g', -1, 64))
			if !exec.Completed {
				if bound, ok := truncBounds[exec.Shard]; ok {
					leg.SetAttr("truncated", "true")
					leg.SetAttr("score_bound", strconv.FormatFloat(bound, 'g', -1, 64))
				} else {
					leg.SetAttr("dropped", "true")
				}
			}
		}
		leg.End(vtUS(e.Cluster.ResponseAtAggregatorMS(exec)))
	}
	ss.End(vtUS(aggDone))
	ms := tb.StartSpan("merge", root.ID(), vtUS(aggDone))
	ms.End(vtUS(aggDone))
	root.End(vtUS(aggDone + e.Cluster.Net.ClientMS))
	tr := tb.Finish()
	e.Obs.AddTrace(tr)
	if e.Anatomy != nil {
		if attr, ok := anatomy.FromTrace(tr); ok {
			e.Anatomy.Observe(attr)
		}
	}

	// Predictor accuracy, when the policy exposed its reports: the
	// unmargined service-time prediction at the assigned frequency
	// against the simulator's actual service time (the paper's Fig. 8
	// quantity — the deliberate LatencyMargin safety inflation is policy,
	// not predictor error), and predicted top-K membership against the
	// shard's true overlap with the exhaustive top-K. Truncated
	// executions are skipped: their busy time is the budget, not the
	// query's cost.
	if d.Record == nil {
		return
	}
	byShard := make(map[int]*obs.ReportRecord, len(d.Record.Reports))
	for i := range d.Record.Reports {
		byShard[d.Record.Reports[i].ISN] = &d.Record.Reports[i]
	}
	for _, exec := range execs {
		rep := byShard[exec.Shard]
		if rep == nil || exec.Failed || exec.Shed || exec.Dropped {
			continue
		}
		// Accuracy is tracked per shard: replicas of a shard share its
		// documents and hardware class, so the predictor's target is the
		// shard regardless of which copy served the leg.
		if exec.Completed {
			e.Obs.Acc.ObserveLatency(exec.Shard, rep.PredServiceMS, exec.ServiceMS)
		}
		actualHasK := search.Overlap(ev.PerShard[exec.Shard].Hits, ev.TopKSet) > 0
		e.Obs.Acc.ObserveQuality(exec.Shard, rep.HasK, actualHasK)
	}
}

// chargeInference accounts the per-ISN predictor inference cost on every
// ISN (energy only; the latency cost is part of Decision.CoordMS).
func (e *Engine) chargeInference() {
	if e.Cluster.InferMS <= 0 {
		return
	}
	for range e.Shards {
		e.Cluster.Meter.AddBusy(e.Cluster.Ladder.Default(), e.Cluster.InferMS)
	}
}

// Summary condenses a RunResult into the numbers the paper's figures
// report.
type Summary struct {
	Policy      string
	MeanLatency float64
	// LatencyCILo/Hi bound the mean latency with a 95% percentile
	// bootstrap over the per-query latencies (deterministic).
	LatencyCILo float64
	LatencyCIHi float64
	P95Latency  float64
	P99Latency  float64
	MeanPAtK    float64
	MeanISNs    float64
	MeanCRES    float64
	AvgPowerW   float64
	Utilization float64
	Queries     int
	DroppedFrac float64
	// TruncatedFrac is the share of queries where at least one
	// participant answered truncated (anytime mode budget miss).
	TruncatedFrac float64
	// FailedFrac is the share of queries that dispatched to at least one
	// dead ISN (injected failures).
	FailedFrac float64
	// ShedFrac is the share of queries that had at least one participant
	// shed by admission control (bounded queues under overload).
	ShedFrac float64
	// CorruptFrac is the share of queries that lost at least one shard
	// to an integrity bounce (every replica of the shard quarantined).
	CorruptFrac float64
	// FailoverFrac is the share of queries where at least one leg failed
	// over to a sibling replica mid-query.
	FailoverFrac float64
	// HedgeLegRate is hedged legs per participating leg — how often the
	// hedging layer paid for a duplicate.
	HedgeLegRate float64
	// HedgeWinFrac is the share of hedges whose duplicate actually won
	// the race (useful hedges).
	HedgeWinFrac float64
	// DuplicateWorkFrac is hedging's wasted busy time as a fraction of
	// all busy time.
	DuplicateWorkFrac float64
	// MachineMS is the run's integrated machine time in node·ms.
	MachineMS float64
}

// Summarize computes a Summary from a RunResult.
func Summarize(r RunResult) Summary {
	s := Summary{Policy: r.Policy, AvgPowerW: r.AvgPowerW, Utilization: r.Utilization,
		Queries: len(r.Outcomes), MachineMS: r.MachineMS}
	if len(r.Outcomes) == 0 {
		return s
	}
	lats := make([]float64, len(r.Outcomes))
	dropped, truncated, failed, shed, corrupt, failedOver := 0, 0, 0, 0, 0, 0
	legs, hedged, hedgeWon := 0, 0, 0
	dupMS := 0.0
	for i, o := range r.Outcomes {
		lats[i] = o.LatencyMS
		s.MeanPAtK += o.PAtK
		s.MeanISNs += float64(o.ActiveISNs)
		s.MeanCRES += float64(o.DocsSearched)
		legs += o.ActiveISNs
		hedged += o.HedgedISNs
		hedgeWon += o.HedgeWonISNs
		dupMS += o.DuplicateMS
		if o.DroppedISNs > 0 {
			dropped++
		}
		if o.TruncatedISNs > 0 {
			truncated++
		}
		if o.FailedISNs > 0 {
			failed++
		}
		if o.ShedISNs > 0 {
			shed++
		}
		if o.CorruptISNs > 0 {
			corrupt++
		}
		if o.Failovers > 0 {
			failedOver++
		}
	}
	if legs > 0 {
		s.HedgeLegRate = float64(hedged) / float64(legs)
	}
	if hedged > 0 {
		s.HedgeWinFrac = float64(hedgeWon) / float64(hedged)
	}
	if r.TotalBusyMS > 0 {
		s.DuplicateWorkFrac = dupMS / r.TotalBusyMS
	}
	n := float64(len(r.Outcomes))
	s.MeanLatency = stats.Mean(lats)
	s.LatencyCILo, s.LatencyCIHi = stats.BootstrapCI(lats, 200, 0.95, 42)
	s.P95Latency = stats.Percentile(lats, 95)
	s.P99Latency = stats.Percentile(lats, 99)
	s.MeanPAtK /= n
	s.MeanISNs /= n
	s.MeanCRES /= n
	s.DroppedFrac = float64(dropped) / n
	s.TruncatedFrac = float64(truncated) / n
	s.FailedFrac = float64(failed) / n
	s.ShedFrac = float64(shed) / n
	s.CorruptFrac = float64(corrupt) / n
	s.FailoverFrac = float64(failedOver) / n
	return s
}
