package core

// Eq. 2 of the paper defines an ISN's *equivalent latency* as the time
// to drain the requests already queued ahead of a query plus the query's
// own service time. The simulated cluster computes this exactly
// (cluster.EquivalentLatencyMS, from per-worker busy horizons); over the
// live transport the aggregator cannot see worker schedules, but every
// KindPredict response carries the ISN's admission-queue occupancy and
// its EWMA service time, and their product is the same backlog term.
// These helpers apply that correction to an ISNReport before Algorithm 1
// runs, so budget determination sees queue-inflated latencies exactly as
// the paper prescribes instead of bare service-time predictions.

// QueueBacklogMS estimates the Eq. 2 backlog term from live queue
// feedback: depth requests ahead, each costing ~avgServiceMS to drain.
// Non-positive inputs (empty queue, no service history yet) yield zero.
func QueueBacklogMS(depth int, avgServiceMS float64) float64 {
	if depth <= 0 || avgServiceMS <= 0 {
		return 0
	}
	return float64(depth) * avgServiceMS
}

// AddQueueBacklog folds a queue-backlog estimate into the report's
// latencies, turning bare service-time predictions into Eq. 2
// equivalent latencies. The backlog is added to both the current- and
// boosted-frequency figures: queued work drains ahead of this query
// regardless of the frequency it will run at, which is also what lets
// assignFrequencies recover the shared queue term afterwards.
func (r *ISNReport) AddQueueBacklog(backlogMS float64) {
	if backlogMS <= 0 {
		return
	}
	r.LCurrent += backlogMS
	r.LBoosted += backlogMS
}
