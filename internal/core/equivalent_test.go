package core

import "testing"

func TestQueueBacklogMS(t *testing.T) {
	cases := []struct {
		depth int
		avg   float64
		want  float64
	}{
		{0, 5, 0},
		{-1, 5, 0},
		{3, 0, 0},
		{3, -2, 0},
		{4, 2.5, 10},
		{1, 0.25, 0.25},
	}
	for _, c := range cases {
		if got := QueueBacklogMS(c.depth, c.avg); got != c.want {
			t.Errorf("QueueBacklogMS(%d, %g) = %g, want %g", c.depth, c.avg, got, c.want)
		}
	}
}

func TestAddQueueBacklog(t *testing.T) {
	r := ISNReport{LCurrent: 10, LBoosted: 6}
	r.AddQueueBacklog(4)
	if r.LCurrent != 14 || r.LBoosted != 10 {
		t.Fatalf("after AddQueueBacklog(4): LCurrent=%g LBoosted=%g, want 14/10", r.LCurrent, r.LBoosted)
	}
	// The queue term must be shared so frequency assignment can recover
	// it: the current/boosted gap is unchanged by the correction.
	if gap := r.LCurrent - r.LBoosted; gap != 4 {
		t.Fatalf("current-boosted gap = %g, want 4 (backlog must not distort it)", gap)
	}
	r.AddQueueBacklog(0)
	r.AddQueueBacklog(-3)
	if r.LCurrent != 14 || r.LBoosted != 10 {
		t.Fatalf("non-positive backlog must be a no-op, got LCurrent=%g LBoosted=%g", r.LCurrent, r.LBoosted)
	}
}
