package core

import (
	"cottage/internal/engine"
	"cottage/internal/search"
	"cottage/internal/trace"
)

// CottageOracle is Cottage with *perfect* quality predictions: it reads
// each ISN's true top-K/top-K/2 contributions from pre-evaluated ground
// truth instead of the neural models (latency prediction stays neural).
// It deliberately cheats and exists only as an analysis tool: the gap
// between CottageOracle and Cottage isolates how much of the remaining
// distance to the paper's operating point (6.81 active ISNs, lowest
// power) is predictor error rather than framework design.
type CottageOracle struct {
	// truthK[queryID][isn] is the true top-K contribution; truthK2
	// likewise for top-K/2.
	truthK  map[int][]int
	truthK2 map[int][]int
	inner   *Cottage
}

// NewCottageOracle precomputes ground-truth contributions for evs.
func NewCottageOracle(e *engine.Engine, evs []*engine.Evaluated) *CottageOracle {
	o := &CottageOracle{
		truthK:  make(map[int][]int, len(evs)),
		truthK2: make(map[int][]int, len(evs)),
		inner:   NewCottage(),
	}
	for _, ev := range evs {
		lists := make([][]search.Hit, len(ev.PerShard))
		for si := range ev.PerShard {
			lists[si] = ev.PerShard[si].Hits
		}
		inK := ev.TopKSet
		inK2 := search.DocSet(search.Merge(e.K/2, lists...))
		k := make([]int, len(ev.PerShard))
		k2 := make([]int, len(ev.PerShard))
		for si := range ev.PerShard {
			k[si] = search.Overlap(ev.PerShard[si].Hits, inK)
			k2[si] = search.Overlap(ev.PerShard[si].Hits, inK2)
		}
		o.truthK[ev.Query.ID] = k
		o.truthK2[ev.Query.ID] = k2
	}
	return o
}

// Name implements engine.Policy.
func (*CottageOracle) Name() string { return "cottage-oracle" }

// Decide implements engine.Policy.
func (o *CottageOracle) Decide(e *engine.Engine, q trace.Query, nowMS float64) engine.Decision {
	if e.Fleet == nil {
		panic("core: CottageOracle requires a trained fleet for latency prediction")
	}
	qk, ok := o.truthK[q.ID]
	if !ok {
		panic("core: CottageOracle used on a query it was not built for")
	}
	qk2 := o.truthK2[q.ID]
	preds := e.Fleet.PredictAll(e.Shards, q.Terms)
	reports := make([]ISNReport, 0, len(preds))
	for isn, p := range preds {
		if !p.Matched {
			continue
		}
		cycles := p.Cycles * (1 + o.inner.LatencyMargin)
		rep, lcur, lboost := shardLeg(e, isn, nowMS, cycles)
		reports = append(reports, ISNReport{
			ISN:        isn,
			QK:         qk[isn],
			QK2:        qk2[isn],
			HasK:       qk[isn] > 0,
			HasK2:      qk2[isn] > 0,
			ExpQK:      float64(qk[isn]),
			LCurrent:   lcur,
			LBoosted:   lboost,
			PredCycles: cycles,
			Replica:    rep,
		})
	}
	return o.inner.decideFromReports(e, reports)
}

// Observe implements engine.Policy.
func (*CottageOracle) Observe(float64) {}
