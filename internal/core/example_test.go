package core_test

import (
	"fmt"

	"cottage/internal/cluster"
	"cottage/internal/core"
)

// ExampleDetermineBudget reruns the paper's Fig. 9 scenario: the slowest
// ISN contributes nothing to the top-K/2 and is cut; the budget becomes
// the next-slowest contributor's boosted latency, and slow contributors
// are boosted to meet it.
func ExampleDetermineBudget() {
	ladder := cluster.DefaultLadder()
	mk := func(isn, qk, qk2 int, serviceMS float64) core.ISNReport {
		cycles := serviceMS * ladder.Default() * 1e6
		return core.ISNReport{
			ISN: isn, QK: qk, QK2: qk2,
			HasK: qk > 0, HasK2: qk2 > 0, ExpQK: float64(qk),
			LCurrent:   serviceMS,
			LBoosted:   cluster.ServiceMS(cycles, ladder.Max()),
			PredCycles: cycles,
		}
	}
	reports := []core.ISNReport{
		mk(7, 1, 0, 27), // slowest, no top-K/2 contribution
		mk(1, 2, 1, 24), // slow but essential
		mk(2, 4, 3, 6),  // fast
		mk(4, 0, 0, 12), // zero quality
	}
	res := core.DetermineBudget(reports, ladder, core.BudgetOptions{})
	fmt.Printf("budget: %.0f ms, cut: %v\n", res.BudgetMS, res.Cut)
	for _, a := range res.Selected {
		fmt.Printf("ISN %d at %.1f GHz (boosted=%v)\n", a.ISN, a.Freq, a.Boosted)
	}
	// Output:
	// budget: 16 ms, cut: [4 7]
	// ISN 1 at 2.7 GHz (boosted=true)
	// ISN 2 at 1.8 GHz (boosted=false)
}
