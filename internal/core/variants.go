package core

import (
	"math"

	"cottage/internal/engine"
	"cottage/internal/trace"
)

// CottageISN is the uncoordinated ablation (Section V-D): every ISN makes
// its own cutoff decision from its local quality prediction, with no
// aggregator optimizer, no global time budget, and no frequency boosting.
// Low-quality ISNs still drop themselves (so resource usage matches
// Cottage), but the aggregator must wait for the slowest participant —
// which is why Fig. 15(a) shows it ~1.9x slower than coordinated Cottage.
type CottageISN struct {
	DropZeroProb float64
}

// NewCottageISN returns the ablation with the same calibrated cutoff as
// Cottage.
func NewCottageISN() *CottageISN { return &CottageISN{DropZeroProb: 0.8} }

// Name implements engine.Policy.
func (*CottageISN) Name() string { return "cottage-isn" }

// Decide implements engine.Policy.
func (v *CottageISN) Decide(e *engine.Engine, q trace.Query, _ float64) engine.Decision {
	if e.Fleet == nil {
		panic("core: CottageISN requires a trained fleet")
	}
	preds := e.Fleet.PredictAll(e.Shards, q.Terms)
	d := engine.Decision{
		Participate: make([]bool, len(e.Shards)),
		BudgetMS:    math.Inf(1),
		// Local decisions: inference cost only, no coordination trips.
		CoordMS:        e.Cluster.InferMS,
		UsedPredictors: true,
	}
	any := false
	best, bestISN := -1.0, -1
	for isn, p := range preds {
		if !p.Matched {
			continue
		}
		if p.ExpQK > best {
			best, bestISN = p.ExpQK, isn
		}
		if p.PZeroK < v.DropZeroProb {
			d.Participate[isn] = true
			any = true
		}
	}
	if !any && bestISN >= 0 {
		d.Participate[bestISN] = true
	}
	return d
}

// Observe implements engine.Policy.
func (*CottageISN) Observe(float64) {}

// CottageNoML is the Cottage-withoutML ablation (Section V-D): the full
// coordinated Algorithm 1, but with quality contributions estimated by
// Taily's Gamma model instead of the neural network. Latency prediction
// stays neural (the variant isolates the quality model). Fig. 15 shows
// the distribution-based estimates keep ~13 ISNs active and lose ~10% of
// P@10 versus the learned predictor.
type CottageNoML struct {
	// Tau is the Gamma-estimate threshold standing in for the "zero
	// contribution" test.
	Tau float64
	// Boost, StrictTopK, Downclock and LatencyMargin mirror Cottage's
	// switches.
	Boost         bool
	StrictTopK    bool
	Downclock     bool
	LatencyMargin float64
}

// NewCottageNoML returns the paper's configuration.
func NewCottageNoML() *CottageNoML {
	return &CottageNoML{Tau: 0.05, Boost: true, Downclock: true, LatencyMargin: 0.5}
}

// Name implements engine.Policy.
func (*CottageNoML) Name() string { return "cottage-noml" }

// Decide implements engine.Policy.
func (v *CottageNoML) Decide(e *engine.Engine, q trace.Query, nowMS float64) engine.Decision {
	if e.Fleet == nil {
		panic("core: CottageNoML requires a trained fleet for latency prediction")
	}
	estK := e.Gamma.Estimate(q.Terms, e.K)
	estK2 := e.Gamma.Estimate(q.Terms, e.K/2)
	preds := e.Fleet.PredictAll(e.Shards, q.Terms)

	reports := make([]ISNReport, 0, len(preds))
	for isn, p := range preds {
		if !p.Matched {
			continue
		}
		cycles := p.Cycles * (1 + v.LatencyMargin)
		rep, lcur, lboost := shardLeg(e, isn, nowMS, cycles)
		reports = append(reports, ISNReport{
			ISN:        isn,
			QK:         int(math.Round(estK[isn])),
			QK2:        int(math.Round(estK2[isn])),
			HasK:       estK[isn] >= v.Tau,
			HasK2:      estK2[isn] >= v.Tau,
			ExpQK:      estK[isn],
			LCurrent:   lcur,
			LBoosted:   lboost,
			PredCycles: cycles,
			Replica:    rep,
		})
	}
	inner := &Cottage{Boost: v.Boost, StrictTopK: v.StrictTopK, Downclock: v.Downclock}
	return inner.decideFromReports(e, reports)
}

// Observe implements engine.Policy.
func (*CottageNoML) Observe(float64) {}
