package core

import (
	"math"
	"testing"

	"cottage/internal/cluster"
)

// report builds an ISNReport with plain service-time semantics (no queue):
// lcur at the default frequency, lboost = lcur * default/max.
func report(isn int, qk, qk2 int, serviceAtDefaultMS float64, ladder cluster.Ladder) ISNReport {
	cycles := serviceAtDefaultMS * ladder.Default() * 1e6
	return ISNReport{
		ISN:        isn,
		QK:         qk,
		QK2:        qk2,
		HasK:       qk > 0,
		HasK2:      qk2 > 0,
		ExpQK:      float64(qk),
		LCurrent:   serviceAtDefaultMS,
		LBoosted:   cluster.ServiceMS(cycles, ladder.Max()),
		PredCycles: cycles,
	}
}

func TestDetermineBudgetCutsZeroQuality(t *testing.T) {
	ladder := cluster.DefaultLadder()
	reports := []ISNReport{
		report(0, 3, 2, 10, ladder),
		report(1, 0, 0, 5, ladder),
		report(2, 2, 1, 8, ladder),
		report(3, 0, 0, 30, ladder),
	}
	res := DetermineBudget(reports, ladder, BudgetOptions{})
	if len(res.Selected) != 2 {
		t.Fatalf("selected %d, want 2", len(res.Selected))
	}
	for _, c := range res.Cut {
		if c != 1 && c != 3 {
			t.Errorf("cut wrong ISN %d", c)
		}
	}
}

func TestDetermineBudgetFirstK2Contributor(t *testing.T) {
	ladder := cluster.DefaultLadder()
	// Fig. 9's shape: the slowest ISN has no top-K/2 contribution, the
	// second slowest does. The budget must be the second's boosted
	// latency, and the slowest must be cut.
	slowNoK2 := report(7, 1, 0, 27, ladder) // boosted = 18
	slowK2 := report(1, 2, 1, 24, ladder)   // boosted = 16
	fast := report(2, 3, 2, 6, ladder)      // boosted = 4
	res := DetermineBudget([]ISNReport{fast, slowNoK2, slowK2}, ladder, BudgetOptions{})
	wantT := slowK2.LBoosted
	if math.Abs(res.BudgetMS-wantT) > 1e-9 {
		t.Fatalf("budget = %v, want %v", res.BudgetMS, wantT)
	}
	// ISN 7 cannot meet the budget even boosted: cut.
	foundCut := false
	for _, c := range res.Cut {
		if c == 7 {
			foundCut = true
		}
	}
	if !foundCut {
		t.Error("ISN 7 should be cut (boosted latency above budget)")
	}
	// ISN 1 must be selected and boosted (current 24 > budget 16).
	for _, a := range res.Selected {
		if a.ISN == 1 {
			if !a.Boosted || a.Freq != ladder.Max() {
				t.Errorf("ISN 1 should boost to max, got %+v", a)
			}
		}
		if a.ISN == 2 {
			if a.Boosted {
				t.Error("fast ISN should not boost")
			}
		}
	}
}

func TestDetermineBudgetStrictTopK(t *testing.T) {
	ladder := cluster.DefaultLadder()
	reports := []ISNReport{
		report(0, 1, 0, 27, ladder), // slowest, no K/2
		report(1, 2, 1, 12, ladder),
	}
	loose := DetermineBudget(reports, ladder, BudgetOptions{})
	strict := DetermineBudget(reports, ladder, BudgetOptions{StrictTopK: true})
	if strict.BudgetMS <= loose.BudgetMS {
		t.Errorf("strict budget %v should exceed relaxed %v", strict.BudgetMS, loose.BudgetMS)
	}
	if len(strict.Selected) != 2 {
		t.Error("strict mode must keep every top-K contributor")
	}
}

func TestDetermineBudgetBoostMinimalFrequency(t *testing.T) {
	ladder := cluster.DefaultLadder()
	// Budget setter: boosted latency 12ms (service 18ms at default).
	setter := report(0, 2, 1, 18, ladder)
	// Slightly slow: 13ms at default; meets 12ms at 2.1 GHz
	// (13*1.8/2.1 = 11.14), so it must boost to exactly 2.1, not max.
	slightly := report(1, 1, 1, 13, ladder)
	res := DetermineBudget([]ISNReport{setter, slightly}, ladder, BudgetOptions{})
	for _, a := range res.Selected {
		if a.ISN == 1 {
			if a.Freq != 2.1 {
				t.Errorf("ISN 1 frequency = %v, want 2.1", a.Freq)
			}
			if !a.Boosted || a.Downclocked {
				t.Errorf("ISN 1 flags wrong: %+v", a)
			}
		}
	}
}

func TestDetermineBudgetDownclock(t *testing.T) {
	ladder := cluster.DefaultLadder()
	setter := report(0, 2, 1, 18, ladder) // budget = 12
	fast := report(1, 1, 1, 2, ladder)    // tons of slack
	res := DetermineBudget([]ISNReport{setter, fast}, ladder, BudgetOptions{Downclock: true})
	for _, a := range res.Selected {
		if a.ISN == 1 {
			if !a.Downclocked || a.Freq != ladder.Levels[0] {
				t.Errorf("fast ISN should downclock to min: %+v", a)
			}
		}
		if a.ISN == 0 && a.Downclocked {
			t.Error("budget setter must not downclock")
		}
	}
	// Without the option, the fast ISN stays at default.
	res2 := DetermineBudget([]ISNReport{setter, fast}, ladder, BudgetOptions{})
	for _, a := range res2.Selected {
		if a.ISN == 1 && a.Freq != ladder.Default() {
			t.Errorf("without Downclock, freq = %v", a.Freq)
		}
	}
}

func TestDetermineBudgetEmptyAndAllZero(t *testing.T) {
	ladder := cluster.DefaultLadder()
	res := DetermineBudget(nil, ladder, BudgetOptions{})
	if len(res.Selected) != 0 || !math.IsInf(res.BudgetMS, 1) {
		t.Error("empty reports should select nothing")
	}
	res2 := DetermineBudget([]ISNReport{report(0, 0, 0, 5, ladder)}, ladder, BudgetOptions{})
	if len(res2.Selected) != 0 || len(res2.Cut) != 1 {
		t.Error("all-zero quality should cut everything")
	}
}

func TestDetermineBudgetNoK2Anywhere(t *testing.T) {
	ladder := cluster.DefaultLadder()
	// Top-K contributors exist but none has top-K/2 contribution: the
	// budget falls back to the slowest candidate's boosted latency.
	a := report(0, 1, 0, 20, ladder)
	b := report(1, 1, 0, 10, ladder)
	res := DetermineBudget([]ISNReport{a, b}, ladder, BudgetOptions{})
	if math.Abs(res.BudgetMS-a.LBoosted) > 1e-9 {
		t.Errorf("budget = %v, want slowest boosted %v", res.BudgetMS, a.LBoosted)
	}
	if len(res.Selected) != 2 {
		t.Errorf("both should be selected, got %d", len(res.Selected))
	}
}

func TestDetermineBudgetDeterministic(t *testing.T) {
	ladder := cluster.DefaultLadder()
	reports := []ISNReport{
		report(3, 1, 1, 9, ladder),
		report(0, 2, 1, 9, ladder), // tie on latency
		report(2, 1, 0, 14, ladder),
		report(1, 0, 0, 3, ladder),
	}
	a := DetermineBudget(reports, ladder, BudgetOptions{})
	// Shuffle input order.
	shuffled := []ISNReport{reports[2], reports[0], reports[3], reports[1]}
	b := DetermineBudget(shuffled, ladder, BudgetOptions{})
	if a.BudgetMS != b.BudgetMS || len(a.Selected) != len(b.Selected) {
		t.Fatal("result depends on input order")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("selection differs under input permutation")
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewCottage().Name() != "cottage" ||
		NewCottageISN().Name() != "cottage-isn" ||
		NewCottageNoML().Name() != "cottage-noml" ||
		(&CottageOracle{}).Name() != "cottage-oracle" {
		t.Error("policy names wrong")
	}
}
