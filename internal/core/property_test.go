package core

import (
	"math"
	"testing"

	"cottage/internal/cluster"
	"cottage/internal/xrand"
)

// randomReports draws a random but internally-consistent prediction
// vector: each ISN gets a queue backlog and a cycle cost, from which the
// current/boosted equivalent latencies follow (they share the queue
// term, service scales as 1/f) — the same construction the real
// reporting path uses.
func randomReports(rng *xrand.RNG, ladder cluster.Ladder) []ISNReport {
	n := 1 + rng.Intn(20)
	reports := make([]ISNReport, n)
	for i := range reports {
		qk := 0
		if rng.Float64() < 0.7 {
			qk = 1 + rng.Intn(10)
		}
		qk2 := 0
		if qk > 0 && rng.Float64() < 0.6 {
			qk2 = 1 + rng.Intn(qk)
		}
		queue := 0.0
		if rng.Float64() < 0.3 {
			queue = rng.Float64() * 20
		}
		cycles := (0.5 + rng.Float64()*60) * ladder.Default() * 1e6
		reports[i] = ISNReport{
			ISN:        i,
			QK:         qk,
			QK2:        qk2,
			HasK:       qk > 0,
			HasK2:      qk2 > 0,
			ExpQK:      float64(qk) * (0.5 + rng.Float64()),
			LCurrent:   queue + cluster.ServiceMS(cycles, ladder.Default()),
			LBoosted:   queue + cluster.ServiceMS(cycles, ladder.Max()),
			PredCycles: cycles,
		}
	}
	return reports
}

// TestDetermineBudgetProperties checks Algorithm 1's invariants over
// randomized instances (400 instances x 4 option sets):
//
//  1. The budget T equals the boosted latency of some surviving
//     candidate (it is never invented out of thin air).
//  2. Selected and Cut partition the input exactly.
//  3. Every cut ISN either has zero predicted top-K contribution
//     (stage-1 cut) or cannot meet T even at max frequency (stage-2
//     cut). Dropped ISNs never take quality with them silently.
//  4. Every selected ISN's equivalent latency at its assigned frequency
//     meets the budget, and assigned frequencies are on the ladder.
func TestDetermineBudgetProperties(t *testing.T) {
	ladder := cluster.DefaultLadder()
	rng := xrand.New(20240817)
	const eps = 1e-6
	optSets := []BudgetOptions{
		{},
		{StrictTopK: true},
		{Downclock: true},
		{StrictTopK: true, Downclock: true},
	}
	for trial := 0; trial < 400; trial++ {
		reports := randomReports(rng, ladder)
		for _, opts := range optSets {
			res := DetermineBudget(reports, ladder, opts)

			byISN := make(map[int]ISNReport, len(reports))
			for _, r := range reports {
				byISN[r.ISN] = r
			}

			// (2) exact partition.
			seen := make(map[int]bool)
			for _, a := range res.Selected {
				if seen[a.ISN] {
					t.Fatalf("trial %d: ISN %d appears twice", trial, a.ISN)
				}
				seen[a.ISN] = true
			}
			for _, isn := range res.Cut {
				if seen[isn] {
					t.Fatalf("trial %d: ISN %d both selected and cut", trial, isn)
				}
				seen[isn] = true
			}
			if len(seen) != len(reports) {
				t.Fatalf("trial %d: %d ISNs accounted for, want %d", trial, len(seen), len(reports))
			}

			if len(res.Selected) == 0 {
				if !math.IsInf(res.BudgetMS, 1) {
					t.Fatalf("trial %d: empty selection with finite budget %.2f", trial, res.BudgetMS)
				}
				continue
			}

			// (1) T is a surviving candidate's boosted latency.
			anchored := false
			for _, r := range reports {
				if r.HasK && math.Abs(r.LBoosted-res.BudgetMS) < eps {
					anchored = true
					break
				}
			}
			if !anchored {
				t.Fatalf("trial %d: budget %.4f is no candidate's boosted latency", trial, res.BudgetMS)
			}

			// (3) cuts are justified.
			for _, isn := range res.Cut {
				r := byISN[isn]
				if r.HasK && r.LBoosted <= res.BudgetMS+eps {
					t.Fatalf("trial %d: ISN %d cut despite top-K contribution and meetable latency", trial, isn)
				}
			}

			// (4) assignments meet the budget on a ladder frequency.
			for _, a := range res.Selected {
				r := byISN[a.ISN]
				onLadder := false
				for _, f := range ladder.Levels {
					if f == a.Freq {
						onLadder = true
						break
					}
				}
				if !onLadder {
					t.Fatalf("trial %d: ISN %d assigned off-ladder frequency %.2f", trial, a.ISN, a.Freq)
				}
				if !opts.Downclock && a.Freq < ladder.Default() {
					t.Fatalf("trial %d: ISN %d downclocked without Downclock", trial, a.ISN)
				}
				queue := r.LCurrent - cluster.ServiceMS(r.PredCycles, ladder.Default())
				if queue < 0 {
					queue = 0
				}
				if got := queue + cluster.ServiceMS(r.PredCycles, a.Freq); got > res.BudgetMS+eps {
					t.Fatalf("trial %d: ISN %d misses budget at assigned freq: %.4f > %.4f",
						trial, a.ISN, got, res.BudgetMS)
				}
			}
		}
	}
}

// TestDegradedBudgetMonotone checks the degraded-mode contract over
// randomized instances: with missing predictions, the conservative
// budget is always >= what full information over the same responders
// would pick, it cuts nobody for speed (only stage-1 zero-quality
// cuts remain), and DegradedExclude is exactly DetermineBudget.
func TestDegradedBudgetMonotone(t *testing.T) {
	ladder := cluster.DefaultLadder()
	rng := xrand.New(77)
	const eps = 1e-9
	for trial := 0; trial < 300; trial++ {
		reports := randomReports(rng, ladder)
		missing := 1 + rng.Intn(4)
		opts := BudgetOptions{Downclock: rng.Float64() < 0.5}

		full := DetermineBudget(reports, ladder, opts)
		cons := DetermineBudgetDegraded(reports, missing, ladder, opts, DegradedConservative)
		excl := DetermineBudgetDegraded(reports, missing, ladder, opts, DegradedExclude)

		if cons.BudgetMS < full.BudgetMS-eps {
			t.Fatalf("trial %d: conservative budget %.4f below full-information %.4f",
				trial, cons.BudgetMS, full.BudgetMS)
		}
		if len(excl.Selected) != len(full.Selected) || excl.BudgetMS != full.BudgetMS {
			t.Fatalf("trial %d: DegradedExclude diverged from DetermineBudget", trial)
		}
		// Conservative keeps every top-K contributor: its cuts are all
		// stage-1 (zero quality).
		byISN := make(map[int]ISNReport, len(reports))
		for _, r := range reports {
			byISN[r.ISN] = r
		}
		for _, isn := range cons.Cut {
			if byISN[isn].HasK {
				t.Fatalf("trial %d: conservative mode cut contributor %d", trial, isn)
			}
		}
		// With nothing missing, conservative degenerates to the normal
		// algorithm.
		same := DetermineBudgetDegraded(reports, 0, ladder, opts, DegradedConservative)
		if same.BudgetMS != full.BudgetMS {
			t.Fatalf("trial %d: zero-missing conservative diverged", trial)
		}
	}
}
