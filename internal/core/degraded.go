package core

import (
	"math"

	"cottage/internal/cluster"
)

// DegradedMode selects how Algorithm 1 behaves when some ISNs never
// delivered a prediction (crashed nodes, dropped prediction round,
// retries exhausted). The paper's Algorithm 1 assumes a full prediction
// vector; a production aggregator cannot.
type DegradedMode int

const (
	// DegradedExclude optimizes over the responders alone. The missing
	// ISNs' quality contribution is simply lost — the cheapest policy,
	// and the right one when failures are rare and shards are replicated
	// upstream. The quality hit shows up in P@K, not in latency.
	DegradedExclude DegradedMode = iota
	// DegradedConservative falls back to a conservative budget: the
	// maximum boosted latency across the responding candidates. With
	// incomplete information the optimizer no longer knows which slow
	// responder the missing predictions would have outvoted, so it keeps
	// every surviving contributor reachable rather than racing an
	// unknowable field. Budgets are monotonically >= what full
	// information over the same responders would pick, trading tail
	// latency for quality retention.
	DegradedConservative
)

// String implements fmt.Stringer.
func (m DegradedMode) String() string {
	if m == DegradedConservative {
		return "conservative"
	}
	return "exclude"
}

// DetermineBudgetDegraded is Algorithm 1 under partial information:
// reports holds the predictions that arrived, missing counts the ISNs
// whose predictions never did. With no missing ISNs (or DegradedExclude)
// it is exactly DetermineBudget; with DegradedConservative and missing
// ISNs, the budget is relaxed to the slowest responding candidate's
// boosted latency so no surviving contributor is cut for speed.
func DetermineBudgetDegraded(reports []ISNReport, missing int, ladder cluster.Ladder,
	opts BudgetOptions, mode DegradedMode) BudgetResult {

	if missing <= 0 || mode != DegradedConservative {
		return DetermineBudget(reports, ladder, opts)
	}
	var res BudgetResult
	cands := stage1Cut(reports, &res)
	if len(cands) == 0 {
		res.BudgetMS = math.Inf(1)
		res.BudgetISN = -1
		return res
	}
	// cands is sorted by descending boosted latency, so the conservative
	// budget is the head's. Every candidate meets it at max frequency,
	// so the assignment stage cuts nobody.
	res.BudgetISN = cands[0].ISN
	assignFrequencies(&res, cands, cands[0].LBoosted, ladder, opts)
	return res
}
