package core

import (
	"fmt"

	"cottage/internal/cluster"
	"cottage/internal/obs"
)

// NewDecisionRecord converts one Algorithm 1 run into the span
// annotation obs traces carry: the chosen budget, which ISN set it, who
// got boosted/downclocked/dropped, and every report's inputs. Both
// serving paths (rpc.Aggregator and the simulated engine) build their
// records here so a trace reads the same regardless of substrate.
//
// missing lists ISNs whose predictions never arrived; mode is the
// degraded policy that handled them (recorded only when missing is
// non-empty).
func NewDecisionRecord(res BudgetResult, reports []ISNReport, missing []int,
	mode DegradedMode, ladder cluster.Ladder) *obs.DecisionRecord {

	d := &obs.DecisionRecord{
		BudgetMS:  res.BudgetMS,
		BudgetISN: res.BudgetISN,
		Dropped:   append([]int(nil), res.Cut...),
		Missing:   append([]int(nil), missing...),
	}
	byISN := make(map[int]Assignment, len(res.Selected))
	for _, a := range res.Selected {
		d.Selected = append(d.Selected, a.ISN)
		if a.Boosted {
			d.Boosted = append(d.Boosted, a.ISN)
		}
		if a.Downclocked {
			d.Downclocked = append(d.Downclocked, a.ISN)
		}
		byISN[a.ISN] = a
	}
	if len(missing) > 0 {
		d.DegradedMode = mode.String()
		d.DegradedReason = fmt.Sprintf("%d of %d predictions missing", len(missing), len(reports)+len(missing))
	}
	for _, r := range reports {
		rr := obs.ReportRecord{
			ISN:        r.ISN,
			Replica:    r.Replica,
			QK:         r.QK,
			QK2:        r.QK2,
			HasK:       r.HasK,
			HasK2:      r.HasK2,
			LCurrentMS: r.LCurrent,
			LBoostedMS: r.LBoosted,
			FreqGHz:    ladder.Default(),
		}
		if a, ok := byISN[r.ISN]; ok {
			rr.FreqGHz = a.Freq
			rr.Boosted = a.Boosted
			rr.Downclocked = a.Downclocked
		} else {
			rr.Cut = true
		}
		// Operational prediction at the assigned frequency: the shared
		// queue term plus the (margined) service time — what Algorithm 1
		// believed this ISN would take. PredServiceMS strips margin and
		// queue: the raw model output accuracy tracking scores.
		queue := r.LCurrent - cluster.ServiceMS(r.PredCycles, ladder.Default())
		if queue < 0 {
			queue = 0
		}
		rr.PredLatencyMS = queue + cluster.ServiceMS(r.PredCycles, rr.FreqGHz)
		raw := r.RawCycles
		if raw == 0 {
			raw = r.PredCycles
		}
		rr.PredServiceMS = cluster.ServiceMS(raw, rr.FreqGHz)
		d.Reports = append(d.Reports, rr)
	}
	return d
}

// PredictedServiceMS returns the raw (unmargined) predicted service
// time for one report at frequency f — the quantity accuracy tracking
// compares against measured service time.
func PredictedServiceMS(r ISNReport, f float64) float64 {
	raw := r.RawCycles
	if raw == 0 {
		raw = r.PredCycles
	}
	return cluster.ServiceMS(raw, f)
}
