// Package core implements Cottage itself: the coordinated per-query time
// budget assignment of Section III. Each ISN reports
// <Q^K, Q^{K/2}, L^current, L^boosted> (quality and equivalent-latency
// predictions); the aggregator runs Algorithm 1 to pick the minimal time
// budget that keeps every ISN with top-K/2 quality contribution
// reachable, cuts the rest, and boosts the CPU frequency of slow
// high-quality ISNs so they meet the budget.
//
// The package also provides the paper's two ablation variants
// (Section V-D): Cottage-ISN, which drops the aggregator coordination and
// lets each ISN decide locally, and Cottage-withoutML, which swaps the
// neural quality predictor for Taily's Gamma estimator.
package core

import (
	"math"
	"sort"

	"cottage/internal/cluster"
	"cottage/internal/engine"
	"cottage/internal/predict"
	"cottage/internal/trace"
)

// ISNReport is one ISN's input to the optimizer: the paper's
// <Q^K, Q^{K/2}, L^current, L^boosted> tuple (Algorithm 1, line 1).
type ISNReport struct {
	ISN int
	// QK and QK2 are predicted contributions to the global top-K and
	// top-K/2; HasK/HasK2 are the calibrated non-zero decisions (the
	// classifier's zero-probability thresholded, see predict.Prediction).
	QK, QK2     int
	HasK, HasK2 bool
	ExpQK       float64
	LCurrent    float64 // equivalent latency at the current frequency
	LBoosted    float64 // equivalent latency at the maximum frequency
	PredCycles  float64
	// RawCycles is the predictor's cycle estimate before the latency
	// margin inflates it — the honest prediction, kept so accuracy
	// tracking measures the model rather than the safety margin. Zero
	// means "same as PredCycles" (no margin applied).
	RawCycles float64
	// Replica is which copy of the shard answered the prediction round
	// (replica row index, 0 on unreplicated fleets). Replicas of a shard
	// are interchangeable for Q^K/Q^{K/2}, so Algorithm 1 ignores it; it
	// flows into the DecisionRecord for the audit trail.
	Replica int
}

// BudgetResult is the optimizer's output.
type BudgetResult struct {
	// BudgetMS is the chosen time budget T.
	BudgetMS float64
	// Selected lists the ISNs that participate, with their assigned
	// frequencies.
	Selected []Assignment
	// Cut lists ISNs excluded (zero quality, or boosted latency above T).
	Cut []int
	// BudgetISN is the ISN whose boosted latency set the budget
	// (Algorithm 1's "ISN j"), -1 when no candidate survived stage 1.
	BudgetISN int
}

// Assignment is one selected ISN and its DVFS frequency.
type Assignment struct {
	ISN     int
	Freq    float64
	Boosted bool
	// Downclocked marks ISNs slowed below the default frequency because
	// the budget left slack.
	Downclocked bool
}

// BudgetOptions tune Algorithm 1's assignment stage.
type BudgetOptions struct {
	// StrictTopK disables the K/2 relaxation: the budget is the slowest
	// top-K contributor's boosted latency.
	StrictTopK bool
	// Downclock lets ISNs whose predicted latency is far below the budget
	// drop below the default frequency, reclaiming the slack as energy —
	// the use the paper's Section I motivates for a per-query time budget
	// (feeding DVFS schemes like Pegasus/TimeTrader/Rubik).
	Downclock bool
}

// DetermineBudget is Algorithm 1. reports must contain one entry per
// candidate ISN (callers typically pre-filter unmatched shards); ladder
// supplies the frequency levels. Each report's equivalent latencies embed
// its queue backlog, which frequency selection recovers so that the
// equivalent latency at frequency f is queue + service(f).
//
// Stage 1 (lines 3–11) cuts ISNs with zero predicted top-K contribution.
// Stage 2 (lines 12–21) re-sorts survivors by descending boosted latency
// and walks down until the first ISN with top-K/2 contribution; that
// ISN's boosted latency is the budget. (The paper's listing lacks the
// early exit its own walkthrough of Fig. 9 performs — "we select ISN j's
// boosted latency as the final time budget" at the *first* hit — so we
// break there; continuing would pick an unmeetably small budget.)
// Survivors whose boosted latency exceeds the budget are cut; survivors
// whose current-frequency latency exceeds it are boosted to the smallest
// ladder frequency that meets it.
func DetermineBudget(reports []ISNReport, ladder cluster.Ladder, opts BudgetOptions) BudgetResult {
	var res BudgetResult
	cands := stage1Cut(reports, &res)
	if len(cands) == 0 {
		res.BudgetMS = math.Inf(1)
		res.BudgetISN = -1
		return res
	}
	// Stage 2: descending boosted latency; budget = first K/2 contributor.
	T := cands[0].LBoosted
	res.BudgetISN = cands[0].ISN
	if !opts.StrictTopK {
		for _, c := range cands {
			if c.HasK2 {
				T = c.LBoosted
				res.BudgetISN = c.ISN
				break
			}
		}
	}
	assignFrequencies(&res, cands, T, ladder, opts)
	return res
}

// stage1Cut is Algorithm 1's lines 3–11: rank candidates by expected
// quality, cut ISNs with zero predicted top-K contribution, and return
// the survivors sorted by descending boosted latency (stage 2's order).
func stage1Cut(reports []ISNReport, res *BudgetResult) []ISNReport {
	cands := make([]ISNReport, 0, len(reports))
	for _, r := range reports {
		if !r.HasK {
			res.Cut = append(res.Cut, r.ISN)
			continue
		}
		cands = append(cands, r)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ExpQK > cands[j].ExpQK })
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].LBoosted > cands[j].LBoosted })
	return cands
}

// assignFrequencies is Algorithm 1's assignment stage for a chosen
// budget T: cut candidates that cannot meet T even boosted, and give the
// rest the smallest ladder frequency that does.
func assignFrequencies(res *BudgetResult, cands []ISNReport, T float64, ladder cluster.Ladder, opts BudgetOptions) {
	res.BudgetMS = T
	const eps = 1e-9
	for _, c := range cands {
		if c.LBoosted > T+eps {
			// Cannot meet the budget even at max frequency: sacrificed
			// bottom-K/2 quality for response time (Fig. 9's ISN-7).
			res.Cut = append(res.Cut, c.ISN)
			continue
		}
		// Pick the smallest ladder frequency whose equivalent latency
		// meets the budget. The current and boosted latencies share the
		// queue term, so service scales as 1/f between them. Without
		// Downclock the frequency never drops below the default.
		queue := c.LCurrent - cluster.ServiceMS(c.PredCycles, ladder.Default())
		if queue < 0 {
			queue = 0
		}
		need := ladder.Max()
		for _, f := range ladder.Levels {
			if !opts.Downclock && f < ladder.Default() {
				continue
			}
			if queue+cluster.ServiceMS(c.PredCycles, f) <= T+eps {
				need = f
				break
			}
		}
		res.Selected = append(res.Selected, Assignment{
			ISN:         c.ISN,
			Freq:        need,
			Boosted:     need > ladder.Default(),
			Downclocked: need < ladder.Default(),
		})
	}
	sort.Slice(res.Selected, func(i, j int) bool { return res.Selected[i].ISN < res.Selected[j].ISN })
	sort.Ints(res.Cut)
}

// Cottage is the full coordinated policy (Fig. 5's seven steps).
type Cottage struct {
	// DropZeroProb cuts an ISN when its quality model assigns at least
	// this probability to the zero class (calibrated cutoff; see
	// predict.Prediction).
	DropZeroProb float64
	// K2ZeroProb is the same threshold for the "contributes to top-K/2"
	// test in stage 2.
	K2ZeroProb float64
	// Boost enables frequency boosting (ablation switch; the paper's
	// Cottage always boosts).
	Boost bool
	// StrictTopK disables the K/2 relaxation (ablation: never sacrifice
	// bottom-half quality; the budget is the slowest contributor's
	// boosted latency).
	StrictTopK bool
	// Downclock reclaims budget slack as energy by letting fast ISNs run
	// below the default frequency (see BudgetOptions.Downclock). The
	// paper's Cottage saves power chiefly by activating fewer ISNs; at
	// our predictors' accuracy the same P@10 needs a more conservative
	// cutoff, and slack reclamation recovers the Fig. 14 power ordering.
	Downclock bool
	// LatencyMargin inflates predicted service times by this fraction
	// before budget/boost decisions, absorbing the latency model's ~one
	// log-bin quantization error so contributors rarely miss their
	// deadline (a straggler that misses by 1 ms loses its whole
	// contribution, so under-prediction is far costlier than the small
	// budget slack over-prediction adds).
	LatencyMargin float64
	// Degraded selects how Algorithm 1 reacts when ISNs fail to deliver
	// predictions (dead nodes in the simulated cluster): exclude them,
	// or fall back to a conservative budget. See DegradedMode.
	Degraded DegradedMode
}

// NewCottage returns the paper's configuration.
func NewCottage() *Cottage {
	return &Cottage{DropZeroProb: 0.8, K2ZeroProb: 0.95, Boost: true, Downclock: true, LatencyMargin: 0.5}
}

// Name implements engine.Policy.
func (c *Cottage) Name() string { return "cottage" }

// coordOverheadMS is the critical-path cost of coordination: the
// prediction round trip, the optimizer, and the budget broadcast
// (two extra fabric round trips plus both model inferences).
func coordOverheadMS(e *engine.Engine) float64 {
	return 4*e.Cluster.Net.AggToISNMS + e.Cluster.InferMS
}

// Reports gathers the per-ISN prediction tuples for a query (steps 2–3).
func (c *Cottage) Reports(e *engine.Engine, q trace.Query, nowMS float64) []ISNReport {
	preds := e.Fleet.PredictAll(e.Shards, q.Terms)
	return reportsFromPredictions(e, preds, nowMS, c.DropZeroProb, c.K2ZeroProb, c.LatencyMargin)
}

// shardLeg picks the shard's serving replica for the upcoming leg and
// returns its replica row plus Eq. 2 equivalent latencies at the default
// and max frequencies. A fully-dead shard falls back to replica row 0's
// queue view so policies that do not filter availability (the ablations,
// the oracle) keep their pre-replication behaviour; availability-aware
// callers filter with ShardFailed first.
func shardLeg(e *engine.Engine, shard int, nowMS, cycles float64) (rep int, lcur, lboost float64) {
	node := e.Cluster.SelectReplica(shard, nowMS)
	if node < 0 {
		node = shard
	}
	fdef, fmax := e.Cluster.Ladder.Default(), e.Cluster.Ladder.Max()
	return e.Cluster.Topo().ReplicaOf(node),
		e.Cluster.EquivalentLatencyMS(node, nowMS, cycles, fdef),
		e.Cluster.EquivalentLatencyMS(node, nowMS, cycles, fmax)
}

func reportsFromPredictions(e *engine.Engine, preds []predict.Prediction, nowMS float64,
	dropZeroProb, k2ZeroProb, latencyMargin float64) []ISNReport {

	reports := make([]ISNReport, 0, len(preds))
	for isn, p := range preds {
		// A dead shard — every replica down — never answers the prediction
		// round: its report is missing, and degraded-mode Algorithm 1
		// (Cottage.Degraded) decides how to optimize without it. While any
		// replica lives, the shard's predictions survive node loss.
		if e.Cluster.ShardFailed(isn) {
			continue
		}
		if !p.Matched {
			continue
		}
		cycles := p.Cycles * (1 + latencyMargin)
		rep, lcur, lboost := shardLeg(e, isn, nowMS, cycles)
		reports = append(reports, ISNReport{
			ISN:        isn,
			QK:         p.QK,
			QK2:        p.QK2,
			HasK:       p.PZeroK < dropZeroProb,
			HasK2:      p.PZeroK2 < k2ZeroProb,
			ExpQK:      p.ExpQK,
			LCurrent:   lcur,
			LBoosted:   lboost,
			PredCycles: cycles,
			RawCycles:  p.Cycles,
			Replica:    rep,
		})
	}
	return reports
}

// Decide implements engine.Policy: Algorithm 1 over the fleet's
// predictions.
func (c *Cottage) Decide(e *engine.Engine, q trace.Query, nowMS float64) engine.Decision {
	if e.Fleet == nil {
		panic("core: Cottage requires a trained fleet (engine.TrainFleet)")
	}
	reports := c.Reports(e, q, nowMS)
	return c.decideFromReports(e, reports)
}

func (c *Cottage) decideFromReports(e *engine.Engine, reports []ISNReport) engine.Decision {
	d := engine.Decision{
		Participate:    make([]bool, len(e.Shards)),
		Freq:           make([]float64, len(e.Shards)),
		CoordMS:        coordOverheadMS(e),
		UsedPredictors: true,
		PredCycles:     make([]float64, len(e.Shards)),
	}
	for _, r := range reports {
		d.PredCycles[r.ISN] = r.PredCycles
	}
	res := DetermineBudgetDegraded(reports, e.Cluster.FailedShardCount(), e.Cluster.Ladder, BudgetOptions{
		StrictTopK: c.StrictTopK,
		Downclock:  c.Downclock,
	}, c.Degraded)
	if e.Obs != nil {
		var missing []int
		for si := range e.Shards {
			if e.Cluster.ShardFailed(si) {
				missing = append(missing, si)
			}
		}
		d.Record = NewDecisionRecord(res, reports, missing, c.Degraded, e.Cluster.Ladder)
	}
	if len(res.Selected) == 0 {
		// Every candidate was cut (or nothing matched). Fall back to the
		// highest-expected-quality ISN so the client never gets an empty
		// result for a matching query.
		best, bestISN := -1.0, -1
		for _, r := range reports {
			if r.ExpQK > best {
				best, bestISN = r.ExpQK, r.ISN
			}
		}
		if bestISN >= 0 {
			d.Participate[bestISN] = true
			d.Freq[bestISN] = e.Cluster.Ladder.Default()
			d.BudgetMS = math.Inf(1)
		}
		return d
	}
	d.BudgetMS = res.BudgetMS
	for _, a := range res.Selected {
		d.Participate[a.ISN] = true
		f := a.Freq
		if !c.Boost {
			f = e.Cluster.Ladder.Default()
		}
		d.Freq[a.ISN] = f
	}
	return d
}

// Observe implements engine.Policy.
func (*Cottage) Observe(float64) {}
