// Package features extracts the per-query, per-ISN feature vectors of the
// paper's Table I (quality prediction) and Table II (latency prediction)
// from index-time term statistics. Multi-term queries aggregate per-term
// features with the MAX operator, the choice the paper makes for phrase
// features (Section III-C), except for the query-length feature, which is
// the term count itself.
package features

import (
	"cottage/internal/index"
)

// QualityDim is the quality feature-vector dimension: the ten Table I
// features plus five tail-count features (rows 11-15 below). The extras
// are index-time term statistics of exactly the Table I kind; on our
// synthetic corpus the quantile-only vector saturates around 80% within-1
// accuracy because the 0-vs-1-contribution boundary lives in the extreme
// tail of the score distribution, which seven quantile points cannot
// resolve. The tail counts restore the paper's accuracy regime without
// leaving "statistics calculated during the indexing phase" (Section I).
const QualityDim = 15

// LatencyDim is the Table II feature-vector dimension.
const LatencyDim = 15

// QualityNames lists Table I's features in vector order.
var QualityNames = [QualityDim]string{
	"First quartile score",
	"Arithmetic average score",
	"Median score",
	"Geometric average score",
	"Harmonic average score",
	"Third quartile score",
	"Kth score",
	"Max score",
	"Score variance",
	"Posting list length",
	"Documents ever in top-K",
	"Documents in 5% of Kth score",
	"Documents in 5% of max score",
	"Number of max score",
	"IDF",
}

// LatencyNames lists Table II's features in vector order.
var LatencyNames = [LatencyDim]string{
	"Posting list length",
	"Documents ever in top-K",
	"Number of local score maxima",
	"Number of local score maxima larger than mean score",
	"Number of max score",
	"Query length",
	"Documents in 5% of max score",
	"Documents in 5% of Kth score",
	"Arithmetic average score",
	"Geometric average score",
	"Harmonic average score",
	"Max score",
	"Estimated max score",
	"Score variance",
	"IDF",
}

// qualityRow maps one term's index statistics onto Table I's vector order.
func qualityRow(st *index.TermStats) [QualityDim]float64 {
	return [QualityDim]float64{
		st.Q1,
		st.Mean,
		st.Median,
		st.GeoMean,
		st.HarmMean,
		st.Q3,
		st.KthScore,
		st.MaxScore,
		st.Variance,
		float64(st.PostingLen),
		float64(st.DocsEverInTopK),
		float64(st.DocsWithin5OfKth),
		float64(st.DocsWithin5OfMax),
		float64(st.NumMaxScore),
		st.IDF,
	}
}

// latencyRow maps one term's index statistics onto Table II's vector order.
func latencyRow(st *index.TermStats) [LatencyDim]float64 {
	return [LatencyDim]float64{
		float64(st.PostingLen),
		float64(st.DocsEverInTopK),
		float64(st.NumLocalMaxima),
		float64(st.NumMaximaAboveMean),
		float64(st.NumMaxScore),
		0, // query length is set after the loop, not MAXed
		float64(st.DocsWithin5OfMax),
		float64(st.DocsWithin5OfKth),
		st.Mean,
		st.GeoMean,
		st.HarmMean,
		st.MaxScore,
		st.EstMaxScore,
		st.Variance,
		st.IDF,
	}
}

// Quality builds the Table I feature vector for the query terms on shard
// s. Terms missing from the shard contribute nothing; if no term matches,
// ok is false and the caller should treat the shard's contribution as
// zero without running the predictor.
func Quality(s *index.Shard, terms []string) (vec [QualityDim]float64, ok bool) {
	matched := false
	for _, t := range terms {
		ti, found := s.Lookup(t)
		if !found {
			continue
		}
		matched = true
		f := qualityRow(&ti.Stats)
		for i := range vec {
			if f[i] > vec[i] {
				vec[i] = f[i]
			}
		}
	}
	return vec, matched
}

// Latency builds the Table II feature vector for the query terms on shard
// s, with the same MAX aggregation and missing-term handling as Quality.
func Latency(s *index.Shard, terms []string) (vec [LatencyDim]float64, ok bool) {
	matched := 0
	for _, t := range terms {
		ti, found := s.Lookup(t)
		if !found {
			continue
		}
		matched++
		f := latencyRow(&ti.Stats)
		for i := range vec {
			if f[i] > vec[i] {
				vec[i] = f[i]
			}
		}
	}
	vec[5] = float64(len(terms))
	return vec, matched > 0
}

// Extract builds both predictors' feature vectors in one pass, with a
// single term-dictionary lookup per query term instead of the two that
// calling Quality and Latency separately costs. The vectors are identical
// to the ones the individual extractors produce; the serving path
// (predict.ISNPredictor.Predict) runs both predictors on every query, so
// it always wants both.
func Extract(s *index.Shard, terms []string) (q [QualityDim]float64, l [LatencyDim]float64, ok bool) {
	for _, t := range terms {
		ti, found := s.Lookup(t)
		if !found {
			continue
		}
		ok = true
		qf := qualityRow(&ti.Stats)
		for i := range q {
			if qf[i] > q[i] {
				q[i] = qf[i]
			}
		}
		lf := latencyRow(&ti.Stats)
		for i := range l {
			if lf[i] > l[i] {
				l[i] = lf[i]
			}
		}
	}
	l[5] = float64(len(terms))
	return q, l, ok
}
