package features

import (
	"testing"

	"cottage/internal/index"
)

func buildShard(t testing.TB) *index.Shard {
	t.Helper()
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	docs := []map[string]int{
		{"tokyo": 3, "city": 1},
		{"tokyo": 1, "japan": 2},
		{"toyota": 5, "car": 1},
		{"tokyo": 2, "toyota": 1},
		{"city": 4},
		{"japan": 1, "city": 2, "tokyo": 1},
	}
	for i, d := range docs {
		n := 0
		for _, tf := range d {
			n += tf
		}
		b.Add(int64(i), d, n+10)
	}
	return b.Finalize()
}

func TestQualityVector(t *testing.T) {
	s := buildShard(t)
	vec, ok := Quality(s, []string{"tokyo"})
	if !ok {
		t.Fatal("tokyo should match")
	}
	ti, _ := s.Lookup("tokyo")
	st := ti.Stats
	want := []float64{st.Q1, st.Mean, st.Median, st.GeoMean, st.HarmMean,
		st.Q3, st.KthScore, st.MaxScore, st.Variance, float64(st.PostingLen),
		float64(st.DocsEverInTopK), float64(st.DocsWithin5OfKth), float64(st.DocsWithin5OfMax),
		float64(st.NumMaxScore), st.IDF}
	for i, w := range want {
		if vec[i] != w {
			t.Errorf("%s = %v, want %v", QualityNames[i], vec[i], w)
		}
	}
}

func TestQualityMaxAggregation(t *testing.T) {
	s := buildShard(t)
	a, _ := Quality(s, []string{"tokyo"})
	b, _ := Quality(s, []string{"city"})
	both, _ := Quality(s, []string{"tokyo", "city"})
	for i := range both {
		want := a[i]
		if b[i] > want {
			want = b[i]
		}
		if both[i] != want {
			t.Errorf("%s: MAX aggregation wrong: %v, want %v", QualityNames[i], both[i], want)
		}
	}
}

func TestQualityNoMatch(t *testing.T) {
	s := buildShard(t)
	vec, ok := Quality(s, []string{"absent"})
	if ok {
		t.Fatal("absent term should not match")
	}
	for i, v := range vec {
		if v != 0 {
			t.Errorf("feature %d non-zero for absent term: %v", i, v)
		}
	}
	// Partial match: absent terms ignored.
	full, _ := Quality(s, []string{"tokyo"})
	part, ok := Quality(s, []string{"tokyo", "absent"})
	if !ok || part != full {
		t.Error("partial match should equal the matching term's vector")
	}
}

func TestLatencyVector(t *testing.T) {
	s := buildShard(t)
	vec, ok := Latency(s, []string{"toyota", "car"})
	if !ok {
		t.Fatal("should match")
	}
	if vec[5] != 2 {
		t.Errorf("query length feature = %v, want 2", vec[5])
	}
	// Posting list length must be the max of the two terms'.
	toyota, _ := s.Lookup("toyota")
	car, _ := s.Lookup("car")
	wantLen := float64(toyota.Stats.PostingLen)
	if float64(car.Stats.PostingLen) > wantLen {
		wantLen = float64(car.Stats.PostingLen)
	}
	if vec[0] != wantLen {
		t.Errorf("posting length feature = %v, want %v", vec[0], wantLen)
	}
	// IDF is the max IDF.
	wantIDF := toyota.Stats.IDF
	if car.Stats.IDF > wantIDF {
		wantIDF = car.Stats.IDF
	}
	if vec[14] != wantIDF {
		t.Errorf("idf feature = %v, want %v", vec[14], wantIDF)
	}
}

func TestLatencyQueryLengthCountsAllTerms(t *testing.T) {
	s := buildShard(t)
	// Query length counts requested terms, matched or not (the aggregator
	// does not know which terms a shard holds when it builds the query).
	vec, ok := Latency(s, []string{"tokyo", "absent", "alsoabsent"})
	if !ok {
		t.Fatal("one term matches")
	}
	if vec[5] != 3 {
		t.Errorf("query length = %v, want 3", vec[5])
	}
}

func TestLatencyNoMatch(t *testing.T) {
	s := buildShard(t)
	vec, ok := Latency(s, []string{"absent"})
	if ok {
		t.Fatal("should not match")
	}
	// Only the query-length slot may be non-zero.
	for i, v := range vec {
		if i != 5 && v != 0 {
			t.Errorf("feature %d non-zero: %v", i, v)
		}
	}
}

func TestDimsMatchNames(t *testing.T) {
	if len(QualityNames) != QualityDim || len(LatencyNames) != LatencyDim {
		t.Fatal("name tables out of sync with dims")
	}
	for _, n := range QualityNames {
		if n == "" {
			t.Fatal("empty quality feature name")
		}
	}
	for _, n := range LatencyNames {
		if n == "" {
			t.Fatal("empty latency feature name")
		}
	}
}

func BenchmarkQuality(b *testing.B) {
	s := buildShard(b)
	q := []string{"tokyo", "city"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Quality(s, q)
	}
}

func BenchmarkLatency(b *testing.B) {
	s := buildShard(b)
	q := []string{"tokyo", "city"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Latency(s, q)
	}
}

func TestExtractorsZeroAlloc(t *testing.T) {
	// The extractors run per query per shard on the serving hot path; the
	// fixed-size vectors they return must stay on the caller's stack.
	s := buildShard(t)
	q := []string{"tokyo", "city", "nosuchterm"}
	if allocs := testing.AllocsPerRun(100, func() { _, _ = Quality(s, q) }); allocs != 0 {
		t.Errorf("Quality allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _, _ = Latency(s, q) }); allocs != 0 {
		t.Errorf("Latency allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _, _, _ = Extract(s, q) }); allocs != 0 {
		t.Errorf("Extract allocates %v per run, want 0", allocs)
	}
}
