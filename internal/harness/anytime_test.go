package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cottage/internal/engine"
)

// TestAnytimeSweepCurves replays the sweep's ladder directly and asserts
// the acceptance shape: quality is monotone in the deadline for both
// protocols, anytime strictly beats the drop-ISN protocol at every
// deadline where budget misses actually occur, and at an infinite
// deadline both protocols are exhaustive and identical.
func TestAnytimeSweepCurves(t *testing.T) {
	s := testSetup(t)
	defer func() { s.Engine.Anytime = false }()
	prevDrop, prevAny := -1.0, -1.0
	misses := 0
	for _, b := range AnytimeBudgets() {
		pol := FixedBudget{BudgetMS: b}
		s.Engine.Anytime = false
		drop := engine.Summarize(s.Engine.Run(pol, s.WikiEval))
		s.Engine.Anytime = true
		any := engine.Summarize(s.Engine.Run(pol, s.WikiEval))
		if drop.MeanPAtK < prevDrop || any.MeanPAtK < prevAny {
			t.Fatalf("budget %v: quality not monotone (drop %v<-%v, any %v<-%v)",
				b, drop.MeanPAtK, prevDrop, any.MeanPAtK, prevAny)
		}
		prevDrop, prevAny = drop.MeanPAtK, any.MeanPAtK
		if any.TruncatedFrac != drop.DroppedFrac {
			t.Fatalf("budget %v: truncated frac %v != dropped frac %v", b, any.TruncatedFrac, drop.DroppedFrac)
		}
		if drop.DroppedFrac > 0 {
			misses++
			if any.MeanPAtK <= drop.MeanPAtK {
				t.Fatalf("budget %v: anytime P@10 %v not strictly above drop %v despite %v dropped",
					b, any.MeanPAtK, drop.MeanPAtK, drop.DroppedFrac)
			}
		}
		if math.IsInf(b, 1) {
			if drop.MeanPAtK != 1 || any.MeanPAtK != 1 {
				t.Fatalf("infinite budget not exhaustive: drop %v, any %v", drop.MeanPAtK, any.MeanPAtK)
			}
		}
		if any.P95Latency != drop.P95Latency {
			t.Fatalf("budget %v: anytime changed p95 latency %v vs %v", b, any.P95Latency, drop.P95Latency)
		}
	}
	if misses < 3 {
		t.Fatalf("only %d ladder rungs produced budget misses; the sweep is not probing the quality cliff", misses)
	}
}

// TestAnytimeSweepRenders smoke-tests the experiment's table output.
func TestAnytimeSweepRenders(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := AnytimeSweep(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"budget", "drop@10", "any@10", "truncfrac", "inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	if s.Engine.Anytime {
		t.Error("sweep left the engine in anytime mode")
	}
	if _, ok := ByID("anytime"); !ok {
		t.Error("anytime experiment not registered")
	}
}
