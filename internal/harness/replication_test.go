package harness

import (
	"testing"

	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/faults"
)

// TestReplicationFailureContrast pins the acceptance claim of the
// replication sweep: with R=2 a single permanently failed replica costs
// nothing — no query loses a leg and mean quality matches the fault-free
// run to within straggler noise — while the same failure at R=1
// reproduces the degraded-mode quality floor (the dead shard's top-K
// documents are unrecoverable).
func TestReplicationFailureContrast(t *testing.T) {
	s := testSetup(t)
	pol := core.NewCottage()
	pol.Degraded = core.DegradedConservative
	n := len(s.Engine.Shards)

	build := func(r int) *engine.Engine {
		cfg := s.Config.EngineCfg
		cfg.Cluster.Replicas = r
		eng := engine.New(s.Engine.Shards, cfg)
		eng.Fleet = s.Engine.Fleet
		return eng
	}
	run := func(eng *engine.Engine, failed int) engine.Summary {
		eng.Cluster.ClearFaults()
		topo := eng.Cluster.Topo()
		for _, sh := range faults.PickVictims(2022, failed, n) {
			eng.Cluster.FailISN(topo.Node(sh, 0))
		}
		return engine.Summarize(eng.Run(pol, s.WikiEval))
	}

	r2 := build(2)
	r2clean := run(r2, 0)
	r2one := run(r2, 1)
	if got := r2.Cluster.FailedShardCount(); got != 0 {
		t.Fatalf("R=2 with one dead replica lost %d shard groups", got)
	}
	if r2one.FailedFrac != 0 {
		t.Fatalf("R=2 with one dead replica lost legs: FailedFrac=%v", r2one.FailedFrac)
	}
	if r2one.MeanPAtK < r2clean.MeanPAtK-0.005 {
		t.Fatalf("R=2 single failure cost quality: %v vs fault-free %v",
			r2one.MeanPAtK, r2clean.MeanPAtK)
	}

	// At R=1 the dead shard IS the group: it is known-dead at selection
	// time, so Cottage excludes it rather than dispatching into silence —
	// the cost is the unrecoverable quality floor, not failed queries.
	r1 := build(1)
	r1clean := run(r1, 0)
	r1one := run(r1, 1)
	if got := r1.Cluster.FailedShardCount(); got != 1 {
		t.Fatalf("R=1 with one dead replica should lose one shard group, lost %d", got)
	}
	if r1one.MeanPAtK >= r1clean.MeanPAtK-0.005 {
		t.Fatalf("R=1 single failure should drop quality: %v vs fault-free %v",
			r1one.MeanPAtK, r1clean.MeanPAtK)
	}
}
