package harness

import (
	"fmt"
	"io"

	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/obs"
	"cottage/internal/obs/anatomy"
	"cottage/internal/obs/slo"
	"cottage/internal/stats"
)

// anatomyTightBudgetMS is the fixed deadline for the anytime variant —
// low enough (see AnytimeBudgets) that budget misses are routine.
const anatomyTightBudgetMS = 4

// anatomyVariant is one tail-anatomy run: an engine configuration whose
// phase decomposition the experiment prints.
type anatomyVariant struct {
	label    string
	replicas int
	pol      engine.Policy
	mut      func(eng *engine.Engine)
}

// anatomyEngine builds a fresh engine (shared shards and fleet, private
// cluster) with an observer and a phase-attribution collector attached.
func anatomyEngine(s *Setup, r, window int) *engine.Engine {
	cfg := s.Config.EngineCfg
	cfg.Cluster.Replicas = r
	eng := engine.New(s.Engine.Shards, cfg)
	eng.Fleet = s.Engine.Fleet
	eng.Obs = obs.NewObserver(len(eng.Shards), 64)
	eng.Anatomy = anatomy.NewCollector(window)
	return eng
}

// Anatomy replays the Wikipedia trace under Cottage through the
// simulated twin with per-phase latency attribution attached, and prints
// the tail-anatomy table for three variants: the stock protocol, anytime
// truncation (budget misses answer truncated instead of waiting out the
// deadline), and hedged replicas against an injected straggler. The
// interesting read is the p99-owner line: anytime and hedging do not
// just shrink the p99, they move which phase owns it. A burn-rate
// monitor on the twin's virtual clock then demonstrates the paging path:
// a latency objective set below the observed median must page, and the
// breach snapshots the flight recorder.
func Anatomy(s *Setup, w io.Writer) error {
	variants := []anatomyVariant{
		{"cottage", 1, core.NewCottage(), nil},
		// A 4 ms fixed deadline forces real budget misses; anytime
		// truncation answers them instead of waiting, capping the search
		// phase at the deadline and handing the tail to whoever is next.
		{"anytime-4ms", 1, FixedBudget{BudgetMS: anatomyTightBudgetMS},
			func(eng *engine.Engine) { eng.Anytime = true }},
		{"cottage+hedge", 2, core.NewCottage(), func(eng *engine.Engine) {
			// Replicated fleet with a limping row-0 replica on shard 0 —
			// the setup where hedge-wait time shows up on the tail.
			eng.HedgeDelayMS = hedgeFixedDelayMS
			eng.Cluster.SetExtraDelayMS(eng.Cluster.Topo().Node(0, 0), hedgeStragglerMS)
		}},
	}
	var medianMS float64
	for _, v := range variants {
		eng := anatomyEngine(s, v.replicas, len(s.WikiEval))
		if v.mut != nil {
			v.mut(eng)
		}
		r := eng.Run(v.pol, s.WikiEval)
		if v.label == "cottage" {
			lats := make([]float64, len(r.Outcomes))
			for i, o := range r.Outcomes {
				lats[i] = o.LatencyMS
			}
			medianMS = stats.Percentile(lats, 50)
		}
		fmt.Fprintf(w, "== %s (%d queries) ==\n", v.label, len(r.Outcomes))
		if err := eng.Anatomy.Report().WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	// SLO burn-rate demo on the twin's virtual clock: a latency target at
	// the stock run's median makes roughly half the queries "bad" — a
	// burn around 50x a 1% budget — so both windows breach, the monitor
	// pages, and the page snapshots the flight recorder.
	eng := anatomyEngine(s, 1, len(s.WikiEval))
	eng.Obs.Flight = obs.NewFlightRecorder(8, 8, 0)
	mon := slo.New(slo.Config{
		FastWindowMS: 1_000,
		SlowWindowMS: 10_000,
		NowMS:        eng.Cluster.NowMS,
	})
	eng.SLO = &slo.QuerySLO{
		LatencyMS: medianMS,
		Latency:   mon.Objective("latency", 0.01),
		Quality:   mon.Objective("quality", 0.05),
	}
	dumpLines := -1
	mon.OnPage(func(o *slo.Objective) {
		if dumpLines >= 0 {
			return // only the first breach snapshots
		}
		dumpLines, _ = eng.Obs.Flight.WriteJSONL(io.Discard)
	})
	eng.Run(core.NewCottage(), s.WikiEval)
	fmt.Fprintf(w, "== slo burn-rate demo (latency target = stock median %.2f ms) ==\n", medianMS)
	for _, o := range mon.Objectives() {
		fast, slow := o.Burn()
		fmt.Fprintf(w, "%-10s state=%-5s alert-gauge=%.0f pages=%d burn fast=%.1f slow=%.1f\n",
			o.Name(), o.State(), float64(o.State()), o.Pages(), fast, slow)
	}
	if dumpLines >= 0 {
		fmt.Fprintf(w, "flight-recorder dump at first page: %d traces\n", dumpLines)
	} else {
		fmt.Fprintln(w, "flight-recorder dump at first page: (never paged)")
	}
	return nil
}
