package harness

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"cottage/internal/core"
)

// TestAnatomyReconciliation pins the tentpole acceptance claim: per-phase
// attribution reconciles with end-to-end latency — the named phases cover
// at least 95% of the measured wall time on average across the replay.
func TestAnatomyReconciliation(t *testing.T) {
	s := testSetup(t)
	eng := anatomyEngine(s, 1, len(s.WikiEval))
	r := eng.Run(core.NewCottage(), s.WikiEval)
	rep := eng.Anatomy.Report()
	t.Logf("queries=%d meanCoverage=%.4f minCoverage=%.4f p99=%.2f owner=%s",
		rep.Queries, rep.MeanCoverage, rep.MinCoverage, rep.TotalP99MS, rep.TailOwner)
	if rep.Queries != uint64(len(r.Outcomes)) {
		t.Fatalf("attributed %d of %d queries", rep.Queries, len(r.Outcomes))
	}
	if rep.MeanCoverage < 0.95 {
		t.Errorf("named phases cover %.1f%% of latency on average, want >= 95%%",
			100*rep.MeanCoverage)
	}
	if rep.MinCoverage <= 0 {
		t.Errorf("min coverage %.4f — some query attributed nothing", rep.MinCoverage)
	}
	if rep.TailOwner == "" || rep.TailOwner == "other" {
		t.Errorf("tail owner = %q, want a named phase", rep.TailOwner)
	}
}

// TestAnatomyExperiment runs the full experiment once and checks the
// table shape, the p99-ownership lines, and the burn-rate paging demo:
// a latency target below the median must page both windows, flip the
// alert gauge to 2, and capture a non-empty flight-recorder dump.
func TestAnatomyExperiment(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := Anatomy(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	t.Logf("\n%s", out)
	for _, want := range []string{
		"== cottage (", "== anytime-4ms (", "== cottage+hedge (",
		"admission-queue", "hedge-wait", "p99 owner:",
		"== slo burn-rate demo",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Count(out, "p99 owner:") != 3 {
		t.Errorf("want one owner line per variant:\n%s", out)
	}
	// The paging path demonstrably fired: state page, gauge 2, >= 1 page
	// on the latency objective, and the breach snapshot caught traces.
	latLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "latency ") {
			latLine = line
		}
	}
	if !strings.Contains(latLine, "state=page") || !strings.Contains(latLine, "alert-gauge=2") {
		t.Errorf("latency objective did not page: %q", latLine)
	}
	if strings.Contains(latLine, "pages=0") {
		t.Errorf("latency objective recorded no page: %q", latLine)
	}
	if strings.Contains(out, "never paged") || strings.Contains(out, "dump at first page: 0 traces") {
		t.Errorf("flight-recorder dump missing or empty:\n%s", out)
	}
	if _, ok := ByID("anatomy"); !ok {
		t.Error("anatomy experiment not registered")
	}
}

// TestAnatomyDeterministic pins GOMAXPROCS-independence: the experiment's
// entire output (tables, owner lines, burn-rate demo) is byte-identical
// whether the runtime gets one P or many.
func TestAnatomyDeterministic(t *testing.T) {
	s := testSetup(t)
	run := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		var buf bytes.Buffer
		if err := Anatomy(s, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(1), run(8)
	if a != b {
		t.Fatalf("output differs across GOMAXPROCS:\n--- procs=1 ---\n%s\n--- procs=8 ---\n%s", a, b)
	}
}
