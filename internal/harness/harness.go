// Package harness builds the full experimental setup (corpus, shards,
// cluster, predictors, traces, baselines) and provides one driver per
// table/figure of the paper's evaluation (see DESIGN.md's experiment
// index). Every driver is deterministic given the setup seed and renders
// the same rows/series the paper reports.
package harness

import (
	"fmt"
	"io"

	"cottage/internal/baselines"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/index"
	"cottage/internal/par"
	"cottage/internal/predict"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

// SetupConfig controls the scale of the whole experiment.
type SetupConfig struct {
	CorpusCfg  textgen.Config
	EngineCfg  engine.Config
	HomeShards int
	Spill      float64
	AllocSeed  uint64

	TrainQueries int
	EvalQueries  int
	QPS          float64

	PredictCfg predict.Config
	RankSCfg   baselines.RankSConfig
}

// DefaultSetupConfig is the full-scale configuration behind the numbers
// in EXPERIMENTS.md: the default 48K-document corpus on 16 ISNs, 3000
// training queries and 10K evaluation queries per trace.
func DefaultSetupConfig() SetupConfig {
	return SetupConfig{
		CorpusCfg:    textgen.DefaultConfig(),
		EngineCfg:    engine.DefaultConfig(),
		HomeShards:   3,
		Spill:        0.15,
		AllocSeed:    5,
		TrainQueries: 3000,
		EvalQueries:  10000,
		QPS:          45,
		PredictCfg:   predict.DefaultConfig(10),
		RankSCfg:     baselines.DefaultRankSConfig(),
	}
}

// QuickSetupConfig is a reduced configuration for tests and examples:
// same structure, ~10x faster.
func QuickSetupConfig() SetupConfig {
	cfg := DefaultSetupConfig()
	cfg.CorpusCfg.NumDocs = 9000
	cfg.CorpusCfg.VocabSize = 9000
	cfg.CorpusCfg.NumTopics = 32
	cfg.CorpusCfg.TopicTermCount = 200
	cfg.TrainQueries = 900
	cfg.EvalQueries = 1200
	cfg.PredictCfg.QualitySteps = 400
	cfg.PredictCfg.LatencySteps = 160
	return cfg
}

// Setup is everything the experiments need, built once and shared.
type Setup struct {
	Config SetupConfig
	Corpus *textgen.Corpus
	Alloc  [][]int
	Engine *engine.Engine

	TrainQueries  []trace.Query
	WikiQueries   []trace.Query
	LuceneQueries []trace.Query

	// Evaluated traces (policy-independent pass, shared across policies).
	WikiEval   []*engine.Evaluated
	LuceneEval []*engine.Evaluated

	// TrainData is kept for predictor-accuracy experiments (Figs. 7/8).
	TrainData *predict.Dataset

	RankS *baselines.RankS

	// cached comparison runs (see experiments.go).
	cmp *Comparison
	abl *Comparison
}

// Build constructs the setup: corpus, shards, traces, trained predictors,
// and the evaluated query caches.
func Build(cfg SetupConfig) (*Setup, error) {
	s := &Setup{Config: cfg}
	s.Corpus = textgen.Generate(cfg.CorpusCfg)
	s.Alloc = s.Corpus.AllocateTopical(cfg.EngineCfg.NumShards, cfg.HomeShards, cfg.Spill, cfg.AllocSeed)

	// Shards build independently; fan out across CPUs (bounded — a
	// goroutine per shard on a large fleet just thrashes the scheduler).
	shards := make([]*index.Shard, len(s.Alloc))
	par.For(len(s.Alloc), func(si int) {
		b := index.NewBuilder(si, cfg.EngineCfg.BM25, cfg.EngineCfg.K)
		for _, id := range s.Alloc[si] {
			d := &s.Corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[s.Corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
		}
		shards[si] = b.Finalize()
	})
	s.Engine = engine.New(shards, cfg.EngineCfg)

	// The three traces are independently seeded reads of the corpus;
	// generate them concurrently.
	traceCfgs := []trace.Config{
		{Kind: trace.Wikipedia, Seed: 101, NumQueries: cfg.TrainQueries, QPS: cfg.QPS},
		{Kind: trace.Wikipedia, Seed: 202, NumQueries: cfg.EvalQueries, QPS: cfg.QPS},
		{Kind: trace.Lucene, Seed: 303, NumQueries: cfg.EvalQueries, QPS: cfg.QPS},
	}
	traces := make([][]trace.Query, len(traceCfgs))
	par.For(len(traceCfgs), func(i int) {
		traces[i] = trace.Generate(s.Corpus, traceCfgs[i])
	})
	s.TrainQueries, s.WikiQueries, s.LuceneQueries = traces[0], traces[1], traces[2]

	ds, err := s.Engine.TrainFleet(s.TrainQueries, cfg.PredictCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	s.TrainData = ds

	s.WikiEval = s.Engine.EvaluateAll(s.WikiQueries)
	s.LuceneEval = s.Engine.EvaluateAll(s.LuceneQueries)

	s.RankS = baselines.NewRankS(s.Corpus, s.Alloc, cfg.EngineCfg.BM25, cfg.RankSCfg)
	return s, nil
}

// Policies returns the five headline policies of Figs. 10–14 in paper
// order.
func (s *Setup) Policies() []engine.Policy {
	return []engine.Policy{
		baselines.Exhaustive{},
		baselines.NewAggregation(),
		s.RankS,
		baselines.NewTaily(),
		core.NewCottage(),
	}
}

// AblationPolicies returns the Fig. 15 set.
func (s *Setup) AblationPolicies() []engine.Policy {
	return []engine.Policy{
		baselines.Exhaustive{},
		baselines.NewTaily(),
		core.NewCottageNoML(),
		core.NewCottageISN(),
		core.NewCottage(),
	}
}

// TraceName selects an evaluated trace by name ("wikipedia"/"lucene").
func (s *Setup) TraceEval(kind trace.Kind) []*engine.Evaluated {
	if kind == trace.Lucene {
		return s.LuceneEval
	}
	return s.WikiEval
}

// Comparison is the result of replaying both traces under a policy set.
type Comparison struct {
	Traces   []trace.Kind
	Policies []string
	// Summaries[t][p] aggregates policy p on trace t.
	Summaries [][]engine.Summary
	// Results[t][p] keeps the raw outcomes for scatter/timeline figures.
	Results [][]engine.RunResult
}

// RunComparison replays both traces under each policy.
func (s *Setup) RunComparison(policies []engine.Policy) *Comparison {
	c := &Comparison{Traces: []trace.Kind{trace.Wikipedia, trace.Lucene}}
	for _, p := range policies {
		c.Policies = append(c.Policies, p.Name())
	}
	for _, kind := range c.Traces {
		evs := s.TraceEval(kind)
		var sums []engine.Summary
		var results []engine.RunResult
		for _, p := range policies {
			r := s.Engine.Run(freshPolicy(s, p), evs)
			sums = append(sums, engine.Summarize(r))
			results = append(results, r)
		}
		c.Summaries = append(c.Summaries, sums)
		c.Results = append(c.Results, results)
	}
	return c
}

// freshPolicy re-instantiates stateful policies so each trace replay
// starts clean.
func freshPolicy(s *Setup, p engine.Policy) engine.Policy {
	switch p.(type) {
	case *baselines.Aggregation:
		return baselines.NewAggregation()
	default:
		return p
	}
}

// RenderComparison prints a per-trace summary table.
func RenderComparison(w io.Writer, c *Comparison) {
	for ti, kind := range c.Traces {
		fmt.Fprintf(w, "\n== %s trace ==\n", kind)
		fmt.Fprintf(w, "%-14s %10s %17s %10s %8s %8s %8s %10s\n",
			"policy", "avg ms", "95%-CI", "p95 ms", "P@10", "ISNs", "power W", "C_RES")
		for pi := range c.Policies {
			sm := c.Summaries[ti][pi]
			fmt.Fprintf(w, "%-14s %10.2f [%6.2f, %6.2f] %10.2f %8.3f %8.2f %8.2f %10.0f\n",
				sm.Policy, sm.MeanLatency, sm.LatencyCILo, sm.LatencyCIHi, sm.P95Latency,
				sm.MeanPAtK, sm.MeanISNs, sm.AvgPowerW, sm.MeanCRES)
		}
	}
}

// ExportCSVFromSetup runs (or reuses) the headline comparison and exports
// its raw per-query outcomes as CSVs (see ExportCSV).
func (s *Setup) exportComparisonCSV(dir string) error {
	return ExportCSV(dir, s.comparison())
}

// ExportCSVFromSetup is the cottage-bench entry point for -csv.
func ExportCSVFromSetup(s *Setup, dir string) error {
	return s.exportComparisonCSV(dir)
}
