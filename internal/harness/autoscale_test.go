package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAutoscaleSweepCurves pins the sweep's acceptance claims on the
// flash-crowd trace: provisioning monotonicity across the fixed-R
// ladder, and the closed-loop controller holding the p99 SLO on fewer
// machine-hours than the smallest fixed R that also holds it.
func TestAutoscaleSweepCurves(t *testing.T) {
	s := testSetup(t)
	_, flash := autoscaleTraces(s)
	rows := runAutoscaleConfigs(s, flash)
	if len(rows) != autoscaleMaxR+1 {
		t.Fatalf("got %d rows, want %d", len(rows), autoscaleMaxR+1)
	}
	for _, r := range rows {
		t.Logf("%-12s p99=%.2f miss=%.2f%% machine-s=%.1f powerW=%.2f rows=%.2f replans=%d",
			r.label, r.p99MS, 100*r.missFrac, r.machineMS/1000, r.powerW, r.meanRows, r.scaleEvents)
	}
	fixed, closed := rows[:autoscaleMaxR], rows[autoscaleMaxR]

	// Monotone provisioning: more replicas never raise the flash-crowd
	// p99 and always bill more machine time.
	for i := 1; i < len(fixed); i++ {
		if fixed[i].p99MS > fixed[i-1].p99MS {
			t.Errorf("fixed-R p99 not monotone: R%d %.2f > R%d %.2f",
				i+1, fixed[i].p99MS, i, fixed[i-1].p99MS)
		}
		if fixed[i].machineMS <= fixed[i-1].machineMS {
			t.Errorf("fixed-R machine time not increasing: R%d %.0f <= R%d %.0f",
				i+1, fixed[i].machineMS, i, fixed[i-1].machineMS)
		}
	}

	// The regime is real: one row cannot absorb the bursts.
	if fixed[0].p99MS <= AutoscaleSLOp99MS {
		t.Fatalf("fixed-R1 holds the SLO (p99 %.2f) — the flash trace is too tame", fixed[0].p99MS)
	}
	// The smallest adequate fixed R is the bar the controller must beat.
	bar := -1
	for i, r := range fixed {
		if r.p99MS <= AutoscaleSLOp99MS {
			bar = i
			break
		}
	}
	if bar < 0 {
		t.Fatalf("no fixed R meets the SLO — ladder too short for the trace")
	}

	// Acceptance: the closed loop holds the SLO on fewer machine-hours
	// than that fixed fleet, and it actually scaled to do it.
	if closed.p99MS > AutoscaleSLOp99MS {
		t.Errorf("closed-loop p99 %.2f misses the %.0f ms SLO", closed.p99MS, float64(AutoscaleSLOp99MS))
	}
	if closed.machineMS >= fixed[bar].machineMS {
		t.Errorf("closed-loop machine time %.0f not below fixed-R%d %.0f",
			closed.machineMS, bar+1, fixed[bar].machineMS)
	}
	if closed.scaleEvents == 0 {
		t.Error("closed-loop run recorded no scale events")
	}
}

// TestHedgingSweepCurves pins the hedging acceptance claim: both modes
// rescue the straggler-bound tail, and predictive hedging does it at a
// measurably lower hedge rate and duplicate-work bill than the fixed
// timer.
func TestHedgingSweepCurves(t *testing.T) {
	s := testSetup(t)
	rows := runHedgingRows(s)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-16s p99=%.2f hedgeRate=%.4f winFrac=%.3f dupFrac=%.4f",
			r.label, r.p99MS, r.hedgeRate, r.winFrac, r.dupFrac)
	}
	plain, fixed, pred := rows[0], rows[1], rows[2]

	if plain.hedgeRate != 0 || plain.dupFrac != 0 {
		t.Fatalf("unhedged run recorded hedging: %+v", plain)
	}
	if fixed.p99MS >= plain.p99MS {
		t.Errorf("fixed-delay p99 %.2f not below unhedged %.2f", fixed.p99MS, plain.p99MS)
	}
	if pred.p99MS >= plain.p99MS {
		t.Errorf("predictive p99 %.2f not below unhedged %.2f", pred.p99MS, plain.p99MS)
	}
	// "Matches" the fixed-delay tail: no worse than 5% over it (the
	// predictive hedge fires at dispatch, so it is usually ahead).
	if pred.p99MS > 1.05*fixed.p99MS {
		t.Errorf("predictive p99 %.2f does not match fixed-delay %.2f", pred.p99MS, fixed.p99MS)
	}
	if fixed.hedgeRate == 0 || pred.hedgeRate == 0 {
		t.Fatalf("a hedging mode never hedged: fixed=%.4f predictive=%.4f",
			fixed.hedgeRate, pred.hedgeRate)
	}
	// Measurably lower: at most 70% of the fixed timer's hedge rate.
	if pred.hedgeRate > 0.7*fixed.hedgeRate {
		t.Errorf("predictive hedge rate %.4f not measurably below fixed %.4f",
			pred.hedgeRate, fixed.hedgeRate)
	}
	if pred.dupFrac >= fixed.dupFrac {
		t.Errorf("predictive duplicate work %.4f not below fixed %.4f",
			pred.dupFrac, fixed.dupFrac)
	}
}

// TestAutoscaleSweepRenders smoke-tests both experiments' table output
// and their registration.
func TestAutoscaleSweepRenders(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := AutoscaleSweep(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"diurnal", "flash", "closed-loop", "fixed-R1", "machine-s"} {
		if !strings.Contains(out, want) {
			t.Errorf("autoscale table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := HedgingSweep(s, &buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"no-hedge", "fixed-6ms", "predictive-40ms", "hedge rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("hedging table missing %q:\n%s", want, out)
		}
	}
	if _, ok := ByID("autoscale"); !ok {
		t.Error("autoscale experiment not registered")
	}
	if _, ok := ByID("hedging"); !ok {
		t.Error("hedging experiment not registered")
	}
}
