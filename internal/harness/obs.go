package harness

import (
	"fmt"
	"io"

	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/obs"
)

// PredictorAccuracy replays the Wikipedia trace under Cottage with an
// observer attached and reports the rolling predictor-accuracy tracker's
// view: per-ISN mean absolute latency-prediction error (percent of the
// simulator's actual queue + service time) and the quality predictor's
// top-K hit rate. This is the same tracker the live aggregator serves on
// /debug/accuracy and /metrics, fed here by the simulated twin — so the
// numbers double as a check that the instrumentation path works end to
// end (EXPERIMENTS.md records a run).
func PredictorAccuracy(s *Setup, w io.Writer) error {
	// Reuse an observer someone already attached (cottage-bench
	// -debug-addr serves it over HTTP); otherwise attach a private one
	// for the duration of the experiment.
	o := s.Engine.Obs
	if o == nil {
		o = obs.NewObserver(len(s.Engine.Shards), 64)
		s.Engine.Obs = o
		defer func() { s.Engine.Obs = nil }()
	}

	sm := engine.Summarize(s.Engine.Run(core.NewCottage(), s.WikiEval))
	fmt.Fprintf(w, "Rolling predictor accuracy under cottage (%d queries, wikipedia trace)\n", sm.Queries)
	fmt.Fprintf(w, "%-5s %12s %14s %14s %12s %10s\n",
		"ISN", "lat samples", "mean |err| %", "ewma |err| %", "qual samples", "hit rate")
	var meanErr, meanHit float64
	n := 0
	for _, a := range o.Acc.Snapshot() {
		fmt.Fprintf(w, "%-5d %12d %14.1f %14.1f %12d %10.3f\n",
			a.ISN, a.LatSamples, a.MeanAbsErrPct, a.EWMAAbsErrPct, a.QualSamples, a.QualHitRate)
		if a.LatSamples > 0 {
			meanErr += a.MeanAbsErrPct
			meanHit += a.QualHitRate
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(w, "fleet mean: |latency err| %.1f%%, quality hit rate %.3f\n",
			meanErr/float64(n), meanHit/float64(n))
	}
	fmt.Fprintf(w, "traces recorded: %d (ring holds the most recent %d)\n",
		o.Traces.Total(), len(o.Traces.Recent(0)))
	return nil
}
