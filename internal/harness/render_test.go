package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("Bar(5,10,10) = %q", Bar(5, 10, 10))
	}
	if Bar(10, 10, 10) != "##########" {
		t.Error("full bar wrong")
	}
	if Bar(100, 10, 10) != "##########" {
		t.Error("overflow should clamp")
	}
	if Bar(0.0001, 10, 10) != "#" {
		t.Error("tiny positive value should be visible")
	}
	if Bar(0, 10, 10) != "" || Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate inputs should be empty")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline length %d", utf8.RuneCountInString(s))
	}
	// First rune must be the lowest level, last the highest.
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	// Constant series renders at one level without panicking.
	flat := Sparkline([]float64{3, 3, 3})
	if utf8.RuneCountInString(flat) != 3 {
		t.Error("flat sparkline length wrong")
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestRenderBars(t *testing.T) {
	var buf bytes.Buffer
	RenderBars(&buf, "title", "W", []string{"a", "bb"}, []float64{1, 2}, 10)
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "bb") {
		t.Errorf("missing content: %q", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched labels/values should panic")
			}
		}()
		RenderBars(&buf, "t", "", []string{"a"}, []float64{1, 2}, 10)
	}()
}

func TestExportCSV(t *testing.T) {
	s := testSetup(t)
	dir := t.TempDir()
	if err := ExportCSVFromSetup(s, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 2 traces x 5 policies.
	if len(entries) != 10 {
		t.Fatalf("got %d CSV files", len(entries))
	}
	data, err := os.ReadFile(dir + "/wikipedia-cottage.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "query_id,arrival_ms,latency_ms,p_at_k,active_isns,docs_searched,dropped_isns,budget_ms" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if len(lines) != s.Config.EvalQueries+1 {
		t.Fatalf("csv has %d rows, want %d", len(lines)-1, s.Config.EvalQueries)
	}
}
