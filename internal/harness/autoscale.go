package harness

import (
	"fmt"
	"io"
	"math"

	"cottage/internal/autoscale"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/stats"
	"cottage/internal/trace"
)

// Autoscale experiment constants. The SLO is deliberately loose against
// the quick-scale exhaustive latency distribution (most services are a
// few ms) and tight against a flash crowd queueing on an underprovisioned
// row — the regime where capacity, not service time, sets the tail.
const (
	// autoscaleMaxR bounds both the fixed-R ladder and the controller.
	autoscaleMaxR = 3
	// autoscaleQPS is the base arrival rate; the profiles modulate it.
	// At ~2.6 ms mean leg service it puts a single replica row around
	// 45% utilization — comfortable at base load, hopeless in a burst.
	autoscaleQPS = 170
	// autoscaleQueries bounds each non-stationary trace.
	autoscaleQueries = 2200
)

// Controller knobs, overridable from the cottage-bench command line
// (-slo-p99-ms, -replan-interval-ms, -scale-cooldown-ms). Variables
// rather than constants so the acceptance-gate defaults and the CLI
// share one source of truth.
var (
	// AutoscaleSLOp99MS is the p99 latency target the planner provisions
	// for and the sweep's miss column is measured against.
	AutoscaleSLOp99MS float64 = 40
	// AutoscaleReplanIntervalMS is the control cadence in virtual ms.
	AutoscaleReplanIntervalMS float64 = 100
	// AutoscaleScaleCooldownMS is the scale-down cooldown; 0 defers to
	// the controller's default (3x the replan interval).
	AutoscaleScaleCooldownMS float64 = 0
)

// autoscaleTraces generates the two non-stationary traces the sweep
// replays: a compressed diurnal "day" and a flash-crowd trace whose
// bursts multiply the base rate faster than any cadence-long warning.
func autoscaleTraces(s *Setup) (diurnal, flash []trace.Query) {
	diurnal = trace.Generate(s.Corpus, trace.Config{
		Kind: trace.Wikipedia, Seed: 404, NumQueries: autoscaleQueries, QPS: autoscaleQPS,
		Arrivals: trace.ArrivalConfig{
			Profile: trace.Diurnal, DiurnalPeriodMS: 10_000, DiurnalAmp: 0.6,
		},
	})
	flash = trace.Generate(s.Corpus, trace.Config{
		Kind: trace.Wikipedia, Seed: 505, NumQueries: autoscaleQueries, QPS: autoscaleQPS,
		Arrivals: trace.ArrivalConfig{
			Profile: trace.Flash, FlashEveryMS: 4_000, FlashDurationMS: 1_200, FlashFactor: 2.5,
		},
	})
	return diurnal, flash
}

// dynamicEngine builds a replicated engine over the setup's shards with
// machine-time power accounting on. The trained fleet transfers as-is
// (replicas serve the same shard at the same speed).
func dynamicEngine(s *Setup, r int) *engine.Engine {
	cfg := s.Config.EngineCfg
	cfg.Cluster.Replicas = r
	cfg.Cluster.DynamicMachines = true
	eng := engine.New(s.Engine.Shards, cfg)
	eng.Fleet = s.Engine.Fleet
	return eng
}

// autoscaleController is the closed-loop configuration under test:
// provision for the sweep's SLO, replan every 100 ms of virtual time
// (a flash crowd builds queue at a fraction of a ms per ms, so the
// cadence bounds the backlog any burst can accumulate before capacity
// arrives), and boost on standing queues half the SLO deep.
func autoscaleController(shards int) *autoscale.Controller {
	return autoscale.New(autoscale.Config{
		Planner:             autoscale.PlannerConfig{SLOp99MS: AutoscaleSLOp99MS, MaxReplicas: autoscaleMaxR},
		ReplanIntervalMS:    AutoscaleReplanIntervalMS,
		ScaleDownCooldownMS: AutoscaleScaleCooldownMS,
		BoostQueueMS:        AutoscaleSLOp99MS / 2,
	}, shards, 1)
}

// autoscaleRow is one sweep configuration's outcome.
type autoscaleRow struct {
	label       string
	p99MS       float64
	missFrac    float64 // share of queries over the SLO
	machineMS   float64 // integrated node·ms billed
	powerW      float64
	meanRows    float64 // machine time normalized to always-on rows
	scaleEvents int
}

// latencyP99 is the 99th percentile of a run's end-to-end latencies.
func latencyP99(r engine.RunResult) float64 {
	lats := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		lats[i] = o.LatencyMS
	}
	return stats.Percentile(lats, 99)
}

// sloMissFrac is the share of queries whose latency exceeded the SLO.
func sloMissFrac(r engine.RunResult, sloMS float64) float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	miss := 0
	for _, o := range r.Outcomes {
		if o.LatencyMS > sloMS {
			miss++
		}
	}
	return float64(miss) / float64(len(r.Outcomes))
}

// runAutoscaleConfigs replays one trace under the fixed-R ladder and the
// closed-loop controller, all on dynamic machine accounting so the
// machine-time column is comparable.
func runAutoscaleConfigs(s *Setup, qs []trace.Query) []autoscaleRow {
	evs := s.Engine.EvaluateAll(qs)
	pol := FixedBudget{BudgetMS: math.Inf(1)}
	rows := make([]autoscaleRow, 0, autoscaleMaxR+1)
	row := func(label string, eng *engine.Engine) autoscaleRow {
		r := eng.Run(pol, evs)
		sm := engine.Summarize(r)
		shards := float64(len(eng.Shards))
		return autoscaleRow{
			label:       label,
			p99MS:       latencyP99(r),
			missFrac:    sloMissFrac(r, AutoscaleSLOp99MS),
			machineMS:   r.MachineMS,
			powerW:      sm.AvgPowerW,
			meanRows:    r.MachineMS / (r.DurationMS * shards),
			scaleEvents: len(r.ScaleLog),
		}
	}
	for r := 1; r <= autoscaleMaxR; r++ {
		rows = append(rows, row(fmt.Sprintf("fixed-R%d", r), dynamicEngine(s, r)))
	}
	eng := dynamicEngine(s, autoscaleMaxR)
	eng.Scaler = autoscaleController(len(eng.Shards))
	eng.ScaleStartR = 1
	rows = append(rows, row("closed-loop", eng))
	return rows
}

// AutoscaleSweep contrasts fixed provisioning (R = 1..3, always on)
// with the closed-loop capacity planner under diurnal and flash-crowd
// traffic. Fixed fleets pay for their peak all day; the planner follows
// the observed arrival rate and service EWMA, so it meets the same p99
// SLO on flash crowds at a fraction of the machine-hours — the
// coordinated latency/power trade the paper makes per query, lifted to
// fleet capacity.
func AutoscaleSweep(s *Setup, w io.Writer) error {
	diurnal, flash := autoscaleTraces(s)
	for _, tr := range []struct {
		name string
		qs   []trace.Query
	}{{"diurnal", diurnal}, {"flash", flash}} {
		fmt.Fprintf(w, "== %s trace (p99 SLO %.0f ms) ==\n", tr.name, AutoscaleSLOp99MS)
		fmt.Fprintf(w, "%-12s %9s %8s %12s %9s %9s %8s\n",
			"config", "p99 ms", "miss%", "machine-s", "power W", "avg rows", "replans")
		for _, row := range runAutoscaleConfigs(s, tr.qs) {
			fmt.Fprintf(w, "%-12s %9.2f %8.2f %12.1f %9.2f %9.2f %8d\n",
				row.label, row.p99MS, 100*row.missFrac, row.machineMS/1000,
				row.powerW, row.meanRows, row.scaleEvents)
		}
	}
	return nil
}

// Hedging experiment constants. The straggler's injected delay is far
// above any honest service time; the fixed timer is low enough to
// rescue it, and the predictive threshold sits between the heaviest
// honest leg and the straggler's observed defect.
const (
	hedgeStragglerMS  = 80
	hedgeFixedDelayMS = 6
	hedgeThresholdMS  = 40
	hedgeTraceQueries = 2000
	hedgeTraceQPS     = 30
)

// predictiveAll is the hedging experiment's policy: every shard
// participates with no budget (so hedging, not selection, is the only
// variable), but Cottage's per-ISN predictions still ride along in
// Decision.PredCycles to arm the predictive hedger.
type predictiveAll struct{ cot *core.Cottage }

// Name implements engine.Policy.
func (predictiveAll) Name() string { return "predictive-all" }

// Decide implements engine.Policy.
func (p predictiveAll) Decide(e *engine.Engine, q trace.Query, nowMS float64) engine.Decision {
	d := engine.Decision{
		Participate:    make([]bool, len(e.Shards)),
		PredCycles:     make([]float64, len(e.Shards)),
		BudgetMS:       math.Inf(1),
		UsedPredictors: true,
	}
	for i := range d.Participate {
		d.Participate[i] = true
	}
	for _, r := range p.cot.Reports(e, q, nowMS) {
		d.PredCycles[r.ISN] = r.PredCycles
	}
	return d
}

// Observe implements engine.Policy.
func (predictiveAll) Observe(float64) {}

// hedgingRow is one hedging mode's outcome.
type hedgingRow struct {
	label     string
	p99MS     float64
	hedgeRate float64 // hedged legs per participating leg
	winFrac   float64 // hedges whose duplicate won
	dupFrac   float64 // duplicate busy time / total busy time
}

// runHedgingRows replays a stationary trace against a fleet with one
// limping replica (row 0 of shard 0) under three hedging modes: none,
// the classic fixed-delay timer, and predictive (hedge at dispatch only
// when the predicted leg latency — Eq. 2 plus the replica's observed
// defect — crosses the threshold).
func runHedgingRows(s *Setup) []hedgingRow {
	qs := trace.Generate(s.Corpus, trace.Config{
		Kind: trace.Wikipedia, Seed: 606, NumQueries: hedgeTraceQueries, QPS: hedgeTraceQPS,
	})
	eng := dynamicEngine(s, 2)
	eng.Cluster.SetExtraDelayMS(eng.Cluster.Topo().Node(0, 0), hedgeStragglerMS)
	evs := s.Engine.EvaluateAll(qs)
	pol := predictiveAll{cot: core.NewCottage()}

	rows := make([]hedgingRow, 0, 3)
	row := func(label string) hedgingRow {
		r := eng.Run(pol, evs)
		sm := engine.Summarize(r)
		return hedgingRow{
			label:     label,
			p99MS:     latencyP99(r),
			hedgeRate: sm.HedgeLegRate,
			winFrac:   sm.HedgeWinFrac,
			dupFrac:   sm.DuplicateWorkFrac,
		}
	}
	rows = append(rows, row("no-hedge"))
	eng.HedgeDelayMS = hedgeFixedDelayMS
	rows = append(rows, row(fmt.Sprintf("fixed-%dms", hedgeFixedDelayMS)))
	eng.HedgeDelayMS = 0
	eng.HedgePredictive = true
	eng.HedgeThresholdMS = hedgeThresholdMS
	rows = append(rows, row(fmt.Sprintf("predictive-%dms", hedgeThresholdMS)))
	eng.HedgePredictive = false
	return rows
}

// HedgingSweep contrasts fixed-delay and predictive hedging against an
// injected straggler replica. Both rescue the straggler-bound tail; the
// difference is the bill: the fixed timer duplicates every leg that is
// merely slow (heavy honest queries included), while the predictive
// hedger duplicates only legs whose prediction — queue backlog plus the
// serving replica's observed latency defect — flags a straggler.
func HedgingSweep(s *Setup, w io.Writer) error {
	fmt.Fprintf(w, "%-16s %9s %11s %9s %9s\n",
		"mode", "p99 ms", "hedge rate", "win frac", "dup work")
	for _, row := range runHedgingRows(s) {
		fmt.Fprintf(w, "%-16s %9.2f %11.4f %9.3f %9.4f\n",
			row.label, row.p99MS, row.hedgeRate, row.winFrac, row.dupFrac)
	}
	return nil
}
