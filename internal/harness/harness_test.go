package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"cottage/internal/baselines"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/qcache"
	"cottage/internal/trace"
)

var (
	setupOnce sync.Once
	setup     *Setup
	setupErr  error
)

// testSetup builds the quick-config setup once per test binary.
func testSetup(tb testing.TB) *Setup {
	tb.Helper()
	if testing.Short() {
		tb.Skip("harness setup is expensive")
	}
	setupOnce.Do(func() {
		setup, setupErr = Build(QuickSetupConfig())
	})
	if setupErr != nil {
		tb.Fatal(setupErr)
	}
	return setup
}

func summaries(c *Comparison, traceIdx int) map[string]engine.Summary {
	m := make(map[string]engine.Summary)
	for pi, name := range c.Policies {
		m[name] = c.Summaries[traceIdx][pi]
	}
	return m
}

func TestSetupShape(t *testing.T) {
	s := testSetup(t)
	if len(s.Engine.Shards) != s.Config.EngineCfg.NumShards {
		t.Fatalf("shard count %d", len(s.Engine.Shards))
	}
	if len(s.WikiEval) != s.Config.EvalQueries || len(s.LuceneEval) != s.Config.EvalQueries {
		t.Fatal("evaluated trace sizes wrong")
	}
	if s.Engine.Fleet == nil || len(s.Engine.Fleet.Predictors) != len(s.Engine.Shards) {
		t.Fatal("fleet not trained per shard")
	}
	total := 0
	for _, sh := range s.Engine.Shards {
		total += sh.NumDocs
	}
	if total != s.Config.CorpusCfg.NumDocs {
		t.Fatalf("shards hold %d of %d docs", total, s.Config.CorpusCfg.NumDocs)
	}
}

// TestPaperOrderings asserts the qualitative shape of the paper's headline
// results — who wins on which metric — on the Wikipedia trace.
func TestPaperOrderings(t *testing.T) {
	s := testSetup(t)
	m := summaries(s.comparison(), 0)
	exh, agg, rankS, taily, cottage :=
		m["exhaustive"], m["aggregation"], m["rank-s"], m["taily"], m["cottage"]

	// Exhaustive search is perfect-quality, all ISNs, worst-or-near-worst
	// latency (Fig. 10/11).
	if exh.MeanPAtK != 1.0 {
		t.Errorf("exhaustive P@10 = %v, want 1", exh.MeanPAtK)
	}
	if exh.MeanISNs != float64(len(s.Engine.Shards)) {
		t.Errorf("exhaustive ISNs = %v", exh.MeanISNs)
	}

	// Fig. 10: Cottage has the lowest average and tail latency, with a
	// substantial factor over exhaustive (paper: 2.41x avg, 2.6x p95).
	for name, sm := range m {
		if name == "cottage" {
			continue
		}
		if cottage.MeanLatency >= sm.MeanLatency {
			t.Errorf("cottage latency %v not below %s's %v", cottage.MeanLatency, name, sm.MeanLatency)
		}
	}
	if f := exh.MeanLatency / cottage.MeanLatency; f < 1.5 {
		t.Errorf("cottage avg latency factor vs exhaustive = %v, want >= 1.5", f)
	}
	if f := exh.P95Latency / cottage.P95Latency; f < 1.3 {
		t.Errorf("cottage p95 latency factor = %v, want >= 1.3", f)
	}

	// Fig. 11: quality ordering cottage > taily > rank-s; cottage near the
	// paper's 0.947.
	if cottage.MeanPAtK < 0.9 {
		t.Errorf("cottage P@10 = %v, want >= 0.9", cottage.MeanPAtK)
	}
	if cottage.MeanPAtK <= taily.MeanPAtK {
		t.Errorf("cottage quality %v should beat taily %v", cottage.MeanPAtK, taily.MeanPAtK)
	}
	if taily.MeanPAtK <= rankS.MeanPAtK {
		t.Errorf("taily quality %v should beat rank-s %v", taily.MeanPAtK, rankS.MeanPAtK)
	}

	// Fig. 13: every selective policy uses fewer ISNs than exhaustive and
	// aggregation (which always use all 16).
	if agg.MeanISNs != exh.MeanISNs {
		t.Errorf("aggregation should use all ISNs")
	}
	for _, sm := range []engine.Summary{rankS, taily, cottage} {
		if sm.MeanISNs >= exh.MeanISNs {
			t.Errorf("%s ISNs %v not below exhaustive", sm.Policy, sm.MeanISNs)
		}
	}

	// C_RES: cottage searches far fewer documents than exhaustive
	// (paper: 2.67x fewer).
	if f := exh.MeanCRES / cottage.MeanCRES; f < 2.0 {
		t.Errorf("cottage C_RES factor = %v, want >= 2", f)
	}

	// Fig. 14: every selective policy beats exhaustive on power, and
	// cottage saves a large share of the above-idle power.
	idle := s.Engine.Cluster.Meter.Model().IdleWatts
	for _, sm := range []engine.Summary{rankS, taily, cottage} {
		if sm.AvgPowerW >= exh.AvgPowerW {
			t.Errorf("%s power %v not below exhaustive %v", sm.Policy, sm.AvgPowerW, exh.AvgPowerW)
		}
	}
	if save := (exh.AvgPowerW - cottage.AvgPowerW) / (exh.AvgPowerW - idle); save < 0.2 {
		t.Errorf("cottage above-idle power saving = %v, want >= 0.2", save)
	}
}

func TestPaperOrderingsLucene(t *testing.T) {
	s := testSetup(t)
	m := summaries(s.comparison(), 1)
	cottage, taily, rankS, exh := m["cottage"], m["taily"], m["rank-s"], m["exhaustive"]
	if cottage.MeanPAtK <= taily.MeanPAtK || taily.MeanPAtK <= rankS.MeanPAtK {
		t.Errorf("lucene quality ordering broken: cottage %v taily %v rank-s %v",
			cottage.MeanPAtK, taily.MeanPAtK, rankS.MeanPAtK)
	}
	if exh.MeanLatency/cottage.MeanLatency < 1.2 {
		t.Errorf("lucene latency factor too small: %v", exh.MeanLatency/cottage.MeanLatency)
	}
}

// TestAblationOrderings asserts Fig. 15's directions.
func TestAblationOrderings(t *testing.T) {
	s := testSetup(t)
	m := summaries(s.ablation(), 0)
	cottage, isn, noml := m["cottage"], m["cottage-isn"], m["cottage-noml"]

	// Coordination: Cottage-ISN (no budget, no coordination) has higher
	// latency than full Cottage (paper: 1.9x).
	if isn.MeanLatency <= cottage.MeanLatency {
		t.Errorf("cottage-isn latency %v should exceed cottage %v", isn.MeanLatency, cottage.MeanLatency)
	}
	// ML quality prediction: Cottage-withoutML loses quality vs Cottage
	// (paper: ~0.85 vs 0.947).
	if noml.MeanPAtK >= cottage.MeanPAtK {
		t.Errorf("cottage-noml quality %v should be below cottage %v", noml.MeanPAtK, cottage.MeanPAtK)
	}
	// Both Cottage variants with ML quality prediction keep high quality.
	if isn.MeanPAtK < 0.9 {
		t.Errorf("cottage-isn quality = %v", isn.MeanPAtK)
	}
}

// TestOracleReachesPaperOperatingPoint verifies the framework analysis:
// with perfect quality predictions, Cottage's active-ISN count drops
// toward the paper's 6.81 and power falls below Taily's.
func TestOracleReachesPaperOperatingPoint(t *testing.T) {
	s := testSetup(t)
	// Use a fresh import cycle: oracle needs core.
	oracleExp, ok := ByID("ablations")
	if !ok {
		t.Fatal("ablations experiment missing")
	}
	var buf bytes.Buffer
	if err := oracleExp.Run(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "oracle quality") {
		t.Fatalf("ablation output missing oracle row:\n%s", out)
	}
	t.Log("\n" + out)
}

// TestExperimentsRun executes every experiment driver and checks it
// produces non-trivial output without error.
func TestExperimentsRun(t *testing.T) {
	s := testSetup(t)
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(s, &buf); err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s produced almost no output: %q", exp.ID, buf.String())
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig10"); !ok {
		t.Error("fig10 should exist")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("nonsense should not exist")
	}
}

func TestRenderComparison(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	RenderComparison(&buf, s.comparison())
	out := buf.String()
	for _, want := range []string{"wikipedia", "lucene", "cottage", "exhaustive", "P@10"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTraceEval(t *testing.T) {
	s := testSetup(t)
	if len(s.TraceEval(trace.Wikipedia)) != len(s.WikiEval) {
		t.Error("wikipedia eval wrong")
	}
	if len(s.TraceEval(trace.Lucene)) != len(s.LuceneEval) {
		t.Error("lucene eval wrong")
	}
}

// TestAggregationBudgetAdapts checks the epoch policy actually converges
// to a finite budget and cuts tails (Fig. 3b's behaviour).
func TestAggregationBudgetAdapts(t *testing.T) {
	s := testSetup(t)
	m := summaries(s.comparison(), 0)
	agg, exh := m["aggregation"], m["exhaustive"]
	if agg.P95Latency >= exh.P95Latency {
		t.Errorf("aggregation p95 %v should cut the tail below exhaustive %v",
			agg.P95Latency, exh.P95Latency)
	}
	if agg.MeanPAtK >= 1.0 {
		t.Error("tail cutting must cost some quality")
	}
	if agg.MeanPAtK < 0.7 {
		t.Errorf("aggregation quality collapsed: %v", agg.MeanPAtK)
	}
}

// TestExtrasRun executes the extension experiments. The two that retrain
// predictor fleets are the slowest tests in the repository but they guard
// real behaviour (speed-factor plumbing, allocation sensitivity).
func TestExtrasRun(t *testing.T) {
	s := testSetup(t)
	for _, exp := range Extras() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(s, &buf); err != nil {
				t.Fatalf("%s failed: %v", exp.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s produced almost no output", exp.ID)
			}
		})
	}
}

// TestHeterogeneityOrdering asserts the straggler study's claim: with a
// 2.5x slow ISN, Cottage's latency advantage over exhaustive search grows
// (the slow node is boosted into the budget or cut), while quality holds.
func TestHeterogeneityOrdering(t *testing.T) {
	s := testSetup(t)
	cfg := s.Config.EngineCfg
	cfg.Cluster.SpeedFactors = make([]float64, cfg.NumShards)
	for i := range cfg.Cluster.SpeedFactors {
		cfg.Cluster.SpeedFactors[i] = 1
	}
	cfg.Cluster.SpeedFactors[0] = 2.5
	het := engine.New(s.Engine.Shards, cfg)
	if _, err := het.TrainFleet(s.TrainQueries[:600], s.Config.PredictCfg); err != nil {
		t.Fatal(err)
	}
	evs := het.EvaluateAll(s.WikiQueries[:800])
	exh := engine.Summarize(het.Run(freshPolicy(s, s.Policies()[0]), evs))
	cot := engine.Summarize(het.Run(s.Policies()[len(s.Policies())-1], evs))
	homExh := summaries(s.comparison(), 0)["exhaustive"]
	homCot := summaries(s.comparison(), 0)["cottage"]
	hetFactor := exh.MeanLatency / cot.MeanLatency
	homFactor := homExh.MeanLatency / homCot.MeanLatency
	if hetFactor <= homFactor {
		t.Errorf("straggler should widen cottage's advantage: hetero %.2fx vs homog %.2fx",
			hetFactor, homFactor)
	}
	if cot.MeanPAtK < 0.85 {
		t.Errorf("cottage quality under heterogeneity = %v", cot.MeanPAtK)
	}
}

// TestFixedSLABehaviour checks the a-priori-budget baseline: everyone
// participates, the budget is the SLA, and looser SLAs use less power
// (more downclocking) at higher latency.
func TestFixedSLABehaviour(t *testing.T) {
	s := testSetup(t)
	tight := engine.Summarize(s.Engine.Run(&baselines.FixedSLA{BudgetMS: 8, LatencyMargin: 0.5}, s.WikiEval))
	loose := engine.Summarize(s.Engine.Run(&baselines.FixedSLA{BudgetMS: 40, LatencyMargin: 0.5}, s.WikiEval))
	if tight.MeanISNs != float64(len(s.Engine.Shards)) {
		t.Errorf("sla-dvfs must never cut ISNs, got %v", tight.MeanISNs)
	}
	if tight.P95Latency > 8+2 {
		t.Errorf("tight SLA p95 %v should respect the budget", tight.P95Latency)
	}
	if loose.AvgPowerW >= tight.AvgPowerW {
		t.Errorf("loose SLA should downclock more: %v vs %v W", loose.AvgPowerW, tight.AvgPowerW)
	}
	if loose.MeanPAtK < tight.MeanPAtK {
		t.Errorf("loose SLA should never lose quality vs tight: %v vs %v", loose.MeanPAtK, tight.MeanPAtK)
	}
	// Cottage dominates any fixed SLA on latency at comparable power.
	cot := summaries(s.comparison(), 0)["cottage"]
	if cot.MeanLatency >= tight.MeanLatency {
		t.Errorf("cottage %v should beat the tightest SLA %v on latency", cot.MeanLatency, tight.MeanLatency)
	}
}

// TestCachingComposes checks the aggregator cache experiment's claims.
func TestCachingComposes(t *testing.T) {
	s := testSetup(t)
	defer func() { s.Engine.Cache = nil }()
	s.Engine.Cache = nil
	plain := engine.Summarize(s.Engine.Run(core.NewCottage(), s.WikiEval))
	s.Engine.Cache = qcache.NewLRU(2048)
	run := s.Engine.Run(core.NewCottage(), s.WikiEval)
	cached := engine.Summarize(run)
	if run.CacheHitRate <= 0.05 {
		t.Fatalf("hit rate %v too low for a Zipfian trace", run.CacheHitRate)
	}
	if cached.MeanLatency >= plain.MeanLatency {
		t.Errorf("cache should reduce latency: %v vs %v", cached.MeanLatency, plain.MeanLatency)
	}
	if cached.AvgPowerW >= plain.AvgPowerW {
		t.Errorf("cache should reduce power: %v vs %v", cached.AvgPowerW, plain.AvgPowerW)
	}
	if cached.MeanPAtK < plain.MeanPAtK-0.02 {
		t.Errorf("cached quality dropped too much: %v vs %v", cached.MeanPAtK, plain.MeanPAtK)
	}
}

// BenchmarkQuickBuild times the full experiment setup — corpus, shard
// builds, trace generation, predictor training, evaluated-query caches —
// at the quick scale. This is the perf baseline for the build-side
// batched-training and fan-out work; serving-side baselines live in the
// root bench_test.go.
func BenchmarkQuickBuild(b *testing.B) {
	cfg := QuickSetupConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
