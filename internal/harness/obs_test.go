package harness

import (
	"strconv"
	"strings"
	"testing"

	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/obs"
)

// TestSimulatedTwinTraces proves the engine records the same span tree as
// the live aggregator: query root, predict/budget/search/merge phases,
// per-ISN execution legs, and the Algorithm 1 decision record on the
// budget span — all on the virtual clock — plus latency histograms and
// predictor-accuracy samples on the shared registry.
func TestSimulatedTwinTraces(t *testing.T) {
	s := testSetup(t)
	o := obs.NewObserver(len(s.Engine.Shards), 128)
	s.Engine.Obs = o
	defer func() { s.Engine.Obs = nil }()

	n := 50
	if n > len(s.WikiEval) {
		n = len(s.WikiEval)
	}
	r := s.Engine.Run(core.NewCottage(), s.WikiEval[:n])
	if int(o.Traces.Total()) != n {
		t.Fatalf("recorded %d traces for %d queries", o.Traces.Total(), n)
	}

	// Find a trace whose decision selected several ISNs.
	var tr *obs.Trace
	for _, c := range o.Traces.Recent(0) {
		if b := c.Find("budget"); b != nil && b.Decision != nil && len(b.Decision.Selected) > 1 {
			tr = c
			break
		}
	}
	if tr == nil {
		t.Fatal("no trace carries a multi-ISN decision record")
	}
	root := tr.Root()
	if root == nil || root.Name != "query" {
		t.Fatalf("trace root = %+v, want query", root)
	}
	if root.Attrs["mode"] != "cottage" {
		t.Errorf("root mode attr = %q", root.Attrs["mode"])
	}
	legs := 0
	for _, name := range []string{"predict", "budget", "search", "merge"} {
		sp := tr.Find(name)
		if sp == nil {
			t.Fatalf("trace missing %s phase", name)
		}
		if sp.Parent != root.ID {
			t.Errorf("%s span not parented to root", name)
		}
	}
	search := tr.Find("search")
	d := tr.Find("budget").Decision
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Name != "search.isn" {
			continue
		}
		legs++
		if sp.Parent != search.ID {
			t.Errorf("search.isn leg not under search phase")
		}
		if sp.ISN < 0 {
			t.Errorf("execution leg has no ISN")
		}
	}
	if legs != len(d.Selected) {
		t.Errorf("%d execution legs for %d selected ISNs", legs, len(d.Selected))
	}
	if d.BudgetISN < 0 && len(d.Selected) > 0 && d.BudgetMS > 0 {
		t.Errorf("decision has no budget-setting ISN: %+v", d)
	}
	if len(d.Reports) == 0 {
		t.Error("decision record carries no reports")
	}
	// Virtual-time sanity: the root span's duration matches the outcome's
	// latency for the traced query (µs = ms*1000).
	qid := root.Attrs["query_id"]
	for _, out := range r.Outcomes {
		if qid == strconv.Itoa(out.QueryID) {
			wantUS := int64(out.LatencyMS * 1000)
			if diff := root.DurUS - wantUS; diff < -1 || diff > 1 {
				t.Errorf("root span %d µs, outcome latency %d µs", root.DurUS, wantUS)
			}
		}
	}

	// Accuracy fed from the simulator.
	lat, qual := uint64(0), uint64(0)
	for _, a := range o.Acc.Snapshot() {
		lat += a.LatSamples
		qual += a.QualSamples
	}
	if lat == 0 || qual == 0 {
		t.Fatalf("accuracy tracker empty: lat=%d qual=%d", lat, qual)
	}

	// Shared registry serves the twin's histograms and cluster gauges.
	fams := promFamilies(t, o.Reg)
	for _, want := range []string{
		"cottage_agg_query_ms_bucket",
		"cottage_agg_budget_ms_bucket",
		"cottage_cluster_power_w",
		"cottage_isn_busy_ms",
		"cottage_predictor_quality_hit_rate",
	} {
		if !fams[want] {
			t.Errorf("registry missing family %s", want)
		}
	}
	_ = engine.Summarize(r)
}

// promFamilies scrapes a registry and returns the set of sample families.
func promFamilies(tb testing.TB, reg *obs.Registry) map[string]bool {
	tb.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		tb.Fatal(err)
	}
	fams := make(map[string]bool)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fams[name] = true
	}
	return fams
}
