package harness

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Bar renders a proportional ASCII bar of value against max, width chars
// wide. Experiments use it to make histograms and comparisons readable in
// a terminal without plotting dependencies.
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 {
		n = 1 // visible trace for any positive value
	}
	return strings.Repeat("#", n)
}

// BarRow writes one labelled bar line: "label value |#####".
func BarRow(w io.Writer, label string, value, max float64, width int, unit string) {
	fmt.Fprintf(w, "  %-16s %9.2f %-3s |%s\n", label, value, unit, Bar(value, max, width))
}

// Sparkline compresses a series into one line of block characters, used
// for the Fig. 10 latency timeline.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// RenderBars prints a labelled bar chart for a set of (label, value)
// pairs, scaled to the maximum value.
func RenderBars(w io.Writer, title, unit string, labels []string, values []float64, width int) {
	if len(labels) != len(values) {
		panic("harness: RenderBars label/value mismatch")
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for i := range labels {
		BarRow(w, labels[i], values[i], max, width, unit)
	}
}

// ExportCSV writes the raw per-query outcomes of a comparison to one CSV
// file per (trace, policy) pair under dir, for external plotting:
// query_id, arrival_ms, latency_ms, p_at_k, active_isns, docs_searched,
// dropped_isns, budget_ms.
func ExportCSV(dir string, c *Comparison) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for ti, kind := range c.Traces {
		for pi, policy := range c.Policies {
			path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", kind, policy))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			fmt.Fprintln(w, "query_id,arrival_ms,latency_ms,p_at_k,active_isns,docs_searched,dropped_isns,budget_ms")
			for _, o := range c.Results[ti][pi].Outcomes {
				budget := o.BudgetMS
				if math.IsInf(budget, 1) {
					budget = -1 // sentinel: unbudgeted
				}
				fmt.Fprintf(w, "%d,%.4f,%.4f,%.3f,%d,%d,%d,%.4f\n",
					o.QueryID, o.ArrivalMS, o.LatencyMS, o.PAtK,
					o.ActiveISNs, o.DocsSearched, o.DroppedISNs, budget)
			}
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
