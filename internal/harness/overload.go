package harness

import (
	"fmt"
	"io"
	"math"

	"cottage/internal/baselines"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/stats"
)

// Overload is the "overload" extra: bounded per-ISN admission queues
// under 1x-4x offered load. It is the simulated twin of the live
// transport's overload.Limiter — same policy (arrivals that would queue
// past the bound are shed with an immediate rejection), measured at a
// scale and determinism wall-clock tests cannot give. The sweep reports,
// per load factor and policy: the shed rate, the p99 latency of
// *admitted* queries (the point of shedding — the served tail stays
// bounded while offered load quadruples), and Cottage's mean budget
// (which inflates with load because Eq. 2's equivalent latency folds
// the growing backlog into every prediction).
func Overload(s *Setup, w io.Writer) error {
	return OverloadSweep(s.Engine, s.WikiEval, 0, w)
}

// OverloadPoint is one (load factor, policy) cell of the sweep.
type OverloadPoint struct {
	Factor   float64
	Policy   string
	ShedDisp float64 // shed dispatches / total dispatches
	QShed    float64 // queries with at least one shed participant
	AdmitP99 float64 // p99 latency over queries with >= 1 active ISN
	BudgetMS float64 // mean finite budget (0 for budget-less policies)
	PowerW   float64
}

// OverloadFactors are the offered-load multipliers the sweep replays.
var OverloadFactors = []float64{1, 2, 3, 4}

// RunOverloadSweep replays the trace at OverloadFactors under exhaustive
// and Cottage with per-ISN queues bounded at maxQueueMS. A non-positive
// maxQueueMS derives the bound from the workload itself: half the p99
// latency of an unbounded exhaustive replay at nominal load, so the
// sweep is meaningful at both quick and full scale. Returns the points
// (factors × policies, in order) and the bound used. The engine's queue
// bound is restored afterwards.
func RunOverloadSweep(e *engine.Engine, evs []*engine.Evaluated, maxQueueMS float64) ([]OverloadPoint, float64) {
	prev := e.Cluster.MaxQueueMS
	defer func() { e.Cluster.MaxQueueMS = prev }()

	if maxQueueMS <= 0 {
		e.Cluster.MaxQueueMS = 0
		base := engine.Summarize(e.Run(baselines.Exhaustive{}, evs))
		maxQueueMS = base.P99Latency / 2
	}
	e.Cluster.MaxQueueMS = maxQueueMS

	policies := []engine.Policy{baselines.Exhaustive{}, core.NewCottage()}
	var points []OverloadPoint
	for _, f := range OverloadFactors {
		scaled := scaleArrivals(evs, f)
		for _, p := range policies {
			r := e.Run(p, scaled)
			pt := OverloadPoint{Factor: f, Policy: p.Name(), PowerW: r.AvgPowerW}
			shedDisp, totalDisp, qShed := 0, 0, 0
			var admitted []float64
			budgetSum, budgetN := 0.0, 0
			for _, o := range r.Outcomes {
				shedDisp += o.ShedISNs
				totalDisp += o.ShedISNs + o.ActiveISNs + o.FailedISNs
				if o.ShedISNs > 0 {
					qShed++
				}
				if o.ActiveISNs > 0 {
					admitted = append(admitted, o.LatencyMS)
				}
				if o.BudgetMS > 0 && !math.IsInf(o.BudgetMS, 1) {
					budgetSum += o.BudgetMS
					budgetN++
				}
			}
			if totalDisp > 0 {
				pt.ShedDisp = float64(shedDisp) / float64(totalDisp)
			}
			if n := len(r.Outcomes); n > 0 {
				pt.QShed = float64(qShed) / float64(n)
			}
			if len(admitted) > 0 {
				pt.AdmitP99 = stats.Percentile(admitted, 99)
			}
			if budgetN > 0 {
				pt.BudgetMS = budgetSum / float64(budgetN)
			}
			points = append(points, pt)
		}
	}
	return points, maxQueueMS
}

// OverloadSweep runs RunOverloadSweep and renders it.
func OverloadSweep(e *engine.Engine, evs []*engine.Evaluated, maxQueueMS float64, w io.Writer) error {
	points, bound := RunOverloadSweep(e, evs, maxQueueMS)
	fmt.Fprintf(w, "per-ISN queue bound: %.2f ms (shed on arrival past the bound)\n", bound)
	fmt.Fprintf(w, "%-6s %-12s %10s %10s %12s %11s %9s\n",
		"load", "policy", "shed disp", "shed qry", "admit p99", "budget ms", "power W")
	byKey := make(map[string]OverloadPoint, len(points))
	for _, pt := range points {
		fmt.Fprintf(w, "%-6s %-12s %9.1f%% %9.1f%% %12.2f %11.2f %9.2f\n",
			fmt.Sprintf("%.0fx", pt.Factor), pt.Policy,
			100*pt.ShedDisp, 100*pt.QShed, pt.AdmitP99, pt.BudgetMS, pt.PowerW)
		byKey[fmt.Sprintf("%s@%g", pt.Policy, pt.Factor)] = pt
	}
	base, peak := byKey["cottage@1"], byKey["cottage@4"]
	if base.BudgetMS > 0 {
		fmt.Fprintf(w, "cottage budget inflation at 4x load: %.2fx (Eq. 2 backlog correction)\n",
			peak.BudgetMS/base.BudgetMS)
	}
	exB, exP := byKey["exhaustive@1"], byKey["exhaustive@4"]
	if exB.AdmitP99 > 0 {
		fmt.Fprintf(w, "exhaustive admitted p99 at 4x load: %.2fx of 1x (bounded queues hold the served tail)\n",
			exP.AdmitP99/exB.AdmitP99)
	}
	return nil
}
