package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestOverloadSweepSmoke runs the overload extra on the quick setup and
// asserts the acceptance shape of bounded admission queues: at 4x
// offered load the cluster sheds (exhaustive dispatches hit full
// queues), the p99 of *admitted* queries stays within 2x of the
// nominal-load p99 (shedding holds the served tail instead of queueing
// without bound), and Cottage's mean budget inflates with load because
// the Eq. 2 equivalent-latency correction folds the live backlog into
// every prediction.
func TestOverloadSweepSmoke(t *testing.T) {
	s := testSetup(t)
	points, bound := RunOverloadSweep(s.Engine, s.WikiEval, 0)
	if bound <= 0 {
		t.Fatalf("derived queue bound = %v, want positive", bound)
	}
	byKey := make(map[string]OverloadPoint, len(points))
	for _, pt := range points {
		byKey[pt.Policy+"@"+fmtFactor(pt.Factor)] = pt
	}

	exh1, exh4 := byKey["exhaustive@1"], byKey["exhaustive@4"]
	if exh4.ShedDisp <= 0 {
		t.Error("exhaustive at 4x load should shed some dispatches")
	}
	if exh1.ShedDisp > exh4.ShedDisp {
		t.Errorf("shed rate should grow with load: 1x %v vs 4x %v", exh1.ShedDisp, exh4.ShedDisp)
	}
	if exh1.AdmitP99 <= 0 || exh4.AdmitP99 <= 0 {
		t.Fatalf("admitted p99 missing: 1x %v, 4x %v", exh1.AdmitP99, exh4.AdmitP99)
	}
	if f := exh4.AdmitP99 / exh1.AdmitP99; f > 2 {
		t.Errorf("admitted p99 inflated %vx at 4x load, want <= 2x (queue bound %v ms)", f, bound)
	}

	cot1, cot4 := byKey["cottage@1"], byKey["cottage@4"]
	if cot1.BudgetMS <= 0 || cot4.BudgetMS <= 0 {
		t.Fatalf("cottage budgets missing: 1x %v, 4x %v", cot1.BudgetMS, cot4.BudgetMS)
	}
	if cot4.BudgetMS <= cot1.BudgetMS {
		t.Errorf("Eq. 2 feedback should inflate the budget with load: 1x %v vs 4x %v",
			cot1.BudgetMS, cot4.BudgetMS)
	}

	// The rendered experiment (what `cottage-bench -experiment overload`
	// prints) must produce the table.
	var buf bytes.Buffer
	exp, ok := ByID("overload")
	if !ok {
		t.Fatal("overload experiment not registered")
	}
	if err := exp.Run(s, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"queue bound", "exhaustive", "cottage", "budget inflation"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("overload output missing %q:\n%s", want, buf.String())
		}
	}
}

func fmtFactor(f float64) string {
	switch f {
	case 1:
		return "1"
	case 2:
		return "2"
	case 3:
		return "3"
	case 4:
		return "4"
	}
	return "?"
}
