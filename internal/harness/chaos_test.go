package harness

import (
	"math"
	"testing"

	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/faults"
	"cottage/internal/obs"
	"cottage/internal/predict"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

// chaosFixture builds a small replicated twin (8 shards × 2 replicas)
// with trained predictors and an observer — deliberately smaller than
// testSetup so the chaos smoke stays fast under the race detector.
func chaosFixture(t *testing.T) (*engine.Engine, []*engine.Evaluated) {
	t.Helper()
	ccfg := textgen.DefaultConfig()
	ccfg.NumDocs = 2400
	ccfg.VocabSize = 3000
	ccfg.NumTopics = 12
	ccfg.TopicTermCount = 100
	corpus := textgen.Generate(ccfg)

	ecfg := engine.DefaultConfig()
	ecfg.NumShards = 8
	ecfg.Cluster.Replicas = 2
	shards := engine.BuildShards(corpus, ecfg, 2, 0.15, 3)
	eng := engine.New(shards, ecfg)

	qs := trace.Generate(corpus, trace.Config{
		Kind: trace.Wikipedia, Seed: 7, NumQueries: 700, QPS: 40})
	pcfg := predict.DefaultConfig(ecfg.K)
	pcfg.QualitySteps = 150
	pcfg.LatencySteps = 80
	if _, err := eng.TrainFleet(qs[:400], pcfg); err != nil {
		t.Fatal(err)
	}
	evs := eng.EvaluateAll(qs[400:])
	// Ring large enough to retain every run's traces (baseline + chaos +
	// slow), so the budget invariant can be checked over all of them.
	eng.Obs = obs.NewObserver(ecfg.NumShards, 3*len(evs)+64)
	return eng, evs
}

// TestChaosSmoke replays a seeded fault schedule — crashes, connection
// drops, corrupted replies and slowdowns from internal/faults — over
// the replicated twin and asserts the robustness invariants:
//
//  1. no lost query: every shard keeps >=1 live replica, so no query
//     loses a leg (failover absorbs every injected fault);
//  2. the budget dominates every selected shard's boosted latency
//     (checked from the Algorithm 1 decision records in the traces);
//  3. quality stays within straggler noise of the fault-free run:
//     faults cost failovers and latency, not results.
//
// Wired as `make chaos-smoke` (part of `make check`), run with -race.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains predictors")
	}
	eng, evs := chaosFixture(t)
	topo := eng.Cluster.Topo()
	pol := core.NewCottage()
	pol.Degraded = core.DegradedConservative

	base := eng.Run(pol, evs)

	// Seeded schedule: crash the row-0 replica of two shards, sever
	// streams on one replica of a third, corrupt replies on one replica
	// of a fourth. Every shard keeps a clean sibling.
	inj := faults.NewInjector(2026)
	crashed := make(map[int]bool)
	for _, s := range faults.PickVictims(2026, 2, topo.Shards) {
		inj.Crash(topo.Node(s, 0))
		crashed[s] = true
	}
	var chaosShards []int
	for s := 0; s < topo.Shards && len(chaosShards) < 3; s++ {
		if !crashed[s] {
			chaosShards = append(chaosShards, s)
		}
	}
	inj.SetPlan(topo.Node(chaosShards[0], 1), faults.Plan{DropProb: 0.3})
	inj.SetPlan(topo.Node(chaosShards[1], 0), faults.Plan{CorruptProb: 0.25})
	eng.Cluster.Faults = inj
	defer func() { eng.Cluster.Faults = nil }()

	chaos := eng.Run(pol, evs)
	assertNoLostQuery(t, "chaos", chaos, len(evs))
	counts := inj.Counts()
	if counts[faults.Drop]+counts[faults.Corrupt] == 0 {
		t.Fatal("chaos schedule never fired a drop/corrupt fault")
	}
	failovers := 0
	for _, o := range chaos.Outcomes {
		failovers += o.Failovers
	}
	if failovers == 0 {
		t.Fatal("no leg ever failed over under the chaos schedule")
	}
	// With a live sibling behind every fault, failover turns faults into
	// latency, never into lost legs — so mean quality must match the
	// fault-free run to within straggler noise. (Per-query equality is
	// too strong: Cottage boosts the slowest shard to run right at the
	// budget boundary, so which legs straggle past the deadline shifts
	// with queue state, and crashes change queue state. The fault-free
	// run drops boundary legs for the same reason.)
	baseSum, chaosSum := engine.Summarize(base), engine.Summarize(chaos)
	if chaosSum.MeanPAtK < baseSum.MeanPAtK-0.01 {
		t.Fatalf("chaos quality dropped beyond straggler noise: %v vs fault-free %v",
			chaosSum.MeanPAtK, baseSum.MeanPAtK)
	}

	// Add slowdowns on a fifth shard's row-0 replica: still no lost
	// query, and bounded quality loss. The budget is priced without
	// knowledge of the injected slowdown — and Cottage deliberately
	// boosts every shard down to run near the budget boundary — so the
	// slowed replica's legs straggle past the deadline and are cut at
	// merge on roughly the half of queries JSQ routes to it. That is
	// graceful degradation (one shard's partial contribution), never
	// loss, and it must stay well under one full shard's worth.
	inj.SetPlan(topo.Node(chaosShards[2], 0), faults.Plan{SlowMS: 1.2, SlowJitterMS: 0.6})
	slow := eng.Run(pol, evs)
	assertNoLostQuery(t, "slow", slow, len(evs))
	if inj.Counts()[faults.Slow] == 0 {
		t.Fatal("slow plan never fired")
	}
	slowSum := engine.Summarize(slow)
	if slowSum.MeanPAtK < baseSum.MeanPAtK-0.1 {
		t.Fatalf("slowdowns cost too much quality: %v vs fault-free %v",
			slowSum.MeanPAtK, baseSum.MeanPAtK)
	}

	// Budget invariant over every recorded decision (all three runs):
	// the budget must dominate each selected shard's boosted latency —
	// otherwise Algorithm 1 planned a leg it knew could not land.
	checked := 0
	for _, tr := range eng.Obs.Traces.Recent(3*len(evs) + 64) {
		bs := tr.Find("budget")
		if bs == nil || bs.Decision == nil || math.IsInf(bs.Decision.BudgetMS, 1) {
			continue
		}
		for _, rr := range bs.Decision.Reports {
			if rr.Cut {
				continue
			}
			if rr.LBoostedMS > bs.Decision.BudgetMS*(1+1e-9) {
				t.Fatalf("trace %d: budget %v ms below selected shard %d's boosted latency %v ms",
					tr.ID, bs.Decision.BudgetMS, rr.ISN, rr.LBoostedMS)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no decision records found in traces")
	}
}

// assertNoLostQuery checks the first chaos invariant: every query came
// back, and none lost a replica-group leg (FailedISNs counts groups
// whose every failover attempt was lost).
func assertNoLostQuery(t *testing.T, phase string, r engine.RunResult, want int) {
	t.Helper()
	if len(r.Outcomes) != want {
		t.Fatalf("%s: %d of %d queries came back", phase, len(r.Outcomes), want)
	}
	for _, o := range r.Outcomes {
		if o.FailedISNs > 0 {
			t.Fatalf("%s: query %d lost %d replica-group legs with a live sibling present",
				phase, o.QueryID, o.FailedISNs)
		}
		if o.LatencyMS <= 0 || math.IsNaN(o.LatencyMS) {
			t.Fatalf("%s: query %d has no latency: %v", phase, o.QueryID, o.LatencyMS)
		}
	}
}
