package harness

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestIntegritySmoke runs the full integrity study end to end. The
// load-time detection ladder, the zero-corrupted-postings-served
// invariant, the scrub localization count, the no-lost-query invariant
// and the P@10-held-under-repair bound are all enforced inside
// IntegritySweep itself — it returns an error the moment any of them
// breaks — so the smoke only has to run it and sanity-check the report.
// Wired as `make integrity-smoke` (part of `make check`), run with -race.
func TestIntegritySmoke(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := IntegritySweep(s, &buf); err != nil {
		t.Fatalf("integrity sweep: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "corrupted postings served 0") {
		t.Errorf("query-gate invariant line missing:\n%s", out)
	}
	for _, part := range []string{"(1) load-time detection", "(2) query-time gate", "(3) twin quarantine/repair grid"} {
		if !strings.Contains(out, part) {
			t.Errorf("report missing %q:\n%s", part, out)
		}
	}
	if _, ok := ByID("integrity"); !ok {
		t.Error("integrity experiment not registered")
	}
}

// TestIntegrityDeterministic pins GOMAXPROCS-independence: the entire
// report — detection ladder, gate counts, the whole twin grid — is
// byte-identical whether the runtime gets one P or many.
func TestIntegrityDeterministic(t *testing.T) {
	s := testSetup(t)
	run := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		var buf bytes.Buffer
		if err := IntegritySweep(s, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(1), run(8)
	if a != b {
		t.Fatalf("output differs across GOMAXPROCS:\n--- procs=1 ---\n%s\n--- procs=8 ---\n%s", a, b)
	}
}
