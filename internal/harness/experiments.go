package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"cottage/internal/cluster"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/features"
	"cottage/internal/predict"
	"cottage/internal/search"
	"cottage/internal/stats"
	"cottage/internal/trace"
)

// Experiment is one reproducible table/figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(s *Setup, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: features for quality prediction", Table1},
		{"table2", "Table II: features for latency prediction", Table2},
		{"fig2", "Fig. 2: latency and quality-contribution variation", Fig2},
		{"fig3", "Fig. 3: policy comparison on one query", Fig3},
		{"fig4", "Fig. 4: query latency vs CPU frequency", Fig4},
		{"fig6", "Fig. 6: score histogram vs fitted Gamma", Fig6},
		{"fig7", "Fig. 7: quality prediction accuracy and inference time", Fig7},
		{"fig8", "Fig. 8: latency prediction accuracy and inference time", Fig8},
		{"fig9", "Fig. 9: time budget determination example", Fig9},
		{"fig10", "Fig. 10: overall latency", Fig10},
		{"fig11", "Fig. 11: P@10 search quality", Fig11},
		{"fig12", "Fig. 12: latency and quality distributions", Fig12},
		{"fig13", "Fig. 13: average number of selected ISNs", Fig13},
		{"fig14", "Fig. 14: power consumption", Fig14},
		{"fig15", "Fig. 15: impact of ML prediction and coordination", Fig15},
		{"ablations", "Extra: design-choice ablations (boost, downclock, K/2, oracle)", Ablations},
	}
}

// ByID finds an experiment in All() or Extras().
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Extras() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// comparison lazily runs and caches the headline policy comparison.
func (s *Setup) comparison() *Comparison {
	if s.cmp == nil {
		s.cmp = s.RunComparison(s.Policies())
	}
	return s.cmp
}

// ablation lazily runs and caches the Fig. 15 comparison.
func (s *Setup) ablation() *Comparison {
	if s.abl == nil {
		s.abl = s.RunComparison(s.AblationPolicies())
	}
	return s.abl
}

// exampleTerm returns a mid-frequency term present on shard 0, used by the
// feature-table experiments (the paper uses "Tokyo"/"Toyota").
func (s *Setup) exampleTerm(minDF int) string {
	sh := s.Engine.Shards[0]
	best, bestDF := "", 0
	for i := range sh.Terms {
		df := sh.Terms[i].Stats.PostingLen
		if df >= minDF && (bestDF == 0 || df < bestDF) {
			best, bestDF = sh.Terms[i].Text, df
		}
	}
	if best == "" {
		best = sh.Terms[0].Text
	}
	return best
}

// Table1 prints the quality-prediction feature vector for an example term.
func Table1(s *Setup, w io.Writer) error {
	term := s.exampleTerm(200)
	vec, ok := features.Quality(s.Engine.Shards[0], []string{term})
	if !ok {
		return fmt.Errorf("harness: example term %q missing", term)
	}
	fmt.Fprintf(w, "Features for quality prediction — example for %q on ISN-0\n", term)
	for i, name := range features.QualityNames {
		fmt.Fprintf(w, "  %-45s %12.3f\n", name, vec[i])
	}
	return nil
}

// Table2 prints the latency-prediction feature vector for an example term.
func Table2(s *Setup, w io.Writer) error {
	term := s.exampleTerm(500)
	vec, ok := features.Latency(s.Engine.Shards[0], []string{term})
	if !ok {
		return fmt.Errorf("harness: example term %q missing", term)
	}
	fmt.Fprintf(w, "Features for latency prediction — example for %q on ISN-0\n", term)
	for i, name := range features.LatencyNames {
		fmt.Fprintf(w, "  %-55s %12.3f\n", name, vec[i])
	}
	return nil
}

// Fig2 reproduces the motivation figure: (a) the latency histogram of the
// Wikipedia trace under exhaustive search, (b) the distribution of how
// many ISNs contribute at least one top-10 document per query.
func Fig2(s *Setup, w io.Writer) error {
	c := s.comparison()
	exh := c.Results[0][0] // exhaustive on the Wikipedia trace
	lats := make([]float64, len(exh.Outcomes))
	for i, o := range exh.Outcomes {
		lats[i] = o.LatencyMS
	}
	maxLat := stats.Max(lats)
	binW := 5.0
	bins := int(maxLat/binW) + 1
	h := stats.NewHistogram(lats, 0, float64(bins)*binW, bins)
	fmt.Fprintf(w, "(a) Exhaustive-search latency histogram, %d queries (Wikipedia trace)\n", len(lats))
	for i := range h.Counts {
		if h.Counts[i] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %5.0f-%-5.0f ms  %6d  (%5.1f%%)\n",
			float64(i)*binW, float64(i+1)*binW, h.Counts[i], 100*h.Fraction(i))
	}

	counts := make([]int, len(s.Engine.Shards)+1)
	for _, ev := range s.WikiEval {
		n := 0
		for si := range ev.PerShard {
			if search.Overlap(ev.PerShard[si].Hits, ev.TopKSet) > 0 {
				n++
			}
		}
		counts[n]++
	}
	fmt.Fprintf(w, "(b) ISNs with non-zero quality contribution per query\n")
	for n, cnt := range counts {
		if cnt == 0 {
			continue
		}
		fmt.Fprintf(w, "  %2d ISNs  %6d queries\n", n, cnt)
	}
	return nil
}

// Fig4 sweeps the frequency ladder for the heaviest Wikipedia query and
// reports the service-time curve (the paper measures 97 ms -> 40 ms from
// 1.2 to 2.7 GHz, a 2.43x reduction; the model gives exactly 1/f).
func Fig4(s *Setup, w io.Writer) error {
	heaviest := 0.0
	for _, ev := range s.WikiEval {
		for si := range ev.Cycles {
			if ev.Cycles[si] > heaviest {
				heaviest = ev.Cycles[si]
			}
		}
	}
	fmt.Fprintf(w, "Service time of the heaviest per-ISN query (%.0f cycles) across the DVFS ladder\n", heaviest)
	base := 0.0
	for _, f := range s.Engine.Cluster.Ladder.Levels {
		ms := cluster.ServiceMS(heaviest, f)
		if base == 0 {
			base = ms
		}
		fmt.Fprintf(w, "  %.1f GHz  %8.2f ms  (%.2fx vs %.1f GHz)\n",
			f, ms, base/ms, s.Engine.Cluster.Ladder.Levels[0])
	}
	return nil
}

// Fig6 fits a Gamma to a real per-term score distribution and shows where
// the fit misses the histogram (the root cause of Taily's cutoff errors).
func Fig6(s *Setup, w io.Writer) error {
	sh := s.Engine.Shards[0]
	term := s.exampleTerm(500)
	ti, _ := sh.Lookup(term)
	scores := sh.Scores(ti)
	g, err := stats.FitGamma(scores)
	if err != nil {
		return fmt.Errorf("harness: fig6 gamma fit: %w", err)
	}
	sum := stats.Summarize(scores)
	h := stats.NewHistogram(scores, 0, sum.Max*1.001, 20)
	fmt.Fprintf(w, "Score histogram for %q on ISN-0 (%d postings) vs fitted Gamma(shape=%.3f, scale=%.3f)\n",
		term, len(scores), g.Shape, g.Scale)
	fmt.Fprintf(w, "  %-16s %10s %10s\n", "score bin", "observed", "gamma")
	total := float64(h.Total())
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i := range h.Counts {
		lo := h.Lo + float64(i)*binW
		model := (g.CDF(lo+binW) - g.CDF(lo)) * total
		fmt.Fprintf(w, "  %6.2f-%-8.2f %10d %10.1f\n", lo, lo+binW, h.Counts[i], model)
	}
	kth := ti.Stats.KthScore
	empirical := 0
	for _, sc := range scores {
		if sc > kth {
			empirical++
		}
	}
	model := g.TailProb(kth) * float64(len(scores))
	fmt.Fprintf(w, "  P(X > Kth score %.2f): empirical %d docs, Gamma model %.1f docs\n", kth, empirical, model)
	fmt.Fprintf(w, "  Kolmogorov-Smirnov distance: %.4f\n", stats.KSDistance(scores, g))
	return nil
}

// heldOutDataset converts already-evaluated queries into a predict.Dataset
// so Figs. 7/8 measure held-out accuracy without re-running retrieval.
func heldOutDataset(s *Setup, evs []*engine.Evaluated) *predict.Dataset {
	ds := &predict.Dataset{K: s.Engine.K, PerISN: make([][]predict.Sample, len(s.Engine.Shards))}
	for si := range ds.PerISN {
		ds.PerISN[si] = make([]predict.Sample, len(evs))
	}
	for qi, ev := range evs {
		lists := make([][]search.Hit, len(ev.PerShard))
		for si := range ev.PerShard {
			lists[si] = ev.PerShard[si].Hits
		}
		inK2 := search.DocSet(search.Merge(s.Engine.K/2, lists...))
		for si, sh := range s.Engine.Shards {
			qv, qok := features.Quality(sh, ev.Query.Terms)
			lv, _ := features.Latency(sh, ev.Query.Terms)
			ds.PerISN[si][qi] = predict.Sample{
				QualityVec: qv,
				LatencyVec: lv,
				Matched:    qok,
				QK:         search.Overlap(ev.PerShard[si].Hits, ev.TopKSet),
				QK2:        search.Overlap(ev.PerShard[si].Hits, inK2),
				Cycles:     ev.Cycles[si],
			}
		}
	}
	return ds
}

// inferenceMicros measures real wall-clock inference time per query for
// one ISN's predictor pair — the right-hand axes of Figs. 7b/8b.
func inferenceMicros(s *Setup, isn int, n int) float64 {
	sh := s.Engine.Shards[isn]
	p := s.Engine.Fleet.Predictors[isn]
	queries := s.WikiQueries
	if n > len(queries) {
		n = len(queries)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		_ = p.Predict(sh, queries[i].Terms)
	}
	return float64(time.Since(start).Microseconds()) / float64(n)
}

// Fig7 reports per-ISN quality-prediction accuracy on held-out queries
// plus measured inference time.
func Fig7(s *Setup, w io.Writer) error {
	n := len(s.WikiEval)
	if n > 1500 {
		n = 1500
	}
	ds := heldOutDataset(s, s.WikiEval[:n])
	accs := predict.Evaluate(s.Engine.Fleet, ds)
	fmt.Fprintf(w, "%-5s %10s %10s %10s %12s\n", "ISN", "exact", "within-1", "zero-det", "infer us")
	mean1, meanZ := 0.0, 0.0
	for _, a := range accs {
		us := inferenceMicros(s, a.ISN, 200)
		fmt.Fprintf(w, "%-5d %10.3f %10.3f %10.3f %12.2f\n",
			a.ISN, a.QualityExact, a.QualityWithin1, a.QualityZero, us)
		mean1 += a.QualityWithin1
		meanZ += a.QualityZero
	}
	fmt.Fprintf(w, "mean: within-1 %.3f, zero-detection %.3f (paper: 94.7%% avg accuracy, <=41 us inference)\n",
		mean1/float64(len(accs)), meanZ/float64(len(accs)))
	return nil
}

// Fig8 reports per-ISN latency-prediction accuracy on held-out queries.
func Fig8(s *Setup, w io.Writer) error {
	n := len(s.WikiEval)
	if n > 1500 {
		n = 1500
	}
	ds := heldOutDataset(s, s.WikiEval[:n])
	accs := predict.Evaluate(s.Engine.Fleet, ds)
	fmt.Fprintf(w, "%-5s %10s %10s %12s\n", "ISN", "exact-bin", "within-1", "infer us")
	mean := 0.0
	for _, a := range accs {
		us := inferenceMicros(s, a.ISN, 200)
		fmt.Fprintf(w, "%-5d %10.3f %10.3f %12.2f\n", a.ISN, a.LatencyExact, a.LatencyWithin1, us)
		mean += a.LatencyWithin1
	}
	fmt.Fprintf(w, "mean: within-1 %.3f (paper: 87.23%% accuracy, ~70 us inference)\n", mean/float64(len(accs)))
	return nil
}

// Fig9 walks Algorithm 1 on a query where the optimizer both cuts and
// boosts, printing the per-ISN report table and the chosen budget.
func Fig9(s *Setup, w io.Writer) error {
	cot := core.NewCottage()
	s.Engine.Cluster.Reset()
	// Find a query whose decision includes a boost and a stage-2 cut.
	var chosen trace.Query
	var reports []core.ISNReport
	var res core.BudgetResult
	found := false
	for _, ev := range s.WikiEval {
		r := cot.Reports(s.Engine, ev.Query, ev.Query.ArrivalMS)
		b := core.DetermineBudget(r, s.Engine.Cluster.Ladder, core.BudgetOptions{Downclock: cot.Downclock})
		boosts := 0
		for _, a := range b.Selected {
			if a.Boosted {
				boosts++
			}
		}
		if boosts > 0 && len(b.Cut) > 0 && len(b.Selected) >= 3 {
			chosen, reports, res, found = ev.Query, r, b, true
			break
		}
	}
	if !found {
		return fmt.Errorf("harness: no illustrative query found for fig9")
	}
	fmt.Fprintf(w, "Query %v — per-ISN reports and Algorithm 1 decision\n", chosen.Terms)
	fmt.Fprintf(w, "%-5s %4s %5s %10s %10s  %s\n", "ISN", "Q^K", "Q^K/2", "L_cur ms", "L_boost ms", "decision")
	decision := make(map[int]string)
	for _, c := range res.Cut {
		decision[c] = "cut"
	}
	for _, a := range res.Selected {
		switch {
		case a.Boosted:
			decision[a.ISN] = fmt.Sprintf("boost to %.1f GHz", a.Freq)
		case a.Downclocked:
			decision[a.ISN] = fmt.Sprintf("downclock to %.1f GHz", a.Freq)
		default:
			decision[a.ISN] = "keep at default"
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].LBoosted > reports[j].LBoosted })
	for _, r := range reports {
		fmt.Fprintf(w, "%-5d %4d %5d %10.2f %10.2f  %s\n",
			r.ISN, r.QK, r.QK2, r.LCurrent, r.LBoosted, decision[r.ISN])
	}
	fmt.Fprintf(w, "time budget T = %.2f ms\n", res.BudgetMS)
	return nil
}

// Fig10 prints average and 95th-percentile latency per policy per trace,
// plus a coarse latency timeline for the Wikipedia trace.
func Fig10(s *Setup, w io.Writer) error {
	c := s.comparison()
	for ti, kind := range c.Traces {
		fmt.Fprintf(w, "(%s trace)\n", kind)
		fmt.Fprintf(w, "  %-14s %10s %10s %10s\n", "policy", "avg ms", "p95 ms", "p99 ms")
		for pi := range c.Policies {
			sm := c.Summaries[ti][pi]
			fmt.Fprintf(w, "  %-14s %10.2f %10.2f %10.2f\n", sm.Policy, sm.MeanLatency, sm.P95Latency, sm.P99Latency)
		}
		exh := c.Summaries[ti][0]
		cot := c.Summaries[ti][len(c.Policies)-1]
		fmt.Fprintf(w, "  cottage vs exhaustive: avg %.2fx lower, p95 %.2fx lower\n",
			exh.MeanLatency/cot.MeanLatency, exh.P95Latency/cot.P95Latency)
	}
	// Timeline (Fig. 10a): mean latency in 20 time buckets, plus a
	// sparkline per policy for quick visual comparison.
	fmt.Fprintf(w, "(Wikipedia trace timeline, mean latency per time bucket)\n")
	dur := trace.DurationMS(s.WikiQueries)
	const buckets = 20
	fmt.Fprintf(w, "  %-12s", "bucket")
	for pi := range c.Policies {
		fmt.Fprintf(w, " %12s", c.Policies[pi])
	}
	fmt.Fprintln(w)
	sums := make([][]float64, buckets)
	cnts := make([][]int, buckets)
	for b := range sums {
		sums[b] = make([]float64, len(c.Policies))
		cnts[b] = make([]int, len(c.Policies))
	}
	for pi := range c.Policies {
		for _, o := range c.Results[0][pi].Outcomes {
			b := int(o.ArrivalMS / dur * buckets)
			if b >= buckets {
				b = buckets - 1
			}
			sums[b][pi] += o.LatencyMS
			cnts[b][pi]++
		}
	}
	for b := 0; b < buckets; b++ {
		fmt.Fprintf(w, "  %5.0f-%-6.0fs", float64(b)*dur/buckets/1000, float64(b+1)*dur/buckets/1000)
		for pi := range c.Policies {
			v := 0.0
			if cnts[b][pi] > 0 {
				v = sums[b][pi] / float64(cnts[b][pi])
			}
			fmt.Fprintf(w, " %12.2f", v)
		}
		fmt.Fprintln(w)
	}
	for pi := range c.Policies {
		series := make([]float64, buckets)
		for b := 0; b < buckets; b++ {
			if cnts[b][pi] > 0 {
				series[b] = sums[b][pi] / float64(cnts[b][pi])
			}
		}
		fmt.Fprintf(w, "  %-14s %s\n", c.Policies[pi], Sparkline(series))
	}
	return nil
}

// Fig11 prints average P@10 per policy per trace.
func Fig11(s *Setup, w io.Writer) error {
	c := s.comparison()
	fmt.Fprintf(w, "%-14s %12s %12s\n", "policy", "wikipedia", "lucene")
	for pi := range c.Policies {
		fmt.Fprintf(w, "%-14s %12.3f %12.3f\n", c.Policies[pi],
			c.Summaries[0][pi].MeanPAtK, c.Summaries[1][pi].MeanPAtK)
	}
	vals := make([]float64, len(c.Policies))
	for pi := range c.Policies {
		vals[pi] = c.Summaries[0][pi].MeanPAtK
	}
	RenderBars(w, "(wikipedia P@10)", "", c.Policies, vals, 40)
	return nil
}

// Fig12 summarizes the per-query latency/quality scatter: the share of
// queries in the "good" region (high quality, low latency) per policy,
// plus a 2D density over latency and quality bins.
func Fig12(s *Setup, w io.Writer) error {
	c := s.comparison()
	exh := c.Summaries[0][0]
	latCut := exh.MeanLatency
	fmt.Fprintf(w, "share of Wikipedia queries with P@10 >= 0.9 and latency <= %.1f ms (exhaustive mean):\n", latCut)
	for pi := range c.Policies {
		good := 0
		outs := c.Results[0][pi].Outcomes
		for _, o := range outs {
			if o.PAtK >= 0.9 && o.LatencyMS <= latCut {
				good++
			}
		}
		fmt.Fprintf(w, "  %-14s %6.1f%%\n", c.Policies[pi], 100*float64(good)/float64(len(outs)))
	}
	// Density: quality rows x latency columns for taily, rank-s, cottage.
	for _, pi := range []int{3, 2, len(c.Policies) - 1} {
		fmt.Fprintf(w, "(%s) quality x latency density (rows: P@10 bin, cols: latency quartile of exhaustive)\n", c.Policies[pi])
		outs := c.Results[0][pi].Outcomes
		qs := []float64{exh.MeanLatency / 2, exh.MeanLatency, exh.P95Latency, math.Inf(1)}
		grid := make([][4]int, 5)
		for _, o := range outs {
			qb := int(o.PAtK * 4.999)
			lb := 0
			for lb < 3 && o.LatencyMS > qs[lb] {
				lb++
			}
			grid[qb][lb]++
		}
		for qb := 4; qb >= 0; qb-- {
			fmt.Fprintf(w, "  P@10 %.1f-%.1f: %6d %6d %6d %6d\n",
				float64(qb)/5, float64(qb+1)/5, grid[qb][0], grid[qb][1], grid[qb][2], grid[qb][3])
		}
	}
	return nil
}

// Fig13 prints the average number of selected ISNs per policy per trace.
func Fig13(s *Setup, w io.Writer) error {
	c := s.comparison()
	fmt.Fprintf(w, "%-14s %12s %12s\n", "policy", "wikipedia", "lucene")
	for pi := range c.Policies {
		fmt.Fprintf(w, "%-14s %12.2f %12.2f\n", c.Policies[pi],
			c.Summaries[0][pi].MeanISNs, c.Summaries[1][pi].MeanISNs)
	}
	return nil
}

// Fig14 prints average package power per policy per trace, plus idle.
func Fig14(s *Setup, w io.Writer) error {
	c := s.comparison()
	fmt.Fprintf(w, "%-14s %12s %12s\n", "policy", "wikipedia W", "lucene W")
	fmt.Fprintf(w, "%-14s %12.2f %12.2f\n", "idle",
		s.Engine.Cluster.Meter.Model().IdleWatts, s.Engine.Cluster.Meter.Model().IdleWatts)
	for pi := range c.Policies {
		fmt.Fprintf(w, "%-14s %12.2f %12.2f\n", c.Policies[pi],
			c.Summaries[0][pi].AvgPowerW, c.Summaries[1][pi].AvgPowerW)
	}
	exh := c.Summaries[0][0].AvgPowerW
	cot := c.Summaries[0][len(c.Policies)-1].AvgPowerW
	idle := s.Engine.Cluster.Meter.Model().IdleWatts
	fmt.Fprintf(w, "cottage saves %.1f%% of exhaustive's above-idle power (wikipedia)\n",
		100*(exh-cot)/(exh-idle))
	vals := make([]float64, len(c.Policies))
	for pi := range c.Policies {
		vals[pi] = c.Summaries[0][pi].AvgPowerW
	}
	RenderBars(w, "(wikipedia package power, W)", "W", c.Policies, vals, 40)
	return nil
}

// Fig15 prints the ablation comparison: latency, quality, active ISNs and
// C_RES for exhaustive, Taily, Cottage-withoutML, Cottage-ISN, Cottage.
func Fig15(s *Setup, w io.Writer) error {
	c := s.ablation()
	for ti, kind := range c.Traces {
		fmt.Fprintf(w, "(%s trace)\n", kind)
		fmt.Fprintf(w, "  %-14s %10s %8s %8s %10s\n", "policy", "avg ms", "P@10", "ISNs", "C_RES")
		for pi := range c.Policies {
			sm := c.Summaries[ti][pi]
			fmt.Fprintf(w, "  %-14s %10.2f %8.3f %8.2f %10.0f\n",
				sm.Policy, sm.MeanLatency, sm.MeanPAtK, sm.MeanISNs, sm.MeanCRES)
		}
	}
	// Headline ratios the paper calls out.
	wi := c.Summaries[0]
	var isnLat, cotLat float64
	for pi, name := range c.Policies {
		if name == "cottage-isn" {
			isnLat = wi[pi].MeanLatency
		}
		if name == "cottage" {
			cotLat = wi[pi].MeanLatency
		}
	}
	if cotLat > 0 {
		fmt.Fprintf(w, "cottage-isn / cottage latency ratio (wikipedia): %.2fx (paper: ~1.9x)\n", isnLat/cotLat)
	}
	return nil
}

// Ablations runs the extra design-choice studies DESIGN.md lists: boost
// on/off, downclock on/off, strict top-K, and the quality-prediction
// oracle.
func Ablations(s *Setup, w io.Writer) error {
	policies := []engine.Policy{
		core.NewCottage(),
		&core.Cottage{DropZeroProb: 0.8, K2ZeroProb: 0.95, Boost: false, Downclock: true, LatencyMargin: 0.5},
		&core.Cottage{DropZeroProb: 0.8, K2ZeroProb: 0.95, Boost: true, Downclock: false, LatencyMargin: 0.5},
		&core.Cottage{DropZeroProb: 0.8, K2ZeroProb: 0.95, Boost: true, Downclock: true, StrictTopK: true, LatencyMargin: 0.5},
		core.NewCottageOracle(s.Engine, s.WikiEval),
	}
	labels := []string{"cottage (full)", "no boost", "no downclock", "strict top-K", "oracle quality"}
	fmt.Fprintf(w, "%-16s %10s %10s %8s %8s %8s %10s %8s\n",
		"variant", "avg ms", "p95 ms", "P@10", "ISNs", "power W", "C_RES", "boost%")
	def := s.Engine.Cluster.Ladder.Default()
	for i, p := range policies {
		sm := engine.Summarize(s.Engine.Run(p, s.WikiEval))
		// Attribute busy energy above the default frequency to boosting.
		boost, total := 0.0, 0.0
		for f, e := range s.Engine.Cluster.Meter.ByFrequency() {
			total += e
			if f > def {
				boost += e
			}
		}
		share := 0.0
		if total > 0 {
			share = 100 * boost / total
		}
		fmt.Fprintf(w, "%-16s %10.2f %10.2f %8.3f %8.2f %8.2f %10.0f %7.1f%%\n",
			labels[i], sm.MeanLatency, sm.P95Latency, sm.MeanPAtK, sm.MeanISNs,
			sm.AvgPowerW, sm.MeanCRES, share)
	}
	return nil
}

// Fig3 reproduces the motivation example: one query with a wide per-ISN
// latency spread, shown under each policy class — exhaustive search waits
// for the slowest ISN, the aggregation policy cuts stragglers blindly,
// selective search cuts low-quality ISNs but keeps slow ones, and Cottage
// balances both.
func Fig3(s *Setup, w io.Writer) error {
	// Pick the query with the largest per-ISN latency spread among those
	// where several ISNs contribute.
	best, bestSpread := -1, 0.0
	for i, ev := range s.WikiEval {
		contributors := 0
		lo, hi := math.Inf(1), 0.0
		for si := range ev.PerShard {
			if search.Overlap(ev.PerShard[si].Hits, ev.TopKSet) > 0 {
				contributors++
			}
			ms := cluster.ServiceMS(ev.Cycles[si], s.Engine.Cluster.Ladder.Default())
			if ms < lo {
				lo = ms
			}
			if ms > hi {
				hi = ms
			}
		}
		if contributors >= 4 && hi-lo > bestSpread {
			best, bestSpread = i, hi-lo
		}
	}
	if best < 0 {
		return fmt.Errorf("harness: no illustrative query for fig3")
	}
	ev := s.WikiEval[best]
	fmt.Fprintf(w, "query %v — per-ISN service time and top-%d contribution\n",
		ev.Query.Terms, s.Engine.K)
	fmt.Fprintf(w, "%-5s %12s %14s\n", "ISN", "service ms", "contributes")
	for si := range ev.PerShard {
		ms := cluster.ServiceMS(ev.Cycles[si], s.Engine.Cluster.Ladder.Default())
		fmt.Fprintf(w, "%-5d %12.2f %14d\n", si, ms,
			search.Overlap(ev.PerShard[si].Hits, ev.TopKSet))
	}
	// Replay just this query (empty cluster) under each policy class.
	single := []*engine.Evaluated{ev}
	for _, p := range s.Policies() {
		r := s.Engine.Run(freshPolicy(s, p), single)
		o := r.Outcomes[0]
		fmt.Fprintf(w, "%-14s latency %7.2f ms  P@10 %.2f  ISNs %2d  budget %v\n",
			p.Name(), o.LatencyMS, o.PAtK, o.ActiveISNs, fmtBudget(o.BudgetMS))
	}
	return nil
}

func fmtBudget(b float64) string {
	if math.IsInf(b, 1) {
		return "none"
	}
	return fmt.Sprintf("%.2f ms", b)
}
