package harness

import (
	"bytes"
	"fmt"
	"io"

	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/faults"
	"cottage/internal/index"
	"cottage/internal/trace"
)

// IntegritySweep is the end-to-end data-integrity study (DESIGN.md §16).
// Three parts, all deterministic:
//
//  1. At-rest detection, real bytes: a real shard is encoded, a ladder
//     of seeded bit flips (faults.FlipBits) is driven through the
//     encoded file, and every rotted file must fail the eager load-time
//     verification — either as a localized *CorruptionError from the
//     block checksums or as a structural decode error when the flip
//     lands on the container framing. Detection must be 100% at every
//     rung.
//
//  2. Query-time gate, real bytes: rot is planted under an already
//     loaded shard (flipping posting bits in memory, as a DMA scribble
//     would), and the evaluation trace is replayed through VerifyQuery.
//     A query whose terms touch a rotted block must be refused, a query
//     on clean terms must proceed, and corrupted postings served — the
//     invariant the whole plane exists for — must be exactly zero.
//
//  3. Quarantine/repair economics, twin: a Poisson rot schedule
//     (faults.CorruptionSchedule) replays against the replicated twin
//     (R=2) across a rot-rate x scrub-pace grid, measuring detection
//     latency (query path vs scrubber), MTTR, the corrupt-bounce rate
//     absorbed by shard-level failover, and the P@10 / latency cost of
//     serving through quarantines and repairs.
func IntegritySweep(s *Setup, w io.Writer) error {
	if err := integrityAtRest(s, w); err != nil {
		return err
	}
	if err := integrityQueryGate(s, w); err != nil {
		return err
	}
	return integrityTwinGrid(s, w)
}

// encodeShard0 serializes the setup's first shard once per caller.
func encodeShard0(s *Setup) ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Engine.Shards[0].Encode(&buf); err != nil {
		return nil, fmt.Errorf("harness: integrity encode: %w", err)
	}
	return buf.Bytes(), nil
}

// integrityAtRest drives the bit-flip ladder through a real encoded
// shard and reports how each rung was caught at load time.
func integrityAtRest(s *Setup, w io.Writer) error {
	clean, err := encodeShard0(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(1) load-time detection: seeded bit flips over a %d-byte encoded shard\n", len(clean))
	fmt.Fprintf(w, "  %-8s %10s %12s %12s %10s\n", "flips", "detected", "checksummed", "structural", "served")
	for _, n := range []int{1, 4, 16, 64, 256} {
		rotted := append([]byte(nil), clean...)
		faults.FlipBits(rotted, n, uint64(2026+n))
		_, err := index.ReadShard(bytes.NewReader(rotted))
		if err == nil {
			return fmt.Errorf("harness: %d-bit rot loaded clean", n)
		}
		typed, structural := 0, 0
		if index.IsCorruption(err) {
			typed = 1
		} else {
			structural = 1
		}
		fmt.Fprintf(w, "  %-8d %10d %12d %12d %10d\n", n, 1, typed, structural, 0)
	}
	return nil
}

// integrityQueryGate plants rot under a loaded shard and replays the
// evaluation trace through the query-time checksum gate.
func integrityQueryGate(s *Setup, w io.Writer) error {
	clean, err := encodeShard0(s)
	if err != nil {
		return err
	}
	// A private clone, so rot never leaks into the shared setup.
	sh, err := index.ReadShard(bytes.NewReader(clean))
	if err != nil {
		return fmt.Errorf("harness: integrity clone: %w", err)
	}

	// Rot the first 8 distinct trace terms present on the shard: terms
	// real queries will actually touch.
	rotted := make(map[string]bool)
	for _, q := range s.WikiQueries {
		for _, term := range q.Terms {
			if rotted[term] {
				continue
			}
			if ti, ok := sh.Lookup(term); ok && ti.Len() > 0 && len(ti.BlockData(0)) > 0 {
				ti.BlockData(0)[0] ^= 1
				rotted[term] = true
			}
		}
		if len(rotted) >= 8 {
			break
		}
	}
	if len(rotted) == 0 {
		return fmt.Errorf("harness: no trace term found on shard 0")
	}
	sh.ResetVerification()

	evs := s.WikiEval
	if len(evs) > 2000 {
		evs = evs[:2000]
	}
	touched, blocked, servedCorrupt := 0, 0, 0
	for _, ev := range evs {
		touches := false
		for _, term := range ev.Query.Terms {
			if rotted[term] {
				touches = true
			}
		}
		verr := sh.VerifyQuery(ev.Query.Terms)
		if touches {
			touched++
		}
		if verr != nil {
			blocked++
			if !index.IsCorruption(verr) {
				return fmt.Errorf("harness: query gate returned untyped error: %v", verr)
			}
			if !touches {
				return fmt.Errorf("harness: clean query %v blocked: %v", ev.Query.Terms, verr)
			}
		} else if touches {
			servedCorrupt++
		}
	}
	if servedCorrupt != 0 {
		return fmt.Errorf("harness: %d queries served from rotted blocks", servedCorrupt)
	}

	// Localization: a full sweep must find exactly the planted blocks.
	found := 0
	for g := 0; g < sh.TotalBlocks(); g++ {
		if sh.VerifyBlockAt(g) != nil {
			found++
		}
	}
	fmt.Fprintf(w, "(2) query-time gate: %d terms rotted in memory under a loaded shard\n", len(rotted))
	fmt.Fprintf(w, "  queries replayed %d, touching rot %d, refused %d, corrupted postings served %d\n",
		len(evs), touched, blocked, servedCorrupt)
	fmt.Fprintf(w, "  scrub localization: %d/%d blocks flagged (%d planted)\n",
		found, sh.TotalBlocks(), len(rotted))
	if found != len(rotted) {
		return fmt.Errorf("harness: scrub flagged %d blocks, planted %d", found, len(rotted))
	}
	return nil
}

// integrityTwinGrid replays Poisson rot schedules against the
// replicated twin across a rot-rate x scrub-pace grid.
func integrityTwinGrid(s *Setup, w io.Writer) error {
	cfg := s.Config.EngineCfg
	cfg.Cluster.Replicas = 2
	eng := engine.New(s.Engine.Shards, cfg)
	// Replicas serve the same shard at the same speed, so the trained
	// per-ISN fleet transfers as-is: no retraining.
	eng.Fleet = s.Engine.Fleet
	pol := core.NewCottage()
	pol.Degraded = core.DegradedConservative

	horizonMS := trace.DurationMS(s.WikiQueries)
	nodes := len(s.Engine.Shards) * 2
	const repairMS = 50

	base := engine.Summarize(eng.Run(pol, s.WikiEval))
	fmt.Fprintf(w, "(3) twin quarantine/repair grid: R=2, %d nodes, %.0fs horizon, repair %d ms\n",
		nodes, horizonMS/1000, repairMS)
	fmt.Fprintf(w, "  baseline (no rot): P@10 %.3f, avg %.2f ms\n", base.MeanPAtK, base.MeanLatency)
	fmt.Fprintf(w, "  %-10s %-9s %4s %5s %5s %9s %7s %8s %7s %8s %9s\n",
		"rot/node/s", "scrub ms", "rot", "q-det", "s-det", "detect ms", "repairs", "mttr ms", "bounce", "P@10", "avg ms")
	for _, rate := range []float64{0.02, 0.1} {
		sched := faults.CorruptionSchedule(2026, nodes, horizonMS, rate)
		for _, epoch := range []float64{0, 2000, 500} {
			eng.Cluster.Rot = sched
			eng.Cluster.ScrubEpochMS = epoch
			eng.Cluster.RepairMS = repairMS
			sm := engine.Summarize(eng.Run(pol, s.WikiEval))
			st := eng.Cluster.IntegrityStats()
			fmt.Fprintf(w, "  %-10.2f %-9.0f %4d %5d %5d %9.1f %7d %8.1f %7d %8.3f %9.2f\n",
				rate, epoch, st.Corruptions, st.QueryDetections, st.ScrubDetections,
				st.MeanDetectionMS, st.Repairs, st.MeanMTTRMS, st.CorruptRejects,
				sm.MeanPAtK, sm.MeanLatency)
			// The invariants the grid exists to demonstrate: rot never
			// loses a query (R=2 failover absorbs every bounce), and with
			// scrubbing + repair on, quality holds near the clean run.
			if sm.FailedFrac > 0 {
				return fmt.Errorf("harness: rot rate %v lost %.4f of queries", rate, sm.FailedFrac)
			}
			if epoch > 0 && sm.MeanPAtK < base.MeanPAtK-0.05 {
				return fmt.Errorf("harness: P@10 %.3f fell >0.05 below clean %.3f (rate %v, scrub %v)",
					sm.MeanPAtK, base.MeanPAtK, rate, epoch)
			}
		}
	}
	return nil
}
