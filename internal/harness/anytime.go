package harness

import (
	"fmt"
	"io"
	"math"

	"cottage/internal/engine"
	"cottage/internal/trace"
)

// FixedBudget broadcasts every query to every ISN under one fixed time
// budget — the simplest budgeted policy, isolating the deadline's effect
// from selection and DVFS so the anytime sweep's quality-vs-deadline
// curve measures exactly one thing: what happens to the hits of ISNs
// that miss the budget (dropped outright vs truncated anytime answers).
type FixedBudget struct{ BudgetMS float64 }

// Name implements engine.Policy.
func (p FixedBudget) Name() string {
	if math.IsInf(p.BudgetMS, 1) {
		return "fixed-inf"
	}
	return fmt.Sprintf("fixed-%gms", p.BudgetMS)
}

// Decide implements engine.Policy.
func (p FixedBudget) Decide(e *engine.Engine, _ trace.Query, _ float64) engine.Decision {
	part := make([]bool, len(e.Shards))
	for i := range part {
		part[i] = true
	}
	return engine.Decision{Participate: part, BudgetMS: p.BudgetMS}
}

// Observe implements engine.Policy.
func (FixedBudget) Observe(float64) {}

// AnytimeBudgets is the deadline ladder the anytime sweep replays, in
// ms. The quick-scale exhaustive latency distribution (Fig. 2a) puts
// most shard services under 10 ms, so the low rungs force real budget
// misses and the top rung (+Inf) recovers exhaustive behaviour. The
// ladder starts at 2 ms: below the cost model's fixed per-query
// overhead (~1.1 ms at the default frequency) no traversal of any kind
// fits, so a 1 ms rung degenerates to zero quality for both protocols.
func AnytimeBudgets() []float64 {
	return []float64{2, 4, 8, 16, 32, math.Inf(1)}
}

// AnytimeSweep replays the evaluation trace under a ladder of fixed
// budgets, twice per rung: once with the classic drop-ISN protocol
// (step 7: stragglers' responses are discarded) and once with anytime
// ISNs (stragglers answer with an exact truncated top-K and a score
// bound). The quality-vs-deadline curves quantify the paper's quality
// cliff — and how much of it the anytime traversal buys back at every
// sub-budget deadline, at identical latency and power.
func AnytimeSweep(s *Setup, w io.Writer) error {
	defer func() { s.Engine.Anytime = false }()
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %9s %9s %9s\n",
		"budget", "drop@10", "any@10", "delta", "dropfrac", "truncfrac", "drop p95", "any p95")
	for _, b := range AnytimeBudgets() {
		pol := FixedBudget{BudgetMS: b}
		s.Engine.Anytime = false
		drop := engine.Summarize(s.Engine.Run(pol, s.WikiEval))
		s.Engine.Anytime = true
		any := engine.Summarize(s.Engine.Run(pol, s.WikiEval))
		label := "inf"
		if !math.IsInf(b, 1) {
			label = fmt.Sprintf("%gms", b)
		}
		fmt.Fprintf(w, "%-10s %9.3f %9.3f %9.3f %9.3f %9.3f %9.2f %9.2f\n",
			label, drop.MeanPAtK, any.MeanPAtK, any.MeanPAtK-drop.MeanPAtK,
			drop.DroppedFrac, any.TruncatedFrac, drop.P95Latency, any.P95Latency)
	}
	return nil
}
