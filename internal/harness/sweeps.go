package harness

import (
	"fmt"
	"io"

	"cottage/internal/baselines"
	"cottage/internal/core"
	"cottage/internal/engine"
	"cottage/internal/faults"
	"cottage/internal/qcache"
	"cottage/internal/trace"
)

// Extras returns the extension experiments that go beyond the paper's
// figures: sensitivity sweeps and robustness studies DESIGN.md §5 calls
// out. They are not part of All() because two of them retrain predictor
// fleets; cottage-bench exposes them individually and under
// `-experiment extras`.
func Extras() []Experiment {
	return []Experiment{
		{"frontier", "Extra: quality/resource frontier of the cutoff threshold", CutoffFrontier},
		{"loadsweep", "Extra: policies under 0.5x-2x load", LoadSweep},
		{"budgetcompare", "Extra: per-query budgets vs fixed-SLA DVFS", BudgetCompare},
		{"qr", "Extra: learned shard-cutoff baseline (QR) vs Taily and Cottage", QRStudy},
		{"caching", "Extra: aggregator result cache composed with each policy", Caching},
		{"heterogeneity", "Extra: a 2.5x straggler ISN (per-ISN predictors absorb it)", Heterogeneity},
		{"allocation", "Extra: topical vs round-robin document allocation", AllocationStudy},
		{"availability", "Extra: latency/quality/power with 0-4 of the ISNs failed", Availability},
		{"replication", "Extra: replication factor (R=1-3) x 0-4 failed replicas (availability, quality, latency, power)", Replication},
		{"overload", "Extra: bounded ISN queues under 1x-4x load (shed rate, served p99, budget inflation)", Overload},
		{"predacc", "Extra: rolling predictor-accuracy tracking (obs twin: latency error %, quality hit rate)", PredictorAccuracy},
		{"anytime", "Extra: anytime truncated answers vs the drop-ISN protocol across a deadline ladder", AnytimeSweep},
		{"autoscale", "Extra: closed-loop capacity planning vs fixed R=1-3 under diurnal and flash-crowd traffic", AutoscaleSweep},
		{"hedging", "Extra: fixed-delay vs predictive hedging against an injected straggler replica", HedgingSweep},
		{"anatomy", "Extra: tail-latency anatomy (per-phase p50/p95/p99 attribution, p99 ownership under anytime/hedging, SLO burn-rate paging demo)", Anatomy},
		{"integrity", "Extra: end-to-end data integrity (bit-flip detection ladder, query-time gate, quarantine/repair economics at R=2)", IntegritySweep},
	}
}

// Availability sweeps node failures across the fleet (0 to 4 of the
// paper's 16 ISNs down, victims picked deterministically and nested so
// each row adds one failure to the last) and reports what each policy
// salvages. Two effects compose: dead shards take their top-K documents
// with them (a quality floor no aggregator can recover), and waiting on
// them costs latency — bounded by the budget when there is one, by the
// failure-detection timeout when there is not. Cottage's degraded
// conservative mode (budget = slowest responder's boosted latency) keeps
// every responding contributor in play when predictions go missing.
func Availability(s *Setup, w io.Writer) error {
	defer s.Engine.Cluster.ClearFaults()
	n := len(s.Engine.Shards)
	maxFailed := 4
	if maxFailed >= n {
		maxFailed = n - 1
	}
	cons := core.NewCottage()
	cons.Degraded = core.DegradedConservative
	policies := []struct {
		label string
		p     engine.Policy
	}{
		{"exhaustive", baselines.Exhaustive{}},
		{"cottage-excl", core.NewCottage()},
		{"cottage-cons", cons},
	}
	fmt.Fprintf(w, "%-8s %-14s %10s %10s %8s %10s %10s\n",
		"failed", "policy", "avg ms", "p95 ms", "P@10", "power W", "failfrac")
	for failed := 0; failed <= maxFailed; failed++ {
		s.Engine.Cluster.ClearFaults()
		for _, isn := range faults.PickVictims(2022, failed, n) {
			s.Engine.Cluster.FailISN(isn)
		}
		for _, pol := range policies {
			sm := engine.Summarize(s.Engine.Run(pol.p, s.WikiEval))
			fmt.Fprintf(w, "%-8d %-14s %10.2f %10.2f %8.3f %10.2f %10.3f\n",
				failed, pol.label, sm.MeanLatency, sm.P95Latency, sm.MeanPAtK,
				sm.AvgPowerW, sm.FailedFrac)
		}
	}
	return nil
}

// Replication crosses the replication factor (R = 1, 2, 3 replicas per
// shard) with 0-4 permanently failed replicas and reports availability
// (share of shard groups with a live replica — a known-dead group is
// excluded at selection time, so its loss shows up as quality, not as
// failed dispatches), quality, latency and power. Failures hit the
// row-0 replica of distinct shards (the same deterministic victims as
// Availability), so at R >= 2 every failed shard keeps a live sibling:
// the replica selector routes around the dead node — zero quality loss,
// only the surviving replica's queueing shows up in latency — while
// R = 1 reproduces the degraded-mode quality floor of the Availability
// sweep. Power scales with R (idle replicas still burn watts):
// replication buys availability with the same currency Cottage saves.
func Replication(s *Setup, w io.Writer) error {
	n := len(s.Engine.Shards)
	maxFailed := 4
	if maxFailed >= n {
		maxFailed = n - 1
	}
	pol := core.NewCottage()
	pol.Degraded = core.DegradedConservative
	fmt.Fprintf(w, "%-4s %-8s %10s %8s %10s %10s %10s %10s\n",
		"R", "failed", "avail", "P@10", "avg ms", "p95 ms", "power W", "failover")
	for _, r := range []int{1, 2, 3} {
		cfg := s.Config.EngineCfg
		cfg.Cluster.Replicas = r
		eng := engine.New(s.Engine.Shards, cfg)
		// Replicas serve the same shard at the same speed, so the trained
		// per-ISN fleet transfers as-is: no retraining.
		eng.Fleet = s.Engine.Fleet
		topo := eng.Cluster.Topo()
		for failed := 0; failed <= maxFailed; failed++ {
			eng.Cluster.ClearFaults()
			for _, sh := range faults.PickVictims(2022, failed, n) {
				eng.Cluster.FailISN(topo.Node(sh, 0))
			}
			sm := engine.Summarize(eng.Run(pol, s.WikiEval))
			avail := 1 - float64(eng.Cluster.FailedShardCount())/float64(n)
			fmt.Fprintf(w, "%-4d %-8d %10.3f %8.3f %10.2f %10.2f %10.2f %10.3f\n",
				r, failed, avail, sm.MeanPAtK, sm.MeanLatency,
				sm.P95Latency, sm.AvgPowerW, sm.FailoverFrac)
		}
	}
	return nil
}

// CutoffFrontier sweeps Cottage's zero-probability cutoff and reports the
// quality / active-ISN / power frontier, quantifying how predictor
// confidence trades resources for P@10. The paper operates at the point
// its 95.7%-accurate predictor allows; this shows where our predictor
// puts the same curve.
func CutoffFrontier(s *Setup, w io.Writer) error {
	fmt.Fprintf(w, "%-8s %8s %8s %10s %10s %10s\n", "cutoff", "P@10", "ISNs", "avg ms", "power W", "C_RES")
	for _, dz := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99} {
		p := &core.Cottage{DropZeroProb: dz, K2ZeroProb: 0.95, Boost: true, Downclock: true, LatencyMargin: 0.5}
		sm := engine.Summarize(s.Engine.Run(p, s.WikiEval))
		fmt.Fprintf(w, "%-8.2f %8.3f %8.2f %10.2f %10.2f %10.0f\n",
			dz, sm.MeanPAtK, sm.MeanISNs, sm.MeanLatency, sm.AvgPowerW, sm.MeanCRES)
	}
	return nil
}

// scaleArrivals clones evaluated queries with arrival times compressed or
// stretched by factor (factor 2 = twice the load).
func scaleArrivals(evs []*engine.Evaluated, factor float64) []*engine.Evaluated {
	out := make([]*engine.Evaluated, len(evs))
	for i, ev := range evs {
		clone := *ev
		clone.Query.ArrivalMS = ev.Query.ArrivalMS / factor
		out[i] = &clone
	}
	return out
}

// LoadSweep replays the Wikipedia trace at half, nominal and double the
// arrival rate. Queueing is where Eq. 2's equivalent latency matters:
// Cottage's advantage should grow with load because it keeps per-ISN
// queues short.
func LoadSweep(s *Setup, w io.Writer) error {
	policies := []engine.Policy{
		baselines.Exhaustive{},
		baselines.NewTaily(),
		core.NewCottage(),
	}
	fmt.Fprintf(w, "%-12s", "policy")
	factors := []float64{0.5, 1, 2}
	for _, f := range factors {
		fmt.Fprintf(w, " %9.1fx-lat %9.1fx-pw", f, f)
	}
	fmt.Fprintln(w)
	for _, p := range policies {
		fmt.Fprintf(w, "%-12s", p.Name())
		for _, f := range factors {
			evs := scaleArrivals(s.WikiEval, f)
			sm := engine.Summarize(s.Engine.Run(p, evs))
			fmt.Fprintf(w, " %13.2f %12.2f", sm.MeanLatency, sm.AvgPowerW)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// subsetQueries bounds the retraining experiments.
func subsetQueries(qs []trace.Query, n int) []trace.Query {
	if len(qs) > n {
		return qs[:n]
	}
	return qs
}

// Heterogeneity makes ISN 0 a 2.5x straggler, retrains the per-ISN
// predictors on the heterogeneous fleet, and compares policies. Because
// every ISN trains its own latency model on its own observed service
// times, Cottage's budget absorbs the slow node — it either boosts it
// into the budget or cuts it when its quality does not justify the wait.
// Latency-blind Taily cannot react.
func Heterogeneity(s *Setup, w io.Writer) error {
	cfg := s.Config.EngineCfg
	cfg.Cluster.SpeedFactors = make([]float64, cfg.NumShards)
	for i := range cfg.Cluster.SpeedFactors {
		cfg.Cluster.SpeedFactors[i] = 1
	}
	cfg.Cluster.SpeedFactors[0] = 2.5

	het := engine.New(s.Engine.Shards, cfg)
	if _, err := het.TrainFleet(subsetQueries(s.TrainQueries, 1200), s.Config.PredictCfg); err != nil {
		return fmt.Errorf("harness: heterogeneity retrain: %w", err)
	}
	hetEvs := het.EvaluateAll(subsetQueries(s.WikiQueries, 2500))
	homEvs := s.WikiEval[:len(hetEvs)]

	fmt.Fprintf(w, "%-12s %16s %16s %14s %14s\n",
		"policy", "homog avg ms", "hetero avg ms", "homog P@10", "hetero P@10")
	for _, p := range []engine.Policy{baselines.Exhaustive{}, baselines.NewTaily(), core.NewCottage()} {
		hom := engine.Summarize(s.Engine.Run(p, homEvs))
		hetSm := engine.Summarize(het.Run(p, hetEvs))
		fmt.Fprintf(w, "%-12s %16.2f %16.2f %14.3f %14.3f\n",
			p.Name(), hom.MeanLatency, hetSm.MeanLatency, hom.MeanPAtK, hetSm.MeanPAtK)
	}
	exh := engine.Summarize(het.Run(baselines.Exhaustive{}, hetEvs))
	cot := engine.Summarize(het.Run(core.NewCottage(), hetEvs))
	fmt.Fprintf(w, "with the straggler, cottage is %.2fx faster than exhaustive (quality %.3f)\n",
		exh.MeanLatency/cot.MeanLatency, cot.MeanPAtK)
	return nil
}

// AllocationStudy rebuilds the corpus with round-robin (source-order)
// allocation and reruns the selective policies. Selective search — and
// Cottage's ISN cutoff — depend on topical skew; with statistically
// identical shards, every shard contributes to most queries and cutting
// is either useless or harmful (Fig. 2b's premise, inverted).
func AllocationStudy(s *Setup, w io.Writer) error {
	rr := engine.New(engine.BuildShardsRoundRobin(s.Corpus, s.Config.EngineCfg), s.Config.EngineCfg)
	if _, err := rr.TrainFleet(subsetQueries(s.TrainQueries, 1200), s.Config.PredictCfg); err != nil {
		return fmt.Errorf("harness: allocation retrain: %w", err)
	}
	rrEvs := rr.EvaluateAll(subsetQueries(s.WikiQueries, 2500))
	topEvs := s.WikiEval[:len(rrEvs)]

	fmt.Fprintf(w, "%-12s %14s %14s %12s %12s\n",
		"policy", "topical ISNs", "roundrob ISNs", "topical P@10", "roundrob P@10")
	for _, p := range []engine.Policy{baselines.NewTaily(), core.NewCottage()} {
		top := engine.Summarize(s.Engine.Run(p, topEvs))
		rrS := engine.Summarize(rr.Run(p, rrEvs))
		fmt.Fprintf(w, "%-12s %14.2f %14.2f %12.3f %12.3f\n",
			p.Name(), top.MeanISNs, rrS.MeanISNs, top.MeanPAtK, rrS.MeanPAtK)
	}
	return nil
}

// BudgetCompare contrasts Cottage's per-query budgets with the class of
// power managers the paper positions itself against (Pegasus, TimeTrader,
// Rubik — Section VI): a fixed a-priori SLA plus DVFS slack reclamation.
// No single SLA matches Cottage on both sides: tight SLAs lose quality,
// loose SLAs lose latency and power.
func BudgetCompare(s *Setup, w io.Writer) error {
	fmt.Fprintf(w, "%-16s %10s %10s %8s %8s\n", "policy", "avg ms", "p95 ms", "P@10", "power W")
	for _, sla := range []float64{8, 15, 25, 40} {
		p := &baselines.FixedSLA{BudgetMS: sla, LatencyMargin: 0.5}
		sm := engine.Summarize(s.Engine.Run(p, s.WikiEval))
		fmt.Fprintf(w, "sla-dvfs %4.0fms %10.2f %10.2f %8.3f %8.2f\n",
			sla, sm.MeanLatency, sm.P95Latency, sm.MeanPAtK, sm.AvgPowerW)
	}
	sm := engine.Summarize(s.Engine.Run(core.NewCottage(), s.WikiEval))
	fmt.Fprintf(w, "%-16s %10.2f %10.2f %8.3f %8.2f\n",
		"cottage", sm.MeanLatency, sm.P95Latency, sm.MeanPAtK, sm.AvgPowerW)
	return nil
}

// Caching measures the aggregator-side LRU result cache (reference [1] of
// the paper) composed with each policy: Zipfian traces repeat heavily, so
// even a small cache answers a large share of queries without touching an
// ISN, compounding every policy's latency and power savings.
func Caching(s *Setup, w io.Writer) error {
	defer func() { s.Engine.Cache = nil }()
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s %10s\n",
		"policy", "uncached ms", "cached ms", "uncached W", "cached W", "hit rate")
	for _, p := range []engine.Policy{baselines.Exhaustive{}, core.NewCottage()} {
		s.Engine.Cache = nil
		plain := engine.Summarize(s.Engine.Run(p, s.WikiEval))
		s.Engine.Cache = qcache.NewLRU(2048)
		cached := s.Engine.Run(p, s.WikiEval)
		cs := engine.Summarize(cached)
		fmt.Fprintf(w, "%-12s %12.2f %12.2f %12.2f %12.2f %10.3f\n",
			p.Name(), plain.MeanLatency, cs.MeanLatency, plain.AvgPowerW, cs.AvgPowerW,
			cached.CacheHitRate)
	}
	return nil
}

// QRStudy trains and evaluates the learned-cutoff baseline (Mohammad et
// al., SIGIR'18 — the paper's reference [19]): same shard ranking as
// Taily, but a trained model picks the per-query cutoff depth instead of
// a fixed threshold. It improves on Taily's fixed threshold yet remains
// latency-blind, so Cottage still wins the response-time and power
// columns.
func QRStudy(s *Setup, w io.Writer) error {
	qr, err := baselines.NewQR(s.Engine, s.TrainData, s.TrainQueries, baselines.DefaultQRConfig())
	if err != nil {
		return fmt.Errorf("harness: training QR: %w", err)
	}
	fmt.Fprintf(w, "%-12s %10s %8s %8s %10s\n", "policy", "avg ms", "P@10", "ISNs", "power W")
	for _, p := range []engine.Policy{baselines.NewTaily(), qr, core.NewCottage()} {
		sm := engine.Summarize(s.Engine.Run(p, s.WikiEval))
		fmt.Fprintf(w, "%-12s %10.2f %8.3f %8.2f %10.2f\n",
			p.Name(), sm.MeanLatency, sm.MeanPAtK, sm.MeanISNs, sm.AvgPowerW)
	}
	return nil
}
