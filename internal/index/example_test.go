package index_test

import (
	"fmt"

	"cottage/internal/index"
)

// Example indexes three tiny documents and inspects a term's statistics.
func Example() {
	b := index.NewBuilder(0, index.DefaultBM25(), 10)
	b.AddText(1, "the quick brown fox")
	b.AddText(2, "the lazy dog sleeps")
	b.AddText(3, "the quick dog runs quick")
	shard := b.Finalize()

	ti, _ := shard.Lookup("quick")
	fmt.Println("documents with 'quick':", ti.Stats.PostingLen)
	fmt.Println("max tf:", maxTF(ti))
	// Output:
	// documents with 'quick': 2
	// max tf: 2
}

func maxTF(ti *index.TermInfo) uint32 {
	var m uint32
	for _, p := range ti.AllPostings() {
		if p.TF > m {
			m = p.TF
		}
	}
	return m
}

// ExampleEncodePostings shows the compressed on-disk form of a postings
// list.
func ExampleEncodePostings() {
	ps := []index.Posting{{Doc: 3, TF: 1}, {Doc: 7, TF: 2}, {Doc: 8, TF: 1}}
	blob := index.EncodePostings(ps)
	back, _ := index.DecodePostings(blob, len(ps))
	fmt.Println("bytes:", len(blob), "round-trip ok:", back[2] == ps[2])
	// Output:
	// bytes: 6 round-trip ok: true
}
