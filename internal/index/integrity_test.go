package index

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// multiBlockTerm returns a term with at least two block-max blocks, so
// corruption tests can pin block-level localization.
func multiBlockTerm(t *testing.T, s *Shard) *TermInfo {
	t.Helper()
	for i := range s.Terms {
		if len(s.Terms[i].Blocks) > 1 {
			return &s.Terms[i]
		}
	}
	t.Fatal("no multi-block term in test shard")
	return nil
}

// TestSealedShardVerifiesClean: a freshly finalized shard passes every
// verifier — eager, per-block, and query-time — with zero mismatches.
func TestSealedShardVerifiesClean(t *testing.T) {
	s := buildTestShard(t)
	if !s.HasChecksums() {
		t.Fatal("Finalize did not seal integrity metadata")
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatalf("clean shard failed VerifyIntegrity: %v", err)
	}
	if err := s.VerifyQuery([]string{"alpha", "beta", "no-such-term"}); err != nil {
		t.Fatalf("clean shard failed VerifyQuery: %v", err)
	}
	for g := 0; g < s.TotalBlocks(); g++ {
		if err := s.VerifyBlockAt(g); err != nil {
			t.Fatalf("clean shard failed VerifyBlockAt(%d): %v", g, err)
		}
	}
	if s.CorruptBlocks() != 0 {
		t.Fatalf("clean shard reports %d corrupt blocks", s.CorruptBlocks())
	}
}

// TestBlockCorruptionLocalized: flipping one posting in block b of term
// T yields a CorruptionError naming exactly (shard, T, b) — from the
// per-block verifier, the query-time gate, and the whole-shard pass —
// and the verdict is memoized.
func TestBlockCorruptionLocalized(t *testing.T) {
	s := buildTestShard(t)
	ti := multiBlockTerm(t, s)
	ti.BlockData(1)[0] ^= 1 // bit-rot inside block 1's packed bytes
	s.ResetVerification()   // new scrub epoch: drop the trust memo

	err := s.VerifyBlock(ti, 1)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("VerifyBlock: got %v, want *CorruptionError", err)
	}
	if ce.Shard != s.ID || ce.Term != ti.Text || ce.Block != 1 {
		t.Fatalf("corruption mislocalized: %+v", ce)
	}
	if !IsCorruption(err) || !IsCorruption(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("IsCorruption failed on a (wrapped) CorruptionError")
	}
	// Sibling block 0 is untouched and must stay verifiable.
	if err := s.VerifyBlock(ti, 0); err != nil {
		t.Fatalf("clean sibling block failed: %v", err)
	}
	// Memoized: the verdict persists and the counter sticks at one.
	if err := s.VerifyBlock(ti, 1); !IsCorruption(err) {
		t.Fatalf("memoized re-verify: got %v", err)
	}
	if s.CorruptBlocks() != 1 {
		t.Fatalf("CorruptBlocks = %d, want 1", s.CorruptBlocks())
	}
	// Corruption is sticky across scrub epochs and never double-counted.
	s.ResetVerification()
	if err := s.VerifyBlock(ti, 1); !IsCorruption(err) {
		t.Fatalf("post-reset re-verify: got %v", err)
	}
	if s.CorruptBlocks() != 1 {
		t.Fatalf("CorruptBlocks after reset = %d, want 1", s.CorruptBlocks())
	}
	// The query-time gate refuses to let the term be scored.
	if err := s.VerifyQuery([]string{ti.Text}); !IsCorruption(err) {
		t.Fatalf("VerifyQuery: got %v, want corruption", err)
	}
	// Other terms still answer queries (corruption stays localized).
	for i := range s.Terms {
		if s.Terms[i].Text != ti.Text {
			if err := s.VerifyQuery([]string{s.Terms[i].Text}); err != nil {
				t.Fatalf("unrelated term %q blocked: %v", s.Terms[i].Text, err)
			}
		}
	}
	// Validate surfaces the same localized error.
	if err := s.Validate(); !IsCorruption(err) {
		t.Fatalf("Validate: got %v, want corruption", err)
	}
}

// TestDigestCatchesMetadataCorruption: rot outside the posting blocks
// (doc lengths, global IDs, the sums themselves) fails the whole-shard
// digest with Block = -1.
func TestDigestCatchesMetadataCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(s *Shard)
	}{
		{"doc length", func(s *Shard) { s.DocLens[7]++ }},
		{"global id", func(s *Shard) { s.GlobalIDs[3] ^= 1 }},
		{"stored sum", func(s *Shard) { s.Terms[0].Sums[0] ^= 1 }},
		{"term stats", func(s *Shard) { s.Terms[0].Stats.KthScore *= 1.001 }},
		{"block bound", func(s *Shard) { s.Terms[0].Blocks[0].Max *= 1.001 }},
		{"bm25 params", func(s *Shard) { s.BM25.B += 0.01 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := buildTestShard(t)
			c.mutate(s)
			err := s.VerifyIntegrity()
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				// A mutated block sum is caught either by the digest or by
				// the block whose sum changed — both are CorruptionErrors.
				t.Fatalf("%s: got %v, want *CorruptionError", c.name, err)
			}
			if !strings.Contains(err.Error(), "mismatch") {
				t.Fatalf("%s: error %q not a mismatch", c.name, err)
			}
		})
	}
}

// TestV3ShardStillLoads: a pre-checksum (wire v3) file loads, gets its
// integrity metadata synthesized on upgrade, and is fully scrubbable
// afterwards — the back-compat contract for existing shard files.
func TestV3ShardStillLoads(t *testing.T) {
	s := buildTestShard(t)
	var buf bytes.Buffer
	if err := s.EncodeLegacy(&buf, wireVersionV3); err != nil {
		t.Fatal(err)
	}
	up, err := ReadShard(&buf)
	if err != nil {
		t.Fatalf("v3 shard failed to load: %v", err)
	}
	if !up.HasChecksums() {
		t.Fatal("upgrade did not synthesize checksums")
	}
	if err := up.VerifyIntegrity(); err != nil {
		t.Fatalf("upgraded shard failed verification: %v", err)
	}
	if up.TotalBlocks() != s.TotalBlocks() {
		t.Fatalf("upgraded shard has %d blocks, want %d", up.TotalBlocks(), s.TotalBlocks())
	}
	// Repacking the legacy postings and resealing is deterministic, so
	// the upgraded shard's digest matches the native v5 one.
	if up.Digest != s.Digest {
		t.Fatalf("synthesized digest %08x != native %08x", up.Digest, s.Digest)
	}
}

// TestV4FileRotDetectedAtLoad: at-rest corruption of a stored v4 file —
// a posting changed without resealing — is caught eagerly by ReadShard
// as a localized CorruptionError (verified against the file's own
// legacy checksums, before any repacking), never served.
func TestV4FileRotDetectedAtLoad(t *testing.T) {
	s := buildTestShard(t)
	w := legacyWireOf(t, s, wireVersionV4)
	// Rot one posting of term 0 on "disk": decode the blob, flip a TF,
	// re-encode. The stored checksums are left as written.
	ps, err := DecodePostings(w.PostingBlobs[0], w.PostingCounts[0])
	if err != nil {
		t.Fatal(err)
	}
	ps[0].TF += 3
	w.PostingBlobs[0] = EncodePostings(ps)
	_, err = readWire(t, w)
	if !IsCorruption(err) {
		t.Fatalf("rotted v4 file loaded: %v", err)
	}
	var ce *CorruptionError
	errors.As(err, &ce)
	if ce.Term != w.TermTexts[0] || ce.Block != 0 {
		t.Fatalf("rot mislocalized: %+v", ce)
	}
}

// TestV4CleanFileUpgrades: an intact v4 file loads, verifies against
// its legacy metadata, and comes out repacked with v5 integrity state
// identical to a native build's.
func TestV4CleanFileUpgrades(t *testing.T) {
	s := buildTestShard(t)
	var buf bytes.Buffer
	if err := s.EncodeLegacy(&buf, wireVersionV4); err != nil {
		t.Fatal(err)
	}
	up, err := ReadShard(&buf)
	if err != nil {
		t.Fatalf("v4 shard failed to load: %v", err)
	}
	if up.Digest != s.Digest {
		t.Fatalf("upgraded digest %08x != native %08x", up.Digest, s.Digest)
	}
	for i := range s.Terms {
		if !bytes.Equal(up.Terms[i].Packed.Data, s.Terms[i].Packed.Data) {
			t.Fatalf("term %q repacked differently from native build", s.Terms[i].Text)
		}
		if up.Terms[i].Blocks[0].QMax != s.Terms[i].Blocks[0].QMax {
			t.Fatalf("term %q requantized differently from native build", s.Terms[i].Text)
		}
	}
}

// TestV4ChecksumArrayMismatchRejected: a v4 file whose checksum arrays
// do not line up with its terms is structurally invalid.
func TestV4ChecksumArrayMismatchRejected(t *testing.T) {
	s := buildTestShard(t)
	w := legacyWireOf(t, s, wireVersionV4)
	w.BlockSums = w.BlockSums[:1]
	if _, err := readWire(t, w); err == nil || !strings.Contains(err.Error(), "checksum arrays") {
		t.Fatalf("got %v, want checksum-array mismatch", err)
	}
}

// TestBlockAddressing: the global block index space tiles the shard
// exactly — BlockAt inverts the (term, block) → global mapping, and
// BlockBytes sums to the shard's canonical posting bytes.
func TestBlockAddressing(t *testing.T) {
	s := buildTestShard(t)
	g := 0
	total := 0
	for i := range s.Terms {
		ti := &s.Terms[i]
		for bi := range ti.Blocks {
			gotTi, gotBi := s.BlockAt(g)
			if gotTi != ti || gotBi != bi {
				t.Fatalf("BlockAt(%d) = (%q, %d), want (%q, %d)", g, gotTi.Text, gotBi, ti.Text, bi)
			}
			total += s.BlockBytes(g)
			g++
		}
	}
	if g != s.TotalBlocks() {
		t.Fatalf("walked %d blocks, TotalBlocks says %d", g, s.TotalBlocks())
	}
	if want := s.PostingBytes(); total != want {
		t.Fatalf("sum of BlockBytes %d != PostingBytes %d", total, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BlockAt out of range did not panic")
		}
	}()
	s.BlockAt(s.TotalBlocks())
}

// TestEncodeSealsUnsealedShard: a hand-constructed (never finalized)
// shard is sealed on first Encode, so no v4 file lacks checksums.
func TestEncodeSealsUnsealedShard(t *testing.T) {
	s := buildTestShard(t)
	s.integ = nil // simulate a legacy in-memory build
	s.Digest = 0
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var w shardWire
	if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
		t.Fatal(err)
	}
	if w.Version != wireVersion || w.Digest == 0 || len(w.BlockSums) != len(w.TermTexts) {
		t.Fatalf("Encode wrote an unsealed file: version %d digest %08x sums %d",
			w.Version, w.Digest, len(w.BlockSums))
	}
}

// TestUnsealedShardSkipsVerification: verification on a never-sealed
// in-memory shard is a clean no-op (legacy builds keep working).
func TestUnsealedShardSkipsVerification(t *testing.T) {
	s := buildTestShard(t)
	s.integ = nil
	if s.HasChecksums() || s.TotalBlocks() != 0 || s.CorruptBlocks() != 0 {
		t.Fatal("unsealed shard claims integrity state")
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyQuery([]string{"alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyBlock(&s.Terms[0], 0); err != nil {
		t.Fatal(err)
	}
}

// TestScrubberWalkFindsRot: walking every global block (the scrubber's
// iteration pattern) finds a mid-shard corruption exactly once.
func TestScrubberWalkFindsRot(t *testing.T) {
	s := buildTestShard(t)
	ti := multiBlockTerm(t, s)
	ti.BlockData(1)[3] ^= 4
	s.ResetVerification()

	found := 0
	for g := 0; g < s.TotalBlocks(); g++ {
		if err := s.VerifyBlockAt(g); err != nil {
			if !IsCorruption(err) {
				t.Fatalf("block %d: %v", g, err)
			}
			found++
		}
	}
	if found != 1 {
		t.Fatalf("scrub walk found %d corrupt blocks, want 1", found)
	}
	if s.CorruptBlocks() != 1 {
		t.Fatalf("CorruptBlocks = %d, want 1", s.CorruptBlocks())
	}
}

// TestRepairBySwapClearsState: replacing the shard object with a clean
// re-read (the repair path) yields a shard with fresh verification
// state — the in-memory analogue of re-admitting a repaired replica.
func TestRepairBySwapClearsState(t *testing.T) {
	s := buildTestShard(t)
	var pristine bytes.Buffer
	if err := s.Encode(&pristine); err != nil {
		t.Fatal(err)
	}
	ti := multiBlockTerm(t, s)
	ti.BlockData(0)[0] ^= 1
	s.ResetVerification()
	if err := s.VerifyQuery([]string{ti.Text}); !IsCorruption(err) {
		t.Fatalf("corruption not detected: %v", err)
	}
	repaired, err := ReadShard(&pristine)
	if err != nil {
		t.Fatalf("repair source failed: %v", err)
	}
	if err := repaired.VerifyIntegrity(); err != nil {
		t.Fatalf("repaired shard dirty: %v", err)
	}
	if repaired.CorruptBlocks() != 0 {
		t.Fatal("repaired shard inherited corruption state")
	}
}

// BenchmarkVerifyQueryWarm measures the steady-state query-time cost of
// the integrity gate: memoized verification is one atomic load per
// touched block, so it must be noise against evaluation itself.
func BenchmarkVerifyQueryWarm(b *testing.B) {
	s := buildTestShard(b)
	terms := []string{"alpha", "beta", "gamma"}
	if err := s.VerifyQuery(terms); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.VerifyQuery(terms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealIntegrity is the one-time load/build cost of checksumming
// a shard end to end (the v4 load path pays this once per shard).
func BenchmarkSealIntegrity(b *testing.B) {
	s := buildTestShard(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SealIntegrity()
	}
}

// benchWireBytes encodes the benchmark shard at a given wire version.
// Legacy versions go through EncodeLegacy, reproducing genuine old
// files.
func benchWireBytes(b *testing.B, version int) []byte {
	b.Helper()
	s := buildTestShard(b)
	var buf bytes.Buffer
	var err error
	if version == wireVersion {
		err = s.Encode(&buf)
	} else {
		err = s.EncodeLegacy(&buf, version)
	}
	if err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkReadShardV5 vs BenchmarkReadShardV3 pins the load-path cost
// of the format upgrade: v5 adopts the packed payloads as-is and
// verifies them, while v3 pays varint decode plus repack plus reseal on
// upgrade.
func BenchmarkReadShardV5(b *testing.B) {
	data := benchWireBytes(b, wireVersion)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadShard(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadShardV3(b *testing.B) {
	data := benchWireBytes(b, wireVersionV3)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadShard(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
