package index

import (
	"bytes"
	"testing"

	"cottage/internal/faults"
)

// fuzzSeedShard encodes the standard test shard to current (v5) wire
// bytes once per fuzz process.
func fuzzSeedShard(f *testing.F) []byte {
	f.Helper()
	s := buildTestShard(f)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedLegacy encodes the test shard in an old wire format to seed
// the legacy load paths (v4 verify-then-repack, v3 upgrade).
func fuzzSeedLegacy(f *testing.F, version int) []byte {
	f.Helper()
	s := buildTestShard(f)
	var buf bytes.Buffer
	if err := s.EncodeLegacy(&buf, version); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzShardDecode throws arbitrary bytes at the shard decode path. The
// contract under fuzzing: ReadShard never panics, and anything it
// accepts is fully intact — the stored digest and every block checksum
// verify, and the structural invariants hold — so no input can smuggle
// a corrupted or inconsistent shard past the load gate. Seeds cover a
// valid v5 file, truncations, bit-flip rot (the at-rest corruption the
// checksums exist for), and v4/v3 files exercising the legacy paths.
func FuzzShardDecode(f *testing.F) {
	valid := fuzzSeedShard(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:11])
	for _, n := range []int{1, 16, 256} {
		rotted := bytes.Clone(valid)
		faults.FlipBits(rotted, n, uint64(77+n))
		f.Add(rotted)
	}
	f.Add([]byte{})
	f.Add(fuzzSeedLegacy(f, wireVersionV3))
	f.Add(fuzzSeedLegacy(f, wireVersionV4))
	rottedV4 := fuzzSeedLegacy(f, wireVersionV4)
	faults.FlipBits(rottedV4, 16, 93)
	f.Add(rottedV4)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadShard(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: the eager load gate has already verified checksums and
		// structure. Both must agree on re-check from a cold memo.
		s.ResetVerification()
		if err := s.VerifyIntegrity(); err != nil {
			t.Fatalf("accepted shard fails re-verification: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted shard fails validation: %v", err)
		}
		// And it must survive a round trip bit-identically stable: encode
		// of the decode re-loads clean with the same digest.
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := ReadShard(&buf)
		if err != nil {
			t.Fatalf("re-encoded shard rejected: %v", err)
		}
		if s2.Digest != s.Digest {
			t.Fatalf("digest drifted across round trip: %08x -> %08x", s.Digest, s2.Digest)
		}
	})
}

// packedFuzzTerm builds a one-term fixture whose packed regions the
// fuzzer mutates directly.
func packedFuzzTerm(f *testing.F) (*Shard, []Posting) {
	f.Helper()
	b := NewBuilder(0, DefaultBM25(), 10)
	ps := make([]Posting, 0, 3*BlockSize+7)
	doc := uint32(0)
	for d := 0; d < 3*BlockSize+7; d++ {
		ps = append(ps, Posting{Doc: doc, TF: uint32(1 + d%9)})
		doc += uint32(1 + d%5)
	}
	for _, p := range ps {
		for int(p.Doc) >= len(b.docLens) {
			b.docLens = append(b.docLens, 30)
			b.globals = append(b.globals, int64(len(b.globals)))
			b.totalLen += 30
		}
	}
	idx := int32(0)
	b.dict["t"] = idx
	b.terms = append(b.terms, "t")
	b.postings = append(b.postings, ps)
	b.positions = append(b.positions, nil)
	s := b.Finalize()
	if err := s.Validate(); err != nil {
		f.Fatal(err)
	}
	return s, ps
}

// FuzzPackedPostingsDecode attacks the packed layer below the wire
// format: arbitrary payload bytes and overlay geometry (posting count,
// offsets, widths) for one term. The contract: checkPackedGeometry
// either rejects, or every block decodes without panicking and the
// the validation pipeline classifies the result — geometry that lies
// about its sizes must never reach the decoder. Seeds cover the valid
// packing, truncations, over-long payloads, and width overflows.
func FuzzPackedPostingsDecode(f *testing.F) {
	s, _ := packedFuzzTerm(f)
	ti := &s.Terms[0]
	valid := append([]byte(nil), ti.Packed.Data...)
	f.Add(len(valid), int64(ti.Packed.N), valid, encodeBlocksFuzz(ti.Blocks))
	f.Add(len(valid)-17, int64(ti.Packed.N), valid[:len(valid)-17], encodeBlocksFuzz(ti.Blocks))
	f.Add(len(valid)+64, int64(ti.Packed.N), append(bytes.Clone(valid), make([]byte, 64)...), encodeBlocksFuzz(ti.Blocks))
	wide := append([]Block(nil), ti.Blocks...)
	wide[0].DocW = 200
	f.Add(len(valid), int64(ti.Packed.N), valid, encodeBlocksFuzz(wide))
	f.Add(0, int64(-3), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, dataLen int, n int64, data []byte, rawBlocks []byte) {
		blocks := decodeBlocksFuzz(rawBlocks)
		if dataLen >= 0 && dataLen <= len(data) {
			data = data[:dataLen]
		}
		fz := &TermInfo{Text: "t", Packed: PackedPostings{N: int(n), Data: data}, Blocks: blocks}
		if err := fz.checkPackedGeometry(); err != nil {
			return // rejected before any decode: the safe outcome
		}
		// Geometry accepted: every block must decode in bounds.
		var docs, tfs [BlockSize]uint32
		total := 0
		for bi := range fz.Blocks {
			cnt := fz.DecodeBlockInto(bi, &docs, &tfs)
			if cnt < 1 || cnt > BlockSize {
				t.Fatalf("block %d decodes %d postings", bi, cnt)
			}
			total += cnt
		}
		if total != fz.Packed.N {
			t.Fatalf("blocks decode %d postings, geometry says %d", total, fz.Packed.N)
		}
		if got := fz.AllPostings(); len(got) != fz.Packed.N {
			t.Fatalf("AllPostings returned %d of %d", len(got), fz.Packed.N)
		}
	})
}

// encodeBlocksFuzz flattens a Block overlay into bytes the fuzzer can
// mutate structurally (16 bytes per block, little endian).
func encodeBlocksFuzz(blocks []Block) []byte {
	out := make([]byte, 0, 16*len(blocks))
	for _, b := range blocks {
		var rec [16]byte
		putU32(rec[0:], b.MaxDoc)
		putU32(rec[4:], b.Off)
		rec[8] = b.DocW
		rec[9] = b.TFW
		rec[10] = b.QMax
		out = append(out, rec[:]...)
	}
	return out
}

func decodeBlocksFuzz(raw []byte) []Block {
	blocks := make([]Block, 0, len(raw)/16)
	for len(raw) >= 16 {
		blocks = append(blocks, Block{
			MaxDoc: getU32(raw[0:]),
			Off:    getU32(raw[4:]),
			DocW:   raw[8],
			TFW:    raw[9],
			QMax:   raw[10],
		})
		raw = raw[16:]
	}
	return blocks
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
