package index

import (
	"bytes"
	"encoding/gob"
	"testing"

	"cottage/internal/faults"
)

// fuzzSeedShard encodes the standard test shard to v4 wire bytes once
// per fuzz process.
func fuzzSeedShard(f *testing.F) []byte {
	f.Helper()
	s := buildTestShard(f)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedV3 encodes the test shard as a pre-checksum v3 file (no
// sums, no digest) to seed the upgrade path.
func fuzzSeedV3(f *testing.F) []byte {
	f.Helper()
	data := fuzzSeedShard(f)
	var w shardWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		f.Fatal(err)
	}
	w.Version = wireVersionV3
	w.BlockSums = nil
	w.Digest = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzShardDecodeV4 throws arbitrary bytes at the shard decode path.
// The contract under fuzzing: ReadShard never panics, and anything it
// accepts is fully intact — the stored digest and every block checksum
// verify, and the structural invariants hold — so no input can smuggle
// a corrupted or inconsistent shard past the load gate. Seeds cover a
// valid v4 file, truncations, bit-flip rot (the at-rest corruption the
// checksums exist for), and a v3 file exercising the upgrade path.
func FuzzShardDecodeV4(f *testing.F) {
	valid := fuzzSeedShard(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:11])
	for _, n := range []int{1, 16, 256} {
		rotted := bytes.Clone(valid)
		faults.FlipBits(rotted, n, uint64(77+n))
		f.Add(rotted)
	}
	f.Add([]byte{})
	f.Add(fuzzSeedV3(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadShard(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: the eager load gate has already verified checksums and
		// structure. Both must agree on re-check from a cold memo.
		s.ResetVerification()
		if err := s.VerifyIntegrity(); err != nil {
			t.Fatalf("accepted shard fails re-verification: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted shard fails validation: %v", err)
		}
		// And it must survive a round trip bit-identically stable: encode
		// of the decode re-loads clean with the same digest.
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := ReadShard(&buf)
		if err != nil {
			t.Fatalf("re-encoded shard rejected: %v", err)
		}
		if s2.Digest != s.Digest {
			t.Fatalf("digest drifted across round trip: %08x -> %08x", s.Digest, s2.Digest)
		}
	})
}
