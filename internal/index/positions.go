package index

import "fmt"

// Positional indexing is opt-in: a Builder created with NewPositional (or
// fed through AddTokens after EnablePositions) records, for every
// posting, the token offsets at which the term occurs. Positions enable
// phrase queries (search.Phrase) at the cost of roughly doubling index
// size, so the synthetic-corpus experiments — which never issue phrase
// queries — leave it off.

// EnablePositions switches the builder to positional mode. It must be
// called before the first document is added, and positional documents
// must be added with AddTokens (bag-of-words Add has no ordering
// information).
func (b *Builder) EnablePositions() {
	if len(b.docLens) > 0 {
		panic("index: EnablePositions after documents were added")
	}
	b.positional = true
}

// Positional reports whether the builder records positions.
func (b *Builder) Positional() bool { return b.positional }

// AddTokens appends one document as an ordered token sequence, recording
// term positions when the builder is positional.
func (b *Builder) AddTokens(globalID int64, tokens []string) {
	if b.sealed {
		panic("index: AddTokens after Finalize")
	}
	local := uint32(len(b.docLens))
	b.docLens = append(b.docLens, uint32(len(tokens)))
	b.globals = append(b.globals, globalID)
	b.totalLen += uint64(len(tokens))

	// Group positions per term in one pass.
	perTerm := make(map[string][]uint32)
	for pos, tok := range tokens {
		perTerm[tok] = append(perTerm[tok], uint32(pos))
	}
	for text, positions := range perTerm {
		idx, ok := b.dict[text]
		if !ok {
			idx = int32(len(b.terms))
			b.dict[text] = idx
			b.terms = append(b.terms, text)
			b.postings = append(b.postings, nil)
			b.positions = append(b.positions, nil)
		}
		b.postings[idx] = append(b.postings[idx], Posting{Doc: local, TF: uint32(len(positions))})
		if b.positional {
			for int(idx) >= len(b.positions) {
				b.positions = append(b.positions, nil)
			}
			b.positions[idx] = append(b.positions[idx], positions)
		}
	}
}

// HasPositions reports whether the shard carries positional data.
func (s *Shard) HasPositions() bool {
	for i := range s.Terms {
		if s.Terms[i].Positions != nil {
			return true
		}
	}
	return false
}

// validatePositions checks positional invariants for one term, decoding
// the packed term frequencies block by block to cross-check list
// lengths. Callers run it only after checkPackedGeometry has accepted
// the term.
func validatePositions(ti *TermInfo) error {
	if ti.Positions == nil {
		return nil
	}
	if len(ti.Positions) != ti.Packed.N {
		return fmt.Errorf("index: term %q has %d position lists for %d postings",
			ti.Text, len(ti.Positions), ti.Packed.N)
	}
	var docs, tfs [BlockSize]uint32
	for bi := range ti.Blocks {
		n := ti.DecodeBlockInto(bi, &docs, &tfs)
		for j := 0; j < n; j++ {
			i := bi*BlockSize + j
			ps := ti.Positions[i]
			if len(ps) != int(tfs[j]) {
				return fmt.Errorf("index: term %q posting %d: %d positions for tf %d",
					ti.Text, i, len(ps), tfs[j])
			}
			for p := 1; p < len(ps); p++ {
				if ps[p] <= ps[p-1] {
					return fmt.Errorf("index: term %q posting %d: positions not increasing", ti.Text, i)
				}
			}
		}
	}
	return nil
}
