package index

import (
	"container/heap"
	"math"
	"sort"

	"cottage/internal/stats"
)

// TermStats holds every index-time statistic the Cottage predictors need.
// Rows 1–10 of Table I and all of Table II are derived from these fields
// (see internal/features). The statistics describe the distribution of the
// term's BM25 scores across its postings, evaluated in document order —
// the same order a document-at-a-time evaluator visits them, which is why
// the "local maxima" counts are meaningful proxies for dynamic-pruning
// work (Section III-C of the paper).
type TermStats struct {
	// PostingLen is the number of documents containing the term (the
	// paper's "posting list length", Table I row 11 / Table II row 1).
	PostingLen int
	// DF-based inverse document frequency, ln(1+(N-df+0.5)/(df+0.5)).
	IDF float64

	// Score distribution summary (Table I rows 1–9).
	MinScore  float64
	Q1        float64
	Mean      float64
	Median    float64
	GeoMean   float64
	HarmMean  float64
	Q3        float64
	KthScore  float64 // K-th highest score; docs above it are "in the top-K"
	MaxScore  float64
	Variance  float64
	SumScore  float64 // running moments, kept for Taily's Gamma fit
	SumScore2 float64

	// Dynamic-pruning workload proxies (Table II).
	DocsEverInTopK     int // heap insertions during a single-term top-K scan
	NumLocalMaxima     int // local peaks of the score sequence in doc order
	NumMaximaAboveMean int
	NumMaxScore        int     // postings attaining the maximum score
	DocsWithin5OfMax   int     // scores within 5% of the max
	DocsWithin5OfKth   int     // scores within 5% of the K-th score
	EstMaxScore        float64 // cheap upper-bound approximation of MaxScore
}

// computeTermStats evaluates the term's score over every posting (exactly
// what the indexing phase of the paper does) and summarizes. It runs on
// the builder's flat postings, before they are packed; the materialized
// per-posting scores are returned alongside the statistics so Finalize
// can build the block-max overlay from the same values.
func computeTermStats(s *Shard, ps []Posting, k int) (TermStats, []float64) {
	df := len(ps)
	idf := math.Log(1 + (float64(s.NumDocs)-float64(df)+0.5)/(float64(df)+0.5))

	scores := make([]float64, df)
	maxTF := uint32(0)
	for i, p := range ps {
		scores[i] = s.BM25.Score(idf, p.TF, s.DocLens[p.Doc], s.AvgDocLen)
		if p.TF > maxTF {
			maxTF = p.TF
		}
	}

	st := TermStats{PostingLen: df, IDF: idf}
	sum, sum2 := 0.0, 0.0
	for _, sc := range scores {
		sum += sc
		sum2 += sc * sc
	}
	st.SumScore, st.SumScore2 = sum, sum2

	sorted := make([]float64, df)
	copy(sorted, scores)
	sort.Float64s(sorted)
	st.MinScore = sorted[0]
	st.MaxScore = sorted[df-1]
	st.Q1 = stats.PercentileSorted(sorted, 25)
	st.Median = stats.PercentileSorted(sorted, 50)
	st.Q3 = stats.PercentileSorted(sorted, 75)
	st.Mean = sum / float64(df)
	st.Variance = sum2/float64(df) - st.Mean*st.Mean
	if st.Variance < 0 {
		st.Variance = 0 // numerical noise on constant score lists
	}
	st.GeoMean = stats.GeometricMean(sorted)
	st.HarmMean = stats.HarmonicMean(sorted)

	// K-th highest score (the full K-th if the list is long enough,
	// otherwise the smallest score — everything is "in the top-K").
	if df >= k {
		st.KthScore = sorted[df-k]
	} else {
		st.KthScore = sorted[0]
	}

	// Counts within 5% bands.
	maxBand := st.MaxScore * 0.95
	kthBand := st.KthScore * 0.95
	for _, sc := range scores {
		if sc >= maxBand {
			st.DocsWithin5OfMax++
		}
		if sc >= kthBand {
			st.DocsWithin5OfKth++
		}
		if sc >= st.MaxScore-1e-12 {
			st.NumMaxScore++
		}
	}

	// Local maxima of the document-ordered score sequence.
	for i := range scores {
		left := i == 0 || scores[i] > scores[i-1]
		right := i == df-1 || scores[i] > scores[i+1]
		if left && right {
			st.NumLocalMaxima++
			if scores[i] > st.Mean {
				st.NumMaximaAboveMean++
			}
		}
	}

	// "Documents ever in top-K": replay a single-term top-K scan in
	// document order and count heap insertions. This is the quantity the
	// paper's Table II reports (85 insertions for a 20742-long list).
	st.DocsEverInTopK = heapInsertions(scores, k)

	// Estimated max score: the tf→∞ BM25 bound scaled by the observed
	// maximum tf, an intentionally crude approximation in the spirit of
	// Macdonald et al.'s upper bounds (the paper's Table II shows the
	// approximation overshooting the true max by ~76×).
	st.EstMaxScore = idf * (s.BM25.K1 + 1) * float64(maxTF)

	return st, scores
}

// heapInsertions counts how many scores would enter a size-k min-heap when
// scanned in order — the number of top-K churn events a DAAT evaluator
// experiences for this term alone.
func heapInsertions(scores []float64, k int) int {
	h := &floatMinHeap{}
	inserts := 0
	for _, sc := range scores {
		if h.Len() < k {
			heap.Push(h, sc)
			inserts++
		} else if sc > (*h)[0] {
			(*h)[0] = sc
			heap.Fix(h, 0)
			inserts++
		}
	}
	return inserts
}

type floatMinHeap []float64

func (h floatMinHeap) Len() int            { return len(h) }
func (h floatMinHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatMinHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Scores materializes the BM25 score of every posting of ti, in document
// order, decoding block by block. The Taily baseline and Fig. 6 use this
// to study score distributions; query evaluation never calls it.
func (s *Shard) Scores(ti *TermInfo) []float64 {
	out := make([]float64, 0, ti.Packed.N)
	var docs, tfs [BlockSize]uint32
	for bi := range ti.Blocks {
		n := ti.DecodeBlockInto(bi, &docs, &tfs)
		for i := 0; i < n; i++ {
			out = append(out, s.BM25.Score(ti.Stats.IDF, tfs[i], s.DocLens[docs[i]], s.AvgDocLen))
		}
	}
	return out
}
