package index

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// shardWire is the gob wire form of a Shard. Since wire v5 postings
// travel in their resident bit-packed block form (PackedData) — load is
// a handful of slice adoptions, no transcoding — while v4/v3 files
// carry delta-varint blobs (PostingBlobs) that are verified against
// their own integrity metadata and then repacked on load. The
// dictionary is rebuilt on load rather than serialized.
type shardWire struct {
	Version   int
	ID        int
	NumDocs   int
	AvgDocLen float64
	DocLens   []uint32
	GlobalIDs []int64
	BM25      BM25Params
	StatsK    int

	TermTexts     []string
	TermStats     []TermStats
	PostingCounts []int
	// PostingBlobs is the v3/v4 postings payload: delta-varint encoded
	// (doc, tf) pairs. Nil in v5 files.
	PostingBlobs [][]byte
	// PackedData is the v5 postings payload: each term's bit-packed
	// block payloads plus decoder pad, exactly TermInfo.Packed.Data.
	// Nil in v3/v4 files.
	PackedData [][]byte
	// Positions is nil for non-positional shards; otherwise
	// Positions[term][posting] lists token offsets.
	Positions [][][]uint32
	// Blocks[term] is the term's block overlay. v5 blocks carry the
	// packed-payload geometry (Off, DocW, TFW) and quantized bound
	// (QMax) alongside MaxDoc/Max; v3/v4 blocks carry MaxDoc/Max only.
	Blocks [][]Block
	// BlockSums[term][block] is the per-block CRC32C and Digest the
	// whole-shard digest (v4: over canonical doc/tf pairs; v5: over
	// header+packed payload — see integrity.go). Both are gob
	// zero-valued when decoding a v3 file and synthesized on upgrade.
	BlockSums [][]uint32
	Digest    uint32
}

const wireVersion = 5

// wireVersionV4 is the previous format — delta-varint postings with
// integrity metadata over their canonical doc/tf byte form. Still
// accepted by ReadShard: the file's own sums and digest are verified
// first, then the postings are repacked and resealed as v5.
const wireVersionV4 = 4

// wireVersionV3 is the pre-checksum format, still accepted by
// ReadShard: integrity metadata is synthesized on upgrade so every
// loaded shard is scrubbable and query-time verified regardless of its
// on-disk vintage.
const wireVersionV3 = 3

// Encode serializes the shard with encoding/gob in the current (v5)
// format.
func (s *Shard) Encode(w io.Writer) error {
	if !s.HasChecksums() {
		// Shards built before the integrity plane (hand-constructed in
		// tests, mostly) are sealed on first write so no v5 file ever
		// lacks checksums.
		s.SealIntegrity()
	}
	wire := shardWire{
		Version:   wireVersion,
		ID:        s.ID,
		NumDocs:   s.NumDocs,
		AvgDocLen: s.AvgDocLen,
		DocLens:   s.DocLens,
		GlobalIDs: s.GlobalIDs,
		BM25:      s.BM25,
		StatsK:    s.StatsK,
		Digest:    s.Digest,
	}
	positional := s.HasPositions()
	if positional {
		wire.Positions = make([][][]uint32, 0, len(s.Terms))
	}
	for i := range s.Terms {
		t := &s.Terms[i]
		wire.TermTexts = append(wire.TermTexts, t.Text)
		wire.TermStats = append(wire.TermStats, t.Stats)
		wire.PostingCounts = append(wire.PostingCounts, t.Packed.N)
		wire.PackedData = append(wire.PackedData, t.Packed.Data)
		wire.Blocks = append(wire.Blocks, t.Blocks)
		wire.BlockSums = append(wire.BlockSums, t.Sums)
		if positional {
			wire.Positions = append(wire.Positions, t.Positions)
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// EncodeLegacy serializes the shard in an older wire format — v4
// (varint postings + legacy integrity metadata) or v3 (varint postings,
// no integrity metadata). Tests and corpus generators use it to produce
// genuine old-format files; production writes are always current.
func (s *Shard) EncodeLegacy(w io.Writer, version int) error {
	if version != wireVersionV3 && version != wireVersionV4 {
		return fmt.Errorf("index: EncodeLegacy supports versions %d and %d, not %d", wireVersionV3, wireVersionV4, version)
	}
	wire := shardWire{
		Version:   version,
		ID:        s.ID,
		NumDocs:   s.NumDocs,
		AvgDocLen: s.AvgDocLen,
		DocLens:   s.DocLens,
		GlobalIDs: s.GlobalIDs,
		BM25:      s.BM25,
		StatsK:    s.StatsK,
	}
	positional := s.HasPositions()
	if positional {
		wire.Positions = make([][][]uint32, 0, len(s.Terms))
	}
	for i := range s.Terms {
		t := &s.Terms[i]
		ps := t.AllPostings()
		wire.TermTexts = append(wire.TermTexts, t.Text)
		wire.TermStats = append(wire.TermStats, t.Stats)
		wire.PostingCounts = append(wire.PostingCounts, len(ps))
		wire.PostingBlobs = append(wire.PostingBlobs, EncodePostings(ps))
		// Legacy blocks carry only the bound fields; the geometry fields
		// stay zero, which gob omits — byte-compatible with old writers.
		blocks := make([]Block, len(t.Blocks))
		for bi, b := range t.Blocks {
			blocks[bi] = Block{MaxDoc: b.MaxDoc, Max: b.Max}
		}
		wire.Blocks = append(wire.Blocks, blocks)
		if version == wireVersionV4 {
			sums := make([]uint32, len(t.Blocks))
			for bi := range sums {
				sums[bi] = legacyBlockSum(ps, bi)
			}
			wire.BlockSums = append(wire.BlockSums, sums)
		}
		if positional {
			wire.Positions = append(wire.Positions, t.Positions)
		}
	}
	if version == wireVersionV4 {
		wire.Digest = legacyShardDigest(&wire)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// legacyBlockSum is the v4 per-block checksum: CRC32C over the block's
// postings as little-endian doc/tf pairs, clamped the way the v4
// verifier clamped.
func legacyBlockSum(ps []Posting, bi int) uint32 {
	lo := bi * BlockSize
	hi := lo + BlockSize
	if hi > len(ps) {
		hi = len(ps)
	}
	if lo > hi {
		lo = hi
	}
	var buf [8]byte
	crc := uint32(0)
	for _, p := range ps[lo:hi] {
		binary.LittleEndian.PutUint32(buf[0:4], p.Doc)
		binary.LittleEndian.PutUint32(buf[4:8], p.TF)
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

// legacyShardDigest is the v4 whole-shard digest, computed from the
// wire form: the same fold computeDigest performed before v5 (no
// posting count, MaxDoc/Max only per block).
func legacyShardDigest(w *shardWire) uint32 {
	var d digestWriter
	d.foldShardHeader(w.ID, w.NumDocs, w.StatsK, w.AvgDocLen, w.BM25, w.DocLens, w.GlobalIDs)
	for i := range w.TermTexts {
		d.text(w.TermTexts[i])
		if i < len(w.BlockSums) {
			for _, sum := range w.BlockSums[i] {
				d.u32(sum)
			}
		}
		d.foldStats(&w.TermStats[i])
		if i < len(w.Blocks) {
			for _, b := range w.Blocks[i] {
				d.u32(b.MaxDoc)
				d.f64(b.Max)
			}
		}
		if w.Positions != nil && i < len(w.Positions) {
			d.foldPositions(w.Positions[i])
		}
	}
	return d.crc
}

// ReadShard deserializes a shard written by Encode (or EncodeLegacy),
// verifies its integrity metadata, and rebuilds its dictionary. Legacy
// (v3/v4) postings are verified in their own format first, then
// repacked into the v5 block layout and resealed.
func ReadShard(r io.Reader) (*Shard, error) {
	var w shardWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("index: decoding shard: %w", err)
	}
	switch w.Version {
	case wireVersion:
		return readShardV5(&w)
	case wireVersionV4, wireVersionV3:
		return readShardLegacy(&w)
	default:
		return nil, fmt.Errorf("index: unsupported shard format version %d (want %d, %d or %d)",
			w.Version, wireVersionV3, wireVersionV4, wireVersion)
	}
}

// shardSkeleton builds the Shard carcass shared by both load paths.
func shardSkeleton(w *shardWire) *Shard {
	s := &Shard{
		ID:        w.ID,
		NumDocs:   w.NumDocs,
		AvgDocLen: w.AvgDocLen,
		DocLens:   w.DocLens,
		GlobalIDs: w.GlobalIDs,
		BM25:      w.BM25,
		StatsK:    w.StatsK,
		Terms:     make([]TermInfo, len(w.TermTexts)),
	}
	s.dict = make(map[string]int32, len(s.Terms))
	return s
}

func attachPositions(s *Shard, w *shardWire, i int) error {
	if w.Positions == nil {
		return nil
	}
	if len(w.Positions) != len(w.TermTexts) {
		return fmt.Errorf("index: positional arrays inconsistent in shard file")
	}
	s.Terms[i].Positions = w.Positions[i]
	return nil
}

func readShardV5(w *shardWire) (*Shard, error) {
	if len(w.TermTexts) != len(w.TermStats) ||
		len(w.TermTexts) != len(w.PostingCounts) ||
		len(w.TermTexts) != len(w.PackedData) ||
		len(w.TermTexts) != len(w.Blocks) {
		return nil, fmt.Errorf("index: inconsistent term arrays in shard file")
	}
	if len(w.BlockSums) != len(w.TermTexts) {
		return nil, fmt.Errorf("index: v5 shard has %d checksum arrays for %d terms", len(w.BlockSums), len(w.TermTexts))
	}
	s := shardSkeleton(w)
	for i := range s.Terms {
		s.Terms[i] = TermInfo{
			Text:   w.TermTexts[i],
			Packed: PackedPostings{N: w.PostingCounts[i], Data: w.PackedData[i]},
			Stats:  w.TermStats[i],
			Blocks: w.Blocks[i],
			Sums:   w.BlockSums[i],
		}
		if err := attachPositions(s, w, i); err != nil {
			return nil, err
		}
		s.dict[w.TermTexts[i]] = int32(i)
	}
	s.Digest = w.Digest
	// Build the verification memo from the stored sums — NOT
	// SealIntegrity, which would recompute them and mask corruption.
	s.initIntegState()
	// Validate verifies the stored checksums eagerly (digest, then every
	// block) before the structural invariants — a rotted file fails here
	// with a localized *CorruptionError — and checks the packed geometry
	// before the first decode.
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("index: loaded shard failed validation: %w", err)
	}
	return s, nil
}

func readShardLegacy(w *shardWire) (*Shard, error) {
	if len(w.TermTexts) != len(w.TermStats) ||
		len(w.TermTexts) != len(w.PostingCounts) ||
		len(w.TermTexts) != len(w.PostingBlobs) ||
		len(w.TermTexts) != len(w.Blocks) {
		return nil, fmt.Errorf("index: inconsistent term arrays in shard file")
	}
	if w.Version == wireVersionV4 && len(w.BlockSums) != len(w.TermTexts) {
		return nil, fmt.Errorf("index: v4 shard has %d checksum arrays for %d terms", len(w.BlockSums), len(w.TermTexts))
	}
	postings := make([][]Posting, len(w.TermTexts))
	for i := range w.TermTexts {
		ps, err := DecodePostings(w.PostingBlobs[i], w.PostingCounts[i])
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", w.TermTexts[i], err)
		}
		postings[i] = ps
	}
	if w.Version == wireVersionV4 {
		// Verify the file against its own (v4) integrity metadata before
		// transcoding anything: digest first, then every block sum, so a
		// rotted legacy file fails with the same localized errors it
		// always did.
		if err := verifyLegacy(w, postings); err != nil {
			return nil, fmt.Errorf("index: loaded shard failed validation: %w", err)
		}
	}
	s := shardSkeleton(w)
	for i := range s.Terms {
		packed, blocks := packPostings(postings[i])
		if len(blocks) != len(w.Blocks[i]) {
			return nil, fmt.Errorf("index: loaded shard failed validation: index: term %q has %d block-max blocks, want %d",
				w.TermTexts[i], len(w.Blocks[i]), len(blocks))
		}
		maxScore := w.TermStats[i].MaxScore
		for bi := range blocks {
			if blocks[bi].MaxDoc != w.Blocks[i][bi].MaxDoc {
				return nil, fmt.Errorf("index: loaded shard failed validation: index: term %q block %d MaxDoc %d != last posting doc %d",
					w.TermTexts[i], bi, w.Blocks[i][bi].MaxDoc, blocks[bi].MaxDoc)
			}
			blocks[bi].Max = w.Blocks[i][bi].Max
			blocks[bi].QMax = quantizeBound(blocks[bi].Max, maxScore)
		}
		s.Terms[i] = TermInfo{
			Text:   w.TermTexts[i],
			Packed: packed,
			Stats:  w.TermStats[i],
			Blocks: blocks,
		}
		if err := attachPositions(s, w, i); err != nil {
			return nil, err
		}
		s.dict[w.TermTexts[i]] = int32(i)
	}
	// The legacy metadata verified (or never existed); reseal in the v5
	// scheme so the shard is scrubbable and query-time verified exactly
	// like a native one.
	s.SealIntegrity()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("index: loaded shard failed validation: %w", err)
	}
	return s, nil
}

// verifyLegacy checks a v4 file's digest and per-block checksums in
// their original definitions (canonical doc/tf bytes).
func verifyLegacy(w *shardWire, postings [][]Posting) error {
	if got := legacyShardDigest(w); got != w.Digest {
		return &CorruptionError{Shard: w.ID, Block: -1, Want: w.Digest, Got: got}
	}
	for i := range w.TermTexts {
		if len(w.BlockSums[i]) != len(w.Blocks[i]) {
			return fmt.Errorf("index: term %q has %d checksums for %d blocks",
				w.TermTexts[i], len(w.BlockSums[i]), len(w.Blocks[i]))
		}
		for bi := range w.Blocks[i] {
			if got := legacyBlockSum(postings[i], bi); got != w.BlockSums[i][bi] {
				return &CorruptionError{Shard: w.ID, Term: w.TermTexts[i], Block: bi, Want: w.BlockSums[i][bi], Got: got}
			}
		}
	}
	return nil
}

// SaveFile writes the shard to path, creating or truncating it.
func (s *Shard) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.Encode(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a shard previously written by SaveFile.
func LoadFile(path string) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadShard(bufio.NewReader(f))
}
