package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// shardWire is the gob wire form of a Shard. Postings are stored
// delta-varint compressed (EncodePostings) — about 4-6x smaller than raw
// structs — and the dictionary is rebuilt on load rather than serialized.
type shardWire struct {
	Version   int
	ID        int
	NumDocs   int
	AvgDocLen float64
	DocLens   []uint32
	GlobalIDs []int64
	BM25      BM25Params
	StatsK    int

	TermTexts     []string
	TermStats     []TermStats
	PostingCounts []int
	PostingBlobs  [][]byte
	// Positions is nil for non-positional shards; otherwise
	// Positions[term][posting] lists token offsets.
	Positions [][][]uint32
	// Blocks[term] is the term's block-max overlay (wire v3).
	Blocks [][]Block
	// BlockSums[term][block] is the per-block CRC32C and Digest the
	// whole-shard digest (wire v4, see integrity.go). Both are gob
	// zero-valued when decoding a v3 file and synthesized on upgrade.
	BlockSums [][]uint32
	Digest    uint32
}

const wireVersion = 4

// wireVersionV3 is the pre-checksum format, still accepted by ReadShard:
// integrity metadata is synthesized on upgrade so every loaded shard is
// scrubbable and query-time verified regardless of its on-disk vintage.
const wireVersionV3 = 3

// Encode serializes the shard with encoding/gob.
func (s *Shard) Encode(w io.Writer) error {
	if !s.HasChecksums() {
		// Shards built before the integrity plane (hand-constructed in
		// tests, mostly) are sealed on first write so no v4 file ever
		// lacks checksums.
		s.SealIntegrity()
	}
	wire := shardWire{
		Version:   wireVersion,
		ID:        s.ID,
		NumDocs:   s.NumDocs,
		AvgDocLen: s.AvgDocLen,
		DocLens:   s.DocLens,
		GlobalIDs: s.GlobalIDs,
		BM25:      s.BM25,
		StatsK:    s.StatsK,
		Digest:    s.Digest,
	}
	positional := s.HasPositions()
	if positional {
		wire.Positions = make([][][]uint32, 0, len(s.Terms))
	}
	for i := range s.Terms {
		t := &s.Terms[i]
		wire.TermTexts = append(wire.TermTexts, t.Text)
		wire.TermStats = append(wire.TermStats, t.Stats)
		wire.PostingCounts = append(wire.PostingCounts, len(t.Postings))
		wire.PostingBlobs = append(wire.PostingBlobs, EncodePostings(t.Postings))
		wire.Blocks = append(wire.Blocks, t.Blocks)
		wire.BlockSums = append(wire.BlockSums, t.Sums)
		if positional {
			wire.Positions = append(wire.Positions, t.Positions)
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// ReadShard deserializes a shard written by Encode, decompresses its
// postings, and rebuilds its dictionary.
func ReadShard(r io.Reader) (*Shard, error) {
	var w shardWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("index: decoding shard: %w", err)
	}
	if w.Version != wireVersion && w.Version != wireVersionV3 {
		return nil, fmt.Errorf("index: unsupported shard format version %d (want %d or %d)", w.Version, wireVersionV3, wireVersion)
	}
	if len(w.TermTexts) != len(w.TermStats) ||
		len(w.TermTexts) != len(w.PostingCounts) ||
		len(w.TermTexts) != len(w.PostingBlobs) ||
		len(w.TermTexts) != len(w.Blocks) {
		return nil, fmt.Errorf("index: inconsistent term arrays in shard file")
	}
	if w.Version == wireVersion && len(w.BlockSums) != len(w.TermTexts) {
		return nil, fmt.Errorf("index: v4 shard has %d checksum arrays for %d terms", len(w.BlockSums), len(w.TermTexts))
	}
	s := &Shard{
		ID:        w.ID,
		NumDocs:   w.NumDocs,
		AvgDocLen: w.AvgDocLen,
		DocLens:   w.DocLens,
		GlobalIDs: w.GlobalIDs,
		BM25:      w.BM25,
		StatsK:    w.StatsK,
		Terms:     make([]TermInfo, len(w.TermTexts)),
	}
	s.dict = make(map[string]int32, len(s.Terms))
	for i := range s.Terms {
		ps, err := DecodePostings(w.PostingBlobs[i], w.PostingCounts[i])
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", w.TermTexts[i], err)
		}
		s.Terms[i] = TermInfo{Text: w.TermTexts[i], Postings: ps, Stats: w.TermStats[i], Blocks: w.Blocks[i]}
		if w.Version == wireVersion {
			s.Terms[i].Sums = w.BlockSums[i]
		}
		if w.Positions != nil {
			if len(w.Positions) != len(w.TermTexts) {
				return nil, fmt.Errorf("index: positional arrays inconsistent in shard file")
			}
			s.Terms[i].Positions = w.Positions[i]
		}
		s.dict[w.TermTexts[i]] = int32(i)
	}
	if w.Version == wireVersionV3 {
		// Pre-checksum file: synthesize integrity metadata on upgrade.
		// There is nothing to verify against, but from here on the shard
		// is protected like a native v4 one.
		s.SealIntegrity()
	} else {
		s.Digest = w.Digest
		// Build the verification memo from the stored sums — NOT
		// SealIntegrity, which would recompute them and mask corruption.
		s.initIntegState()
	}
	// Validate verifies the stored checksums eagerly (digest, then every
	// block) before the structural invariants — a rotted file fails here
	// with a localized *CorruptionError.
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("index: loaded shard failed validation: %w", err)
	}
	return s, nil
}

// SaveFile writes the shard to path, creating or truncating it.
func (s *Shard) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.Encode(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a shard previously written by SaveFile.
func LoadFile(path string) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadShard(bufio.NewReader(f))
}
