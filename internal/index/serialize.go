package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// shardWire is the gob wire form of a Shard. Postings are stored
// delta-varint compressed (EncodePostings) — about 4-6x smaller than raw
// structs — and the dictionary is rebuilt on load rather than serialized.
type shardWire struct {
	Version   int
	ID        int
	NumDocs   int
	AvgDocLen float64
	DocLens   []uint32
	GlobalIDs []int64
	BM25      BM25Params
	StatsK    int

	TermTexts     []string
	TermStats     []TermStats
	PostingCounts []int
	PostingBlobs  [][]byte
	// Positions is nil for non-positional shards; otherwise
	// Positions[term][posting] lists token offsets.
	Positions [][][]uint32
	// Blocks[term] is the term's block-max overlay (wire v3).
	Blocks [][]Block
}

const wireVersion = 3

// Encode serializes the shard with encoding/gob.
func (s *Shard) Encode(w io.Writer) error {
	wire := shardWire{
		Version:   wireVersion,
		ID:        s.ID,
		NumDocs:   s.NumDocs,
		AvgDocLen: s.AvgDocLen,
		DocLens:   s.DocLens,
		GlobalIDs: s.GlobalIDs,
		BM25:      s.BM25,
		StatsK:    s.StatsK,
	}
	positional := s.HasPositions()
	if positional {
		wire.Positions = make([][][]uint32, 0, len(s.Terms))
	}
	for i := range s.Terms {
		t := &s.Terms[i]
		wire.TermTexts = append(wire.TermTexts, t.Text)
		wire.TermStats = append(wire.TermStats, t.Stats)
		wire.PostingCounts = append(wire.PostingCounts, len(t.Postings))
		wire.PostingBlobs = append(wire.PostingBlobs, EncodePostings(t.Postings))
		wire.Blocks = append(wire.Blocks, t.Blocks)
		if positional {
			wire.Positions = append(wire.Positions, t.Positions)
		}
	}
	return gob.NewEncoder(w).Encode(wire)
}

// ReadShard deserializes a shard written by Encode, decompresses its
// postings, and rebuilds its dictionary.
func ReadShard(r io.Reader) (*Shard, error) {
	var w shardWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("index: decoding shard: %w", err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("index: unsupported shard format version %d (want %d)", w.Version, wireVersion)
	}
	if len(w.TermTexts) != len(w.TermStats) ||
		len(w.TermTexts) != len(w.PostingCounts) ||
		len(w.TermTexts) != len(w.PostingBlobs) ||
		len(w.TermTexts) != len(w.Blocks) {
		return nil, fmt.Errorf("index: inconsistent term arrays in shard file")
	}
	s := &Shard{
		ID:        w.ID,
		NumDocs:   w.NumDocs,
		AvgDocLen: w.AvgDocLen,
		DocLens:   w.DocLens,
		GlobalIDs: w.GlobalIDs,
		BM25:      w.BM25,
		StatsK:    w.StatsK,
		Terms:     make([]TermInfo, len(w.TermTexts)),
	}
	s.dict = make(map[string]int32, len(s.Terms))
	for i := range s.Terms {
		ps, err := DecodePostings(w.PostingBlobs[i], w.PostingCounts[i])
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", w.TermTexts[i], err)
		}
		s.Terms[i] = TermInfo{Text: w.TermTexts[i], Postings: ps, Stats: w.TermStats[i], Blocks: w.Blocks[i]}
		if w.Positions != nil {
			if len(w.Positions) != len(w.TermTexts) {
				return nil, fmt.Errorf("index: positional arrays inconsistent in shard file")
			}
			s.Terms[i].Positions = w.Positions[i]
		}
		s.dict[w.TermTexts[i]] = int32(i)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("index: loaded shard failed validation: %w", err)
	}
	return s, nil
}

// SaveFile writes the shard to path, creating or truncating it.
func (s *Shard) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.Encode(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a shard previously written by SaveFile.
func LoadFile(path string) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadShard(bufio.NewReader(f))
}
