package index

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestBlocksBuiltInFinalize: every finalized term carries a block-max
// overlay that tiles its postings exactly, with sound and tight bounds.
func TestBlocksBuiltInFinalize(t *testing.T) {
	s := buildTestShard(t)
	for i := range s.Terms {
		ti := &s.Terms[i]
		want := (len(ti.Postings) + BlockSize - 1) / BlockSize
		if ti.NumBlocks() != want {
			t.Fatalf("%q: %d blocks for %d postings, want %d", ti.Text, ti.NumBlocks(), len(ti.Postings), want)
		}
		covered := 0
		for bi, blk := range ti.Blocks {
			lo, hi := ti.BlockSpan(bi)
			if lo != covered {
				t.Fatalf("%q block %d: span starts at %d, want %d", ti.Text, bi, lo, covered)
			}
			covered = hi
			if blk.MaxDoc != ti.Postings[hi-1].Doc {
				t.Fatalf("%q block %d: MaxDoc %d != last posting doc %d", ti.Text, bi, blk.MaxDoc, ti.Postings[hi-1].Doc)
			}
			attained := false
			for _, p := range ti.Postings[lo:hi] {
				sc := s.TermScore(ti, p)
				if sc > blk.Max {
					t.Fatalf("%q block %d: posting scores %v above bound %v", ti.Text, bi, sc, blk.Max)
				}
				attained = attained || sc == blk.Max
			}
			if !attained {
				t.Fatalf("%q block %d: bound %v not attained (not tight)", ti.Text, bi, blk.Max)
			}
		}
		if covered != len(ti.Postings) {
			t.Fatalf("%q: blocks cover %d of %d postings", ti.Text, covered, len(ti.Postings))
		}
		// The overlay's global max must equal the term's max score.
		blkMax := 0.0
		for _, blk := range ti.Blocks {
			blkMax = math.Max(blkMax, blk.Max)
		}
		if math.Abs(blkMax-ti.Stats.MaxScore) > 1e-12 {
			t.Fatalf("%q: overlay max %v != stats max %v", ti.Text, blkMax, ti.Stats.MaxScore)
		}
	}
}

func TestBuildBlocksEdges(t *testing.T) {
	if buildBlocks(nil, nil) != nil {
		t.Error("empty postings should have a nil overlay")
	}
	ps := []Posting{{Doc: 3, TF: 1}}
	blocks := buildBlocks(ps, []float64{1.5})
	if len(blocks) != 1 || blocks[0] != (Block{MaxDoc: 3, Max: 1.5}) {
		t.Errorf("single-posting overlay wrong: %+v", blocks)
	}
}

// TestSerializeRoundTripCarriesBlocks: the overlay survives the wire
// format bit-for-bit — ReadShard must not need to rebuild it.
func TestSerializeRoundTripCarriesBlocks(t *testing.T) {
	s := buildTestShard(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Terms {
		a, b := s.Terms[i].Blocks, got.Terms[i].Blocks
		if len(a) != len(b) {
			t.Fatalf("term %q: %d blocks after round trip, want %d", s.Terms[i].Text, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("term %q block %d changed in round trip: %+v != %+v", s.Terms[i].Text, j, b[j], a[j])
			}
		}
	}
}

// TestValidateCatchesBlockCorruption: each way the overlay can be wrong
// — missing blocks, stale MaxDoc, an unsound (too low) bound, a slack
// (unattained) bound — must fail Validate with a descriptive error.
func TestValidateCatchesBlockCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mutate  func(ti *TermInfo)
		errFrag string
	}{
		{"truncated overlay", func(ti *TermInfo) {
			ti.Blocks = ti.Blocks[:len(ti.Blocks)-1]
		}, "block-max blocks"},
		{"stale MaxDoc", func(ti *TermInfo) {
			ti.Blocks[0].MaxDoc++
		}, "MaxDoc"},
		{"unsound bound", func(ti *TermInfo) {
			ti.Blocks[0].Max /= 2
		}, "above block max"},
		{"slack bound", func(ti *TermInfo) {
			ti.Blocks[0].Max *= 2
		}, "attains"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s := buildTestShard(t)
			// Pick a term with at least two blocks so truncation leaves one.
			var ti *TermInfo
			for i := range s.Terms {
				if s.Terms[i].NumBlocks() >= 2 {
					ti = &s.Terms[i]
					break
				}
			}
			if ti == nil {
				t.Fatal("no multi-block term in test shard")
			}
			c.mutate(ti)
			// Reseal so the checksum layer agrees with the mutated bytes:
			// this pins the *structural* overlay checks, which must catch
			// semantic corruption a buggy writer could produce with
			// perfectly consistent checksums. Checksum detection itself is
			// pinned in integrity_test.go.
			s.SealIntegrity()
			err := s.Validate()
			if err == nil {
				t.Fatalf("corruption %q passed Validate", c.name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Fatalf("corruption %q: error %q does not mention %q", c.name, err, c.errFrag)
			}
		})
	}
}

// TestValidateCatchesShardCorruption covers the non-block invariants:
// every mutation must be caught with an error naming the problem.
func TestValidateCatchesShardCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mutate  func(s *Shard)
		errFrag string
	}{
		{"doc metadata", func(s *Shard) { s.NumDocs++ }, "metadata length"},
		{"dict size", func(s *Shard) { delete(s.dict, s.Terms[0].Text) }, "dict has"},
		{"dict target", func(s *Shard) {
			s.dict[s.Terms[0].Text], s.dict[s.Terms[1].Text] = s.dict[s.Terms[1].Text], s.dict[s.Terms[0].Text]
		}, "wrong term"},
		{"empty postings", func(s *Shard) { s.Terms[0].Postings = nil }, "empty postings"},
		{"unsorted postings", func(s *Shard) {
			ps := s.Terms[0].Postings
			ps[0], ps[1] = ps[1], ps[0]
		}, "out of order"},
		{"doc out of range", func(s *Shard) {
			ps := s.Terms[0].Postings
			ps[len(ps)-1].Doc = uint32(s.NumDocs)
		}, "references doc"},
		{"zero tf", func(s *Shard) { s.Terms[0].Postings[0].TF = 0 }, "zero tf"},
		{"stats length", func(s *Shard) { s.Terms[0].Stats.PostingLen++ }, "stats posting length"},
		{"kth above max", func(s *Shard) { s.Terms[0].Stats.KthScore = s.Terms[0].Stats.MaxScore + 1 }, "below kth"},
		{"NaN idf", func(s *Shard) { s.Terms[0].Stats.IDF = math.NaN() }, "invalid idf"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s := buildTestShard(t)
			c.mutate(s)
			// Reseal: the structural checks must catch these even when the
			// checksums are self-consistent (see integrity_test.go for the
			// checksum-mismatch paths).
			s.SealIntegrity()
			err := s.Validate()
			if err == nil {
				t.Fatalf("corruption %q passed Validate", c.name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Fatalf("corruption %q: error %q does not mention %q", c.name, err, c.errFrag)
			}
		})
	}
}
