package index

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestBlocksBuiltInFinalize: every finalized term carries a block-max
// overlay that tiles its postings exactly, with sound and tight bounds.
func TestBlocksBuiltInFinalize(t *testing.T) {
	s := buildTestShard(t)
	for i := range s.Terms {
		ti := &s.Terms[i]
		ps := ti.AllPostings()
		want := (len(ps) + BlockSize - 1) / BlockSize
		if ti.NumBlocks() != want {
			t.Fatalf("%q: %d blocks for %d postings, want %d", ti.Text, ti.NumBlocks(), len(ps), want)
		}
		covered := 0
		for bi, blk := range ti.Blocks {
			lo, hi := ti.BlockSpan(bi)
			if lo != covered {
				t.Fatalf("%q block %d: span starts at %d, want %d", ti.Text, bi, lo, covered)
			}
			covered = hi
			if blk.MaxDoc != ps[hi-1].Doc {
				t.Fatalf("%q block %d: MaxDoc %d != last posting doc %d", ti.Text, bi, blk.MaxDoc, ps[hi-1].Doc)
			}
			attained := false
			for _, p := range ps[lo:hi] {
				sc := s.TermScore(ti, p)
				if sc > blk.Max {
					t.Fatalf("%q block %d: posting scores %v above bound %v", ti.Text, bi, sc, blk.Max)
				}
				attained = attained || sc == blk.Max
			}
			if !attained {
				t.Fatalf("%q block %d: bound %v not attained (not tight)", ti.Text, bi, blk.Max)
			}
			if qb := DequantBound(blk.QMax, ti.Stats.MaxScore); qb < blk.Max {
				t.Fatalf("%q block %d: quantized bound %v below exact %v", ti.Text, bi, qb, blk.Max)
			}
		}
		if covered != len(ps) {
			t.Fatalf("%q: blocks cover %d of %d postings", ti.Text, covered, len(ps))
		}
		// The overlay's global max must equal the term's max score.
		blkMax := 0.0
		for _, blk := range ti.Blocks {
			blkMax = math.Max(blkMax, blk.Max)
		}
		if math.Abs(blkMax-ti.Stats.MaxScore) > 1e-12 {
			t.Fatalf("%q: overlay max %v != stats max %v", ti.Text, blkMax, ti.Stats.MaxScore)
		}
	}
}

func TestPackPostingsEdges(t *testing.T) {
	if packed, blocks := packPostings(nil); packed.N != 0 || packed.Data != nil || blocks != nil {
		t.Error("empty postings should pack to nothing")
	}
	ps := []Posting{{Doc: 3, TF: 1}}
	packed, blocks := packPostings(ps)
	fillBlockBounds(blocks, []float64{1.5}, 1.5)
	if len(blocks) != 1 || blocks[0].MaxDoc != 3 || blocks[0].Max != 1.5 || blocks[0].QMax != 255 {
		t.Errorf("single-posting overlay wrong: %+v", blocks)
	}
	ti := &TermInfo{Packed: packed, Blocks: blocks}
	if err := ti.checkPackedGeometry(); err != nil {
		t.Fatal(err)
	}
	if got := ti.Posting(0); got != ps[0] {
		t.Errorf("round trip = %+v, want %+v", got, ps[0])
	}
}

// TestPackedRoundTrip: pack/decode is the identity on realistic and
// adversarial postings shapes — dense, sparse, huge gaps, huge tfs,
// exactly one block, one posting over a block boundary.
func TestPackedRoundTrip(t *testing.T) {
	shapes := map[string][]Posting{
		"dense":    make([]Posting, 0, 200),
		"sparse":   nil,
		"boundary": nil,
		"hugetf":   nil,
	}
	for d := 0; d < 200; d++ {
		shapes["dense"] = append(shapes["dense"], Posting{Doc: uint32(d), TF: 1})
	}
	for d := 0; d < BlockSize+1; d++ {
		shapes["boundary"] = append(shapes["boundary"], Posting{Doc: uint32(3 * d), TF: uint32(1 + d%7)})
	}
	shapes["sparse"] = []Posting{{Doc: 0, TF: 1}, {Doc: 1 << 20, TF: 2}, {Doc: ^uint32(0) - 1, TF: 3}}
	shapes["hugetf"] = []Posting{{Doc: 5, TF: ^uint32(0)}, {Doc: 9, TF: 1}}
	for name, ps := range shapes {
		packed, blocks := packPostings(ps)
		ti := &TermInfo{Text: name, Packed: packed, Blocks: blocks}
		if err := ti.checkPackedGeometry(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := ti.AllPostings()
		if len(got) != len(ps) {
			t.Fatalf("%s: %d postings back, want %d", name, len(got), len(ps))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("%s: posting %d = %+v, want %+v", name, i, got[i], ps[i])
			}
			if one := ti.Posting(i); one != ps[i] {
				t.Fatalf("%s: Posting(%d) = %+v, want %+v", name, i, one, ps[i])
			}
		}
	}
}

// TestQuantizeBound: the 8-bit bound encoding is sound (never below the
// exact bound) and exact at the top (255 dequantizes to maxScore).
func TestQuantizeBound(t *testing.T) {
	maxScore := 3.7218543
	for i := 0; i <= 10000; i++ {
		bound := maxScore * float64(i) / 10000
		q := quantizeBound(bound, maxScore)
		if got := DequantBound(q, maxScore); got < bound {
			t.Fatalf("bound %v quantized to %d dequantizes to %v (unsound)", bound, q, got)
		}
		if q > 0 {
			if below := DequantBound(q-1, maxScore); below >= bound && q-1 > 0 {
				t.Fatalf("bound %v: q=%d not minimal (%d suffices)", bound, q, q-1)
			}
		}
	}
	if quantizeBound(maxScore, maxScore) != 255 {
		t.Error("max bound must quantize to 255")
	}
	if DequantBound(255, maxScore) != maxScore {
		t.Error("255 must dequantize to maxScore exactly")
	}
	if quantizeBound(0, maxScore) != 0 || quantizeBound(-1, maxScore) != 0 {
		t.Error("non-positive bounds must quantize to 0")
	}
	if quantizeBound(2*maxScore, maxScore) != 255 {
		t.Error("bounds above maxScore must clamp to 255")
	}
}

// TestSerializeRoundTripCarriesBlocks: the overlay survives the wire
// format bit-for-bit — ReadShard must not need to rebuild it.
func TestSerializeRoundTripCarriesBlocks(t *testing.T) {
	s := buildTestShard(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Terms {
		a, b := s.Terms[i].Blocks, got.Terms[i].Blocks
		if len(a) != len(b) {
			t.Fatalf("term %q: %d blocks after round trip, want %d", s.Terms[i].Text, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("term %q block %d changed in round trip: %+v != %+v", s.Terms[i].Text, j, b[j], a[j])
			}
		}
	}
}

// TestValidateCatchesBlockCorruption: each way the overlay can be wrong
// — missing blocks, stale MaxDoc, an unsound (too low) bound, a slack
// (unattained) bound — must fail Validate with a descriptive error.
func TestValidateCatchesBlockCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mutate  func(ti *TermInfo)
		errFrag string
	}{
		{"truncated overlay", func(ti *TermInfo) {
			ti.Blocks = ti.Blocks[:len(ti.Blocks)-1]
		}, "blocks for"},
		// The last block's MaxDoc feeds no later block's delta base, so
		// bumping it is pure overlay corruption (an earlier block's
		// MaxDoc would shift the next block's decoded documents and trip
		// the ordering check instead).
		{"stale MaxDoc", func(ti *TermInfo) {
			ti.Blocks[len(ti.Blocks)-1].MaxDoc++
		}, "MaxDoc"},
		{"unsound bound", func(ti *TermInfo) {
			ti.Blocks[0].Max /= 2
		}, "above block max"},
		{"slack bound", func(ti *TermInfo) {
			ti.Blocks[0].Max *= 2
		}, "attains"},
		{"unsound quantized bound", func(ti *TermInfo) {
			ti.Blocks[0].QMax = 0
		}, "quantized bound"},
		{"bad width", func(ti *TermInfo) {
			ti.Blocks[0].DocW = 40
		}, "bit width"},
		{"bad offset", func(ti *TermInfo) {
			ti.Blocks[1].Off++
		}, "offset"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s := buildTestShard(t)
			// Pick a term with at least two blocks so truncation leaves one.
			var ti *TermInfo
			for i := range s.Terms {
				if s.Terms[i].NumBlocks() >= 2 {
					ti = &s.Terms[i]
					break
				}
			}
			if ti == nil {
				t.Fatal("no multi-block term in test shard")
			}
			c.mutate(ti)
			// Reseal so the checksum layer agrees with the mutated bytes:
			// this pins the *structural* overlay checks, which must catch
			// semantic corruption a buggy writer could produce with
			// perfectly consistent checksums. Checksum detection itself is
			// pinned in integrity_test.go.
			s.SealIntegrity()
			err := s.Validate()
			if err == nil {
				t.Fatalf("corruption %q passed Validate", c.name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Fatalf("corruption %q: error %q does not mention %q", c.name, err, c.errFrag)
			}
		})
	}
}

// TestValidateCatchesShardCorruption covers the non-block invariants:
// every mutation must be caught with an error naming the problem.
func TestValidateCatchesShardCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mutate  func(s *Shard)
		errFrag string
	}{
		{"doc metadata", func(s *Shard) { s.NumDocs++ }, "metadata length"},
		{"dict size", func(s *Shard) { delete(s.dict, s.Terms[0].Text) }, "dict has"},
		{"dict target", func(s *Shard) {
			s.dict[s.Terms[0].Text], s.dict[s.Terms[1].Text] = s.dict[s.Terms[1].Text], s.dict[s.Terms[0].Text]
		}, "wrong term"},
		{"empty postings", func(s *Shard) {
			s.Terms[0].Packed = PackedPostings{}
			s.Terms[0].Blocks = nil
		}, "empty postings"},
		{"unsorted postings", func(s *Shard) {
			mutatePostings(&s.Terms[0], func(ps []Posting) { ps[0], ps[1] = ps[1], ps[0] })
		}, "out of order"},
		{"doc out of range", func(s *Shard) {
			mutatePostings(&s.Terms[0], func(ps []Posting) { ps[len(ps)-1].Doc = uint32(s.NumDocs) })
		}, "references doc"},
		{"zero tf", func(s *Shard) {
			mutatePostings(&s.Terms[0], func(ps []Posting) { ps[0].TF = 0 })
		}, "zero tf"},
		{"stats length", func(s *Shard) { s.Terms[0].Stats.PostingLen++ }, "stats posting length"},
		{"kth above max", func(s *Shard) { s.Terms[0].Stats.KthScore = s.Terms[0].Stats.MaxScore + 1 }, "below kth"},
		{"NaN idf", func(s *Shard) { s.Terms[0].Stats.IDF = math.NaN() }, "invalid idf"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s := buildTestShard(t)
			c.mutate(s)
			// Reseal: the structural checks must catch these even when the
			// checksums are self-consistent (see integrity_test.go for the
			// checksum-mismatch paths).
			s.SealIntegrity()
			err := s.Validate()
			if err == nil {
				t.Fatalf("corruption %q passed Validate", c.name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Fatalf("corruption %q: error %q does not mention %q", c.name, err, c.errFrag)
			}
		})
	}
}
