package index

import "fmt"

// Block-max overlay: every term's postings are tiled into fixed-size
// blocks, each carrying the largest BM25 score among its postings and
// the document of its last posting. The overlay is what makes safe
// early termination possible — a traversal that knows "no document in
// this region can score above X" may skip or defer the region without
// giving up exactness (Ding & Suel's Block-Max WAND, and the anytime
// ranking of Mackenzie et al. that internal/search.Anytime follows).
// Blocks are built in Finalize from the same per-posting scores the
// term statistics are computed from, and round-trip through the shard
// wire format (serialize.go).

// BlockSize is the number of postings per block-max block. 64 keeps the
// overlay under 2% of postings storage while giving upper bounds tight
// enough that a priority-ordered traversal finds the high-scoring
// regions first.
const BlockSize = 64

// Block is one fixed-size run of postings with its score upper bound.
// A term's block i covers Postings[i*BlockSize : (i+1)*BlockSize] (the
// last block may be short); blocks tile the postings exactly.
type Block struct {
	// MaxDoc is the document of the block's last posting — the
	// inclusive upper end of the block's document span (the span starts
	// at the block's first posting's document).
	MaxDoc uint32
	// Max is the largest BM25 score among the block's postings: a safe
	// upper bound on any single-term contribution from the span.
	Max float64
}

// buildBlocks tiles document-ordered postings into BlockSize blocks,
// taking each block's bound from the already-materialized per-posting
// scores (scores[i] belongs to ps[i]).
func buildBlocks(ps []Posting, scores []float64) []Block {
	if len(ps) == 0 {
		return nil
	}
	n := (len(ps) + BlockSize - 1) / BlockSize
	blocks := make([]Block, 0, n)
	for lo := 0; lo < len(ps); lo += BlockSize {
		hi := lo + BlockSize
		if hi > len(ps) {
			hi = len(ps)
		}
		max := scores[lo]
		for _, sc := range scores[lo+1 : hi] {
			if sc > max {
				max = sc
			}
		}
		blocks = append(blocks, Block{MaxDoc: ps[hi-1].Doc, Max: max})
	}
	return blocks
}

// NumBlocks returns how many block-max blocks tile the term's postings.
func (ti *TermInfo) NumBlocks() int { return len(ti.Blocks) }

// BlockSpan returns block bi's posting index range [lo, hi).
func (ti *TermInfo) BlockSpan(bi int) (lo, hi int) {
	lo = bi * BlockSize
	hi = lo + BlockSize
	if hi > len(ti.Postings) {
		hi = len(ti.Postings)
	}
	return lo, hi
}

// validateBlocks checks the block-max overlay invariants for one term:
// the blocks tile the postings exactly, each block's MaxDoc is its last
// posting's document, and no posting's score exceeds its block's bound
// (scores are recomputed the same way Finalize computed them, so the
// comparison is exact).
func (s *Shard) validateBlocks(ti *TermInfo) error {
	ps := ti.Postings
	want := (len(ps) + BlockSize - 1) / BlockSize
	if len(ti.Blocks) != want {
		return fmt.Errorf("index: term %q has %d block-max blocks, want %d", ti.Text, len(ti.Blocks), want)
	}
	for bi, blk := range ti.Blocks {
		lo, hi := ti.BlockSpan(bi)
		if blk.MaxDoc != ps[hi-1].Doc {
			return fmt.Errorf("index: term %q block %d MaxDoc %d != last posting doc %d",
				ti.Text, bi, blk.MaxDoc, ps[hi-1].Doc)
		}
		attained := false
		for _, p := range ps[lo:hi] {
			sc := s.TermScore(ti, p)
			if sc > blk.Max {
				return fmt.Errorf("index: term %q block %d: posting doc %d scores %v above block max %v",
					ti.Text, bi, p.Doc, sc, blk.Max)
			}
			if sc == blk.Max {
				attained = true
			}
		}
		if !attained {
			return fmt.Errorf("index: term %q block %d: no posting attains block max %v", ti.Text, bi, blk.Max)
		}
	}
	return nil
}
