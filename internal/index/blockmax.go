package index

import "fmt"

// Block-max overlay: every term's postings are tiled into fixed-size
// blocks, each carrying the largest BM25 score among its postings and
// the document of its last posting. The overlay is what makes safe
// early termination possible — a traversal that knows "no document in
// this region can score above X" may skip or defer the region without
// giving up exactness (Ding & Suel's Block-Max WAND, and the anytime
// ranking of Mackenzie et al. that internal/search.Anytime follows).
// Since wire v5 the overlay is also the postings skip list: each Block
// records where its bit-packed payload lives (Off) and the packed
// widths (DocW, TFW), so block-max blocks and physical posting blocks
// are the same thing, and a quantized copy of the bound (QMax) gives
// skip decisions a cache-cheap one-byte upper bound.

// BlockSize is the number of postings per block-max block. 64 keeps the
// overlay under 2% of postings storage while giving upper bounds tight
// enough that a priority-ordered traversal finds the high-scoring
// regions first. It equals simdpack.BlockLen, so one block decodes in
// one kernel call.
const BlockSize = 64

// Block is one fixed-size run of postings: its score upper bounds plus
// the location and shape of its packed payload. A term's block i covers
// postings [i*BlockSize, (i+1)*BlockSize) (the last block may be
// short); blocks tile the postings exactly.
type Block struct {
	// MaxDoc is the document of the block's last posting — the
	// inclusive upper end of the block's document span (the span starts
	// at the block's first posting's document). It is also the delta
	// base for the next block's document gaps.
	MaxDoc uint32
	// Max is the largest BM25 score among the block's postings: a safe
	// upper bound on any single-term contribution from the span.
	Max float64
	// Off is the byte offset of the block's packed payload in
	// Packed.Data: PackedBytes(DocW) bytes of document gaps followed by
	// PackedBytes(TFW) bytes of tf-1 values.
	Off uint32
	// DocW and TFW are the block's packed bit widths (0..32).
	DocW uint8
	TFW  uint8
	// QMax is the quantized score bound: DequantBound(QMax,
	// Stats.MaxScore) >= Max always (quantizeBound rounds up), so
	// skipping on QMax is sound, and scoring never reads it.
	QMax uint8
}

// fillBlockBounds installs each block's exact score ceiling and its
// quantized companion, taking the bounds from the already-materialized
// per-posting scores (scores[i] belongs to posting i) — the same values
// the term statistics are computed from.
func fillBlockBounds(blocks []Block, scores []float64, maxScore float64) {
	for bi := range blocks {
		lo := bi * BlockSize
		hi := lo + BlockSize
		if hi > len(scores) {
			hi = len(scores)
		}
		max := scores[lo]
		for _, sc := range scores[lo+1 : hi] {
			if sc > max {
				max = sc
			}
		}
		blocks[bi].Max = max
		blocks[bi].QMax = quantizeBound(max, maxScore)
	}
}

// NumBlocks returns how many block-max blocks tile the term's postings.
func (ti *TermInfo) NumBlocks() int { return len(ti.Blocks) }

// BlockSpan returns block bi's posting index range [lo, hi).
func (ti *TermInfo) BlockSpan(bi int) (lo, hi int) {
	lo = bi * BlockSize
	hi = lo + BlockSize
	if hi > ti.Packed.N {
		hi = ti.Packed.N
	}
	return lo, hi
}

// validateBlocks checks the block-max overlay invariants for one term:
// each block's MaxDoc is its last posting's document, no posting's
// score exceeds its block's bound, some posting attains it (scores are
// recomputed the same way Finalize computed them, so the comparison is
// exact), and the quantized bound dominates the exact one. The packed
// geometry has already been checked when this runs.
func (s *Shard) validateBlocks(ti *TermInfo) error {
	var docs, tfs [BlockSize]uint32
	for bi := range ti.Blocks {
		blk := &ti.Blocks[bi]
		n := ti.DecodeBlockInto(bi, &docs, &tfs)
		if blk.MaxDoc != docs[n-1] {
			return fmt.Errorf("index: term %q block %d MaxDoc %d != last posting doc %d",
				ti.Text, bi, blk.MaxDoc, docs[n-1])
		}
		attained := false
		for i := 0; i < n; i++ {
			sc := s.BM25.Score(ti.Stats.IDF, tfs[i], s.DocLens[docs[i]], s.AvgDocLen)
			if sc > blk.Max {
				return fmt.Errorf("index: term %q block %d: posting doc %d scores %v above block max %v",
					ti.Text, bi, docs[i], sc, blk.Max)
			}
			if sc == blk.Max {
				attained = true
			}
		}
		if !attained {
			return fmt.Errorf("index: term %q block %d: no posting attains block max %v", ti.Text, bi, blk.Max)
		}
		if DequantBound(blk.QMax, ti.Stats.MaxScore) < blk.Max {
			return fmt.Errorf("index: term %q block %d: quantized bound %v below exact bound %v",
				ti.Text, bi, DequantBound(blk.QMax, ti.Stats.MaxScore), blk.Max)
		}
	}
	return nil
}
