package index

import (
	"bytes"
	"encoding/gob"
	"testing"

	"cottage/internal/xrand"
)

func randomPostings(rng *xrand.RNG, n int) []Posting {
	ps := make([]Posting, n)
	doc := uint32(0)
	for i := range ps {
		doc += 1 + uint32(rng.Intn(50))
		ps[i] = Posting{Doc: doc, TF: 1 + uint32(rng.Intn(12))}
	}
	return ps
}

func TestPostingsRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{0, 1, 2, 10, 1000, 50000} {
		ps := randomPostings(rng, n)
		blob := EncodePostings(ps)
		got, err := DecodePostings(blob, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != len(ps) {
			t.Fatalf("n=%d: length %d", n, len(got))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("n=%d: posting %d differs: %v vs %v", n, i, got[i], ps[i])
			}
		}
	}
}

func TestPostingsRoundTripProperty(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 200; trial++ {
		ps := randomPostings(rng, rng.Intn(300))
		got, err := DecodePostings(EncodePostings(ps), len(ps))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	ps := randomPostings(xrand.New(3), 20)
	blob := EncodePostings(ps)
	// Truncated.
	if _, err := DecodePostings(blob[:len(blob)/2], 20); err == nil {
		t.Error("truncated blob should fail")
	}
	// Wrong count (too few -> trailing bytes).
	if _, err := DecodePostings(blob, 10); err == nil {
		t.Error("short count should fail on trailing bytes")
	}
	// Wrong count (too many).
	if _, err := DecodePostings(blob, 30); err == nil {
		t.Error("long count should fail")
	}
	// Zero tf is invalid.
	bad := EncodePostings([]Posting{{Doc: 1, TF: 0}})
	if _, err := DecodePostings(bad, 1); err == nil {
		t.Error("zero tf should fail")
	}
	// Zero gap after the first entry (duplicate doc) is invalid.
	dup := append(EncodePostings([]Posting{{Doc: 5, TF: 1}}), 0, 1)
	if _, err := DecodePostings(dup, 2); err == nil {
		t.Error("duplicate doc should fail")
	}
}

func TestCompressionShrinks(t *testing.T) {
	ps := randomPostings(xrand.New(4), 10000)
	blob := EncodePostings(ps)
	var raw bytes.Buffer
	if err := gob.NewEncoder(&raw).Encode(ps); err != nil {
		t.Fatal(err)
	}
	if len(blob)*2 >= raw.Len() {
		t.Errorf("compression too weak: %d compressed vs %d gob", len(blob), raw.Len())
	}
}

func BenchmarkEncodePostings(b *testing.B) {
	ps := randomPostings(xrand.New(5), 10000)
	b.SetBytes(int64(len(ps) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodePostings(ps)
	}
}

func BenchmarkDecodePostings(b *testing.B) {
	ps := randomPostings(xrand.New(5), 10000)
	blob := EncodePostings(ps)
	b.SetBytes(int64(len(ps) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePostings(blob, len(ps)); err != nil {
			b.Fatal(err)
		}
	}
}
