package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync/atomic"
)

// Data-integrity plane, index layer (wire v5): every term's postings are
// checksummed per block-max block — CRC32C over the block's bit-packed
// payload bytes plus the header that governs its decode (delta base,
// MaxDoc, widths) — plus one whole-shard digest over the document
// metadata and the per-block sums.
// The sums are written with the shard (serialize.go), verified eagerly
// when a shard is loaded, and lazily at query time — a block whose bytes
// rotted since load is detected before any of its postings are scored.
// Detection is localized (shard, term, block) so the quarantine/repair
// machinery (internal/integrity, internal/rpc) can attribute and heal,
// instead of surfacing bit-rot as an arbitrary decode error or — worse —
// a quietly wrong merged top-K.

// castagnoli is the CRC32C polynomial table. Castagnoli is the standard
// storage-integrity polynomial (iSCSI, ext4, Btrfs) and has hardware
// support on amd64/arm64, so per-block sums cost a handful of ns.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptionError localizes one detected checksum mismatch. Block is the
// term-local block index, or -1 when the whole-shard digest (document
// metadata) mismatched rather than a posting block.
type CorruptionError struct {
	Shard int
	Term  string
	Block int
	Want  uint32 // the sealed (expected) checksum
	Got   uint32 // the checksum of the bytes actually present
}

// Error implements error with full localization — which shard, which
// term, which block — so a ledger entry or log line is actionable.
func (e *CorruptionError) Error() string {
	if e.Block < 0 {
		return fmt.Sprintf("index: shard %d digest mismatch (want %08x, got %08x): shard metadata corrupt",
			e.Shard, e.Want, e.Got)
	}
	return fmt.Sprintf("index: shard %d term %q block %d checksum mismatch (want %08x, got %08x)",
		e.Shard, e.Term, e.Block, e.Want, e.Got)
}

// IsCorruption reports whether err (or anything it wraps) is a localized
// checksum mismatch, as opposed to a structural validation failure.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// integState is the shard's lazy query-time verification memo: one
// "verified" and one "corrupt" bit per block, flipped atomically on
// first touch so concurrent readers re-checksum each block at most a
// handful of times ever, and the steady-state query cost is one atomic
// load per touched block.
type integState struct {
	// off[t] is term t's first global block index; total blocks overall.
	off      []int
	total    int
	verified []atomic.Uint32
	corrupt  []atomic.Uint32
	// corruptBlocks counts blocks found corrupt by lazy verification —
	// the signal the owning server's quarantine logic watches.
	corruptBlocks atomic.Int64
}

func (st *integState) bit(g int) (word int, mask uint32) { return g >> 5, 1 << (uint(g) & 31) }

// blockSum computes the CRC32C of one block — its decode header (delta
// base, MaxDoc, packed widths) followed by its packed payload bytes —
// the quantity sealed into TermInfo.Sums and recomputed by every
// verifier. Covering the header matters: a flipped width or base would
// change how the payload decodes without touching a payload byte.
// (Bytes in the simdpack pad are outside every block's range; flipping
// them is undetected but also harmless — the decode mask keeps them out
// of every value.)
func (s *Shard) blockSum(ti *TermInfo, bi int) uint32 {
	if bi >= len(ti.Blocks) {
		return 0
	}
	blk := &ti.Blocks[bi]
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:4], ti.blockBase(bi))
	binary.LittleEndian.PutUint32(hdr[4:8], blk.MaxDoc)
	hdr[8] = blk.DocW
	hdr[9] = blk.TFW
	crc := crc32.Update(0, castagnoli, hdr[:])
	lo := int(blk.Off)
	hi := lo + ti.blockPayloadBytes(bi)
	// Clamp: a corrupted shard can declare offsets past its payload, and
	// the verifier must return a mismatch there, not panic.
	if n := len(ti.Packed.Data); hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return crc32.Update(crc, castagnoli, ti.Packed.Data[lo:hi])
}

// digestWriter folds typed values into a running CRC32C. It exists so
// computeDigest (v5, in-memory shard) and legacyShardDigest (v4 wire
// form, serialize.go) fold the shared regions — metadata, statistics,
// positions — through one definition instead of two drifting copies.
type digestWriter struct {
	crc uint32
	buf [8]byte
}

func (d *digestWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(d.buf[0:4], v)
	d.crc = crc32.Update(d.crc, castagnoli, d.buf[0:4])
}

func (d *digestWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[0:8], v)
	d.crc = crc32.Update(d.crc, castagnoli, d.buf[:])
}

func (d *digestWriter) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digestWriter) text(s string) { d.crc = crc32.Update(d.crc, castagnoli, []byte(s)) }

// foldShardHeader folds the document metadata and BM25 constants.
func (d *digestWriter) foldShardHeader(id, numDocs, statsK int, avgDocLen float64, bm25 BM25Params, docLens []uint32, globalIDs []int64) {
	d.u32(uint32(id))
	d.u32(uint32(numDocs))
	d.u32(uint32(statsK))
	d.f64(avgDocLen)
	d.f64(bm25.K1)
	d.f64(bm25.B)
	for _, dl := range docLens {
		d.u32(dl)
	}
	for _, g := range globalIDs {
		d.u64(uint64(g))
	}
}

// foldStats folds all twenty term statistics in canonical order.
func (d *digestWriter) foldStats(st *TermStats) {
	d.u32(uint32(st.PostingLen))
	d.f64(st.IDF)
	d.f64(st.MinScore)
	d.f64(st.Q1)
	d.f64(st.Mean)
	d.f64(st.Median)
	d.f64(st.GeoMean)
	d.f64(st.HarmMean)
	d.f64(st.Q3)
	d.f64(st.KthScore)
	d.f64(st.MaxScore)
	d.f64(st.Variance)
	d.f64(st.SumScore)
	d.f64(st.SumScore2)
	d.u32(uint32(st.DocsEverInTopK))
	d.u32(uint32(st.NumLocalMaxima))
	d.u32(uint32(st.NumMaximaAboveMean))
	d.u32(uint32(st.NumMaxScore))
	d.u32(uint32(st.DocsWithin5OfMax))
	d.u32(uint32(st.DocsWithin5OfKth))
	d.f64(st.EstMaxScore)
}

// foldPositions folds one term's positional lists.
func (d *digestWriter) foldPositions(positions [][]uint32) {
	for _, pos := range positions {
		d.u32(uint32(len(pos)))
		for _, p := range pos {
			d.u32(p)
		}
	}
}

// computeDigest folds every serialized region the per-block sums do NOT
// cover into one whole-shard CRC32C: document metadata, BM25 constants,
// per-term statistics, the full block overlay (bounds, quantized
// bounds, payload geometry), positional lists, and the block sums
// themselves. Corruption anywhere in a shard file therefore fails
// either a block sum (posting bytes) or the digest (everything else) —
// a flipped bit can not land in an unprotected byte.
func (s *Shard) computeDigest() uint32 {
	var d digestWriter
	d.foldShardHeader(s.ID, s.NumDocs, s.StatsK, s.AvgDocLen, s.BM25, s.DocLens, s.GlobalIDs)
	for i := range s.Terms {
		ti := &s.Terms[i]
		d.text(ti.Text)
		for _, sum := range ti.Sums {
			d.u32(sum)
		}
		d.foldStats(&ti.Stats)
		d.u32(uint32(ti.Packed.N))
		for _, b := range ti.Blocks {
			d.u32(b.MaxDoc)
			d.f64(b.Max)
			d.u32(b.Off)
			d.u32(uint32(b.DocW) | uint32(b.TFW)<<8 | uint32(b.QMax)<<16)
		}
		d.foldPositions(ti.Positions)
	}
	return d.crc
}

// SealIntegrity computes and installs the shard's per-block checksums
// and whole-shard digest from its current in-memory contents, and resets
// the lazy-verification memo. Finalize seals every built shard; loading
// a pre-checksum (v3) shard seals on upgrade so the scrubber and lazy
// query-time verification work uniformly afterwards.
func (s *Shard) SealIntegrity() {
	total := 0
	off := make([]int, len(s.Terms)+1)
	for i := range s.Terms {
		ti := &s.Terms[i]
		if len(ti.Sums) != len(ti.Blocks) {
			ti.Sums = make([]uint32, len(ti.Blocks))
		}
		for bi := range ti.Blocks {
			ti.Sums[bi] = s.blockSum(ti, bi)
		}
		off[i] = total
		total += len(ti.Blocks)
	}
	off[len(s.Terms)] = total
	s.Digest = s.computeDigest()
	s.initIntegState()
}

// initIntegState builds the lazy-verification memo from the shard's
// existing Sums without recomputing them. The v4 load path uses this
// directly: resealing there would overwrite the on-disk checksums and
// blind eager verification to file corruption.
func (s *Shard) initIntegState() {
	total := 0
	off := make([]int, len(s.Terms)+1)
	for i := range s.Terms {
		off[i] = total
		total += len(s.Terms[i].Blocks)
	}
	off[len(s.Terms)] = total
	words := (total + 31) / 32
	s.integ = &integState{
		off:      off,
		total:    total,
		verified: make([]atomic.Uint32, words),
		corrupt:  make([]atomic.Uint32, words),
	}
}

// HasChecksums reports whether the shard carries sealed integrity
// metadata (always true after Finalize or a successful load).
func (s *Shard) HasChecksums() bool { return s.integ != nil }

// TotalBlocks returns how many posting blocks the shard holds across all
// terms — the scrubber's iteration space.
func (s *Shard) TotalBlocks() int {
	if s.integ == nil {
		return 0
	}
	return s.integ.total
}

// BlockAt translates a global block index (0..TotalBlocks) into its
// term and term-local block index.
func (s *Shard) BlockAt(g int) (ti *TermInfo, bi int) {
	st := s.integ
	if st == nil || g < 0 || g >= st.total {
		panic(fmt.Sprintf("index: block %d out of %d", g, s.TotalBlocks()))
	}
	// Binary search the offset table for the owning term.
	lo, hi := 0, len(s.Terms)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if st.off[mid] <= g {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return &s.Terms[lo], g - st.off[lo]
}

// BlockBytes returns the checksummed byte size of global block g — its
// 10-byte decode header plus its packed payload — what the scrubber
// charges against its bytes/sec budget.
func (s *Shard) BlockBytes(g int) int {
	ti, bi := s.BlockAt(g)
	return 10 + ti.blockPayloadBytes(bi)
}

// globalBlock returns term ti's block bi as a global block index, or -1
// when the shard's own bookkeeping can't be trusted to map it (e.g. a
// corrupted dictionary) — the caller then verifies without memoizing.
func (s *Shard) globalBlock(ti *TermInfo, bi int) int {
	t, ok := s.dict[ti.Text]
	if !ok || int(t) >= len(s.Terms) || &s.Terms[t] != ti {
		return -1
	}
	g := s.integ.off[t] + bi
	if g < 0 || g >= s.integ.total {
		return -1
	}
	return g
}

// VerifyBlock re-checksums term ti's block bi against its sealed sum,
// memoizing the verdict: the first call per block pays the CRC, later
// calls are one atomic load. A mismatch returns a *CorruptionError and
// is remembered — once a block is known corrupt it stays flagged until
// the shard is re-sealed (repair replaces the whole shard object).
func (s *Shard) VerifyBlock(ti *TermInfo, bi int) error {
	st := s.integ
	if st == nil {
		return nil // unsealed (legacy in-memory build): nothing to check
	}
	if bi >= len(ti.Sums) {
		return fmt.Errorf("index: term %q has %d checksums for %d blocks", ti.Text, len(ti.Sums), len(ti.Blocks))
	}
	g := s.globalBlock(ti, bi)
	if g < 0 {
		// Unmappable block (corrupt bookkeeping): verify without memoizing.
		if got := s.blockSum(ti, bi); got != ti.Sums[bi] {
			return &CorruptionError{Shard: s.ID, Term: ti.Text, Block: bi, Want: ti.Sums[bi], Got: got}
		}
		return nil
	}
	w, mask := st.bit(g)
	if st.verified[w].Load()&mask != 0 {
		if st.corrupt[w].Load()&mask != 0 {
			return &CorruptionError{Shard: s.ID, Term: ti.Text, Block: bi, Want: ti.Sums[bi], Got: s.blockSum(ti, bi)}
		}
		return nil
	}
	got := s.blockSum(ti, bi)
	if got != ti.Sums[bi] {
		for {
			old := st.corrupt[w].Load()
			if st.corrupt[w].CompareAndSwap(old, old|mask) {
				break
			}
		}
		st.corruptBlocks.Add(1)
		s.markVerified(w, mask)
		return &CorruptionError{Shard: s.ID, Term: ti.Text, Block: bi, Want: ti.Sums[bi], Got: got}
	}
	s.markVerified(w, mask)
	return nil
}

func (s *Shard) markVerified(w int, mask uint32) {
	st := s.integ
	for {
		old := st.verified[w].Load()
		if st.verified[w].CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// VerifyBlockAt is VerifyBlock by global block index — the scrubber's
// entry point.
func (s *Shard) VerifyBlockAt(g int) error {
	ti, bi := s.BlockAt(g)
	return s.VerifyBlock(ti, bi)
}

// ResetVerification clears the lazy-verification memo so subsequent
// verifies re-checksum their blocks. The scrubber calls this at the
// start of each scrub epoch: rot that appears *after* a block was first
// verified would otherwise hide behind the memo forever. Blocks already
// known corrupt stay flagged — corruption is sticky until the shard
// object is replaced by repair.
func (s *Shard) ResetVerification() {
	st := s.integ
	if st == nil {
		return
	}
	for w := range st.verified {
		for {
			old := st.verified[w].Load()
			keep := old & st.corrupt[w].Load()
			if st.verified[w].CompareAndSwap(old, keep) {
				break
			}
		}
	}
}

// VerifyQuery lazily verifies every block of every query term present in
// the shard, returning the first localized mismatch. This is the
// query-time integrity gate: an ISN calls it before evaluation, so a
// mismatched block is never scored — the query is answered by a sibling
// replica while this one quarantines and repairs. Memoization makes the
// warm cost one atomic load per block of the query's terms.
func (s *Shard) VerifyQuery(terms []string) error {
	if s.integ == nil {
		return nil
	}
	for _, t := range terms {
		ti, ok := s.Lookup(t)
		if !ok {
			continue
		}
		for bi := range ti.Blocks {
			if err := s.VerifyBlock(ti, bi); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyIntegrity re-checksums the whole shard — digest first (document
// metadata), then every posting block — returning the first localized
// mismatch. ReadShard runs it eagerly on every v4 load; the indexer's
// -verify pass and tests run it on demand.
func (s *Shard) VerifyIntegrity() error {
	if s.integ == nil {
		return nil
	}
	if got := s.computeDigest(); got != s.Digest {
		return &CorruptionError{Shard: s.ID, Block: -1, Want: s.Digest, Got: got}
	}
	for i := range s.Terms {
		ti := &s.Terms[i]
		if len(ti.Sums) != len(ti.Blocks) {
			return fmt.Errorf("index: term %q has %d checksums for %d blocks", ti.Text, len(ti.Sums), len(ti.Blocks))
		}
		for bi := range ti.Blocks {
			if err := s.VerifyBlock(ti, bi); err != nil {
				return err
			}
		}
	}
	return nil
}

// CorruptBlocks reports how many blocks lazy verification has found
// corrupt so far — the quarantine trigger an owning server polls.
func (s *Shard) CorruptBlocks() int {
	if s.integ == nil {
		return 0
	}
	return int(s.integ.corruptBlocks.Load())
}

// PostingBytes returns the checksummed byte size of the shard's
// postings — the sum of every block's header-plus-payload, exactly
// Σ BlockBytes — the scrub-pacing denominator: a scrubber at B
// bytes/sec revisits every block once per PostingBytes/B seconds.
func (s *Shard) PostingBytes() int {
	n := 0
	for i := range s.Terms {
		ti := &s.Terms[i]
		for bi := range ti.Blocks {
			n += 10 + ti.blockPayloadBytes(bi)
		}
	}
	return n
}

// PackedPostingBytes returns the resident byte size of the shard's
// packed postings payloads (including per-term decoder pad) — the
// quantity the indexer's -memstats report compares against the 8
// bytes/posting of the unpacked representation.
func (s *Shard) PackedPostingBytes() int {
	n := 0
	for i := range s.Terms {
		n += len(s.Terms[i].Packed.Data)
	}
	return n
}

// NumPostings returns the shard's total posting count across all terms.
func (s *Shard) NumPostings() int {
	n := 0
	for i := range s.Terms {
		n += s.Terms[i].Packed.N
	}
	return n
}
