package index

import (
	"encoding/binary"
	"fmt"
)

// EncodePostings compresses a document-ordered postings list as
// delta-varint pairs: (docID gap, term frequency). Real engines store
// postings this way; here it shrinks shard files roughly 4-6x versus raw
// gob-encoded structs and exercises the decode path cottage-server uses
// at load time.
func EncodePostings(ps []Posting) []byte {
	// Worst case 2 x 5 bytes per posting.
	buf := make([]byte, 0, len(ps)*4)
	var scratch [binary.MaxVarintLen64]byte
	prev := uint32(0)
	for _, p := range ps {
		gap := p.Doc - prev // first posting: gap from zero
		n := binary.PutUvarint(scratch[:], uint64(gap))
		buf = append(buf, scratch[:n]...)
		n = binary.PutUvarint(scratch[:], uint64(p.TF))
		buf = append(buf, scratch[:n]...)
		prev = p.Doc
	}
	return buf
}

// DecodePostings reverses EncodePostings. n is the expected posting
// count; a malformed or truncated blob returns an error rather than a
// short list.
func DecodePostings(blob []byte, n int) ([]Posting, error) {
	ps := make([]Posting, 0, n)
	prev := uint32(0)
	off := 0
	for i := 0; i < n; i++ {
		gap, read := binary.Uvarint(blob[off:])
		if read <= 0 {
			return nil, fmt.Errorf("index: corrupt postings blob at entry %d (doc gap)", i)
		}
		off += read
		tf, read := binary.Uvarint(blob[off:])
		if read <= 0 {
			return nil, fmt.Errorf("index: corrupt postings blob at entry %d (tf)", i)
		}
		off += read
		doc := prev + uint32(gap)
		if i > 0 && doc <= prev {
			return nil, fmt.Errorf("index: postings blob not document-ordered at entry %d", i)
		}
		if tf == 0 {
			return nil, fmt.Errorf("index: zero term frequency at entry %d", i)
		}
		ps = append(ps, Posting{Doc: doc, TF: uint32(tf)})
		prev = doc
	}
	if off != len(blob) {
		return nil, fmt.Errorf("index: %d trailing bytes after %d postings", len(blob)-off, n)
	}
	return ps, nil
}
