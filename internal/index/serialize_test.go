package index

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"os"
	"strings"
	"testing"
)

// wireOf round-trips a shard into its editable wire form so tests can
// corrupt one field at a time.
func wireOf(t *testing.T, s *Shard) *shardWire {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var w shardWire
	if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
		t.Fatal(err)
	}
	return &w
}

func readWire(t *testing.T, w *shardWire) (*Shard, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	return ReadShard(&buf)
}

// legacyWireOf round-trips a shard into the editable wire form of an
// old format version, via EncodeLegacy.
func legacyWireOf(t *testing.T, s *Shard, version int) *shardWire {
	t.Helper()
	var buf bytes.Buffer
	if err := s.EncodeLegacy(&buf, version); err != nil {
		t.Fatal(err)
	}
	var w shardWire
	if err := gob.NewDecoder(&buf).Decode(&w); err != nil {
		t.Fatal(err)
	}
	return &w
}

func TestReadShardRejectsCorruptWire(t *testing.T) {
	s := buildTestShard(t)
	cases := []struct {
		name    string
		mutate  func(w *shardWire)
		errFrag string
	}{
		{"old version", func(w *shardWire) { w.Version = wireVersionV3 - 1 }, "format version"},
		{"future version", func(w *shardWire) { w.Version = wireVersion + 1 }, "format version"},
		{"missing blocks", func(w *shardWire) { w.Blocks = w.Blocks[:1] }, "inconsistent term arrays"},
		{"missing stats", func(w *shardWire) { w.TermStats = w.TermStats[:1] }, "inconsistent term arrays"},
		{"missing packed payload", func(w *shardWire) { w.PackedData = w.PackedData[:1] }, "inconsistent term arrays"},
		{"corrupt packed payload", func(w *shardWire) { w.PackedData[0] = []byte{0xff} }, "checksum mismatch"},
		{"positional arrays", func(w *shardWire) { w.Positions = make([][][]uint32, 1) }, "positional arrays"},
		{"invalid shard", func(w *shardWire) { w.NumDocs++ }, "failed validation"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := wireOf(t, s)
			c.mutate(w)
			_, err := readWire(t, w)
			if err == nil {
				t.Fatalf("corruption %q decoded successfully", c.name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Fatalf("corruption %q: error %q does not mention %q", c.name, err, c.errFrag)
			}
		})
	}
}

// TestLegacyCorruptBlobRejected: a legacy file whose varint postings
// blob does not decode is rejected with the offending term named.
func TestLegacyCorruptBlobRejected(t *testing.T) {
	s := buildTestShard(t)
	for _, v := range []int{wireVersionV3, wireVersionV4} {
		w := legacyWireOf(t, s, v)
		w.PostingBlobs[0] = []byte{0xff}
		if _, err := readWire(t, w); err == nil || !strings.Contains(err.Error(), "term") {
			t.Fatalf("v%d corrupt blob: got %v", v, err)
		}
	}
}

func TestEncodeLegacyRejectsUnknownVersion(t *testing.T) {
	s := buildTestShard(t)
	var buf bytes.Buffer
	if err := s.EncodeLegacy(&buf, wireVersion); err == nil {
		t.Fatal("EncodeLegacy accepted the current version")
	}
	if err := s.EncodeLegacy(&buf, 2); err == nil {
		t.Fatal("EncodeLegacy accepted an ancient version")
	}
}

func TestReadShardRejectsGarbage(t *testing.T) {
	if _, err := ReadShard(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage decoded successfully")
	}
	if _, err := ReadShard(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream decoded successfully")
	}
}

func TestSaveFileErrors(t *testing.T) {
	s := buildTestShard(t)
	if err := s.SaveFile(t.TempDir() + "/missing-dir/shard.gob"); err == nil {
		t.Fatal("SaveFile into a missing directory should fail")
	}
	// A directory path fails at create time on write-open.
	if err := s.SaveFile(t.TempDir()); err == nil {
		t.Fatal("SaveFile onto a directory should fail")
	}
}

func TestLoadFileRejectsCorruptFile(t *testing.T) {
	path := t.TempDir() + "/bad.gob"
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("corrupt file loaded successfully")
	}
}

// floatMinHeap.Pop exists only to satisfy heap.Interface (heapInsertions
// uses Fix, never Pop); keep it honest anyway.
func TestFloatMinHeapPop(t *testing.T) {
	h := &floatMinHeap{}
	heap.Push(h, 3.0)
	heap.Push(h, 1.0)
	heap.Push(h, 2.0)
	for i, want := range []float64{1, 2, 3} {
		if got := heap.Pop(h).(float64); got != want {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
}
