package index

import (
	"fmt"
	"math"

	"cottage/internal/simdpack"
)

// Packed postings layout (wire v5): a term's document-ordered postings
// are tiled into the same 64-posting blocks the block-max overlay
// already summarizes, and each block is stored bit-packed at a per-block
// fixed width — document IDs as gaps from the previous document
// (delta-coded against the preceding block's MaxDoc across block
// boundaries), term frequencies as tf-1 (an all-ones block packs to
// zero bytes). The payloads of all blocks sit back to back in one byte
// slice per term, followed by simdpack.Pad readable slack for the
// vectorized decoders. The Block overlay doubles as the skip list: its
// Off/DocW/TFW fields locate and describe each block's bytes, MaxDoc
// bounds its document span, and Max/QMax bound its scores — so seeking
// means a binary search over Blocks plus one block decode, never a
// sequential scan.
//
// A partial trailing block (fewer than 64 live postings) is NOT padded
// out to 64 vertical lanes — that would charge rare terms a full
// block's bytes for a handful of postings, and rare terms dominate any
// Zipf vocabulary. Instead the tail is stored horizontally: the live
// gaps bit-packed back to back LSB-first at DocW bits each, then the
// live tf-1 values at TFW bits each, byte-aligned between the two runs
// and sized exactly ceil(n*w/8). Tails are decoded by a scalar loop —
// they hold at most 63 postings and sit at the end of a traversal, so
// they are never the hot path the SIMD kernels exist for. Terms with no
// full block (N < BlockSize) carry no decoder pad either, because the
// vectorized unpackers never touch them; decoders derive the live
// count from Packed.N.

// PackedPostings is one term's bit-packed postings payload.
type PackedPostings struct {
	// N is the posting count (the authoritative list length; the last
	// block holds N - (len(Blocks)-1)*BlockSize live postings).
	N int
	// Data holds every block's packed payload back to back at the
	// offsets recorded in the Block overlay, plus simdpack.Pad trailing
	// bytes of readable slack when any block is full (vertical) and
	// therefore read by the vectorized unpackers.
	Data []byte
}

// Len returns the term's posting count.
func (ti *TermInfo) Len() int { return ti.Packed.N }

// packPostings packs a document-ordered postings list, returning the
// payload and the geometric skeleton of the block overlay (Off, DocW,
// TFW, MaxDoc filled; Max and QMax are the caller's to fill from the
// per-posting scores). Non-ascending or zero-tf inputs survive the
// round trip bit-exactly (gap arithmetic wraps mod 2^32), so Validate
// still sees — and rejects — them after packing.
func packPostings(ps []Posting) (PackedPostings, []Block) {
	if len(ps) == 0 {
		return PackedPostings{}, nil
	}
	nb := (len(ps) + BlockSize - 1) / BlockSize
	blocks := make([]Block, 0, nb)
	data := make([]byte, 0, 4*len(ps))
	prev := uint32(0)
	for lo := 0; lo < len(ps); lo += BlockSize {
		hi := lo + BlockSize
		if hi > len(ps) {
			hi = len(ps)
		}
		live := hi - lo
		var gaps, tfm1 [BlockSize]uint32
		p := prev
		for i := lo; i < hi; i++ {
			gaps[i-lo] = ps[i].Doc - p
			p = ps[i].Doc
			tfm1[i-lo] = ps[i].TF - 1
		}
		docW := simdpack.Width(gaps[:live])
		tfW := simdpack.Width(tfm1[:live])
		off := len(data)
		if live == BlockSize {
			size := simdpack.PackedBytes(docW) + simdpack.PackedBytes(tfW)
			data = append(data, make([]byte, size)...)
			simdpack.Pack(data[off:], &gaps, docW)
			simdpack.Pack(data[off+simdpack.PackedBytes(docW):], &tfm1, tfW)
		} else {
			size := tailBytes(live, docW) + tailBytes(live, tfW)
			data = append(data, make([]byte, size)...)
			packTail(data[off:], gaps[:live], docW)
			packTail(data[off+tailBytes(live, docW):], tfm1[:live], tfW)
		}
		blocks = append(blocks, Block{
			MaxDoc: ps[hi-1].Doc,
			Off:    uint32(off),
			DocW:   uint8(docW),
			TFW:    uint8(tfW),
		})
		prev = ps[hi-1].Doc
	}
	if len(ps) >= BlockSize {
		data = append(data, make([]byte, simdpack.Pad)...)
	}
	return PackedPostings{N: len(ps), Data: data}, blocks
}

// tailBytes is the horizontal payload size of n values at width w:
// n*w bits rounded up to whole bytes.
func tailBytes(n int, w uint32) int {
	return (n*int(w) + 7) / 8
}

// packTail bit-packs vals back to back LSB-first at width w into dst.
// dst[:tailBytes(len(vals), w)] must be zeroed; every value must fit in
// w bits. Like Pack this runs once at build time, so it is scalar.
func packTail(dst []byte, vals []uint32, w uint32) {
	if w == 0 {
		return
	}
	bit := 0
	for _, v := range vals {
		for b := uint32(0); b < w; b++ {
			if v&(1<<b) != 0 {
				dst[bit>>3] |= 1 << (bit & 7)
			}
			bit++
		}
	}
}

// unpackTail decodes n horizontally packed values at width w from src
// into dst[:n], streaming bytes through a 64-bit window so the cost is
// ~one shift/mask per value. It reads exactly tailBytes(n, w) bytes.
// Tails sit on the query hot path for rare terms (a short list is all
// tail), so this must stay fast even though it is scalar.
func unpackTail(src []byte, w uint32, n int, dst *[BlockSize]uint32) {
	if w == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return
	}
	mask := uint32(uint64(1)<<w - 1)
	acc := uint64(0)
	bits := uint32(0)
	off := 0
	for i := 0; i < n; i++ {
		for bits < w {
			acc |= uint64(src[off]) << bits
			off++
			bits += 8
		}
		dst[i] = uint32(acc) & mask
		acc >>= w
		bits -= w
	}
}

// blockBase returns the delta base of block bi: the previous block's
// last document, or zero for the first block.
func (ti *TermInfo) blockBase(bi int) uint32 {
	if bi == 0 {
		return 0
	}
	return ti.Blocks[bi-1].MaxDoc
}

// DecodeBlockInto decodes block bi into caller-owned arrays — documents
// reconstructed from their gaps, term frequencies from tf-1 — and
// returns the block's live posting count (BlockSize except possibly for
// the last block). It is the only read path into packed postings and is
// allocation-free; checkPackedGeometry must have accepted the term (as
// Validate guarantees for every built or loaded shard) or the slicing
// below may panic.
func (ti *TermInfo) DecodeBlockInto(bi int, docs, tfs *[BlockSize]uint32) int {
	blk := &ti.Blocks[bi]
	off := int(blk.Off)
	if live := ti.Packed.N - bi*BlockSize; live < BlockSize {
		// Horizontal tail: scalar-decode the live lanes, then fill the
		// dead ones the way a zero-gap / zero-tf-1 vertical block would
		// have (repeat the last document, tf 1), so in-block scans that
		// run past the live region see the same values either way.
		unpackTail(ti.Packed.Data[off:], uint32(blk.DocW), live, docs)
		d := ti.blockBase(bi)
		for i := 0; i < live; i++ {
			d += docs[i]
			docs[i] = d
		}
		unpackTail(ti.Packed.Data[off+tailBytes(live, uint32(blk.DocW)):], uint32(blk.TFW), live, tfs)
		for i := 0; i < live; i++ {
			tfs[i]++
		}
		for i := live; i < BlockSize; i++ {
			docs[i] = d
			tfs[i] = 1
		}
		return live
	}
	docBytes := simdpack.PackedBytes(uint32(blk.DocW))
	simdpack.UnpackDeltas(ti.Packed.Data[off:], uint32(blk.DocW), ti.blockBase(bi), docs)
	simdpack.UnpackInc(ti.Packed.Data[off+docBytes:], uint32(blk.TFW), tfs)
	return BlockSize
}

// Posting decodes the i-th posting. It decodes a whole block to return
// one value, so it is for spot reads (tests, tools); traversals use
// DecodeBlockInto or AllPostings.
func (ti *TermInfo) Posting(i int) Posting {
	var docs, tfs [BlockSize]uint32
	ti.DecodeBlockInto(i/BlockSize, &docs, &tfs)
	return Posting{Doc: docs[i%BlockSize], TF: tfs[i%BlockSize]}
}

// AllPostings materializes the full postings list in document order —
// the bridge for cold paths (stats recomputation, legacy re-encoding,
// differential tests) that want the flat slice back.
func (ti *TermInfo) AllPostings() []Posting {
	out := make([]Posting, 0, ti.Packed.N)
	var docs, tfs [BlockSize]uint32
	for bi := range ti.Blocks {
		n := ti.DecodeBlockInto(bi, &docs, &tfs)
		for i := 0; i < n; i++ {
			out = append(out, Posting{Doc: docs[i], TF: tfs[i]})
		}
	}
	return out
}

// blockPayloadBytes returns the packed payload size of block bi:
// vertical m128-word sizing for full blocks, exact horizontal sizing
// for a partial tail.
func (ti *TermInfo) blockPayloadBytes(bi int) int {
	blk := &ti.Blocks[bi]
	if live := ti.Packed.N - bi*BlockSize; live < BlockSize {
		return tailBytes(live, uint32(blk.DocW)) + tailBytes(live, uint32(blk.TFW))
	}
	return simdpack.PackedBytes(uint32(blk.DocW)) + simdpack.PackedBytes(uint32(blk.TFW))
}

// BlockData returns the packed payload bytes of block bi — the exact
// region its integrity checksum covers. Corruption-injection tests flip
// bits here; nothing else should write through it.
func (ti *TermInfo) BlockData(bi int) []byte {
	blk := &ti.Blocks[bi]
	lo := int(blk.Off)
	return ti.Packed.Data[lo : lo+ti.blockPayloadBytes(bi)]
}

// checkPackedGeometry validates the structural invariants that make
// decoding safe: widths within 0..32, offsets contiguous from zero, the
// payload exactly accounted for (plus the pad), and the posting count
// consistent with the block count. It must pass before any
// DecodeBlockInto; ReadShard and Validate enforce that ordering.
func (ti *TermInfo) checkPackedGeometry() error {
	n := ti.Packed.N
	if n <= 0 {
		return fmt.Errorf("index: term %q has non-positive packed posting count %d", ti.Text, n)
	}
	want := (n + BlockSize - 1) / BlockSize
	if len(ti.Blocks) != want {
		return fmt.Errorf("index: term %q has %d blocks for %d postings, want %d", ti.Text, len(ti.Blocks), n, want)
	}
	off := 0
	for bi := range ti.Blocks {
		blk := &ti.Blocks[bi]
		if blk.DocW > 32 || blk.TFW > 32 {
			return fmt.Errorf("index: term %q block %d has bit width beyond 32 (doc %d, tf %d)",
				ti.Text, bi, blk.DocW, blk.TFW)
		}
		if int(blk.Off) != off {
			return fmt.Errorf("index: term %q block %d offset %d, want %d", ti.Text, bi, blk.Off, off)
		}
		off += ti.blockPayloadBytes(bi)
	}
	pad := 0
	if n >= BlockSize {
		// Only terms with at least one full vertical block are read by
		// the vectorized unpackers, so only they need the decoder slack.
		pad = simdpack.Pad
	}
	if len(ti.Packed.Data) != off+pad {
		return fmt.Errorf("index: term %q packed payload is %d bytes, want %d+%d pad",
			ti.Text, len(ti.Packed.Data), off, pad)
	}
	return nil
}

// DequantBound dequantizes a block's QMax back into a score upper
// bound. 255 maps back to maxScore exactly, so the tightest block loses
// nothing; every other step is maxScore*q/255, and quantizeBound's
// fixup guarantees the result is >= the block's exact Max. Skip
// decisions may therefore trust it unconditionally — and because it is
// only ever compared against thresholds, never added into a hit's
// score, quantization cannot perturb ranked results.
func DequantBound(q uint8, maxScore float64) float64 {
	if q == 255 {
		return maxScore
	}
	return maxScore * float64(q) / 255
}

// quantizeBound returns the smallest q with DequantBound(q, maxScore)
// >= bound — the tightest sound 8-bit encoding of a block's score
// ceiling.
func quantizeBound(bound, maxScore float64) uint8 {
	if !(bound > 0) || !(maxScore > 0) {
		return 0
	}
	qf := math.Ceil(bound / maxScore * 255)
	q := 255
	if qf < 255 {
		q = int(qf)
		if q < 0 {
			q = 0
		}
	}
	// Float division can land a step off in either direction; walk up
	// until sound, then down while the step below is still sound.
	for q < 255 && DequantBound(uint8(q), maxScore) < bound {
		q++
	}
	for q > 0 && DequantBound(uint8(q-1), maxScore) >= bound {
		q--
	}
	return uint8(q)
}
