package index

import (
	"bytes"
	"math"
	"testing"

	"cottage/internal/xrand"
)

// buildTestShard creates a small shard with a mix of common and rare terms.
func buildTestShard(t testing.TB) *Shard {
	t.Helper()
	b := NewBuilder(3, DefaultBM25(), 10)
	rng := xrand.New(5)
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	zipf := xrand.NewZipf(rng, 1.0, len(vocab))
	for d := 0; d < 400; d++ {
		terms := make(map[string]int)
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			terms[vocab[zipf.Draw()]]++
		}
		b.Add(int64(1000+d), terms, n)
	}
	s := b.Finalize()
	if err := s.Validate(); err != nil {
		t.Fatalf("test shard invalid: %v", err)
	}
	return s
}

func TestBuilderBasics(t *testing.T) {
	s := buildTestShard(t)
	if s.ID != 3 {
		t.Errorf("shard ID = %d", s.ID)
	}
	if s.NumDocs != 400 {
		t.Errorf("NumDocs = %d", s.NumDocs)
	}
	if s.GlobalDoc(0) != 1000 || s.GlobalDoc(399) != 1399 {
		t.Error("global IDs wrong")
	}
	if s.AvgDocLen < 20 || s.AvgDocLen > 80 {
		t.Errorf("AvgDocLen = %v", s.AvgDocLen)
	}
}

func TestLookup(t *testing.T) {
	s := buildTestShard(t)
	ti, ok := s.Lookup("alpha")
	if !ok || ti.Text != "alpha" {
		t.Fatal("Lookup failed for present term")
	}
	if _, ok := s.Lookup("nonexistent"); ok {
		t.Fatal("Lookup succeeded for absent term")
	}
	if !s.HasTerm("alpha") || s.HasTerm("nope") {
		t.Fatal("HasTerm wrong")
	}
}

func TestPostingsSortedAndValid(t *testing.T) {
	s := buildTestShard(t)
	for i := range s.Terms {
		ps := s.Terms[i].AllPostings()
		if len(ps) != s.Terms[i].Len() {
			t.Fatalf("term %q decodes %d postings, Len says %d", s.Terms[i].Text, len(ps), s.Terms[i].Len())
		}
		for j := 1; j < len(ps); j++ {
			if ps[j].Doc <= ps[j-1].Doc {
				t.Fatalf("term %q postings unsorted", s.Terms[i].Text)
			}
		}
	}
}

// mutatePostings decodes, mutates, and repacks one term's postings in
// place, preserving the existing block bounds — simulating a buggy
// writer whose packed bytes and checksums are self-consistent but whose
// content violates the structural invariants.
func mutatePostings(ti *TermInfo, f func(ps []Posting)) {
	ps := ti.AllPostings()
	f(ps)
	packed, blocks := packPostings(ps)
	for bi := range blocks {
		if bi < len(ti.Blocks) {
			blocks[bi].Max = ti.Blocks[bi].Max
			blocks[bi].QMax = ti.Blocks[bi].QMax
		}
	}
	ti.Packed, ti.Blocks = packed, blocks
}

func TestBM25ScoreProperties(t *testing.T) {
	p := DefaultBM25()
	idf := 2.0
	base := p.Score(idf, 1, 100, 100)
	if base <= 0 {
		t.Fatal("score must be positive")
	}
	// Monotone in tf.
	if p.Score(idf, 5, 100, 100) <= base {
		t.Error("score should grow with tf")
	}
	// Saturation: bounded by idf*(k1+1).
	if p.Score(idf, 1000000, 100, 100) > idf*(p.K1+1) {
		t.Error("score exceeded tf->inf bound")
	}
	// Longer documents score lower at equal tf.
	if p.Score(idf, 3, 500, 100) >= p.Score(idf, 3, 50, 100) {
		t.Error("length normalization inverted")
	}
}

func TestTermStats(t *testing.T) {
	s := buildTestShard(t)
	for i := range s.Terms {
		ti := &s.Terms[i]
		st := ti.Stats
		if st.PostingLen != ti.Len() {
			t.Fatalf("%q: PostingLen mismatch", ti.Text)
		}
		if st.MinScore > st.Q1+1e-12 || st.Q1 > st.Median+1e-12 || st.Median > st.Q3+1e-12 || st.Q3 > st.MaxScore+1e-12 {
			t.Fatalf("%q: quantiles out of order: %+v", ti.Text, st)
		}
		if st.KthScore > st.MaxScore+1e-12 {
			t.Fatalf("%q: kth > max", ti.Text)
		}
		if st.Variance < 0 {
			t.Fatalf("%q: negative variance", ti.Text)
		}
		if st.NumMaxScore < 1 {
			t.Fatalf("%q: no posting attains max score", ti.Text)
		}
		if st.DocsWithin5OfMax < st.NumMaxScore {
			t.Fatalf("%q: 5%%-of-max band smaller than max count", ti.Text)
		}
		if st.DocsEverInTopK < min(s.StatsK, st.PostingLen) {
			t.Fatalf("%q: top-K insertions %d below minimum", ti.Text, st.DocsEverInTopK)
		}
		if st.DocsEverInTopK > st.PostingLen {
			t.Fatalf("%q: more insertions than postings", ti.Text)
		}
		if st.NumLocalMaxima < st.NumMaximaAboveMean {
			t.Fatalf("%q: above-mean maxima exceed total maxima", ti.Text)
		}
		if st.EstMaxScore < st.MaxScore {
			t.Fatalf("%q: estimated max score %v below true max %v", ti.Text, st.EstMaxScore, st.MaxScore)
		}
		// Verify the score moments against a direct recomputation.
		scores := s.Scores(ti)
		sum := 0.0
		max := 0.0
		for _, sc := range scores {
			sum += sc
			if sc > max {
				max = sc
			}
		}
		if math.Abs(sum-st.SumScore) > 1e-9 {
			t.Fatalf("%q: SumScore mismatch", ti.Text)
		}
		if math.Abs(max-st.MaxScore) > 1e-12 {
			t.Fatalf("%q: MaxScore mismatch", ti.Text)
		}
		if math.Abs(sum/float64(len(scores))-st.Mean) > 1e-9 {
			t.Fatalf("%q: Mean mismatch", ti.Text)
		}
	}
}

func TestKthScoreShortList(t *testing.T) {
	b := NewBuilder(0, DefaultBM25(), 10)
	b.Add(1, map[string]int{"rare": 2, "common": 1}, 10)
	b.Add(2, map[string]int{"common": 3}, 10)
	s := b.Finalize()
	ti, _ := s.Lookup("rare")
	// Fewer postings than K: the K-th score is the minimum.
	if ti.Stats.KthScore != ti.Stats.MinScore {
		t.Error("short-list KthScore should equal MinScore")
	}
}

func TestIDFDecreasesWithDF(t *testing.T) {
	s := buildTestShard(t)
	// alpha (rank 0) is the most common term; theta (rank 7) the rarest.
	a, _ := s.Lookup("alpha")
	z, _ := s.Lookup("theta")
	if a.Stats.PostingLen <= z.Stats.PostingLen {
		t.Skip("zipf draw did not order terms as expected")
	}
	if a.Stats.IDF >= z.Stats.IDF {
		t.Errorf("idf(common)=%v should be < idf(rare)=%v", a.Stats.IDF, z.Stats.IDF)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"abc123 DEF", []string{"abc123", "def"}},
		{"---", nil},
		{"trailing token", []string{"trailing", "token"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestAddText(t *testing.T) {
	b := NewBuilder(0, DefaultBM25(), 5)
	b.AddText(7, "the quick brown fox jumps over the lazy dog the end")
	s := b.Finalize()
	ti, ok := s.Lookup("the")
	if !ok {
		t.Fatal("term missing after AddText")
	}
	if ti.Posting(0).TF != 3 {
		t.Errorf("tf(the) = %d, want 3", ti.Posting(0).TF)
	}
	if s.DocLens[0] != 11 {
		t.Errorf("doc length = %d, want 11", s.DocLens[0])
	}
}

func TestSeek(t *testing.T) {
	ps := []Posting{{Doc: 2}, {Doc: 5}, {Doc: 9}, {Doc: 14}}
	cases := []struct {
		doc  uint32
		want int
	}{{0, 0}, {2, 0}, {3, 1}, {5, 1}, {9, 2}, {10, 3}, {14, 3}, {15, 4}}
	for _, c := range cases {
		if got := Seek(ps, c.doc); got != c.want {
			t.Errorf("Seek(%d) = %d, want %d", c.doc, got, c.want)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	s := buildTestShard(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs != s.NumDocs || got.NumTerms() != s.NumTerms() || got.ID != s.ID {
		t.Fatal("round-trip changed shard shape")
	}
	for i := range s.Terms {
		a, b := s.Terms[i], got.Terms[i]
		if a.Text != b.Text || a.Packed.N != b.Packed.N || !bytes.Equal(a.Packed.Data, b.Packed.Data) {
			t.Fatalf("term %d differs after round trip", i)
		}
		if a.Stats != b.Stats {
			t.Fatalf("term %q stats differ after round trip", a.Text)
		}
	}
	// The rebuilt dictionary must resolve.
	if _, ok := got.Lookup(s.Terms[0].Text); !ok {
		t.Fatal("dictionary not rebuilt")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := buildTestShard(t)
	path := t.TempDir() + "/shard.gob"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs != s.NumDocs {
		t.Fatal("file round trip lost documents")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path/shard.gob"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestBuilderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBuilder with statsK=0 should panic")
			}
		}()
		NewBuilder(0, DefaultBM25(), 0)
	}()
	b := NewBuilder(0, DefaultBM25(), 10)
	b.Add(1, map[string]int{"a": 1}, 1)
	b.Finalize()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add after Finalize should panic")
			}
		}()
		b.Add(2, map[string]int{"b": 1}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Finalize should panic")
			}
		}()
		b.Finalize()
	}()
	empty := NewBuilder(0, DefaultBM25(), 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Finalize of empty shard should panic")
			}
		}()
		empty.Finalize()
	}()
}

func TestZeroTFIgnored(t *testing.T) {
	b := NewBuilder(0, DefaultBM25(), 10)
	b.Add(1, map[string]int{"good": 2, "bad": 0}, 2)
	s := b.Finalize()
	if s.HasTerm("bad") {
		t.Error("zero-tf term should not be indexed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkFinalize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildTestShard(b)
	}
}
