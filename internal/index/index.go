// Package index implements the inverted-index substrate that stands in for
// Solr/Lucene in the paper's testbed: a dictionary, document-ordered
// postings lists, BM25 scoring, and — crucially for Cottage — the per-term
// index-time statistics that feed the quality predictor (Table I) and the
// latency predictor (Table II). The paper computes all its query features
// "during the indexing phase" from term statistics; Finalize does the same
// here, so query-time feature extraction is a handful of map lookups.
package index

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Posting is one (document, term-frequency) pair. Doc is a shard-local
// document ordinal; GlobalDoc translates to a collection-wide ID.
type Posting struct {
	Doc uint32
	TF  uint32
}

// TermInfo is everything a shard knows about one term: its bit-packed
// postings and the index-time statistics over that term's BM25 score
// distribution. Positions is non-nil only on positional shards (see
// EnablePositions): Positions[i] lists the ascending token offsets of
// the term in posting i's document.
type TermInfo struct {
	Text string
	// Packed holds the postings, block-bit-packed (see packed.go):
	// document gaps and tf-1 values at per-block fixed widths, decoded
	// block-at-a-time by DecodeBlockInto.
	Packed    PackedPostings
	Positions [][]uint32
	Stats     TermStats
	// Blocks is the block-max overlay and postings skip list: per-block
	// score upper bounds (exact and quantized) plus the location and
	// widths of each block's packed payload (see blockmax.go). Built in
	// Finalize and serialized with the shard; dynamic pruning, anytime
	// traversal, and every decode depend on it.
	Blocks []Block
	// Sums[i] is the CRC32C of block i's packed payload plus its decode
	// header (wire v5, see integrity.go). Sealed by SealIntegrity; the
	// query-time and scrub-time verifiers compare against it.
	Sums []uint32
}

// Shard is one ISN's index: a self-contained searchable partition. Shards
// are immutable once built (Builder.Finalize), which makes them safe for
// concurrent readers without locking.
type Shard struct {
	ID        int
	NumDocs   int
	AvgDocLen float64
	// DocLens[local] is the token length of the document, used by BM25
	// length normalization.
	DocLens []uint32
	// GlobalIDs[local] is the collection-wide document identifier.
	GlobalIDs []int64
	// dict maps term text to an offset into Terms.
	dict  map[string]int32
	Terms []TermInfo

	BM25 BM25Params
	// StatsK is the K used for the K-th-score statistics (top-K oriented
	// features). The paper evaluates P@10, so the default is 10.
	StatsK int

	// Digest is the whole-shard CRC32C over document metadata and the
	// per-block checksums (wire v4, see integrity.go).
	Digest uint32
	// integ is the lazy query-time verification memo; nil only for
	// shards that predate SealIntegrity (never after Finalize or load).
	integ *integState
}

// BM25Params are the classic Okapi BM25 constants.
type BM25Params struct {
	K1 float64
	B  float64
}

// DefaultBM25 returns the widely used K1=1.2, B=0.75 parameterization.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// Score computes the BM25 contribution of a term occurring tf times in a
// document of length dl, given the term's idf and the shard's average
// document length.
func (p BM25Params) Score(idf float64, tf, dl uint32, avgDocLen float64) float64 {
	ftf := float64(tf)
	norm := p.K1 * (1 - p.B + p.B*float64(dl)/avgDocLen)
	return idf * ftf * (p.K1 + 1) / (ftf + norm)
}

// Lookup returns the TermInfo for text and whether the shard contains it.
func (s *Shard) Lookup(text string) (*TermInfo, bool) {
	i, ok := s.dict[text]
	if !ok {
		return nil, false
	}
	return &s.Terms[i], true
}

// HasTerm reports whether the shard's dictionary contains text.
func (s *Shard) HasTerm(text string) bool {
	_, ok := s.dict[text]
	return ok
}

// NumTerms returns the dictionary size.
func (s *Shard) NumTerms() int { return len(s.Terms) }

// GlobalDoc translates a shard-local document ordinal to its
// collection-wide ID.
func (s *Shard) GlobalDoc(local uint32) int64 { return s.GlobalIDs[local] }

// TermScore computes the BM25 score of a single posting of term ti.
func (s *Shard) TermScore(ti *TermInfo, p Posting) float64 {
	return s.BM25.Score(ti.Stats.IDF, p.TF, s.DocLens[p.Doc], s.AvgDocLen)
}

// Builder accumulates documents and produces an immutable Shard. It is not
// safe for concurrent use; build shards in parallel with one Builder each.
type Builder struct {
	shardID    int
	bm25       BM25Params
	statsK     int
	docLens    []uint32
	globals    []int64
	dict       map[string]int32
	postings   [][]Posting
	positions  [][][]uint32
	terms      []string
	totalLen   uint64
	sealed     bool
	positional bool
}

// NewBuilder creates a Builder for shard shardID. statsK is the K used for
// K-th-score term statistics (use 10 to match the paper's P@10 focus).
func NewBuilder(shardID int, bm25 BM25Params, statsK int) *Builder {
	if statsK <= 0 {
		panic("index: statsK must be positive")
	}
	return &Builder{
		shardID: shardID,
		bm25:    bm25,
		statsK:  statsK,
		dict:    make(map[string]int32),
	}
}

// Add appends one document given its global ID, bag-of-words term
// frequencies, and total token length. Documents receive local ordinals in
// insertion order, so postings lists are document-ordered by construction.
func (b *Builder) Add(globalID int64, terms map[string]int, length int) {
	if b.sealed {
		panic("index: Add after Finalize")
	}
	local := uint32(len(b.docLens))
	b.docLens = append(b.docLens, uint32(length))
	b.globals = append(b.globals, globalID)
	b.totalLen += uint64(length)
	for text, tf := range terms {
		if tf <= 0 {
			continue
		}
		idx, ok := b.dict[text]
		if !ok {
			idx = int32(len(b.terms))
			b.dict[text] = idx
			b.terms = append(b.terms, text)
			b.postings = append(b.postings, nil)
			b.positions = append(b.positions, nil)
		}
		b.postings[idx] = append(b.postings[idx], Posting{Doc: local, TF: uint32(tf)})
		if b.positional {
			panic("index: positional builders must use AddTokens (Add has no ordering)")
		}
	}
}

// AddText tokenizes raw text with Tokenize and adds the document.
func (b *Builder) AddText(globalID int64, text string) {
	tokens := Tokenize(text)
	terms := make(map[string]int, len(tokens))
	for _, tok := range tokens {
		terms[tok]++
	}
	b.Add(globalID, terms, len(tokens))
}

// Finalize seals the builder and computes IDF plus the full Table I/II
// term statistics for every term. The Builder must not be used afterwards.
func (b *Builder) Finalize() *Shard {
	if b.sealed {
		panic("index: Finalize called twice")
	}
	b.sealed = true
	n := len(b.docLens)
	if n == 0 {
		panic("index: Finalize on empty shard")
	}
	s := &Shard{
		ID:        b.shardID,
		NumDocs:   n,
		AvgDocLen: float64(b.totalLen) / float64(n),
		DocLens:   b.docLens,
		GlobalIDs: b.globals,
		dict:      b.dict,
		Terms:     make([]TermInfo, len(b.terms)),
		BM25:      b.bm25,
		StatsK:    b.statsK,
	}
	for i := range b.terms {
		ti := &s.Terms[i]
		ti.Text = b.terms[i]
		if b.positional {
			ti.Positions = b.positions[i]
		}
		ps := b.postings[i]
		var scores []float64
		ti.Stats, scores = computeTermStats(s, ps, b.statsK)
		ti.Packed, ti.Blocks = packPostings(ps)
		fillBlockBounds(ti.Blocks, scores, ti.Stats.MaxScore)
	}
	s.SealIntegrity()
	return s
}

// Tokenize lower-cases text and splits it into maximal runs of letters and
// digits. It is intentionally simple — the experiments use a synthetic
// corpus — but sufficient for indexing arbitrary user text files too.
func Tokenize(text string) []string {
	text = strings.ToLower(text)
	var tokens []string
	start := -1
	for i, r := range text {
		alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			tokens = append(tokens, text[start:i])
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, text[start:])
	}
	return tokens
}

// Seek returns the smallest index i in ps with ps[i].Doc >= doc, or
// len(ps) if none. Postings are document-ordered, so this is a binary
// search; the dynamic pruning strategies use it to skip ranges.
func Seek(ps []Posting, doc uint32) int {
	return sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
}

// Validate performs internal consistency checks and returns a descriptive
// error for the first violation found. Tests and the indexer binary call
// it after builds and after deserialization.
func (s *Shard) Validate() error {
	// Checksums first: when the shard is sealed, a corrupted region fails
	// with a localized *CorruptionError (which term, which block) before
	// the structural checks below can misattribute it as, say, an
	// out-of-order postings list.
	if s.integ != nil {
		if err := s.VerifyIntegrity(); err != nil {
			return err
		}
	}
	if s.NumDocs != len(s.DocLens) || s.NumDocs != len(s.GlobalIDs) {
		return fmt.Errorf("index: doc metadata length mismatch (%d docs, %d lens, %d globals)",
			s.NumDocs, len(s.DocLens), len(s.GlobalIDs))
	}
	if len(s.dict) != len(s.Terms) {
		return fmt.Errorf("index: dict has %d entries, %d terms", len(s.dict), len(s.Terms))
	}
	for text, idx := range s.dict {
		if int(idx) >= len(s.Terms) || s.Terms[idx].Text != text {
			return fmt.Errorf("index: dict entry %q points at wrong term", text)
		}
	}
	var docs, tfs [BlockSize]uint32
	for i := range s.Terms {
		ti := &s.Terms[i]
		if ti.Packed.N == 0 {
			return fmt.Errorf("index: term %q has empty postings", ti.Text)
		}
		// Geometry before any decode: DecodeBlockInto trusts the block
		// offsets and widths it is handed.
		if err := ti.checkPackedGeometry(); err != nil {
			return err
		}
		prev := int64(-1)
		for bi := range ti.Blocks {
			n := ti.DecodeBlockInto(bi, &docs, &tfs)
			for j := 0; j < n; j++ {
				if int64(docs[j]) <= prev {
					return fmt.Errorf("index: term %q postings out of order", ti.Text)
				}
				if docs[j] >= uint32(s.NumDocs) {
					return fmt.Errorf("index: term %q references doc %d of %d", ti.Text, docs[j], s.NumDocs)
				}
				if tfs[j] == 0 {
					return fmt.Errorf("index: term %q has zero tf posting", ti.Text)
				}
				prev = int64(docs[j])
			}
		}
		if err := validatePositions(ti); err != nil {
			return err
		}
		st := ti.Stats
		if st.PostingLen != ti.Packed.N {
			return fmt.Errorf("index: term %q stats posting length %d != %d", ti.Text, st.PostingLen, ti.Packed.N)
		}
		if st.MaxScore < st.KthScore-1e-9 {
			return fmt.Errorf("index: term %q max score below kth score", ti.Text)
		}
		if math.IsNaN(st.IDF) || st.IDF < 0 {
			return fmt.Errorf("index: term %q has invalid idf %v", ti.Text, st.IDF)
		}
		if err := s.validateBlocks(ti); err != nil {
			return err
		}
	}
	return nil
}
