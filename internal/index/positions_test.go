package index

import (
	"bytes"
	"strings"
	"testing"
)

func buildPositionalShard(t testing.TB) *Shard {
	t.Helper()
	b := NewBuilder(0, DefaultBM25(), 5)
	b.EnablePositions()
	if !b.Positional() {
		t.Fatal("EnablePositions did not stick")
	}
	b.AddTokens(1, []string{"to", "be", "or", "not", "to", "be"})
	b.AddTokens(2, []string{"be", "not", "afraid"})
	b.AddTokens(3, []string{"or", "else"})
	s := b.Finalize()
	if err := s.Validate(); err != nil {
		t.Fatalf("positional shard invalid: %v", err)
	}
	return s
}

func TestPositionalBuilder(t *testing.T) {
	s := buildPositionalShard(t)
	if !s.HasPositions() {
		t.Fatal("positional shard reports no positions")
	}
	ti, ok := s.Lookup("to")
	if !ok {
		t.Fatal("term missing")
	}
	if ti.Posting(0).TF != 2 {
		t.Fatalf("tf(to, doc0) = %d, want 2", ti.Posting(0).TF)
	}
	want := []uint32{0, 4}
	got := ti.Positions[0]
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("positions(to, doc0) = %v, want %v", got, want)
	}
	// Bag-of-words shards carry no positions.
	if buildTestShard(t).HasPositions() {
		t.Fatal("bag-of-words shard reports positions")
	}
}

func TestPositionalSerializeRoundTrip(t *testing.T) {
	s := buildPositionalShard(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasPositions() {
		t.Fatal("positions lost in round trip")
	}
	for i := range s.Terms {
		a, b := s.Terms[i].Positions, got.Terms[i].Positions
		if len(a) != len(b) {
			t.Fatalf("term %q: position list count changed", s.Terms[i].Text)
		}
		for j := range a {
			if len(a[j]) != len(b[j]) {
				t.Fatalf("term %q posting %d: position count changed", s.Terms[i].Text, j)
			}
			for k := range a[j] {
				if a[j][k] != b[j][k] {
					t.Fatalf("term %q posting %d: position %d changed", s.Terms[i].Text, j, k)
				}
			}
		}
	}
}

func TestValidateCatchesPositionCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mutate  func(ti *TermInfo)
		errFrag string
	}{
		{"list count", func(ti *TermInfo) { ti.Positions = ti.Positions[:len(ti.Positions)-1] }, "position lists"},
		{"tf mismatch", func(ti *TermInfo) { ti.Positions[0] = ti.Positions[0][:0] }, "positions for tf"},
		{"not increasing", func(ti *TermInfo) { ti.Positions[0] = []uint32{4, 4} }, "not increasing"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s := buildPositionalShard(t)
			ti, ok := s.Lookup("to")
			if !ok {
				t.Fatal("term missing")
			}
			c.mutate(ti)
			// Re-seal so the checksums match the mutated content: this
			// test targets the structural invariants, which back up the
			// digest when the builder itself produced bad positional
			// data. (Unsealed mutation is rot; the digest catches it
			// first — see TestDigestCoversPositions.)
			s.SealIntegrity()
			err := s.Validate()
			if err == nil {
				t.Fatalf("corruption %q passed Validate", c.name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Fatalf("corruption %q: error %q does not mention %q", c.name, err, c.errFrag)
			}
		})
	}
}

// TestDigestCoversPositions: unsealed mutation of a positional list is
// rot, and the whole-shard digest catches it even though no posting
// byte changed.
func TestDigestCoversPositions(t *testing.T) {
	s := buildPositionalShard(t)
	ti, ok := s.Lookup("to")
	if !ok {
		t.Fatal("term missing")
	}
	ti.Positions[0][0]++
	err := s.VerifyIntegrity()
	if !IsCorruption(err) {
		t.Fatalf("position rot: got %v, want digest mismatch", err)
	}
	if !strings.Contains(err.Error(), "digest") {
		t.Fatalf("position rot surfaced as %q, want whole-shard digest", err)
	}
}

func TestPositionalPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EnablePositions after Add should panic")
			}
		}()
		b := NewBuilder(0, DefaultBM25(), 5)
		b.Add(1, map[string]int{"a": 1}, 1)
		b.EnablePositions()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddTokens after Finalize should panic")
			}
		}()
		b := NewBuilder(0, DefaultBM25(), 5)
		b.EnablePositions()
		b.AddTokens(1, []string{"a"})
		b.Finalize()
		b.AddTokens(2, []string{"b"})
	}()
}
