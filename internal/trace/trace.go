// Package trace generates the query workloads the paper replays against
// its testbed: a Wikipedia-like trace and a Lucene-nightly-benchmark-like
// trace (Section IV). Real trace files are not redistributable, so the two
// generators mirror the properties the evaluation depends on — Zipfian
// term popularity, a head-heavy query-length mix, topical coherence (the
// same query's terms tend to come from one topic), and Poisson arrivals —
// with deliberately different parameter mixes per trace so the two
// workloads produce distinct results, as in Figs. 10–15.
package trace

import (
	"fmt"

	"cottage/internal/textgen"
	"cottage/internal/xrand"
)

// Query is one search request in a trace.
type Query struct {
	ID        int
	Terms     []string
	ArrivalMS float64
}

// Kind selects a trace flavor.
type Kind int

const (
	// Wikipedia mimics the Wikipedia access trace: strongly topical
	// queries, head-heavy popularity, mostly 1-2 terms.
	Wikipedia Kind = iota
	// Lucene mimics the Lucene nightly benchmark: flatter term
	// popularity, more multi-term queries.
	Lucene
)

// String names the trace kind.
func (k Kind) String() string {
	switch k {
	case Wikipedia:
		return "wikipedia"
	case Lucene:
		return "lucene"
	default:
		return "unknown"
	}
}

// Config controls trace generation.
type Config struct {
	Kind Kind
	Seed uint64
	// NumQueries is the trace length.
	NumQueries int
	// QPS is the mean arrival rate (Poisson process). Non-stationary
	// profiles (Arrivals.Profile) treat it as the base rate their shapes
	// modulate.
	QPS float64
	// Arrivals shapes the arrival process over time. The zero value is
	// the stationary Poisson process traces always had, so existing
	// Config literals generate bit-identical traces.
	Arrivals ArrivalConfig
}

// DefaultConfig returns the workload used by the harness: 10K queries at
// 45 QPS. The paper replays its traces for 1000 seconds; we keep the
// query count and raise the arrival rate so the 16-ISN cluster sees
// utilization in the regime the paper's power measurements imply
// (~36 W ≈ 20% busy at 1.8 GHz under our power model).
func DefaultConfig(kind Kind, seed uint64) Config {
	return Config{Kind: kind, Seed: seed, NumQueries: 10000, QPS: 45}
}

// profile captures the per-kind generation parameters.
type profile struct {
	lengthCDF   []float64 // P(len <= i+1)
	topicZipfS  float64   // popularity skew across topics
	withinZipfS float64   // popularity skew within a topic's term list
	offTopicP   float64   // chance a term is drawn from the background
}

func profileFor(kind Kind) profile {
	switch kind {
	case Wikipedia:
		return profile{
			lengthCDF:   []float64{0.45, 0.80, 0.95, 1.0},
			topicZipfS:  1.0,
			withinZipfS: 1.1,
			offTopicP:   0.10,
		}
	case Lucene:
		return profile{
			lengthCDF:   []float64{0.30, 0.60, 0.85, 1.0},
			topicZipfS:  0.6,
			withinZipfS: 0.8,
			offTopicP:   0.25,
		}
	default:
		panic(fmt.Sprintf("trace: unknown kind %d", kind))
	}
}

// Generate produces a query trace over the corpus's vocabulary and topic
// structure. It is deterministic given cfg.Seed.
func Generate(c *textgen.Corpus, cfg Config) []Query {
	if cfg.NumQueries <= 0 {
		panic("trace: NumQueries must be positive")
	}
	if cfg.QPS <= 0 {
		panic("trace: QPS must be positive")
	}
	if err := cfg.Arrivals.validate(); err != nil {
		panic(err)
	}
	p := profileFor(cfg.Kind)
	rng := xrand.New(cfg.Seed).SplitName("trace-" + cfg.Kind.String())
	topicPick := xrand.NewZipf(rng, p.topicZipfS, len(c.TopicTerms))
	withinPick := xrand.NewZipf(rng, p.withinZipfS, len(c.TopicTerms[0]))
	background := xrand.NewZipf(rng, 1.0, len(c.Vocab))

	meanGapMS := 1000 / cfg.QPS
	stationary := cfg.Arrivals.Profile == Stationary
	queries := make([]Query, cfg.NumQueries)
	now := 0.0
	for i := range queries {
		if stationary {
			// The original single-draw path — kept verbatim so stationary
			// traces are bit-identical to those generated before arrival
			// profiles existed (every committed figure depends on them).
			now += rng.ExpFloat64() * meanGapMS
		} else {
			now = cfg.Arrivals.nextArrival(rng, cfg.QPS, now)
		}
		topic := topicPick.Draw()
		n := drawLength(rng, p.lengthCDF)
		terms := make([]string, 0, n)
		seen := make(map[string]bool, n)
		for len(terms) < n {
			var term string
			if rng.Float64() < p.offTopicP {
				term = c.Vocab[background.Draw()]
			} else {
				term = c.Vocab[c.TopicTerms[topic][withinPick.Draw()]]
			}
			if !seen[term] {
				seen[term] = true
				terms = append(terms, term)
			}
		}
		queries[i] = Query{ID: i, Terms: terms, ArrivalMS: now}
	}
	return queries
}

func drawLength(rng *xrand.RNG, cdf []float64) int {
	u := rng.Float64()
	for i, c := range cdf {
		if u <= c {
			return i + 1
		}
	}
	return len(cdf)
}

// DurationMS returns the span of the trace (last arrival time).
func DurationMS(qs []Query) float64 {
	if len(qs) == 0 {
		return 0
	}
	return qs[len(qs)-1].ArrivalMS
}

// TrainTestSplit partitions a trace into a training prefix and an
// evaluation suffix. The predictors are trained on one part and evaluated
// on the other, never on their own training data.
func TrainTestSplit(qs []Query, trainFrac float64) (train, test []Query) {
	if trainFrac < 0 || trainFrac > 1 {
		panic("trace: trainFrac must be in [0,1]")
	}
	cut := int(float64(len(qs)) * trainFrac)
	return qs[:cut], qs[cut:]
}
