package trace

import (
	"math"
	"reflect"
	"testing"
)

// TestNonStationaryDeterministic: every profile regenerates bit-identical
// traces from the same seed, and distinct profiles produce distinct
// arrival sequences.
func TestNonStationaryDeterministic(t *testing.T) {
	c := testCorpus()
	profiles := []Profile{Stationary, Diurnal, Flash, Ramp}
	firstArrivals := make(map[Profile]float64)
	for _, p := range profiles {
		cfg := Config{Kind: Wikipedia, Seed: 11, NumQueries: 400, QPS: 20,
			Arrivals: ArrivalConfig{Profile: p}}
		a := Generate(c, cfg)
		b := Generate(c, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v trace differs across identical runs", p)
		}
		firstArrivals[p] = a[len(a)-1].ArrivalMS
	}
	if firstArrivals[Diurnal] == firstArrivals[Stationary] &&
		firstArrivals[Flash] == firstArrivals[Stationary] {
		t.Fatal("non-stationary profiles did not change the arrival process")
	}
}

// TestStationaryUnchangedByProfileField: a zero-valued ArrivalConfig is
// the pre-profile stationary trace, bit for bit — committed figures
// depend on it.
func TestStationaryUnchangedByProfileField(t *testing.T) {
	c := testCorpus()
	plain := Generate(c, Config{Kind: Lucene, Seed: 7, NumQueries: 300, QPS: 15})
	zeroed := Generate(c, Config{Kind: Lucene, Seed: 7, NumQueries: 300, QPS: 15,
		Arrivals: ArrivalConfig{Profile: Stationary}})
	if !reflect.DeepEqual(plain, zeroed) {
		t.Fatal("explicit stationary profile changed the trace")
	}
}

// TestDiurnalRateShape: the realized arrival density tracks λ(t) —
// dense near the sinusoid's peak, sparse near its trough — and the
// overall mean stays near the base QPS.
func TestDiurnalRateShape(t *testing.T) {
	c := testCorpus()
	ac := ArrivalConfig{Profile: Diurnal, DiurnalPeriodMS: 20_000, DiurnalAmp: 0.8}
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 3, NumQueries: 8000, QPS: 40, Arrivals: ac})

	// Count arrivals in peak vs trough quarters of each period.
	peak, trough := 0, 0
	for _, q := range qs {
		phase := math.Mod(q.ArrivalMS, ac.DiurnalPeriodMS) / ac.DiurnalPeriodMS
		switch {
		case phase >= 0.125 && phase < 0.375: // around sin's maximum
			peak++
		case phase >= 0.625 && phase < 0.875: // around sin's minimum
			trough++
		}
	}
	if peak <= 2*trough {
		t.Errorf("diurnal peak/trough arrival ratio %d/%d; want clearly peaked", peak, trough)
	}
	gotQPS := float64(len(qs)) / (DurationMS(qs) / 1000)
	if math.Abs(gotQPS-40) > 6 {
		t.Errorf("diurnal realized rate %.1f QPS, want ~40", gotQPS)
	}
}

// TestFlashRateShape: burst windows are several times denser than the
// baseline, and the first cadence interval is burst-free (the
// controller's calibration stretch).
func TestFlashRateShape(t *testing.T) {
	c := testCorpus()
	ac := ArrivalConfig{Profile: Flash, FlashEveryMS: 10_000, FlashDurationMS: 2_000, FlashFactor: 5}
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 5, NumQueries: 8000, QPS: 30, Arrivals: ac})

	inBurst, base := 0, 0
	var burstMS, baseMS float64
	horizon := DurationMS(qs)
	for _, q := range qs {
		if q.ArrivalMS < ac.FlashEveryMS {
			base++
			continue
		}
		if math.Mod(q.ArrivalMS, ac.FlashEveryMS) < ac.FlashDurationMS {
			inBurst++
		} else {
			base++
		}
	}
	periods := math.Floor(horizon / ac.FlashEveryMS) // completed cadences past the first
	burstMS = periods * ac.FlashDurationMS
	baseMS = horizon - burstMS
	burstRate := float64(inBurst) / burstMS
	baseRate := float64(base) / baseMS
	if burstRate < 3*baseRate {
		t.Errorf("flash burst rate %.3f/ms vs base %.3f/ms; want >= 3x", burstRate, baseRate)
	}
}

// TestRampRateShape: the second half of the ramp is denser than the
// first when RampEnd > RampStart.
func TestRampRateShape(t *testing.T) {
	c := testCorpus()
	ac := ArrivalConfig{Profile: Ramp, RampStart: 0.25, RampEnd: 2, RampOverMS: 40_000}
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 6, NumQueries: 4000, QPS: 30, Arrivals: ac})
	lo, hi := 0, 0
	for _, q := range qs {
		if q.ArrivalMS >= ac.RampOverMS {
			break
		}
		if q.ArrivalMS < ac.RampOverMS/2 {
			lo++
		} else {
			hi++
		}
	}
	if hi <= lo {
		t.Errorf("ramp not ramping: %d arrivals in first half vs %d in second", lo, hi)
	}
}

// TestRateAtMS pins the closed-form rate functions the planner's oracle
// uses.
func TestRateAtMS(t *testing.T) {
	d := ArrivalConfig{Profile: Diurnal, DiurnalPeriodMS: 1000, DiurnalAmp: 0.5}
	if got := d.RateAtMS(10, 250); math.Abs(got-15) > 1e-9 {
		t.Errorf("diurnal peak rate %v, want 15", got)
	}
	if got := d.RateAtMS(10, 750); math.Abs(got-5) > 1e-9 {
		t.Errorf("diurnal trough rate %v, want 5", got)
	}
	f := ArrivalConfig{Profile: Flash, FlashEveryMS: 1000, FlashDurationMS: 100, FlashFactor: 3}
	if got := f.RateAtMS(10, 1050); got != 30 {
		t.Errorf("flash burst rate %v, want 30", got)
	}
	if got := f.RateAtMS(10, 500); got != 10 {
		t.Errorf("flash base rate %v, want 10", got)
	}
	if got := f.RateAtMS(10, 50); got != 10 {
		t.Errorf("flash first-cadence rate %v, want 10 (no burst before one cadence)", got)
	}
	r := ArrivalConfig{Profile: Ramp, RampStart: 1, RampEnd: 3, RampOverMS: 1000}
	if got := r.RateAtMS(10, 500); math.Abs(got-20) > 1e-9 {
		t.Errorf("ramp midpoint rate %v, want 20", got)
	}
	if got := r.RateAtMS(10, 5000); got != 30 {
		t.Errorf("ramp plateau rate %v, want 30", got)
	}
}

// TestDiurnalAmpValidation: an amplitude >= 1 would drive the rate to
// zero or negative; Generate must refuse it.
func TestDiurnalAmpValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate accepted diurnal amplitude 1.0")
		}
	}()
	Generate(testCorpus(), Config{Kind: Wikipedia, Seed: 1, NumQueries: 10, QPS: 10,
		Arrivals: ArrivalConfig{Profile: Diurnal, DiurnalAmp: 1.0}})
}
