package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzTrace returns a small valid trace without needing a corpus: the
// round-trip property only cares about the wire shape.
func fuzzTrace() []Query {
	return []Query{
		{ID: 0, Terms: []string{"alpha"}, ArrivalMS: 0},
		{ID: 1, Terms: []string{"beta", "gamma"}, ArrivalMS: 12.5},
		{ID: 2, Terms: []string{"delta"}, ArrivalMS: 40},
	}
}

func mustSave(tb testing.TB, qs []Query) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, qs); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRoundTrip hardens Load against arbitrary bytes: it must
// never panic, and anything it accepts must survive a Save→Load round
// trip unchanged (canonicalization would silently alter replays).
func FuzzTraceRoundTrip(f *testing.F) {
	valid := mustSave(f, fuzzTrace())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:3])
	corrupted := bytes.Clone(valid)
	for i := 0; i < len(corrupted); i += 7 {
		corrupted[i] ^= 0x55
	}
	f.Add(corrupted)
	f.Add(mustSave(f, []Query{{Terms: []string{"x"}, ArrivalMS: -4}}))
	f.Add(mustSave(f, []Query{{Terms: nil, ArrivalMS: 1}}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		qs, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must obey the documented invariants...
		prev := 0.0
		for i, q := range qs {
			if q.ArrivalMS < prev {
				t.Fatalf("accepted trace has out-of-order arrival at %d", i)
			}
			if len(q.Terms) == 0 || len(q.Terms) > MaxTermsPerQuery {
				t.Fatalf("accepted trace has %d terms at %d", len(q.Terms), i)
			}
			prev = q.ArrivalMS
		}
		// ...and round-trip exactly.
		var buf bytes.Buffer
		if err := Save(&buf, qs); err != nil {
			t.Fatalf("re-saving accepted trace: %v", err)
		}
		again, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-loading saved trace: %v", err)
		}
		if !reflect.DeepEqual(qs, again) {
			t.Fatal("trace changed across Save/Load round trip")
		}
	})
}
