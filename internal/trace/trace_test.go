package trace

import (
	"bytes"
	"math"
	"testing"

	"cottage/internal/textgen"
)

func testCorpus() *textgen.Corpus {
	cfg := textgen.DefaultConfig()
	cfg.NumDocs = 500
	cfg.VocabSize = 2000
	cfg.NumTopics = 8
	cfg.TopicTermCount = 100
	return textgen.Generate(cfg)
}

func TestGenerateDeterministic(t *testing.T) {
	c := testCorpus()
	cfg := Config{Kind: Wikipedia, Seed: 9, NumQueries: 200, QPS: 10}
	a := Generate(c, cfg)
	b := Generate(c, cfg)
	for i := range a {
		if a[i].ArrivalMS != b[i].ArrivalMS || len(a[i].Terms) != len(b[i].Terms) {
			t.Fatalf("query %d differs across runs", i)
		}
		for j := range a[i].Terms {
			if a[i].Terms[j] != b[i].Terms[j] {
				t.Fatalf("query %d term %d differs", i, j)
			}
		}
	}
}

func TestArrivalsMonotoneAndPoisson(t *testing.T) {
	c := testCorpus()
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 1, NumQueries: 5000, QPS: 10})
	prev := -1.0
	for _, q := range qs {
		if q.ArrivalMS <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = q.ArrivalMS
	}
	// Mean gap should be ~100 ms at 10 QPS.
	meanGap := DurationMS(qs) / float64(len(qs))
	if math.Abs(meanGap-100) > 10 {
		t.Errorf("mean inter-arrival %v ms, want ~100", meanGap)
	}
}

func TestQueryShape(t *testing.T) {
	c := testCorpus()
	for _, kind := range []Kind{Wikipedia, Lucene} {
		qs := Generate(c, Config{Kind: kind, Seed: 2, NumQueries: 2000, QPS: 10})
		lenCounts := make(map[int]int)
		for i, q := range qs {
			if q.ID != i {
				t.Fatalf("%v: query %d has ID %d", kind, i, q.ID)
			}
			if len(q.Terms) < 1 || len(q.Terms) > 4 {
				t.Fatalf("%v: query length %d out of range", kind, len(q.Terms))
			}
			seen := map[string]bool{}
			for _, term := range q.Terms {
				if term == "" {
					t.Fatalf("%v: empty term", kind)
				}
				if seen[term] {
					t.Fatalf("%v: duplicate term in query", kind)
				}
				seen[term] = true
			}
			lenCounts[len(q.Terms)]++
		}
		for l := 1; l <= 4; l++ {
			if lenCounts[l] == 0 {
				t.Errorf("%v: no queries of length %d", kind, l)
			}
		}
	}
}

func TestKindsDiffer(t *testing.T) {
	c := testCorpus()
	wiki := Generate(c, Config{Kind: Wikipedia, Seed: 3, NumQueries: 3000, QPS: 10})
	luc := Generate(c, Config{Kind: Lucene, Seed: 3, NumQueries: 3000, QPS: 10})
	wSingle, lSingle := 0, 0
	for _, q := range wiki {
		if len(q.Terms) == 1 {
			wSingle++
		}
	}
	for _, q := range luc {
		if len(q.Terms) == 1 {
			lSingle++
		}
	}
	// Wikipedia profile is more single-term heavy.
	if wSingle <= lSingle {
		t.Errorf("wiki single-term %d should exceed lucene %d", wSingle, lSingle)
	}
}

func TestTermPopularitySkewed(t *testing.T) {
	c := testCorpus()
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 4, NumQueries: 5000, QPS: 10})
	freq := map[string]int{}
	total := 0
	for _, q := range qs {
		for _, term := range q.Terms {
			freq[term]++
			total++
		}
	}
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	// The most popular term should appear in well over its uniform share.
	if float64(max) < 5*float64(total)/float64(len(freq)) {
		t.Errorf("term popularity too flat: max %d of %d over %d distinct", max, total, len(freq))
	}
}

func TestTrainTestSplit(t *testing.T) {
	c := testCorpus()
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 5, NumQueries: 100, QPS: 10})
	train, test := TrainTestSplit(qs, 0.8)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad frac should panic")
			}
		}()
		TrainTestSplit(qs, 1.5)
	}()
}

func TestGeneratePanics(t *testing.T) {
	c := testCorpus()
	for i, cfg := range []Config{
		{Kind: Wikipedia, NumQueries: 0, QPS: 1},
		{Kind: Wikipedia, NumQueries: 10, QPS: 0},
		{Kind: Kind(42), NumQueries: 10, QPS: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			Generate(c, cfg)
		}()
	}
}

func TestDurationEmpty(t *testing.T) {
	if DurationMS(nil) != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestKindString(t *testing.T) {
	if Wikipedia.String() != "wikipedia" || Lucene.String() != "lucene" || Kind(9).String() != "unknown" {
		t.Error("Kind.String wrong")
	}
}

func BenchmarkGenerate(b *testing.B) {
	c := testCorpus()
	cfg := Config{Kind: Wikipedia, Seed: 1, NumQueries: 1000, QPS: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Generate(c, cfg)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := testCorpus()
	qs := Generate(c, Config{Kind: Wikipedia, Seed: 8, NumQueries: 150, QPS: 20})
	path := t.TempDir() + "/trace.gob"
	if err := SaveFile(path, qs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("round trip lost queries: %d vs %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i].ArrivalMS != qs[i].ArrivalMS || len(got[i].Terms) != len(qs[i].Terms) {
			t.Fatalf("query %d differs", i)
		}
		for j := range qs[i].Terms {
			if got[i].Terms[j] != qs[i].Terms[j] {
				t.Fatalf("query %d term %d differs", i, j)
			}
		}
	}
}

func TestLoadRejectsBadTraces(t *testing.T) {
	// Out-of-order arrivals.
	var buf bytes.Buffer
	bad := []Query{{ID: 0, Terms: []string{"a"}, ArrivalMS: 10}, {ID: 1, Terms: []string{"b"}, ArrivalMS: 5}}
	if err := Save(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("out-of-order trace should fail to load")
	}
	// Empty terms.
	buf.Reset()
	if err := Save(&buf, []Query{{ID: 0, ArrivalMS: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("empty-terms trace should fail to load")
	}
	// Garbage bytes.
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage should fail to load")
	}
}
