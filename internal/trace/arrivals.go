package trace

import (
	"fmt"
	"math"

	"cottage/internal/xrand"
)

// Profile selects the arrival process's rate shape over time. The
// stationary profile is the original homogeneous Poisson trace; the
// others modulate the instantaneous rate λ(t) to reproduce the traffic
// regimes a fixed-capacity fleet cannot serve efficiently — diurnal
// swings, flash crowds, and sustained ramps — which is what the
// autoscaling experiments stress.
type Profile int

const (
	// Stationary is a homogeneous Poisson process at Config.QPS — the
	// original trace, bit-identical to traces generated before profiles
	// existed.
	Stationary Profile = iota
	// Diurnal modulates the rate sinusoidally around Config.QPS:
	// λ(t) = QPS · (1 + DiurnalAmp·sin(2πt/DiurnalPeriodMS)). One period
	// is a compressed "day"; the peak-to-trough ratio is
	// (1+amp)/(1−amp).
	Diurnal
	// Flash keeps the base rate at Config.QPS but overlays deterministic
	// flash-crowd bursts: every FlashEveryMS, the rate multiplies by
	// FlashFactor for FlashDurationMS — the breaking-news spike that
	// arrives faster than any human can re-provision a fleet.
	Flash
	// Ramp scales the rate linearly from RampStart·QPS at t=0 to
	// RampEnd·QPS at t=RampOverMS, constant afterwards — organic growth
	// (or decay) compressed into one trace.
	Ramp
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case Stationary:
		return "stationary"
	case Diurnal:
		return "diurnal"
	case Flash:
		return "flash"
	case Ramp:
		return "ramp"
	default:
		return "unknown"
	}
}

// ArrivalConfig parameterizes the non-stationary profiles. The zero
// value of every field selects a sensible default (DefaultArrivals
// documents them), so Config literals that predate profiles keep
// working unchanged.
type ArrivalConfig struct {
	Profile Profile

	// Diurnal.
	DiurnalPeriodMS float64 // one "day" (default 60 000 ms)
	DiurnalAmp      float64 // rate swing as a fraction of QPS, in [0,1) (default 0.6)

	// Flash.
	FlashEveryMS    float64 // burst cadence (default 30 000 ms)
	FlashDurationMS float64 // burst length (default 4 000 ms)
	FlashFactor     float64 // rate multiplier during a burst (default 4)

	// Ramp.
	RampStart  float64 // rate multiplier at t=0 (default 0.5)
	RampEnd    float64 // rate multiplier at t=RampOverMS (default 2)
	RampOverMS float64 // time to reach RampEnd (default 60 000 ms)
}

// withDefaults fills zero fields with the documented defaults.
func (a ArrivalConfig) withDefaults() ArrivalConfig {
	if a.DiurnalPeriodMS <= 0 {
		a.DiurnalPeriodMS = 60_000
	}
	if a.DiurnalAmp <= 0 {
		a.DiurnalAmp = 0.6
	}
	if a.FlashEveryMS <= 0 {
		a.FlashEveryMS = 30_000
	}
	if a.FlashDurationMS <= 0 {
		a.FlashDurationMS = 4_000
	}
	if a.FlashFactor <= 0 {
		a.FlashFactor = 4
	}
	if a.RampStart <= 0 {
		a.RampStart = 0.5
	}
	if a.RampEnd <= 0 {
		a.RampEnd = 2
	}
	if a.RampOverMS <= 0 {
		a.RampOverMS = 60_000
	}
	return a
}

// validate rejects parameterizations the thinning sampler cannot handle.
func (a ArrivalConfig) validate() error {
	if a.Profile == Diurnal && a.DiurnalAmp >= 1 {
		return fmt.Errorf("trace: diurnal amplitude %v must be < 1 (the rate must stay positive)", a.DiurnalAmp)
	}
	return nil
}

// RateAtMS returns the instantaneous arrival rate λ(t) in queries per
// second for a profile around baseQPS. Exported so tests and the
// capacity planner's oracle can evaluate the ground-truth rate the
// trace was generated from.
func (a ArrivalConfig) RateAtMS(baseQPS, tMS float64) float64 {
	a = a.withDefaults()
	switch a.Profile {
	case Diurnal:
		return baseQPS * (1 + a.DiurnalAmp*math.Sin(2*math.Pi*tMS/a.DiurnalPeriodMS))
	case Flash:
		if math.Mod(tMS, a.FlashEveryMS) < a.FlashDurationMS && tMS >= a.FlashEveryMS {
			// The first burst fires one cadence in, so every trace opens
			// with a stretch of base load the controller can calibrate on.
			return baseQPS * a.FlashFactor
		}
		return baseQPS
	case Ramp:
		frac := tMS / a.RampOverMS
		if frac > 1 {
			frac = 1
		}
		return baseQPS * (a.RampStart + (a.RampEnd-a.RampStart)*frac)
	default:
		return baseQPS
	}
}

// maxRate bounds λ(t) from above — the thinning envelope.
func (a ArrivalConfig) maxRate(baseQPS float64) float64 {
	a = a.withDefaults()
	switch a.Profile {
	case Diurnal:
		return baseQPS * (1 + a.DiurnalAmp)
	case Flash:
		return baseQPS * a.FlashFactor
	case Ramp:
		m := a.RampStart
		if a.RampEnd > m {
			m = a.RampEnd
		}
		return baseQPS * m
	default:
		return baseQPS
	}
}

// nextArrival advances a non-homogeneous Poisson process from nowMS via
// Lewis–Shedler thinning: candidate arrivals are drawn from a
// homogeneous process at the envelope rate and accepted with
// probability λ(t)/λmax. Exactness does not depend on the envelope
// being tight, only on it dominating λ(t); determinism comes from the
// seeded RNG consuming a data-dependent but seed-stable number of
// draws.
func (a ArrivalConfig) nextArrival(rng *xrand.RNG, baseQPS, nowMS float64) float64 {
	lambdaMax := a.maxRate(baseQPS)
	meanGapMS := 1000 / lambdaMax
	for {
		nowMS += rng.ExpFloat64() * meanGapMS
		rate := a.RateAtMS(baseQPS, nowMS)
		if rng.Float64()*lambdaMax <= rate {
			return nowMS
		}
	}
}
