package trace

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
)

// Sanity bounds on decoded traces: generous multiples of anything the
// generators produce, tight enough that a corrupted or adversarial file
// cannot smuggle absurd queries into a replay (or allocate unbounded
// memory downstream).
const (
	// MaxTermsPerQuery bounds one query's term list.
	MaxTermsPerQuery = 64
	// MaxTermLen bounds one term's byte length.
	MaxTermLen = 1024
)

// traceWire versions the on-disk format.
type traceWire struct {
	Version int
	Queries []Query
}

const wireVersion = 1

// Save serializes a trace with encoding/gob.
func Save(w io.Writer, qs []Query) error {
	return gob.NewEncoder(w).Encode(traceWire{Version: wireVersion, Queries: qs})
}

// Load deserializes a trace written by Save.
func Load(r io.Reader) ([]Query, error) {
	var w traceWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("trace: unsupported trace version %d", w.Version)
	}
	prev := 0.0
	for i, q := range w.Queries {
		if math.IsNaN(q.ArrivalMS) || math.IsInf(q.ArrivalMS, 0) || q.ArrivalMS < 0 {
			return nil, fmt.Errorf("trace: query %d has non-finite or negative arrival %v", i, q.ArrivalMS)
		}
		if q.ArrivalMS < prev {
			return nil, fmt.Errorf("trace: arrivals out of order at query %d", i)
		}
		if len(q.Terms) == 0 {
			return nil, fmt.Errorf("trace: query %d has no terms", i)
		}
		if len(q.Terms) > MaxTermsPerQuery {
			return nil, fmt.Errorf("trace: query %d has %d terms (max %d)", i, len(q.Terms), MaxTermsPerQuery)
		}
		for _, t := range q.Terms {
			if len(t) == 0 || len(t) > MaxTermLen {
				return nil, fmt.Errorf("trace: query %d has a term of %d bytes (want 1..%d)", i, len(t), MaxTermLen)
			}
		}
		prev = q.ArrivalMS
	}
	return w.Queries, nil
}

// SaveFile writes a trace to path.
func SaveFile(path string, qs []Query) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Save(bw, qs); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace written by SaveFile.
func LoadFile(path string) ([]Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
