//go:build !race

// Package race reports whether the binary was built with the race
// detector. Tests that assert zero steady-state allocations on
// sync.Pool-backed paths consult it: the race-enabled runtime randomly
// drops Pool.Put items to expose races, so pooled paths legitimately
// allocate under -race and the assertions must be skipped, not loosened.
package race

// Enabled is true in binaries built with -race.
const Enabled = false
