package simdpack

import (
	"testing"

	"cottage/internal/race"
	"cottage/internal/xrand"
)

// randBlock fills a block with values bounded to w bits, with a mix of
// extremes: all-zero, all-max, and random patterns.
func randBlock(rng *xrand.RNG, w uint32, kind int) [BlockLen]uint32 {
	var vals [BlockLen]uint32
	max := uint32(0)
	if w > 0 {
		if w == 32 {
			max = ^uint32(0)
		} else {
			max = uint32(1)<<w - 1
		}
	}
	for i := range vals {
		switch kind {
		case 0:
			vals[i] = 0
		case 1:
			vals[i] = max
		default:
			if w == 0 {
				vals[i] = 0
			} else {
				vals[i] = uint32(rng.Uint64()) & max
			}
		}
	}
	// Keep the width attained so Width(vals) == w for kinds 1 and 2.
	if w > 0 && kind != 0 {
		vals[0] |= uint32(1) << (w - 1)
	}
	return vals
}

func packBlock(vals *[BlockLen]uint32, w uint32) []byte {
	buf := make([]byte, PackedBytes(w)+Pad)
	Pack(buf, vals, w)
	return buf
}

// TestPackUnpackRoundTrip checks Pack -> Unpack identity at every width
// through both the production entry points (asm on amd64) and the
// portable reference, which must agree exactly.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	for w := uint32(0); w <= 32; w++ {
		for kind := 0; kind < 5; kind++ {
			vals := randBlock(rng, w, kind)
			buf := packBlock(&vals, w)
			var got, ref [BlockLen]uint32
			Unpack(buf, w, &got)
			unpackRef(buf, w, &ref)
			if got != vals {
				t.Fatalf("w=%d kind=%d: Unpack != input", w, kind)
			}
			if ref != vals {
				t.Fatalf("w=%d kind=%d: reference Unpack != input", w, kind)
			}
		}
	}
}

// TestUnpackDeltasMatchesReference checks the fused gap-decode +
// prefix-sum against the reference at every width, including carry
// propagation across all 16 groups and wraparound arithmetic.
func TestUnpackDeltasMatchesReference(t *testing.T) {
	rng := xrand.New(23)
	bases := []uint32{0, 1, 1 << 20, ^uint32(0) - 5}
	for w := uint32(0); w <= 32; w++ {
		for kind := 0; kind < 5; kind++ {
			vals := randBlock(rng, w, kind)
			buf := packBlock(&vals, w)
			for _, base := range bases {
				var got, ref [BlockLen]uint32
				UnpackDeltas(buf, w, base, &got)
				unpackDeltasRef(buf, w, base, &ref)
				if got != ref {
					t.Fatalf("w=%d kind=%d base=%d: UnpackDeltas diverges from reference", w, kind, base)
				}
				acc := base
				for i, g := range vals {
					acc += g
					if got[i] != acc {
						t.Fatalf("w=%d kind=%d base=%d: sum[%d] = %d, want %d", w, kind, base, i, got[i], acc)
					}
				}
			}
		}
	}
}

// TestUnpackIncMatchesReference checks the fused +1 decode.
func TestUnpackIncMatchesReference(t *testing.T) {
	rng := xrand.New(37)
	for w := uint32(0); w <= 32; w++ {
		vals := randBlock(rng, w, 3)
		buf := packBlock(&vals, w)
		var got, ref [BlockLen]uint32
		UnpackInc(buf, w, &got)
		unpackIncRef(buf, w, &ref)
		if got != ref {
			t.Fatalf("w=%d: UnpackInc diverges from reference", w)
		}
		for i := range vals {
			if got[i] != vals[i]+1 {
				t.Fatalf("w=%d: inc[%d] = %d, want %d", w, i, got[i], vals[i]+1)
			}
		}
	}
}

// TestPadBytesDoNotLeak verifies the mask really keeps the trailing pad
// out of decoded values: filling the pad with garbage must not change
// any output at any width.
func TestPadBytesDoNotLeak(t *testing.T) {
	rng := xrand.New(41)
	for w := uint32(1); w <= 32; w++ {
		vals := randBlock(rng, w, 3)
		clean := packBlock(&vals, w)
		dirty := append([]byte(nil), clean...)
		for i := PackedBytes(w); i < len(dirty); i++ {
			dirty[i] = 0xA5
		}
		var a, b [BlockLen]uint32
		Unpack(clean, w, &a)
		Unpack(dirty, w, &b)
		if a != b {
			t.Fatalf("w=%d: pad bytes leaked into decoded values", w)
		}
		UnpackDeltas(clean, w, 7, &a)
		UnpackDeltas(dirty, w, 7, &b)
		if a != b {
			t.Fatalf("w=%d: pad bytes leaked into delta decode", w)
		}
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		vals []uint32
		want uint32
	}{
		{[]uint32{0, 0, 0}, 0},
		{[]uint32{1}, 1},
		{[]uint32{0, 3}, 2},
		{[]uint32{255}, 8},
		{[]uint32{256}, 9},
		{[]uint32{^uint32(0)}, 32},
	}
	for _, c := range cases {
		if got := Width(c.vals); got != c.want {
			t.Errorf("Width(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestPackedBytes(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 16, 2: 16, 3: 32, 4: 32, 31: 256, 32: 256}
	for w, want := range cases {
		if got := PackedBytes(w); got != want {
			t.Errorf("PackedBytes(%d) = %d, want %d", w, got, want)
		}
	}
}

// TestUnpackZeroAlloc pins the decode entry points as allocation-free:
// they are the innermost loop of query evaluation.
func TestUnpackZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting differs under -race")
	}
	rng := xrand.New(53)
	vals := randBlock(rng, 13, 3)
	buf := packBlock(&vals, 13)
	var dst [BlockLen]uint32
	n := testing.AllocsPerRun(100, func() {
		Unpack(buf, 13, &dst)
		UnpackDeltas(buf, 13, 42, &dst)
		UnpackInc(buf, 13, &dst)
	})
	if n != 0 {
		t.Fatalf("decode allocated %v times per run", n)
	}
}

func BenchmarkUnpackDeltas(b *testing.B) {
	rng := xrand.New(61)
	for _, w := range []uint32{4, 9, 17} {
		vals := randBlock(rng, w, 3)
		buf := packBlock(&vals, w)
		var dst [BlockLen]uint32
		b.Run("w="+string(rune('0'+w/10))+string(rune('0'+w%10)), func(b *testing.B) {
			b.SetBytes(BlockLen * 4)
			for i := 0; i < b.N; i++ {
				UnpackDeltas(buf, w, 0, &dst)
			}
		})
	}
}
