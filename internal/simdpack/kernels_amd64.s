// SSE2 block decoders for the vertical bit-packed layout. One call
// decodes a whole 64-value block: 16 iterations, each reconstructing
// the four lanes of one group. Group g's lanes all start at bit g*w of
// their lane stream, so the same two packed shifts serve every lane —
// and every width: SSE2 packed shifts treat counts >= 32 as "shift
// everything out", so the unconditional two-word combine
//
//	V = ((M0 >> off) | (M1 << (32-off))) & mask
//
// is exact at off = 0 too (M1's contribution is shifted to zero). M1 is
// the m128 word after M0, which for the last group of an odd width lies
// one word past the packed payload — the Pad contract in simdpack.go
// keeps that read in bounds, and the mask keeps it out of the result.
//
// The delta variant adds an in-register prefix sum: two shift-and-add
// steps turn [g0 g1 g2 g3] into inclusive sums, a broadcast carry from
// the previous group is added, and the new carry is the top lane
// splatted (PSHUFD $0xFF). The increment variant adds one per value via
// PSUBL of an all-ones register (x - (-1) = x + 1). Integer ops only:
// both paths are bit-identical to the portable reference decoders.

#include "textflag.h"

// func unpack64asm(src *byte, dst *uint32, w uint64)
TEXT ·unpack64asm(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ w+16(FP), R9

	// X5 = broadcast((1<<w)-1); the 64-bit shift makes w=32 exact.
	MOVQ $1, AX
	MOVQ R9, CX
	SHLQ CX, AX
	DECQ AX
	MOVQ AX, X5
	PSHUFD $0x00, X5, X5

	XORQ BX, BX
	MOVQ $16, CX

unpackloop:
	MOVQ BX, AX
	SHRQ $5, AX
	SHLQ $4, AX
	MOVOU (SI)(AX*1), X0
	MOVOU 16(SI)(AX*1), X1
	MOVQ BX, DX
	ANDQ $31, DX
	MOVQ DX, X2
	MOVQ $32, R8
	SUBQ DX, R8
	MOVQ R8, X3
	PSRLL X2, X0
	PSLLL X3, X1
	POR  X1, X0
	PAND X5, X0
	MOVOU X0, (DI)
	ADDQ $16, DI
	ADDQ R9, BX
	DECQ CX
	JNZ  unpackloop
	RET

// func unpackDeltas64asm(src *byte, dst *uint32, w, base uint64)
TEXT ·unpackDeltas64asm(SB), NOSPLIT, $0-32
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ w+16(FP), R9

	MOVQ $1, AX
	MOVQ R9, CX
	SHLQ CX, AX
	DECQ AX
	MOVQ AX, X5
	PSHUFD $0x00, X5, X5

	// X6 = broadcast(base): the running carry.
	MOVQ base+24(FP), AX
	MOVQ AX, X6
	PSHUFD $0x00, X6, X6

	XORQ BX, BX
	MOVQ $16, CX

deltaloop:
	MOVQ BX, AX
	SHRQ $5, AX
	SHLQ $4, AX
	MOVOU (SI)(AX*1), X0
	MOVOU 16(SI)(AX*1), X1
	MOVQ BX, DX
	ANDQ $31, DX
	MOVQ DX, X2
	MOVQ $32, R8
	SUBQ DX, R8
	MOVQ R8, X3
	PSRLL X2, X0
	PSLLL X3, X1
	POR  X1, X0
	PAND X5, X0

	// Inclusive prefix sum across the four lanes, then add the carry.
	MOVOU X0, X4
	PSLLO $4, X4
	PADDL X4, X0
	MOVOU X0, X4
	PSLLO $8, X4
	PADDL X4, X0
	PADDL X6, X0
	PSHUFD $0xFF, X0, X6

	MOVOU X0, (DI)
	ADDQ $16, DI
	ADDQ R9, BX
	DECQ CX
	JNZ  deltaloop
	RET

// func unpackInc64asm(src *byte, dst *uint32, w uint64)
TEXT ·unpackInc64asm(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ w+16(FP), R9

	MOVQ $1, AX
	MOVQ R9, CX
	SHLQ CX, AX
	DECQ AX
	MOVQ AX, X5
	PSHUFD $0x00, X5, X5

	// X9 = all ones; PSUBL X9 is +1 per lane.
	PCMPEQL X9, X9

	XORQ BX, BX
	MOVQ $16, CX

incloop:
	MOVQ BX, AX
	SHRQ $5, AX
	SHLQ $4, AX
	MOVOU (SI)(AX*1), X0
	MOVOU 16(SI)(AX*1), X1
	MOVQ BX, DX
	ANDQ $31, DX
	MOVQ DX, X2
	MOVQ $32, R8
	SUBQ DX, R8
	MOVQ R8, X3
	PSRLL X2, X0
	PSLLL X3, X1
	POR  X1, X0
	PAND X5, X0
	PSUBL X9, X0
	MOVOU X0, (DI)
	ADDQ $16, DI
	ADDQ R9, BX
	DECQ CX
	JNZ  incloop
	RET
