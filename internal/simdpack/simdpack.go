// Package simdpack bit-packs fixed blocks of 64 uint32 values at a
// per-block fixed width, in the "vertical" (interleaved-lane) layout of
// SIMD-BP128 (Lemire & Boytsov): value v of a block lives in lane v%4 of
// group v/4, and an m128 word k of the packed stream carries bits
// [32k, 32k+32) of all four lanes at once. Because the four lanes of a
// group always sit at the same bit offset, one pair of packed 32-bit
// shifts reconstructs four values regardless of the width — which is
// what lets a single SSE2 routine (kernels_amd64.s) decode every width
// 0..32 with no per-width specialization. On other architectures the
// portable routines below produce bit-identical output.
//
// The index layer packs document-ID gaps and term frequencies with this
// package (internal/index/packed.go); the decode side is the hot loop of
// query evaluation, so the unpack entry points are allocation-free and
// write into caller-owned fixed arrays.
package simdpack

// BlockLen is the number of values per packed block. It matches
// index.BlockSize so one packed block is one block-max block.
const BlockLen = 64

// Pad is how many bytes of readable slack every packed buffer must
// carry after its last block. The vectorized unpackers read whole m128
// words unconditionally — the final group of an odd-width block touches
// 16 bytes past the block's packed payload (the extra bits are masked
// off, so the values read back identically) — and the pad keeps that
// read inside the buffer.
const Pad = 16

// Width returns the smallest bit width that can represent every value:
// the bit length of the maximum. 0 means all values are zero.
func Width(vals []uint32) uint32 {
	max := uint32(0)
	for _, v := range vals {
		max |= v
	}
	w := uint32(0)
	for max != 0 {
		w++
		max >>= 1
	}
	return w
}

// PackedBytes returns the packed payload size of one 64-value block at
// width w: 64*w bits rounded up to whole m128 words.
func PackedBytes(w uint32) int {
	return 16 * int((w+1)/2)
}

// Pack writes the 64 values of src into dst at width w in vertical
// layout. dst[:PackedBytes(w)] must be zeroed by the caller; every value
// must fit in w bits. Packing happens once at index build, so it is
// plain scalar Go.
func Pack(dst []byte, src *[BlockLen]uint32, w uint32) {
	if w == 0 {
		return
	}
	for v := 0; v < BlockLen; v++ {
		lane := uint32(v) & 3
		bit := uint32(v>>2) * w
		word := bit >> 5
		off := bit & 31
		slot := (word*4 + lane) * 4
		val := src[v]
		putLE32(dst[slot:], readLE32(dst[slot:])|val<<off)
		if off+w > 32 {
			putLE32(dst[slot+16:], readLE32(dst[slot+16:])|val>>(32-off))
		}
	}
}

// unpackRef is the portable reference decode: dst[v] = the w-bit value
// at lane v%4, group v/4. It reads only the bytes Pack wrote (no Pad
// dependence) and is the oracle the amd64 kernels are tested against.
func unpackRef(src []byte, w uint32, dst *[BlockLen]uint32) {
	if w == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	mask := uint32(1)<<w - 1
	if w == 32 {
		mask = ^uint32(0)
	}
	for v := 0; v < BlockLen; v++ {
		lane := uint32(v) & 3
		bit := uint32(v>>2) * w
		word := bit >> 5
		off := bit & 31
		slot := (word*4 + lane) * 4
		val := readLE32(src[slot:]) >> off
		if off+w > 32 {
			val |= readLE32(src[slot+16:]) << (32 - off)
		}
		dst[v] = val & mask
	}
}

// unpackDeltasRef is unpackRef followed by a prefix sum seeded at base:
// dst[v] = base + src-gap[0] + ... + src-gap[v]. The index layer stores
// document IDs as gaps; this reconstructs them in one pass.
func unpackDeltasRef(src []byte, w uint32, base uint32, dst *[BlockLen]uint32) {
	unpackRef(src, w, dst)
	acc := base
	for i := range dst {
		acc += dst[i]
		dst[i] = acc
	}
}

// unpackIncRef is unpackRef with +1 applied to every value: term
// frequencies are stored as tf-1, so an all-ones block packs to zero
// bytes.
func unpackIncRef(src []byte, w uint32, dst *[BlockLen]uint32) {
	unpackRef(src, w, dst)
	for i := range dst {
		dst[i]++
	}
}

func readLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
