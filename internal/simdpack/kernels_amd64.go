//go:build amd64

package simdpack

// The SSE2 kernels in kernels_amd64.s decode one 64-value block per
// call: sixteen iterations, each reconstructing four lanes with a pair
// of packed shifts, a mask, and (per variant) an in-register prefix sum
// or increment. SSE2 packed shifts saturate to zero for counts >= 32,
// which is what makes the unconditional two-word read correct at every
// bit offset — including offset 0, where the second word's contribution
// is shifted entirely away. Callers must honor the Pad contract: the
// kernels read one m128 word past the packed payload.
//
// Width 0 never reaches the assembly; the wrappers materialize the
// degenerate all-zero / all-base / all-one block directly.

//go:noescape
func unpack64asm(src *byte, dst *uint32, w uint64)

//go:noescape
func unpackDeltas64asm(src *byte, dst *uint32, w, base uint64)

//go:noescape
func unpackInc64asm(src *byte, dst *uint32, w uint64)

// Unpack decodes one 64-value block packed at width w into dst.
// src must hold PackedBytes(w)+Pad readable bytes when w > 0.
func Unpack(src []byte, w uint32, dst *[BlockLen]uint32) {
	if w == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	unpack64asm(&src[0], &dst[0], uint64(w))
}

// UnpackDeltas decodes one block of gaps packed at width w and returns
// the running sums seeded at base: dst[v] = base + gap[0] + ... + gap[v].
// src must hold PackedBytes(w)+Pad readable bytes when w > 0.
func UnpackDeltas(src []byte, w uint32, base uint32, dst *[BlockLen]uint32) {
	if w == 0 {
		for i := range dst {
			dst[i] = base
		}
		return
	}
	unpackDeltas64asm(&src[0], &dst[0], uint64(w), uint64(base))
}

// UnpackInc decodes one block packed at width w and adds one to every
// value (the stored-as-minus-one term-frequency convention).
// src must hold PackedBytes(w)+Pad readable bytes when w > 0.
func UnpackInc(src []byte, w uint32, dst *[BlockLen]uint32) {
	if w == 0 {
		for i := range dst {
			dst[i] = 1
		}
		return
	}
	unpackInc64asm(&src[0], &dst[0], uint64(w))
}
