//go:build !amd64

package simdpack

// Portable fallbacks: the reference decoders double as the production
// path off amd64. They are bit-identical to the SSE2 kernels (integer
// arithmetic only) and honor the same signatures, so the index and
// search layers are architecture-blind.

// Unpack decodes one 64-value block packed at width w into dst.
func Unpack(src []byte, w uint32, dst *[BlockLen]uint32) {
	unpackRef(src, w, dst)
}

// UnpackDeltas decodes one block of gaps packed at width w and returns
// the running sums seeded at base: dst[v] = base + gap[0] + ... + gap[v].
func UnpackDeltas(src []byte, w uint32, base uint32, dst *[BlockLen]uint32) {
	unpackDeltasRef(src, w, base, dst)
}

// UnpackInc decodes one block packed at width w and adds one to every
// value (the stored-as-minus-one term-frequency convention).
func UnpackInc(src []byte, w uint32, dst *[BlockLen]uint32) {
	unpackIncRef(src, w, dst)
}
