package baselines

import (
	"math"

	"cottage/internal/engine"
	"cottage/internal/index"
	"cottage/internal/search"
	"cottage/internal/textgen"
	"cottage/internal/trace"
	"cottage/internal/xrand"
)

// RankS is the CSI-based shard ranker of Kulkarni et al. (CIKM'12): a
// Central Sample Index holds a small uniform sample of every shard's
// documents; at query time the sample's top results vote for their home
// shards with exponentially decayed weights, and shards whose vote mass
// clears a fixed threshold are searched. As the paper observes
// (Section V-B), the sample gives only *relative* shard importance — it
// cannot see actual top-K membership — so its cutoffs are the least
// precise of the compared policies.
type RankS struct {
	// CSI is the sample index; docs keep their global IDs.
	CSI *index.Shard
	// HomeShard maps a global document ID to the shard it was sampled
	// from.
	HomeShard map[int64]int
	// B is the exponential decay base for vote weights (vote of the
	// rank-r sample hit = score · B^-r).
	B float64
	// Threshold is the absolute vote mass a shard needs to be selected.
	Threshold float64
	// SampleTopN is how many CSI results vote.
	SampleTopN int

	numShards int
}

// RankSConfig parameterizes construction.
type RankSConfig struct {
	SampleRate float64 // fraction of each shard's docs in the CSI (paper: 1%)
	B          float64
	Threshold  float64
	SampleTopN int
	Seed       uint64
}

// DefaultRankSConfig approximates the paper's 1%-sampled CSI. The rate is
// scaled up to 10% because 1% of our 48K-document corpus would leave only
// ~30 sample documents per shard — far less per-shard evidence than 1% of
// the paper's 34M documents — and Rank-S would degenerate to selecting
// one or two shards instead of its characteristic ~11 of 16.
func DefaultRankSConfig() RankSConfig {
	return RankSConfig{SampleRate: 0.10, B: 1.35, Threshold: 0.001, SampleTopN: 200, Seed: 99}
}

// NewRankS samples the corpus allocation into a CSI. alloc[s] lists the
// corpus document indices on shard s (the same allocation the engine's
// shards were built from).
func NewRankS(corpus *textgen.Corpus, alloc [][]int, bm25 index.BM25Params, cfg RankSConfig) *RankS {
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		panic("baselines: RankS sample rate must be in (0,1]")
	}
	rng := xrand.New(cfg.Seed).SplitName("ranks-csi")
	b := index.NewBuilder(-1, bm25, 10)
	home := make(map[int64]int)
	for si, docIDs := range alloc {
		for _, id := range docIDs {
			if rng.Float64() >= cfg.SampleRate {
				continue
			}
			d := &corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
			home[int64(id)] = si
		}
	}
	// Guarantee a non-empty CSI even at tiny sample rates.
	if len(home) == 0 {
		d := &corpus.Docs[alloc[0][0]]
		terms := make(map[string]int, len(d.Terms))
		for tid, tf := range d.Terms {
			terms[corpus.Vocab[tid]] = tf
		}
		b.Add(int64(d.ID), terms, d.Length)
		home[int64(d.ID)] = 0
	}
	return &RankS{
		CSI:        b.Finalize(),
		HomeShard:  home,
		B:          cfg.B,
		Threshold:  cfg.Threshold,
		SampleTopN: cfg.SampleTopN,
		numShards:  len(alloc),
	}
}

// Name implements engine.Policy.
func (*RankS) Name() string { return "rank-s" }

// Votes computes per-shard vote mass for a query from the CSI.
func (r *RankS) Votes(terms []string) []float64 {
	votes := make([]float64, r.numShards)
	hits := search.MaxScore(r.CSI, terms, r.SampleTopN).Hits
	for rank, h := range hits {
		s, ok := r.HomeShard[h.Doc]
		if !ok {
			continue
		}
		votes[s] += h.Score * math.Pow(r.B, -float64(rank))
	}
	return votes
}

// Decide implements engine.Policy: select shards whose vote mass clears
// the fixed threshold. If the sample produces no votes at all (the CSI
// missed the query's matching documents entirely), Rank-S has no signal
// and searches nothing beyond the single top-voted shard — reproducing
// the quality cliffs of Fig. 12(b).
func (r *RankS) Decide(e *engine.Engine, q trace.Query, _ float64) engine.Decision {
	votes := r.Votes(q.Terms)
	participate := make([]bool, len(e.Shards))
	selected := 0
	maxVote, maxShard := 0.0, 0
	for s, v := range votes {
		if v > maxVote {
			maxVote, maxShard = v, s
		}
		if v >= r.Threshold {
			participate[s] = true
			selected++
		}
	}
	if selected == 0 && maxVote > 0 {
		participate[maxShard] = true
	}
	return engine.Decision{
		Participate: participate,
		BudgetMS:    math.Inf(1),
		// One CSI lookup at the aggregator before dispatch.
		CoordMS: 0.3,
	}
}

// Observe implements engine.Policy.
func (*RankS) Observe(float64) {}
