package baselines

import (
	"cottage/internal/cluster"
	"cottage/internal/engine"
	"cottage/internal/trace"
)

// FixedSLA represents the class of power managers the paper positions
// Cottage against (Pegasus, TimeTrader, Rubik — Section VI): the time
// budget is *given a priori* as a fixed SLA, and the only lever is DVFS —
// every ISN picks the lowest frequency whose predicted equivalent latency
// still meets the SLA (slack reclamation), boosting when the prediction
// says it would miss. No ISN is ever cut: quality is preserved unless the
// prediction errs, but no energy is saved on zero-contribution ISNs and
// the client always waits out slow shards up to the SLA.
//
// Comparing FixedSLA with Cottage isolates the paper's thesis: choosing
// the budget *per query* (and cutting useless ISNs) beats any fixed
// budget on both latency and power.
type FixedSLA struct {
	// BudgetMS is the a-priori deadline every query gets.
	BudgetMS float64
	// LatencyMargin mirrors Cottage's safety margin on predicted service
	// times.
	LatencyMargin float64
}

// NewFixedSLA returns the configuration used in the experiments: a 20 ms
// SLA, a typical tail target for interactive search.
func NewFixedSLA() *FixedSLA { return &FixedSLA{BudgetMS: 20, LatencyMargin: 0.5} }

// Name implements engine.Policy.
func (p *FixedSLA) Name() string { return "sla-dvfs" }

// Decide implements engine.Policy.
func (p *FixedSLA) Decide(e *engine.Engine, q trace.Query, nowMS float64) engine.Decision {
	if e.Fleet == nil {
		panic("baselines: FixedSLA requires a trained fleet")
	}
	preds := e.Fleet.PredictAll(e.Shards, q.Terms)
	d := engine.Decision{
		Participate:    make([]bool, len(e.Shards)),
		Freq:           make([]float64, len(e.Shards)),
		BudgetMS:       p.BudgetMS,
		CoordMS:        e.Cluster.InferMS,
		UsedPredictors: true,
	}
	ladder := e.Cluster.Ladder
	for isn, pr := range preds {
		d.Participate[isn] = true
		d.Freq[isn] = ladder.Default()
		if !pr.Matched {
			// Dictionary miss: trivial work, run at the floor.
			d.Freq[isn] = ladder.Levels[0]
			continue
		}
		cycles := pr.Cycles * (1 + p.LatencyMargin)
		queue := e.Cluster.QueueDelayMS(isn, nowMS)
		for _, f := range ladder.Levels {
			if queue+cluster.ServiceMS(cycles, f) <= p.BudgetMS {
				d.Freq[isn] = f
				break
			}
			d.Freq[isn] = ladder.Max() // nothing fits: race at max
		}
	}
	return d
}

// Observe implements engine.Policy.
func (*FixedSLA) Observe(float64) {}
