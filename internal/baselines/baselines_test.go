package baselines

import (
	"math"
	"testing"

	"cottage/internal/engine"
	"cottage/internal/index"
	"cottage/internal/textgen"
	"cottage/internal/trace"
)

type fixture struct {
	corpus *textgen.Corpus
	alloc  [][]int
	eng    *engine.Engine
	qs     []trace.Query
}

var cached *fixture

func getFixture(tb testing.TB) *fixture {
	tb.Helper()
	if cached != nil {
		return cached
	}
	ccfg := textgen.DefaultConfig()
	ccfg.NumDocs = 4000
	ccfg.VocabSize = 5000
	ccfg.NumTopics = 16
	ccfg.TopicTermCount = 150
	corpus := textgen.Generate(ccfg)
	ecfg := engine.DefaultConfig()
	ecfg.NumShards = 8
	alloc := corpus.AllocateTopical(ecfg.NumShards, 2, 0.15, 5)
	shards := make([]*index.Shard, len(alloc))
	for si, ids := range alloc {
		b := index.NewBuilder(si, ecfg.BM25, ecfg.K)
		for _, id := range ids {
			d := &corpus.Docs[id]
			terms := make(map[string]int, len(d.Terms))
			for tid, tf := range d.Terms {
				terms[corpus.Vocab[tid]] = tf
			}
			b.Add(int64(id), terms, d.Length)
		}
		shards[si] = b.Finalize()
	}
	eng := engine.New(shards, ecfg)
	qs := trace.Generate(corpus, trace.Config{Kind: trace.Wikipedia, Seed: 7, NumQueries: 300, QPS: 30})
	cached = &fixture{corpus: corpus, alloc: alloc, eng: eng, qs: qs}
	return cached
}

func TestExhaustiveDecision(t *testing.T) {
	f := getFixture(t)
	d := Exhaustive{}.Decide(f.eng, f.qs[0], 0)
	if len(d.Participate) != len(f.eng.Shards) {
		t.Fatal("participation size wrong")
	}
	for i, p := range d.Participate {
		if !p {
			t.Fatalf("exhaustive must select ISN %d", i)
		}
	}
	if !math.IsInf(d.BudgetMS, 1) {
		t.Error("exhaustive must not budget")
	}
	if (Exhaustive{}).Name() != "exhaustive" {
		t.Error("name wrong")
	}
}

func TestAggregationEpochs(t *testing.T) {
	a := NewAggregation()
	if !math.IsInf(a.Budget(), 1) {
		t.Fatal("first epoch must be unbudgeted")
	}
	// Feed one epoch of latencies 1..100; the 60th percentile is ~60.
	for i := 1; i <= a.EpochQueries; i++ {
		a.Observe(float64(i))
	}
	if b := a.Budget(); b < 55 || b > 65 {
		t.Fatalf("epoch budget = %v, want ~60", b)
	}
	// Next epoch's latencies are smaller; after it closes the budget
	// shrinks.
	for i := 0; i < a.EpochQueries; i++ {
		a.Observe(10)
	}
	if b := a.Budget(); b != 10 {
		t.Fatalf("adapted budget = %v, want 10", b)
	}
	f := getFixture(t)
	d := a.Decide(f.eng, f.qs[0], 0)
	if d.BudgetMS != 10 {
		t.Fatalf("decision budget = %v", d.BudgetMS)
	}
	for _, p := range d.Participate {
		if !p {
			t.Fatal("aggregation must select all ISNs")
		}
	}
}

func TestRankSConstruction(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultRankSConfig()
	r := NewRankS(f.corpus, f.alloc, index.DefaultBM25(), cfg)
	if r.CSI.NumDocs == 0 {
		t.Fatal("empty CSI")
	}
	// Sample size should be near rate * corpus.
	want := cfg.SampleRate * float64(len(f.corpus.Docs))
	got := float64(r.CSI.NumDocs)
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("CSI holds %v docs, want ~%v", got, want)
	}
	// Every sampled doc's home shard is recorded and valid.
	if len(r.HomeShard) != r.CSI.NumDocs {
		t.Error("home map size mismatch")
	}
	for doc, s := range r.HomeShard {
		if s < 0 || s >= len(f.alloc) {
			t.Fatalf("doc %d mapped to invalid shard %d", doc, s)
		}
	}
}

func TestRankSVotesFollowSample(t *testing.T) {
	f := getFixture(t)
	r := NewRankS(f.corpus, f.alloc, index.DefaultBM25(), DefaultRankSConfig())
	anyVotes := false
	for _, q := range f.qs[:50] {
		votes := r.Votes(q.Terms)
		if len(votes) != len(f.alloc) {
			t.Fatal("vote vector size wrong")
		}
		for _, v := range votes {
			if v < 0 {
				t.Fatal("negative vote")
			}
			if v > 0 {
				anyVotes = true
			}
		}
	}
	if !anyVotes {
		t.Fatal("no query produced any votes")
	}
}

func TestRankSDecide(t *testing.T) {
	f := getFixture(t)
	r := NewRankS(f.corpus, f.alloc, index.DefaultBM25(), DefaultRankSConfig())
	selectedAny := false
	for _, q := range f.qs[:50] {
		d := r.Decide(f.eng, q, 0)
		n := 0
		for _, p := range d.Participate {
			if p {
				n++
			}
		}
		if n > 0 {
			selectedAny = true
		}
		if !math.IsInf(d.BudgetMS, 1) {
			t.Fatal("rank-s does not budget")
		}
	}
	if !selectedAny {
		t.Fatal("rank-s never selected a shard")
	}
}

func TestRankSPanicsOnBadRate(t *testing.T) {
	f := getFixture(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRankS(f.corpus, f.alloc, index.DefaultBM25(), RankSConfig{SampleRate: 0})
}

func TestTailyDecide(t *testing.T) {
	f := getFixture(t)
	ty := NewTaily()
	counts := 0
	for _, q := range f.qs[:50] {
		d := ty.Decide(f.eng, q, 0)
		for _, p := range d.Participate {
			if p {
				counts++
			}
		}
		if !math.IsInf(d.BudgetMS, 1) {
			t.Fatal("taily does not budget")
		}
	}
	if counts == 0 {
		t.Fatal("taily never selected a shard")
	}
	// Average selection must be a strict subset of the cluster.
	if avg := float64(counts) / 50; avg >= float64(len(f.eng.Shards)) {
		t.Errorf("taily selects everything (avg %v)", avg)
	}
}

func TestTailyThresholdMonotone(t *testing.T) {
	f := getFixture(t)
	count := func(tau float64) int {
		ty := &Taily{Tau: tau}
		total := 0
		for _, q := range f.qs[:40] {
			d := ty.Decide(f.eng, q, 0)
			for _, p := range d.Participate {
				if p {
					total++
				}
			}
		}
		return total
	}
	low, high := count(0.05), count(1.0)
	if high > low {
		t.Errorf("higher threshold selected more shards: %d vs %d", high, low)
	}
}

func TestPoliciesRunEndToEnd(t *testing.T) {
	f := getFixture(t)
	evs := f.eng.EvaluateAll(f.qs)
	r := NewRankS(f.corpus, f.alloc, index.DefaultBM25(), DefaultRankSConfig())
	for _, p := range []engine.Policy{Exhaustive{}, NewAggregation(), r, NewTaily()} {
		res := f.eng.Run(p, evs)
		sm := engine.Summarize(res)
		if sm.Queries != len(f.qs) {
			t.Fatalf("%s ran %d queries", p.Name(), sm.Queries)
		}
		if sm.MeanLatency <= 0 {
			t.Fatalf("%s produced non-positive latency", p.Name())
		}
		if p.Name() == "exhaustive" && sm.MeanPAtK != 1 {
			t.Fatalf("exhaustive quality %v", sm.MeanPAtK)
		}
	}
}

func TestFixedSLARequiresFleet(t *testing.T) {
	f := getFixture(t)
	defer func() {
		if recover() == nil {
			t.Error("FixedSLA without a fleet should panic")
		}
	}()
	NewFixedSLA().Decide(f.eng, f.qs[0], 0)
}
