package baselines

import (
	"math"

	"cottage/internal/engine"
	"cottage/internal/trace"
)

// Taily is the distributed Gamma-distribution shard selector (Aly et al.,
// SIGIR'13): each shard's expected contribution to the global top-K is
// estimated from fitted score distributions (predict.GammaEstimator), and
// shards whose estimate clears a threshold are searched. Like the paper's
// characterization (Section V-A), it "only cuts off the ISNs without any
// contribution to the top-10 results, and ignores the latency dimension" —
// so one slow low-quality ISN can still dominate the tail.
type Taily struct {
	// Tau is the expected-contribution threshold below which a shard is
	// cut (documents in the global top-K).
	Tau float64
}

// NewTaily returns the configuration used in the experiments: Taily's
// published tuning is recall-oriented (the paper measures it keeping ~13
// of 16 ISNs), so the threshold is permissive; its quality losses come
// from the Gamma model misranking shards, not from cutting aggressively.
func NewTaily() *Taily { return &Taily{Tau: 0.05} }

// Name implements engine.Policy.
func (*Taily) Name() string { return "taily" }

// Decide implements engine.Policy.
func (t *Taily) Decide(e *engine.Engine, q trace.Query, _ float64) engine.Decision {
	est := e.Gamma.Estimate(q.Terms, e.K)
	participate := make([]bool, len(e.Shards))
	selected := 0
	best, bestShard := -1.0, 0
	for s, c := range est {
		if c > best {
			best, bestShard = c, s
		}
		if c >= t.Tau {
			participate[s] = true
			selected++
		}
	}
	// Taily computes its estimates at the ISNs from local statistics, so
	// a query with any match always yields at least one candidate.
	if selected == 0 && best > 0 {
		participate[bestShard] = true
	}
	return engine.Decision{
		Participate: participate,
		BudgetMS:    math.Inf(1),
		CoordMS:     0.1, // one estimator round at the ISNs
	}
}

// Observe implements engine.Policy.
func (*Taily) Observe(float64) {}
