// Package baselines implements the ISN-selection policies the paper
// compares Cottage against (Section V): exhaustive search, an epoch-based
// aggregation policy, Rank-S (central sample index), and Taily
// (Gamma-distribution shard selection). Each implements engine.Policy.
package baselines

import (
	"math"

	"cottage/internal/engine"
	"cottage/internal/stats"
	"cottage/internal/trace"
)

// allOf returns a participation vector selecting every shard.
func allOf(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return p
}

// Exhaustive broadcasts every query to every ISN and waits for the
// slowest — the paper's baseline with P@10 = 1 by construction.
type Exhaustive struct{}

// Name implements engine.Policy.
func (Exhaustive) Name() string { return "exhaustive" }

// Decide implements engine.Policy.
func (Exhaustive) Decide(e *engine.Engine, _ trace.Query, _ float64) engine.Decision {
	return engine.Decision{
		Participate: allOf(len(e.Shards)),
		BudgetMS:    math.Inf(1),
	}
}

// Observe implements engine.Policy.
func (Exhaustive) Observe(float64) {}

// Aggregation is the epoch-based aggregation policy (Yun et al., SIGIR'15
// family, as characterized in the paper's Fig. 3b): all ISNs participate,
// but the aggregator stops waiting after a fixed time budget recomputed
// each epoch from recent latency history. Quality contribution is not
// considered, so high-quality stragglers are cut — the failure mode
// Cottage fixes.
type Aggregation struct {
	// EpochQueries is how many queries share one budget before it is
	// recomputed.
	EpochQueries int
	// Pct is the percentile of the previous epoch's client latencies used
	// as the next budget.
	Pct float64

	window []float64
	budget float64
}

// NewAggregation returns the configuration used in the experiments: the
// budget is the previous epoch's 60th-percentile latency, recomputed
// every 100 queries. The first epoch runs unbudgeted (it has no history).
func NewAggregation() *Aggregation {
	return &Aggregation{EpochQueries: 100, Pct: 60, budget: math.Inf(1)}
}

// Name implements engine.Policy.
func (*Aggregation) Name() string { return "aggregation" }

// Decide implements engine.Policy.
func (a *Aggregation) Decide(e *engine.Engine, _ trace.Query, _ float64) engine.Decision {
	return engine.Decision{
		Participate: allOf(len(e.Shards)),
		BudgetMS:    a.budget,
	}
}

// Observe implements engine.Policy: collects latencies and rolls the
// epoch budget.
func (a *Aggregation) Observe(latencyMS float64) {
	a.window = append(a.window, latencyMS)
	if len(a.window) >= a.EpochQueries {
		a.budget = stats.Percentile(a.window, a.Pct)
		a.window = a.window[:0]
	}
}

// Budget exposes the current epoch budget (for tests and the harness).
func (a *Aggregation) Budget() float64 { return a.budget }
