package baselines

import (
	"fmt"
	"math"
	"sort"

	"cottage/internal/engine"
	"cottage/internal/nn"
	"cottage/internal/predict"
	"cottage/internal/trace"
)

// QR is the learned shard-cutoff baseline of Mohammad et al. (SIGIR'18,
// reference [19] of the paper): shards are ranked by a resource-selection
// score (here Taily's Gamma estimate) and a trained model predicts *how
// many* of the top-ranked shards to search for this query, instead of
// using a fixed threshold. Like the other selective-search baselines it
// is latency-blind: it never budgets, boosts, or cuts stragglers.
type QR struct {
	net  *nn.Network
	pred *nn.Predictor
	// MaxCut caps the predicted cutoff (the model's class count).
	MaxCut int
}

// qrFeatureDim: the top-8 ranked estimates, their total mass, the number
// of non-zero estimates, and the query length.
const qrFeatureDim = 11

// qrFeatures builds the cutoff model's input from a ranked estimate list.
func qrFeatures(sorted []float64, queryLen int) []float64 {
	f := make([]float64, qrFeatureDim)
	total, nonzero := 0.0, 0
	for i, e := range sorted {
		if i < 8 {
			f[i] = e
		}
		total += e
		if e > 1e-9 {
			nonzero++
		}
	}
	f[8] = total
	f[9] = float64(nonzero)
	f[10] = float64(queryLen)
	return f
}

// QRConfig controls training.
type QRConfig struct {
	// CoverFrac is the share of the true top-K contribution the labelled
	// cutoff must cover (the QR paper's precision-oriented operating
	// point searches until quality is safe; 0.95 by default).
	CoverFrac float64
	Steps     int
	Seed      uint64
}

// DefaultQRConfig mirrors the experiments.
func DefaultQRConfig() QRConfig { return QRConfig{CoverFrac: 0.95, Steps: 400, Seed: 7} }

// NewQR trains the cutoff model. ds must be the harvest of queries on the
// same engine (engine.TrainFleet returns it); the label for each query is
// the smallest ranked-prefix of shards covering CoverFrac of its true
// top-K contributions.
func NewQR(e *engine.Engine, ds *predict.Dataset, queries []trace.Query, cfg QRConfig) (*QR, error) {
	if len(queries) > len(ds.PerISN[0]) {
		return nil, fmt.Errorf("baselines: QR has %d queries but dataset holds %d", len(queries), len(ds.PerISN[0]))
	}
	maxCut := len(e.Shards)
	var xs [][]float64
	var ys []int
	for qi, q := range queries {
		est := e.Gamma.Estimate(q.Terms, e.K)
		order := rankByEstimate(est)
		sorted := make([]float64, len(order))
		totalTruth := 0
		for i, si := range order {
			sorted[i] = est[si]
			totalTruth += ds.PerISN[si][qi].QK
		}
		if totalTruth == 0 {
			continue // nothing to find; no training signal
		}
		need := int(math.Ceil(cfg.CoverFrac * float64(totalTruth)))
		covered, cut := 0, maxCut
		for i, si := range order {
			covered += ds.PerISN[si][qi].QK
			if covered >= need {
				cut = i + 1
				break
			}
		}
		xs = append(xs, qrFeatures(sorted, len(q.Terms)))
		ys = append(ys, cut-1) // classes 0..maxCut-1 encode cutoffs 1..maxCut
	}
	if len(xs) < 20 {
		return nil, fmt.Errorf("baselines: only %d usable QR training queries", len(xs))
	}
	net := nn.New(nn.FastConfig(qrFeatureDim, maxCut, cfg.Seed))
	tc := nn.DefaultTrainConfig(cfg.Steps)
	tc.Seed = cfg.Seed + 1
	if _, err := net.Train(xs, ys, tc); err != nil {
		return nil, err
	}
	return &QR{net: net, pred: net.NewPredictor(), MaxCut: maxCut}, nil
}

// rankByEstimate returns shard indices in descending estimate order
// (ties toward lower shard IDs, deterministically).
func rankByEstimate(est []float64) []int {
	order := make([]int, len(est))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })
	return order
}

// Name implements engine.Policy.
func (*QR) Name() string { return "qr" }

// Decide implements engine.Policy: rank by Gamma estimate, cut at the
// model's predicted depth.
func (q *QR) Decide(e *engine.Engine, qr trace.Query, _ float64) engine.Decision {
	est := e.Gamma.Estimate(qr.Terms, e.K)
	order := rankByEstimate(est)
	sorted := make([]float64, len(order))
	for i, si := range order {
		sorted[i] = est[si]
	}
	cut := q.pred.Classify(qrFeatures(sorted, len(qr.Terms))) + 1
	if cut > len(order) {
		cut = len(order)
	}
	participate := make([]bool, len(e.Shards))
	for i := 0; i < cut; i++ {
		if sorted[i] <= 0 && i > 0 {
			break // never search shards with zero estimate beyond the first
		}
		participate[order[i]] = true
	}
	return engine.Decision{
		Participate: participate,
		BudgetMS:    math.Inf(1),
		CoordMS:     0.15, // estimator round + one aggregator-side inference
	}
}

// Observe implements engine.Policy.
func (*QR) Observe(float64) {}
