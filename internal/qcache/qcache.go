// Package qcache implements an aggregator-side query result cache. Search
// traffic is heavily skewed (the trace generators reproduce the Zipfian
// term popularity of real logs), so a small LRU of merged top-K results
// answers a large share of queries without touching any ISN — the classic
// optimization of Baeza-Yates et al. (reference [1] of the paper). The
// engine integrates it through engine.Cached, which wraps any selection
// policy.
package qcache

import (
	"container/list"
	"sort"
	"strings"

	"cottage/internal/search"
)

// Key canonicalizes a query's terms (order-insensitive, deduplicated) so
// "red car" and "car red" share a cache entry.
func Key(terms []string) string {
	c := make([]string, len(terms))
	copy(c, terms)
	sort.Strings(c)
	return strings.Join(c, "\x00")
}

// LRU is a fixed-capacity least-recently-used result cache. It is not
// safe for concurrent use; the simulator is single-threaded and a real
// aggregator would shard it per worker.
type LRU struct {
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses int
}

type entry struct {
	key  string
	hits []search.Hit
}

// NewLRU creates a cache holding up to capacity entries.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic("qcache: capacity must be positive")
	}
	return &LRU{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached hits for key, if present, and refreshes its
// recency.
func (c *LRU) Get(key string) ([]search.Hit, bool) {
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).hits, true
}

// Put stores hits under key, evicting the least recently used entry when
// full. The slice is stored as-is; callers must not mutate it afterwards.
func (c *LRU) Put(key string, hits []search.Hit) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).hits = hits
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, hits: hits})
}

// Len returns the current entry count.
func (c *LRU) Len() int { return c.ll.Len() }

// HitRate returns hits / (hits+misses) so far, or 0 before any lookup.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns raw hit/miss counters.
func (c *LRU) Stats() (hits, misses int) { return c.hits, c.misses }

// Reset clears contents and counters.
func (c *LRU) Reset() {
	c.ll = list.New()
	c.items = make(map[string]*list.Element)
	c.hits, c.misses = 0, 0
}
