package qcache

import (
	"fmt"
	"testing"

	"cottage/internal/search"
	"cottage/internal/xrand"
)

func TestKeyCanonical(t *testing.T) {
	if Key([]string{"red", "car"}) != Key([]string{"car", "red"}) {
		t.Error("key should be order-insensitive")
	}
	if Key([]string{"a"}) == Key([]string{"b"}) {
		t.Error("distinct queries must differ")
	}
	if Key([]string{"ab", "c"}) == Key([]string{"a", "bc"}) {
		t.Error("separator must prevent concatenation collisions")
	}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if _, ok := c.Get("x"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []search.Hit{{Doc: 1}})
	c.Put("b", []search.Hit{{Doc: 2}})
	if hits, ok := c.Get("a"); !ok || hits[0].Doc != 1 {
		t.Fatal("miss on cached entry")
	}
	// "b" is now the LRU; inserting "c" evicts it.
	c.Put("c", []search.Hit{{Doc: 3}})
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", []search.Hit{{Doc: 1}})
	c.Put("a", []search.Hit{{Doc: 9}})
	if c.Len() != 1 {
		t.Fatal("update should not grow the cache")
	}
	if hits, _ := c.Get("a"); hits[0].Doc != 9 {
		t.Fatal("update lost")
	}
}

func TestHitRate(t *testing.T) {
	c := NewLRU(4)
	c.Put("a", nil)
	c.Get("a")
	c.Get("a")
	c.Get("zz")
	if hr := c.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", hr)
	}
	h, m := c.Stats()
	if h != 2 || m != 1 {
		t.Errorf("stats = %d/%d", h, m)
	}
	c.Reset()
	if c.Len() != 0 || c.HitRate() != 0 {
		t.Error("reset incomplete")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := NewLRU(16)
	rng := xrand.New(1)
	for i := 0; i < 5000; i++ {
		c.Put(fmt.Sprintf("k%d", rng.Intn(200)), nil)
		if c.Len() > 16 {
			t.Fatalf("capacity exceeded: %d", c.Len())
		}
	}
}

func TestNewLRUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	NewLRU(0)
}

func BenchmarkLRUGetPut(b *testing.B) {
	c := NewLRU(1024)
	rng := xrand.New(1)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("query-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[rng.Intn(len(keys))]
		if _, ok := c.Get(k); !ok {
			c.Put(k, nil)
		}
	}
}
