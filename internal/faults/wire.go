package faults

import (
	"net"
	"time"
)

// WrapListener subjects every connection accepted from l to the
// injector's plan for ISN isn. cottage-server uses this to serve a shard
// behind a configurable fault profile (-fail-rate, -slow-ms, ...), so
// client-side retries and hedging can be exercised against real sockets.
func WrapListener(l net.Listener, in *Injector, isn int) net.Listener {
	return &listener{Listener: l, in: in, isn: isn}
}

type listener struct {
	net.Listener
	in  *Injector
	isn int
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		// A crashed ISN refuses service outright: the dial succeeds at
		// the TCP level but the connection dies before a byte is served,
		// which is what a freshly-killed process looks like from the
		// aggregator (SYN backlog drained by the kernel, then RST).
		if l.in.Crashed(l.isn) {
			c.Close()
			continue
		}
		return &Conn{Conn: c, in: l.in, isn: l.isn}, nil
	}
}

// Conn is a net.Conn that consults the injector on every outbound frame.
// Faults are applied on Write — the reply path — because that is where a
// dying ISN hurts the aggregator: requests arrive fine, answers never
// make it back intact.
type Conn struct {
	net.Conn
	in  *Injector
	isn int
}

// Write applies the injector's verdict to the outgoing bytes: Crash and
// Drop close the connection (the peer sees a broken stream), Corrupt
// flips bytes before sending, Slow sleeps for the drawn delay. Delays
// compose with Drop/Corrupt so stragglers fail late, the way real
// stragglers do.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.in.OnRequest(c.isn)
	if d.DelayMS > 0 {
		time.Sleep(time.Duration(d.DelayMS * float64(time.Millisecond)))
	}
	switch d.Kind {
	case Crash, Drop:
		c.Conn.Close()
		return 0, net.ErrClosed
	case Corrupt:
		mangled := make([]byte, len(p))
		copy(mangled, p)
		// Flip a bit in every 7th byte: enough to desync a gob stream
		// without zeroing it (a harder case for the decoder than
		// truncation).
		for i := 0; i < len(mangled); i += 7 {
			mangled[i] ^= 0x55
		}
		return c.Conn.Write(mangled)
	}
	return c.Conn.Write(p)
}
