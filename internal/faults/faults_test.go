package faults

import (
	"testing"
)

// TestDeterminism: two injectors with the same seed and plans deal the
// same decision sequence; a different seed deals a different one.
func TestDeterminism(t *testing.T) {
	mk := func(seed uint64) []Decision {
		in := NewInjector(seed)
		in.SetPlan(3, Plan{DropProb: 0.3, CorruptProb: 0.2, SlowMS: 1, SlowJitterMS: 2})
		out := make([]Decision, 50)
		for i := range out {
			out[i] = in.OnRequest(3)
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds dealt identical schedules")
	}
}

// TestStreamIsolation: traffic on one ISN must not shift another ISN's
// schedule (per-ISN streams are split by name, not interleaved).
func TestStreamIsolation(t *testing.T) {
	plan := Plan{DropProb: 0.5, SlowMS: 1}
	solo := NewInjector(11)
	solo.SetPlan(1, plan)
	want := make([]Decision, 20)
	for i := range want {
		want[i] = solo.OnRequest(1)
	}

	mixed := NewInjector(11)
	mixed.SetPlan(1, plan)
	mixed.SetPlan(2, Plan{DropProb: 0.9})
	for i := range want {
		mixed.OnRequest(2) // interleaved traffic on another ISN
		if got := mixed.OnRequest(1); got != want[i] {
			t.Fatalf("ISN 1 decision %d perturbed by ISN 2 traffic: %+v vs %+v", i, got, want[i])
		}
	}
}

func TestCrashAndRevive(t *testing.T) {
	in := NewInjector(1)
	in.Crash(4)
	if !in.Crashed(4) {
		t.Fatal("Crash did not mark the ISN dead")
	}
	if d := in.OnRequest(4); d.Kind != Crash {
		t.Fatalf("crashed ISN dealt %v", d.Kind)
	}
	if d := in.OnPredict(4); d.Kind != Crash {
		t.Fatalf("crashed ISN dealt %v for predict", d.Kind)
	}
	in.Revive(4)
	if in.Crashed(4) {
		t.Fatal("Revive did not clear the crash")
	}
	if d := in.OnRequest(4); d.Kind != None {
		t.Fatalf("revived ISN with empty plan dealt %v", d.Kind)
	}
}

// TestRates: over many draws the dealt fault mix tracks the plan's
// probabilities (loose bounds; the stream is deterministic, not lucky).
func TestRates(t *testing.T) {
	in := NewInjector(42)
	in.SetPlan(0, Plan{DropProb: 0.25})
	const n = 4000
	for i := 0; i < n; i++ {
		in.OnRequest(0)
	}
	drops := in.Counts()[Drop]
	if f := float64(drops) / n; f < 0.2 || f > 0.3 {
		t.Fatalf("drop rate %.3f far from plan's 0.25", f)
	}
}

func TestPredictTimeoutOnlyHitsPredictions(t *testing.T) {
	in := NewInjector(5)
	in.SetPlan(2, Plan{PredictDropProb: 1})
	if d := in.OnPredict(2); d.Kind != PredictTimeout {
		t.Fatalf("predict dealt %v, want PredictTimeout", d.Kind)
	}
	if d := in.OnRequest(2); d.Kind != None {
		t.Fatalf("search request dealt %v, want None", d.Kind)
	}
}

func TestSlowdownDraws(t *testing.T) {
	in := NewInjector(9)
	in.SetPlan(6, Plan{SlowMS: 5, SlowJitterMS: 10})
	for i := 0; i < 100; i++ {
		d := in.OnRequest(6)
		if d.Kind != Slow {
			t.Fatalf("slow plan dealt %v", d.Kind)
		}
		if d.DelayMS < 5 || d.DelayMS >= 15 {
			t.Fatalf("delay %.2f outside [5, 15)", d.DelayMS)
		}
	}
}

func TestPickVictims(t *testing.T) {
	a := PickVictims(3, 4, 16)
	b := PickVictims(3, 4, 16)
	if len(a) != 4 {
		t.Fatalf("want 4 victims, got %v", a)
	}
	seen := map[int]bool{}
	for i, v := range a {
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("invalid or duplicate victim %d in %v", v, a)
		}
		seen[v] = true
		if b[i] != v {
			t.Fatalf("PickVictims not deterministic: %v vs %v", a, b)
		}
	}
	if got := PickVictims(3, 0, 16); len(got) != 0 {
		t.Fatalf("zero victims should be empty, got %v", got)
	}
}
