// Package faults provides a deterministic, seedable fault injector for
// the partition-aggregate tier. Production fleets lose ISNs constantly —
// crashed processes, dropped connections, corrupted frames, stragglers
// stuck behind a GC pause or a noisy neighbour — and the tail-tolerance
// literature (Kraus et al.'s tail-tolerant search, Mackenzie et al.'s
// early termination) treats them as the common case, not the exception.
// This package gives both substrates one switchboard for such faults:
//
//   - the simulated cluster (internal/cluster) reads per-ISN crash flags
//     and virtual-time slowdowns from an Injector so harness sweeps can
//     replay a trace at any availability level, and
//   - the real TCP transport (internal/rpc) wraps its listeners with
//     WrapListener, which drops, delays or corrupts frames on the wire so
//     retry/hedging logic is exercised against real sockets.
//
// Every decision is drawn from a per-ISN SplitMix64 stream derived from
// the injector's seed, so a given (seed, plan, call sequence) replays the
// exact same fault schedule regardless of what other ISNs are doing.
package faults

import (
	"fmt"
	"sync"

	"cottage/internal/xrand"
)

// Kind labels one injected fault.
type Kind int

const (
	// None: the request proceeds unharmed.
	None Kind = iota
	// Crash: the ISN is down; connections die immediately and the
	// simulated node does no work.
	Crash
	// Drop: the connection is severed mid-request (client sees a broken
	// stream and must reconnect).
	Drop
	// Corrupt: the reply bytes are flipped on the wire (the decoder must
	// surface an error, never panic).
	Corrupt
	// Slow: the request is delayed (fixed and/or stochastic slowdown).
	Slow
	// PredictTimeout: only the prediction round is dropped; search still
	// works. Models an overloaded predictor sidecar.
	PredictTimeout
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Slow:
		return "slow"
	case PredictTimeout:
		return "predict-timeout"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// Plan is one ISN's standing fault profile. The zero value injects
// nothing. Probabilities are per-request in [0, 1]; delays compose with
// whichever probabilistic fault fires (a slow ISN can also drop).
type Plan struct {
	// Crashed marks the ISN dead until Revive. Deterministic, not drawn.
	Crashed bool
	// DropProb severs the connection on a request with this probability.
	DropProb float64
	// CorruptProb flips bytes in the reply with this probability.
	CorruptProb float64
	// PredictDropProb drops only prediction requests with this
	// probability (the failure mode degraded-mode Algorithm 1 handles).
	PredictDropProb float64
	// SlowMS delays every request by this many milliseconds.
	SlowMS float64
	// SlowJitterMS adds a uniform [0, SlowJitterMS) extra delay.
	SlowJitterMS float64
}

// Decision is the injector's verdict for one request.
type Decision struct {
	Kind Kind
	// DelayMS is the extra latency to impose before serving (also set
	// alongside Drop/Corrupt when the plan has a slowdown, so a straggler
	// drops late rather than instantly).
	DelayMS float64
}

// Injector holds per-ISN plans and deals deterministic fault decisions.
// It is safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	seed  uint64
	plans map[int]Plan
	rngs  map[int]*xrand.RNG
	// counts[k] is how many decisions of kind k have been dealt, a cheap
	// ledger for tests and harness reports.
	counts map[Kind]int
}

// NewInjector returns an injector whose decision streams derive from
// seed. Two injectors with the same seed and plans deal identical
// per-ISN fault schedules.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:   seed,
		plans:  make(map[int]Plan),
		rngs:   make(map[int]*xrand.RNG),
		counts: make(map[Kind]int),
	}
}

// rng returns ISN isn's private decision stream, creating it on first
// use. Streams are keyed by ISN id, so concurrent traffic on other ISNs
// never perturbs this one's schedule.
func (in *Injector) rng(isn int) *xrand.RNG {
	r, ok := in.rngs[isn]
	if !ok {
		r = xrand.New(in.seed).SplitName(fmt.Sprintf("isn-%d", isn))
		in.rngs[isn] = r
	}
	return r
}

// SetPlan installs (or replaces) an ISN's fault profile.
func (in *Injector) SetPlan(isn int, p Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[isn] = p
}

// PlanFor returns the current plan for an ISN (zero Plan if none).
func (in *Injector) PlanFor(isn int) Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plans[isn]
}

// Crash marks an ISN dead; Revive undoes it.
func (in *Injector) Crash(isn int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plans[isn]
	p.Crashed = true
	in.plans[isn] = p
}

// Revive clears an ISN's crash flag, keeping the rest of its plan.
func (in *Injector) Revive(isn int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plans[isn]
	p.Crashed = false
	in.plans[isn] = p
}

// Crashed reports whether an ISN is currently marked dead.
func (in *Injector) Crashed(isn int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.plans[isn].Crashed
}

// Counts returns a copy of the per-kind decision ledger.
func (in *Injector) Counts() map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// record tallies a decision under the lock.
func (in *Injector) record(k Kind) {
	in.counts[k]++
}

// delayMS draws the plan's slowdown for one request (fixed + jitter).
func delayMS(p Plan, r *xrand.RNG) float64 {
	d := p.SlowMS
	if p.SlowJitterMS > 0 {
		d += r.Float64() * p.SlowJitterMS
	}
	return d
}

// OnRequest deals the fault decision for one search/ping request at ISN
// isn. The order of probabilistic checks is fixed (crash > drop >
// corrupt > slow) so schedules replay exactly.
func (in *Injector) OnRequest(isn int) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plans[isn]
	r := in.rng(isn)
	if p.Crashed {
		in.record(Crash)
		return Decision{Kind: Crash}
	}
	d := Decision{DelayMS: delayMS(p, r)}
	switch {
	case p.DropProb > 0 && r.Float64() < p.DropProb:
		d.Kind = Drop
	case p.CorruptProb > 0 && r.Float64() < p.CorruptProb:
		d.Kind = Corrupt
	case d.DelayMS > 0:
		d.Kind = Slow
	}
	in.record(d.Kind)
	return d
}

// OnPredict deals the fault decision for one prediction request. It
// layers PredictDropProb on top of the request-level faults: a crashed
// or dropping ISN fails predictions too.
func (in *Injector) OnPredict(isn int) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.plans[isn]
	r := in.rng(isn)
	if p.Crashed {
		in.record(Crash)
		return Decision{Kind: Crash}
	}
	d := Decision{DelayMS: delayMS(p, r)}
	switch {
	case p.PredictDropProb > 0 && r.Float64() < p.PredictDropProb:
		d.Kind = PredictTimeout
	case p.DropProb > 0 && r.Float64() < p.DropProb:
		d.Kind = Drop
	case d.DelayMS > 0:
		d.Kind = Slow
	}
	in.record(d.Kind)
	return d
}

// PickVictims deterministically samples n distinct ISNs out of total —
// the harness uses it so an availability sweep fails the same nodes at
// every scale and on every machine. It panics if n > total.
func PickVictims(seed uint64, n, total int) []int {
	if n > total {
		panic(fmt.Sprintf("faults: cannot pick %d victims from %d ISNs", n, total))
	}
	r := xrand.New(seed).SplitName("victims")
	perm := make([]int, total)
	for i := range perm {
		perm[i] = i
	}
	// Fisher-Yates over the prefix we need.
	for i := 0; i < n; i++ {
		j := i + r.Intn(total-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := append([]int(nil), perm[:n]...)
	return out
}
