package faults

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

func TestFlipBitsDeterministicAndDistinct(t *testing.T) {
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i * 7)
	}

	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	offA := FlipBits(a, 10, 42)
	offB := FlipBits(b, 10, 42)

	if len(offA) != 10 {
		t.Fatalf("flipped %d bits, want 10", len(offA))
	}
	if !sort.IntsAreSorted(offA) {
		t.Fatalf("offsets not sorted: %v", offA)
	}
	for i := range offA {
		if offA[i] != offB[i] {
			t.Fatalf("same seed diverged: %v vs %v", offA, offB)
		}
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different mutations")
	}

	// XOR against the original must show exactly the reported bits set.
	flipped := 0
	for i := range a {
		d := a[i] ^ orig[i]
		for bit := 0; bit < 8; bit++ {
			if d&(1<<bit) != 0 {
				flipped++
				want := i*8 + bit
				j := sort.SearchInts(offA, want)
				if j >= len(offA) || offA[j] != want {
					t.Fatalf("bit %d flipped but not reported", want)
				}
			}
		}
	}
	if flipped != 10 {
		t.Fatalf("%d bits actually changed, want 10 (duplicates would cancel)", flipped)
	}

	// A different seed picks different offsets.
	c := append([]byte(nil), orig...)
	offC := FlipBits(c, 10, 43)
	same := len(offC) == len(offA)
	for i := 0; same && i < len(offA); i++ {
		same = offA[i] == offC[i]
	}
	if same {
		t.Fatal("different seeds chose identical offsets")
	}
}

func TestFlipBitsClampsAndEmpty(t *testing.T) {
	small := []byte{0xFF}
	off := FlipBits(small, 100, 1)
	if len(off) != 8 {
		t.Fatalf("clamp: flipped %d bits of a 1-byte buffer, want 8", len(off))
	}
	if small[0] != 0x00 {
		t.Fatalf("flipping every bit of 0xFF should give 0x00, got %#x", small[0])
	}
	if got := FlipBits(nil, 5, 1); got != nil {
		t.Fatalf("FlipBits(nil) = %v, want nil", got)
	}
	if got := FlipBits([]byte{1}, 0, 1); got != nil {
		t.Fatalf("FlipBits(n=0) = %v, want nil", got)
	}
}

func TestCorruptionScheduleDeterministicSortedBounded(t *testing.T) {
	a := CorruptionSchedule(7, 4, 60_000, 0.5)
	b := CorruptionSchedule(7, 4, 60_000, 0.5)
	if len(a) == 0 {
		t.Fatal("expected events at 0.5/node/s over 60 s")
	}
	if len(a) != len(b) {
		t.Fatalf("same inputs, %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i, ev := range a {
		if ev.TimeMS <= 0 || ev.TimeMS >= 60_000 {
			t.Fatalf("event %d at %v ms outside (0, horizon)", i, ev.TimeMS)
		}
		if ev.Node < 0 || ev.Node >= 4 {
			t.Fatalf("event %d on node %d", i, ev.Node)
		}
		if ev.OffsetFrac < 0 || ev.OffsetFrac >= 1 {
			t.Fatalf("event %d offset %v outside [0, 1)", i, ev.OffsetFrac)
		}
		if i > 0 && a[i].TimeMS < a[i-1].TimeMS {
			t.Fatalf("events not time-sorted at %d", i)
		}
	}
}

func TestCorruptionScheduleRateScales(t *testing.T) {
	slow := len(CorruptionSchedule(7, 8, 120_000, 0.25))
	fast := len(CorruptionSchedule(7, 8, 120_000, 2.5))
	// 10x the rate: expect roughly 10x the events; 4x is a loose floor
	// that never flakes with a fixed seed.
	if fast < slow*4 {
		t.Fatalf("rate ladder broken: %d events at 0.25/s vs %d at 2.5/s", slow, fast)
	}
	// Expected count at 2.5/node/s * 120s * 8 nodes = 2400; allow wide slack.
	if math.Abs(float64(fast)-2400) > 600 {
		t.Fatalf("fast schedule has %d events, want ~2400", fast)
	}
}

func TestCorruptionScheduleDegenerate(t *testing.T) {
	if got := CorruptionSchedule(1, 0, 1000, 1); got != nil {
		t.Fatalf("nodes=0: %v", got)
	}
	if got := CorruptionSchedule(1, 2, 0, 1); got != nil {
		t.Fatalf("horizon=0: %v", got)
	}
	if got := CorruptionSchedule(1, 2, 1000, 0); got != nil {
		t.Fatalf("rate=0: %v", got)
	}
}
