package faults

import (
	"fmt"
	"sort"

	"cottage/internal/xrand"
)

// At-rest corruption: the faults a wire checksum can never see. Disks
// rot, DMA engines misfire, and a bit flipped under a stored shard is
// silent until something reads and verifies the bytes. This file gives
// the harness and the simulated twin one deterministic source for such
// events — FlipBits mutates real encoded bytes (the harness's
// zero-corrupted-postings proof runs real verification against them),
// and CorruptionSchedule deals virtual-time rot events for the cluster
// twin the same way the Injector deals per-request chaos.

// FlipBits flips n distinct bits of data in place, drawn from seed's
// deterministic stream, and returns the flipped bit offsets ascending.
// n is clamped to the number of bits available. The same (len(data),
// n, seed) always flips the same offsets, so a corruption scenario
// replays exactly.
func FlipBits(data []byte, n int, seed uint64) []int {
	total := len(data) * 8
	if n > total {
		n = total
	}
	if n <= 0 || total == 0 {
		return nil
	}
	r := xrand.New(seed).SplitName("bitflip")
	chosen := make(map[int]struct{}, n)
	offsets := make([]int, 0, n)
	for len(offsets) < n {
		bit := r.Intn(total)
		if _, dup := chosen[bit]; dup {
			continue
		}
		chosen[bit] = struct{}{}
		offsets = append(offsets, bit)
		data[bit/8] ^= 1 << (bit % 8)
	}
	sort.Ints(offsets)
	return offsets
}

// CorruptionEvent is one scheduled at-rest rot: at TimeMS (virtual
// time), Node's shard copy gains a flipped bit at OffsetFrac of the way
// through its postings. OffsetFrac is what makes scrub-detection
// latency deterministic: the scrubber's cursor reaches that fraction of
// the shard at a computable instant.
type CorruptionEvent struct {
	TimeMS     float64
	Node       int
	OffsetFrac float64
}

// CorruptionSchedule deals a deterministic Poisson-process rot schedule:
// each of nodes draws exponential inter-arrival gaps at ratePerNodeSec
// events per second from its own seeded stream, truncated at horizonMS.
// Events come back sorted by time (ties by node). The same (seed,
// nodes, horizonMS, rate) always yields the same schedule, machine
// independent — the integrity sweep's rate ladder depends on it.
func CorruptionSchedule(seed uint64, nodes int, horizonMS, ratePerNodeSec float64) []CorruptionEvent {
	if nodes <= 0 || horizonMS <= 0 || ratePerNodeSec <= 0 {
		return nil
	}
	meanGapMS := 1000 / ratePerNodeSec
	var evs []CorruptionEvent
	for n := 0; n < nodes; n++ {
		r := xrand.New(seed).SplitName(fmt.Sprintf("rot-%d", n))
		t := 0.0
		for {
			t += r.ExpFloat64() * meanGapMS
			if t >= horizonMS {
				break
			}
			evs = append(evs, CorruptionEvent{TimeMS: t, Node: n, OffsetFrac: r.Float64()})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].TimeMS != evs[j].TimeMS {
			return evs[i].TimeMS < evs[j].TimeMS
		}
		return evs[i].Node < evs[j].Node
	})
	return evs
}
