package obs

import (
	"math"
	"strings"
	"testing"
)

func TestAccuracyLatency(t *testing.T) {
	a := NewAccuracy(2)
	a.ObserveLatency(0, 12, 10) // +20%
	a.ObserveLatency(0, 8, 10)  // -20%
	a.ObserveLatency(1, 10, 10) // exact
	a.ObserveLatency(5, 1, 1)   // out of range: ignored
	a.ObserveLatency(0, 5, 0)   // non-positive actual: ignored

	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	if snap[0].LatSamples != 2 || math.Abs(snap[0].MeanAbsErrPct-20) > 1e-9 {
		t.Fatalf("isn0 = %+v, want 2 samples mean 20%%", snap[0])
	}
	if snap[1].MeanAbsErrPct != 0 {
		t.Fatalf("isn1 mean err = %g, want 0", snap[1].MeanAbsErrPct)
	}
	// EWMA seeded with first sample then smoothed toward the second.
	want := 20 + ewmaAlpha*(20-20) // both samples are 20% abs error
	if math.Abs(snap[0].EWMAAbsErrPct-want) > 1e-9 {
		t.Fatalf("isn0 ewma = %g, want %g", snap[0].EWMAAbsErrPct, want)
	}
}

func TestAccuracyQuality(t *testing.T) {
	a := NewAccuracy(1)
	a.ObserveQuality(0, true, true)   // hit
	a.ObserveQuality(0, false, false) // hit
	a.ObserveQuality(0, true, false)  // miss
	a.ObserveQuality(0, false, true)  // miss
	snap := a.Snapshot()
	if snap[0].QualSamples != 4 || snap[0].QualHitRate != 0.5 {
		t.Fatalf("quality = %+v, want 4 samples hit rate 0.5", snap[0])
	}
}

func TestAccuracyNilSafe(t *testing.T) {
	var a *Accuracy
	a.ObserveLatency(0, 1, 1)
	a.ObserveQuality(0, true, true)
	if s := a.Snapshot(); s != nil {
		t.Fatal("nil Accuracy snapshot != nil")
	}
	a.Register(NewRegistry())
}

func TestAccuracyRegister(t *testing.T) {
	a := NewAccuracy(2)
	reg := NewRegistry()
	a.Register(reg)
	a.ObserveLatency(1, 15, 10) // 50% err
	a.ObserveQuality(1, true, true)

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`cottage_predictor_latency_abs_err_pct{isn="1"} 50`,
		`cottage_predictor_latency_mean_abs_err_pct{isn="1"} 50`,
		`cottage_predictor_quality_hit_rate{isn="1"} 1`,
		`cottage_predictor_latency_samples{isn="1"} 1`,
		`cottage_predictor_quality_samples{isn="1"} 1`,
		`cottage_predictor_latency_abs_err_pct{isn="0"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}
