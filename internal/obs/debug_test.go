// Debug-endpoint coverage lives in an external test package so it can
// mount the anatomy and slo handlers the way the binaries do — those
// packages import obs, so an internal test would be an import cycle.
package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cottage/internal/obs"
	"cottage/internal/obs/anatomy"
	"cottage/internal/obs/slo"
)

// testObserver builds an observer holding one recorded trace.
func testObserver() *obs.Observer {
	o := obs.NewObserver(2, 8)
	o.Flight = obs.NewFlightRecorder(2, 2, 0)
	tb := obs.NewTraceBuilder(1000)
	root := tb.StartSpan("query", 0, 1000)
	root.End(2000)
	o.AddTrace(tb.Finish())
	return o
}

func get(t *testing.T, mux http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func TestDebugMuxEndpoints(t *testing.T) {
	o := testObserver()
	anat := anatomy.NewCollector(16)
	anat.Observe(anatomy.Attribution{TraceID: 5, TotalMS: 1,
		Phase: [anatomy.NumPhases]float64{anatomy.PhaseSearch: 1}})
	mon := slo.New(slo.Config{})
	mon.Objective("latency", 0.01)
	mux := obs.NewDebugMux(o,
		obs.Endpoint{Path: "/debug/anatomy", Handler: anatomy.Handler(anat)},
		obs.Endpoint{Path: "/debug/slo", Handler: slo.Handler(mon)},
	)

	t.Run("healthz", func(t *testing.T) {
		rr := get(t, mux, "/healthz")
		if rr.Code != 200 || !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/plain") {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		if strings.TrimSpace(rr.Body.String()) != "ok" {
			t.Errorf("body %q", rr.Body.String())
		}
	})

	t.Run("metrics", func(t *testing.T) {
		rr := get(t, mux, "/metrics")
		if rr.Code != 200 || !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/plain") {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		if !strings.Contains(rr.Body.String(), "cottage_trace_spans_dropped_total") {
			t.Error("scrape missing span-drop counter")
		}
	})

	t.Run("traces", func(t *testing.T) {
		rr := get(t, mux, "/debug/traces")
		if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		var traces []*obs.Trace
		if err := json.Unmarshal(rr.Body.Bytes(), &traces); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(traces) != 1 || len(traces[0].Spans) != 1 || traces[0].Spans[0].Name != "query" {
			t.Fatalf("traces %+v", traces)
		}
		// ?n= caps the count; jsonl switches content type.
		if rr := get(t, mux, "/debug/traces?n=0"); rr.Code != 200 {
			t.Errorf("n=0 code %d", rr.Code)
		}
		rr = get(t, mux, "/debug/traces?format=jsonl")
		if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("jsonl ct %q", ct)
		}
	})

	t.Run("accuracy", func(t *testing.T) {
		rr := get(t, mux, "/debug/accuracy")
		if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		var snap []obs.ISNAccuracy
		if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(snap) != 2 {
			t.Errorf("accuracy slots = %d, want 2", len(snap))
		}
	})

	t.Run("flight", func(t *testing.T) {
		rr := get(t, mux, "/debug/flight")
		if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		var snap obs.FlightSnapshot
		if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if snap.Added != 1 || len(snap.Slowest) != 1 {
			t.Fatalf("snapshot %+v", snap)
		}
		rr = get(t, mux, "/debug/flight?format=jsonl")
		if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("jsonl ct %q", ct)
		}
	})

	t.Run("anatomy-extra", func(t *testing.T) {
		rr := get(t, mux, "/debug/anatomy")
		if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		var rep anatomy.Report
		if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if rep.Window != 1 {
			t.Errorf("window = %d", rep.Window)
		}
	})

	t.Run("slo-extra", func(t *testing.T) {
		rr := get(t, mux, "/debug/slo")
		if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
		}
		var snaps []slo.Snapshot
		if err := json.Unmarshal(rr.Body.Bytes(), &snaps); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(snaps) != 1 || snaps[0].Name != "latency" {
			t.Fatalf("snapshots %+v", snaps)
		}
	})
}

func TestDebugMuxNilObserver(t *testing.T) {
	mux := obs.NewDebugMux(nil)
	for _, path := range []string{"/metrics", "/healthz", "/debug/traces", "/debug/accuracy", "/debug/flight"} {
		if rr := get(t, mux, path); rr.Code != 200 {
			t.Errorf("%s with nil observer: code %d", path, rr.Code)
		}
	}
}

func TestStartDebugRegistersRuntimeMetrics(t *testing.T) {
	o := obs.NewObserver(1, 4)
	d, err := obs.StartDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"cottage_go_goroutines",
		"cottage_go_heap_inuse_bytes",
		"cottage_go_gc_pause_p99_ms",
		"cottage_go_gc_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing runtime gauge %q", want)
		}
	}
}
